#!/usr/bin/env python3
"""Blocking bench-regression gate against the latest main artifact.

    python3 tools/compare_bench.py --current build/BENCH_gate.json \
        --baseline prev-bench [--threshold 0.15] [--allow-regression]

`--current` files hold the JSON lines of this run's benches (run each
bench three times into the same file: per-metric MEDIANS are compared, so
one noisy run cannot fail — or hide — a regression).  `--baseline` is the
directory the latest successful main run's bench-json artifact was
downloaded into; when it is missing or empty the script prints the
current numbers and exits 0 (report-only: the first run on a fresh repo
has nothing to regress against).

Gated metrics — everything else is carried in the table for context:
  * bench_iteration_overhead timing metrics (keys ending in "_s" or
    "_s_per_iter", which covers the iterative/BSP resident-vs-replan
    ablation keys), where higher is worse;
  * thread-scaling times thread_w<N>_s from any bench (higher is worse);
  * thread-scaling speedups thread_speedup_w<N> (lower is worse);
  * per-sample interpreter rates, keys ending in "_us_per_sample", from
    any bench (higher is worse) — this is how the MiniPy typed-tier
    speedup (vm_typed_us_per_sample vs vm_us_per_sample) stays won.
Timing metrics under MIN_GATED_SECONDS in both runs are exempt: a
sub-5ms wall time on a shared CI machine is scheduler noise, not signal.
Per-sample rates have their own floor, MIN_GATED_US_PER_SAMPLE: they are
µs-scale by construction (min-of-N over >=100k iterations, so scheduler
noise is already averaged out), and only sub-0.1µs rates — native-loop
scale, where one cache miss moves the number 15% — are exempt.  The
typed-tier rate sits around 0.5µs and must stay gated.

A regression beyond --threshold fails the job unless --allow-regression
is passed (CI sets it for PRs labelled perf-regress-ok or whose head
commit message carries a perf-regress-ok trailer).
"""

import argparse
import glob
import json
import os
import re
import statistics
import sys

MIN_GATED_SECONDS = 0.005
MIN_GATED_US_PER_SAMPLE = 0.1
THREAD_TIME_RE = re.compile(r"^thread_w\d+_s$")
THREAD_SPEEDUP_RE = re.compile(r"^thread_speedup_w\d+$")


def load(paths):
    """bench -> metric -> median across all records in all files."""
    samples = {}
    for path in paths:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                bench = samples.setdefault(row["bench"], {})
                for key, value in row["metrics"].items():
                    bench.setdefault(key, []).append(value)
    return {
        bench: {key: statistics.median(values) for key, values in metrics.items()}
        for bench, metrics in samples.items()
    }


def gate_kind(bench, metric):
    """'time'/'rate_us' (higher = worse), 'speedup' (lower = worse), None."""
    if THREAD_SPEEDUP_RE.match(metric):
        return "speedup"
    if THREAD_TIME_RE.match(metric):
        return "time"
    if metric.endswith("_us_per_sample"):
        return "rate_us"
    if metric.endswith("_points_per_s"):
        # Throughput, higher is BETTER — gating it as a timing would fail
        # the build on a speedup.  The matching *_us_per_sample key above
        # carries the gate for these engines.
        return None
    if bench == "bench_iteration_overhead" and (
            metric.endswith("_s") or metric.endswith("_s_per_iter")):
        return "time"
    return None


def main(argv):
    parser = argparse.ArgumentParser()
    parser.add_argument("--current", nargs="+", required=True)
    parser.add_argument("--baseline", default="prev-bench",
                        help="directory holding the baseline BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.15)
    parser.add_argument("--allow-regression", action="store_true")
    args = parser.parse_args(argv[1:])

    current = load(args.current)
    baseline_files = sorted(glob.glob(os.path.join(args.baseline,
                                                   "BENCH_*.json")))
    print("### bench regression gate vs latest main artifact\n")
    if not baseline_files:
        print("no baseline bench-json artifact found; report-only baseline:\n")
        for bench in sorted(current):
            for key, value in sorted(current[bench].items()):
                if gate_kind(bench, key):
                    print(f"- {bench}.{key}: {value:.6g}")
        return 0

    baseline = load(baseline_files)
    regressions = []
    print(f"threshold: {args.threshold:.0%}, medians of "
          f"{len(args.current)} current file(s) vs {len(baseline_files)} "
          "baseline file(s)\n")
    print("| bench | metric | baseline | current | delta | gate |")
    print("|---|---|---|---|---|---|")
    for bench in sorted(current):
        base_metrics = baseline.get(bench, {})
        for key, value in sorted(current[bench].items()):
            kind = gate_kind(bench, key)
            if kind is None:
                continue
            base = base_metrics.get(key)
            if base is None or base == 0:
                print(f"| {bench} | {key} | - | {value:.6g} | new | - |")
                continue
            delta = (value - base) / abs(base)
            if kind in ("time", "rate_us"):
                regressed = delta > args.threshold
                floor = (MIN_GATED_SECONDS if kind == "time"
                         else MIN_GATED_US_PER_SAMPLE)
                if max(value, base) < floor:
                    regressed = False
                    verdict = ("exempt (<5ms)" if kind == "time"
                               else "exempt (<0.1us)")
                else:
                    verdict = "REGRESSED" if regressed else "ok"
            else:  # speedup: lower is worse
                regressed = delta < -args.threshold
                verdict = "REGRESSED" if regressed else "ok"
            if regressed:
                regressions.append(
                    f"{bench}.{key}: {base:.6g} -> {value:.6g} ({delta:+.1%})")
            print(f"| {bench} | {key} | {base:.6g} | {value:.6g} "
                  f"| {delta:+.1%} | {verdict} |")

    if regressions:
        print(f"\n**{len(regressions)} metric(s) regressed beyond "
              f"{args.threshold:.0%}:**\n")
        for regression in regressions:
            print(f"- {regression}")
        if args.allow_regression:
            print("\nperf-regress-ok escape hatch active: reporting only.")
            return 0
        print("\nLabel the PR `perf-regress-ok` (or add a perf-regress-ok "
              "commit trailer) if this regression is intended.")
        return 1
    print("\nno gated metric regressed.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
