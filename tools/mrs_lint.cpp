// mrs_lint: run the mrs::analysis pipeline over MiniPy kernel files.
//
//   mrs_lint [--json] [--no-kernel-profile] [--no-determinism] file.mpy...
//
// Prints one diagnostic per line ("file:line:col: error[MPY101]: ...") or,
// with --json, one object {"diagnostics": [...], "signatures": [...]} —
// the diagnostics as before, plus the per-function signatures the type
// inference derived (entry-guard parameter types and return type; see
// analysis/typeinfer.h).  Exit status: 0 = no errors anywhere (warnings
// allowed), 1 = at least one file had errors, 2 = usage or I/O failure.
// CI runs this over every checked-in kernel (examples/kernels/*.mpy), so
// a kernel that would be rejected at Job::Submit can't land.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "fs/file_io.h"
#include "interp/typefacts.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: mrs_lint [--json] [--no-kernel-profile] "
               "[--no-determinism] file.mpy...\n");
}

std::string SignatureJson(const mrs::analysis::InferredSignature& sig,
                          const std::string& file) {
  std::string out = "{\"file\":\"" + file + "\",\"function\":\"" + sig.name +
                    "\",\"params\":[";
  for (size_t i = 0; i < sig.params.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += mrs::minipy::TypeDisplayName(sig.params[i]);
    out += '"';
  }
  out += "],\"ret\":\"";
  out += mrs::minipy::TypeDisplayName(sig.ret);
  out += "\",\"speculative\":";
  out += sig.speculative ? "true" : "false";
  out += '}';
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  mrs::analysis::AnalysisOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--no-kernel-profile") {
      options.kernel_profile = false;
    } else if (arg == "--no-determinism") {
      options.determinism_lint = false;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mrs_lint: unknown option %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty()) {
    PrintUsage();
    return 2;
  }

  int files_with_errors = 0;
  int total_errors = 0;
  int total_warnings = 0;
  bool first_json = true;
  std::vector<std::string> signature_json;
  if (json) std::printf("{\"diagnostics\":[");
  for (const std::string& file : files) {
    mrs::Result<std::string> source = mrs::ReadFileToString(file);
    if (!source.ok()) {
      std::fprintf(stderr, "mrs_lint: %s: %s\n", file.c_str(),
                   std::string(source.status().message()).c_str());
      return 2;
    }
    mrs::analysis::AnalysisResult result =
        mrs::analysis::AnalyzeKernelSource(source.value(), options);
    int errors = mrs::analysis::CountErrors(result.diagnostics);
    total_errors += errors;
    total_warnings +=
        static_cast<int>(result.diagnostics.size()) - errors;
    if (errors > 0) ++files_with_errors;
    for (const mrs::analysis::Diagnostic& d : result.diagnostics) {
      if (json) {
        std::printf("%s%s", first_json ? "" : ",\n ",
                    mrs::analysis::DiagnosticJson(d, file).c_str());
        first_json = false;
      } else {
        std::printf("%s\n",
                    mrs::analysis::FormatDiagnostic(d, file).c_str());
      }
    }
    if (!json && result.diagnostics.empty()) {
      std::printf("%s: OK\n", file.c_str());
    }
    for (const mrs::analysis::InferredSignature& sig : result.signatures) {
      signature_json.push_back(SignatureJson(sig, file));
    }
  }
  if (json) {
    std::printf("],\n \"signatures\":[");
    for (size_t i = 0; i < signature_json.size(); ++i) {
      std::printf("%s%s", i > 0 ? ",\n  " : "", signature_json[i].c_str());
    }
    std::printf("]}\n");
  } else if (total_errors > 0 || total_warnings > 0) {
    std::printf("%d error(s), %d warning(s) in %d of %zu file(s)\n",
                total_errors, total_warnings, files_with_errors,
                files.size());
  }
  return files_with_errors > 0 ? 1 : 0;
}
