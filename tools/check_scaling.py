#!/usr/bin/env python3
"""Blocking thread-runner scaling gate.

Reads the JSON lines a bench_thread_snapshot run appends (one object per
bench, see bench/bench_util.h EmitBenchJson) and fails when the thread
runner's measured speedup falls below the floor on hardware that can
support it.  The floors live HERE and only here — CI and local runs call
this same script:

    python3 tools/check_scaling.py build/BENCH_thread.json

When a file holds several records for the same bench (CI runs each bench
three times), per-metric medians are gated, not single samples.

Machines without enough cores soft-pass: every bench emits the
thread_hw_concurrency it measured, and a 2-core runner cannot demonstrate
a 4-worker speedup no matter how good the runner is.  The gate prints
what it skipped so a soft pass is visible in the step summary.
"""

import json
import statistics
import sys

# The floors (ISSUE: >=2.5x at 4 workers for WordCount and pi; >=5x at 8
# workers where the hardware allows).
FLOOR_SPEEDUP_W4 = 2.5
FLOOR_SPEEDUP_W8 = 5.0
MIN_CORES_W4 = 4
MIN_CORES_W8 = 8

# Benches the floor applies to.  bench_pso is reported but not enforced:
# its per-round serial section (swarm bookkeeping between rounds) caps
# parallel speedup well below the embarrassingly-parallel workloads.
ENFORCED_BENCHES = ("bench_wordcount", "bench_pi")


def load(paths):
    """bench -> metric -> median across all records in all files."""
    samples = {}
    for path in paths:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                bench = samples.setdefault(row["bench"], {})
                for key, value in row["metrics"].items():
                    bench.setdefault(key, []).append(value)
    return {
        bench: {key: statistics.median(values) for key, values in metrics.items()}
        for bench, metrics in samples.items()
    }


def main(argv):
    if len(argv) < 2:
        print(f"usage: {argv[0]} BENCH_thread.json [more.json...]",
              file=sys.stderr)
        return 2

    benches = load(argv[1:])
    failures = []
    print("### thread scaling gate\n")
    print("| bench | cores | speedup w4 | floor | speedup w8 | floor | verdict |")
    print("|---|---|---|---|---|---|---|")

    for name in ENFORCED_BENCHES:
        metrics = benches.get(name)
        if metrics is None:
            failures.append(f"{name}: no record in the bench JSON")
            print(f"| {name} | - | - | - | - | - | MISSING |")
            continue
        cores = metrics.get("thread_hw_concurrency", 0)
        w4 = metrics.get("thread_speedup_w4")
        w8 = metrics.get("thread_speedup_w8")
        verdict = "pass"

        if w4 is None:
            failures.append(f"{name}: thread_speedup_w4 missing")
            verdict = "FAIL (no w4 metric)"
        elif cores < MIN_CORES_W4:
            verdict = f"skipped ({cores:.0f} cores < {MIN_CORES_W4})"
        elif w4 < FLOOR_SPEEDUP_W4:
            failures.append(
                f"{name}: w4 speedup {w4:.2f}x < {FLOOR_SPEEDUP_W4}x floor")
            verdict = "FAIL (w4)"

        if w8 is not None and cores >= MIN_CORES_W8 and w8 < FLOOR_SPEEDUP_W8:
            failures.append(
                f"{name}: w8 speedup {w8:.2f}x < {FLOOR_SPEEDUP_W8}x floor")
            verdict = "FAIL (w8)" if verdict == "pass" else verdict + "+w8"

        print(f"| {name} | {cores:.0f} "
              f"| {'-' if w4 is None else f'{w4:.2f}x'} | {FLOOR_SPEEDUP_W4}x "
              f"| {'-' if w8 is None else f'{w8:.2f}x'} | {FLOOR_SPEEDUP_W8}x "
              f"| {verdict} |")

    for name in sorted(set(benches) - set(ENFORCED_BENCHES)):
        w4 = benches[name].get("thread_speedup_w4")
        if w4 is not None:
            cores = benches[name].get("thread_hw_concurrency", 0)
            print(f"| {name} | {cores:.0f} | {w4:.2f}x | (not enforced) "
                  f"| - | - | informational |")

    if failures:
        print("\n**scaling gate failed:**\n")
        for failure in failures:
            print(f"- {failure}")
        return 1
    print("\nscaling gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
