// Generate the synthetic Gutenberg-like corpus (nested directories, Zipf
// word frequencies) used by the WordCount experiments.
//
//   build/examples/corpus_gen <out-dir> [num_files] [words_per_file] [seed]
#include <cstdio>
#include <cstdlib>

#include "corpus/corpus.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: corpus_gen <out-dir> [num_files] [words_per_file] "
                 "[seed]\n");
    return 2;
  }
  mrs::CorpusSpec spec;
  if (argc > 2) spec.num_files = std::atoi(argv[2]);
  if (argc > 3) spec.words_per_file = std::atoi(argv[3]);
  if (argc > 4) spec.seed = static_cast<uint64_t>(std::atoll(argv[4]));

  mrs::CorpusStats stats;
  std::vector<uint64_t> counts;
  auto files = mrs::GenerateCorpusWithCounts(argv[1], spec, &counts, &stats);
  if (!files.ok()) {
    std::fprintf(stderr, "error: %s\n", files.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu files under %s: %llu words, %llu distinct\n",
              files->size(), argv[1],
              static_cast<unsigned long long>(stats.total_words),
              static_cast<unsigned long long>(stats.distinct_words));
  return 0;
}
