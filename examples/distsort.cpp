// DistSort example: a TeraSort-class distributed sort that works on
// datasets larger than memory.
//
//   build/examples/distsort --sort-tasks 8 --sort-records-per-task 20000
//   build/examples/distsort -I thread --mrs-memory-budget 1M
//
// With --mrs-memory-budget set, map output spills to disk as sorted runs
// and the reduce streams a k-way merge — the sort completes byte-identical
// to the in-memory run no matter how small the budget.  The program
// validates its own output against a plain std::sort ground truth.
#include <cstdio>

#include "fs/spill.h"
#include "obs/metrics.h"
#include "rt/mrs_main.h"
#include "sort/distsort.h"

namespace {

class VerboseDistSort : public mrs::sort::DistSortProgram {
 public:
  mrs::Status Run(mrs::Job& job) override {
    MRS_RETURN_IF_ERROR(DistSortProgram::Run(job));
    return Report();
  }
  mrs::Status Bypass() override {
    MRS_RETURN_IF_ERROR(DistSortProgram::Bypass());
    return Report();
  }

 private:
  mrs::Status Report() {
    std::vector<mrs::KeyValue> expected = ExpectedOutput();
    bool identical = result == expected;
    int64_t spilled = mrs::obs::Registry::Instance()
                          .GetCounter("mrs.spill.bytes_spilled")
                          ->value();
    std::printf(
        "distsort: %zu records (~%lld bytes), %d tasks -> %d partitions\n",
        result.size(), static_cast<long long>(ApproxDatasetBytes()),
        config.tasks, config.reduce_splits);
    std::printf("memory budget: %lld bytes; spilled: %lld bytes\n",
                static_cast<long long>(mrs::MemoryBudget::Process().limit()),
                static_cast<long long>(spilled));
    std::printf("validation vs std::sort ground truth: %s\n",
                identical ? "IDENTICAL" : "MISMATCH");
    if (!identical) {
      return mrs::InternalError("distsort output differs from ground truth");
    }
    return mrs::Status::Ok();
  }
};

}  // namespace

int main(int argc, char** argv) {
  return mrs::Main<VerboseDistSort>(argc, argv);
}
