// mrs_launch: the paper's startup script (Program 3) as a real tool.
//
//   build/examples/mrs_launch --slaves 4 -- build/examples/quickstart \
//       -o /tmp/out.txt data/
//
// Does exactly what the PBS/pssh script does, for local processes:
//   1. start one copy of the program as the master (with a port file),
//   2. wait for the master's port file,
//   3. start N copies as slaves pointed at host:port,
//   4. wait for completion and propagate the master's exit status.
// On a cluster, replace step 3's process spawn with pbsdsh/pssh — the
// program binary and its arguments are unchanged, which is the point.
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "fs/file_io.h"

extern char** environ;

namespace {

mrs::Result<pid_t> Spawn(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  pid_t pid = 0;
  int rc = ::posix_spawn(&pid, args[0].c_str(), nullptr, nullptr, argv.data(),
                         environ);
  if (rc != 0) return mrs::IoErrorFromErrno("posix_spawn " + args[0], rc);
  return pid;
}

int Usage() {
  std::fprintf(stderr,
               "usage: mrs_launch [--slaves N] [--timeout SECONDS] -- "
               "<program> [program args...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int num_slaves = 2;
  double timeout = 600.0;
  int i = 1;
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--") {
      ++i;
      break;
    }
    if (arg == "--slaves" && i + 1 < argc) {
      num_slaves = std::atoi(argv[++i]);
    } else if (arg == "--timeout" && i + 1 < argc) {
      timeout = std::atof(argv[++i]);
    } else {
      return Usage();
    }
  }
  if (i >= argc) return Usage();
  std::vector<std::string> program(argv + i, argv + argc);

  auto dir = mrs::MakeTempDir("mrs_launch_");
  if (!dir.ok()) {
    std::fprintf(stderr, "error: %s\n", dir.status().ToString().c_str());
    return 1;
  }
  std::string port_file = mrs::JoinPath(*dir, "master.port");

  // Step 2: start the master.
  std::vector<std::string> master_args = program;
  master_args.insert(master_args.begin() + 1,
                     {"-I", "master", "--mrs-port-file", port_file, "-N",
                      std::to_string(num_slaves)});
  auto master = Spawn(master_args);
  if (!master.ok()) {
    std::fprintf(stderr, "error: %s\n", master.status().ToString().c_str());
    return 1;
  }

  // Step 3: wait for the master to start.
  std::string address;
  for (int tries = 0; tries < 400 && address.empty(); ++tries) {
    if (mrs::FileExists(port_file)) {
      auto content = mrs::ReadFileToString(port_file);
      if (content.ok()) address = std::string(mrs::Trim(*content));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  if (address.empty()) {
    std::fprintf(stderr, "error: master never wrote %s\n", port_file.c_str());
    ::kill(*master, SIGTERM);
    return 1;
  }
  std::fprintf(stderr, "[mrs_launch] master at %s; starting %d slaves\n",
               address.c_str(), num_slaves);

  // Step 4: start the slaves.
  std::vector<pid_t> slaves;
  for (int s = 0; s < num_slaves; ++s) {
    std::vector<std::string> slave_args = {program[0], "-I", "slave", "-M",
                                           address};
    auto slave = Spawn(slave_args);
    if (slave.ok()) slaves.push_back(*slave);
  }

  // Wait for the master (the job) with a deadline.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeout);
  int exit_code = -1;
  while (std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    pid_t done = ::waitpid(*master, &status, WNOHANG);
    if (done == *master) {
      exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 1;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (exit_code < 0) {
    std::fprintf(stderr, "[mrs_launch] timeout; killing master\n");
    ::kill(*master, SIGKILL);
    ::waitpid(*master, nullptr, 0);
    exit_code = 1;
  }
  for (pid_t slave : slaves) {
    // Slaves exit on the master's quit notice; reap with a short grace.
    for (int tries = 0; tries < 100; ++tries) {
      if (::waitpid(slave, nullptr, WNOHANG) == slave) {
        slave = -1;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (slave > 0) {
      ::kill(slave, SIGKILL);
      ::waitpid(slave, nullptr, 0);
    }
  }
  mrs::RemoveTree(*dir);
  std::fprintf(stderr, "[mrs_launch] done (exit %d)\n", exit_code);
  return exit_code;
}
