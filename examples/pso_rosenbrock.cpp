// Apiary PSO on Rosenbrock-250 (paper §V-B, Fig 4).
//
//   build/examples/pso_rosenbrock --pso-rounds 50 [-I masterslave -N 4]
//   build/examples/pso_rosenbrock -I bypass          # plain serial loop
//
// Prints the convergence history (round, evaluations, best, seconds) and
// the per-round (per-MapReduce-iteration) overhead, the paper's headline
// number for Mrs.
#include <cstdio>

#include "pso/apiary.h"
#include "rt/mrs_main.h"

class PsoRosenbrock : public mrs::pso::ApiaryPso {
 public:
  mrs::Status Run(mrs::Job& job) override {
    MRS_RETURN_IF_ERROR(mrs::pso::ApiaryPso::Run(job));
    Report();
    return mrs::Status::Ok();
  }

  mrs::Status Bypass() override {
    MRS_RETURN_IF_ERROR(mrs::pso::ApiaryPso::Bypass());
    Report();
    return mrs::Status::Ok();
  }

 private:
  void Report() const {
    std::printf("# %s-%d, %d hives x %d particles, %d inner iterations\n",
                config.function.c_str(), config.dims, config.num_subswarms,
                config.particles_per_subswarm, config.inner_iterations);
    std::printf("%8s %12s %16s %10s\n", "round", "evals", "best", "seconds");
    for (const mrs::pso::ConvergencePoint& p : result.history) {
      std::printf("%8lld %12lld %16.6g %10.3f\n",
                  static_cast<long long>(p.round),
                  static_cast<long long>(p.evaluations), p.best, p.seconds);
    }
    if (result.rounds > 0) {
      std::printf("# best=%g after %lld rounds; %.4f s/round\n", result.best,
                  static_cast<long long>(result.rounds),
                  result.seconds / static_cast<double>(result.rounds));
    }
    if (result.rounds_to_target >= 0) {
      std::printf("# reached target %g at round %lld\n", config.target,
                  static_cast<long long>(result.rounds_to_target));
    }
  }
};

int main(int argc, char** argv) {
  return mrs::Main<PsoRosenbrock>(argc, argv);
}
