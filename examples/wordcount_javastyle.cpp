// WordCount against the Java-flavoured API — the C++ analogue of the
// paper's Program 2, kept deliberately faithful to its shape (wrapper
// Writable types, the class-configuration ritual, explicit tokenizer
// state) so the subjective comparison in bench_program_comparison has a
// real artifact to measure against examples/quickstart.cpp.
//
//   build/examples/wordcount_javastyle <in-dir> <out-dir>
//
// Executes for real on the LocalJobRunner and reports the hadoopsim
// cluster latency the same job would have paid on the paper's cluster.
#include <cstdio>
#include <string>

#include "common/strings.h"
#include "hadoopsim/javaapi.h"

using mrs::javaapi::Configuration;
using mrs::javaapi::Context;
using mrs::javaapi::FileInputFormat;
using mrs::javaapi::FileOutputFormat;
using mrs::javaapi::IntWritable;
using mrs::javaapi::Job;
using mrs::javaapi::LongWritable;
using mrs::javaapi::Path;
using mrs::javaapi::Text;

class TokenizerMapper : public mrs::javaapi::Mapper {
 public:
  void map(const LongWritable& key, const Text& value,
           Context& context) override {
    (void)key;
    for (std::string_view token : mrs::SplitWhitespace(value.toString())) {
      word_.set(std::string(token));
      context.write(word_, one_);
    }
  }

 private:
  const IntWritable one_{1};
  Text word_;
};

class IntSumReducer : public mrs::javaapi::Reducer {
 public:
  void reduce(const Text& key, const std::vector<IntWritable>& values,
              Context& context) override {
    int64_t sum = 0;
    for (const IntWritable& val : values) {
      sum += val.get();
    }
    result_.set(sum);
    context.write(key, result_);
  }

 private:
  IntWritable result_;
};

int main(int argc, char** argv) {
  Configuration conf;
  if (argc != 3) {
    std::fprintf(stderr, "Usage: wordcount <in> <out>\n");
    return 2;
  }
  auto job = Job::getInstance(conf, "word count");
  if (!job.ok()) {
    std::fprintf(stderr, "error: %s\n", job.status().ToString().c_str());
    return 1;
  }
  (*job)->setJarByClass("WordCount");
  (*job)->setMapperClass<TokenizerMapper>();
  (*job)->setCombinerClass<IntSumReducer>();
  (*job)->setReducerClass<IntSumReducer>();
  (*job)->setOutputKeyClass("Text");
  (*job)->setOutputValueClass("IntWritable");
  FileInputFormat::addInputPath(**job, Path(argv[1]));
  FileOutputFormat::setOutputPath(**job, Path(argv[2]));
  auto ok = (*job)->waitForCompletion(true);
  if (!ok.ok()) {
    std::fprintf(stderr, "error: %s\n", ok.status().ToString().c_str());
    return 1;
  }
  const auto& timing = (*job)->simulated_timing();
  std::printf("output records: %zu\n", (*job)->output().size());
  std::printf("simulated cluster time: %.1f s (startup %.1f s)\n",
              timing.total, timing.startup());
  return *ok ? 0 : 1;
}
