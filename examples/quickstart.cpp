// Quickstart: WordCount in mrs-cpp — the C++ analogue of the paper's
// Program 1.
//
//   build/examples/quickstart [options] <file-or-dir>...
//
// Try it on any text, with any implementation:
//   build/examples/quickstart README.md
//   build/examples/quickstart -I masterslave -N 4 data/
//
// The whole program is the map method, the reduce method, and one line of
// main — everything else (task decomposition, scheduling, data movement,
// RPC when running distributed) is the framework's job.
#include "common/strings.h"
#include "rt/mrs_main.h"

class WordCount : public mrs::MapReduce {
 public:
  void Map(const mrs::Value& key, const mrs::Value& value,
           const mrs::Emitter& emit) override {
    (void)key;  // line number, unused
    for (std::string_view word : mrs::SplitWhitespace(value.AsString())) {
      emit(mrs::Value(word), mrs::Value(int64_t{1}));
    }
  }

  void Reduce(const mrs::Value& key, const mrs::ValueList& values,
              const mrs::ValueEmitter& emit) override {
    (void)key;
    int64_t sum = 0;
    for (const mrs::Value& v : values) sum += v.AsInt();
    emit(mrs::Value(sum));
  }
};

int main(int argc, char** argv) { return mrs::Main<WordCount>(argc, argv); }
