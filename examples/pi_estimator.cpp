// PiEstimator: Monte-Carlo π from Halton points (paper §V-B, Fig 3).
//
//   build/examples/pi_estimator --pi-samples 1000000 --pi-tasks 8
//       --pi-engine native|vm|treewalk [-I masterslave -N 4]
//
// The map input is a set of (start, count) sample ranges; each map task
// counts how many of its Halton points fall inside the quarter circle
// using the selected inner-loop engine: native C++ ("C module"), the
// MiniPy bytecode VM ("PyPy"), or the MiniPy tree-walking interpreter
// ("pure Python").  The reduce sums the counts.
#include <cstdio>

#include "halton/pi_program.h"
#include "rt/mrs_main.h"

class PiEstimator : public mrs::PiEstimatorProgram {
 public:
  mrs::Status Run(mrs::Job& job) override {
    MRS_RETURN_IF_ERROR(mrs::PiEstimatorProgram::Run(job));
    Report();
    return mrs::Status::Ok();
  }
  mrs::Status Bypass() override {
    MRS_RETURN_IF_ERROR(mrs::PiEstimatorProgram::Bypass());
    Report();
    return mrs::Status::Ok();
  }

 private:
  void Report() const {
    std::printf("engine=%s samples=%lld inside=%lld pi=%.8f\n",
                std::string(mrs::PiEngineName(engine)).c_str(),
                static_cast<long long>(samples),
                static_cast<long long>(inside), estimate);
  }
};

int main(int argc, char** argv) { return mrs::Main<PiEstimator>(argc, argv); }
