// K-means clustering example (see src/kmeans/kmeans.h for the dataflow).
//
//   build/examples/kmeans [--km-points 20000 --km-clusters 8 --km-dims 8]
//       [--km-rounds 30] [--km-mode iterative|replan] [-I masterslave -N 4]
//
// The default iterative mode pins the point chunks resident on their
// executing runner/slaves and broadcasts only the centroids between
// supersteps; --km-mode replan re-ships the full carry-state every round.
#include "kmeans/kmeans.h"
#include "rt/mrs_main.h"

namespace {

class KMeansMain : public mrs::kmeans::KMeansProgram {
 public:
  KMeansMain() { print_report = true; }
};

}  // namespace

int main(int argc, char** argv) { return mrs::Main<KMeansMain>(argc, argv); }
