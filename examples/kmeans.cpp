// K-means clustering as iterative MapReduce — the algorithm class the
// paper's introduction leads with (ref [2], "Parallel k-means clustering
// based on MapReduce").
//
//   build/examples/kmeans [--km-points 20000 --km-clusters 8 --km-dims 8]
//       [--km-rounds 30] [-I masterslave -N 4]
//
// Dataflow (single-input MapReduce, same carry-state pattern as Apiary
// PSO): the working records are point *chunks* that also carry the current
// centroids.  Each round:
//   map "assign":   for its chunk, accumulate per-centroid partial sums and
//                   broadcast them to every chunk key; re-emit own points.
//   reduce "recenter": each chunk receives all partial sums, recomputes the
//                   identical new centroids deterministically, and packs
//                   (points + new centroids) for the next round.
// All implementations (bypass / serial / mockparallel / masterslave)
// produce bit-identical centroid trajectories.
#include <algorithm>
#include <cmath>
#include <limits>
#include <cstdio>

#include "rt/mrs_main.h"

namespace {

using mrs::Emitter;
using mrs::KeyValue;
using mrs::Value;
using mrs::ValueEmitter;
using mrs::ValueList;

Value PackVec(const std::vector<double>& v) {
  ValueList list;
  list.reserve(v.size());
  for (double x : v) list.push_back(Value(x));
  return Value(std::move(list));
}

std::vector<double> UnpackVec(const Value& v) {
  std::vector<double> out;
  out.reserve(v.AsList().size());
  for (const Value& x : v.AsList()) out.push_back(x.AsDouble());
  return out;
}

/// Chunk payload: ["chunk", [centroid...], [point...]].
/// Sums message:  ["sums", [sum-vector...], [count...]].
Value PackChunk(const std::vector<std::vector<double>>& centroids,
                const std::vector<std::vector<double>>& points) {
  ValueList list;
  list.push_back(Value("chunk"));
  ValueList cents;
  for (const auto& c : centroids) cents.push_back(PackVec(c));
  list.push_back(Value(std::move(cents)));
  ValueList pts;
  for (const auto& p : points) pts.push_back(PackVec(p));
  list.push_back(Value(std::move(pts)));
  return Value(std::move(list));
}

class KMeans : public mrs::MapReduce {
 public:
  int num_points = 20000;
  int clusters = 8;
  int dims = 8;
  int chunks = 8;
  int max_rounds = 30;
  double tolerance = 1e-6;

  // Results.
  std::vector<std::vector<double>> centroids;
  int rounds_run = 0;

  KMeans() {
    RegisterMap("assign",
                [this](const Value& k, const Value& v, const Emitter& e) {
                  AssignOp(k, v, e);
                });
    RegisterReduce("recenter", [this](const Value& k, const ValueList& vs,
                                      const ValueEmitter& e) {
      RecenterOp(k, vs, e);
    });
  }

  void AddOptions(mrs::OptionParser* parser) override {
    parser->Add("km-points", 0, true, "number of points", "20000");
    parser->Add("km-clusters", 0, true, "number of clusters", "8");
    parser->Add("km-dims", 0, true, "point dimensionality", "8");
    parser->Add("km-chunks", 0, true, "point chunks (map tasks)", "8");
    parser->Add("km-rounds", 0, true, "maximum iterations", "30");
  }

  mrs::Status Init(const mrs::Options& opts) override {
    MRS_RETURN_IF_ERROR(mrs::MapReduce::Init(opts));
    if (opts.Has("km-points")) {
      num_points = static_cast<int>(opts.GetInt("km-points", num_points));
      clusters = static_cast<int>(opts.GetInt("km-clusters", clusters));
      dims = static_cast<int>(opts.GetInt("km-dims", dims));
      chunks = static_cast<int>(opts.GetInt("km-chunks", chunks));
      max_rounds = static_cast<int>(opts.GetInt("km-rounds", max_rounds));
    }
    return mrs::Status::Ok();
  }

  // ---- Data generation: Gaussian blobs around hidden true centers ------

  std::vector<std::vector<double>> TrueCenters() const {
    std::vector<std::vector<double>> centers;
    for (int c = 0; c < clusters; ++c) {
      mrs::MT19937_64 rng = Random({0xC0, static_cast<uint64_t>(c)});
      std::vector<double> center(static_cast<size_t>(dims));
      for (double& x : center) x = rng.NextUniform(-50, 50);
      centers.push_back(std::move(center));
    }
    return centers;
  }

  std::vector<std::vector<double>> ChunkPoints(int chunk) const {
    auto centers = TrueCenters();
    mrs::MT19937_64 rng = Random({0xC1, static_cast<uint64_t>(chunk)});
    int per_chunk = num_points / chunks + (chunk < num_points % chunks);
    std::vector<std::vector<double>> points;
    points.reserve(static_cast<size_t>(per_chunk));
    for (int i = 0; i < per_chunk; ++i) {
      const auto& center = centers[rng.NextBounded(
          static_cast<uint64_t>(clusters))];
      std::vector<double> p(static_cast<size_t>(dims));
      for (int d = 0; d < dims; ++d) {
        p[static_cast<size_t>(d)] = center[static_cast<size_t>(d)] +
                                    rng.NextGaussian() * 2.0;
      }
      points.push_back(std::move(p));
    }
    return points;
  }

  std::vector<std::vector<double>> InitialCentroids() const {
    // Perturbed copies of the first points (deterministic seeding).
    std::vector<std::vector<double>> cents;
    mrs::MT19937_64 rng = Random({0xC2});
    for (int c = 0; c < clusters; ++c) {
      std::vector<double> x(static_cast<size_t>(dims));
      for (double& v : x) v = rng.NextUniform(-60, 60);
      cents.push_back(std::move(x));
    }
    return cents;
  }

  // ---- The operations ----------------------------------------------------

  static int Nearest(const std::vector<double>& p,
                     const std::vector<std::vector<double>>& cents) {
    int best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < cents.size(); ++c) {
      double d = 0;
      for (size_t i = 0; i < p.size(); ++i) {
        double diff = p[i] - cents[c][i];
        d += diff * diff;
      }
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(c);
      }
    }
    return best;
  }

  void AssignOp(const Value& key, const Value& value, const Emitter& emit) {
    const ValueList& chunk = value.AsList();
    if (!chunk[0].is_string() || chunk[0].AsString() != "chunk") return;
    std::vector<std::vector<double>> cents;
    for (const Value& c : chunk[1].AsList()) cents.push_back(UnpackVec(c));

    std::vector<std::vector<double>> sums(
        cents.size(), std::vector<double>(static_cast<size_t>(dims), 0.0));
    std::vector<int64_t> counts(cents.size(), 0);
    for (const Value& pv : chunk[2].AsList()) {
      std::vector<double> p = UnpackVec(pv);
      int c = Nearest(p, cents);
      for (int d = 0; d < dims; ++d) {
        sums[static_cast<size_t>(c)][static_cast<size_t>(d)] +=
            p[static_cast<size_t>(d)];
      }
      ++counts[static_cast<size_t>(c)];
    }

    // Broadcast partial sums to every chunk (allreduce over MapReduce).
    // The message carries the producing chunk's id so the reduce can
    // accumulate in chunk order — floating-point addition is not
    // associative, and bit-identical results across implementations
    // require a canonical order.
    ValueList msg;
    msg.push_back(Value("sums"));
    msg.push_back(Value(key.AsInt()));
    ValueList sum_vectors;
    for (const auto& s : sums) sum_vectors.push_back(PackVec(s));
    msg.push_back(Value(std::move(sum_vectors)));
    ValueList count_list;
    for (int64_t n : counts) count_list.push_back(Value(n));
    msg.push_back(Value(std::move(count_list)));
    Value packed_msg(std::move(msg));
    for (int other = 0; other < chunks; ++other) {
      emit(Value(static_cast<int64_t>(other)), packed_msg);
    }
    // Carry the points forward unchanged (centroids get replaced in reduce).
    emit(key, value);
  }

  void RecenterOp(const Value& key, const ValueList& values,
                  const ValueEmitter& emit) {
    (void)key;
    std::vector<std::vector<double>> total_sums(
        static_cast<size_t>(clusters),
        std::vector<double>(static_cast<size_t>(dims), 0.0));
    std::vector<int64_t> total_counts(static_cast<size_t>(clusters), 0);
    const Value* chunk = nullptr;
    std::vector<std::pair<int64_t, const Value*>> messages;
    for (const Value& v : values) {
      const ValueList& list = v.AsList();
      if (list[0].AsString() == "chunk") {
        chunk = &v;
        continue;
      }
      messages.emplace_back(list[1].AsInt(), &v);
    }
    // Accumulate in producing-chunk order (canonical FP summation order).
    std::sort(messages.begin(), messages.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [chunk_id, mv] : messages) {
      (void)chunk_id;
      const ValueList& list = mv->AsList();
      const ValueList& sum_vectors = list[2].AsList();
      const ValueList& counts = list[3].AsList();
      for (int c = 0; c < clusters; ++c) {
        std::vector<double> s = UnpackVec(sum_vectors[static_cast<size_t>(c)]);
        for (int d = 0; d < dims; ++d) {
          total_sums[static_cast<size_t>(c)][static_cast<size_t>(d)] +=
              s[static_cast<size_t>(d)];
        }
        total_counts[static_cast<size_t>(c)] +=
            counts[static_cast<size_t>(c)].AsInt();
      }
    }
    if (chunk == nullptr) return;

    const ValueList& old = chunk->AsList();
    std::vector<std::vector<double>> new_cents;
    for (int c = 0; c < clusters; ++c) {
      if (total_counts[static_cast<size_t>(c)] > 0) {
        std::vector<double> mean = total_sums[static_cast<size_t>(c)];
        for (double& x : mean) {
          x /= static_cast<double>(total_counts[static_cast<size_t>(c)]);
        }
        new_cents.push_back(std::move(mean));
      } else {
        new_cents.push_back(UnpackVec(old[1].AsList()[static_cast<size_t>(c)]));
      }
    }
    std::vector<std::vector<double>> points;
    for (const Value& pv : old[2].AsList()) points.push_back(UnpackVec(pv));
    emit(PackChunk(new_cents, points));
  }

  // ---- Drivers -------------------------------------------------------------

  mrs::Status Run(mrs::Job& job) override {
    std::vector<KeyValue> initial;
    auto cents = InitialCentroids();
    for (int chunk = 0; chunk < chunks; ++chunk) {
      initial.push_back(KeyValue{Value(static_cast<int64_t>(chunk)),
                                 PackChunk(cents, ChunkPoints(chunk))});
    }
    mrs::DataSetPtr data = job.LocalData(std::move(initial), chunks);
    mrs::DataSetOptions assign_options;
    assign_options.op_name = "assign";
    assign_options.num_splits = chunks;
    mrs::DataSetOptions recenter_options;
    recenter_options.op_name = "recenter";
    recenter_options.num_splits = chunks;

    std::vector<std::vector<double>> previous = cents;
    for (int round = 1; round <= max_rounds; ++round) {
      mrs::DataSetPtr assigned = job.MapData(data, assign_options);
      mrs::DataSetPtr next = job.ReduceData(assigned, recenter_options);
      rounds_run = round;

      MRS_ASSIGN_OR_RETURN(std::vector<KeyValue> out, job.Collect(next));
      // Only now is it safe to free the consumed datasets: a lazy runner
      // computes `next` at Collect time from `data` and `assigned`.
      job.Discard(assigned);
      job.Discard(data);
      data = next;
      if (out.empty()) return mrs::InternalError("empty kmeans state");
      centroids.clear();
      for (const Value& c : out[0].value.AsList()[1].AsList()) {
        centroids.push_back(UnpackVec(c));
      }
      double shift = 0;
      for (int c = 0; c < clusters; ++c) {
        for (int d = 0; d < dims; ++d) {
          double diff = centroids[static_cast<size_t>(c)][static_cast<size_t>(d)] -
                        previous[static_cast<size_t>(c)][static_cast<size_t>(d)];
          shift += diff * diff;
        }
      }
      previous = centroids;
      if (shift < tolerance) break;
    }
    Report();
    return mrs::Status::Ok();
  }

  mrs::Status Bypass() override {
    // Plain serial k-means over the same data; must match Run exactly.
    auto cents = InitialCentroids();
    std::vector<std::vector<std::vector<double>>> all_chunks;
    for (int chunk = 0; chunk < chunks; ++chunk) {
      all_chunks.push_back(ChunkPoints(chunk));
    }
    std::vector<std::vector<double>> previous = cents;
    for (int round = 1; round <= max_rounds; ++round) {
      std::vector<std::vector<double>> sums(
          static_cast<size_t>(clusters),
          std::vector<double>(static_cast<size_t>(dims), 0.0));
      std::vector<int64_t> counts(static_cast<size_t>(clusters), 0);
      // Accumulate per chunk, then combine in chunk order — matching the
      // reduce's deterministic message order is unnecessary because
      // addition here happens in the same per-chunk grouping.
      for (const auto& chunk_points : all_chunks) {
        std::vector<std::vector<double>> chunk_sums(
            static_cast<size_t>(clusters),
            std::vector<double>(static_cast<size_t>(dims), 0.0));
        std::vector<int64_t> chunk_counts(static_cast<size_t>(clusters), 0);
        for (const auto& p : chunk_points) {
          int c = Nearest(p, cents);
          for (int d = 0; d < dims; ++d) {
            chunk_sums[static_cast<size_t>(c)][static_cast<size_t>(d)] +=
                p[static_cast<size_t>(d)];
          }
          ++chunk_counts[static_cast<size_t>(c)];
        }
        for (int c = 0; c < clusters; ++c) {
          for (int d = 0; d < dims; ++d) {
            sums[static_cast<size_t>(c)][static_cast<size_t>(d)] +=
                chunk_sums[static_cast<size_t>(c)][static_cast<size_t>(d)];
          }
          counts[static_cast<size_t>(c)] += chunk_counts[static_cast<size_t>(c)];
        }
      }
      for (int c = 0; c < clusters; ++c) {
        if (counts[static_cast<size_t>(c)] > 0) {
          for (int d = 0; d < dims; ++d) {
            sums[static_cast<size_t>(c)][static_cast<size_t>(d)] /=
                static_cast<double>(counts[static_cast<size_t>(c)]);
          }
          cents[static_cast<size_t>(c)] = sums[static_cast<size_t>(c)];
        }
      }
      rounds_run = round;
      double shift = 0;
      for (int c = 0; c < clusters; ++c) {
        for (int d = 0; d < dims; ++d) {
          double diff = cents[static_cast<size_t>(c)][static_cast<size_t>(d)] -
                        previous[static_cast<size_t>(c)][static_cast<size_t>(d)];
          shift += diff * diff;
        }
      }
      previous = cents;
      if (shift < tolerance) break;
    }
    centroids = cents;
    Report();
    return mrs::Status::Ok();
  }

 private:
  void Report() const {
    std::printf("# k-means: %d points, %d clusters, %d dims, %d chunks\n",
                num_points, clusters, dims, chunks);
    std::printf("# converged after %d rounds\n", rounds_run);
    for (size_t c = 0; c < centroids.size(); ++c) {
      std::printf("centroid %zu: [", c);
      for (size_t d = 0; d < centroids[c].size(); ++d) {
        std::printf("%s%.4f", d ? ", " : "", centroids[c][d]);
      }
      std::printf("]\n");
    }
  }
};

}  // namespace

int main(int argc, char** argv) { return mrs::Main<KMeans>(argc, argv); }
