file(REMOVE_RECURSE
  "CMakeFiles/wordcount_javastyle.dir/wordcount_javastyle.cpp.o"
  "CMakeFiles/wordcount_javastyle.dir/wordcount_javastyle.cpp.o.d"
  "wordcount_javastyle"
  "wordcount_javastyle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordcount_javastyle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
