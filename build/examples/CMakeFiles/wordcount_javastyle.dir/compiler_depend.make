# Empty compiler generated dependencies file for wordcount_javastyle.
# This may be replaced when dependencies are built.
