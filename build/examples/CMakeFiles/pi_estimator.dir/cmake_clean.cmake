file(REMOVE_RECURSE
  "CMakeFiles/pi_estimator.dir/pi_estimator.cpp.o"
  "CMakeFiles/pi_estimator.dir/pi_estimator.cpp.o.d"
  "pi_estimator"
  "pi_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
