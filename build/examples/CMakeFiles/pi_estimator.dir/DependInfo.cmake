
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pi_estimator.cpp" "examples/CMakeFiles/pi_estimator.dir/pi_estimator.cpp.o" "gcc" "examples/CMakeFiles/pi_estimator.dir/pi_estimator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/mrs_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/halton/CMakeFiles/mrs_halton.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlrpc/CMakeFiles/mrs_xmlrpc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mrs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/mrs_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mrs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/mrs_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/ser/CMakeFiles/mrs_ser.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/mrs_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/mrs_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
