# Empty dependencies file for pi_estimator.
# This may be replaced when dependencies are built.
