file(REMOVE_RECURSE
  "CMakeFiles/kmeans.dir/kmeans.cpp.o"
  "CMakeFiles/kmeans.dir/kmeans.cpp.o.d"
  "kmeans"
  "kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
