
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/corpus_gen.cpp" "examples/CMakeFiles/corpus_gen.dir/corpus_gen.cpp.o" "gcc" "examples/CMakeFiles/corpus_gen.dir/corpus_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/mrs_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/mrs_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/ser/CMakeFiles/mrs_ser.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/mrs_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
