# Empty dependencies file for pso_rosenbrock.
# This may be replaced when dependencies are built.
