file(REMOVE_RECURSE
  "CMakeFiles/pso_rosenbrock.dir/pso_rosenbrock.cpp.o"
  "CMakeFiles/pso_rosenbrock.dir/pso_rosenbrock.cpp.o.d"
  "pso_rosenbrock"
  "pso_rosenbrock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pso_rosenbrock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
