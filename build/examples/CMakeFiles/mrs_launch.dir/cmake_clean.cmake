file(REMOVE_RECURSE
  "CMakeFiles/mrs_launch.dir/mrs_launch.cpp.o"
  "CMakeFiles/mrs_launch.dir/mrs_launch.cpp.o.d"
  "mrs_launch"
  "mrs_launch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrs_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
