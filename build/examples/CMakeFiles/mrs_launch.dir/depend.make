# Empty dependencies file for mrs_launch.
# This may be replaced when dependencies are built.
