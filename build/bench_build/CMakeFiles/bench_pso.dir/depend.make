# Empty dependencies file for bench_pso.
# This may be replaced when dependencies are built.
