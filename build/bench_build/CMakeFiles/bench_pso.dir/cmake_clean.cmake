file(REMOVE_RECURSE
  "../bench/bench_pso"
  "../bench/bench_pso.pdb"
  "CMakeFiles/bench_pso.dir/bench_pso.cpp.o"
  "CMakeFiles/bench_pso.dir/bench_pso.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
