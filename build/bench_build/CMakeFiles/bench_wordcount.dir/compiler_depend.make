# Empty compiler generated dependencies file for bench_wordcount.
# This may be replaced when dependencies are built.
