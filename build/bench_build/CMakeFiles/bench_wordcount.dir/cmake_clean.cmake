file(REMOVE_RECURSE
  "../bench/bench_wordcount"
  "../bench/bench_wordcount.pdb"
  "CMakeFiles/bench_wordcount.dir/bench_wordcount.cpp.o"
  "CMakeFiles/bench_wordcount.dir/bench_wordcount.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
