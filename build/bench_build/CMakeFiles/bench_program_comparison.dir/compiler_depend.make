# Empty compiler generated dependencies file for bench_program_comparison.
# This may be replaced when dependencies are built.
