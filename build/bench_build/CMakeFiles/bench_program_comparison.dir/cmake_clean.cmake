file(REMOVE_RECURSE
  "../bench/bench_program_comparison"
  "../bench/bench_program_comparison.pdb"
  "CMakeFiles/bench_program_comparison.dir/bench_program_comparison.cpp.o"
  "CMakeFiles/bench_program_comparison.dir/bench_program_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_program_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
