# Empty dependencies file for bench_pso_hadoop_estimate.
# This may be replaced when dependencies are built.
