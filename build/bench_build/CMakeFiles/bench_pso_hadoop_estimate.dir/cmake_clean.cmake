file(REMOVE_RECURSE
  "../bench/bench_pso_hadoop_estimate"
  "../bench/bench_pso_hadoop_estimate.pdb"
  "CMakeFiles/bench_pso_hadoop_estimate.dir/bench_pso_hadoop_estimate.cpp.o"
  "CMakeFiles/bench_pso_hadoop_estimate.dir/bench_pso_hadoop_estimate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pso_hadoop_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
