file(REMOVE_RECURSE
  "../bench/bench_iteration_overhead"
  "../bench/bench_iteration_overhead.pdb"
  "CMakeFiles/bench_iteration_overhead.dir/bench_iteration_overhead.cpp.o"
  "CMakeFiles/bench_iteration_overhead.dir/bench_iteration_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iteration_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
