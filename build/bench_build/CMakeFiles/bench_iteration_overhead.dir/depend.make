# Empty dependencies file for bench_iteration_overhead.
# This may be replaced when dependencies are built.
