# Empty compiler generated dependencies file for bench_pi.
# This may be replaced when dependencies are built.
