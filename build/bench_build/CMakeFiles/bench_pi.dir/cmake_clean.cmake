file(REMOVE_RECURSE
  "../bench/bench_pi"
  "../bench/bench_pi.pdb"
  "CMakeFiles/bench_pi.dir/bench_pi.cpp.o"
  "CMakeFiles/bench_pi.dir/bench_pi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
