file(REMOVE_RECURSE
  "libmrs_rt.a"
)
