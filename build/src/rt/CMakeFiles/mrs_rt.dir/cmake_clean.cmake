file(REMOVE_RECURSE
  "CMakeFiles/mrs_rt.dir/cluster.cpp.o"
  "CMakeFiles/mrs_rt.dir/cluster.cpp.o.d"
  "CMakeFiles/mrs_rt.dir/equivalence.cpp.o"
  "CMakeFiles/mrs_rt.dir/equivalence.cpp.o.d"
  "CMakeFiles/mrs_rt.dir/master.cpp.o"
  "CMakeFiles/mrs_rt.dir/master.cpp.o.d"
  "CMakeFiles/mrs_rt.dir/mrs_main.cpp.o"
  "CMakeFiles/mrs_rt.dir/mrs_main.cpp.o.d"
  "CMakeFiles/mrs_rt.dir/protocol.cpp.o"
  "CMakeFiles/mrs_rt.dir/protocol.cpp.o.d"
  "CMakeFiles/mrs_rt.dir/slave.cpp.o"
  "CMakeFiles/mrs_rt.dir/slave.cpp.o.d"
  "libmrs_rt.a"
  "libmrs_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrs_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
