# Empty compiler generated dependencies file for mrs_rt.
# This may be replaced when dependencies are built.
