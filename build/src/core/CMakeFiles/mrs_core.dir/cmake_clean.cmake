file(REMOVE_RECURSE
  "CMakeFiles/mrs_core.dir/dataset.cpp.o"
  "CMakeFiles/mrs_core.dir/dataset.cpp.o.d"
  "CMakeFiles/mrs_core.dir/fetch_registry.cpp.o"
  "CMakeFiles/mrs_core.dir/fetch_registry.cpp.o.d"
  "CMakeFiles/mrs_core.dir/job.cpp.o"
  "CMakeFiles/mrs_core.dir/job.cpp.o.d"
  "CMakeFiles/mrs_core.dir/mock_runner.cpp.o"
  "CMakeFiles/mrs_core.dir/mock_runner.cpp.o.d"
  "CMakeFiles/mrs_core.dir/program.cpp.o"
  "CMakeFiles/mrs_core.dir/program.cpp.o.d"
  "CMakeFiles/mrs_core.dir/serial_runner.cpp.o"
  "CMakeFiles/mrs_core.dir/serial_runner.cpp.o.d"
  "CMakeFiles/mrs_core.dir/task.cpp.o"
  "CMakeFiles/mrs_core.dir/task.cpp.o.d"
  "libmrs_core.a"
  "libmrs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
