file(REMOVE_RECURSE
  "libmrs_core.a"
)
