# Empty dependencies file for mrs_core.
# This may be replaced when dependencies are built.
