
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dataset.cpp" "src/core/CMakeFiles/mrs_core.dir/dataset.cpp.o" "gcc" "src/core/CMakeFiles/mrs_core.dir/dataset.cpp.o.d"
  "/root/repo/src/core/fetch_registry.cpp" "src/core/CMakeFiles/mrs_core.dir/fetch_registry.cpp.o" "gcc" "src/core/CMakeFiles/mrs_core.dir/fetch_registry.cpp.o.d"
  "/root/repo/src/core/job.cpp" "src/core/CMakeFiles/mrs_core.dir/job.cpp.o" "gcc" "src/core/CMakeFiles/mrs_core.dir/job.cpp.o.d"
  "/root/repo/src/core/mock_runner.cpp" "src/core/CMakeFiles/mrs_core.dir/mock_runner.cpp.o" "gcc" "src/core/CMakeFiles/mrs_core.dir/mock_runner.cpp.o.d"
  "/root/repo/src/core/program.cpp" "src/core/CMakeFiles/mrs_core.dir/program.cpp.o" "gcc" "src/core/CMakeFiles/mrs_core.dir/program.cpp.o.d"
  "/root/repo/src/core/serial_runner.cpp" "src/core/CMakeFiles/mrs_core.dir/serial_runner.cpp.o" "gcc" "src/core/CMakeFiles/mrs_core.dir/serial_runner.cpp.o.d"
  "/root/repo/src/core/task.cpp" "src/core/CMakeFiles/mrs_core.dir/task.cpp.o" "gcc" "src/core/CMakeFiles/mrs_core.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ser/CMakeFiles/mrs_ser.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/mrs_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/mrs_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/mrs_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mrs_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
