file(REMOVE_RECURSE
  "CMakeFiles/mrs_net.dir/event_loop.cpp.o"
  "CMakeFiles/mrs_net.dir/event_loop.cpp.o.d"
  "CMakeFiles/mrs_net.dir/socket.cpp.o"
  "CMakeFiles/mrs_net.dir/socket.cpp.o.d"
  "CMakeFiles/mrs_net.dir/waker.cpp.o"
  "CMakeFiles/mrs_net.dir/waker.cpp.o.d"
  "libmrs_net.a"
  "libmrs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
