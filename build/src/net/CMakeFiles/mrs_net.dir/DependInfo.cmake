
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/event_loop.cpp" "src/net/CMakeFiles/mrs_net.dir/event_loop.cpp.o" "gcc" "src/net/CMakeFiles/mrs_net.dir/event_loop.cpp.o.d"
  "/root/repo/src/net/socket.cpp" "src/net/CMakeFiles/mrs_net.dir/socket.cpp.o" "gcc" "src/net/CMakeFiles/mrs_net.dir/socket.cpp.o.d"
  "/root/repo/src/net/waker.cpp" "src/net/CMakeFiles/mrs_net.dir/waker.cpp.o" "gcc" "src/net/CMakeFiles/mrs_net.dir/waker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
