# Empty compiler generated dependencies file for mrs_xmlrpc.
# This may be replaced when dependencies are built.
