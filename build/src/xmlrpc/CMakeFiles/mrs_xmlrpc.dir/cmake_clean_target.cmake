file(REMOVE_RECURSE
  "libmrs_xmlrpc.a"
)
