file(REMOVE_RECURSE
  "CMakeFiles/mrs_xmlrpc.dir/client.cpp.o"
  "CMakeFiles/mrs_xmlrpc.dir/client.cpp.o.d"
  "CMakeFiles/mrs_xmlrpc.dir/protocol.cpp.o"
  "CMakeFiles/mrs_xmlrpc.dir/protocol.cpp.o.d"
  "CMakeFiles/mrs_xmlrpc.dir/server.cpp.o"
  "CMakeFiles/mrs_xmlrpc.dir/server.cpp.o.d"
  "CMakeFiles/mrs_xmlrpc.dir/value.cpp.o"
  "CMakeFiles/mrs_xmlrpc.dir/value.cpp.o.d"
  "CMakeFiles/mrs_xmlrpc.dir/xml.cpp.o"
  "CMakeFiles/mrs_xmlrpc.dir/xml.cpp.o.d"
  "libmrs_xmlrpc.a"
  "libmrs_xmlrpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrs_xmlrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
