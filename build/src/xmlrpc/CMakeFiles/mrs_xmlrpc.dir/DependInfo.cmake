
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xmlrpc/client.cpp" "src/xmlrpc/CMakeFiles/mrs_xmlrpc.dir/client.cpp.o" "gcc" "src/xmlrpc/CMakeFiles/mrs_xmlrpc.dir/client.cpp.o.d"
  "/root/repo/src/xmlrpc/protocol.cpp" "src/xmlrpc/CMakeFiles/mrs_xmlrpc.dir/protocol.cpp.o" "gcc" "src/xmlrpc/CMakeFiles/mrs_xmlrpc.dir/protocol.cpp.o.d"
  "/root/repo/src/xmlrpc/server.cpp" "src/xmlrpc/CMakeFiles/mrs_xmlrpc.dir/server.cpp.o" "gcc" "src/xmlrpc/CMakeFiles/mrs_xmlrpc.dir/server.cpp.o.d"
  "/root/repo/src/xmlrpc/value.cpp" "src/xmlrpc/CMakeFiles/mrs_xmlrpc.dir/value.cpp.o" "gcc" "src/xmlrpc/CMakeFiles/mrs_xmlrpc.dir/value.cpp.o.d"
  "/root/repo/src/xmlrpc/xml.cpp" "src/xmlrpc/CMakeFiles/mrs_xmlrpc.dir/xml.cpp.o" "gcc" "src/xmlrpc/CMakeFiles/mrs_xmlrpc.dir/xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/mrs_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mrs_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
