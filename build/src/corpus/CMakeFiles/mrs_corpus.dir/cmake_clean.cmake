file(REMOVE_RECURSE
  "CMakeFiles/mrs_corpus.dir/corpus.cpp.o"
  "CMakeFiles/mrs_corpus.dir/corpus.cpp.o.d"
  "libmrs_corpus.a"
  "libmrs_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrs_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
