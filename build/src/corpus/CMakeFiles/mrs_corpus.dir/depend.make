# Empty dependencies file for mrs_corpus.
# This may be replaced when dependencies are built.
