file(REMOVE_RECURSE
  "libmrs_corpus.a"
)
