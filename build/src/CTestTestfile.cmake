# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("rng")
subdirs("net")
subdirs("http")
subdirs("xmlrpc")
subdirs("ser")
subdirs("fs")
subdirs("core")
subdirs("rt")
subdirs("interp")
subdirs("hadoopsim")
subdirs("pso")
subdirs("halton")
subdirs("corpus")
