# Empty compiler generated dependencies file for mrs_interp.
# This may be replaced when dependencies are built.
