
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/compiler.cpp" "src/interp/CMakeFiles/mrs_interp.dir/compiler.cpp.o" "gcc" "src/interp/CMakeFiles/mrs_interp.dir/compiler.cpp.o.d"
  "/root/repo/src/interp/lexer.cpp" "src/interp/CMakeFiles/mrs_interp.dir/lexer.cpp.o" "gcc" "src/interp/CMakeFiles/mrs_interp.dir/lexer.cpp.o.d"
  "/root/repo/src/interp/parser.cpp" "src/interp/CMakeFiles/mrs_interp.dir/parser.cpp.o" "gcc" "src/interp/CMakeFiles/mrs_interp.dir/parser.cpp.o.d"
  "/root/repo/src/interp/pyvalue.cpp" "src/interp/CMakeFiles/mrs_interp.dir/pyvalue.cpp.o" "gcc" "src/interp/CMakeFiles/mrs_interp.dir/pyvalue.cpp.o.d"
  "/root/repo/src/interp/treewalk.cpp" "src/interp/CMakeFiles/mrs_interp.dir/treewalk.cpp.o" "gcc" "src/interp/CMakeFiles/mrs_interp.dir/treewalk.cpp.o.d"
  "/root/repo/src/interp/vm.cpp" "src/interp/CMakeFiles/mrs_interp.dir/vm.cpp.o" "gcc" "src/interp/CMakeFiles/mrs_interp.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
