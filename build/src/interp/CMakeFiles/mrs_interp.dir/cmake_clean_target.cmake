file(REMOVE_RECURSE
  "libmrs_interp.a"
)
