file(REMOVE_RECURSE
  "CMakeFiles/mrs_interp.dir/compiler.cpp.o"
  "CMakeFiles/mrs_interp.dir/compiler.cpp.o.d"
  "CMakeFiles/mrs_interp.dir/lexer.cpp.o"
  "CMakeFiles/mrs_interp.dir/lexer.cpp.o.d"
  "CMakeFiles/mrs_interp.dir/parser.cpp.o"
  "CMakeFiles/mrs_interp.dir/parser.cpp.o.d"
  "CMakeFiles/mrs_interp.dir/pyvalue.cpp.o"
  "CMakeFiles/mrs_interp.dir/pyvalue.cpp.o.d"
  "CMakeFiles/mrs_interp.dir/treewalk.cpp.o"
  "CMakeFiles/mrs_interp.dir/treewalk.cpp.o.d"
  "CMakeFiles/mrs_interp.dir/vm.cpp.o"
  "CMakeFiles/mrs_interp.dir/vm.cpp.o.d"
  "libmrs_interp.a"
  "libmrs_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrs_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
