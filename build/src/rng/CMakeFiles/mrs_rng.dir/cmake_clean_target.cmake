file(REMOVE_RECURSE
  "libmrs_rng.a"
)
