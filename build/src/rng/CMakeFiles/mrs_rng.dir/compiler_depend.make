# Empty compiler generated dependencies file for mrs_rng.
# This may be replaced when dependencies are built.
