file(REMOVE_RECURSE
  "CMakeFiles/mrs_rng.dir/mt19937_64.cpp.o"
  "CMakeFiles/mrs_rng.dir/mt19937_64.cpp.o.d"
  "libmrs_rng.a"
  "libmrs_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrs_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
