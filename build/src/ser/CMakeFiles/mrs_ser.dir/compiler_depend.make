# Empty compiler generated dependencies file for mrs_ser.
# This may be replaced when dependencies are built.
