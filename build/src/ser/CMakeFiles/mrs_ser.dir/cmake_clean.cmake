file(REMOVE_RECURSE
  "CMakeFiles/mrs_ser.dir/record.cpp.o"
  "CMakeFiles/mrs_ser.dir/record.cpp.o.d"
  "CMakeFiles/mrs_ser.dir/value.cpp.o"
  "CMakeFiles/mrs_ser.dir/value.cpp.o.d"
  "libmrs_ser.a"
  "libmrs_ser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrs_ser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
