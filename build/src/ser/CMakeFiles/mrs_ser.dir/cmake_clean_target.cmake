file(REMOVE_RECURSE
  "libmrs_ser.a"
)
