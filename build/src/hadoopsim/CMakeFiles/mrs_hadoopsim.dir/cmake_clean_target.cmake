file(REMOVE_RECURSE
  "libmrs_hadoopsim.a"
)
