file(REMOVE_RECURSE
  "CMakeFiles/mrs_hadoopsim.dir/cluster.cpp.o"
  "CMakeFiles/mrs_hadoopsim.dir/cluster.cpp.o.d"
  "CMakeFiles/mrs_hadoopsim.dir/des.cpp.o"
  "CMakeFiles/mrs_hadoopsim.dir/des.cpp.o.d"
  "CMakeFiles/mrs_hadoopsim.dir/hdfs.cpp.o"
  "CMakeFiles/mrs_hadoopsim.dir/hdfs.cpp.o.d"
  "CMakeFiles/mrs_hadoopsim.dir/javaapi.cpp.o"
  "CMakeFiles/mrs_hadoopsim.dir/javaapi.cpp.o.d"
  "CMakeFiles/mrs_hadoopsim.dir/scripts.cpp.o"
  "CMakeFiles/mrs_hadoopsim.dir/scripts.cpp.o.d"
  "CMakeFiles/mrs_hadoopsim.dir/webhdfs.cpp.o"
  "CMakeFiles/mrs_hadoopsim.dir/webhdfs.cpp.o.d"
  "libmrs_hadoopsim.a"
  "libmrs_hadoopsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrs_hadoopsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
