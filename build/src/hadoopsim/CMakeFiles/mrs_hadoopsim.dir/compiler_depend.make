# Empty compiler generated dependencies file for mrs_hadoopsim.
# This may be replaced when dependencies are built.
