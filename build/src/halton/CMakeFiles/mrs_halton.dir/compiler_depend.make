# Empty compiler generated dependencies file for mrs_halton.
# This may be replaced when dependencies are built.
