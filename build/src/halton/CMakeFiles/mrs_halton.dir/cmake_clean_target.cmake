file(REMOVE_RECURSE
  "libmrs_halton.a"
)
