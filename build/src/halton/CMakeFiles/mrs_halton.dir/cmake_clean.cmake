file(REMOVE_RECURSE
  "CMakeFiles/mrs_halton.dir/halton.cpp.o"
  "CMakeFiles/mrs_halton.dir/halton.cpp.o.d"
  "CMakeFiles/mrs_halton.dir/pi_kernel.cpp.o"
  "CMakeFiles/mrs_halton.dir/pi_kernel.cpp.o.d"
  "CMakeFiles/mrs_halton.dir/pi_program.cpp.o"
  "CMakeFiles/mrs_halton.dir/pi_program.cpp.o.d"
  "libmrs_halton.a"
  "libmrs_halton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrs_halton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
