file(REMOVE_RECURSE
  "CMakeFiles/mrs_http.dir/client.cpp.o"
  "CMakeFiles/mrs_http.dir/client.cpp.o.d"
  "CMakeFiles/mrs_http.dir/message.cpp.o"
  "CMakeFiles/mrs_http.dir/message.cpp.o.d"
  "CMakeFiles/mrs_http.dir/parser.cpp.o"
  "CMakeFiles/mrs_http.dir/parser.cpp.o.d"
  "CMakeFiles/mrs_http.dir/server.cpp.o"
  "CMakeFiles/mrs_http.dir/server.cpp.o.d"
  "libmrs_http.a"
  "libmrs_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrs_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
