# Empty dependencies file for mrs_http.
# This may be replaced when dependencies are built.
