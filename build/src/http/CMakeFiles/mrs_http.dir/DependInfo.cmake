
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/client.cpp" "src/http/CMakeFiles/mrs_http.dir/client.cpp.o" "gcc" "src/http/CMakeFiles/mrs_http.dir/client.cpp.o.d"
  "/root/repo/src/http/message.cpp" "src/http/CMakeFiles/mrs_http.dir/message.cpp.o" "gcc" "src/http/CMakeFiles/mrs_http.dir/message.cpp.o.d"
  "/root/repo/src/http/parser.cpp" "src/http/CMakeFiles/mrs_http.dir/parser.cpp.o" "gcc" "src/http/CMakeFiles/mrs_http.dir/parser.cpp.o.d"
  "/root/repo/src/http/server.cpp" "src/http/CMakeFiles/mrs_http.dir/server.cpp.o" "gcc" "src/http/CMakeFiles/mrs_http.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mrs_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
