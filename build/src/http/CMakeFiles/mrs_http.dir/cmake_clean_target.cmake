file(REMOVE_RECURSE
  "libmrs_http.a"
)
