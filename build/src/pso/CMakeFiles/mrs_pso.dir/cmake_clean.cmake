file(REMOVE_RECURSE
  "CMakeFiles/mrs_pso.dir/apiary.cpp.o"
  "CMakeFiles/mrs_pso.dir/apiary.cpp.o.d"
  "CMakeFiles/mrs_pso.dir/functions.cpp.o"
  "CMakeFiles/mrs_pso.dir/functions.cpp.o.d"
  "CMakeFiles/mrs_pso.dir/swarm.cpp.o"
  "CMakeFiles/mrs_pso.dir/swarm.cpp.o.d"
  "libmrs_pso.a"
  "libmrs_pso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrs_pso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
