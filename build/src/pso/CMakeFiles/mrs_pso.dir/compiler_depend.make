# Empty compiler generated dependencies file for mrs_pso.
# This may be replaced when dependencies are built.
