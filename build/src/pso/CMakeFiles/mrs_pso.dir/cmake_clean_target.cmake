file(REMOVE_RECURSE
  "libmrs_pso.a"
)
