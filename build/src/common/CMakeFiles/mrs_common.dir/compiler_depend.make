# Empty compiler generated dependencies file for mrs_common.
# This may be replaced when dependencies are built.
