file(REMOVE_RECURSE
  "libmrs_common.a"
)
