file(REMOVE_RECURSE
  "CMakeFiles/mrs_common.dir/clock.cpp.o"
  "CMakeFiles/mrs_common.dir/clock.cpp.o.d"
  "CMakeFiles/mrs_common.dir/log.cpp.o"
  "CMakeFiles/mrs_common.dir/log.cpp.o.d"
  "CMakeFiles/mrs_common.dir/options.cpp.o"
  "CMakeFiles/mrs_common.dir/options.cpp.o.d"
  "CMakeFiles/mrs_common.dir/status.cpp.o"
  "CMakeFiles/mrs_common.dir/status.cpp.o.d"
  "CMakeFiles/mrs_common.dir/strings.cpp.o"
  "CMakeFiles/mrs_common.dir/strings.cpp.o.d"
  "CMakeFiles/mrs_common.dir/threadpool.cpp.o"
  "CMakeFiles/mrs_common.dir/threadpool.cpp.o.d"
  "libmrs_common.a"
  "libmrs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
