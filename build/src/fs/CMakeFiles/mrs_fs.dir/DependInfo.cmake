
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/bucket.cpp" "src/fs/CMakeFiles/mrs_fs.dir/bucket.cpp.o" "gcc" "src/fs/CMakeFiles/mrs_fs.dir/bucket.cpp.o.d"
  "/root/repo/src/fs/file_io.cpp" "src/fs/CMakeFiles/mrs_fs.dir/file_io.cpp.o" "gcc" "src/fs/CMakeFiles/mrs_fs.dir/file_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ser/CMakeFiles/mrs_ser.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
