# Empty dependencies file for mrs_fs.
# This may be replaced when dependencies are built.
