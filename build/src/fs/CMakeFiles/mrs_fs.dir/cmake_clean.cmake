file(REMOVE_RECURSE
  "CMakeFiles/mrs_fs.dir/bucket.cpp.o"
  "CMakeFiles/mrs_fs.dir/bucket.cpp.o.d"
  "CMakeFiles/mrs_fs.dir/file_io.cpp.o"
  "CMakeFiles/mrs_fs.dir/file_io.cpp.o.d"
  "libmrs_fs.a"
  "libmrs_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrs_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
