file(REMOVE_RECURSE
  "libmrs_fs.a"
)
