file(REMOVE_RECURSE
  "CMakeFiles/test_ser.dir/test_ser.cpp.o"
  "CMakeFiles/test_ser.dir/test_ser.cpp.o.d"
  "test_ser"
  "test_ser.pdb"
  "test_ser[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
