# Empty compiler generated dependencies file for test_ser.
# This may be replaced when dependencies are built.
