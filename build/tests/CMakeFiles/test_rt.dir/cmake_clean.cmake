file(REMOVE_RECURSE
  "CMakeFiles/test_rt.dir/test_rt.cpp.o"
  "CMakeFiles/test_rt.dir/test_rt.cpp.o.d"
  "test_rt"
  "test_rt.pdb"
  "test_rt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
