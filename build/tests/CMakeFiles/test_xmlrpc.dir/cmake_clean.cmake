file(REMOVE_RECURSE
  "CMakeFiles/test_xmlrpc.dir/test_xmlrpc.cpp.o"
  "CMakeFiles/test_xmlrpc.dir/test_xmlrpc.cpp.o.d"
  "test_xmlrpc"
  "test_xmlrpc.pdb"
  "test_xmlrpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xmlrpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
