# Empty dependencies file for test_xmlrpc.
# This may be replaced when dependencies are built.
