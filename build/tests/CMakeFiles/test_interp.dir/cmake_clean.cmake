file(REMOVE_RECURSE
  "CMakeFiles/test_interp.dir/test_interp.cpp.o"
  "CMakeFiles/test_interp.dir/test_interp.cpp.o.d"
  "test_interp"
  "test_interp.pdb"
  "test_interp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
