file(REMOVE_RECURSE
  "CMakeFiles/test_fs.dir/test_fs.cpp.o"
  "CMakeFiles/test_fs.dir/test_fs.cpp.o.d"
  "test_fs"
  "test_fs.pdb"
  "test_fs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
