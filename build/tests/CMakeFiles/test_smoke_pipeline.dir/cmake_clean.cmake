file(REMOVE_RECURSE
  "CMakeFiles/test_smoke_pipeline.dir/test_smoke_pipeline.cpp.o"
  "CMakeFiles/test_smoke_pipeline.dir/test_smoke_pipeline.cpp.o.d"
  "test_smoke_pipeline"
  "test_smoke_pipeline.pdb"
  "test_smoke_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smoke_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
