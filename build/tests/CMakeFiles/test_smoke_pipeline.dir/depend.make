# Empty dependencies file for test_smoke_pipeline.
# This may be replaced when dependencies are built.
