file(REMOVE_RECURSE
  "CMakeFiles/test_halton.dir/test_halton.cpp.o"
  "CMakeFiles/test_halton.dir/test_halton.cpp.o.d"
  "test_halton"
  "test_halton.pdb"
  "test_halton[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_halton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
