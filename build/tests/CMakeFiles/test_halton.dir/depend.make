# Empty dependencies file for test_halton.
# This may be replaced when dependencies are built.
