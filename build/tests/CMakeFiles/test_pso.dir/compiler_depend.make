# Empty compiler generated dependencies file for test_pso.
# This may be replaced when dependencies are built.
