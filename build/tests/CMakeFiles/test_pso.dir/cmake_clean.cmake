file(REMOVE_RECURSE
  "CMakeFiles/test_pso.dir/test_pso.cpp.o"
  "CMakeFiles/test_pso.dir/test_pso.cpp.o.d"
  "test_pso"
  "test_pso.pdb"
  "test_pso[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
