file(REMOVE_RECURSE
  "CMakeFiles/test_mrs_main.dir/test_mrs_main.cpp.o"
  "CMakeFiles/test_mrs_main.dir/test_mrs_main.cpp.o.d"
  "test_mrs_main"
  "test_mrs_main.pdb"
  "test_mrs_main[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mrs_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
