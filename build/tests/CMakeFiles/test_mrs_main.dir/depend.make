# Empty dependencies file for test_mrs_main.
# This may be replaced when dependencies are built.
