file(REMOVE_RECURSE
  "CMakeFiles/test_multiprocess.dir/test_multiprocess.cpp.o"
  "CMakeFiles/test_multiprocess.dir/test_multiprocess.cpp.o.d"
  "test_multiprocess"
  "test_multiprocess.pdb"
  "test_multiprocess[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
