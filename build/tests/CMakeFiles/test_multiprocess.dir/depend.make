# Empty dependencies file for test_multiprocess.
# This may be replaced when dependencies are built.
