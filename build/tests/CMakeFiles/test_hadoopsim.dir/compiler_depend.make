# Empty compiler generated dependencies file for test_hadoopsim.
# This may be replaced when dependencies are built.
