file(REMOVE_RECURSE
  "CMakeFiles/test_hadoopsim.dir/test_hadoopsim.cpp.o"
  "CMakeFiles/test_hadoopsim.dir/test_hadoopsim.cpp.o.d"
  "test_hadoopsim"
  "test_hadoopsim.pdb"
  "test_hadoopsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hadoopsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
