# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_ser[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_http[1]_include.cmake")
include("/root/repo/build/tests/test_xmlrpc[1]_include.cmake")
include("/root/repo/build/tests/test_fs[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_rt[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_halton[1]_include.cmake")
include("/root/repo/build/tests/test_pso[1]_include.cmake")
include("/root/repo/build/tests/test_hadoopsim[1]_include.cmake")
include("/root/repo/build/tests/test_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_mrs_main[1]_include.cmake")
include("/root/repo/build/tests/test_multiprocess[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
