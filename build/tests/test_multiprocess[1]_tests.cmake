add_test([=[MultiProcess.MasterAndSlaveProcessesMatchSerial]=]  /root/repo/build/tests/test_multiprocess [==[--gtest_filter=MultiProcess.MasterAndSlaveProcessesMatchSerial]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[MultiProcess.MasterAndSlaveProcessesMatchSerial]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_multiprocess_TESTS MultiProcess.MasterAndSlaveProcessesMatchSerial)
