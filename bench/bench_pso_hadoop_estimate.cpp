// E7 (paper §V-B): the PSO-on-Hadoop estimate.
//
// The paper measured that PSO on Rosenbrock-250 needs an average of 2471
// iterations to reach 1e-5 and estimated Hadoop at ~30 s per iteration:
// 2471 x 30 s ≈ 20.6 hours, versus minutes in Mrs.  This bench reproduces
// that arithmetic end-to-end: measure real Mrs rounds-to-target on a
// tractable configuration, take the per-iteration job latency from the
// hadoopsim DES, and compare; then redo the projection at the paper's own
// iteration count.
//
// Usage: bench_pso_hadoop_estimate [dims=10]
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "hadoopsim/cluster.h"
#include "pso/apiary.h"
#include "rt/mrs_main.h"

int main(int argc, char** argv) {
  using namespace mrs;
  int dims = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf("bench_pso_hadoop_estimate: E7 (paper §V-B)\n");

  // Measure Mrs: rounds to reach the target on Rosenbrock-<dims>.
  // (Rosenbrock-250 to 1e-5 needs thousands of rounds — the paper's 2471
  // iterations; we measure a smaller instance live and project the
  // paper's count separately.)
  pso::ApiaryConfig config;
  config.function = "rosenbrock";
  config.dims = dims;
  config.num_subswarms = 8;
  config.particles_per_subswarm = 5;
  config.inner_iterations = 100;
  config.max_rounds = 1200;
  config.target = 1e-5;
  config.check_interval = 1;

  pso::ApiaryPso program;
  program.config = config;
  if (!program.Init(Options()).ok()) return 1;
  RunConfig run_config;
  run_config.impl = "masterslave";
  run_config.num_slaves = 4;
  Status status = RunProgram(
      [&]() -> std::unique_ptr<MapReduce> {
        auto p = std::make_unique<pso::ApiaryPso>();
        p->config = config;
        return p;
      },
      &program, run_config);
  if (!status.ok()) {
    std::fprintf(stderr, "pso run failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const pso::ApiaryResult& r = program.result;
  long long rounds = r.rounds_to_target >= 0 ? r.rounds_to_target : r.rounds;

  // Hadoop per-iteration latency from the DES: each Apiary round is one
  // full MapReduce job (8 maps + 8 reduces, tiny data).
  hadoopsim::HadoopCluster cluster{hadoopsim::ClusterConfig{}};
  hadoopsim::JobSpec spec;
  spec.num_map_tasks = config.num_subswarms;
  spec.num_reduce_tasks = config.num_subswarms;
  spec.map_compute_seconds = 0.05;
  spec.map_output_bytes = 16 << 10;
  auto one_round = cluster.RunIterativeJobs(spec, 1);
  auto two_rounds = cluster.RunIterativeJobs(spec, 2);
  if (!one_round.ok() || !two_rounds.ok()) return 1;
  double per_iteration = *two_rounds - *one_round;
  double hadoop_total = cluster.RunIterativeJobs(spec, static_cast<int>(rounds))
                            .ValueOr(0);

  bench::PrintTable(
      "E7: measured Mrs vs estimated Hadoop (Rosenbrock-" +
          std::to_string(dims) + ")",
      {{"metric", "value"},
       {"mrs rounds run", std::to_string(r.rounds)},
       {"mrs rounds to 1e-5",
        r.rounds_to_target >= 0 ? std::to_string(r.rounds_to_target)
                                : "not reached"},
       {"mrs best value", bench::Fmt("%.3g", r.best)},
       {"mrs wall time (s)", bench::Fmt("%.2f", r.seconds)},
       {"hadoop per-iteration (sim s)", bench::Fmt("%.1f", per_iteration)},
       {"hadoop total (sim s)", bench::Fmt("%.0f", hadoop_total)},
       {"hadoop total (sim h)", bench::Fmt("%.2f", hadoop_total / 3600)},
       {"hadoop/mrs slowdown",
        bench::Fmt("%.0fx", r.seconds > 0 ? hadoop_total / r.seconds : 0)}});

  // The paper's own arithmetic, with our simulated per-iteration cost.
  double paper_total = 2471.0 * per_iteration;
  bench::PrintTable(
      "E7: paper-scale projection (Rosenbrock-250, 2471 iterations)",
      {{"metric", "value"},
       {"iterations (paper)", "2471"},
       {"per-iteration (sim s)", bench::Fmt("%.1f", per_iteration)},
       {"hadoop projected (h)", bench::Fmt("%.1f", paper_total / 3600)},
       {"paper said", "2471 x 30s = a little over 20 hours"}});

  bench::EmitBenchJson(
      "bench_pso_hadoop_estimate",
      {{"dims", static_cast<double>(dims)},
       {"mrs_rounds", static_cast<double>(r.rounds)},
       {"mrs_wall_s", r.seconds},
       {"mrs_best_value", r.best},
       {"hadoop_sim_s_per_iter", per_iteration},
       {"hadoop_sim_total_s", hadoop_total},
       {"paper_projection_hours", paper_total / 3600}});
  return 0;
}
