// E6 (paper Fig 4): Apiary PSO convergence on Rosenbrock-250, with respect
// to function evaluations and to wall time, serial vs parallel.
//
// The paper's numbers: 100 iterations on 5 particles take ~0.2 s serial;
// parallel Mrs costs ~0.3-0.5 s per (100-inner-iteration) round with ~2 s
// startup.  Here both series come from real runs — serial is the plain
// loop, parallel is masterslave over loopback TCP + XML-RPC.
//
// Usage: bench_pso [rounds=80] [dims=250]
#include <cstdio>
#include <algorithm>
#include <cstdlib>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "pso/apiary.h"
#include "rt/mrs_main.h"

namespace mrs {
namespace {

pso::ApiaryConfig FigConfig(int rounds, int dims) {
  pso::ApiaryConfig config;
  config.function = "rosenbrock";
  config.dims = dims;
  config.num_subswarms = 8;
  config.particles_per_subswarm = 5;  // the paper's 5 particles
  config.inner_iterations = 100;      // 100 iterations per map task
  config.max_rounds = rounds;
  config.target = 1e-5;
  // Record every 4th round so the Fig 4 table stays readable at the
  // default 80-round budget.
  config.check_interval = 4;
  return config;
}

struct SeriesResult {
  pso::ApiaryResult result;
  double startup_seconds = 0;
};

SeriesResult RunParallel(const pso::ApiaryConfig& config,
                         const std::string& impl = "masterslave",
                         int num_workers = 0) {
  pso::ApiaryPso program;
  program.config = config;
  SeriesResult out;
  if (!program.Init(Options()).ok()) return out;
  Stopwatch startup;
  RunConfig run_config;
  run_config.impl = impl;
  run_config.num_slaves = 4;
  run_config.num_workers = num_workers;
  // Startup (cluster bring-up) is measured by RunProgram being
  // responsible for it; program.result.seconds covers only Run.
  Status status = RunProgram(
      [&]() -> std::unique_ptr<MapReduce> {
        auto p = std::make_unique<pso::ApiaryPso>();
        p->config = config;
        return p;
      },
      &program, run_config);
  if (!status.ok()) {
    std::fprintf(stderr, "parallel pso failed: %s\n",
                 status.ToString().c_str());
    return out;
  }
  out.result = program.result;
  out.startup_seconds = startup.ElapsedSeconds() - program.result.seconds;
  return out;
}

}  // namespace
}  // namespace mrs

int main(int argc, char** argv) {
  using namespace mrs;
  int rounds = argc > 1 ? std::atoi(argv[1]) : 80;
  int dims = argc > 2 ? std::atoi(argv[2]) : 250;

  std::printf("bench_pso: E6, Fig 4 (Apiary PSO on Rosenbrock-%d)\n", dims);
  pso::ApiaryConfig config = FigConfig(rounds, dims);

  auto serial = RunApiarySerial(config, /*seed=*/42);
  if (!serial.ok()) {
    std::fprintf(stderr, "serial pso failed: %s\n",
                 serial.status().ToString().c_str());
    return 1;
  }
  SeriesResult parallel = RunParallel(config);

  // Fig 4, left: best value vs function evaluations.  Identical for both
  // series by the equivalence invariant — print once with both times.
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"round", "evaluations", "best value", "serial t (s)",
                  "parallel t (s)"});
  size_t n = std::min(serial->history.size(), parallel.result.history.size());
  for (size_t i = 0; i < n; ++i) {
    const auto& s = serial->history[i];
    const auto& p = parallel.result.history[i];
    rows.push_back({std::to_string(s.round), std::to_string(s.evaluations),
                    bench::Fmt("%.6g", s.best), bench::Fmt("%.3f", s.seconds),
                    bench::Fmt("%.3f", p.seconds)});
    if (s.best != p.best) {
      std::fprintf(stderr,
                   "WARNING: serial/parallel trajectories diverge at round "
                   "%lld (%g vs %g)\n",
                   static_cast<long long>(s.round), s.best, p.best);
    }
  }
  bench::PrintTable(
      "Fig 4: convergence vs evaluations and vs time (identical "
      "trajectories; only the clock differs)",
      rows);

  double serial_per_round =
      serial->rounds > 0 ? serial->seconds / static_cast<double>(serial->rounds)
                         : 0;
  double parallel_per_round =
      parallel.result.rounds > 0
          ? parallel.result.seconds /
                static_cast<double>(parallel.result.rounds)
          : 0;
  bench::PrintTable(
      "Per-round (per-MapReduce-iteration) cost",
      {{"series", "rounds", "total (s)", "s/round", "startup (s)"},
       {"serial loop", std::to_string(serial->rounds),
        bench::Fmt("%.3f", serial->seconds),
        bench::Fmt("%.4f", serial_per_round), "0"},
       {"mrs masterslave", std::to_string(parallel.result.rounds),
        bench::Fmt("%.3f", parallel.result.seconds),
        bench::Fmt("%.4f", parallel_per_round),
        bench::Fmt("%.2f", parallel.startup_seconds)}});
  std::printf(
      "(paper: ~0.2s serial per 100x5-particle block, ~0.3-0.5s/round\n"
      " parallel, ~2s Mrs startup; our loopback cluster is faster in\n"
      " absolute terms but shows the same flat per-round overhead)\n");

  // The 250-dimension workload moves slowly at bench scale (5-particle
  // hives in 250-d barely improve within 80 rounds, as the flat column
  // above shows); a reduced-dimension view makes the convergence shape of
  // Fig 4 visible without hours of runtime.
  {
    pso::ApiaryConfig small = FigConfig(rounds, std::min(dims, 100));
    auto small_serial = RunApiarySerial(small, /*seed=*/42);
    if (small_serial.ok()) {
      std::vector<std::vector<std::string>> small_rows;
      small_rows.push_back({"round", "evaluations", "best value", "t (s)"});
      for (const auto& point : small_serial->history) {
        small_rows.push_back({std::to_string(point.round),
                              std::to_string(point.evaluations),
                              bench::Fmt("%.6g", point.best),
                              bench::Fmt("%.3f", point.seconds)});
      }
      bench::PrintTable(
          "Fig 4 (reduced-dimension view, Rosenbrock-" +
              std::to_string(small.dims) + "): convergence visible at "
              "bench scale",
          small_rows);
    }
  }

  // Ablation: inter-hive communication topology (the "Apiary" design
  // choice, ref [12]).  Same seed, same budget; only the message pattern
  // changes.
  // A lower-dimensional, longer run differentiates topologies: inter-hive
  // messages only change the global best once a receiving hive overtakes
  // the current leader, which takes many rounds at 250 dims.
  pso::ApiaryConfig ablation_base = config;
  ablation_base.dims = std::min(dims, 60);
  ablation_base.max_rounds = std::max(rounds, 40);
  std::vector<std::vector<std::string>> topo_rows;
  topo_rows.push_back({"topology", "best value", "messages/round"});
  for (const char* topology : {"ring", "star", "isolated"}) {
    pso::ApiaryConfig topo_config = ablation_base;
    topo_config.topology = topology;
    auto result = RunApiarySerial(topo_config, 42);
    if (!result.ok()) continue;
    int msgs = 0;
    for (int sid = 0; sid < config.num_subswarms; ++sid) {
      auto n = pso::TopologyNeighbors(topology, sid, config.num_subswarms);
      if (n.ok()) msgs += static_cast<int>(n->size());
    }
    topo_rows.push_back({topology, bench::Fmt("%.6g", result->best),
                         std::to_string(msgs)});
  }
  bench::PrintTable("Ablation: inter-hive topology (same seed and budget)",
                    topo_rows);

  // Iterative/BSP ablation: the same masterslave workload with the hive
  // dataset pinned resident and only best positions broadcast between
  // supersteps — the best-exchange reduce phase disappears.  The
  // trajectory must not move: only the clock may.
  pso::ApiaryConfig iter_config = config;
  iter_config.iterative = true;
  SeriesResult iterative = RunParallel(iter_config);
  double iterative_per_round =
      iterative.result.rounds > 0
          ? iterative.result.seconds /
                static_cast<double>(iterative.result.rounds)
          : 0;
  if (iterative.result.best != parallel.result.best) {
    std::fprintf(stderr,
                 "WARNING: iterative mode diverged from replan (%g vs %g)\n",
                 iterative.result.best, parallel.result.best);
  }
  bench::PrintTable(
      "Ablation: iterative/BSP (pinned hives + best broadcast) vs replan",
      {{"mode", "rounds", "total (s)", "s/round"},
       {"replan", std::to_string(parallel.result.rounds),
        bench::Fmt("%.3f", parallel.result.seconds),
        bench::Fmt("%.4f", parallel_per_round)},
       {"iterative", std::to_string(iterative.result.rounds),
        bench::Fmt("%.3f", iterative.result.seconds),
        bench::Fmt("%.4f", iterative_per_round)}});

  std::vector<bench::BenchMetric> json_metrics = {
      {"rounds", static_cast<double>(rounds)},
      {"dims", static_cast<double>(dims)},
      {"serial_total_s", serial->seconds},
      {"serial_s_per_round", serial_per_round},
      {"parallel_total_s", parallel.result.seconds},
      {"parallel_s_per_round", parallel_per_round},
      {"parallel_startup_s", parallel.startup_seconds},
      {"iterative_total_s", iterative.result.seconds},
      {"iterative_s_per_round", iterative_per_round},
      {"best_value", serial->best}};

  // Thread-runner scaling: the same Fig-4 workload driven by the
  // shared-memory implementation at 1/2/4 pool workers.  No cluster
  // startup column — thread has none, which is exactly its point.
  {
    json_metrics.push_back(
        {"thread_hw_concurrency",
         static_cast<double>(std::thread::hardware_concurrency())});
    std::vector<std::vector<std::string>> scaling;
    scaling.push_back({"workers", "total (s)", "s/round",
                       "speedup vs 1 worker"});
    double base = -1;
    for (int workers : bench::ScalingWorkerCounts()) {
      std::vector<int64_t> before = bench::SnapshotThreadCounters();
      SeriesResult r = RunParallel(config, "thread", workers);
      double t = r.result.seconds;
      if (workers == 1) base = t;
      double speedup = (t > 0 && base > 0) ? base / t : 0;
      double per_round =
          r.result.rounds > 0 ? t / static_cast<double>(r.result.rounds) : 0;
      scaling.push_back({std::to_string(workers), bench::Fmt("%.3f", t),
                         bench::Fmt("%.4f", per_round),
                         bench::Fmt("%.2fx", speedup)});
      std::string w = std::to_string(workers);
      json_metrics.push_back({"thread_w" + w + "_s", t});
      json_metrics.push_back({"thread_speedup_w" + w, speedup});
      bench::AppendCounterDeltas("thread_w" + w, before, &json_metrics);
      if (r.result.best != serial->best) {
        std::fprintf(stderr,
                     "WARNING: thread (%d workers) diverged from serial "
                     "(%g vs %g)\n",
                     workers, r.result.best, serial->best);
      }
    }
    bench::PrintTable("Thread runner scaling (same workload)", scaling);
  }

  bench::EmitBenchJson("bench_pso", json_metrics);
  return 0;
}
