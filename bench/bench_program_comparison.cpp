// E1 + E2 (paper §V-A, Programs 1-4): the subjective comparison, made
// measurable.
//
//  * E1 — WordCount source comparison: SLOC and declaration-boilerplate
//    counts of the same program against the mrs-cpp API
//    (examples/quickstart.cpp, the Program 1 analogue) vs the
//    Java-flavoured API (examples/wordcount_javastyle.cpp, the Program 2
//    analogue).
//  * E2 — startup-script comparison: the steps the Mrs launcher performs
//    (Program 3) vs the Hadoop bring-up/tear-down script (Program 4).
#include <cstdio>

#include "bench/bench_util.h"
#include "fs/file_io.h"
#include "hadoopsim/scripts.h"

#ifndef MRS_SOURCE_DIR
#define MRS_SOURCE_DIR "."
#endif

namespace mrs {
namespace {

int CountOccurrences(const std::string& text, std::string_view needle) {
  int count = 0;
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

void RunE1(std::vector<bench::BenchMetric>* metrics) {
  std::string base = MRS_SOURCE_DIR;
  auto mrs_src = ReadFileToString(base + "/examples/quickstart.cpp");
  auto java_src = ReadFileToString(base + "/examples/wordcount_javastyle.cpp");
  if (!mrs_src.ok() || !java_src.ok()) {
    std::printf("E1 skipped: example sources not found under %s\n",
                base.c_str());
    return;
  }

  auto row = [&](const std::string& name, const std::string& src) {
    int sloc = bench::CountSloc(src);
    // "Configuration ritual" calls: explicit class wiring the Java API
    // requires and the Mrs API does not.
    int ritual = CountOccurrences(src, "set") + CountOccurrences(src, "addInputPath");
    int wrapper_types = CountOccurrences(src, "Writable") +
                        CountOccurrences(src, "Text");
    return std::vector<std::string>{
        name, std::to_string(sloc), std::to_string(ritual),
        std::to_string(wrapper_types)};
  };

  bench::PrintTable(
      "E1: WordCount source comparison (paper Programs 1 and 2)",
      {{"api", "sloc", "config/ritual calls", "wrapper-type mentions"},
       row("mrs-cpp (quickstart.cpp)", *mrs_src),
       row("java-style (wordcount_javastyle.cpp)", *java_src)});
  metrics->push_back(
      {"mrs_sloc", static_cast<double>(bench::CountSloc(*mrs_src))});
  metrics->push_back(
      {"javastyle_sloc", static_cast<double>(bench::CountSloc(*java_src))});
  std::printf(
      "(paper: the Mrs WordCount is the map and reduce methods plus one\n"
      " line of main; the Hadoop version needs wrapper Writable types and\n"
      " an explicit job-configuration ritual)\n");
}

void RunE2(std::vector<bench::BenchMetric>* metrics) {
  const int kNodes = 21;  // the paper's private cluster
  auto mrs_steps = hadoopsim::MrsStartupScript(kNodes);
  auto hadoop_steps = hadoopsim::HadoopStartupScript(kNodes);
  auto mrs_summary = hadoopsim::Summarize(mrs_steps);
  auto hadoop_summary = hadoopsim::Summarize(hadoop_steps);

  bench::PrintTable(
      "E2: PBS startup script comparison (paper Programs 3 and 4)",
      {{"system", "steps", "config rewrites", "daemon/fs actions",
        "data copies", "overhead (s, est.)"},
       {"Mrs", std::to_string(mrs_summary.total_steps),
        std::to_string(mrs_summary.config_rewrites),
        std::to_string(mrs_summary.daemon_actions),
        std::to_string(mrs_summary.data_copies),
        bench::Fmt("%.1f", mrs_summary.overhead_seconds)},
       {"Hadoop", std::to_string(hadoop_summary.total_steps),
        std::to_string(hadoop_summary.config_rewrites),
        std::to_string(hadoop_summary.daemon_actions),
        std::to_string(hadoop_summary.data_copies),
        bench::Fmt("%.1f", hadoop_summary.overhead_seconds)}});

  std::printf("\nMrs script steps (Program 3):\n");
  for (const auto& step : mrs_steps) {
    std::printf("  - %s\n", step.description.c_str());
  }
  std::printf("Hadoop script steps (Program 4):\n");
  for (const auto& step : hadoop_steps) {
    std::printf("  - %s\n", step.description.c_str());
  }
  metrics->push_back(
      {"mrs_script_steps", static_cast<double>(mrs_summary.total_steps)});
  metrics->push_back({"hadoop_script_steps",
                      static_cast<double>(hadoop_summary.total_steps)});
  metrics->push_back({"mrs_script_overhead_s", mrs_summary.overhead_seconds});
  metrics->push_back(
      {"hadoop_script_overhead_s", hadoop_summary.overhead_seconds});
}

}  // namespace
}  // namespace mrs

int main() {
  std::printf("bench_program_comparison: subjective evaluation (paper §V-A)\n");
  std::vector<mrs::bench::BenchMetric> metrics;
  mrs::RunE1(&metrics);
  mrs::RunE2(&metrics);
  mrs::bench::EmitBenchJson("bench_program_comparison", metrics);
  return 0;
}
