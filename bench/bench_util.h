// Shared helpers for the experiment benches: aligned table printing,
// source-line accounting for the subjective comparison, and the
// machine-readable result line every bench emits.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "obs/metrics.h"

namespace mrs {
namespace bench {

/// Print a header followed by aligned rows; columns sized to content.
inline void PrintTable(const std::string& title,
                       const std::vector<std::vector<std::string>>& rows) {
  std::printf("\n== %s ==\n", title.c_str());
  if (rows.empty()) return;
  std::vector<size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    std::string line;
    for (size_t c = 0; c < rows[r].size(); ++c) {
      std::string cell = rows[r][c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < rows[r].size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
    if (r == 0) {
      std::string rule(line.size(), '-');
      std::printf("%s\n", rule.c_str());
    }
  }
}

inline std::string Fmt(const char* fmt, double v) { return StrPrintf(fmt, v); }

/// Count non-blank, non-comment source lines of C++ text.
inline int CountSloc(const std::string& source) {
  int sloc = 0;
  bool in_block_comment = false;
  for (std::string_view raw : SplitChar(source, '\n')) {
    std::string_view line = Trim(raw);
    if (in_block_comment) {
      if (line.find("*/") != std::string_view::npos) in_block_comment = false;
      continue;
    }
    if (line.empty()) continue;
    if (StartsWith(line, "//")) continue;
    if (StartsWith(line, "/*")) {
      if (line.find("*/") == std::string_view::npos) in_block_comment = true;
      continue;
    }
    ++sloc;
  }
  return sloc;
}

/// One named numeric result; `name` must be a plain identifier (no
/// quoting is applied).
struct BenchMetric {
  std::string name;
  double value = 0;
};

/// Emit the bench's machine-readable result as a single JSON line:
/// prefixed "[mrs-bench-json] " on stdout for humans/greppers, and the
/// bare JSON appended to the file named by $MRS_BENCH_JSON when set
/// (how the `bench_snapshot` CMake target collects BENCH_obs.json).
inline void EmitBenchJson(const std::string& bench,
                          const std::vector<BenchMetric>& metrics) {
  std::string json = "{\"bench\":\"" + bench + "\",\"metrics\":{";
  for (size_t i = 0; i < metrics.size(); ++i) {
    if (i > 0) json += ",";
    json += "\"" + metrics[i].name + "\":" +
            StrPrintf("%.9g", metrics[i].value);
  }
  json += "}}";
  std::printf("[mrs-bench-json] %s\n", json.c_str());
  if (const char* path = std::getenv("MRS_BENCH_JSON")) {
    if (std::FILE* f = std::fopen(path, "a")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    }
  }
}

/// Worker counts for the thread scaling sweep: 1/2/4 everywhere, plus 8
/// when the machine actually has eight hardware threads to scale onto.
inline std::vector<int> ScalingWorkerCounts() {
  std::vector<int> counts = {1, 2, 4};
  if (std::thread::hardware_concurrency() >= 8) counts.push_back(8);
  return counts;
}

/// Registry counters worth snapshotting around one thread-runner run,
/// paired with the metric-key suffix they are emitted under.
inline const std::vector<std::pair<std::string, std::string>>&
ThreadScalingCounters() {
  static const std::vector<std::pair<std::string, std::string>> kCounters = {
      {"mrs.pool.steals", "steals"},
      {"mrs.shuffle.deposits", "deposits"},
      {"mrs.shuffle.combine_in", "combine_in"},
      {"mrs.shuffle.combine_out", "combine_out"},
      {"mrs.thread.morsels", "morsels"},
      {"mrs.thread.pipelined_submits", "pipelined_submits"},
  };
  return kCounters;
}

/// Snapshot the scaling counters before a run; pass the result to
/// AppendCounterDeltas afterwards.
inline std::vector<int64_t> SnapshotThreadCounters() {
  std::vector<int64_t> values;
  for (const auto& [name, suffix] : ThreadScalingCounters()) {
    (void)suffix;
    values.push_back(obs::Registry::Instance().GetCounter(name)->value());
  }
  return values;
}

/// Append "<prefix>_<suffix>" = current − before[i] for each scaling
/// counter: the per-worker steal/shuffle/combine/morsel activity CI
/// archives alongside the timing curve in BENCH_thread.json.
inline void AppendCounterDeltas(const std::string& prefix,
                                const std::vector<int64_t>& before,
                                std::vector<BenchMetric>* metrics) {
  const auto& counters = ThreadScalingCounters();
  for (size_t i = 0; i < counters.size() && i < before.size(); ++i) {
    int64_t now =
        obs::Registry::Instance().GetCounter(counters[i].first)->value();
    metrics->push_back({prefix + "_" + counters[i].second,
                        static_cast<double>(now - before[i])});
  }
}

}  // namespace bench
}  // namespace mrs
