// Micro-benchmarks (google-benchmark) for the substrate hot paths: value
// serialization, the record format, sort+group, XML-RPC framing, Halton
// generation, and the MiniPy engines — the per-sample rates behind Fig 3.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "halton/halton.h"
#include "halton/pi_kernel.h"
#include "interp/treewalk.h"
#include "interp/vm.h"
#include "rng/mt19937_64.h"
#include "core/task.h"
#include "ser/record.h"
#include "xmlrpc/protocol.h"

namespace mrs {
namespace {

std::vector<KeyValue> MakeRecords(int n) {
  std::vector<KeyValue> records;
  records.reserve(n);
  MT19937_64 rng(7);
  for (int i = 0; i < n; ++i) {
    records.push_back(KeyValue{
        Value("key" + std::to_string(rng.NextBounded(100))),
        Value(static_cast<int64_t>(rng.NextU64()))});
  }
  return records;
}

void BM_EncodeBinaryRecords(benchmark::State& state) {
  auto records = MakeRecords(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeBinaryRecords(records));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeBinaryRecords)->Arg(100)->Arg(10000);

void BM_DecodeBinaryRecords(benchmark::State& state) {
  std::string encoded =
      EncodeBinaryRecords(MakeRecords(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeBinaryRecords(encoded));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeBinaryRecords)->Arg(100)->Arg(10000);

void BM_SortGroup(benchmark::State& state) {
  auto records = MakeRecords(static_cast<int>(state.range(0)));
  ReduceFn sum = [](const Value&, const ValueList& values,
                    const ValueEmitter& emit) {
    int64_t s = 0;
    for (const Value& v : values) s += v.AsInt();
    emit(Value(s));
  };
  for (auto _ : state) {
    auto copy = records;
    benchmark::DoNotOptimize(SortGroupApply(std::move(copy), sum));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortGroup)->Arg(1000)->Arg(100000);

void BM_XmlRpcCallRoundTrip(benchmark::State& state) {
  xmlrpc::MethodCall call;
  call.method = "task_done";
  call.params = {XmlRpcValue(int64_t{1}), XmlRpcValue(int64_t{42}),
                 XmlRpcValue("http://127.0.0.1:1234/bucket/1/2/3")};
  for (auto _ : state) {
    std::string wire = xmlrpc::BuildCall(call);
    benchmark::DoNotOptimize(xmlrpc::ParseCall(wire));
  }
}
BENCHMARK(BM_XmlRpcCallRoundTrip);

void BM_HaltonNext(benchmark::State& state) {
  Halton2D points;
  double x, y;
  for (auto _ : state) {
    points.Next(&x, &y);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HaltonNext);

void BM_PiKernel(benchmark::State& state, PiEngine engine) {
  auto kernel = PiKernel::Create(engine);
  if (!kernel.ok()) {
    state.SkipWithError("kernel creation failed");
    return;
  }
  uint64_t start = 0;
  const uint64_t chunk = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize((*kernel)->CountInside(start, chunk));
    start += chunk;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(chunk));
}
BENCHMARK_CAPTURE(BM_PiKernel, native, PiEngine::kNative)->Arg(10000);
BENCHMARK_CAPTURE(BM_PiKernel, vm_pypy, PiEngine::kVm)->Arg(1000);
BENCHMARK_CAPTURE(BM_PiKernel, treewalk_python, PiEngine::kTreeWalk)
    ->Arg(1000);

void BM_MiniPyFib(benchmark::State& state, bool use_vm) {
  const char* src =
      "def fib(n):\n    if n < 2:\n        return n\n"
      "    return fib(n - 1) + fib(n - 2)\n";
  minipy::TreeWalker walker;
  minipy::Vm vm;
  if (use_vm) {
    if (!vm.LoadSource(src).ok()) {
      state.SkipWithError("load failed");
      return;
    }
  } else if (!walker.LoadSource(src).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  std::vector<minipy::PyValue> args = {minipy::PyValue(int64_t{15})};
  for (auto _ : state) {
    if (use_vm) {
      benchmark::DoNotOptimize(vm.Call("fib", args));
    } else {
      benchmark::DoNotOptimize(walker.Call("fib", args));
    }
  }
}
BENCHMARK_CAPTURE(BM_MiniPyFib, vm, true);
BENCHMARK_CAPTURE(BM_MiniPyFib, treewalk, false);

void BM_MT19937_64(benchmark::State& state) {
  MT19937_64 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextU64());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MT19937_64);

}  // namespace
}  // namespace mrs

// BENCHMARK_MAIN() expanded so the bench can emit its machine-readable
// result line after the google-benchmark run.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  mrs::bench::EmitBenchJson(
      "bench_micro", {{"benchmarks_run", static_cast<double>(ran)}});
  return 0;
}
