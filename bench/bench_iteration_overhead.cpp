// E8 (paper §V-B): per-iteration framework overhead.
//
// The paper's headline: "Mrs demonstrates per-iteration overhead of about
// 0.3 seconds ... while Hadoop takes at least 30 seconds for each
// MapReduce operation, a difference of two orders of magnitude."
//
// An iterative program with a near-empty map and reduce runs N rounds so
// all measured time *is* framework overhead.  Columns cover the ablations
// DESIGN.md calls out: serial / mock parallel / masterslave with affinity
// scheduling on and off, and direct HTTP buckets vs shared-filesystem
// buckets; the Hadoop row is the DES per-iteration latency.
//
// Usage: bench_iteration_overhead [rounds=30]
#include <cstdio>
#include <cstdlib>

#include "analysis/analysis.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "fs/file_io.h"
#include "hadoopsim/cluster.h"
#include "halton/pi_kernel.h"
#include "kmeans/kmeans.h"
#include "obs/metrics.h"
#include "rt/cluster.h"
#include "rt/mrs_main.h"

namespace mrs {
namespace {

constexpr int kSplits = 8;

class NoopIterative : public MapReduce {
 public:
  int rounds = 30;
  void Map(const Value& key, const Value& value,
           const Emitter& emit) override {
    emit(key, Value(value.AsInt() + 1));
  }
  Status Run(Job& job) override {
    std::vector<KeyValue> input;
    for (int64_t i = 0; i < kSplits; ++i) {
      input.push_back(KeyValue{Value(i), Value(int64_t{0})});
    }
    DataSetPtr data = job.LocalData(std::move(input), kSplits);
    DataSetOptions options;
    options.num_splits = kSplits;
    for (int round = 0; round < rounds; ++round) {
      DataSetPtr mapped = job.MapData(data, options);
      DataSetPtr reduced = job.ReduceData(mapped, options);
      data = reduced;
    }
    MRS_ASSIGN_OR_RETURN(std::vector<KeyValue> out, job.Collect(data));
    for (const KeyValue& kv : out) {
      if (kv.value.AsInt() != rounds) {
        return InternalError("iteration count mismatch");
      }
    }
    return Status::Ok();
  }
};

/// Run under an in-process cluster with configurable scheduler knobs;
/// returns seconds per round.
double RunMasterSlave(int rounds, bool affinity, bool shared_files,
                      bool speculation = true) {
  NoopIterative program;
  program.rounds = rounds;
  if (!program.Init(Options()).ok()) return -1;

  ClusterLauncher::Config config;
  config.num_slaves = 4;
  config.master.enable_affinity = affinity;
  config.master.enable_speculation = speculation;
  std::string shared_dir;
  if (shared_files) {
    auto dir = MakeTempDir("mrs_bench_iter_");
    if (!dir.ok()) return -1;
    shared_dir = *dir;
    config.slave.shared_dir = shared_dir;
  }
  auto cluster = ClusterLauncher::Start(
      [&]() -> std::unique_ptr<MapReduce> {
        auto p = std::make_unique<NoopIterative>();
        p->rounds = rounds;
        return p;
      },
      Options(), config);
  if (!cluster.ok()) return -1;

  Job job(&program, std::make_unique<MasterRunner>(&(*cluster)->master()));
  job.set_default_parallelism(kSplits);
  Stopwatch watch;
  Status status = program.Run(job);
  double elapsed = watch.ElapsedSeconds();
  (*cluster)->Shutdown();
  if (!shared_dir.empty()) RemoveTree(shared_dir);
  if (!status.ok()) {
    std::fprintf(stderr, "masterslave run failed: %s\n",
                 status.ToString().c_str());
    return -1;
  }
  return elapsed / rounds;
}

/// Nanoseconds per (counter Inc + histogram Observe) pair with the kill
/// switch in the given state.
double MeasureMetricsNsPerOp(bool enabled) {
  obs::Counter* counter =
      obs::Registry::Instance().GetCounter("bench.overhead.counter");
  obs::Histogram* hist =
      obs::Registry::Instance().GetHistogram("bench.overhead.hist");
  constexpr int kOps = 2000000;
  obs::SetMetricsEnabled(enabled);
  Stopwatch watch;
  for (int i = 0; i < kOps; ++i) {
    counter->Inc();
    hist->Observe(1e-5 * (i & 1023));
  }
  double elapsed = watch.ElapsedSeconds();
  obs::SetMetricsEnabled(true);
  return elapsed / kOps * 1e9;
}

/// The full π kernel as submitted through mrs::analysis (the inner loop
/// from halton/ plus the map/reduce wrappers of examples/kernels/pi.mpy).
std::string PiKernelSource() {
  return std::string(HaltonPiMiniPySource()) +
         "\n"
         "def map(key, value):\n"
         "    emit(\"inside\", count_inside(value[0], value[1]))\n"
         "    emit(\"total\", value[1])\n"
         "\n"
         "def reduce(key, values):\n"
         "    total = 0\n"
         "    for v in values:\n"
         "        total = total + v\n"
         "    emit(total)\n";
}

/// Seconds for one full submit-time analysis of the π kernel (parse,
/// semantic + determinism checks, compile, bytecode verification).
/// Min-of-N: analysis is pure CPU, so the minimum is the true cost.
double MeasureAnalysisSeconds() {
  std::string source = PiKernelSource();
  double best = -1;
  for (int rep = 0; rep < 20; ++rep) {
    Stopwatch watch;
    analysis::AnalysisResult result = analysis::AnalyzeKernelSource(source);
    double elapsed = watch.ElapsedSeconds();
    if (!result.ok() || result.module == nullptr) return -1;
    if (best < 0 || elapsed < best) best = elapsed;
  }
  return best;
}

/// Seconds per point through the π kernel on the given MiniPy engine —
/// kVm is the verified-module generic loop that must not regress, and
/// kVmTyped is the fact-gated unboxed tier measured against it.
double MeasureVmSecondsPerPoint(PiEngine engine) {
  auto kernel = PiKernel::Create(engine);
  if (!kernel.ok()) return -1;
  constexpr uint64_t kPoints = 200000;
  double best = -1;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch watch;
    auto inside = (*kernel)->CountInside(0, kPoints);
    double elapsed = watch.ElapsedSeconds();
    if (!inside.ok() || *inside == 0) return -1;
    if (best < 0 || elapsed < best) best = elapsed;
  }
  return best / static_cast<double>(kPoints);
}

/// The iterative/BSP ablation (tentpole of the resident-dataset work):
/// k-means over masterslave with the chunks pinned resident and only the
/// centroids broadcast per round, vs the replan mode that re-plans a full
/// map+reduce over the complete carry-state every round.  Returns seconds
/// per round; tolerance 0 fixes the round count so both modes do
/// identical numeric work.
double RunKMeansMasterSlave(int rounds, bool iterative) {
  kmeans::KMeansConfig km;
  km.num_points = 4000;
  km.chunks = kSplits;
  km.max_rounds = rounds;
  km.tolerance = 0;  // never converge early: fixed per-round cost
  km.iterative = iterative;

  kmeans::KMeansProgram program;
  program.config = km;
  if (!program.Init(Options()).ok()) return -1;

  ClusterLauncher::Config config;
  config.num_slaves = 4;
  auto cluster = ClusterLauncher::Start(
      [&]() -> std::unique_ptr<MapReduce> {
        auto p = std::make_unique<kmeans::KMeansProgram>();
        p->config = km;
        return p;
      },
      Options(), config);
  if (!cluster.ok()) return -1;

  Job job(&program, std::make_unique<MasterRunner>(&(*cluster)->master()));
  job.set_default_parallelism(kSplits);
  Stopwatch watch;
  Status status = program.Run(job);
  double elapsed = watch.ElapsedSeconds();
  (*cluster)->Shutdown();
  if (!status.ok()) {
    std::fprintf(stderr, "kmeans masterslave run failed: %s\n",
                 status.ToString().c_str());
    return -1;
  }
  return elapsed / rounds;
}

double RunLocalImpl(const std::string& impl, int rounds) {
  NoopIterative program;
  program.rounds = rounds;
  if (!program.Init(Options()).ok()) return -1;
  RunConfig config;
  config.impl = impl;
  config.num_slaves = 4;
  Stopwatch watch;
  Status status = RunProgram(
      [&]() -> std::unique_ptr<MapReduce> {
        auto p = std::make_unique<NoopIterative>();
        p->rounds = rounds;
        return p;
      },
      &program, config);
  if (!status.ok()) return -1;
  return watch.ElapsedSeconds() / rounds;
}

}  // namespace
}  // namespace mrs

int main(int argc, char** argv) {
  using namespace mrs;
  int rounds = argc > 1 ? std::atoi(argv[1]) : 30;

  std::printf("bench_iteration_overhead: E8 (paper §V-B headline)\n");
  std::printf("empty-map/empty-reduce job, %d rounds of %d+%d tasks\n",
              rounds, kSplits, kSplits);

  double serial = RunLocalImpl("serial", rounds);
  double mock = RunLocalImpl("mockparallel", rounds);

  // Data-plane accounting around the headline run: with per-peer
  // connection pooling the number of TCP dials should be O(peers) for the
  // whole job, not O(buckets fetched) — watch the process-wide dial
  // counter to keep that claim honest.
  obs::Registry& reg = obs::Registry::Instance();
  int64_t connects_before = reg.GetCounter("mrs.http.client.connects")->value();
  int64_t pool_hits_before = reg.GetCounter("mrs.http.pool.hits")->value();
  int64_t batches_before = reg.GetCounter("mrs.slave.batch_fetches")->value();
  double ms_affinity = RunMasterSlave(rounds, true, false);
  double connects =
      static_cast<double>(reg.GetCounter("mrs.http.client.connects")->value() -
                          connects_before);
  double pool_hits = static_cast<double>(
      reg.GetCounter("mrs.http.pool.hits")->value() - pool_hits_before);
  double batches = static_cast<double>(
      reg.GetCounter("mrs.slave.batch_fetches")->value() - batches_before);
  double ms_no_affinity = RunMasterSlave(rounds, false, false);
  double ms_shared = RunMasterSlave(rounds, true, true);
  // Speculation ablation: with no stragglers every task finishes under the
  // threshold, so the straggler scan should cost ~nothing — any gap
  // between these two columns is pure scheduler overhead.
  double ms_spec_off = RunMasterSlave(rounds, true, false, false);

  // Observability kill switch (acceptance bar: <= 2% on this bench).  The
  // instrument cost is nanoseconds per task; end-to-end runs jitter by
  // tens of percent (long polls, allocator state), so diffing whole runs
  // measures noise, not metrics.  Instead: micro-time the counter +
  // histogram hot path with the kill switch on vs off (min-of-3, stable
  // to ~1%), then scale the per-op delta by the instrument ops one task
  // actually performs to get the per-round cost.  A kill-switch
  // masterslave run is still reported for completeness.
  obs::SetMetricsEnabled(false);
  double ms_no_metrics = RunMasterSlave(rounds, true, false);
  obs::SetMetricsEnabled(true);

  double on_ns = -1, off_ns = -1;
  for (int rep = 0; rep < 3; ++rep) {
    double off = MeasureMetricsNsPerOp(false);
    double on = MeasureMetricsNsPerOp(true);
    if (off_ns < 0 || off < off_ns) off_ns = off;
    if (on_ns < 0 || on < on_ns) on_ns = on;
  }
  double delta_ns = on_ns > off_ns ? on_ns - off_ns : 0;
  // Generous bound on instrument ops per task on the slave path: task
  // counter, retry counters, and http client/server counter + histogram
  // pairs on both the assignment RPC and the bucket fetch.
  const double kOpsPerTask = 10;
  double per_round_cost_s = delta_ns * 1e-9 * kOpsPerTask * 2 * kSplits;
  double metrics_overhead_pct =
      ms_affinity > 0 ? per_round_cost_s / ms_affinity * 100.0 : 0;

  // Submit-time static analysis: a one-off cost per kernel submission,
  // reported against the masterslave iteration so the "<1% of an
  // iteration" budget stays visible in the trend line.
  double analysis_s = MeasureAnalysisSeconds();
  double analysis_pct =
      ms_affinity > 0 && analysis_s >= 0 ? analysis_s / ms_affinity * 100.0
                                         : -1;
  double vm_s_per_point = MeasureVmSecondsPerPoint(PiEngine::kVm);
  double vm_typed_s_per_point = MeasureVmSecondsPerPoint(PiEngine::kVmTyped);
  double vm_points_per_s = vm_s_per_point > 0 ? 1.0 / vm_s_per_point : -1;
  double vm_typed_points_per_s =
      vm_typed_s_per_point > 0 ? 1.0 / vm_typed_s_per_point : -1;
  double typed_speedup = (vm_s_per_point > 0 && vm_typed_s_per_point > 0)
                             ? vm_s_per_point / vm_typed_s_per_point
                             : 0;

  // Iterative/BSP ablation: resident (pinned chunks + centroid broadcast)
  // vs replan k-means, same data and fixed round count.  The resident
  // counters confirm the pinned path actually engaged.
  int64_t resident_hits_before =
      reg.GetCounter("mrs.master.resident_hits")->value();
  double km_iterative = RunKMeansMasterSlave(rounds, /*iterative=*/true);
  double km_resident_hits = static_cast<double>(
      reg.GetCounter("mrs.master.resident_hits")->value() -
      resident_hits_before);
  double km_replan = RunKMeansMasterSlave(rounds, /*iterative=*/false);
  double km_ratio = km_iterative > 0 ? km_replan / km_iterative : 0;

  // Hadoop: per-iteration latency of an equivalent tiny job.
  hadoopsim::HadoopCluster cluster{hadoopsim::ClusterConfig{}};
  hadoopsim::JobSpec spec;
  spec.num_map_tasks = kSplits;
  spec.num_reduce_tasks = kSplits;
  spec.map_compute_seconds = 0.001;
  auto ten = cluster.RunIterativeJobs(spec, 10);
  auto one = cluster.RunIterativeJobs(spec, 1);
  double hadoop = (ten.ValueOr(0) - one.ValueOr(0)) / 9.0;

  bench::PrintTable(
      "E8: per-iteration overhead (seconds per MapReduce round)",
      {{"implementation", "s/iteration", "notes"},
       {"mrs serial", bench::Fmt("%.4f", serial), "in-memory"},
       {"mrs mockparallel", bench::Fmt("%.4f", mock),
        "same tasks, file-backed"},
       {"mrs masterslave", bench::Fmt("%.4f", ms_affinity),
        "TCP + XML-RPC, affinity on"},
       {"mrs masterslave (no affinity)", bench::Fmt("%.4f", ms_no_affinity),
        "ablation"},
       {"mrs masterslave (shared files)", bench::Fmt("%.4f", ms_shared),
        "fault-tolerant bucket path"},
       {"mrs masterslave (speculation off)", bench::Fmt("%.4f", ms_spec_off),
        "ablation: no straggler backups"},
       {"mrs masterslave (metrics off)", bench::Fmt("%.4f", ms_no_metrics),
        "obs kill switch"},
       {"metrics hot path", bench::Fmt("%.4f ns/op", delta_ns),
        bench::Fmt("overhead %.4f%% of a masterslave round",
                   metrics_overhead_pct)},
       {"kernel static analysis", bench::Fmt("%.6f", analysis_s),
        bench::Fmt("one-off per submit; %.3f%% of a masterslave round",
                   analysis_pct)},
       {"verified-VM pi kernel", bench::Fmt("%.0f pts/s", vm_points_per_s),
        "fast path gated on the verified bit"},
       {"typed-tier pi kernel", bench::Fmt("%.0f pts/s", vm_typed_points_per_s),
        bench::Fmt("unboxed tier gated on checked type facts; %.2fx generic",
                   typed_speedup)},
       {"kmeans masterslave (resident)", bench::Fmt("%.4f", km_iterative),
        bench::Fmt("pinned chunks + broadcast; %.0f cache hits",
                   km_resident_hits)},
       {"kmeans masterslave (replan)", bench::Fmt("%.4f", km_replan),
        bench::Fmt("full re-ship every round; %.2fx resident", km_ratio)},
       {"hadoop (simulated)", bench::Fmt("%.1f", hadoop),
        "control-plane floor"},
       {"tcp dials (masterslave run)", bench::Fmt("%.0f", connects),
        bench::Fmt("%.2f/iter; ", rounds > 0 ? connects / rounds : 0) +
            bench::Fmt("pool hits %.0f, ", pool_hits) +
            bench::Fmt("batched fetches %.0f", batches)}});

  double ratio = ms_affinity > 0 ? hadoop / ms_affinity : 0;
  std::printf(
      "\nhadoop / mrs-masterslave ratio: %.0fx  (paper: ~0.3s vs >=30s, "
      "'a difference of two orders of magnitude')\n",
      ratio);

  bench::EmitBenchJson(
      "bench_iteration_overhead",
      {{"rounds", static_cast<double>(rounds)},
       {"serial_s_per_iter", serial},
       {"mockparallel_s_per_iter", mock},
       {"masterslave_s_per_iter", ms_affinity},
       {"masterslave_no_affinity_s_per_iter", ms_no_affinity},
       {"masterslave_shared_files_s_per_iter", ms_shared},
       {"masterslave_speculation_on_s_per_iter", ms_affinity},
       {"masterslave_speculation_off_s_per_iter", ms_spec_off},
       {"masterslave_metrics_off_s_per_iter", ms_no_metrics},
       {"metrics_ns_per_op_on", on_ns},
       {"metrics_ns_per_op_off", off_ns},
       {"metrics_overhead_pct", metrics_overhead_pct},
       {"analysis_s_per_submit", analysis_s},
       {"analysis_pct_of_masterslave_iter", analysis_pct},
       {"vm_pi_points_per_s", vm_points_per_s},
       {"vm_typed_pi_points_per_s", vm_typed_points_per_s},
       // µs-scale keys the regression gate watches with a µs floor (the
       // *_s keys of this bench are gated at seconds scale).
       {"vm_us_per_sample", vm_s_per_point * 1e6},
       {"vm_typed_us_per_sample", vm_typed_s_per_point * 1e6},
       {"vm_typed_speedup", typed_speedup},
       {"kmeans_resident_s_per_iter", km_iterative},
       {"kmeans_replan_s_per_iter", km_replan},
       {"kmeans_replan_over_resident_ratio", km_ratio},
       {"kmeans_resident_hits", km_resident_hits},
       {"hadoop_sim_s_per_iter", hadoop},
       {"hadoop_over_mrs_ratio", ratio},
       {"masterslave_tcp_dials", connects},
       {"masterslave_tcp_dials_per_iter", rounds > 0 ? connects / rounds : 0},
       {"masterslave_pool_hits", pool_hits},
       {"masterslave_batched_fetches", batches}});
  return 0;
}
