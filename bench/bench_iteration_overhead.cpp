// E8 (paper §V-B): per-iteration framework overhead.
//
// The paper's headline: "Mrs demonstrates per-iteration overhead of about
// 0.3 seconds ... while Hadoop takes at least 30 seconds for each
// MapReduce operation, a difference of two orders of magnitude."
//
// An iterative program with a near-empty map and reduce runs N rounds so
// all measured time *is* framework overhead.  Columns cover the ablations
// DESIGN.md calls out: serial / mock parallel / masterslave with affinity
// scheduling on and off, and direct HTTP buckets vs shared-filesystem
// buckets; the Hadoop row is the DES per-iteration latency.
//
// Usage: bench_iteration_overhead [rounds=30]
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "fs/file_io.h"
#include "hadoopsim/cluster.h"
#include "rt/cluster.h"
#include "rt/mrs_main.h"

namespace mrs {
namespace {

constexpr int kSplits = 8;

class NoopIterative : public MapReduce {
 public:
  int rounds = 30;
  void Map(const Value& key, const Value& value,
           const Emitter& emit) override {
    emit(key, Value(value.AsInt() + 1));
  }
  Status Run(Job& job) override {
    std::vector<KeyValue> input;
    for (int64_t i = 0; i < kSplits; ++i) {
      input.push_back(KeyValue{Value(i), Value(int64_t{0})});
    }
    DataSetPtr data = job.LocalData(std::move(input), kSplits);
    DataSetOptions options;
    options.num_splits = kSplits;
    for (int round = 0; round < rounds; ++round) {
      DataSetPtr mapped = job.MapData(data, options);
      DataSetPtr reduced = job.ReduceData(mapped, options);
      data = reduced;
    }
    MRS_ASSIGN_OR_RETURN(std::vector<KeyValue> out, job.Collect(data));
    for (const KeyValue& kv : out) {
      if (kv.value.AsInt() != rounds) {
        return InternalError("iteration count mismatch");
      }
    }
    return Status::Ok();
  }
};

/// Run under an in-process cluster with configurable scheduler knobs;
/// returns seconds per round.
double RunMasterSlave(int rounds, bool affinity, bool shared_files) {
  NoopIterative program;
  program.rounds = rounds;
  if (!program.Init(Options()).ok()) return -1;

  ClusterLauncher::Config config;
  config.num_slaves = 4;
  config.master.enable_affinity = affinity;
  std::string shared_dir;
  if (shared_files) {
    auto dir = MakeTempDir("mrs_bench_iter_");
    if (!dir.ok()) return -1;
    shared_dir = *dir;
    config.slave.shared_dir = shared_dir;
  }
  auto cluster = ClusterLauncher::Start(
      [&]() -> std::unique_ptr<MapReduce> {
        auto p = std::make_unique<NoopIterative>();
        p->rounds = rounds;
        return p;
      },
      Options(), config);
  if (!cluster.ok()) return -1;

  Job job(&program, std::make_unique<MasterRunner>(&(*cluster)->master()));
  job.set_default_parallelism(kSplits);
  Stopwatch watch;
  Status status = program.Run(job);
  double elapsed = watch.ElapsedSeconds();
  (*cluster)->Shutdown();
  if (!shared_dir.empty()) RemoveTree(shared_dir);
  if (!status.ok()) {
    std::fprintf(stderr, "masterslave run failed: %s\n",
                 status.ToString().c_str());
    return -1;
  }
  return elapsed / rounds;
}

double RunLocalImpl(const std::string& impl, int rounds) {
  NoopIterative program;
  program.rounds = rounds;
  if (!program.Init(Options()).ok()) return -1;
  RunConfig config;
  config.impl = impl;
  config.num_slaves = 4;
  Stopwatch watch;
  Status status = RunProgram(
      [&]() -> std::unique_ptr<MapReduce> {
        auto p = std::make_unique<NoopIterative>();
        p->rounds = rounds;
        return p;
      },
      &program, config);
  if (!status.ok()) return -1;
  return watch.ElapsedSeconds() / rounds;
}

}  // namespace
}  // namespace mrs

int main(int argc, char** argv) {
  using namespace mrs;
  int rounds = argc > 1 ? std::atoi(argv[1]) : 30;

  std::printf("bench_iteration_overhead: E8 (paper §V-B headline)\n");
  std::printf("empty-map/empty-reduce job, %d rounds of %d+%d tasks\n",
              rounds, kSplits, kSplits);

  double serial = RunLocalImpl("serial", rounds);
  double mock = RunLocalImpl("mockparallel", rounds);
  double ms_affinity = RunMasterSlave(rounds, true, false);
  double ms_no_affinity = RunMasterSlave(rounds, false, false);
  double ms_shared = RunMasterSlave(rounds, true, true);

  // Hadoop: per-iteration latency of an equivalent tiny job.
  hadoopsim::HadoopCluster cluster{hadoopsim::ClusterConfig{}};
  hadoopsim::JobSpec spec;
  spec.num_map_tasks = kSplits;
  spec.num_reduce_tasks = kSplits;
  spec.map_compute_seconds = 0.001;
  auto ten = cluster.RunIterativeJobs(spec, 10);
  auto one = cluster.RunIterativeJobs(spec, 1);
  double hadoop = (ten.ValueOr(0) - one.ValueOr(0)) / 9.0;

  bench::PrintTable(
      "E8: per-iteration overhead (seconds per MapReduce round)",
      {{"implementation", "s/iteration", "notes"},
       {"mrs serial", bench::Fmt("%.4f", serial), "in-memory"},
       {"mrs mockparallel", bench::Fmt("%.4f", mock),
        "same tasks, file-backed"},
       {"mrs masterslave", bench::Fmt("%.4f", ms_affinity),
        "TCP + XML-RPC, affinity on"},
       {"mrs masterslave (no affinity)", bench::Fmt("%.4f", ms_no_affinity),
        "ablation"},
       {"mrs masterslave (shared files)", bench::Fmt("%.4f", ms_shared),
        "fault-tolerant bucket path"},
       {"hadoop (simulated)", bench::Fmt("%.1f", hadoop),
        "control-plane floor"}});

  double ratio = ms_affinity > 0 ? hadoop / ms_affinity : 0;
  std::printf(
      "\nhadoop / mrs-masterslave ratio: %.0fx  (paper: ~0.3s vs >=30s, "
      "'a difference of two orders of magnitude')\n",
      ratio);
  return 0;
}
