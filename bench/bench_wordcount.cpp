// E3 (paper §V-B, WordCount on Project Gutenberg).
//
// The paper's numbers:
//   * full corpus (31,173 nested files): Hadoop took ~9 minutes just to
//     load the data; Mrs finished the whole job in under 9 minutes;
//   * subset (8,316 files): Hadoop 1 minute prepare / 16 minutes total;
//     Mrs 2 minutes total.
//
// Here: a scaled synthetic corpus (same nested layout, Zipf words) is
// counted by real mrs-cpp runs (serial and masterslave over loopback
// TCP), while the Hadoop columns come from the hadoopsim DES — both at
// the scaled size and, for the DES, at full paper scale.  A --no-combiner
// ablation row quantifies the combiner optimization the paper describes.
#include <cstdio>
#include <cstdlib>
#include <set>
#include <thread>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/strings.h"
#include "corpus/corpus.h"
#include "fs/file_io.h"
#include "hadoopsim/cluster.h"
#include "rt/mrs_main.h"

namespace mrs {
namespace {

class WordCount : public MapReduce {
 public:
  bool use_combiner = true;
  std::string input_dir;
  size_t distinct_words = 0;

  void Map(const Value& key, const Value& value,
           const Emitter& emit) override {
    (void)key;
    for (std::string_view word : SplitWhitespace(value.AsString())) {
      emit(Value(word), Value(int64_t{1}));
    }
  }
  void Reduce(const Value& key, const ValueList& values,
              const ValueEmitter& emit) override {
    (void)key;
    int64_t sum = 0;
    for (const Value& v : values) sum += v.AsInt();
    emit(Value(sum));
  }
  Status Run(Job& job) override {
    MRS_ASSIGN_OR_RETURN(DataSetPtr input, job.FileData({input_dir}));
    DataSetOptions map_options;
    map_options.use_combiner = use_combiner;
    DataSetPtr mapped = job.MapData(input, map_options);
    DataSetPtr reduced = job.ReduceData(mapped);
    MRS_ASSIGN_OR_RETURN(std::vector<KeyValue> out, job.Collect(reduced));
    distinct_words = out.size();
    return Status::Ok();
  }
};

double RunMrs(const std::string& impl, const std::string& dir,
              bool use_combiner, int num_slaves, size_t* distinct,
              int num_workers = 0, int morsel_records = 0) {
  WordCount program;
  program.input_dir = dir;
  program.use_combiner = use_combiner;
  if (!program.Init(Options()).ok()) return -1;
  RunConfig config;
  config.impl = impl;
  config.num_slaves = num_slaves;
  config.num_workers = num_workers;
  config.morsel_records = morsel_records;
  Stopwatch watch;
  Status status = RunProgram(
      [&]() -> std::unique_ptr<MapReduce> {
        auto p = std::make_unique<WordCount>();
        p->input_dir = dir;
        p->use_combiner = use_combiner;
        return p;
      },
      &program, config);
  if (!status.ok()) {
    std::fprintf(stderr, "mrs %s failed: %s\n", impl.c_str(),
                 status.ToString().c_str());
    return -1;
  }
  *distinct = program.distinct_words;
  return watch.ElapsedSeconds();
}

hadoopsim::JobResult SimulateHadoop(int num_files, int num_dirs,
                                    int64_t bytes) {
  hadoopsim::HadoopCluster cluster{hadoopsim::ClusterConfig{}};
  hadoopsim::JobSpec spec;
  spec.num_map_tasks = num_files;
  spec.num_reduce_tasks = 21;
  spec.map_input_bytes = bytes;
  spec.map_output_bytes = bytes / 4;   // combiner applied
  spec.reduce_output_bytes = bytes / 50;
  spec.num_input_files = num_files;
  spec.num_input_dirs = num_dirs;
  spec.stage_in_bytes = bytes;  // data must enter HDFS
  spec.stage_out_bytes = bytes / 50;
  auto result = cluster.RunJob(spec);
  return result.ValueOr(hadoopsim::JobResult{});
}

}  // namespace
}  // namespace mrs

int main(int argc, char** argv) {
  using namespace mrs;
  // Scale: paper file counts divided by `denominator` (default 20).
  int denominator = 20;
  if (argc > 1) denominator = std::max(1, std::atoi(argv[1]));

  std::printf("bench_wordcount: E3, WordCount vs Hadoop (paper §V-B)\n");
  std::printf("corpus scale: paper file counts / %d\n", denominator);

  auto tmp = MakeTempDir("mrs_bench_wc_");
  if (!tmp.ok()) {
    std::fprintf(stderr, "tempdir failed\n");
    return 1;
  }

  struct Scale {
    const char* name;
    int paper_files;
  };
  const Scale scales[] = {{"subset", 8316}, {"full", 31173}};

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"corpus", "files", "MB", "mrs serial (s)",
                  "mrs masterslave (s)", "hadoopsim startup (s)",
                  "hadoopsim total (s)"});
  std::vector<bench::BenchMetric> json_metrics;
  json_metrics.push_back(
      {"denominator", static_cast<double>(denominator)});

  std::vector<std::vector<std::string>> paper_rows;
  paper_rows.push_back({"corpus (paper scale)", "files",
                        "hadoopsim startup (s)", "hadoopsim total (s)",
                        "mrs total est. (s)", "paper said"});

  for (const Scale& scale : scales) {
    CorpusSpec spec;
    spec.num_files = scale.paper_files / denominator;
    spec.words_per_file = 800;
    spec.vocabulary = 20000;
    spec.seed = 2012;
    std::string dir = JoinPath(*tmp, scale.name);
    CorpusStats stats;
    std::vector<uint64_t> counts;
    auto files = GenerateCorpusWithCounts(dir, spec, &counts, &stats);
    if (!files.ok()) {
      std::fprintf(stderr, "corpus generation failed: %s\n",
                   files.status().ToString().c_str());
      return 1;
    }
    int64_t bytes = 0;
    int num_dirs = 0;
    {
      std::set<std::string> dirs;
      for (const std::string& f : *files) {
        bytes += static_cast<int64_t>(FileSize(f).ValueOr(0));
        dirs.insert(f.substr(0, f.rfind('/')));
      }
      num_dirs = static_cast<int>(dirs.size());
    }

    size_t distinct_serial = 0, distinct_ms = 0;
    double t_serial = RunMrs("serial", dir, true, 4, &distinct_serial);
    double t_ms = RunMrs("masterslave", dir, true, 4, &distinct_ms);
    if (distinct_serial != stats.distinct_words ||
        distinct_ms != stats.distinct_words) {
      std::fprintf(stderr,
                   "WARNING: wordcount mismatch (serial %zu, ms %zu, "
                   "expected %llu)\n",
                   distinct_serial, distinct_ms,
                   static_cast<unsigned long long>(stats.distinct_words));
    }
    hadoopsim::JobResult sim = SimulateHadoop(
        static_cast<int>(files->size()), num_dirs, bytes);

    rows.push_back({scale.name, std::to_string(files->size()),
                    bench::Fmt("%.1f", static_cast<double>(bytes) / 1e6),
                    bench::Fmt("%.2f", t_serial), bench::Fmt("%.2f", t_ms),
                    bench::Fmt("%.1f", sim.startup()),
                    bench::Fmt("%.1f", sim.total)});
    std::string prefix = scale.name;
    json_metrics.push_back(
        {prefix + "_files", static_cast<double>(files->size())});
    json_metrics.push_back({prefix + "_serial_s", t_serial});
    json_metrics.push_back({prefix + "_masterslave_s", t_ms});
    json_metrics.push_back({prefix + "_hadoop_sim_total_s", sim.total});

    // Paper-scale projection: DES runs at real file counts; Mrs total is
    // the measured masterslave throughput scaled linearly in bytes.
    int paper_dirs = num_dirs * denominator;
    hadoopsim::JobResult paper_sim =
        SimulateHadoop(scale.paper_files, paper_dirs, bytes * denominator);
    double mrs_est = t_ms * denominator;
    const char* said = scale.paper_files == 8316
                           ? "Hadoop 60s prepare / 16min total; Mrs 2min"
                           : "Hadoop ~9min load alone; Mrs <9min total";
    paper_rows.push_back({scale.name, std::to_string(scale.paper_files),
                          bench::Fmt("%.0f", paper_sim.startup()),
                          bench::Fmt("%.0f", paper_sim.total),
                          bench::Fmt("%.0f", mrs_est), said});
  }

  bench::PrintTable("E3: measured (scaled corpus)", rows);
  bench::PrintTable("E3: paper-scale projection", paper_rows);

  // Ablation: the combiner optimization (paper §V-A).
  {
    std::string dir = JoinPath(*tmp, "subset");
    size_t distinct = 0;
    double with_combiner = RunMrs("serial", dir, true, 4, &distinct);
    double without = RunMrs("serial", dir, false, 4, &distinct);
    bench::PrintTable("Ablation: combiner on/off (mrs serial, subset corpus)",
                      {{"variant", "seconds"},
                       {"with combiner", bench::Fmt("%.2f", with_combiner)},
                       {"without combiner", bench::Fmt("%.2f", without)}});
    json_metrics.push_back({"combiner_on_s", with_combiner});
    json_metrics.push_back({"combiner_off_s", without});
  }

  // Thread-runner scaling curve: same job, same answer, 1/2/4 workers
  // (plus 8 on machines that have them).  Speedup is hardware-bound
  // (ideal on >=4 cores, ~1x on one core), so the emitted curve also
  // records thread_hw_concurrency — tools/check_scaling.py only enforces
  // its floors where the cores exist.  Morsel splitting is on so the
  // pool has sub-task work to balance, and per-worker counter deltas
  // (steals, deposits, combines, morsels, pipelined submits) ride along.
  {
    std::string dir = JoinPath(*tmp, "subset");
    json_metrics.push_back(
        {"thread_hw_concurrency",
         static_cast<double>(std::thread::hardware_concurrency())});
    std::vector<std::vector<std::string>> scaling;
    scaling.push_back({"workers", "seconds", "speedup vs 1 worker"});
    double base = -1;
    for (int workers : bench::ScalingWorkerCounts()) {
      size_t distinct = 0;
      std::vector<int64_t> before = bench::SnapshotThreadCounters();
      double t = RunMrs("thread", dir, true, 4, &distinct, workers,
                        /*morsel_records=*/64);
      if (workers == 1) base = t;
      double speedup = (t > 0 && base > 0) ? base / t : 0;
      scaling.push_back({std::to_string(workers), bench::Fmt("%.2f", t),
                         bench::Fmt("%.2fx", speedup)});
      std::string w = std::to_string(workers);
      json_metrics.push_back({"thread_w" + w + "_s", t});
      json_metrics.push_back({"thread_speedup_w" + w, speedup});
      bench::AppendCounterDeltas("thread_w" + w, before, &json_metrics);
    }
    bench::PrintTable("Thread runner scaling (subset corpus)", scaling);
  }

  RemoveTree(*tmp);
  bench::EmitBenchJson("bench_wordcount", json_metrics);
  return 0;
}
