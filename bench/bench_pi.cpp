// E4 + E5 (paper Fig 3a / 3b): π-estimation run time vs sample count.
//
// Series, matching the paper's:
//   hadoop     — the hadoopsim DES (10 map tasks, Java-speed inner loop
//                modelled as measured-native-rate x 1.3); *simulated*
//                seconds — this is the ~30 s floor on the left of Fig 3.
//   python     — Mrs masterslave, MiniPy tree-walk inner loop (Fig 3a).
//   pypy       — Mrs masterslave, MiniPy bytecode VM (Fig 3a).
//   c          — Mrs masterslave, native inner loop (Fig 3b, "ctypes C").
//
// Slow interpreter cells whose projected run time exceeds the per-cell
// budget are extrapolated from the engine's measured per-sample rate and
// marked with '*'.  Absolute numbers differ from 2012 hardware; the
// *shape* — Mrs's flat low overhead on the left, the Hadoop floor, the
// language-speed separation and crossover on the right — is the result.
//
// Usage: bench_pi [max_exponent=7] [cell_budget_seconds=15]
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include <thread>

#include "common/clock.h"
#include "halton/pi_program.h"
#include "hadoopsim/cluster.h"
#include "rt/mrs_main.h"

namespace mrs {
namespace {

constexpr int kNumSlaves = 4;
constexpr int kMapTasks = 10;  // Hadoop PiEstimator's default

/// Real speedup available to the in-process cluster (slaves are threads).
double EffectiveParallelism() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return static_cast<double>(std::min<unsigned>(kNumSlaves, hw));
}

/// Measured per-sample seconds for an engine (calibration run).
double CalibrateRate(PiEngine engine, uint64_t samples) {
  auto kernel = PiKernel::Create(engine);
  if (!kernel.ok()) return -1;
  Stopwatch watch;
  (void)(*kernel)->CountInside(0, samples);
  return watch.ElapsedSeconds() / static_cast<double>(samples);
}

/// One real Mrs run (masterslave by default); returns wall seconds.
double RunMrsPi(PiEngine engine, int64_t samples,
                const std::string& impl = "masterslave",
                int num_workers = 0) {
  PiEstimatorProgram program;
  program.samples = samples;
  program.tasks = kMapTasks;
  program.engine = engine;
  if (!program.Init(Options()).ok()) return -1;
  RunConfig config;
  config.impl = impl;
  config.num_slaves = kNumSlaves;
  config.num_workers = num_workers;
  Stopwatch watch;
  Status status = RunProgram(
      [&]() -> std::unique_ptr<MapReduce> {
        auto p = std::make_unique<PiEstimatorProgram>();
        p->samples = samples;
        p->tasks = kMapTasks;
        p->engine = engine;
        return p;
      },
      &program, config);
  if (!status.ok()) {
    std::fprintf(stderr, "pi run failed: %s\n", status.ToString().c_str());
    return -1;
  }
  return watch.ElapsedSeconds();
}

double SimulateHadoopPi(int64_t samples, double java_per_sample) {
  hadoopsim::HadoopCluster cluster{hadoopsim::ClusterConfig{}};
  hadoopsim::JobSpec spec;
  spec.num_map_tasks = kMapTasks;
  spec.num_reduce_tasks = 1;
  spec.map_compute_seconds =
      static_cast<double>(samples) / kMapTasks * java_per_sample;
  // Hadoop's PiEstimator writes one small input file per map into HDFS.
  spec.num_input_files = kMapTasks;
  spec.num_input_dirs = 1;
  spec.stage_in_bytes = kMapTasks * 1024;
  spec.map_output_bytes = kMapTasks * 64;
  spec.reduce_output_bytes = 64;
  auto result = cluster.RunJob(spec);
  return result.ok() ? result->total : -1;
}

}  // namespace
}  // namespace mrs

int main(int argc, char** argv) {
  using namespace mrs;
  int max_exp = argc > 1 ? std::atoi(argv[1]) : 7;
  double budget = argc > 2 ? std::atof(argv[2]) : 15.0;

  std::printf("bench_pi: E4/E5, Fig 3a + 3b (pi run time vs samples)\n");
  std::printf("mrs runs: masterslave, %d slaves, %d map tasks; hadoop: DES\n",
              kNumSlaves, kMapTasks);

  // Calibrate engine rates (seconds per sample).
  double native_rate = CalibrateRate(PiEngine::kNative, 2000000);
  double vm_rate = CalibrateRate(PiEngine::kVm, 100000);
  double vm_typed_rate = CalibrateRate(PiEngine::kVmTyped, 1000000);
  double tw_rate = CalibrateRate(PiEngine::kTreeWalk, 30000);
  double java_rate = native_rate * 1.3;  // the paper-era Java JIT penalty
  std::printf(
      "per-sample rates: native=%.3gs  vm(pypy)=%.3gs  vm-typed=%.3gs  "
      "treewalk(python)=%.3gs  java(model)=%.3gs\n",
      native_rate, vm_rate, vm_typed_rate, tw_rate, java_rate);
  std::printf("typed tier speedup over generic vm: %.2fx\n",
              vm_typed_rate > 0 ? vm_rate / vm_typed_rate : 0);

  struct Series {
    const char* name;
    PiEngine engine;
    double rate;
  };
  const Series series[] = {
      {"mrs python", PiEngine::kTreeWalk, tw_rate},
      {"mrs pypy", PiEngine::kVm, vm_rate},
      {"mrs pypy-typed", PiEngine::kVmTyped, vm_typed_rate},
      {"mrs c", PiEngine::kNative, native_rate},
  };

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"samples", "hadoop sim (s)", "mrs python (s)",
                  "mrs pypy (s)", "mrs pypy-typed (s)", "mrs c (s)"});

  for (int exp = 2; exp <= max_exp; ++exp) {
    int64_t samples = 1;
    for (int i = 0; i < exp; ++i) samples *= 10;

    std::vector<std::string> row;
    row.push_back("1e" + std::to_string(exp));
    row.push_back(bench::Fmt("%.1f", SimulateHadoopPi(samples, java_rate)));
    for (const Series& s : series) {
      double projected =
          s.rate * static_cast<double>(samples) / EffectiveParallelism();
      if (projected > budget) {
        row.push_back(bench::Fmt("%.1f", projected) + "*");
      } else {
        row.push_back(bench::Fmt("%.2f", RunMrsPi(s.engine, samples)));
      }
    }
    rows.push_back(row);
  }
  bench::PrintTable(
      "Fig 3a/3b: run time vs samples ('*' = extrapolated from measured "
      "per-sample rate)",
      rows);

  // Crossover analysis (the right-hand side of Fig 3a): where does the
  // Hadoop/Java series overtake each Mrs engine?
  std::vector<std::vector<std::string>> cross;
  cross.push_back({"series", "per-sample (s)", "crossover vs hadoop (samples)"});
  for (const Series& s : series) {
    double effective = s.rate / EffectiveParallelism();  // Mrs parallel rate
    double java_eff = java_rate / (21.0 * 6);   // full paper cluster
    double overhead = SimulateHadoopPi(1, java_rate);  // ~the fixed floor
    std::string crossover = "never (mrs faster at all sizes)";
    if (effective > java_eff) {
      double n = overhead / (effective - java_eff);
      crossover = bench::Fmt("%.3g", n);
    }
    cross.push_back({s.name, bench::Fmt("%.3g", s.rate), crossover});
  }
  bench::PrintTable("Fig 3a crossover estimate", cross);
  std::printf(
      "(paper: Mrs wins below ~32s task times — extended to ~40s with the\n"
      " C inner loop; in Fig 3b the C loop beats the Java model everywhere\n"
      " except the far right where both are compute-bound)\n");

  // Thread-runner scaling on the native inner loop: the shared-memory
  // implementation has no cluster bring-up at all, so this curve isolates
  // pure compute scaling across 1/2/4 pool workers.
  std::vector<bench::BenchMetric> json_metrics = {
      {"max_exponent", static_cast<double>(max_exp)},
      {"native_s_per_sample", native_rate},
      {"vm_s_per_sample", vm_rate},
      {"vm_typed_s_per_sample", vm_typed_rate},
      // µs-scale keys for the regression gate (tools/compare_bench.py
      // gates *_us_per_sample with a µs-appropriate noise floor; the
      // seconds-scale keys above would fall under its 5ms exemption).
      {"vm_us_per_sample", vm_rate * 1e6},
      {"vm_typed_us_per_sample", vm_typed_rate * 1e6},
      {"treewalk_us_per_sample", tw_rate * 1e6},
      {"vm_typed_speedup",
       vm_typed_rate > 0 ? vm_rate / vm_typed_rate : 0},
      {"treewalk_s_per_sample", tw_rate},
      {"java_model_s_per_sample", java_rate},
      {"hadoop_sim_floor_s", SimulateHadoopPi(1, java_rate)}};
  {
    int64_t samples = 1;
    for (int i = 0; i < std::min(max_exp, 6); ++i) samples *= 10;
    json_metrics.push_back(
        {"thread_hw_concurrency",
         static_cast<double>(std::thread::hardware_concurrency())});
    std::vector<std::vector<std::string>> scaling;
    scaling.push_back({"workers", "seconds", "speedup vs 1 worker"});
    double base = -1;
    for (int workers : bench::ScalingWorkerCounts()) {
      std::vector<int64_t> before = bench::SnapshotThreadCounters();
      double t = RunMrsPi(PiEngine::kNative, samples, "thread", workers);
      if (workers == 1) base = t;
      double speedup = (t > 0 && base > 0) ? base / t : 0;
      scaling.push_back({std::to_string(workers), bench::Fmt("%.3f", t),
                         bench::Fmt("%.2fx", speedup)});
      std::string w = std::to_string(workers);
      json_metrics.push_back({"thread_w" + w + "_s", t});
      json_metrics.push_back({"thread_speedup_w" + w, speedup});
      bench::AppendCounterDeltas("thread_w" + w, before, &json_metrics);
    }
    bench::PrintTable("Thread runner scaling (native engine, " +
                          std::to_string(samples) + " samples)",
                      scaling);
  }

  bench::EmitBenchJson("bench_pi", json_metrics);
  return 0;
}
