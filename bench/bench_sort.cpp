// Out-of-core sort bench: the TeraSort-class DistSort workload run with a
// memory budget a fraction of the dataset size.
//
// The run is a validation as much as a measurement: every budgeted run
// must (a) actually spill (mrs.spill.bytes_spilled grows), and (b) produce
// output byte-identical to both the unbudgeted run and a plain std::sort
// ground truth.  The dataset is 8x the memory budget, so the shuffle
// cannot complete without the spill-to-disk tier.
//
// Usage: bench_sort [records_per_task=2000] [tasks=8]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "fs/spill.h"
#include "obs/metrics.h"
#include "rt/mrs_main.h"
#include "sort/distsort.h"

namespace mrs {
namespace {

struct SortRunResult {
  double seconds = -1;
  bool identical = false;
  int64_t spilled_bytes = 0;
  int64_t runs_written = 0;
  size_t records = 0;
};

SortRunResult RunSort(const std::string& impl,
                      const sort::DistSortConfig& cfg, int64_t budget,
                      const std::vector<KeyValue>& expected) {
  SortRunResult r;
  sort::DistSortProgram program;
  program.config = cfg;
  if (!program.Init(Options()).ok()) return r;

  obs::Counter* spilled =
      obs::Registry::Instance().GetCounter("mrs.spill.bytes_spilled");
  obs::Counter* runs =
      obs::Registry::Instance().GetCounter("mrs.spill.runs_written");
  int64_t spilled_before = spilled->value();
  int64_t runs_before = runs->value();

  MemoryBudget::Process().set_limit(budget);
  RunConfig config;
  config.impl = impl;
  config.num_slaves = 4;
  Stopwatch watch;
  Status status = RunProgram(
      [cfg]() -> std::unique_ptr<MapReduce> {
        auto p = std::make_unique<sort::DistSortProgram>();
        p->config = cfg;
        return p;
      },
      &program, config);
  r.seconds = watch.ElapsedSeconds();
  MemoryBudget::Process().set_limit(0);
  if (!status.ok()) {
    std::fprintf(stderr, "bench_sort: %s run failed: %s\n", impl.c_str(),
                 status.ToString().c_str());
    r.seconds = -1;
    return r;
  }
  r.spilled_bytes = spilled->value() - spilled_before;
  r.runs_written = runs->value() - runs_before;
  r.identical = program.result == expected;
  r.records = program.result.size();
  return r;
}

}  // namespace
}  // namespace mrs

int main(int argc, char** argv) {
  using namespace mrs;
  sort::DistSortConfig cfg;
  cfg.records_per_task = argc > 1 ? std::atoll(argv[1]) : 2000;
  cfg.tasks = argc > 2 ? std::atoi(argv[2]) : 8;

  sort::DistSortProgram reference;
  reference.config = cfg;
  if (!reference.Init(Options()).ok()) {
    std::fprintf(stderr, "bench_sort: reference init failed\n");
    return 1;
  }
  const std::vector<KeyValue> expected = reference.ExpectedOutput();
  const int64_t dataset_bytes = reference.ApproxDatasetBytes();
  const int64_t budget = dataset_bytes / 8;

  std::printf("bench_sort: %d tasks x %lld records (~%lld bytes), budget %lld"
              " bytes (dataset = 8x budget)\n",
              cfg.tasks, static_cast<long long>(cfg.records_per_task),
              static_cast<long long>(dataset_bytes),
              static_cast<long long>(budget));

  struct Cell {
    const char* label;
    const char* impl;
    int64_t budget;
  };
  const Cell cells[] = {
      {"serial (unbudgeted)", "serial", 0},
      {"serial", "serial", budget},
      {"mockparallel", "mockparallel", budget},
      {"thread", "thread", budget},
      {"masterslave", "masterslave", budget},
  };

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"run", "seconds", "identical", "spilled bytes", "runs"});
  std::vector<bench::BenchMetric> metrics = {
      {"dataset_bytes", static_cast<double>(dataset_bytes)},
      {"budget_bytes", static_cast<double>(budget)},
      {"records", static_cast<double>(expected.size())},
  };
  bool ok = true;
  for (const Cell& cell : cells) {
    SortRunResult r = RunSort(cell.impl, cfg, cell.budget, expected);
    bool budgeted = cell.budget > 0;
    bool cell_ok =
        r.seconds >= 0 && r.identical && (!budgeted || r.spilled_bytes > 0);
    ok = ok && cell_ok;
    rows.push_back({cell.label, bench::Fmt("%.3f", r.seconds),
                    r.identical ? "yes" : "NO",
                    std::to_string(r.spilled_bytes),
                    std::to_string(r.runs_written)});
    std::string tag = std::string(cell.impl) + (budgeted ? "_budgeted" : "");
    metrics.push_back({tag + "_s", r.seconds});
    metrics.push_back({tag + "_identical", r.identical ? 1.0 : 0.0});
    metrics.push_back({tag + "_spilled_bytes",
                       static_cast<double>(r.spilled_bytes)});
  }
  bench::PrintTable(
      "Out-of-core sort: budget = dataset/8, output vs std::sort ground "
      "truth",
      rows);
  bench::EmitBenchJson("bench_sort", metrics);
  if (!ok) {
    std::fprintf(stderr,
                 "bench_sort: FAILED (non-identical output or no spill in a "
                 "budgeted run)\n");
    return 1;
  }
  return 0;
}
