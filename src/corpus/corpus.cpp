#include "corpus/corpus.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "fs/file_io.h"

namespace mrs {

ZipfSampler::ZipfSampler(int n, double s) {
  if (n < 1) n = 1;
  cdf_.resize(static_cast<size_t>(n));
  double total = 0.0;
  for (int k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[static_cast<size_t>(k)] = total;
  }
  for (double& c : cdf_) c /= total;
}

int ZipfSampler::Sample(MT19937_64& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<int>(cdf_.size()) - 1;
  return static_cast<int>(it - cdf_.begin());
}

double ZipfSampler::ExpectedProbability(int rank) const {
  if (rank < 0 || rank >= static_cast<int>(cdf_.size())) return 0.0;
  double lo = rank == 0 ? 0.0 : cdf_[static_cast<size_t>(rank - 1)];
  return cdf_[static_cast<size_t>(rank)] - lo;
}

std::string VocabularyWord(int rank) {
  static const char* kCommon[] = {"the", "of",  "and", "to",  "a",
                                  "in",  "is",  "it",  "you", "that",
                                  "he",  "was", "for", "on",  "are"};
  constexpr int kNumCommon = static_cast<int>(std::size(kCommon));
  if (rank < kNumCommon) return kCommon[rank];
  return "w" + std::to_string(rank);
}

Result<std::vector<std::string>> GenerateCorpus(const std::string& root,
                                                const CorpusSpec& spec) {
  return GenerateCorpusWithCounts(root, spec, nullptr, nullptr);
}

Result<std::vector<std::string>> GenerateCorpusWithCounts(
    const std::string& root, const CorpusSpec& spec,
    std::vector<uint64_t>* rank_counts, CorpusStats* stats) {
  MRS_RETURN_IF_ERROR(EnsureDir(root));
  ZipfSampler zipf(spec.vocabulary, spec.zipf_s);
  if (rank_counts != nullptr) {
    rank_counts->assign(static_cast<size_t>(spec.vocabulary), 0);
  }

  std::vector<std::string> files;
  files.reserve(static_cast<size_t>(spec.num_files));
  uint64_t total_words = 0;

  int files_per_dir = std::max(1, spec.files_per_dir);
  for (int f = 0; f < spec.num_files; ++f) {
    // Nested layout: etext<NN>/<MM>/book<f>.txt — two directory levels,
    // echoing the Gutenberg mirror tree.
    int leaf = f / files_per_dir;
    int shelf = leaf / 10;
    std::string dir = JoinPath(
        root, "etext" + std::to_string(shelf) + "/" + std::to_string(leaf));
    MRS_RETURN_IF_ERROR(EnsureDir(dir));
    std::string path = JoinPath(dir, "book" + std::to_string(f) + ".txt");

    // Independent deterministic stream per file: regeneration of any one
    // file yields identical content regardless of order.
    const uint64_t keys[] = {spec.seed, 0x636f7270ull /*"corp"*/,
                             static_cast<uint64_t>(f)};
    MT19937_64 rng{std::span<const uint64_t>(keys, 3)};

    int words = spec.words_per_file / 2 +
                static_cast<int>(rng.NextBounded(
                    static_cast<uint64_t>(std::max(1, spec.words_per_file))));
    std::string content;
    content.reserve(static_cast<size_t>(words) * 6);
    for (int w = 0; w < words; ++w) {
      int rank = zipf.Sample(rng);
      content += VocabularyWord(rank);
      if (rank_counts != nullptr) ++(*rank_counts)[static_cast<size_t>(rank)];
      ++total_words;
      content += ((w + 1) % spec.words_per_line == 0) ? '\n' : ' ';
    }
    if (!content.empty() && content.back() != '\n') content += '\n';
    MRS_RETURN_IF_ERROR(WriteFileAtomic(path, content));
    files.push_back(std::move(path));
  }

  if (stats != nullptr) {
    stats->total_words = total_words;
    stats->distinct_words = 0;
    if (rank_counts != nullptr) {
      for (uint64_t c : *rank_counts) {
        if (c > 0) ++stats->distinct_words;
      }
    }
  }
  return files;
}

}  // namespace mrs
