// Synthetic text corpus standing in for Project Gutenberg (paper §V-B).
//
// The paper's WordCount input is 31,173 plain-ASCII ebooks in a *nested*
// directory layout — the layout itself is part of the experiment, because
// Hadoop's input loader "expects all of the files to be located in a
// single directory" and took ~9 minutes just to load the data.  This
// generator reproduces the shape: many small files, Zipf-distributed word
// frequencies, nested directories (etext02/, etext03/, ... with
// subdirectories), deterministic under a seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rng/mt19937_64.h"

namespace mrs {

struct CorpusSpec {
  int num_files = 100;
  /// Mean words per file (files vary ±50% uniformly).
  int words_per_file = 2000;
  /// Vocabulary size for the Zipf distribution.
  int vocabulary = 5000;
  /// Zipf exponent (1.0 ≈ natural text).
  double zipf_s = 1.07;
  /// Files per leaf directory; directories nest two levels deep, like the
  /// Gutenberg mirror layout.
  int files_per_dir = 25;
  int words_per_line = 12;
  uint64_t seed = 2012;
};

/// A deterministic Zipf sampler over ranks 1..n using the inverse-CDF
/// table method.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s);

  /// Rank in [0, n) drawn with probability ∝ 1/(rank+1)^s.
  int Sample(MT19937_64& rng) const;

  double ExpectedProbability(int rank) const;

 private:
  std::vector<double> cdf_;
};

/// The synthetic vocabulary word for a rank ("w0", "w1", ..., with a few
/// hand-picked common words at the head so output is readable).
std::string VocabularyWord(int rank);

/// Generate the corpus under `root` (created if needed).  Returns the list
/// of file paths written, in generation order.
Result<std::vector<std::string>> GenerateCorpus(const std::string& root,
                                                const CorpusSpec& spec);

/// Exact aggregate statistics computed during generation, so WordCount
/// results can be verified without an independent recount.
struct CorpusStats {
  uint64_t total_words = 0;
  uint64_t distinct_words = 0;
};

/// Generate and also return per-word exact counts (rank -> count).
Result<std::vector<std::string>> GenerateCorpusWithCounts(
    const std::string& root, const CorpusSpec& spec,
    std::vector<uint64_t>* rank_counts, CorpusStats* stats);

}  // namespace mrs
