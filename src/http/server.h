// Threaded HTTP/1.1 server.
//
// Plays the role of the "built-in HTTP server" each Mrs slave runs to serve
// intermediate data files, and carries XML-RPC traffic for the master.  One
// accept thread polls the listener; connections are handled on a small
// worker pool; handlers are plain functions from request to response.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/threadpool.h"
#include "http/message.h"
#include "net/socket.h"

namespace mrs {

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Bind to host:port (port 0 = ephemeral) and start serving on
  /// `num_workers` connection threads.
  static Result<std::unique_ptr<HttpServer>> Start(const std::string& host,
                                                   uint16_t port,
                                                   Handler handler,
                                                   size_t num_workers = 4);

  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  const SocketAddr& addr() const { return listener_.local_addr(); }
  std::string url_base() const {
    return "http://" + addr().ToString();
  }

  /// Stop accepting, drain in-flight connections, join threads.
  void Shutdown();

 private:
  HttpServer(TcpListener listener, Handler handler, size_t num_workers);
  void AcceptLoop();
  void HandleConnection(TcpConn conn);

  TcpListener listener_;
  Handler handler_;
  std::atomic<bool> stop_{false};
  ThreadPool workers_;
  std::thread accept_thread_;
};

}  // namespace mrs
