#include "http/parser.h"

#include "common/strings.h"

namespace mrs {
namespace internal {

Result<size_t> HttpParserBase::Feed(std::string_view data) {
  size_t consumed = 0;
  while (consumed < data.size() || state_ == State::kBody) {
    if (state_ == State::kDone) break;
    if (state_ == State::kBody) {
      size_t want = static_cast<size_t>(content_length_) - buffer_.size();
      size_t take = std::min(want, data.size() - consumed);
      buffer_.append(data.substr(consumed, take));
      consumed += take;
      if (buffer_.size() == static_cast<size_t>(content_length_)) {
        OnBody(std::move(buffer_));
        buffer_.clear();
        state_ = State::kDone;
      }
      break;  // either done or need more input
    }

    // Head: accumulate until CRLF (tolerate bare LF).
    size_t nl = data.find('\n', consumed);
    if (nl == std::string_view::npos) {
      buffer_.append(data.substr(consumed));
      consumed = data.size();
      if (buffer_.size() > 64 * 1024) {
        return ProtocolError("HTTP header line exceeds 64KiB");
      }
      break;
    }
    buffer_.append(data.substr(consumed, nl - consumed));
    consumed = nl + 1;
    if (!buffer_.empty() && buffer_.back() == '\r') buffer_.pop_back();
    std::string line = std::move(buffer_);
    buffer_.clear();

    if (state_ == State::kStartLine) {
      if (line.empty()) continue;  // robustness: skip stray leading CRLF
      MRS_RETURN_IF_ERROR(OnStartLine(line));
      state_ = State::kHeaders;
    } else {  // kHeaders
      if (line.empty()) {
        if (content_length_ <= 0) {
          OnBody(std::string());
          state_ = State::kDone;
        } else {
          state_ = State::kBody;
        }
      } else {
        MRS_RETURN_IF_ERROR(HandleHeaderLine(line));
      }
    }
  }
  return consumed;
}

Status HttpParserBase::HandleHeaderLine(std::string_view line) {
  size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    return ProtocolError("malformed header line: " + std::string(line));
  }
  std::string name(Trim(line.substr(0, colon)));
  std::string value(Trim(line.substr(colon + 1)));
  if (EqualsIgnoreCase(name, "Content-Length")) {
    auto n = ParseUint64(value);
    if (!n.has_value() || *n > (1ull << 40)) {
      return ProtocolError("bad Content-Length: " + value);
    }
    content_length_ = static_cast<long long>(*n);
  }
  if (EqualsIgnoreCase(name, "Transfer-Encoding") &&
      !EqualsIgnoreCase(value, "identity")) {
    return ProtocolError("chunked transfer encoding not supported");
  }
  OnHeader(std::move(name), std::move(value));
  return Status::Ok();
}

}  // namespace internal

Status HttpRequestParser::OnStartLine(std::string_view line) {
  std::vector<std::string_view> parts = SplitWhitespace(line);
  if (parts.size() != 3 || !StartsWith(parts[2], "HTTP/")) {
    return ProtocolError("malformed request line: " + std::string(line));
  }
  request_.method = std::string(parts[0]);
  request_.target = std::string(parts[1]);
  return Status::Ok();
}

void HttpRequestParser::OnHeader(std::string name, std::string value) {
  request_.headers.Add(std::move(name), std::move(value));
}

Status HttpResponseParser::OnStartLine(std::string_view line) {
  std::vector<std::string_view> parts = SplitCharLimit(line, ' ', 3);
  if (parts.size() < 2 || !StartsWith(parts[0], "HTTP/")) {
    return ProtocolError("malformed status line: " + std::string(line));
  }
  auto code = ParseUint64(parts[1]);
  if (!code.has_value() || *code < 100 || *code > 599) {
    return ProtocolError("bad status code in: " + std::string(line));
  }
  response_.status_code = static_cast<int>(*code);
  response_.reason = parts.size() == 3 ? std::string(parts[2]) : "";
  return Status::Ok();
}

void HttpResponseParser::OnHeader(std::string name, std::string value) {
  response_.headers.Add(std::move(name), std::move(value));
}

}  // namespace mrs
