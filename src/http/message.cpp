#include "http/message.h"

#include <cstdio>

#include "common/hash.h"
#include "common/strings.h"

namespace mrs {

void HttpHeaders::Add(std::string name, std::string value) {
  entries_.emplace_back(std::move(name), std::move(value));
}

void HttpHeaders::Set(std::string name, std::string value) {
  bool replaced = false;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (EqualsIgnoreCase(it->first, name)) {
      if (!replaced) {
        it->second = value;
        replaced = true;
        ++it;
      } else {
        it = entries_.erase(it);
      }
    } else {
      ++it;
    }
  }
  if (!replaced) Add(std::move(name), std::move(value));
}

std::optional<std::string_view> HttpHeaders::Get(std::string_view name) const {
  for (const auto& [n, v] : entries_) {
    if (EqualsIgnoreCase(n, name)) return std::string_view(v);
  }
  return std::nullopt;
}

namespace {
void AppendHeaders(std::string* out, const HttpHeaders& headers,
                   size_t body_size) {
  bool has_length = false;
  for (const auto& [n, v] : headers.entries()) {
    *out += n;
    *out += ": ";
    *out += v;
    *out += "\r\n";
    if (EqualsIgnoreCase(n, "Content-Length")) has_length = true;
  }
  if (!has_length) {
    *out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  }
  *out += "\r\n";
}
}  // namespace

std::string HttpRequest::Serialize() const {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  AppendHeaders(&out, headers, body.size());
  out += body;
  return out;
}

std::string HttpResponse::Serialize() const {
  std::string out =
      "HTTP/1.1 " + std::to_string(status_code) + " " + reason + "\r\n";
  AppendHeaders(&out, headers, body.size());
  out += body;
  return out;
}

HttpResponse HttpResponse::Make(int code, std::string_view reason,
                                std::string body,
                                std::string_view content_type) {
  HttpResponse resp;
  resp.status_code = code;
  resp.reason = std::string(reason);
  resp.headers.Set("Content-Type", std::string(content_type));
  resp.body = std::move(body);
  return resp;
}

std::string ContentChecksum(std::string_view body) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(body)));
  return std::string(buf);
}

bool FormatAccepted(const HttpHeaders& headers, std::string_view format) {
  auto value = headers.Get(kMrsFormatHeader);
  if (!value.has_value()) return false;
  for (std::string_view token : SplitChar(*value, ',')) {
    if (Trim(token) == format) return true;
  }
  return false;
}

std::pair<std::string_view, std::string_view> SplitTarget(
    std::string_view target) {
  size_t q = target.find('?');
  if (q == std::string_view::npos) return {target, std::string_view()};
  return {target.substr(0, q), target.substr(q + 1)};
}

}  // namespace mrs
