// Per-peer keep-alive HTTP connection pool: the data plane's dial cache.
//
// Before the pool, every bucket fetch built a fresh HttpClient and paid a
// TCP connect per bucket — O(buckets) dials per iteration.  The pool keys
// idle keep-alive connections by peer ("host:port") and hands them out as
// exclusive RAII leases, so steady-state traffic pays O(peers) dials per
// process instead: slave bucket fetches (single and batched), Collect()'s
// master-side fetches, and the XML-RPC control channel all draw from it.
//
// Semantics:
//  - A lease owns its HttpClient exclusively; HttpClient is not
//    thread-safe, the pool is (one mutex around the idle map).
//  - Released connections go back to the idle set; per-peer and global
//    caps are enforced by evicting the least-recently-used idle entry.
//  - Idle entries older than `max_idle_seconds` are closed on acquire
//    (reconnect-on-stale): the peer has likely dropped them, and dialing
//    fresh beats inheriting a half-dead socket.
//  - A connection the server closed mid-sequence still recovers: the
//    leased HttpClient transparently reconnects once (see client.h).
//
// Metrics (mrs.http.pool.*): hits, misses, evictions, stale_closed,
// discards, plus idle / peers gauges.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "http/client.h"
#include "http/message.h"
#include "net/socket.h"

namespace mrs {

class ConnectionPool {
 public:
  struct Config {
    /// Max idle connections kept per peer.
    size_t max_idle_per_peer = 4;
    /// Max idle connections kept across all peers (LRU-evicted).
    size_t max_idle_total = 64;
    /// Idle connections older than this are closed instead of reused.
    double max_idle_seconds = 30.0;
  };

  ConnectionPool() : ConnectionPool(Config{}) {}
  explicit ConnectionPool(Config config) : config_(config) {}

  ConnectionPool(const ConnectionPool&) = delete;
  ConnectionPool& operator=(const ConnectionPool&) = delete;

  /// The process-wide pool used by HttpFetch, the batched bucket fetcher,
  /// and XmlRpcClient.
  static ConnectionPool& Instance();

  /// Exclusive handle on one pooled HttpClient.  Returns the connection to
  /// the pool on destruction unless Discard()ed or no longer connected.
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), key_(std::move(other.key_)),
          client_(std::move(other.client_)), discard_(other.discard_) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    HttpClient& client() { return *client_; }
    HttpClient* operator->() { return client_.get(); }

    /// Drop the connection instead of returning it (error paths).
    void Discard() { discard_ = true; }

   private:
    friend class ConnectionPool;
    Lease(ConnectionPool* pool, std::string key,
          std::unique_ptr<HttpClient> client)
        : pool_(pool), key_(std::move(key)), client_(std::move(client)) {}

    ConnectionPool* pool_;
    std::string key_;
    std::unique_ptr<HttpClient> client_;
    bool discard_ = false;
  };

  /// Get a connection to `addr`: a pooled idle one if fresh enough, else a
  /// new lazily-connecting client.
  Lease Acquire(const SocketAddr& addr);

  /// One request on a pooled connection; a failed request's connection is
  /// discarded rather than returned.
  Result<HttpResponse> Do(const SocketAddr& addr, HttpRequest req);
  Result<HttpResponse> Get(const SocketAddr& addr, std::string_view target);

  /// Total idle connections currently pooled (tests).
  size_t IdleCount() const;
  /// Idle connections pooled for one peer (tests).
  size_t IdleCount(const SocketAddr& addr) const;
  /// Drop every idle connection.
  void Clear();

 private:
  struct IdleEntry {
    std::unique_ptr<HttpClient> client;
    double released_at = 0;
    uint64_t lru_seq = 0;
  };

  void Release(const std::string& key, std::unique_ptr<HttpClient> client);
  /// Evict the least-recently-used idle entry (optionally restricted to
  /// `key`); false if nothing evictable.
  bool EvictLruLocked(const std::string* key_only) MRS_REQUIRES(mutex_);
  void UpdateGaugesLocked() MRS_REQUIRES(mutex_);

  const Config config_;
  mutable Mutex mutex_;
  std::map<std::string, std::deque<IdleEntry>> idle_ MRS_GUARDED_BY(mutex_);
  size_t idle_total_ MRS_GUARDED_BY(mutex_) = 0;
  uint64_t next_seq_ MRS_GUARDED_BY(mutex_) = 0;
};

}  // namespace mrs
