#include "http/client.h"

#include "common/strings.h"
#include "http/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mrs {

Result<HttpUrl> HttpUrl::Parse(std::string_view url) {
  constexpr std::string_view kScheme = "http://";
  if (!StartsWith(url, kScheme)) {
    return InvalidArgumentError("only http:// URLs supported: " +
                                std::string(url));
  }
  std::string_view rest = url.substr(kScheme.size());
  size_t slash = rest.find('/');
  std::string_view authority =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  HttpUrl out;
  out.target = slash == std::string_view::npos ? "/" : std::string(rest.substr(slash));
  std::string_view host_part = authority;
  std::string_view port_part;
  if (StartsWith(authority, "[")) {
    // Bracketed IPv6-style authority: "[::1]" or "[::1]:8080".
    size_t close = authority.find(']');
    if (close == std::string_view::npos) {
      return InvalidArgumentError("unterminated '[' in URL authority: " +
                                  std::string(url));
    }
    host_part = authority.substr(1, close - 1);
    std::string_view after = authority.substr(close + 1);
    if (!after.empty()) {
      if (after[0] != ':') {
        return InvalidArgumentError("junk after ']' in URL authority: " +
                                    std::string(url));
      }
      port_part = after.substr(1);
      if (port_part.empty()) {
        return InvalidArgumentError("empty port in URL: " + std::string(url));
      }
    }
    out.host = std::string(host_part);
  } else {
    size_t colon = authority.find(':');
    if (colon == std::string_view::npos) {
      out.host = std::string(authority);
    } else {
      host_part = authority.substr(0, colon);
      port_part = authority.substr(colon + 1);
      // An unbracketed host must not contain ':' itself ("a:b:c" is
      // ambiguous, and "::1:8080" would silently mis-split).
      if (port_part.find(':') != std::string_view::npos) {
        return InvalidArgumentError(
            "ambiguous ':' in URL authority (bracket IPv6 hosts): " +
            std::string(url));
      }
      out.host = std::string(host_part);
    }
  }
  if (port_part.empty() && host_part.size() != authority.size() &&
      !StartsWith(authority, "[")) {
    // "host:" — a port separator with no digits.
    return InvalidArgumentError("empty port in URL: " + std::string(url));
  }
  if (!port_part.empty()) {
    auto port = ParseUint64(port_part);
    if (!port.has_value() || *port > 65535 || *port == 0) {
      return InvalidArgumentError("bad port in URL: " + std::string(url));
    }
    out.port = static_cast<uint16_t>(*port);
  }
  if (out.host.empty()) return InvalidArgumentError("empty host in URL");
  return out;
}

std::string HttpUrl::ToString() const {
  return "http://" + host + ":" + std::to_string(port) + target;
}

Result<HttpResponse> HttpClient::Get(std::string_view target) {
  HttpRequest req;
  req.method = "GET";
  req.target = std::string(target);
  return Do(std::move(req));
}

Result<HttpResponse> HttpClient::Post(std::string_view target,
                                      std::string body,
                                      std::string_view content_type) {
  HttpRequest req;
  req.method = "POST";
  req.target = std::string(target);
  req.headers.Set("Content-Type", std::string(content_type));
  req.body = std::move(body);
  return Do(std::move(req));
}

Status HttpClient::EnsureConnected() {
  if (conn_.valid()) return Status::Ok();
  // Every actual TCP dial is counted: the connection pool's O(buckets) ->
  // O(peers) claim is asserted against this counter in tests and benches.
  static obs::Counter* connects =
      obs::Registry::Instance().GetCounter("mrs.http.client.connects");
  MRS_ASSIGN_OR_RETURN(conn_, TcpConn::Connect(addr_));
  connects->Inc();
  (void)conn_.SetNoDelay(true);
  return Status::Ok();
}

Result<HttpResponse> HttpClient::Do(HttpRequest req) {
  static obs::Counter* requests =
      obs::Registry::Instance().GetCounter("mrs.http.client.requests");
  static obs::Counter* errors =
      obs::Registry::Instance().GetCounter("mrs.http.client.errors");
  static obs::Histogram* request_seconds =
      obs::Registry::Instance().GetHistogram("mrs.http.client.request_seconds");
  double start = obs::TraceNowSeconds();

  req.headers.Set("Host", addr_.ToString());
  std::string wire = req.Serialize();
  bool response_started = false;
  Result<HttpResponse> resp = DoOnce(wire, &response_started);
  // One transparent reconnect: the kept-alive connection may have been
  // closed by the server between requests.  Resending is only safe for
  // idempotent methods, or when no response byte ever arrived (the usual
  // keep-alive race: the server closed before reading the request).  A
  // POST whose response started may already have been applied server-side;
  // re-sending it here would double-apply the RPC, so that error surfaces
  // to the caller instead.
  bool idempotent = req.method == "GET" || req.method == "HEAD";
  if (!resp.ok() &&
      (resp.status().code() == StatusCode::kIoError ||
       resp.status().code() == StatusCode::kUnavailable ||
       resp.status().code() == StatusCode::kDataLoss) &&
      (idempotent || !response_started)) {
    conn_.Close();
    response_started = false;
    resp = DoOnce(wire, &response_started);
  }
  request_seconds->Observe(obs::TraceNowSeconds() - start);
  requests->Inc();
  if (!resp.ok()) errors->Inc();
  return resp;
}

Result<HttpResponse> HttpClient::DoOnce(const std::string& wire,
                                        bool* response_started) {
  *response_started = false;
  MRS_RETURN_IF_ERROR(EnsureConnected());
  Status w = conn_.WriteAll(wire);
  if (!w.ok()) {
    conn_.Close();
    return w;
  }
  HttpResponseParser parser;
  char buf[16384];
  while (!parser.Done()) {
    Result<size_t> n = conn_.Read(buf, sizeof(buf));
    if (!n.ok()) {
      conn_.Close();
      return n.status();
    }
    if (*n == 0) {
      conn_.Close();
      return DataLossError("connection closed mid-response");
    }
    *response_started = true;
    Result<size_t> used = parser.Feed(std::string_view(buf, *n));
    if (!used.ok()) {
      conn_.Close();
      return used.status();
    }
  }
  HttpResponse resp = parser.TakeResponse();
  if (auto c = resp.headers.Get("Connection");
      c.has_value() && EqualsIgnoreCase(*c, "close")) {
    conn_.Close();
  }
  return resp;
}

Status FetchStatusFromHttpCode(std::string_view url, int code) {
  if (code == 200) return Status::Ok();
  std::string what = "GET " + std::string(url) + " -> " + std::to_string(code);
  if (code == 404) {
    // The peer is alive but genuinely does not have the data: a lineage
    // failure the master must repair, never a retry.
    return NotFoundError(std::move(what));
  }
  if (code >= 500 && code < 600) {
    // Server up but failing (overload, shutdown, internal error): the
    // transient class, which the retry layer may absorb.  Mapping these to
    // kNotFound would misfire lineage invalidation on a hiccup.
    return UnavailableError(std::move(what));
  }
  return InternalError(std::move(what));
}

Status VerifyFetchChecksum(std::string_view url, const HttpResponse& resp) {
  // Integrity guard: mrs data servers attach a checksum so a truncated or
  // corrupted body is detected here (kDataLoss, retryable) rather than
  // failing obscurely — or succeeding silently — during record decode.
  if (auto sum = resp.headers.Get(kMrsChecksumHeader); sum.has_value()) {
    std::string actual = ContentChecksum(resp.body);
    if (*sum != actual) {
      return DataLossError("checksum mismatch fetching " + std::string(url) +
                           " (got " + actual + ", header said " +
                           std::string(*sum) + ")");
    }
  }
  return Status::Ok();
}

}  // namespace mrs
