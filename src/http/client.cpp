#include "http/client.h"

#include "common/strings.h"
#include "http/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mrs {

Result<HttpUrl> HttpUrl::Parse(std::string_view url) {
  constexpr std::string_view kScheme = "http://";
  if (!StartsWith(url, kScheme)) {
    return InvalidArgumentError("only http:// URLs supported: " +
                                std::string(url));
  }
  std::string_view rest = url.substr(kScheme.size());
  size_t slash = rest.find('/');
  std::string_view authority =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  HttpUrl out;
  out.target = slash == std::string_view::npos ? "/" : std::string(rest.substr(slash));
  size_t colon = authority.rfind(':');
  if (colon == std::string_view::npos) {
    out.host = std::string(authority);
    out.port = 80;
  } else {
    out.host = std::string(authority.substr(0, colon));
    auto port = ParseUint64(authority.substr(colon + 1));
    if (!port.has_value() || *port > 65535) {
      return InvalidArgumentError("bad port in URL: " + std::string(url));
    }
    out.port = static_cast<uint16_t>(*port);
  }
  if (out.host.empty()) return InvalidArgumentError("empty host in URL");
  return out;
}

std::string HttpUrl::ToString() const {
  return "http://" + host + ":" + std::to_string(port) + target;
}

Result<HttpResponse> HttpClient::Get(std::string_view target) {
  HttpRequest req;
  req.method = "GET";
  req.target = std::string(target);
  return Do(std::move(req));
}

Result<HttpResponse> HttpClient::Post(std::string_view target,
                                      std::string body,
                                      std::string_view content_type) {
  HttpRequest req;
  req.method = "POST";
  req.target = std::string(target);
  req.headers.Set("Content-Type", std::string(content_type));
  req.body = std::move(body);
  return Do(std::move(req));
}

Status HttpClient::EnsureConnected() {
  if (conn_.valid()) return Status::Ok();
  MRS_ASSIGN_OR_RETURN(conn_, TcpConn::Connect(addr_));
  (void)conn_.SetNoDelay(true);
  return Status::Ok();
}

Result<HttpResponse> HttpClient::Do(HttpRequest req) {
  static obs::Counter* requests =
      obs::Registry::Instance().GetCounter("mrs.http.client.requests");
  static obs::Counter* errors =
      obs::Registry::Instance().GetCounter("mrs.http.client.errors");
  static obs::Histogram* request_seconds =
      obs::Registry::Instance().GetHistogram("mrs.http.client.request_seconds");
  double start = obs::TraceNowSeconds();

  req.headers.Set("Host", addr_.ToString());
  std::string wire = req.Serialize();
  Result<HttpResponse> resp = DoOnce(wire);
  // One transparent reconnect: the kept-alive connection may have been
  // closed by the server between requests.
  if (!resp.ok() && (resp.status().code() == StatusCode::kIoError ||
                     resp.status().code() == StatusCode::kUnavailable ||
                     resp.status().code() == StatusCode::kDataLoss)) {
    conn_.Close();
    resp = DoOnce(wire);
  }
  request_seconds->Observe(obs::TraceNowSeconds() - start);
  requests->Inc();
  if (!resp.ok()) errors->Inc();
  return resp;
}

Result<HttpResponse> HttpClient::DoOnce(const std::string& wire) {
  MRS_RETURN_IF_ERROR(EnsureConnected());
  Status w = conn_.WriteAll(wire);
  if (!w.ok()) {
    conn_.Close();
    return w;
  }
  HttpResponseParser parser;
  char buf[16384];
  while (!parser.Done()) {
    Result<size_t> n = conn_.Read(buf, sizeof(buf));
    if (!n.ok()) {
      conn_.Close();
      return n.status();
    }
    if (*n == 0) {
      conn_.Close();
      return DataLossError("connection closed mid-response");
    }
    Result<size_t> used = parser.Feed(std::string_view(buf, *n));
    if (!used.ok()) {
      conn_.Close();
      return used.status();
    }
  }
  HttpResponse resp = parser.TakeResponse();
  if (auto c = resp.headers.Get("Connection");
      c.has_value() && EqualsIgnoreCase(*c, "close")) {
    conn_.Close();
  }
  return resp;
}

Result<std::string> HttpFetch(std::string_view url) {
  MRS_ASSIGN_OR_RETURN(HttpUrl parsed, HttpUrl::Parse(url));
  HttpClient client(SocketAddr{parsed.host, parsed.port});
  Result<HttpResponse> got = client.Get(parsed.target);
  if (!got.ok()) {
    // Keep the URL in the message: the slave's failure report extracts it
    // as bad_url, which is what triggers the master's lineage recovery
    // when the hosting peer is dead (connection refused has no response).
    return Status(got.status().code(),
                  "GET " + std::string(url) + ": " + got.status().message());
  }
  HttpResponse resp = std::move(*got);
  if (resp.status_code == 503) {
    // Server up but temporarily unable to serve (e.g. shutting down).
    return UnavailableError("GET " + std::string(url) + " -> 503");
  }
  if (resp.status_code != 200) {
    return NotFoundError("GET " + std::string(url) + " -> " +
                         std::to_string(resp.status_code));
  }
  // Integrity guard: mrs data servers attach a checksum so a truncated or
  // corrupted body is detected here (kDataLoss, retryable) rather than
  // failing obscurely — or succeeding silently — during record decode.
  if (auto sum = resp.headers.Get(kMrsChecksumHeader); sum.has_value()) {
    std::string actual = ContentChecksum(resp.body);
    if (*sum != actual) {
      return DataLossError("checksum mismatch fetching " + std::string(url) +
                           " (got " + actual + ", header said " +
                           std::string(*sum) + ")");
    }
  }
  return std::move(resp.body);
}

}  // namespace mrs
