#include "http/pool.h"

#include <algorithm>

#include "common/clock.h"
#include "obs/metrics.h"

namespace mrs {

namespace {
struct PoolCounters {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* stale_closed;
  obs::Counter* discards;
  obs::Gauge* idle;
  obs::Gauge* peers;

  static PoolCounters& Get() {
    static PoolCounters c = [] {
      obs::Registry& reg = obs::Registry::Instance();
      return PoolCounters{reg.GetCounter("mrs.http.pool.hits"),
                          reg.GetCounter("mrs.http.pool.misses"),
                          reg.GetCounter("mrs.http.pool.evictions"),
                          reg.GetCounter("mrs.http.pool.stale_closed"),
                          reg.GetCounter("mrs.http.pool.discards"),
                          reg.GetGauge("mrs.http.pool.idle"),
                          reg.GetGauge("mrs.http.pool.peers")};
    }();
    return c;
  }
};
}  // namespace

ConnectionPool& ConnectionPool::Instance() {
  static ConnectionPool* pool = new ConnectionPool();
  return *pool;
}

ConnectionPool::Lease::~Lease() {
  if (pool_ == nullptr || client_ == nullptr) return;
  // Only live connections are worth pooling; a client whose socket went
  // away (server sent Connection: close, or an error path forgot to
  // Discard) would just be a guaranteed reconnect for the next user.
  if (discard_ || !client_->connected()) {
    PoolCounters::Get().discards->Inc();
    return;
  }
  pool_->Release(key_, std::move(client_));
}

ConnectionPool::Lease ConnectionPool::Acquire(const SocketAddr& addr) {
  std::string key = addr.ToString();
  double now = RealClock::Instance().Now();
  {
    MutexLock lock(mutex_);
    auto it = idle_.find(key);
    if (it != idle_.end()) {
      std::deque<IdleEntry>& entries = it->second;
      // Prefer the most recently released connection (warmest, least
      // likely to have been closed by the peer); close stale ones.
      while (!entries.empty()) {
        IdleEntry entry = std::move(entries.back());
        entries.pop_back();
        --idle_total_;
        if (now - entry.released_at > config_.max_idle_seconds) {
          PoolCounters::Get().stale_closed->Inc();
          continue;  // destroying the entry closes the connection
        }
        if (entries.empty()) idle_.erase(it);
        UpdateGaugesLocked();
        PoolCounters::Get().hits->Inc();
        return Lease(this, std::move(key), std::move(entry.client));
      }
      idle_.erase(it);
      UpdateGaugesLocked();
    }
  }
  PoolCounters::Get().misses->Inc();
  // HttpClient connects lazily on first request.
  return Lease(this, std::move(key), std::make_unique<HttpClient>(addr));
}

void ConnectionPool::Release(const std::string& key,
                             std::unique_ptr<HttpClient> client) {
  MutexLock lock(mutex_);
  // Evict before taking a reference into the map: EvictLruLocked erases
  // deques it empties.
  for (auto it = idle_.find(key);
       it != idle_.end() && it->second.size() >= config_.max_idle_per_peer;
       it = idle_.find(key)) {
    if (!EvictLruLocked(&key)) break;
  }
  while (idle_total_ >= config_.max_idle_total) {
    if (!EvictLruLocked(nullptr)) break;
  }
  std::deque<IdleEntry>& entries = idle_[key];
  IdleEntry entry;
  entry.client = std::move(client);
  entry.released_at = RealClock::Instance().Now();
  entry.lru_seq = next_seq_++;
  entries.push_back(std::move(entry));
  ++idle_total_;
  UpdateGaugesLocked();
}

bool ConnectionPool::EvictLruLocked(const std::string* key_only) {
  std::map<std::string, std::deque<IdleEntry>>::iterator victim = idle_.end();
  if (key_only != nullptr) {
    victim = idle_.find(*key_only);
  } else {
    uint64_t oldest = UINT64_MAX;
    for (auto it = idle_.begin(); it != idle_.end(); ++it) {
      if (it->second.empty()) continue;
      if (it->second.front().lru_seq < oldest) {
        oldest = it->second.front().lru_seq;
        victim = it;
      }
    }
  }
  if (victim == idle_.end() || victim->second.empty()) return false;
  victim->second.pop_front();  // oldest entry of that peer
  --idle_total_;
  if (victim->second.empty()) idle_.erase(victim);
  PoolCounters::Get().evictions->Inc();
  return true;
}

Result<HttpResponse> ConnectionPool::Do(const SocketAddr& addr,
                                        HttpRequest req) {
  Lease lease = Acquire(addr);
  Result<HttpResponse> resp = lease->Do(std::move(req));
  if (!resp.ok()) lease.Discard();
  return resp;
}

Result<HttpResponse> ConnectionPool::Get(const SocketAddr& addr,
                                         std::string_view target) {
  HttpRequest req;
  req.method = "GET";
  req.target = std::string(target);
  return Do(addr, std::move(req));
}

size_t ConnectionPool::IdleCount() const {
  MutexLock lock(mutex_);
  return idle_total_;
}

size_t ConnectionPool::IdleCount(const SocketAddr& addr) const {
  MutexLock lock(mutex_);
  auto it = idle_.find(addr.ToString());
  return it == idle_.end() ? 0 : it->second.size();
}

void ConnectionPool::Clear() {
  MutexLock lock(mutex_);
  idle_.clear();
  idle_total_ = 0;
  UpdateGaugesLocked();
}

void ConnectionPool::UpdateGaugesLocked() {
  PoolCounters::Get().idle->Set(static_cast<double>(idle_total_));
  PoolCounters::Get().peers->Set(static_cast<double>(idle_.size()));
}

Result<std::string> HttpFetch(std::string_view url) {
  MRS_ASSIGN_OR_RETURN(HttpUrl parsed, HttpUrl::Parse(url));
  Result<HttpResponse> got = ConnectionPool::Instance().Get(
      SocketAddr{parsed.host, parsed.port}, parsed.target);
  if (!got.ok()) {
    // Keep the URL in the message: the slave's failure report extracts it
    // as bad_url, which is what triggers the master's lineage recovery
    // when the hosting peer is dead (connection refused has no response).
    return Status(got.status().code(),
                  "GET " + std::string(url) + ": " + got.status().message());
  }
  HttpResponse resp = std::move(*got);
  MRS_RETURN_IF_ERROR(FetchStatusFromHttpCode(url, resp.status_code));
  MRS_RETURN_IF_ERROR(VerifyFetchChecksum(url, resp));
  return std::move(resp.body);
}

}  // namespace mrs
