// HTTP/1.1 message model.
//
// Mrs uses HTTP twice: as the transport for XML-RPC between master and
// slaves, and as the direct-communication path for intermediate map output
// (each slave runs "a built-in HTTP server" that peers fetch bucket files
// from).  Only the small subset needed for those two uses is implemented:
// GET/POST, Content-Length bodies, and case-insensitive headers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace mrs {

/// Ordered header list with case-insensitive lookup (headers may repeat).
class HttpHeaders {
 public:
  void Add(std::string name, std::string value);
  /// Replace all values of `name` with one value.
  void Set(std::string name, std::string value);
  std::optional<std::string_view> Get(std::string_view name) const;
  bool Has(std::string_view name) const { return Get(name).has_value(); }

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

struct HttpRequest {
  std::string method = "GET";   // GET or POST
  std::string target = "/";     // request-target (origin form)
  HttpHeaders headers;
  std::string body;

  /// Serialize to wire format with Content-Length set from body.
  std::string Serialize() const;
};

struct HttpResponse {
  int status_code = 200;
  std::string reason = "OK";
  HttpHeaders headers;
  std::string body;

  std::string Serialize() const;

  static HttpResponse Make(int code, std::string_view reason,
                           std::string body,
                           std::string_view content_type = "text/plain");
  static HttpResponse Ok(std::string body,
                         std::string_view content_type = "text/plain") {
    return Make(200, "OK", std::move(body), content_type);
  }
  static HttpResponse NotFound(std::string body = "not found") {
    return Make(404, "Not Found", std::move(body));
  }
  static HttpResponse BadRequest(std::string body = "bad request") {
    return Make(400, "Bad Request", std::move(body));
  }
  static HttpResponse InternalError(std::string body = "internal error") {
    return Make(500, "Internal Server Error", std::move(body));
  }
};

/// Split a request target into path and raw query string ("/a/b?x=1").
std::pair<std::string_view, std::string_view> SplitTarget(
    std::string_view target);

/// End-to-end integrity header for bucket transfers.  Servers that set it
/// (the slave data servers do) promise the value equals
/// ContentChecksum(body); HttpFetch verifies and reports kDataLoss on
/// mismatch so the retry layer re-fetches instead of parsing a truncated
/// or corrupted payload.
inline constexpr std::string_view kMrsChecksumHeader = "X-Mrs-Checksum";

/// Hex FNV-1a of the payload (cheap, deterministic; not cryptographic).
std::string ContentChecksum(std::string_view body);

/// Content negotiation for mrs's binary wire formats.  A request lists the
/// formats it accepts as a comma-separated X-Mrs-Format header
/// ("mrsk1, mrsx1"); the response names the one actually used in the same
/// header, or omits it for the plain (XML / raw-body) encoding.  Peers
/// that predate a format simply never emit the token — old servers ignore
/// the request header, old clients never send it — so mixed clusters
/// degrade to the plain encoding instead of failing.
inline constexpr std::string_view kMrsFormatHeader = "X-Mrs-Format";

/// True if `headers` carries an X-Mrs-Format token equal to `format`.
bool FormatAccepted(const HttpHeaders& headers, std::string_view format);

}  // namespace mrs
