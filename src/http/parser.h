// Incremental HTTP/1.1 parser for requests and responses.
//
// Feed() accepts arbitrary byte chunks; Done() flips once a complete
// message (head + Content-Length body) has been consumed.  Chunked
// transfer encoding is not needed by Mrs traffic and is rejected
// explicitly rather than mis-parsed.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"
#include "http/message.h"

namespace mrs {

namespace internal {

/// Shared head+body state machine; Kind selects request/response line
/// handling.
class HttpParserBase {
 public:
  bool Done() const { return state_ == State::kDone; }

  /// Consume up to `data.size()` bytes; returns the number consumed (bytes
  /// past the end of a complete message are left for the caller, enabling
  /// keep-alive pipelining).
  Result<size_t> Feed(std::string_view data);

 protected:
  virtual ~HttpParserBase() = default;
  virtual Status OnStartLine(std::string_view line) = 0;
  virtual void OnHeader(std::string name, std::string value) = 0;
  virtual void OnBody(std::string body) = 0;
  /// Content-Length discovered so far (-1 until seen).
  long long content_length_ = -1;

 private:
  enum class State { kStartLine, kHeaders, kBody, kDone };
  Status HandleHeaderLine(std::string_view line);

  State state_ = State::kStartLine;
  std::string buffer_;   // accumulated head lines / body bytes
};

}  // namespace internal

class HttpRequestParser final : public internal::HttpParserBase {
 public:
  const HttpRequest& request() const { return request_; }
  HttpRequest&& TakeRequest() { return std::move(request_); }

 private:
  Status OnStartLine(std::string_view line) override;
  void OnHeader(std::string name, std::string value) override;
  void OnBody(std::string body) override { request_.body = std::move(body); }

  HttpRequest request_;
};

class HttpResponseParser final : public internal::HttpParserBase {
 public:
  const HttpResponse& response() const { return response_; }
  HttpResponse&& TakeResponse() { return std::move(response_); }

 private:
  Status OnStartLine(std::string_view line) override;
  void OnHeader(std::string name, std::string value) override;
  void OnBody(std::string body) override { response_.body = std::move(body); }

  HttpResponse response_;
};

}  // namespace mrs
