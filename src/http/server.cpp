#include "http/server.h"

#include <poll.h>

#include "common/log.h"
#include "common/strings.h"
#include "http/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mrs {

Result<std::unique_ptr<HttpServer>> HttpServer::Start(const std::string& host,
                                                      uint16_t port,
                                                      Handler handler,
                                                      size_t num_workers) {
  MRS_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Listen(host, port));
  MRS_RETURN_IF_ERROR(listener.SetNonBlocking(true));
  return std::unique_ptr<HttpServer>(
      new HttpServer(std::move(listener), std::move(handler), num_workers));
}

HttpServer::HttpServer(TcpListener listener, Handler handler,
                       size_t num_workers)
    : listener_(std::move(listener)),
      handler_(std::move(handler)),
      workers_(num_workers) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

HttpServer::~HttpServer() { Shutdown(); }

void HttpServer::Shutdown() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  // Close the listener so late peers get connection-refused (retryable)
  // instead of sitting in the accept backlog waiting on a dead server.
  listener_.Close();
  workers_.Shutdown();
}

void HttpServer::AcceptLoop() {
  while (!stop_.load()) {
    pollfd pfd{listener_.fd(), POLLIN, 0};
    int n = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (n <= 0) continue;
    Result<TcpConn> conn = listener_.Accept();
    if (!conn.ok()) {
      if (conn.status().code() != StatusCode::kUnavailable) {
        MRS_LOG(kWarning, "http") << "accept: " << conn.status().ToString();
      }
      continue;
    }
    // shared_ptr because std::function requires copyable closures.
    auto shared = std::make_shared<TcpConn>(std::move(conn).value());
    workers_.Submit([this, shared] { HandleConnection(std::move(*shared)); });
  }
}

void HttpServer::HandleConnection(TcpConn conn) {
  (void)conn.SetNoDelay(true);
  std::string pending;  // bytes past the current message (keep-alive)
  char buf[16384];
  // Serve up to 1024 keep-alive requests per connection.
  for (int served = 0; served < 1024 && !stop_.load(); ++served) {
    HttpRequestParser parser;
    // Feed leftover bytes first.
    if (!pending.empty()) {
      Result<size_t> used = parser.Feed(pending);
      if (!used.ok()) return;
      pending.erase(0, *used);
    }
    while (!parser.Done()) {
      // Wait for readability in short slices so Shutdown() can reclaim this
      // worker even while a keep-alive peer stays idle.
      pollfd pfd{conn.fd(), POLLIN, 0};
      int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (ready == 0) {
        if (stop_.load()) return;
        continue;
      }
      if (ready < 0) return;
      Result<size_t> n = conn.Read(buf, sizeof(buf));
      if (!n.ok() || *n == 0) return;  // peer closed or error
      std::string_view chunk(buf, *n);
      Result<size_t> used = parser.Feed(chunk);
      if (!used.ok()) {
        HttpResponse resp = HttpResponse::BadRequest(used.status().ToString());
        resp.headers.Set("Connection", "close");
        (void)conn.WriteAll(resp.Serialize());
        return;
      }
      if (*used < chunk.size()) pending.append(chunk.substr(*used));
    }

    HttpRequest req = parser.TakeRequest();
    bool close = false;
    if (auto c = req.headers.Get("Connection");
        c.has_value() && EqualsIgnoreCase(*c, "close")) {
      close = true;
    }
    static obs::Counter* requests =
        obs::Registry::Instance().GetCounter("mrs.http.server.requests");
    static obs::Histogram* handle_seconds =
        obs::Registry::Instance().GetHistogram("mrs.http.server.handle_seconds");
    double handle_start = obs::TraceNowSeconds();
    HttpResponse resp = handler_(req);
    handle_seconds->Observe(obs::TraceNowSeconds() - handle_start);
    requests->Inc();
    resp.headers.Set("Connection", close ? "close" : "keep-alive");
    if (!conn.WriteAll(resp.Serialize()).ok()) return;
    if (close) return;
  }
}

}  // namespace mrs
