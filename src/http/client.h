// Blocking HTTP/1.1 client with keep-alive connection reuse.
//
// Used by slaves to fetch intermediate data by URL from peer slaves, and by
// the XML-RPC client as its transport.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "http/message.h"
#include "net/socket.h"

namespace mrs {

/// Components of an "http://host:port/path?query" URL.  Bracketed IPv6
/// authorities ("[::1]:8080") parse with the brackets stripped; a bare
/// host containing ':' (ambiguous with the port separator) is rejected.
struct HttpUrl {
  std::string host;
  uint16_t port = 80;
  std::string target = "/";  // path + query

  static Result<HttpUrl> Parse(std::string_view url);
  std::string ToString() const;
};

/// A client bound to one host:port; reuses the connection across requests
/// and transparently reconnects once when the server has closed it.
///
/// The reconnect resend is restricted to requests that are safe to repeat:
/// idempotent methods (GET/HEAD), or any request whose response never
/// started — once response bytes have arrived for a POST, the server may
/// already have applied it, so the failure surfaces instead of being
/// silently re-sent (the caller's retry layer + server-side idempotency
/// own that decision).
class HttpClient {
 public:
  explicit HttpClient(SocketAddr addr) : addr_(std::move(addr)) {}

  Result<HttpResponse> Get(std::string_view target);
  Result<HttpResponse> Post(std::string_view target, std::string body,
                            std::string_view content_type = "text/xml");

  /// Issue an arbitrary request (Host and Content-Length are filled in).
  Result<HttpResponse> Do(HttpRequest req);

  const SocketAddr& addr() const { return addr_; }

  /// True while the keep-alive connection is open (pooling predicate).
  bool connected() const { return conn_.valid(); }

 private:
  Result<HttpResponse> DoOnce(const std::string& wire,
                              bool* response_started);
  Status EnsureConnected();

  SocketAddr addr_;
  TcpConn conn_;
};

/// Map a data-plane GET's response code to a Status: 200 is OK, 404 is
/// kNotFound (authoritative miss — lineage recovery territory, never
/// retried), any 5xx is kUnavailable (server-side transient, retryable),
/// anything else is kInternal.
Status FetchStatusFromHttpCode(std::string_view url, int code);

/// Verify the X-Mrs-Checksum integrity guard when the response carries it;
/// mismatch is kDataLoss (retryable — refetch beats decoding a truncated
/// payload).
Status VerifyFetchChecksum(std::string_view url, const HttpResponse& resp);

/// GET a full URL on a pooled keep-alive connection (ConnectionPool), with
/// the status mapping and checksum guard above.  (Implemented in pool.cpp.)
Result<std::string> HttpFetch(std::string_view url);

}  // namespace mrs
