// Blocking HTTP/1.1 client with keep-alive connection reuse.
//
// Used by slaves to fetch intermediate data by URL from peer slaves, and by
// the XML-RPC client as its transport.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "http/message.h"
#include "net/socket.h"

namespace mrs {

/// Components of an "http://host:port/path?query" URL.
struct HttpUrl {
  std::string host;
  uint16_t port = 80;
  std::string target = "/";  // path + query

  static Result<HttpUrl> Parse(std::string_view url);
  std::string ToString() const;
};

/// A client bound to one host:port; reuses the connection across requests
/// and transparently reconnects once when the server has closed it.
class HttpClient {
 public:
  explicit HttpClient(SocketAddr addr) : addr_(std::move(addr)) {}

  Result<HttpResponse> Get(std::string_view target);
  Result<HttpResponse> Post(std::string_view target, std::string body,
                            std::string_view content_type = "text/xml");

  /// Issue an arbitrary request (Host and Content-Length are filled in).
  Result<HttpResponse> Do(HttpRequest req);

  const SocketAddr& addr() const { return addr_; }

 private:
  Result<HttpResponse> DoOnce(const std::string& wire);
  Status EnsureConnected();

  SocketAddr addr_;
  TcpConn conn_;
};

/// One-shot convenience: GET a full URL.
Result<std::string> HttpFetch(std::string_view url);

}  // namespace mrs
