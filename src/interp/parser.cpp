#include "interp/parser.h"

#include "interp/lexer.h"

namespace mrs {
namespace minipy {

namespace {

/// Binding powers for the Pratt parser (higher binds tighter).
int BindingPower(TokenType type) {
  switch (type) {
    case TokenType::kOr: return 10;
    case TokenType::kAnd: return 20;
    case TokenType::kLess:
    case TokenType::kLessEq:
    case TokenType::kGreater:
    case TokenType::kGreaterEq:
    case TokenType::kEqEq:
    case TokenType::kNotEq: return 30;
    case TokenType::kPlus:
    case TokenType::kMinus: return 40;
    case TokenType::kStar:
    case TokenType::kSlash:
    case TokenType::kSlashSlash:
    case TokenType::kPercent: return 50;
    case TokenType::kStarStar: return 60;
    default: return -1;
  }
}

BinOp ToBinOp(TokenType type) {
  switch (type) {
    case TokenType::kPlus: return BinOp::kAdd;
    case TokenType::kMinus: return BinOp::kSub;
    case TokenType::kStar: return BinOp::kMul;
    case TokenType::kSlash: return BinOp::kDiv;
    case TokenType::kSlashSlash: return BinOp::kFloorDiv;
    case TokenType::kPercent: return BinOp::kMod;
    case TokenType::kStarStar: return BinOp::kPow;
    case TokenType::kLess: return BinOp::kLt;
    case TokenType::kLessEq: return BinOp::kLe;
    case TokenType::kGreater: return BinOp::kGt;
    case TokenType::kGreaterEq: return BinOp::kGe;
    case TokenType::kEqEq: return BinOp::kEq;
    case TokenType::kNotEq: return BinOp::kNe;
    case TokenType::kAnd: return BinOp::kAnd;
    case TokenType::kOr: return BinOp::kOr;
    default: return BinOp::kAdd;
  }
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::shared_ptr<Module>> Run() {
    auto module = std::make_shared<Module>();
    while (!Check(TokenType::kEof)) {
      MRS_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
      module->body.push_back(std::move(stmt));
    }
    return module;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType type) const { return Peek().type == type; }
  bool Match(TokenType type) {
    if (!Check(type)) return false;
    ++pos_;
    return true;
  }

  Status Expect(TokenType type, std::string_view what) {
    if (!Check(type)) {
      return InvalidArgumentError(
          "line " + std::to_string(Peek().line) + ": expected " +
          std::string(TokenTypeName(type)) + " " + std::string(what) +
          ", got " + std::string(TokenTypeName(Peek().type)));
    }
    ++pos_;
    return Status::Ok();
  }

  Status ErrorHere(const std::string& message) {
    return InvalidArgumentError("line " + std::to_string(Peek().line) + ": " +
                                message);
  }

  Result<std::vector<StmtPtr>> ParseBlock() {
    MRS_RETURN_IF_ERROR(Expect(TokenType::kColon, "before block"));
    MRS_RETURN_IF_ERROR(Expect(TokenType::kNewline, "after ':'"));
    MRS_RETURN_IF_ERROR(Expect(TokenType::kIndent, "to open block"));
    std::vector<StmtPtr> body;
    while (!Check(TokenType::kDedent) && !Check(TokenType::kEof)) {
      MRS_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
      body.push_back(std::move(stmt));
    }
    MRS_RETURN_IF_ERROR(Expect(TokenType::kDedent, "to close block"));
    if (body.empty()) return ErrorHere("empty block");
    return body;
  }

  Result<StmtPtr> ParseStatement() {
    int line = Peek().line;
    auto stmt = std::make_unique<Stmt>();
    stmt->line = line;
    stmt->col = Peek().column;

    if (Match(TokenType::kDef)) {
      stmt->kind = Stmt::Kind::kDef;
      if (!Check(TokenType::kName)) return ErrorHere("expected function name");
      stmt->target = Advance().text;
      MRS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "after function name"));
      if (!Check(TokenType::kRParen)) {
        while (true) {
          if (!Check(TokenType::kName)) return ErrorHere("expected parameter");
          stmt->params.push_back(Advance().text);
          if (!Match(TokenType::kComma)) break;
        }
      }
      MRS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "after parameters"));
      MRS_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      return stmt;
    }

    if (Match(TokenType::kReturn)) {
      stmt->kind = Stmt::Kind::kReturn;
      if (!Check(TokenType::kNewline)) {
        MRS_ASSIGN_OR_RETURN(stmt->expr, ParseExpression(0));
      }
      MRS_RETURN_IF_ERROR(Expect(TokenType::kNewline, "after return"));
      return stmt;
    }

    if (Match(TokenType::kIf)) {
      stmt->kind = Stmt::Kind::kIf;
      MRS_ASSIGN_OR_RETURN(ExprPtr cond, ParseExpression(0));
      MRS_ASSIGN_OR_RETURN(std::vector<StmtPtr> body, ParseBlock());
      stmt->arm_conds.push_back(std::move(cond));
      stmt->arm_bodies.push_back(std::move(body));
      while (Match(TokenType::kElif)) {
        MRS_ASSIGN_OR_RETURN(ExprPtr elif_cond, ParseExpression(0));
        MRS_ASSIGN_OR_RETURN(std::vector<StmtPtr> elif_body, ParseBlock());
        stmt->arm_conds.push_back(std::move(elif_cond));
        stmt->arm_bodies.push_back(std::move(elif_body));
      }
      if (Match(TokenType::kElse)) {
        MRS_ASSIGN_OR_RETURN(stmt->else_body, ParseBlock());
      }
      return stmt;
    }

    if (Match(TokenType::kWhile)) {
      stmt->kind = Stmt::Kind::kWhile;
      MRS_ASSIGN_OR_RETURN(stmt->cond, ParseExpression(0));
      MRS_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      return stmt;
    }

    if (Match(TokenType::kFor)) {
      stmt->kind = Stmt::Kind::kFor;
      if (!Check(TokenType::kName)) return ErrorHere("expected loop variable");
      stmt->target = Advance().text;
      MRS_RETURN_IF_ERROR(Expect(TokenType::kIn, "in for statement"));
      MRS_ASSIGN_OR_RETURN(stmt->cond, ParseExpression(0));
      MRS_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      return stmt;
    }

    if (Match(TokenType::kBreak)) {
      stmt->kind = Stmt::Kind::kBreak;
      MRS_RETURN_IF_ERROR(Expect(TokenType::kNewline, "after break"));
      return stmt;
    }
    if (Match(TokenType::kContinue)) {
      stmt->kind = Stmt::Kind::kContinue;
      MRS_RETURN_IF_ERROR(Expect(TokenType::kNewline, "after continue"));
      return stmt;
    }
    if (Match(TokenType::kPass)) {
      stmt->kind = Stmt::Kind::kPass;
      MRS_RETURN_IF_ERROR(Expect(TokenType::kNewline, "after pass"));
      return stmt;
    }

    // Expression, assignment, or augmented assignment.
    MRS_ASSIGN_OR_RETURN(ExprPtr first, ParseExpression(0));
    if (Match(TokenType::kAssign)) {
      MRS_ASSIGN_OR_RETURN(ExprPtr value, ParseExpression(0));
      if (first->kind == Expr::Kind::kName) {
        stmt->kind = Stmt::Kind::kAssign;
        stmt->target = first->name;
        stmt->expr = std::move(value);
      } else if (first->kind == Expr::Kind::kIndex) {
        stmt->kind = Stmt::Kind::kAssign;
        stmt->index_base = std::move(first->lhs);
        stmt->index_expr = std::move(first->rhs);
        stmt->expr = std::move(value);
      } else {
        return ErrorHere("invalid assignment target");
      }
      MRS_RETURN_IF_ERROR(Expect(TokenType::kNewline, "after assignment"));
      return stmt;
    }
    TokenType aug = Peek().type;
    if (aug == TokenType::kPlusAssign || aug == TokenType::kMinusAssign ||
        aug == TokenType::kStarAssign || aug == TokenType::kSlashAssign) {
      Advance();
      if (first->kind != Expr::Kind::kName) {
        return ErrorHere("augmented assignment target must be a name");
      }
      stmt->kind = Stmt::Kind::kAugAssign;
      stmt->target = first->name;
      switch (aug) {
        case TokenType::kPlusAssign: stmt->aug_op = BinOp::kAdd; break;
        case TokenType::kMinusAssign: stmt->aug_op = BinOp::kSub; break;
        case TokenType::kStarAssign: stmt->aug_op = BinOp::kMul; break;
        default: stmt->aug_op = BinOp::kDiv; break;
      }
      MRS_ASSIGN_OR_RETURN(stmt->expr, ParseExpression(0));
      MRS_RETURN_IF_ERROR(Expect(TokenType::kNewline, "after assignment"));
      return stmt;
    }

    stmt->kind = Stmt::Kind::kExpr;
    stmt->expr = std::move(first);
    MRS_RETURN_IF_ERROR(Expect(TokenType::kNewline, "after expression"));
    return stmt;
  }

  Result<ExprPtr> ParseExpression(int min_bp) {
    MRS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      TokenType op = Peek().type;
      int bp = BindingPower(op);
      if (bp < 0 || bp < min_bp) break;
      Advance();
      // Right associativity for **; left for everything else.
      int next_bp = (op == TokenType::kStarStar) ? bp : bp + 1;
      MRS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseExpression(next_bp));
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->line = lhs->line;
      node->col = lhs->col;
      node->bin_op = ToBinOp(op);
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    int line = Peek().line;
    int col = Peek().column;
    if (Match(TokenType::kMinus)) {
      MRS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kUnary;
      node->line = line;
      node->col = col;
      node->un_op = UnOp::kNeg;
      node->lhs = std::move(operand);
      return node;
    }
    if (Match(TokenType::kNot)) {
      MRS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kUnary;
      node->line = line;
      node->col = col;
      node->un_op = UnOp::kNot;
      node->lhs = std::move(operand);
      return node;
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    MRS_ASSIGN_OR_RETURN(ExprPtr expr, ParseAtom());
    while (true) {
      if (Match(TokenType::kLParen)) {
        auto call = std::make_unique<Expr>();
        call->kind = Expr::Kind::kCall;
        call->line = expr->line;
        call->col = expr->col;
        if (expr->kind != Expr::Kind::kName) {
          return ErrorHere("only named functions can be called");
        }
        call->name = expr->name;
        if (!Check(TokenType::kRParen)) {
          while (true) {
            MRS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpression(0));
            call->args.push_back(std::move(arg));
            if (!Match(TokenType::kComma)) break;
          }
        }
        MRS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "after call arguments"));
        expr = std::move(call);
        continue;
      }
      if (Match(TokenType::kLBracket)) {
        auto index = std::make_unique<Expr>();
        index->kind = Expr::Kind::kIndex;
        index->line = expr->line;
        index->col = expr->col;
        index->lhs = std::move(expr);
        MRS_ASSIGN_OR_RETURN(index->rhs, ParseExpression(0));
        MRS_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "after index"));
        expr = std::move(index);
        continue;
      }
      break;
    }
    return expr;
  }

  Result<ExprPtr> ParseAtom() {
    auto node = std::make_unique<Expr>();
    node->line = Peek().line;
    node->col = Peek().column;
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInt:
        node->kind = Expr::Kind::kIntLit;
        node->int_value = t.int_value;
        Advance();
        return node;
      case TokenType::kFloat:
        node->kind = Expr::Kind::kFloatLit;
        node->float_value = t.float_value;
        Advance();
        return node;
      case TokenType::kString:
        node->kind = Expr::Kind::kStringLit;
        node->name = t.text;
        Advance();
        return node;
      case TokenType::kTrue:
      case TokenType::kFalse:
        node->kind = Expr::Kind::kBoolLit;
        node->bool_value = (t.type == TokenType::kTrue);
        Advance();
        return node;
      case TokenType::kNone:
        node->kind = Expr::Kind::kNoneLit;
        Advance();
        return node;
      case TokenType::kName:
        node->kind = Expr::Kind::kName;
        node->name = t.text;
        Advance();
        return node;
      case TokenType::kLParen: {
        Advance();
        MRS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpression(0));
        MRS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "to close '('"));
        return inner;
      }
      case TokenType::kLBracket: {
        Advance();
        node->kind = Expr::Kind::kListLit;
        if (!Check(TokenType::kRBracket)) {
          while (true) {
            MRS_ASSIGN_OR_RETURN(ExprPtr elem, ParseExpression(0));
            node->args.push_back(std::move(elem));
            if (!Match(TokenType::kComma)) break;
          }
        }
        MRS_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "to close '['"));
        return node;
      }
      default:
        return ErrorHere("unexpected token " +
                         std::string(TokenTypeName(t.type)));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::shared_ptr<Module>> Parse(std::string_view source) {
  MRS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).Run();
}

}  // namespace minipy
}  // namespace mrs
