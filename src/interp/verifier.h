// MiniPy bytecode verifier.
//
// The VM's dispatch loop (vm.cpp) indexes constants, locals, globals and
// the operand stack without bounds checks — that is what keeps the unboxed
// numeric fast path fast.  The verifier makes that safe: an abstract
// interpretation over each function proves, before any instruction runs,
// that every operand index is in bounds, every jump lands inside the
// function, the operand stack never underflows, and every control-flow
// merge point sees one consistent stack depth.  Modules that pass are
// stamped `verified` (with per-function max_stack); Vm::LoadModule refuses
// everything else, so a malformed or corrupted frame is rejected with a
// diagnostic instead of crashing the process.
//
// Issue codes are stable (MBC5xx) and surface through mrs::analysis
// diagnostics and the mrs_lint CLI:
//   MBC501  unknown opcode
//   MBC502  operand out of bounds (constant/local/global/function index)
//   MBC503  jump target out of bounds
//   MBC504  operand stack underflow
//   MBC505  inconsistent stack depth at a merge point
//   MBC506  malformed call (bad argc, unknown builtin, non-string callee)
//   MBC507  invalid function metadata (params/locals counts)
#pragma once

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "interp/bytecode.h"

namespace mrs {
namespace minipy {

struct VerifyIssue {
  std::string code;      // "MBC5xx"
  std::string function;  // function name ("__main__" for top-level code)
  int pc = -1;           // instruction index within the function, -1 = n/a
  std::string message;

  std::string ToString() const;
};

/// Verify every function of `module` (including top-level code).
/// `host_functions` extends the builtin namespace with VM host functions
/// (e.g. "emit") that kCallBuiltin may legally name.  Returns all issues
/// found; empty means the module is well-formed.
std::vector<VerifyIssue> VerifyCompiledModule(
    const CompiledModule& module,
    const std::set<std::string>& host_functions = {});

/// Verify and, on success, fill in each function's max_stack and set
/// module.verified.  On failure returns InvalidArgument carrying the
/// first few issues.
Status VerifyAndMark(CompiledModule& module,
                     const std::set<std::string>& host_functions = {});

}  // namespace minipy
}  // namespace mrs
