#include "interp/typefacts.h"

#include <algorithm>
#include <array>
#include <sstream>

#include "common/strings.h"

namespace mrs {
namespace minipy {

namespace {

constexpr std::array<ValueType, 6> kConcreteTypes = {
    ValueType::kNone, ValueType::kBool, ValueType::kInt,
    ValueType::kFloat, ValueType::kStr, ValueType::kList};

/// Concrete types admitted by an abstract operand.
std::vector<ValueType> Concretize(ValueType t) {
  if (t == ValueType::kBottom) return {};
  if (t == ValueType::kTop) {
    return {kConcreteTypes.begin(), kConcreteTypes.end()};
  }
  return {t};
}

/// int op int stays int, any float makes float; operands known numeric.
ValueType NumericResult(ValueType a, ValueType b) {
  if (a == ValueType::kFloat || b == ValueType::kFloat) {
    return ValueType::kFloat;
  }
  return ValueType::kInt;  // bool arithmetic yields int (0/1)
}

/// Result of `op` on two *concrete* operand types; kBottom + error=true
/// when that pairing always raises.  Mirrors ApplyBinary exactly.
ValueType ConcreteBinaryResult(BinOp op, ValueType a, ValueType b,
                               bool* error) {
  *error = false;
  const bool num = IsNumericType(a) && IsNumericType(b);
  switch (op) {
    case BinOp::kAdd:
      if (num) return NumericResult(a, b);
      if (a == ValueType::kStr && b == ValueType::kStr) return ValueType::kStr;
      if (a == ValueType::kList && b == ValueType::kList) {
        return ValueType::kList;
      }
      break;
    case BinOp::kSub:
    case BinOp::kMul:
      if (num) return NumericResult(a, b);
      break;
    case BinOp::kDiv:
      if (num) return ValueType::kFloat;  // true division
      break;
    case BinOp::kFloorDiv:
    case BinOp::kMod:
      if (num) return NumericResult(a, b);
      break;
    case BinOp::kPow:
      if (num) {
        // int ** int is int for exponent >= 0 but float below — the sign
        // is dynamic, so the static result is the join.
        if (a == ValueType::kInt && b == ValueType::kInt) {
          return ValueType::kTop;
        }
        return ValueType::kFloat;
      }
      break;
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      if (num || (a == ValueType::kStr && b == ValueType::kStr)) {
        return ValueType::kBool;
      }
      break;
    case BinOp::kEq:
    case BinOp::kNe:
      return ValueType::kBool;  // equality never raises
    case BinOp::kAnd:
    case BinOp::kOr:
      break;  // must short-circuit in the engine; reaching here raises
  }
  *error = true;
  return ValueType::kBottom;
}

ValueType ConcreteUnaryResult(UnOp op, ValueType v, bool* error) {
  *error = false;
  if (op == UnOp::kNot) return ValueType::kBool;  // truthiness never raises
  if (v == ValueType::kInt || v == ValueType::kBool) return ValueType::kInt;
  if (v == ValueType::kFloat) return ValueType::kFloat;
  *error = true;
  return ValueType::kBottom;
}

ValueType ConcreteIndexResult(ValueType base, ValueType index, bool* error) {
  *error = false;
  if (!IsNumericType(index)) {
    *error = true;
    return ValueType::kBottom;
  }
  if (base == ValueType::kList) return ValueType::kTop;  // element type lost
  if (base == ValueType::kStr) return ValueType::kStr;
  *error = true;
  return ValueType::kBottom;
}

ValueType ConcreteLenResult(ValueType v, bool* error) {
  *error = false;
  if (v == ValueType::kList || v == ValueType::kStr) return ValueType::kInt;
  *error = true;
  return ValueType::kBottom;
}

/// Join `concrete_fn` over every concrete pairing admitted by (a, b).
/// guaranteed_error = every pairing raises (and at least one exists).
template <typename Fn>
ValueType JoinOverPairs(ValueType a, ValueType b, bool* guaranteed_error,
                        Fn&& concrete_fn) {
  ValueType result = ValueType::kBottom;
  bool any = false;
  bool all_error = true;
  for (ValueType ca : Concretize(a)) {
    for (ValueType cb : Concretize(b)) {
      any = true;
      bool err = false;
      ValueType r = concrete_fn(ca, cb, &err);
      if (err) continue;
      all_error = false;
      result = JoinType(result, r);
    }
  }
  if (guaranteed_error != nullptr) *guaranteed_error = any && all_error;
  return result;
}

template <typename Fn>
ValueType JoinOverSingles(ValueType v, bool* guaranteed_error,
                          Fn&& concrete_fn) {
  ValueType result = ValueType::kBottom;
  bool any = false;
  bool all_error = true;
  for (ValueType cv : Concretize(v)) {
    any = true;
    bool err = false;
    ValueType r = concrete_fn(cv, &err);
    if (err) continue;
    all_error = false;
    result = JoinType(result, r);
  }
  if (guaranteed_error != nullptr) *guaranteed_error = any && all_error;
  return result;
}

}  // namespace

ValueType TypeOf(const PyValue& v) {
  switch (v.type()) {
    case PyValue::Type::kNone: return ValueType::kNone;
    case PyValue::Type::kBool: return ValueType::kBool;
    case PyValue::Type::kInt: return ValueType::kInt;
    case PyValue::Type::kFloat: return ValueType::kFloat;
    case PyValue::Type::kString: return ValueType::kStr;
    case PyValue::Type::kList: return ValueType::kList;
  }
  return ValueType::kTop;
}

char TypeChar(ValueType t) {
  switch (t) {
    case ValueType::kBottom: return 'B';
    case ValueType::kNone: return 'N';
    case ValueType::kBool: return 'b';
    case ValueType::kInt: return 'i';
    case ValueType::kFloat: return 'f';
    case ValueType::kStr: return 's';
    case ValueType::kList: return 'l';
    case ValueType::kTop: return 'T';
  }
  return '?';
}

bool TypeFromChar(char c, ValueType* out) {
  switch (c) {
    case 'B': *out = ValueType::kBottom; return true;
    case 'N': *out = ValueType::kNone; return true;
    case 'b': *out = ValueType::kBool; return true;
    case 'i': *out = ValueType::kInt; return true;
    case 'f': *out = ValueType::kFloat; return true;
    case 's': *out = ValueType::kStr; return true;
    case 'l': *out = ValueType::kList; return true;
    case 'T': *out = ValueType::kTop; return true;
    default: return false;
  }
}

std::string_view TypeDisplayName(ValueType t) {
  switch (t) {
    case ValueType::kBottom: return "<unreachable>";
    case ValueType::kNone: return "NoneType";
    case ValueType::kBool: return "bool";
    case ValueType::kInt: return "int";
    case ValueType::kFloat: return "float";
    case ValueType::kStr: return "str";
    case ValueType::kList: return "list";
    case ValueType::kTop: return "any";
  }
  return "?";
}

ValueType BinaryResultType(BinOp op, ValueType a, ValueType b,
                           bool* guaranteed_error) {
  return JoinOverPairs(a, b, guaranteed_error,
                       [op](ValueType ca, ValueType cb, bool* err) {
                         return ConcreteBinaryResult(op, ca, cb, err);
                       });
}

ValueType UnaryResultType(UnOp op, ValueType v, bool* guaranteed_error) {
  return JoinOverSingles(v, guaranteed_error,
                         [op](ValueType cv, bool* err) {
                           return ConcreteUnaryResult(op, cv, err);
                         });
}

ValueType IndexResultType(ValueType base, ValueType index,
                          bool* guaranteed_error) {
  return JoinOverPairs(base, index, guaranteed_error,
                       ConcreteIndexResult);
}

ValueType LenResultType(ValueType v, bool* guaranteed_error) {
  return JoinOverSingles(v, guaranteed_error, ConcreteLenResult);
}

void StoreIndexCheck(ValueType base, ValueType index, bool* guaranteed_error) {
  JoinOverPairs(base, index, guaranteed_error,
                [](ValueType cb, ValueType ci, bool* err) {
                  *err = !(cb == ValueType::kList && IsNumericType(ci));
                  return ValueType::kNone;
                });
}

ValueType BuiltinResultType(const std::string& name,
                            const std::vector<ValueType>& args,
                            bool* guaranteed_error) {
  if (guaranteed_error != nullptr) *guaranteed_error = false;
  auto arity_is = [&](size_t n) { return args.size() == n; };
  if (name == "len") {
    if (!arity_is(1)) goto arity_error;
    return LenResultType(args[0], guaranteed_error);
  }
  if (name == "abs") {
    if (!arity_is(1)) goto arity_error;
    return JoinOverSingles(args[0], guaranteed_error,
                           [](ValueType cv, bool* err) {
                             *err = false;
                             if (cv == ValueType::kInt ||
                                 cv == ValueType::kBool) {
                               return ValueType::kInt;
                             }
                             if (cv == ValueType::kFloat) {
                               return ValueType::kFloat;
                             }
                             *err = true;
                             return ValueType::kBottom;
                           });
  }
  if (name == "int" || name == "float") {
    const ValueType out =
        name == "int" ? ValueType::kInt : ValueType::kFloat;
    if (!arity_is(1)) goto arity_error;
    return JoinOverSingles(args[0], guaranteed_error,
                           [out](ValueType cv, bool* err) {
                             // Numeric converts; str may parse (dynamic);
                             // everything else raises.
                             *err = !(IsNumericType(cv) ||
                                      cv == ValueType::kStr);
                             return out;
                           });
  }
  if (name == "str") {
    if (!arity_is(1)) goto arity_error;
    if (args[0] == ValueType::kBottom) return ValueType::kBottom;
    return ValueType::kStr;
  }
  if (name == "bool") {
    if (!arity_is(1)) goto arity_error;
    if (args[0] == ValueType::kBottom) return ValueType::kBottom;
    return ValueType::kBool;
  }
  if (name == "min" || name == "max") {
    if (args.empty()) goto arity_error;
    // min/max return one of their arguments (or a list element).  A
    // single-list form or any non-numeric/unknown argument degrades to
    // kTop; otherwise the result is the join of the argument types.
    ValueType join = ValueType::kBottom;
    for (ValueType t : args) {
      if (!IsNumericType(t)) return ValueType::kTop;
      join = JoinType(join, t);
    }
    if (args.size() == 1) return args[0];  // min(x) == x for numeric x
    return join;
  }
  if (name == "range") {
    if (args.empty() || args.size() > 3) goto arity_error;
    return ValueType::kList;
  }
  if (name == "append") {
    if (!arity_is(2)) goto arity_error;
    if (guaranteed_error != nullptr) {
      // append() demands a list first argument.
      *guaranteed_error = IsConcreteType(args[0]) &&
                          args[0] != ValueType::kList;
    }
    return ValueType::kNone;
  }
  if (name == "print") {
    return ValueType::kNone;  // any arity
  }
  return ValueType::kTop;  // unknown (host) function
arity_error:
  if (guaranteed_error != nullptr) *guaranteed_error = true;
  return ValueType::kBottom;
}

bool GlobalGuardCovered(const FunctionFacts& caller,
                        const FunctionFacts& callee) {
  for (const auto& [slot, need] : callee.global_reads) {
    if (!TypeLe(caller.GlobalType(slot), need)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Transfer.

namespace {

Status Underflow(const CompiledFunction& fn, int pc) {
  return InvalidArgumentError("type facts: " + fn.name + " pc " +
                              std::to_string(pc) +
                              ": claimed stack underflows instruction");
}

}  // namespace

std::vector<bool> LocalsReadBeforeAssign(const CompiledFunction& fn) {
  const int n = static_cast<int>(fn.code.size());
  const size_t nlocals = static_cast<size_t>(fn.num_locals);
  std::vector<bool> observed(nlocals, false);
  if (n == 0 || nlocals == 0) return observed;

  // Forward may-analysis: per pc, which locals might still be unassigned
  // on some path reaching it.  Merge is OR; parameters start assigned.
  std::vector<std::vector<bool>> maybe(static_cast<size_t>(n));
  std::vector<bool> entry(nlocals, true);
  for (int i = 0; i < fn.num_params && i < fn.num_locals; ++i) {
    entry[static_cast<size_t>(i)] = false;
  }
  std::vector<int> worklist;
  auto join_into = [&](int pc, const std::vector<bool>& st) -> bool {
    std::vector<bool>& row = maybe[static_cast<size_t>(pc)];
    if (row.empty()) {
      row = st;
      return true;
    }
    bool changed = false;
    for (size_t i = 0; i < nlocals; ++i) {
      if (st[i] && !row[i]) {
        row[i] = true;
        changed = true;
      }
    }
    return changed;
  };
  join_into(0, entry);
  worklist.push_back(0);
  while (!worklist.empty()) {
    int pc = worklist.back();
    worklist.pop_back();
    std::vector<bool> st = maybe[static_cast<size_t>(pc)];
    const Instruction& ins = fn.code[static_cast<size_t>(pc)];
    std::vector<int> succs;
    switch (ins.op) {
      case Op::kLoadLocal:
        if (st[static_cast<size_t>(ins.a)]) {
          observed[static_cast<size_t>(ins.a)] = true;
        }
        succs.push_back(pc + 1);
        break;
      case Op::kStoreLocal:
        st[static_cast<size_t>(ins.a)] = false;
        succs.push_back(pc + 1);
        break;
      case Op::kJump:
        succs.push_back(ins.a);
        break;
      case Op::kJumpIfFalse:
      case Op::kJumpIfFalsePeek:
      case Op::kJumpIfTruePeek:
        succs.push_back(ins.a);
        succs.push_back(pc + 1);
        break;
      case Op::kReturn:
      case Op::kReturnNone:
        break;
      default:
        succs.push_back(pc + 1);
        break;
    }
    for (int succ : succs) {
      if (succ < 0 || succ >= n) continue;  // fall-off-end reads nothing
      if (join_into(succ, st)) worklist.push_back(succ);
    }
  }
  return observed;
}

AbstractState EntryState(const CompiledFunction& fn,
                         const std::vector<ValueType>& params) {
  AbstractState entry;
  entry.locals.assign(static_cast<size_t>(fn.num_locals), ValueType::kNone);
  std::vector<bool> observed = LocalsReadBeforeAssign(fn);
  for (int i = 0; i < fn.num_locals; ++i) {
    if (!observed[static_cast<size_t>(i)]) {
      entry.locals[static_cast<size_t>(i)] = ValueType::kBottom;
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    entry.locals[i] = params[i];
  }
  return entry;
}

Result<TransferStep> TransferInstruction(const CompiledModule& module,
                                         const CompiledFunction& fn, int pc,
                                         const AbstractState& in,
                                         const TransferHooks& hooks) {
  const Instruction& ins = fn.code[static_cast<size_t>(pc)];
  TransferStep step;
  AbstractState st = in;
  const int next = pc + 1;

  auto pop = [&](ValueType* out) -> bool {
    if (st.stack.empty()) return false;
    *out = st.stack.back();
    st.stack.pop_back();
    return true;
  };
  auto push = [&](ValueType t) { st.stack.push_back(t); };
  auto flow_to = [&](int target) {
    step.successors.emplace_back(target, st);
  };
  auto abort_frame = [&] {
    step.guaranteed_error = true;
    step.successors.clear();
  };

  switch (ins.op) {
    case Op::kLoadConst:
      push(TypeOf(fn.constants[static_cast<size_t>(ins.a)]));
      flow_to(next);
      break;
    case Op::kLoadLocal:
      push(st.locals[static_cast<size_t>(ins.a)]);
      flow_to(next);
      break;
    case Op::kStoreLocal: {
      ValueType v;
      if (!pop(&v)) return Underflow(fn, pc);
      st.locals[static_cast<size_t>(ins.a)] = v;
      flow_to(next);
      break;
    }
    case Op::kLoadGlobal:
      push(hooks.global_type ? hooks.global_type(ins.a) : ValueType::kTop);
      flow_to(next);
      break;
    case Op::kStoreGlobal: {
      ValueType v;
      if (!pop(&v)) return Underflow(fn, pc);
      flow_to(next);
      break;
    }
    case Op::kBinary: {
      ValueType b, a;
      if (!pop(&b) || !pop(&a)) return Underflow(fn, pc);
      bool err = false;
      ValueType r = BinaryResultType(static_cast<BinOp>(ins.a), a, b, &err);
      if (err) {
        abort_frame();
        break;
      }
      push(r);
      flow_to(next);
      break;
    }
    case Op::kUnary: {
      ValueType v;
      if (!pop(&v)) return Underflow(fn, pc);
      bool err = false;
      ValueType r = UnaryResultType(static_cast<UnOp>(ins.a), v, &err);
      if (err) {
        abort_frame();
        break;
      }
      push(r);
      flow_to(next);
      break;
    }
    case Op::kJump:
      flow_to(ins.a);
      break;
    case Op::kJumpIfFalse: {
      ValueType v;
      if (!pop(&v)) return Underflow(fn, pc);
      flow_to(ins.a);
      flow_to(next);
      break;
    }
    case Op::kJumpIfFalsePeek:
    case Op::kJumpIfTruePeek: {
      if (st.stack.empty()) return Underflow(fn, pc);
      flow_to(ins.a);  // branch taken: value stays on the stack
      st.stack.pop_back();
      flow_to(next);  // fall through: value popped
      break;
    }
    case Op::kPop: {
      ValueType v;
      if (!pop(&v)) return Underflow(fn, pc);
      flow_to(next);
      break;
    }
    case Op::kCallUser: {
      const CompiledFunction& callee =
          module.functions[static_cast<size_t>(ins.a)];
      const int argc = ins.b;
      if (argc != callee.num_params) {
        abort_frame();  // arity mismatch raises at runtime
        break;
      }
      if (static_cast<size_t>(argc) > st.stack.size()) {
        return Underflow(fn, pc);
      }
      std::vector<ValueType> args(st.stack.end() - argc, st.stack.end());
      st.stack.resize(st.stack.size() - static_cast<size_t>(argc));
      push(hooks.call_result ? hooks.call_result(ins.a, args)
                             : ValueType::kTop);
      flow_to(next);
      break;
    }
    case Op::kCallBuiltin: {
      const std::string& name =
          fn.constants[static_cast<size_t>(ins.a)].AsString();
      const int argc = ins.b;
      if (static_cast<size_t>(argc) > st.stack.size()) {
        return Underflow(fn, pc);
      }
      std::vector<ValueType> args(st.stack.end() - argc, st.stack.end());
      st.stack.resize(st.stack.size() - static_cast<size_t>(argc));
      if (hooks.is_host && hooks.is_host(name)) {
        push(ValueType::kTop);
        flow_to(next);
        break;
      }
      bool err = false;
      ValueType r = BuiltinResultType(name, args, &err);
      if (err) {
        abort_frame();
        break;
      }
      push(r);
      flow_to(next);
      break;
    }
    case Op::kReturn: {
      ValueType v;
      if (!pop(&v)) return Underflow(fn, pc);
      step.returns = true;
      step.return_type = v;
      break;
    }
    case Op::kReturnNone:
      step.returns = true;
      step.return_type = ValueType::kNone;
      break;
    case Op::kBuildList: {
      if (static_cast<size_t>(ins.a) > st.stack.size()) {
        return Underflow(fn, pc);
      }
      st.stack.resize(st.stack.size() - static_cast<size_t>(ins.a));
      push(ValueType::kList);
      flow_to(next);
      break;
    }
    case Op::kIndex: {
      ValueType index, base;
      if (!pop(&index) || !pop(&base)) return Underflow(fn, pc);
      bool err = false;
      ValueType r = IndexResultType(base, index, &err);
      if (err) {
        abort_frame();
        break;
      }
      push(r);
      flow_to(next);
      break;
    }
    case Op::kStoreIndex: {
      ValueType value, index, base;
      if (!pop(&value) || !pop(&index) || !pop(&base)) {
        return Underflow(fn, pc);
      }
      bool err = false;
      StoreIndexCheck(base, index, &err);
      if (err) {
        abort_frame();
        break;
      }
      flow_to(next);
      break;
    }
    case Op::kLen: {
      ValueType v;
      if (!pop(&v)) return Underflow(fn, pc);
      bool err = false;
      ValueType r = LenResultType(v, &err);
      if (err) {
        abort_frame();
        break;
      }
      push(r);
      flow_to(next);
      break;
    }
  }
  return step;
}

// ---------------------------------------------------------------------------
// Serialization.

namespace {

std::string TypesString(const std::vector<ValueType>& types) {
  if (types.empty()) return "-";
  std::string out;
  out.reserve(types.size());
  for (ValueType t : types) out.push_back(TypeChar(t));
  return out;
}

bool ParseTypesString(std::string_view s, std::vector<ValueType>* out) {
  out->clear();
  if (s == "-") return true;
  for (char c : s) {
    ValueType t;
    if (!TypeFromChar(c, &t)) return false;
    out->push_back(t);
  }
  return true;
}

Status ParseError(int line_no, const std::string& what) {
  return InvalidArgumentError("type facts parse: line " +
                              std::to_string(line_no) + ": " + what);
}

}  // namespace

std::string SerializeTypeFacts(const TypeFactTable& table) {
  std::string out = "mrstf1 " + std::to_string(table.functions.size()) + "\n";
  for (size_t i = 0; i < table.functions.size(); ++i) {
    const FunctionFacts& f = table.functions[i];
    out += "fn " + std::to_string(i) + " params=" + TypesString(f.params) +
           " ret=" + std::string(1, TypeChar(f.ret)) + " globals=";
    if (f.global_reads.empty()) {
      out += "-";
    } else {
      for (size_t g = 0; g < f.global_reads.size(); ++g) {
        if (g > 0) out += ",";
        out += std::to_string(f.global_reads[g].first) + ":" +
               std::string(1, TypeChar(f.global_reads[g].second));
      }
    }
    out += " rows=" + std::to_string(f.rows.size()) + "\n";
    for (size_t pc = 0; pc < f.rows.size(); ++pc) {
      const TypeRow& row = f.rows[pc];
      if (!row.reachable) continue;
      out += "pc " + std::to_string(pc) + " L=" + TypesString(row.locals) +
             " S=" + TypesString(row.stack) + "\n";
    }
  }
  return out;
}

Result<TypeFactTable> ParseTypeFacts(std::string_view text) {
  std::istringstream stream{std::string(text)};
  std::string line;
  int line_no = 0;
  auto next_line = [&]() -> bool {
    while (std::getline(stream, line)) {
      ++line_no;
      if (!line.empty()) return true;
    }
    return false;
  };

  if (!next_line()) return ParseError(line_no, "empty input");
  std::istringstream header(line);
  std::string magic;
  size_t nfuncs = 0;
  if (!(header >> magic >> nfuncs) || magic != "mrstf1") {
    return ParseError(line_no, "bad header (want 'mrstf1 <nfuncs>')");
  }

  TypeFactTable table;
  table.functions.resize(nfuncs);
  bool have_line = next_line();
  for (size_t i = 0; i < nfuncs; ++i) {
    if (!have_line) return ParseError(line_no, "missing fn record");
    std::istringstream fn_line(line);
    std::string tag, params_kv, ret_kv, globals_kv, rows_kv;
    size_t idx = 0;
    if (!(fn_line >> tag >> idx >> params_kv >> ret_kv >> globals_kv >>
          rows_kv) ||
        tag != "fn" || idx != i) {
      return ParseError(line_no, "bad fn record");
    }
    auto value_of = [&](const std::string& kv, const char* key,
                        std::string* out) -> bool {
      std::string prefix = std::string(key) + "=";
      if (kv.rfind(prefix, 0) != 0) return false;
      *out = kv.substr(prefix.size());
      return true;
    };
    FunctionFacts& f = table.functions[i];
    std::string params_s, ret_s, globals_s, rows_s;
    if (!value_of(params_kv, "params", &params_s) ||
        !value_of(ret_kv, "ret", &ret_s) ||
        !value_of(globals_kv, "globals", &globals_s) ||
        !value_of(rows_kv, "rows", &rows_s)) {
      return ParseError(line_no, "bad fn record fields");
    }
    if (!ParseTypesString(params_s, &f.params)) {
      return ParseError(line_no, "bad params types");
    }
    if (ret_s.size() != 1 || !TypeFromChar(ret_s[0], &f.ret)) {
      return ParseError(line_no, "bad ret type");
    }
    if (globals_s != "-") {
      for (std::string_view part : SplitChar(globals_s, ',')) {
        size_t colon = part.find(':');
        if (colon == std::string_view::npos || colon + 2 != part.size()) {
          return ParseError(line_no, "bad globals entry");
        }
        auto slot = ParseInt64(part.substr(0, colon));
        ValueType t;
        if (!slot.has_value() || !TypeFromChar(part[colon + 1], &t)) {
          return ParseError(line_no, "bad globals entry");
        }
        f.global_reads.emplace_back(static_cast<int32_t>(*slot), t);
      }
    }
    auto nrows = ParseInt64(rows_s);
    if (!nrows.has_value() || *nrows < 0 || *nrows > (1 << 24)) {
      return ParseError(line_no, "bad rows count");
    }
    f.rows.resize(static_cast<size_t>(*nrows));

    // pc rows until the next "fn" line or EOF.
    while ((have_line = next_line())) {
      if (line.rfind("fn ", 0) == 0) break;
      std::istringstream pc_line(line);
      std::string pc_tag, locals_kv, stack_kv;
      int64_t pc = -1;
      if (!(pc_line >> pc_tag >> pc >> locals_kv >> stack_kv) ||
          pc_tag != "pc") {
        return ParseError(line_no, "bad pc record");
      }
      if (pc < 0 || static_cast<size_t>(pc) >= f.rows.size()) {
        return ParseError(line_no, "pc out of range");
      }
      std::string locals_s, stack_s;
      if (!value_of(locals_kv, "L", &locals_s) ||
          !value_of(stack_kv, "S", &stack_s)) {
        return ParseError(line_no, "bad pc record fields");
      }
      TypeRow& row = f.rows[static_cast<size_t>(pc)];
      if (row.reachable) return ParseError(line_no, "duplicate pc record");
      row.reachable = true;
      if (!ParseTypesString(locals_s, &row.locals) ||
          !ParseTypesString(stack_s, &row.stack)) {
        return ParseError(line_no, "bad pc types");
      }
    }
  }
  if (have_line) return ParseError(line_no, "trailing fn record");
  return table;
}

// ---------------------------------------------------------------------------
// The linear checker.

namespace {

bool StateLeRow(const AbstractState& st, const TypeRow& row) {
  if (!row.reachable) return false;
  if (st.locals.size() != row.locals.size()) return false;
  if (st.stack.size() != row.stack.size()) return false;
  for (size_t i = 0; i < st.locals.size(); ++i) {
    if (!TypeLe(st.locals[i], row.locals[i])) return false;
  }
  for (size_t i = 0; i < st.stack.size(); ++i) {
    if (!TypeLe(st.stack[i], row.stack[i])) return false;
  }
  return true;
}

Status CheckFunctionFacts(const CompiledModule& module,
                          const TypeFactTable& table, size_t fn_index,
                          const std::set<std::string>& host_names) {
  const CompiledFunction& fn = module.functions[fn_index];
  const FunctionFacts& facts = table.functions[fn_index];
  auto reject = [&](const std::string& why) {
    return InvalidArgumentError("type facts rejected: " + fn.name + ": " +
                                why);
  };

  if (static_cast<int>(facts.params.size()) != fn.num_params) {
    return reject("params arity mismatch");
  }
  if (fn.num_params > fn.num_locals) return reject("params exceed locals");
  if (facts.rows.size() != fn.code.size()) return reject("rows size mismatch");
  int32_t prev_slot = -1;
  for (const auto& [slot, type] : facts.global_reads) {
    if (slot <= prev_slot) return reject("global reads not sorted/unique");
    if (slot < 0 ||
        static_cast<size_t>(slot) >= module.global_names.size()) {
      return reject("global read slot out of range");
    }
    prev_slot = slot;
    (void)type;
  }

  TransferHooks hooks;
  hooks.global_type = [&facts](int32_t slot) {
    return facts.GlobalType(slot);
  };
  hooks.call_result = [&table, &facts](int callee_index,
                                       const std::vector<ValueType>& args) {
    const FunctionFacts& callee =
        table.functions[static_cast<size_t>(callee_index)];
    if (args == callee.params && GlobalGuardCovered(facts, callee)) {
      return callee.ret;
    }
    return ValueType::kTop;
  };
  hooks.is_host = [&host_names](const std::string& name) {
    return host_names.count(name) > 0;
  };

  if (fn.code.empty()) {
    // Empty code falls off the end immediately: returns None.
    if (!TypeLe(ValueType::kNone, facts.ret)) return reject("ret excludes None");
    return Status::Ok();
  }

  // Entry: parameters per the guard; other locals None (the VM
  // default-constructs them) unless provably never read unassigned, in
  // which case kBottom — the shared EntryState rule.
  AbstractState entry = EntryState(fn, facts.params);
  if (!StateLeRow(entry, facts.rows[0])) {
    return reject("entry state not covered by pc 0 row");
  }

  const int code_size = static_cast<int>(fn.code.size());
  for (int pc = 0; pc < code_size; ++pc) {
    const TypeRow& row = facts.rows[static_cast<size_t>(pc)];
    if (!row.reachable) continue;
    if (static_cast<int>(row.locals.size()) != fn.num_locals) {
      return reject("pc " + std::to_string(pc) + ": bad locals arity");
    }
    if (static_cast<int>(row.stack.size()) > fn.max_stack) {
      return reject("pc " + std::to_string(pc) + ": stack exceeds max_stack");
    }
    AbstractState in{row.locals, row.stack};
    Result<TransferStep> step =
        TransferInstruction(module, fn, pc, in, hooks);
    if (!step.ok()) return step.status();
    if (step->returns && !TypeLe(step->return_type, facts.ret)) {
      return reject("pc " + std::to_string(pc) +
                    ": return type not covered by claimed ret");
    }
    for (const auto& [succ, state] : step->successors) {
      if (succ < 0 || succ > code_size) {
        return reject("pc " + std::to_string(pc) + ": successor out of range");
      }
      if (succ == code_size) {
        // Fall off the end: the VM returns None there.
        if (!TypeLe(ValueType::kNone, facts.ret)) {
          return reject("implicit return not covered by claimed ret");
        }
        continue;
      }
      if (!StateLeRow(state, facts.rows[static_cast<size_t>(succ)])) {
        return reject("pc " + std::to_string(pc) + " -> " +
                      std::to_string(succ) + ": claim does not cover flow");
      }
    }
  }
  return Status::Ok();
}

}  // namespace

Status CheckTypeFacts(const CompiledModule& module, const TypeFactTable& table,
                      const std::set<std::string>& host_names) {
  if (!module.verified) {
    return FailedPreconditionError(
        "type facts: module must pass the bytecode verifier first");
  }
  if (table.functions.size() != module.functions.size()) {
    return InvalidArgumentError("type facts rejected: function count " +
                                std::to_string(table.functions.size()) +
                                " != module " +
                                std::to_string(module.functions.size()));
  }
  // Global-type stability: an entry guard is checked once, on entry, so a
  // global it constrains must not change type afterwards.  Claims about
  // what a function stores are conditional on *its* guard — and a deopted
  // (guard-failed) frame runs the same kStoreGlobal generically — so the
  // only acceptable proof is syntactic: no function stores to a guarded
  // slot at all.  Top-level stores are fine; top-level runs once, at
  // load, before any guard is ever evaluated.
  std::set<int32_t> guarded;
  for (const FunctionFacts& f : table.functions) {
    for (const auto& [slot, t] : f.global_reads) {
      if (t != ValueType::kTop) guarded.insert(slot);
    }
  }
  if (!guarded.empty()) {
    for (const CompiledFunction& fn : module.functions) {
      for (const Instruction& ins : fn.code) {
        if (ins.op == Op::kStoreGlobal && guarded.count(ins.a) > 0) {
          return InvalidArgumentError(
              "type facts rejected: " + fn.name + " stores global '" +
              module.global_names[static_cast<size_t>(ins.a)] +
              "' whose type another guard relies on");
        }
      }
    }
  }
  for (size_t i = 0; i < module.functions.size(); ++i) {
    MRS_RETURN_IF_ERROR(CheckFunctionFacts(module, table, i, host_names));
  }
  return Status::Ok();
}

}  // namespace minipy
}  // namespace mrs
