// MiniPy AST -> bytecode compiler.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <string_view>

#include "common/status.h"
#include "interp/ast.h"
#include "interp/bytecode.h"

namespace mrs {
namespace minipy {

struct CompileOptions {
  /// Host-function names callable like builtins (compiled to kCallBuiltin;
  /// resolved by the VM's host registry — see Vm::RegisterHost).  Used by
  /// mrs::analysis kernels for `emit`.
  std::set<std::string> host_functions;
};

/// Compile a parsed module.  Local-variable rules follow Python: a name
/// assigned anywhere in a function body (or a parameter / for target) is a
/// local; all other names resolve to globals (or builtins at call sites).
Result<std::shared_ptr<CompiledModule>> CompileModule(
    const Module& module, const CompileOptions& options = {});

/// Convenience: parse + compile.
Result<std::shared_ptr<CompiledModule>> CompileSource(
    std::string_view source, const CompileOptions& options = {});

}  // namespace minipy
}  // namespace mrs
