// MiniPy AST -> bytecode compiler.
#pragma once

#include <memory>
#include <string_view>

#include "common/status.h"
#include "interp/ast.h"
#include "interp/bytecode.h"

namespace mrs {
namespace minipy {

/// Compile a parsed module.  Local-variable rules follow Python: a name
/// assigned anywhere in a function body (or a parameter / for target) is a
/// local; all other names resolve to globals (or builtins at call sites).
Result<std::shared_ptr<CompiledModule>> CompileModule(const Module& module);

/// Convenience: parse + compile.
Result<std::shared_ptr<CompiledModule>> CompileSource(std::string_view source);

}  // namespace minipy
}  // namespace mrs
