#include "interp/pyvalue.h"

#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace mrs {
namespace minipy {

bool PyValue::AsBool() const {
  switch (type_) {
    case Type::kNone: return false;
    case Type::kBool:
    case Type::kInt: return int_ != 0;
    case Type::kFloat: return float_ != 0.0;
    case Type::kString: return !str_->empty();
    case Type::kList: return !list_->empty();
  }
  return false;
}

std::string_view PyValue::TypeName() const {
  switch (type_) {
    case Type::kNone: return "NoneType";
    case Type::kBool: return "bool";
    case Type::kInt: return "int";
    case Type::kFloat: return "float";
    case Type::kString: return "str";
    case Type::kList: return "list";
  }
  return "?";
}

std::string PyValue::Repr() const {
  switch (type_) {
    case Type::kNone: return "None";
    case Type::kBool: return int_ != 0 ? "True" : "False";
    case Type::kInt: return std::to_string(int_);
    case Type::kFloat: {
      std::string s = StrPrintf("%.12g", float_);
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case Type::kString: return *str_;
    case Type::kList: {
      std::string out = "[";
      for (size_t i = 0; i < list_->size(); ++i) {
        if (i > 0) out += ", ";
        out += (*list_)[i].Repr();
      }
      return out + "]";
    }
  }
  return "?";
}

namespace {

Status TypeError(std::string_view what, const PyValue& a, const PyValue& b) {
  return InvalidArgumentError("unsupported operand types for " +
                              std::string(what) + ": " +
                              std::string(a.TypeName()) + " and " +
                              std::string(b.TypeName()));
}

int CompareNumeric(const PyValue& a, const PyValue& b) {
  double x = a.AsFloat();
  double y = b.AsFloat();
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

}  // namespace

bool PyEquals(const PyValue& a, const PyValue& b) {
  if (a.is_numeric() && b.is_numeric()) {
    if (a.is_int() && b.is_int()) return a.AsInt() == b.AsInt();
    return a.AsFloat() == b.AsFloat();
  }
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case PyValue::Type::kNone: return true;
    case PyValue::Type::kString: return a.AsString() == b.AsString();
    case PyValue::Type::kList: {
      const PyList& la = a.AsList();
      const PyList& lb = b.AsList();
      if (la.size() != lb.size()) return false;
      for (size_t i = 0; i < la.size(); ++i) {
        if (!PyEquals(la[i], lb[i])) return false;
      }
      return true;
    }
    default: return false;
  }
}

Result<PyValue> ApplyBinary(BinOp op, const PyValue& a, const PyValue& b) {
  switch (op) {
    case BinOp::kAdd:
      if (a.is_numeric() && b.is_numeric()) {
        if (a.is_float() || b.is_float()) return PyValue(a.AsFloat() + b.AsFloat());
        return PyValue(a.AsInt() + b.AsInt());
      }
      if (a.is_string() && b.is_string()) return PyValue(a.AsString() + b.AsString());
      if (a.is_list() && b.is_list()) {
        PyList out = a.AsList();
        out.insert(out.end(), b.AsList().begin(), b.AsList().end());
        return PyValue(std::move(out));
      }
      return TypeError("+", a, b);
    case BinOp::kSub:
      if (a.is_numeric() && b.is_numeric()) {
        if (a.is_float() || b.is_float()) return PyValue(a.AsFloat() - b.AsFloat());
        return PyValue(a.AsInt() - b.AsInt());
      }
      return TypeError("-", a, b);
    case BinOp::kMul:
      if (a.is_numeric() && b.is_numeric()) {
        if (a.is_float() || b.is_float()) return PyValue(a.AsFloat() * b.AsFloat());
        return PyValue(a.AsInt() * b.AsInt());
      }
      return TypeError("*", a, b);
    case BinOp::kDiv:
      if (a.is_numeric() && b.is_numeric()) {
        if (b.AsFloat() == 0.0) return InvalidArgumentError("division by zero");
        return PyValue(a.AsFloat() / b.AsFloat());
      }
      return TypeError("/", a, b);
    case BinOp::kFloorDiv:
      if (a.is_numeric() && b.is_numeric()) {
        if (a.is_float() || b.is_float()) {
          if (b.AsFloat() == 0.0) return InvalidArgumentError("division by zero");
          return PyValue(std::floor(a.AsFloat() / b.AsFloat()));
        }
        if (b.AsInt() == 0) return InvalidArgumentError("division by zero");
        return PyValue(PyFloorDivInt(a.AsInt(), b.AsInt()));
      }
      return TypeError("//", a, b);
    case BinOp::kMod:
      if (a.is_numeric() && b.is_numeric()) {
        if (a.is_float() || b.is_float()) {
          if (b.AsFloat() == 0.0) return InvalidArgumentError("modulo by zero");
          return PyValue(PyFModFloat(a.AsFloat(), b.AsFloat()));
        }
        if (b.AsInt() == 0) return InvalidArgumentError("modulo by zero");
        return PyValue(PyModInt(a.AsInt(), b.AsInt()));
      }
      return TypeError("%", a, b);
    case BinOp::kPow:
      if (a.is_numeric() && b.is_numeric()) {
        if (a.is_int() && b.is_int() && b.AsInt() >= 0) {
          int64_t base = a.AsInt();
          int64_t exp = b.AsInt();
          int64_t out = 1;
          while (exp > 0) {
            if (exp & 1) out *= base;
            base *= base;
            exp >>= 1;
          }
          return PyValue(out);
        }
        return PyValue(std::pow(a.AsFloat(), b.AsFloat()));
      }
      return TypeError("**", a, b);
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      int c;
      if (a.is_numeric() && b.is_numeric()) {
        c = CompareNumeric(a, b);
      } else if (a.is_string() && b.is_string()) {
        c = a.AsString().compare(b.AsString());
        c = c < 0 ? -1 : (c > 0 ? 1 : 0);
      } else {
        return TypeError("comparison", a, b);
      }
      bool r = false;
      if (op == BinOp::kLt) r = c < 0;
      if (op == BinOp::kLe) r = c <= 0;
      if (op == BinOp::kGt) r = c > 0;
      if (op == BinOp::kGe) r = c >= 0;
      return PyValue::Bool(r);
    }
    case BinOp::kEq:
      return PyValue::Bool(PyEquals(a, b));
    case BinOp::kNe:
      return PyValue::Bool(!PyEquals(a, b));
    case BinOp::kAnd:
    case BinOp::kOr:
      return InternalError("and/or must short-circuit in the engine");
  }
  return InternalError("unknown binary operator");
}

Result<PyValue> ApplyUnary(UnOp op, const PyValue& v) {
  if (op == UnOp::kNot) return PyValue::Bool(!v.AsBool());
  // kNeg
  if (v.is_int() || v.is_bool()) return PyValue(-v.AsInt());
  if (v.is_float()) return PyValue(-v.AsFloat());
  return InvalidArgumentError("bad operand type for unary -: " +
                              std::string(v.TypeName()));
}

bool IsBuiltin(const std::string& name) {
  static const char* kNames[] = {"len", "abs", "int",   "float", "str", "bool",
                                 "min", "max", "range", "append", "print"};
  for (const char* n : kNames) {
    if (name == n) return true;
  }
  return false;
}

Result<PyValue> CallBuiltin(const std::string& name,
                            std::vector<PyValue>& args) {
  auto arity = [&](size_t n) -> Status {
    if (args.size() != n) {
      return InvalidArgumentError(name + "() takes " + std::to_string(n) +
                                  " arguments, got " +
                                  std::to_string(args.size()));
    }
    return Status::Ok();
  };
  if (name == "len") {
    MRS_RETURN_IF_ERROR(arity(1));
    if (args[0].is_string()) {
      return PyValue(static_cast<int64_t>(args[0].AsString().size()));
    }
    if (args[0].is_list()) {
      return PyValue(static_cast<int64_t>(args[0].AsList().size()));
    }
    return InvalidArgumentError("object has no len()");
  }
  if (name == "abs") {
    MRS_RETURN_IF_ERROR(arity(1));
    if (args[0].is_int() || args[0].is_bool()) {
      int64_t v = args[0].AsInt();
      return PyValue(v < 0 ? -v : v);
    }
    if (args[0].is_float()) return PyValue(std::fabs(args[0].AsFloat()));
    return InvalidArgumentError("bad operand for abs()");
  }
  if (name == "int") {
    MRS_RETURN_IF_ERROR(arity(1));
    if (args[0].is_numeric()) return PyValue(args[0].AsInt());
    if (args[0].is_string()) {
      auto v = ParseInt64(Trim(args[0].AsString()));
      if (!v.has_value()) return InvalidArgumentError("bad int literal");
      return PyValue(*v);
    }
    return InvalidArgumentError("bad operand for int()");
  }
  if (name == "float") {
    MRS_RETURN_IF_ERROR(arity(1));
    if (args[0].is_numeric()) return PyValue(args[0].AsFloat());
    if (args[0].is_string()) {
      auto v = ParseDouble(Trim(args[0].AsString()));
      if (!v.has_value()) return InvalidArgumentError("bad float literal");
      return PyValue(*v);
    }
    return InvalidArgumentError("bad operand for float()");
  }
  if (name == "str") {
    MRS_RETURN_IF_ERROR(arity(1));
    return PyValue(args[0].Repr());
  }
  if (name == "bool") {
    MRS_RETURN_IF_ERROR(arity(1));
    return PyValue::Bool(args[0].AsBool());
  }
  if (name == "min" || name == "max") {
    if (args.empty()) return InvalidArgumentError(name + "() needs arguments");
    std::vector<PyValue>* items = &args;
    if (args.size() == 1 && args[0].is_list()) items = &args[0].AsList();
    if (items->empty()) return InvalidArgumentError(name + "() of empty list");
    PyValue best = (*items)[0];
    for (size_t i = 1; i < items->size(); ++i) {
      MRS_ASSIGN_OR_RETURN(
          PyValue less, ApplyBinary(BinOp::kLt, (*items)[i], best));
      bool take = less.AsBool();
      if (name == "max") take = !take && !PyEquals((*items)[i], best);
      if (take) best = (*items)[i];
    }
    return best;
  }
  if (name == "range") {
    int64_t start = 0, stop = 0, step = 1;
    if (args.size() == 1) {
      stop = args[0].AsInt();
    } else if (args.size() == 2) {
      start = args[0].AsInt();
      stop = args[1].AsInt();
    } else if (args.size() == 3) {
      start = args[0].AsInt();
      stop = args[1].AsInt();
      step = args[2].AsInt();
      if (step == 0) return InvalidArgumentError("range() step must not be 0");
    } else {
      return InvalidArgumentError("range() takes 1-3 arguments");
    }
    PyList out;
    if (step > 0) {
      for (int64_t i = start; i < stop; i += step) out.push_back(PyValue(i));
    } else {
      for (int64_t i = start; i > stop; i += step) out.push_back(PyValue(i));
    }
    return PyValue(std::move(out));
  }
  if (name == "append") {
    MRS_RETURN_IF_ERROR(arity(2));
    if (!args[0].is_list()) {
      return InvalidArgumentError("append() first argument must be a list");
    }
    args[0].AsList().push_back(args[1]);
    return PyValue();
  }
  if (name == "print") {
    std::string line;
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) line += ' ';
      line += args[i].Repr();
    }
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), stdout);
    return PyValue();
  }
  return NotFoundError("no builtin named " + name);
}

}  // namespace minipy
}  // namespace mrs
