// MiniPy token model.
//
// MiniPy is the repo's stand-in for Python (DESIGN.md §1): a small
// dynamically-typed language with Python syntax (indentation blocks, def /
// while / if, ints, floats, strings, lists).  The paper's Fig 3 compares
// the same numeric kernel under CPython, PyPy, and C; here the kernel runs
// under a tree-walking interpreter, a bytecode VM, and native C++.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mrs {
namespace minipy {

enum class TokenType {
  kEof,
  kNewline,
  kIndent,
  kDedent,
  // Literals and names.
  kInt,
  kFloat,
  kString,
  kName,
  // Keywords.
  kDef,
  kReturn,
  kIf,
  kElif,
  kElse,
  kWhile,
  kFor,
  kIn,
  kBreak,
  kContinue,
  kPass,
  kAnd,
  kOr,
  kNot,
  kTrue,
  kFalse,
  kNone,
  // Punctuation and operators.
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kColon,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kSlashSlash,
  kPercent,
  kStarStar,
  kLess,
  kLessEq,
  kGreater,
  kGreaterEq,
  kEqEq,
  kNotEq,
  kAssign,
  kPlusAssign,
  kMinusAssign,
  kStarAssign,
  kSlashAssign,
};

std::string_view TokenTypeName(TokenType type);

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;     // name/string contents
  int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;
  int column = 0;
};

}  // namespace minipy
}  // namespace mrs
