// MiniPy bytecode VM — the "PyPy" stand-in.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "interp/bytecode.h"
#include "interp/compiler.h"

namespace mrs {
namespace minipy {

class Vm {
 public:
  /// Install a compiled module and execute its top-level code.
  Status LoadModule(std::shared_ptr<CompiledModule> module);
  Status LoadSource(std::string_view source);

  /// Call a module-level function by name.
  Result<PyValue> Call(const std::string& function, std::vector<PyValue> args);

  Result<PyValue> GetGlobal(const std::string& name) const;

 private:
  Result<PyValue> RunFunction(const CompiledFunction& fn,
                              std::vector<PyValue> args);

  std::shared_ptr<CompiledModule> module_;
  std::vector<PyValue> globals_;
};

}  // namespace minipy
}  // namespace mrs
