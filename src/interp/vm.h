// MiniPy bytecode VM — the "PyPy" stand-in.
//
// The dispatch loop carries no per-instruction bounds checks; instead,
// LoadModule runs the bytecode verifier (interp/verifier.h) on any module
// not already stamped `verified` and refuses malformed frames outright.
// Only verified modules ever reach RunFunction, which is what keeps the
// unboxed numeric fast path both fast and safe.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "interp/bytecode.h"
#include "interp/compiler.h"

namespace mrs {
namespace minipy {

class Vm {
 public:
  /// A host-provided function callable from MiniPy like a builtin (e.g.
  /// the kernel `emit`).  Receives the evaluated arguments.
  using HostFn = std::function<Result<PyValue>(std::vector<PyValue>& args)>;

  /// Make `name` callable from MiniPy code.  Must be registered before
  /// LoadModule/LoadSource so the compiler and verifier accept the name.
  void RegisterHost(std::string name, HostFn fn);

  /// Install a compiled module and execute its top-level code.  Modules
  /// not already verified are run through the bytecode verifier first;
  /// malformed frames are rejected (InvalidArgument), never executed.
  Status LoadModule(std::shared_ptr<CompiledModule> module);
  Status LoadSource(std::string_view source);

  /// Call a module-level function by name.
  Result<PyValue> Call(const std::string& function, std::vector<PyValue> args);

  Result<PyValue> GetGlobal(const std::string& name) const;

 private:
  Result<PyValue> RunFunction(const CompiledFunction& fn,
                              std::vector<PyValue> args);

  std::shared_ptr<CompiledModule> module_;
  std::vector<PyValue> globals_;
  std::map<std::string, HostFn> host_;
};

}  // namespace minipy
}  // namespace mrs
