// MiniPy bytecode VM — the "PyPy" stand-in.
//
// The dispatch loop carries no per-instruction bounds checks; instead,
// LoadModule runs the bytecode verifier (interp/verifier.h) on any module
// not already stamped `verified` and refuses malformed frames outright.
// Only verified modules ever reach RunFunction, which is what keeps the
// unboxed numeric fast path both fast and safe.
//
// On top of the generic loop sits the typed tier: when a loaded module
// carries a TypeFactTable (produced by analysis/typeinfer, re-checked
// here by CheckTypeFacts — never trusted), provably-numeric functions are
// translated to unboxed register code (interp/typedtier.h).  Every entry
// into typed code from boxed code re-checks the function's entry guard
// against the live arguments and globals; a failed guard falls back to
// the generic loop and increments mrs.vm.deopts.  A module without a
// table, or whose table fails the check (counted in
// mrs.vm.type_facts_rejected), simply runs generic-only.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "interp/bytecode.h"
#include "interp/compiler.h"
#include "interp/typedtier.h"

namespace mrs {
namespace minipy {

class Vm {
 public:
  /// A host-provided function callable from MiniPy like a builtin (e.g.
  /// the kernel `emit`).  Receives the evaluated arguments.
  using HostFn = std::function<Result<PyValue>(std::vector<PyValue>& args)>;

  /// Make `name` callable from MiniPy code.  Must be registered before
  /// LoadModule/LoadSource so the compiler and verifier accept the name.
  void RegisterHost(std::string name, HostFn fn);

  /// Install a compiled module and execute its top-level code.  Modules
  /// not already verified are run through the bytecode verifier first;
  /// malformed frames are rejected (InvalidArgument), never executed.
  Status LoadModule(std::shared_ptr<CompiledModule> module);
  Status LoadSource(std::string_view source);

  /// Call a module-level function by name.
  Result<PyValue> Call(const std::string& function, std::vector<PyValue> args);

  Result<PyValue> GetGlobal(const std::string& name) const;

  /// Disable the typed tier for this VM before LoadModule (differential
  /// tests force the generic loop this way; the MRS_NO_TYPED_TIER env
  /// var does the same for every VM in the process).
  void set_typed_tier_enabled(bool enabled) { typed_enabled_ = enabled; }

  /// True when `name` was translated into the typed tier of the loaded
  /// module (facts present, checked, and the function proved eligible).
  bool HasTypedFunction(const std::string& name) const;

 private:
  Result<PyValue> RunFunction(const CompiledFunction& fn,
                              std::vector<PyValue> args);
  /// Typed-or-generic call dispatch: guard-check against live values,
  /// enter typed code on success, deopt to RunFunction otherwise.
  Result<PyValue> DispatchCall(int fn_index, std::vector<PyValue> args);
  Status RunTypedFunction(const TypedFunction& tfn, Slot* frame, Slot* ret);
  /// kCallG (and arena-exhausted kCallT): box slots, run boxed dispatch,
  /// unbox the result with a defensive check against the claimed type.
  Status BoxedCallFromTyped(const TypedFunction& tfn, int gc_index,
                            int32_t first, Slot* frame, Slot* out);

  std::shared_ptr<CompiledModule> module_;
  std::vector<PyValue> globals_;
  std::map<std::string, HostFn> host_;

  TypedModule typed_;
  /// Frame arena for typed calls.  Sized once when the tier is built and
  /// never reallocated afterwards (live frames hold raw pointers into
  /// it); exhaustion falls back to boxed calls, never fails.
  std::vector<Slot> arena_;
  size_t arena_used_ = 0;
  bool typed_enabled_ = true;
};

}  // namespace minipy
}  // namespace mrs
