// Type facts for verified MiniPy bytecode: the data model, the exact
// operator result-type tables, and the linear re-checker.
//
// The flow-sensitive *inference* (fixpoint over the CFG) lives in
// analysis/typeinfer.h; what it produces is a TypeFactTable — a claimed
// type for every local and stack slot at every reachable pc, plus a
// per-function entry guard (parameter types + global types the function
// relies on) and a return type.  The VM never trusts those claims:
// CheckTypeFacts re-verifies the whole table in one linear pass (the
// classic stack-map-table split — expensive fixpoint at produce time,
// cheap local check at consume time), and the typed execution tier
// (interp/typedtier.h) is built only from facts that passed the check.
//
// Soundness contract: a claimed type over-approximates every runtime
// value that can occupy that slot *given the function's entry guard
// holds* — which the VM establishes dynamically before entering typed
// code (and falls back to the generic loop when it does not).  Claims
// about instructions that raise are vacuous: a frame that errors
// produces no value for the claim to describe.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "interp/bytecode.h"

namespace mrs {
namespace minipy {

/// The inference lattice.  kBottom = unreachable / no value yet; kTop =
/// any value.  Join of two distinct concrete types is kTop (flat lattice).
enum class ValueType : uint8_t {
  kBottom = 0,
  kNone,
  kBool,
  kInt,
  kFloat,
  kStr,
  kList,
  kTop,
};

inline bool IsConcreteType(ValueType t) {
  return t != ValueType::kBottom && t != ValueType::kTop;
}
inline bool IsNumericType(ValueType t) {
  return t == ValueType::kBool || t == ValueType::kInt ||
         t == ValueType::kFloat;
}

inline ValueType JoinType(ValueType a, ValueType b) {
  if (a == b) return a;
  if (a == ValueType::kBottom) return b;
  if (b == ValueType::kBottom) return a;
  return ValueType::kTop;
}

/// a ⊑ b in the flat lattice.
inline bool TypeLe(ValueType a, ValueType b) {
  return a == b || a == ValueType::kBottom || b == ValueType::kTop;
}

ValueType TypeOf(const PyValue& v);

/// One char per lattice element (serialized form): B ⊥, N None, b bool,
/// i int, f float, s str, l list, T ⊤.
char TypeChar(ValueType t);
bool TypeFromChar(char c, ValueType* out);
std::string_view TypeDisplayName(ValueType t);  // "int", "float", ...

// ---------------------------------------------------------------------------
// Result-type tables.  Each mirrors ApplyBinary/ApplyUnary/the VM op
// exactly: the result is the join over every concrete operand pair
// admitted by the abstract operands (which makes the tables monotone by
// construction), and *guaranteed_error is set when every such pair
// raises — the static signature of a guaranteed TypeError (MPY501/502).

ValueType BinaryResultType(BinOp op, ValueType a, ValueType b,
                           bool* guaranteed_error = nullptr);
ValueType UnaryResultType(UnOp op, ValueType v,
                          bool* guaranteed_error = nullptr);
ValueType IndexResultType(ValueType base, ValueType index,
                          bool* guaranteed_error = nullptr);
ValueType LenResultType(ValueType v, bool* guaranteed_error = nullptr);
/// kStoreIndex validity (no result value).
void StoreIndexCheck(ValueType base, ValueType index, bool* guaranteed_error);
/// Builtins (len/abs/int/float/str/bool/min/max/range/append/print).
/// Unknown (host) functions return kTop and never guarantee an error.
ValueType BuiltinResultType(const std::string& name,
                            const std::vector<ValueType>& args,
                            bool* guaranteed_error = nullptr);

// ---------------------------------------------------------------------------
// Fact model.

struct TypeRow {
  bool reachable = false;
  std::vector<ValueType> locals;  // size == num_locals when reachable
  std::vector<ValueType> stack;   // operand stack, bottom first
};

struct FunctionFacts {
  /// Entry guard on parameters (size == num_params).  The typed tier
  /// checks TypeOf(arg) ⊑ params[i] at frame entry and deopts on
  /// mismatch; every row below is conditional on this guard.
  std::vector<ValueType> params;
  /// Return type under the guard (join over every kReturn/kReturnNone).
  ValueType ret = ValueType::kTop;
  /// Global slots this function reads, with the type assumed for each —
  /// part of the entry guard, checked against live global values.
  /// Sorted by slot, unique.  Slots read but not listed are typed kTop.
  std::vector<std::pair<int32_t, ValueType>> global_reads;
  /// Per-pc claims; size == code.size().  Unreachable rows are empty.
  std::vector<TypeRow> rows;

  ValueType GlobalType(int32_t slot) const {
    for (const auto& [s, t] : global_reads) {
      if (s == slot) return t;
    }
    return ValueType::kTop;
  }
};

/// Parallel to CompiledModule::functions (top-level code carries no facts:
/// it runs once, on the generic loop, and is where globals are born).
struct TypeFactTable {
  std::vector<FunctionFacts> functions;
};

/// True when caller's entry guard implies callee's global guard — the
/// condition (besides exact parameter-type match) under which a call
/// result may be claimed as callee.ret rather than kTop.  Used
/// identically by inference, the checker, and the typed-tier translator.
bool GlobalGuardCovered(const FunctionFacts& caller,
                        const FunctionFacts& callee);

// ---------------------------------------------------------------------------
// Shared abstract transfer.  Both the inference fixpoint and the linear
// checker step instructions through this, so a divergence between
// "what inference believes" and "what the checker accepts" cannot exist.

struct AbstractState {
  std::vector<ValueType> locals;
  std::vector<ValueType> stack;
};

struct TransferHooks {
  /// Result type of kCallUser on function `fn_index` with these static
  /// argument types.  Inference plugs in-progress summaries in; the
  /// checker plugs the claimed table in.
  std::function<ValueType(int fn_index, const std::vector<ValueType>& args)>
      call_result;
  /// Type of a global slot at kLoadGlobal (kTop when unknown).
  std::function<ValueType(int32_t slot)> global_type;
  /// True when `name` resolves to a host function in the consuming VM —
  /// host functions shadow builtins at dispatch, so their results must
  /// be typed kTop no matter what the name suggests.
  std::function<bool(const std::string& name)> is_host;
};

/// Per-local "may be read before any store on some path from entry" —
/// a forward may-analysis over the CFG.  A local for which this is false
/// can be typed kBottom at function entry (its default-constructed None
/// is provably never observed), which keeps loop-carried locals that are
/// assigned inside the loop body at a concrete type instead of None⊔T=⊤.
/// Inference and the checker must build entry states with the SAME rule,
/// so both call this.
std::vector<bool> LocalsReadBeforeAssign(const CompiledFunction& fn);

/// The shared entry-state rule: parameters per the guard, other locals
/// kNone when possibly read unassigned, kBottom otherwise.
AbstractState EntryState(const CompiledFunction& fn,
                         const std::vector<ValueType>& params);

struct TransferStep {
  /// (successor pc, state on entry to it).  pc == code.size() means
  /// execution falls off the end (the VM returns None there).  A
  /// guaranteed-error instruction has no successors: the frame aborts.
  std::vector<std::pair<int, AbstractState>> successors;
  bool returns = false;
  ValueType return_type = ValueType::kBottom;
  bool guaranteed_error = false;
};

/// Abstractly execute fn.code[pc] from `in`.  Fails (InvalidArgument) on
/// structural impossibilities — stack underflow against the claimed row,
/// bad operand shape — which the checker converts into rejection.  The
/// caller guarantees `module` is verified (operand indices in bounds).
Result<TransferStep> TransferInstruction(const CompiledModule& module,
                                         const CompiledFunction& fn, int pc,
                                         const AbstractState& in,
                                         const TransferHooks& hooks);

// ---------------------------------------------------------------------------
// Serialization (the interchange form "hand-edited tables" attack, and
// what tests mutate).  Text, line-oriented, header "mrstf1".

std::string SerializeTypeFacts(const TypeFactTable& table);
Result<TypeFactTable> ParseTypeFacts(std::string_view text);

/// Linear, non-fixpoint re-check of every claim in `table` against
/// `module` (which must already be bytecode-verified).  O(code size ×
/// slots).  `host_names` is the consuming VM's registered host-function
/// set: claims about builtins a host function shadows fail the check.
/// On success the table is safe to build the typed tier from; any
/// failure means the table was corrupted or forged and must be
/// discarded — never "partially trusted".
Status CheckTypeFacts(const CompiledModule& module, const TypeFactTable& table,
                      const std::set<std::string>& host_names = {});

}  // namespace minipy
}  // namespace mrs
