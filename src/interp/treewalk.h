// MiniPy tree-walking interpreter — the "pure Python" (CPython) stand-in.
//
// Deliberately interpreter-shaped: every name access is a hash-map lookup
// in an environment chain, every value is a boxed PyValue, every AST node
// costs a virtual-ish dispatch.  This is the engine behind the Fig 3a
// "Mrs/Python" series; its slowness relative to the bytecode VM and native
// code is the point.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "interp/ast.h"
#include "interp/pyvalue.h"

namespace mrs {
namespace minipy {

class TreeWalker {
 public:
  /// Execute a module's top-level statements (typically defs).
  Status LoadModule(std::shared_ptr<Module> module);
  Status LoadSource(std::string_view source);

  /// Call a module-level function by name.
  Result<PyValue> Call(const std::string& function,
                       std::vector<PyValue> args);

  /// Read a module-level variable (tests).
  Result<PyValue> GetGlobal(const std::string& name) const;

 private:
  struct FunctionDef {
    const Stmt* def = nullptr;  // owned by module_
  };

  enum class Flow { kNormal, kReturn, kBreak, kContinue };

  struct Frame {
    std::map<std::string, PyValue> locals;
  };

  Result<PyValue> Eval(const Expr& expr, Frame* frame);
  /// Executes a statement; on kReturn, *return_value holds the value.
  Result<Flow> Exec(const Stmt& stmt, Frame* frame, PyValue* return_value);
  Result<Flow> ExecBlock(const std::vector<StmtPtr>& body, Frame* frame,
                         PyValue* return_value);
  Result<PyValue> CallFunction(const FunctionDef& fn,
                               std::vector<PyValue> args);
  Status ErrorAt(int line, const std::string& message) const;

  std::vector<std::shared_ptr<Module>> modules_;  // keep ASTs alive
  std::map<std::string, PyValue> globals_;
  std::map<std::string, FunctionDef> functions_;
};

}  // namespace minipy
}  // namespace mrs
