// MiniPy abstract syntax tree.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mrs {
namespace minipy {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class BinOp {
  kAdd, kSub, kMul, kDiv, kFloorDiv, kMod, kPow,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr,
};

enum class UnOp { kNeg, kNot };

struct Expr {
  enum class Kind {
    kIntLit, kFloatLit, kStringLit, kBoolLit, kNoneLit,
    kName, kBinary, kUnary, kCall, kListLit, kIndex,
  };

  Kind kind;
  int line = 0;
  int col = 0;  // 1-based column of the node's first token (0 = unknown)

  // kIntLit / kFloatLit / kBoolLit
  int64_t int_value = 0;
  double float_value = 0.0;
  bool bool_value = false;
  // kStringLit / kName / kCall(callee name)
  std::string name;
  // kBinary / kUnary
  BinOp bin_op = BinOp::kAdd;
  UnOp un_op = UnOp::kNeg;
  ExprPtr lhs;     // also: unary operand, call callee-less target, index base
  ExprPtr rhs;     // also: index subscript
  // kCall arguments / kListLit elements
  std::vector<ExprPtr> args;
};

struct Stmt {
  enum class Kind {
    kExpr,        // expression statement
    kAssign,      // name = expr  |  base[idx] = expr
    kAugAssign,   // name op= expr
    kReturn,
    kIf,          // arms: (cond, body) pairs; else_body
    kWhile,
    kFor,         // for name in iterable
    kBreak,
    kContinue,
    kPass,
    kDef,
  };

  Kind kind;
  int line = 0;
  int col = 0;  // 1-based column of the node's first token (0 = unknown)

  ExprPtr expr;          // kExpr / kReturn value / assign RHS
  std::string target;    // assign target name / for variable / def name
  ExprPtr index_base;    // subscript assignment: base expression
  ExprPtr index_expr;    // subscript assignment: index expression
  BinOp aug_op = BinOp::kAdd;

  ExprPtr cond;          // while condition / for iterable
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;
  // kIf: chained arms (if/elif...); conds.size() == bodies.size().
  std::vector<ExprPtr> arm_conds;
  std::vector<std::vector<StmtPtr>> arm_bodies;

  // kDef
  std::vector<std::string> params;
};

/// A parsed module: top-level statements (defs and initialization code).
struct Module {
  std::vector<StmtPtr> body;
};

}  // namespace minipy
}  // namespace mrs
