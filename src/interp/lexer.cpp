#include "interp/lexer.h"

#include <cctype>
#include <map>

#include "common/strings.h"

namespace mrs {
namespace minipy {

std::string_view TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kEof: return "EOF";
    case TokenType::kNewline: return "NEWLINE";
    case TokenType::kIndent: return "INDENT";
    case TokenType::kDedent: return "DEDENT";
    case TokenType::kInt: return "INT";
    case TokenType::kFloat: return "FLOAT";
    case TokenType::kString: return "STRING";
    case TokenType::kName: return "NAME";
    case TokenType::kDef: return "def";
    case TokenType::kReturn: return "return";
    case TokenType::kIf: return "if";
    case TokenType::kElif: return "elif";
    case TokenType::kElse: return "else";
    case TokenType::kWhile: return "while";
    case TokenType::kFor: return "for";
    case TokenType::kIn: return "in";
    case TokenType::kBreak: return "break";
    case TokenType::kContinue: return "continue";
    case TokenType::kPass: return "pass";
    case TokenType::kAnd: return "and";
    case TokenType::kOr: return "or";
    case TokenType::kNot: return "not";
    case TokenType::kTrue: return "True";
    case TokenType::kFalse: return "False";
    case TokenType::kNone: return "None";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kLBracket: return "[";
    case TokenType::kRBracket: return "]";
    case TokenType::kComma: return ",";
    case TokenType::kColon: return ":";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kStar: return "*";
    case TokenType::kSlash: return "/";
    case TokenType::kSlashSlash: return "//";
    case TokenType::kPercent: return "%";
    case TokenType::kStarStar: return "**";
    case TokenType::kLess: return "<";
    case TokenType::kLessEq: return "<=";
    case TokenType::kGreater: return ">";
    case TokenType::kGreaterEq: return ">=";
    case TokenType::kEqEq: return "==";
    case TokenType::kNotEq: return "!=";
    case TokenType::kAssign: return "=";
    case TokenType::kPlusAssign: return "+=";
    case TokenType::kMinusAssign: return "-=";
    case TokenType::kStarAssign: return "*=";
    case TokenType::kSlashAssign: return "/=";
  }
  return "?";
}

namespace {

const std::map<std::string, TokenType, std::less<>>& Keywords() {
  static const std::map<std::string, TokenType, std::less<>> kKeywords = {
      {"def", TokenType::kDef},         {"return", TokenType::kReturn},
      {"if", TokenType::kIf},           {"elif", TokenType::kElif},
      {"else", TokenType::kElse},       {"while", TokenType::kWhile},
      {"for", TokenType::kFor},         {"in", TokenType::kIn},
      {"break", TokenType::kBreak},     {"continue", TokenType::kContinue},
      {"pass", TokenType::kPass},       {"and", TokenType::kAnd},
      {"or", TokenType::kOr},           {"not", TokenType::kNot},
      {"True", TokenType::kTrue},       {"False", TokenType::kFalse},
      {"None", TokenType::kNone},
  };
  return kKeywords;
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  Result<std::vector<Token>> Run() {
    indents_.push_back(0);
    while (pos_ < src_.size()) {
      MRS_RETURN_IF_ERROR(LexLine());
    }
    // Close any open line and blocks.
    if (!tokens_.empty() && tokens_.back().type != TokenType::kNewline) {
      Emit(TokenType::kNewline);
    }
    while (indents_.back() > 0) {
      indents_.pop_back();
      Emit(TokenType::kDedent);
    }
    Emit(TokenType::kEof);
    return std::move(tokens_);
  }

 private:
  void Emit(TokenType type) {
    Token t;
    t.type = type;
    t.line = line_;
    t.column = column_;
    tokens_.push_back(std::move(t));
  }

  Status ErrorHere(const std::string& message) {
    return InvalidArgumentError("line " + std::to_string(line_) + ": " +
                                message);
  }

  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    ++column_;
    return c;
  }

  Status LexLine() {
    // Measure indentation (spaces only; tabs count as 8 to next stop).
    int indent = 0;
    size_t start = pos_;
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == ' ') {
        ++indent;
        ++pos_;
      } else if (c == '\t') {
        indent = (indent / 8 + 1) * 8;
        ++pos_;
      } else {
        break;
      }
    }
    // Blank line or comment-only line: skip entirely.
    if (pos_ >= src_.size() || src_[pos_] == '\n' || src_[pos_] == '#' ||
        src_[pos_] == '\r') {
      while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      if (pos_ < src_.size()) ++pos_;
      ++line_;
      column_ = 0;
      return Status::Ok();
    }
    (void)start;

    // Indent bookkeeping.
    if (indent > indents_.back()) {
      indents_.push_back(indent);
      Emit(TokenType::kIndent);
    } else {
      while (indent < indents_.back()) {
        indents_.pop_back();
        Emit(TokenType::kDedent);
      }
      if (indent != indents_.back()) {
        return ErrorHere("inconsistent dedent");
      }
    }

    // Tokens until end of line (parenthesized continuation supported).
    int paren_depth = 0;
    while (pos_ < src_.size()) {
      char c = Peek();
      if (c == '\n') {
        ++pos_;
        ++line_;
        column_ = 0;
        if (paren_depth > 0) continue;  // implicit line join
        Emit(TokenType::kNewline);
        return Status::Ok();
      }
      if (c == '\r' || c == ' ' || c == '\t') {
        Advance();
        continue;
      }
      if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        MRS_RETURN_IF_ERROR(LexNumber());
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        LexNameOrKeyword();
        continue;
      }
      if (c == '\'' || c == '"') {
        MRS_RETURN_IF_ERROR(LexString());
        continue;
      }
      // Operators / punctuation.
      Advance();
      char n = Peek();
      auto two = [&](TokenType t) {
        Advance();
        Emit(t);
      };
      switch (c) {
        case '(': ++paren_depth; Emit(TokenType::kLParen); break;
        case ')': --paren_depth; Emit(TokenType::kRParen); break;
        case '[': ++paren_depth; Emit(TokenType::kLBracket); break;
        case ']': --paren_depth; Emit(TokenType::kRBracket); break;
        case ',': Emit(TokenType::kComma); break;
        case ':': Emit(TokenType::kColon); break;
        case '+':
          if (n == '=') two(TokenType::kPlusAssign);
          else Emit(TokenType::kPlus);
          break;
        case '-':
          if (n == '=') two(TokenType::kMinusAssign);
          else Emit(TokenType::kMinus);
          break;
        case '*':
          if (n == '*') two(TokenType::kStarStar);
          else if (n == '=') two(TokenType::kStarAssign);
          else Emit(TokenType::kStar);
          break;
        case '/':
          if (n == '/') two(TokenType::kSlashSlash);
          else if (n == '=') two(TokenType::kSlashAssign);
          else Emit(TokenType::kSlash);
          break;
        case '%': Emit(TokenType::kPercent); break;
        case '<':
          if (n == '=') two(TokenType::kLessEq);
          else Emit(TokenType::kLess);
          break;
        case '>':
          if (n == '=') two(TokenType::kGreaterEq);
          else Emit(TokenType::kGreater);
          break;
        case '=':
          if (n == '=') two(TokenType::kEqEq);
          else Emit(TokenType::kAssign);
          break;
        case '!':
          if (n == '=') {
            two(TokenType::kNotEq);
          } else {
            return ErrorHere("unexpected '!'");
          }
          break;
        default:
          return ErrorHere(std::string("unexpected character '") + c + "'");
      }
    }
    Emit(TokenType::kNewline);
    return Status::Ok();
  }

  Status LexNumber() {
    size_t start = pos_;
    bool is_float = false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      Advance();
      while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
    } else if (Peek() == '.' &&
               !std::isalpha(static_cast<unsigned char>(Peek(1)))) {
      is_float = true;
      Advance();
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t save = pos_;
      Advance();
      if (Peek() == '+' || Peek() == '-') Advance();
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        is_float = true;
        while (std::isdigit(static_cast<unsigned char>(Peek()))) Advance();
      } else {
        pos_ = save;
      }
    }
    std::string_view text = src_.substr(start, pos_ - start);
    Token t;
    t.line = line_;
    t.column = column_;
    if (is_float) {
      auto v = ParseDouble(text);
      if (!v.has_value()) return ErrorHere("bad float literal");
      t.type = TokenType::kFloat;
      t.float_value = *v;
    } else {
      auto v = ParseInt64(text);
      if (!v.has_value()) return ErrorHere("bad int literal");
      t.type = TokenType::kInt;
      t.int_value = *v;
    }
    tokens_.push_back(std::move(t));
    return Status::Ok();
  }

  void LexNameOrKeyword() {
    size_t start = pos_;
    while (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_') {
      Advance();
    }
    std::string text(src_.substr(start, pos_ - start));
    Token t;
    t.line = line_;
    t.column = column_;
    auto it = Keywords().find(text);
    if (it != Keywords().end()) {
      t.type = it->second;
    } else {
      t.type = TokenType::kName;
      t.text = std::move(text);
    }
    tokens_.push_back(std::move(t));
  }

  Status LexString() {
    char quote = Advance();
    std::string out;
    while (true) {
      if (pos_ >= src_.size() || Peek() == '\n') {
        return ErrorHere("unterminated string literal");
      }
      char c = Advance();
      if (c == quote) break;
      if (c == '\\') {
        if (pos_ >= src_.size()) return ErrorHere("dangling escape");
        char e = Advance();
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '\\': out += '\\'; break;
          case '\'': out += '\''; break;
          case '"': out += '"'; break;
          default: return ErrorHere("unknown string escape");
        }
      } else {
        out += c;
      }
    }
    Token t;
    t.type = TokenType::kString;
    t.text = std::move(out);
    t.line = line_;
    t.column = column_;
    tokens_.push_back(std::move(t));
    return Status::Ok();
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 0;
  std::vector<int> indents_;
  std::vector<Token> tokens_;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace minipy
}  // namespace mrs
