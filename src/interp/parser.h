// MiniPy recursive-descent parser (Pratt expression parsing).
#pragma once

#include <memory>
#include <string_view>

#include "common/status.h"
#include "interp/ast.h"

namespace mrs {
namespace minipy {

/// Parse a complete module from source text.
Result<std::shared_ptr<Module>> Parse(std::string_view source);

}  // namespace minipy
}  // namespace mrs
