#include "interp/compiler.h"

#include <map>
#include <set>

#include "interp/parser.h"

namespace mrs {
namespace minipy {

namespace {

void CollectAssignedNames(const std::vector<StmtPtr>& body,
                          std::set<std::string>* out);

/// Collect every name assigned within a statement list (Python local rule).
void CollectAssignedNamesPtrs(const std::vector<const Stmt*>& body,
                              std::set<std::string>* out) {
  for (const Stmt* stmt : body) {
    switch (stmt->kind) {
      case Stmt::Kind::kAssign:
        if (stmt->index_base == nullptr) out->insert(stmt->target);
        break;
      case Stmt::Kind::kAugAssign:
        out->insert(stmt->target);
        break;
      case Stmt::Kind::kFor:
        out->insert(stmt->target);
        CollectAssignedNames(stmt->body, out);
        break;
      case Stmt::Kind::kWhile:
        CollectAssignedNames(stmt->body, out);
        break;
      case Stmt::Kind::kIf:
        for (const auto& arm : stmt->arm_bodies) CollectAssignedNames(arm, out);
        CollectAssignedNames(stmt->else_body, out);
        break;
      default:
        break;
    }
  }
}

void CollectAssignedNames(const std::vector<StmtPtr>& body,
                          std::set<std::string>* out) {
  std::vector<const Stmt*> ptrs;
  ptrs.reserve(body.size());
  for (const StmtPtr& s : body) ptrs.push_back(s.get());
  CollectAssignedNamesPtrs(ptrs, out);
}

class FunctionCompiler {
 public:
  FunctionCompiler(CompiledModule* module,
                   std::map<std::string, int>* global_slots,
                   const CompileOptions* options, bool is_top_level)
      : module_(module),
        global_slots_(global_slots),
        options_(options),
        top_level_(is_top_level) {}

  Result<CompiledFunction> Compile(const std::string& name,
                                   const std::vector<std::string>& params,
                                   const std::vector<const Stmt*>& body) {
    fn_.name = name;
    fn_.num_params = static_cast<int>(params.size());
    if (!top_level_) {
      for (const std::string& p : params) LocalSlot(p);
      std::set<std::string> assigned;
      CollectAssignedNamesPtrs(body, &assigned);
      for (const std::string& n : assigned) LocalSlot(n);
    }
    for (const Stmt* stmt : body) {
      MRS_RETURN_IF_ERROR(CompileStmt(*stmt));
    }
    Emit(Op::kReturnNone);
    fn_.num_locals = static_cast<int>(locals_.size());
    fn_.local_names.resize(locals_.size());
    for (const auto& [local_name, slot] : locals_) {
      fn_.local_names[static_cast<size_t>(slot)] = local_name;
    }
    return std::move(fn_);
  }

 private:
  int Emit(Op op, int32_t a = 0, int32_t b = 0) {
    fn_.code.push_back(Instruction{op, a, b, current_line_});
    return static_cast<int>(fn_.code.size()) - 1;
  }
  void Patch(int at, int32_t target) { fn_.code[static_cast<size_t>(at)].a = target; }
  int Here() const { return static_cast<int>(fn_.code.size()); }

  int AddConst(PyValue v) {
    fn_.constants.push_back(std::move(v));
    return static_cast<int>(fn_.constants.size()) - 1;
  }

  int LocalSlot(const std::string& name) {
    auto it = locals_.find(name);
    if (it != locals_.end()) return it->second;
    int slot = static_cast<int>(locals_.size());
    locals_[name] = slot;
    return slot;
  }
  bool HasLocal(const std::string& name) const {
    return locals_.find(name) != locals_.end();
  }

  int GlobalSlot(const std::string& name) {
    auto it = global_slots_->find(name);
    if (it != global_slots_->end()) return it->second;
    int slot = static_cast<int>(module_->global_names.size());
    module_->global_names.push_back(name);
    (*global_slots_)[name] = slot;
    return slot;
  }

  /// A synthetic local for loop desugaring (name cannot collide).
  int HiddenSlot() {
    int slot = static_cast<int>(locals_.size());
    locals_["$hidden" + std::to_string(slot)] = slot;
    return slot;
  }

  Status CompileStore(const std::string& name) {
    if (top_level_) {
      Emit(Op::kStoreGlobal, GlobalSlot(name));
    } else {
      Emit(Op::kStoreLocal, LocalSlot(name));
    }
    return Status::Ok();
  }

  Status CompileBlock(const std::vector<StmtPtr>& body) {
    for (const StmtPtr& stmt : body) {
      MRS_RETURN_IF_ERROR(CompileStmt(*stmt));
    }
    return Status::Ok();
  }

  Status CompileStmt(const Stmt& stmt) {
    if (stmt.line > 0) current_line_ = stmt.line;
    switch (stmt.kind) {
      case Stmt::Kind::kExpr:
        MRS_RETURN_IF_ERROR(CompileExpr(*stmt.expr));
        Emit(Op::kPop);
        return Status::Ok();
      case Stmt::Kind::kAssign:
        if (stmt.index_base != nullptr) {
          MRS_RETURN_IF_ERROR(CompileExpr(*stmt.index_base));
          MRS_RETURN_IF_ERROR(CompileExpr(*stmt.index_expr));
          MRS_RETURN_IF_ERROR(CompileExpr(*stmt.expr));
          Emit(Op::kStoreIndex);
          return Status::Ok();
        }
        MRS_RETURN_IF_ERROR(CompileExpr(*stmt.expr));
        return CompileStore(stmt.target);
      case Stmt::Kind::kAugAssign: {
        MRS_RETURN_IF_ERROR(CompileName(stmt.target, stmt.line));
        MRS_RETURN_IF_ERROR(CompileExpr(*stmt.expr));
        Emit(Op::kBinary, static_cast<int32_t>(stmt.aug_op));
        return CompileStore(stmt.target);
      }
      case Stmt::Kind::kReturn:
        if (top_level_) {
          return InvalidArgumentError("line " + std::to_string(stmt.line) +
                                      ": return outside function");
        }
        if (stmt.expr != nullptr) {
          MRS_RETURN_IF_ERROR(CompileExpr(*stmt.expr));
          Emit(Op::kReturn);
        } else {
          Emit(Op::kReturnNone);
        }
        return Status::Ok();
      case Stmt::Kind::kIf: {
        std::vector<int> end_jumps;
        for (size_t arm = 0; arm < stmt.arm_conds.size(); ++arm) {
          MRS_RETURN_IF_ERROR(CompileExpr(*stmt.arm_conds[arm]));
          int skip = Emit(Op::kJumpIfFalse);
          MRS_RETURN_IF_ERROR(CompileBlock(stmt.arm_bodies[arm]));
          end_jumps.push_back(Emit(Op::kJump));
          Patch(skip, Here());
        }
        if (!stmt.else_body.empty()) {
          MRS_RETURN_IF_ERROR(CompileBlock(stmt.else_body));
        }
        for (int j : end_jumps) Patch(j, Here());
        return Status::Ok();
      }
      case Stmt::Kind::kWhile: {
        int loop_start = Here();
        MRS_RETURN_IF_ERROR(CompileExpr(*stmt.cond));
        int exit_jump = Emit(Op::kJumpIfFalse);
        loop_stack_.push_back({loop_start, {}});
        MRS_RETURN_IF_ERROR(CompileBlock(stmt.body));
        Emit(Op::kJump, loop_start);
        Patch(exit_jump, Here());
        for (int b : loop_stack_.back().break_jumps) Patch(b, Here());
        loop_stack_.pop_back();
        return Status::Ok();
      }
      case Stmt::Kind::kFor: {
        if (top_level_) {
          return InvalidArgumentError(
              "line " + std::to_string(stmt.line) +
              ": for loops at module level are not supported");
        }
        // Desugar:
        //   $list = iterable; $i = 0
        //   loop: if $i >= len($list): exit
        //     target = $list[$i]; $i = $i + 1; body; jump loop
        int list_slot = HiddenSlot();
        int idx_slot = HiddenSlot();
        MRS_RETURN_IF_ERROR(CompileExpr(*stmt.cond));
        Emit(Op::kStoreLocal, list_slot);
        Emit(Op::kLoadConst, AddConst(PyValue(static_cast<int64_t>(0))));
        Emit(Op::kStoreLocal, idx_slot);
        int loop_start = Here();
        Emit(Op::kLoadLocal, idx_slot);
        Emit(Op::kLoadLocal, list_slot);
        Emit(Op::kLen);
        Emit(Op::kBinary, static_cast<int32_t>(BinOp::kLt));
        int exit_jump = Emit(Op::kJumpIfFalse);
        Emit(Op::kLoadLocal, list_slot);
        Emit(Op::kLoadLocal, idx_slot);
        Emit(Op::kIndex);
        Emit(Op::kStoreLocal, LocalSlot(stmt.target));
        Emit(Op::kLoadLocal, idx_slot);
        Emit(Op::kLoadConst, AddConst(PyValue(static_cast<int64_t>(1))));
        Emit(Op::kBinary, static_cast<int32_t>(BinOp::kAdd));
        Emit(Op::kStoreLocal, idx_slot);
        // `continue` must re-test via loop_start (index already advanced).
        loop_stack_.push_back({loop_start, {}});
        MRS_RETURN_IF_ERROR(CompileBlock(stmt.body));
        Emit(Op::kJump, loop_start);
        Patch(exit_jump, Here());
        for (int b : loop_stack_.back().break_jumps) Patch(b, Here());
        loop_stack_.pop_back();
        return Status::Ok();
      }
      case Stmt::Kind::kBreak: {
        if (loop_stack_.empty()) {
          return InvalidArgumentError("line " + std::to_string(stmt.line) +
                                      ": break outside loop");
        }
        loop_stack_.back().break_jumps.push_back(Emit(Op::kJump));
        return Status::Ok();
      }
      case Stmt::Kind::kContinue: {
        if (loop_stack_.empty()) {
          return InvalidArgumentError("line " + std::to_string(stmt.line) +
                                      ": continue outside loop");
        }
        Emit(Op::kJump, loop_stack_.back().continue_target);
        return Status::Ok();
      }
      case Stmt::Kind::kPass:
        return Status::Ok();
      case Stmt::Kind::kDef:
        return InvalidArgumentError("line " + std::to_string(stmt.line) +
                                    ": nested def is not supported");
    }
    return InternalError("unknown statement kind");
  }

  Status CompileName(const std::string& name, int line) {
    if (!top_level_ && HasLocal(name)) {
      Emit(Op::kLoadLocal, LocalSlot(name));
      return Status::Ok();
    }
    if (module_->FunctionIndex(name) >= 0) {
      return InvalidArgumentError("line " + std::to_string(line) +
                                  ": functions are not first-class values");
    }
    Emit(Op::kLoadGlobal, GlobalSlot(name));
    return Status::Ok();
  }

  Status CompileExpr(const Expr& expr) {
    if (expr.line > 0) current_line_ = expr.line;
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
        Emit(Op::kLoadConst, AddConst(PyValue(expr.int_value)));
        return Status::Ok();
      case Expr::Kind::kFloatLit:
        Emit(Op::kLoadConst, AddConst(PyValue(expr.float_value)));
        return Status::Ok();
      case Expr::Kind::kStringLit:
        Emit(Op::kLoadConst, AddConst(PyValue(expr.name)));
        return Status::Ok();
      case Expr::Kind::kBoolLit:
        Emit(Op::kLoadConst, AddConst(PyValue::Bool(expr.bool_value)));
        return Status::Ok();
      case Expr::Kind::kNoneLit:
        Emit(Op::kLoadConst, AddConst(PyValue()));
        return Status::Ok();
      case Expr::Kind::kName:
        return CompileName(expr.name, expr.line);
      case Expr::Kind::kBinary: {
        if (expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr) {
          MRS_RETURN_IF_ERROR(CompileExpr(*expr.lhs));
          int jump = Emit(expr.bin_op == BinOp::kAnd ? Op::kJumpIfFalsePeek
                                                     : Op::kJumpIfTruePeek);
          MRS_RETURN_IF_ERROR(CompileExpr(*expr.rhs));
          Patch(jump, Here());
          return Status::Ok();
        }
        MRS_RETURN_IF_ERROR(CompileExpr(*expr.lhs));
        MRS_RETURN_IF_ERROR(CompileExpr(*expr.rhs));
        Emit(Op::kBinary, static_cast<int32_t>(expr.bin_op));
        return Status::Ok();
      }
      case Expr::Kind::kUnary:
        MRS_RETURN_IF_ERROR(CompileExpr(*expr.lhs));
        Emit(Op::kUnary, static_cast<int32_t>(expr.un_op));
        return Status::Ok();
      case Expr::Kind::kCall: {
        for (const ExprPtr& arg : expr.args) {
          MRS_RETURN_IF_ERROR(CompileExpr(*arg));
        }
        int fn_index = module_->FunctionIndex(expr.name);
        if (fn_index >= 0) {
          Emit(Op::kCallUser, fn_index, static_cast<int32_t>(expr.args.size()));
        } else if (IsBuiltin(expr.name) ||
                   options_->host_functions.count(expr.name) > 0) {
          Emit(Op::kCallBuiltin, AddConst(PyValue(expr.name)),
               static_cast<int32_t>(expr.args.size()));
        } else {
          return InvalidArgumentError("line " + std::to_string(expr.line) +
                                      ": no function named '" + expr.name +
                                      "'");
        }
        return Status::Ok();
      }
      case Expr::Kind::kListLit:
        for (const ExprPtr& elem : expr.args) {
          MRS_RETURN_IF_ERROR(CompileExpr(*elem));
        }
        Emit(Op::kBuildList, static_cast<int32_t>(expr.args.size()));
        return Status::Ok();
      case Expr::Kind::kIndex:
        MRS_RETURN_IF_ERROR(CompileExpr(*expr.lhs));
        MRS_RETURN_IF_ERROR(CompileExpr(*expr.rhs));
        Emit(Op::kIndex);
        return Status::Ok();
    }
    return InternalError("unknown expression kind");
  }

  struct LoopContext {
    int continue_target;
    std::vector<int> break_jumps;
  };

  CompiledModule* module_;
  std::map<std::string, int>* global_slots_;
  const CompileOptions* options_;
  bool top_level_;
  CompiledFunction fn_;
  std::map<std::string, int> locals_;
  std::vector<LoopContext> loop_stack_;
  int32_t current_line_ = 0;
};

}  // namespace

Result<std::shared_ptr<CompiledModule>> CompileModule(
    const Module& module, const CompileOptions& options) {
  auto compiled = std::make_shared<CompiledModule>();
  std::map<std::string, int> global_slots;

  // Pre-register user functions so forward calls resolve.
  std::vector<const Stmt*> defs;
  for (const StmtPtr& stmt : module.body) {
    if (stmt->kind == Stmt::Kind::kDef) {
      CompiledFunction placeholder;
      placeholder.name = stmt->target;
      compiled->functions.push_back(std::move(placeholder));
      defs.push_back(stmt.get());
    }
  }

  for (const Stmt* def : defs) {
    FunctionCompiler fc(compiled.get(), &global_slots, &options,
                        /*is_top_level=*/false);
    std::vector<const Stmt*> body;
    body.reserve(def->body.size());
    for (const StmtPtr& s : def->body) body.push_back(s.get());
    MRS_ASSIGN_OR_RETURN(CompiledFunction fn,
                         fc.Compile(def->target, def->params, body));
    int index = compiled->FunctionIndex(def->target);
    compiled->functions[static_cast<size_t>(index)] = std::move(fn);
  }

  // Top-level non-def statements.
  std::vector<const Stmt*> top;
  for (const StmtPtr& stmt : module.body) {
    if (stmt->kind != Stmt::Kind::kDef) top.push_back(stmt.get());
  }
  FunctionCompiler fc(compiled.get(), &global_slots, &options,
                      /*is_top_level=*/true);
  MRS_ASSIGN_OR_RETURN(compiled->top_level, fc.Compile("__main__", {}, top));
  return compiled;
}

Result<std::shared_ptr<CompiledModule>> CompileSource(
    std::string_view source, const CompileOptions& options) {
  MRS_ASSIGN_OR_RETURN(std::shared_ptr<Module> module, Parse(source));
  return CompileModule(*module, options);
}

}  // namespace minipy
}  // namespace mrs
