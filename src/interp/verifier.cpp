#include "interp/verifier.h"

#include <deque>

namespace mrs {
namespace minipy {

std::string VerifyIssue::ToString() const {
  std::string out = code + " in " + function;
  if (pc >= 0) out += " at pc " + std::to_string(pc);
  out += ": " + message;
  return out;
}

namespace {

constexpr int kMaxOp = static_cast<int>(Op::kLen);
constexpr int kMaxBinOp = static_cast<int>(BinOp::kOr);
constexpr int kMaxUnOp = static_cast<int>(UnOp::kNot);

class FunctionVerifier {
 public:
  FunctionVerifier(const CompiledModule& module, const CompiledFunction& fn,
                   const std::set<std::string>& hosts,
                   std::vector<VerifyIssue>* issues)
      : module_(module), fn_(fn), hosts_(hosts), issues_(issues) {}

  /// Returns the function's maximum operand-stack depth, or -1 on any
  /// issue.
  int Run() {
    size_t before = issues_->size();
    if (fn_.num_params < 0 || fn_.num_locals < 0 ||
        fn_.num_params > fn_.num_locals) {
      Issue("MBC507", -1,
            "invalid locals layout: " + std::to_string(fn_.num_params) +
                " params, " + std::to_string(fn_.num_locals) + " locals");
    }
    // Operand/target bounds hold for every instruction, reachable or not:
    // a frame with garbage anywhere is untrusted, and checking everything
    // keeps the mutated-frame corpus honest.
    for (size_t pc = 0; pc < fn_.code.size(); ++pc) {
      CheckStatic(static_cast<int>(pc), fn_.code[pc]);
    }
    if (issues_->size() != before) return -1;
    return SimulateStack() ? max_stack_ : -1;
  }

 private:
  void Issue(const char* code, int pc, std::string message) {
    issues_->push_back(VerifyIssue{code, fn_.name, pc, std::move(message)});
  }

  bool InBounds(int32_t v, size_t size) {
    return v >= 0 && static_cast<size_t>(v) < size;
  }

  void CheckStatic(int pc, const Instruction& ins) {
    int op = static_cast<int>(ins.op);
    if (op < 0 || op > kMaxOp) {
      Issue("MBC501", pc, "unknown opcode " + std::to_string(op));
      return;
    }
    switch (ins.op) {
      case Op::kLoadConst:
        if (!InBounds(ins.a, fn_.constants.size())) {
          Issue("MBC502", pc,
                "constant index " + std::to_string(ins.a) + " out of bounds");
        }
        break;
      case Op::kLoadLocal:
      case Op::kStoreLocal:
        if (!InBounds(ins.a, static_cast<size_t>(fn_.num_locals))) {
          Issue("MBC502", pc,
                "local slot " + std::to_string(ins.a) + " out of bounds");
        }
        break;
      case Op::kLoadGlobal:
      case Op::kStoreGlobal:
        if (!InBounds(ins.a, module_.global_names.size())) {
          Issue("MBC502", pc,
                "global slot " + std::to_string(ins.a) + " out of bounds");
        }
        break;
      case Op::kBinary:
        if (ins.a < 0 || ins.a > kMaxBinOp) {
          Issue("MBC502", pc, "invalid binary op " + std::to_string(ins.a));
        }
        break;
      case Op::kUnary:
        if (ins.a < 0 || ins.a > kMaxUnOp) {
          Issue("MBC502", pc, "invalid unary op " + std::to_string(ins.a));
        }
        break;
      case Op::kJump:
      case Op::kJumpIfFalse:
      case Op::kJumpIfFalsePeek:
      case Op::kJumpIfTruePeek:
        // Target == code size is legal: the dispatch loop exits and the
        // frame returns None, exactly like falling off the end.
        if (ins.a < 0 || static_cast<size_t>(ins.a) > fn_.code.size()) {
          Issue("MBC503", pc,
                "jump target " + std::to_string(ins.a) + " out of bounds");
        }
        break;
      case Op::kCallUser: {
        if (!InBounds(ins.a, module_.functions.size())) {
          Issue("MBC502", pc,
                "function index " + std::to_string(ins.a) + " out of bounds");
          break;
        }
        const CompiledFunction& callee =
            module_.functions[static_cast<size_t>(ins.a)];
        if (ins.b < 0 || ins.b != callee.num_params) {
          Issue("MBC506", pc,
                "call to " + callee.name + " with " + std::to_string(ins.b) +
                    " args, expects " + std::to_string(callee.num_params));
        }
        break;
      }
      case Op::kCallBuiltin: {
        if (!InBounds(ins.a, fn_.constants.size()) ||
            !fn_.constants[static_cast<size_t>(ins.a)].is_string()) {
          Issue("MBC506", pc, "builtin callee is not a string constant");
          break;
        }
        const std::string& name =
            fn_.constants[static_cast<size_t>(ins.a)].AsString();
        if (!IsBuiltin(name) && hosts_.find(name) == hosts_.end()) {
          Issue("MBC506", pc, "unknown builtin '" + name + "'");
        }
        if (ins.b < 0) {
          Issue("MBC506", pc, "negative argc " + std::to_string(ins.b));
        }
        break;
      }
      case Op::kBuildList:
        if (ins.a < 0) {
          Issue("MBC502", pc,
                "negative list length " + std::to_string(ins.a));
        }
        break;
      default:
        break;  // no operands
    }
  }

  /// Abstract interpretation: propagate the operand-stack depth along all
  /// control-flow edges from entry.  Every reachable instruction gets
  /// exactly one depth; disagreement at a merge is MBC505, dipping below
  /// zero is MBC504.
  bool SimulateStack() {
    const size_t n = fn_.code.size();
    std::vector<int> depth_at(n + 1, -1);  // -1 = not yet reached
    std::deque<size_t> worklist;
    depth_at[0] = 0;
    worklist.push_back(0);
    size_t before = issues_->size();

    auto flow = [&](size_t target, int depth) {
      if (depth_at[target] == -1) {
        depth_at[target] = depth;
        if (target < n) worklist.push_back(target);
      } else if (depth_at[target] != depth) {
        Issue("MBC505", static_cast<int>(target),
              "inconsistent stack depth at merge: " +
                  std::to_string(depth_at[target]) + " vs " +
                  std::to_string(depth));
      }
    };

    while (!worklist.empty() && issues_->size() == before) {
      size_t pc = worklist.front();
      worklist.pop_front();
      int depth = depth_at[pc];
      const Instruction& ins = fn_.code[pc];

      auto need = [&](int k) {
        if (depth < k) {
          Issue("MBC504", static_cast<int>(pc),
                "stack underflow: depth " + std::to_string(depth) +
                    ", need " + std::to_string(k));
          return false;
        }
        return true;
      };
      auto note = [&](int d) {
        if (d > max_stack_) max_stack_ = d;
      };

      switch (ins.op) {
        case Op::kLoadConst:
        case Op::kLoadLocal:
        case Op::kLoadGlobal:
          note(depth + 1);
          flow(pc + 1, depth + 1);
          break;
        case Op::kStoreLocal:
        case Op::kStoreGlobal:
        case Op::kPop:
          if (need(1)) flow(pc + 1, depth - 1);
          break;
        case Op::kBinary:
          if (need(2)) flow(pc + 1, depth - 1);
          break;
        case Op::kUnary:
        case Op::kLen:
          if (need(1)) flow(pc + 1, depth);
          break;
        case Op::kJump:
          flow(static_cast<size_t>(ins.a), depth);
          break;
        case Op::kJumpIfFalse:
          if (need(1)) {
            flow(static_cast<size_t>(ins.a), depth - 1);
            flow(pc + 1, depth - 1);
          }
          break;
        case Op::kJumpIfFalsePeek:
        case Op::kJumpIfTruePeek:
          // Branch taken keeps the tested value; fallthrough pops it.
          if (need(1)) {
            flow(static_cast<size_t>(ins.a), depth);
            flow(pc + 1, depth - 1);
          }
          break;
        case Op::kCallUser:
        case Op::kCallBuiltin:
          if (need(ins.b)) {
            note(depth - ins.b + 1);
            flow(pc + 1, depth - ins.b + 1);
          }
          break;
        case Op::kReturn:
          need(1);
          break;  // terminal
        case Op::kReturnNone:
          break;  // terminal
        case Op::kBuildList:
          if (need(ins.a)) {
            note(depth - ins.a + 1);
            flow(pc + 1, depth - ins.a + 1);
          }
          break;
        case Op::kIndex:
          if (need(2)) flow(pc + 1, depth - 1);
          break;
        case Op::kStoreIndex:
          if (need(3)) flow(pc + 1, depth - 3);
          break;
      }
    }
    return issues_->size() == before;
  }

  const CompiledModule& module_;
  const CompiledFunction& fn_;
  const std::set<std::string>& hosts_;
  std::vector<VerifyIssue>* issues_;
  int max_stack_ = 0;
};

int VerifyFunction(const CompiledModule& module, const CompiledFunction& fn,
                   const std::set<std::string>& hosts,
                   std::vector<VerifyIssue>* issues) {
  return FunctionVerifier(module, fn, hosts, issues).Run();
}

}  // namespace

std::vector<VerifyIssue> VerifyCompiledModule(
    const CompiledModule& module, const std::set<std::string>& host_functions) {
  std::vector<VerifyIssue> issues;
  for (const CompiledFunction& fn : module.functions) {
    VerifyFunction(module, fn, host_functions, &issues);
  }
  VerifyFunction(module, module.top_level, host_functions, &issues);
  return issues;
}

Status VerifyAndMark(CompiledModule& module,
                     const std::set<std::string>& host_functions) {
  std::vector<VerifyIssue> issues;
  std::vector<int> depths;
  depths.reserve(module.functions.size());
  for (const CompiledFunction& fn : module.functions) {
    depths.push_back(VerifyFunction(module, fn, host_functions, &issues));
  }
  int top_depth =
      VerifyFunction(module, module.top_level, host_functions, &issues);
  if (!issues.empty()) {
    std::string message = "bytecode verification failed: ";
    size_t show = issues.size() < 3 ? issues.size() : 3;
    for (size_t i = 0; i < show; ++i) {
      if (i > 0) message += "; ";
      message += issues[i].ToString();
    }
    if (issues.size() > show) {
      message += " (+" + std::to_string(issues.size() - show) + " more)";
    }
    return InvalidArgumentError(message);
  }
  for (size_t i = 0; i < module.functions.size(); ++i) {
    module.functions[i].max_stack = depths[i];
  }
  module.top_level.max_stack = top_depth;
  module.verified = true;
  return Status::Ok();
}

}  // namespace minipy
}  // namespace mrs
