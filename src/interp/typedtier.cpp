#include "interp/typedtier.h"

#include <cstdint>
#include <limits>

namespace mrs {
namespace minipy {

namespace {

bool IsIntLike(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kBool;
}

/// Types an eligible function may carry in its rows: concrete unboxed
/// numerics, None (a typed hole whose value is never computed with), and
/// bottom (claimed-unreachable data).  Str/list/⊤ end eligibility.
bool SlotTypeOk(ValueType t) {
  return t == ValueType::kBottom || t == ValueType::kNone || IsIntLike(t) ||
         t == ValueType::kFloat;
}

bool IsReturnableType(ValueType t) {
  return t == ValueType::kNone || IsIntLike(t) || t == ValueType::kFloat;
}

BinOp MirrorCompare(BinOp op) {
  switch (op) {
    case BinOp::kLt: return BinOp::kGt;
    case BinOp::kLe: return BinOp::kGe;
    case BinOp::kGt: return BinOp::kLt;
    case BinOp::kGe: return BinOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

bool IsCompare(BinOp op) {
  return op == BinOp::kLt || op == BinOp::kLe || op == BinOp::kGt ||
         op == BinOp::kGe || op == BinOp::kEq || op == BinOp::kNe;
}

struct Desc {
  enum class Kind { kSlot, kConstI, kConstF };
  Kind kind = Kind::kSlot;
  int slot = 0;       // kSlot: local slot or canonical stack slot
  int64_t ival = 0;   // kConstI (bools are 0/1, None is 0)
  double fval = 0.0;  // kConstF
  ValueType type = ValueType::kNone;
};

class Translator {
 public:
  Translator(const CompiledModule& module, const TypeFactTable& table,
             int fn_index)
      : module_(module),
        table_(table),
        fn_(module.functions[static_cast<size_t>(fn_index)]),
        facts_(table.functions[static_cast<size_t>(fn_index)]) {}

  bool Translate(TypedFunction* out) {
    out->eligible = false;
    out->name = fn_.name;
    out->num_params = fn_.num_params;
    out->num_locals = fn_.num_locals;
    out->num_slots = fn_.num_locals + fn_.max_stack;
    out->ret = facts_.ret;
    out->param_types = facts_.params;
    out->global_guard = facts_.global_reads;

    if (!IsReturnableType(facts_.ret)) return false;
    for (ValueType t : facts_.params) {
      if (!IsIntLike(t) && t != ValueType::kFloat) return false;
    }
    for (const auto& [slot, t] : facts_.global_reads) {
      (void)slot;
      if (!IsIntLike(t) && t != ValueType::kFloat) return false;
    }
    if (fn_.code.empty()) return false;
    for (const TypeRow& row : facts_.rows) {
      if (!row.reachable) continue;
      for (ValueType t : row.locals) {
        if (!SlotTypeOk(t)) return false;
      }
      for (ValueType t : row.stack) {
        if (!SlotTypeOk(t)) return false;
      }
    }

    ComputeLabels();

    const int n = static_cast<int>(fn_.code.size());
    tpc_of_.assign(static_cast<size_t>(n), -1);
    bool falls_through = true;  // into pc 0 from entry
    for (int pc = 0; pc < n; ++pc) {
      const TypeRow& row = facts_.rows[static_cast<size_t>(pc)];
      if (!row.reachable) {
        falls_through = false;
        continue;
      }
      if (is_label_[static_cast<size_t>(pc)]) {
        if (falls_through) FlushAll();
        tpc_of_[static_cast<size_t>(pc)] = Here();
        ResetFromRow(row);
        last_write_ = -1;
      } else {
        tpc_of_[static_cast<size_t>(pc)] = Here();
      }
      if (!TranslateOne(pc, row, &falls_through)) return false;
    }
    if (falls_through) {
      // Execution can run off the end: the generic loop returns None.
      if (facts_.ret != ValueType::kNone) return false;
      Emit(TOp::kRetNone, 0, 0, 0);
    }

    for (const auto& [instr, target_pc] : patches_) {
      int tpc = tpc_of_[static_cast<size_t>(target_pc)];
      if (tpc < 0) return false;  // jump into claimed-unreachable code
      code_[static_cast<size_t>(instr)].a = tpc;
    }

    out->code = std::move(code_);
    out->generic_calls = std::move(generic_calls_);
    out->eligible = true;
    return true;
  }

 private:
  int canon(size_t pos) const {
    return fn_.num_locals + static_cast<int>(pos);
  }
  int Here() const { return static_cast<int>(code_.size()); }

  int Emit(TOp op, int32_t a, int32_t b, int32_t c) {
    TInstr t;
    t.op = op;
    t.a = a;
    t.b = b;
    t.c = c;
    code_.push_back(t);
    last_write_ = Here() - 1;
    return last_write_;
  }
  int EmitImm(TOp op, int32_t a, int32_t b, Slot imm) {
    int at = Emit(op, a, b, 0);
    code_[static_cast<size_t>(at)].imm = imm;
    return at;
  }
  int EmitCmp(TOp op, BinOp cmp, int32_t a, int32_t b, int32_t c, Slot imm) {
    int at = Emit(op, a, b, c);
    code_[static_cast<size_t>(at)].cmp = cmp;
    code_[static_cast<size_t>(at)].imm = imm;
    return at;
  }

  void ComputeLabels() {
    is_label_.assign(fn_.code.size(), false);
    for (size_t pc = 0; pc < fn_.code.size(); ++pc) {
      if (!facts_.rows[pc].reachable) continue;
      const Instruction& ins = fn_.code[pc];
      switch (ins.op) {
        case Op::kJump:
        case Op::kJumpIfFalse:
        case Op::kJumpIfFalsePeek:
        case Op::kJumpIfTruePeek:
          if (ins.a >= 0 && static_cast<size_t>(ins.a) < is_label_.size()) {
            is_label_[static_cast<size_t>(ins.a)] = true;
          }
          break;
        default:
          break;
      }
    }
  }

  void ResetFromRow(const TypeRow& row) {
    descs_.clear();
    for (size_t k = 0; k < row.stack.size(); ++k) {
      Desc d;
      d.kind = Desc::Kind::kSlot;
      d.slot = canon(k);
      d.type = row.stack[k];
      descs_.push_back(d);
    }
  }

  /// Materialize the descriptor at stack position `pos` into its
  /// canonical slot.
  void Materialize(size_t pos) {
    Desc& d = descs_[pos];
    const int target = canon(pos);
    switch (d.kind) {
      case Desc::Kind::kConstI:
        EmitImm(TOp::kLoadI, target, 0, Slot{.i = d.ival});
        break;
      case Desc::Kind::kConstF: {
        Slot s;
        s.d = d.fval;
        EmitImm(TOp::kLoadF, target, 0, s);
        break;
      }
      case Desc::Kind::kSlot:
        if (d.slot == target) return;
        Emit(TOp::kMov, target, d.slot, 0);
        break;
    }
    d.kind = Desc::Kind::kSlot;
    d.slot = target;
  }

  void FlushAll() {
    for (size_t i = 0; i < descs_.size(); ++i) Materialize(i);
  }

  bool AllCanonical() const {
    for (size_t i = 0; i < descs_.size(); ++i) {
      if (descs_[i].kind != Desc::Kind::kSlot ||
          descs_[i].slot != canon(i)) {
        return false;
      }
    }
    return true;
  }

  Desc Pop() {
    Desc d = descs_.back();
    descs_.pop_back();
    return d;
  }

  /// Materialize a popped descriptor at the first free position (the one
  /// it just vacated) and return the slot holding it.
  int HomeSlot(Desc* d) {
    if (d->kind == Desc::Kind::kSlot) return d->slot;
    const int target = canon(descs_.size());
    if (d->kind == Desc::Kind::kConstI) {
      EmitImm(TOp::kLoadI, target, 0, Slot{.i = d->ival});
    } else {
      Slot s;
      s.d = d->fval;
      EmitImm(TOp::kLoadF, target, 0, s);
    }
    d->kind = Desc::Kind::kSlot;
    d->slot = target;
    return target;
  }

  /// Slot holding `d` as a double, emitting kCvtIF for int-likes.  The
  /// scratch slot is the canonical slot of stack position `scratch_pos`.
  int FloatSlot(Desc* d, size_t scratch_pos) {
    if (d->type == ValueType::kFloat) return HomeSlot(d);
    const int src = HomeSlot(d);
    const int target = canon(scratch_pos);
    Emit(TOp::kCvtIF, target, src, 0);
    return target;
  }

  bool TranslateOne(int pc, const TypeRow& row, bool* falls_through) {
    const Instruction& ins = fn_.code[static_cast<size_t>(pc)];
    *falls_through = true;
    switch (ins.op) {
      case Op::kLoadConst: {
        const PyValue& v = fn_.constants[static_cast<size_t>(ins.a)];
        Desc d;
        switch (v.type()) {
          case PyValue::Type::kInt:
            d.kind = Desc::Kind::kConstI;
            d.ival = v.AsInt();
            d.type = ValueType::kInt;
            break;
          case PyValue::Type::kBool:
            d.kind = Desc::Kind::kConstI;
            d.ival = v.AsInt();
            d.type = ValueType::kBool;
            break;
          case PyValue::Type::kFloat:
            d.kind = Desc::Kind::kConstF;
            d.fval = v.AsFloat();
            d.type = ValueType::kFloat;
            break;
          case PyValue::Type::kNone:
            d.kind = Desc::Kind::kConstI;
            d.ival = 0;
            d.type = ValueType::kNone;
            break;
          default:
            return false;  // str/list constants stay generic
        }
        descs_.push_back(d);
        return true;
      }
      case Op::kLoadLocal: {
        Desc d;
        d.kind = Desc::Kind::kSlot;
        d.slot = ins.a;
        d.type = row.locals[static_cast<size_t>(ins.a)];
        descs_.push_back(d);
        return true;
      }
      case Op::kStoreLocal:
        return TranslateStoreLocal(ins.a);
      case Op::kLoadGlobal: {
        const ValueType t = facts_.GlobalType(ins.a);
        if (!IsIntLike(t) && t != ValueType::kFloat) return false;
        const int dst = canon(descs_.size());
        Emit(t == ValueType::kFloat ? TOp::kLoadGF : TOp::kLoadGI, dst,
             ins.a, 0);
        Desc d;
        d.kind = Desc::Kind::kSlot;
        d.slot = dst;
        d.type = t;
        descs_.push_back(d);
        return true;
      }
      case Op::kStoreGlobal:
        return false;  // only top-level code stores globals; stay generic
      case Op::kBinary:
        return TranslateBinary(static_cast<BinOp>(ins.a));
      case Op::kUnary:
        return TranslateUnary(static_cast<UnOp>(ins.a));
      case Op::kJump:
        FlushAll();
        patches_.emplace_back(Emit(TOp::kJump, 0, 0, 0), ins.a);
        *falls_through = false;
        return true;
      case Op::kJumpIfFalse:
        return TranslateBranch(ins.a);
      case Op::kJumpIfFalsePeek:
      case Op::kJumpIfTruePeek: {
        // Branch path keeps the value (it is in its canonical slot after
        // the flush); fall-through pops it.
        Desc& top = descs_.back();
        if (!IsIntLike(top.type) && top.type != ValueType::kFloat) {
          return false;
        }
        FlushAll();
        const int cond_slot = canon(descs_.size() - 1);
        const bool is_float = top.type == ValueType::kFloat;
        TOp op;
        if (ins.op == Op::kJumpIfFalsePeek) {
          op = is_float ? TOp::kBrFalseF : TOp::kBrFalseI;
        } else {
          op = is_float ? TOp::kBrTrueF : TOp::kBrTrueI;
        }
        patches_.emplace_back(Emit(op, 0, cond_slot, 0), ins.a);
        last_write_ = -1;
        descs_.pop_back();
        return true;
      }
      case Op::kPop:
        Pop();
        return true;
      case Op::kCallUser:
        return TranslateCall(ins.a, ins.b);
      case Op::kCallBuiltin:
        return false;  // builtins/host functions stay generic
      case Op::kReturn: {
        Desc d = Pop();
        if (d.kind == Desc::Kind::kConstI) {
          EmitImm(TOp::kRetImm, 0, 0, Slot{.i = d.ival});
        } else if (d.kind == Desc::Kind::kConstF) {
          Slot s;
          s.d = d.fval;
          EmitImm(TOp::kRetImm, 0, 0, s);
        } else {
          Emit(TOp::kRet, 0, d.slot, 0);
        }
        *falls_through = false;
        return true;
      }
      case Op::kReturnNone:
        Emit(TOp::kRetNone, 0, 0, 0);
        *falls_through = false;
        return true;
      case Op::kBuildList:
      case Op::kIndex:
      case Op::kStoreIndex:
      case Op::kLen:
        return false;  // list/str machinery stays generic
    }
    return false;
  }

  bool TranslateStoreLocal(int32_t local) {
    Desc d = Pop();
    // A deeper descriptor still reading this local would observe the new
    // value; give such descriptors their own copy first.
    for (size_t i = 0; i < descs_.size(); ++i) {
      if (descs_[i].kind == Desc::Kind::kSlot && descs_[i].slot == local) {
        Materialize(i);
      }
    }
    switch (d.kind) {
      case Desc::Kind::kConstI:
        EmitImm(TOp::kLoadI, local, 0, Slot{.i = d.ival});
        return true;
      case Desc::Kind::kConstF: {
        Slot s;
        s.d = d.fval;
        EmitImm(TOp::kLoadF, local, 0, s);
        return true;
      }
      case Desc::Kind::kSlot:
        break;
    }
    if (d.slot == local) return true;  // x = x
    // Retarget the producer when the value lives in a dead temp the last
    // emitted instruction just wrote — the classic store-elimination
    // peephole (a = b + c instead of t = b + c; a = t).
    if (d.slot >= fn_.num_locals && last_write_ == Here() - 1 &&
        code_[static_cast<size_t>(last_write_)].a == d.slot) {
      code_[static_cast<size_t>(last_write_)].a = local;
      last_write_ = -1;
      return true;
    }
    Emit(TOp::kMov, local, d.slot, 0);
    return true;
  }

  bool TranslateBinary(BinOp op) {
    if (op == BinOp::kPow || op == BinOp::kAnd || op == BinOp::kOr) {
      return false;
    }
    Desc b = Pop();
    Desc a = Pop();
    if (!IsIntLike(a.type) && a.type != ValueType::kFloat) return false;
    if (!IsIntLike(b.type) && b.type != ValueType::kFloat) return false;
    const int dst = canon(descs_.size());
    const ValueType result = BinaryResultType(op, a.type, b.type);

    if (IsCompare(op)) {
      if (!TranslateCompare(op, &a, &b, dst)) return false;
    } else if (IsIntLike(a.type) && IsIntLike(b.type)) {
      if (!TranslateIntArith(op, &a, &b, dst)) return false;
    } else {
      if (!TranslateFloatArith(op, &a, &b, dst)) return false;
    }

    Desc r;
    r.kind = Desc::Kind::kSlot;
    r.slot = dst;
    r.type = result;
    descs_.push_back(r);
    return true;
  }

  // The generic VM compares through int64 only when both operands are
  // ints; bool/bool also lands on an exact path (0/1 through doubles),
  // but int/bool mixes go through doubles — mirror that split so huge
  // ints compare identically in both tiers.
  bool CompareAsInt(ValueType ta, ValueType tb) const {
    return (ta == ValueType::kInt && tb == ValueType::kInt) ||
           (ta == ValueType::kBool && tb == ValueType::kBool);
  }

  bool TranslateCompare(BinOp op, Desc* a, Desc* b, int dst) {
    if (CompareAsInt(a->type, b->type)) {
      if (b->kind == Desc::Kind::kConstI) {
        EmitCmp(TOp::kCmpIC, op, dst, HomeSlot(a), 0, Slot{.i = b->ival});
      } else if (a->kind == Desc::Kind::kConstI) {
        EmitCmp(TOp::kCmpIC, MirrorCompare(op), dst, HomeSlot(b), 0,
                Slot{.i = a->ival});
      } else {
        EmitCmp(TOp::kCmpI, op, dst, a->slot, b->slot, Slot{.i = 0});
      }
      return true;
    }
    // Double comparison; convert const operands at translation time.
    if (b->kind != Desc::Kind::kSlot) {
      Slot imm;
      imm.d = ConstAsDouble(*b);
      EmitCmp(TOp::kCmpFC, op, dst, FloatSlot(a, descs_.size()), 0, imm);
      return true;
    }
    if (a->kind != Desc::Kind::kSlot) {
      Slot imm;
      imm.d = ConstAsDouble(*a);
      EmitCmp(TOp::kCmpFC, MirrorCompare(op), dst,
              FloatSlot(b, descs_.size() + 1), 0, imm);
      return true;
    }
    const int sa = FloatSlot(a, descs_.size());
    const int sb = FloatSlot(b, descs_.size() + 1);
    EmitCmp(TOp::kCmpF, op, dst, sa, sb, Slot{.i = 0});
    return true;
  }

  static double ConstAsDouble(const Desc& d) {
    return d.kind == Desc::Kind::kConstF ? d.fval
                                         : static_cast<double>(d.ival);
  }

  bool TranslateIntArith(BinOp op, Desc* a, Desc* b, int dst) {
    const bool b_const = b->kind == Desc::Kind::kConstI;
    const bool a_const = a->kind == Desc::Kind::kConstI;
    switch (op) {
      case BinOp::kAdd:
      case BinOp::kMul: {
        const TOp imm_op = op == BinOp::kAdd ? TOp::kAddIC : TOp::kMulIC;
        const TOp reg_op = op == BinOp::kAdd ? TOp::kAddI : TOp::kMulI;
        if (b_const) {
          EmitImm(imm_op, dst, HomeSlot(a), Slot{.i = b->ival});
        } else if (a_const) {  // commutative: fold the const side
          EmitImm(imm_op, dst, HomeSlot(b), Slot{.i = a->ival});
        } else {
          Emit(reg_op, dst, a->slot, b->slot);
        }
        return true;
      }
      case BinOp::kSub:
        if (b_const) {
          EmitImm(TOp::kSubIC, dst, HomeSlot(a), Slot{.i = b->ival});
        } else if (a_const) {
          EmitImm(TOp::kRSubIC, dst, HomeSlot(b), Slot{.i = a->ival});
        } else {
          Emit(TOp::kSubI, dst, a->slot, b->slot);
        }
        return true;
      case BinOp::kFloorDiv:
      case BinOp::kMod:
      case BinOp::kDiv: {
        TOp imm_op, reg_op;
        if (op == BinOp::kFloorDiv) {
          imm_op = TOp::kFloorDivIC;
          reg_op = TOp::kFloorDivI;
        } else if (op == BinOp::kMod) {
          imm_op = TOp::kModIC;
          reg_op = TOp::kModI;
        } else {
          imm_op = TOp::kDivIFC;
          reg_op = TOp::kDivIF;
        }
        // The const form elides the zero check, so a constant-zero
        // divisor must keep the register form (and its runtime error).
        if (b_const && b->ival != 0) {
          EmitImm(imm_op, dst, HomeSlot(a), Slot{.i = b->ival});
        } else {
          const int sa = HomeSlot(a);
          const int sb = HomeSlot(b);
          Emit(reg_op, dst, sa, sb);
        }
        return true;
      }
      default:
        return false;
    }
  }

  bool TranslateFloatArith(BinOp op, Desc* a, Desc* b, int dst) {
    const bool b_const = b->kind != Desc::Kind::kSlot;
    const bool a_const = a->kind != Desc::Kind::kSlot;
    TOp imm_op, reg_op;
    bool commutative = false;
    TOp rimm_op = TOp::kRetNone;  // sentinel: no reversed form
    switch (op) {
      case BinOp::kAdd:
        imm_op = TOp::kAddFC;
        reg_op = TOp::kAddF;
        commutative = true;
        break;
      case BinOp::kMul:
        imm_op = TOp::kMulFC;
        reg_op = TOp::kMulF;
        commutative = true;
        break;
      case BinOp::kSub:
        imm_op = TOp::kSubFC;
        reg_op = TOp::kSubF;
        rimm_op = TOp::kRSubFC;
        break;
      case BinOp::kDiv:
        imm_op = TOp::kDivFC;
        reg_op = TOp::kDivF;
        rimm_op = TOp::kRDivFC;
        break;
      case BinOp::kFloorDiv:
        imm_op = TOp::kRetNone;
        reg_op = TOp::kFloorDivF;
        break;
      case BinOp::kMod:
        imm_op = TOp::kRetNone;
        reg_op = TOp::kModF;
        break;
      default:
        return false;
    }
    auto imm_of = [](const Desc& d) {
      Slot s;
      s.d = ConstAsDouble(d);
      return s;
    };
    if (b_const && imm_op != TOp::kRetNone &&
        !(op == BinOp::kDiv && ConstAsDouble(*b) == 0.0)) {
      EmitImm(imm_op, dst, FloatSlot(a, descs_.size()), imm_of(*b));
      return true;
    }
    if (a_const && commutative && imm_op != TOp::kRetNone) {
      EmitImm(imm_op, dst, FloatSlot(b, descs_.size() + 1), imm_of(*a));
      return true;
    }
    if (a_const && rimm_op != TOp::kRetNone) {
      EmitImm(rimm_op, dst, FloatSlot(b, descs_.size() + 1), imm_of(*a));
      return true;
    }
    const int sa = FloatSlot(a, descs_.size());
    const int sb = FloatSlot(b, descs_.size() + 1);
    Emit(reg_op, dst, sa, sb);
    return true;
  }

  bool TranslateUnary(UnOp op) {
    Desc d = Pop();
    if (!IsIntLike(d.type) && d.type != ValueType::kFloat) return false;
    const int dst = canon(descs_.size());
    ValueType result;
    if (op == UnOp::kNot) {
      Emit(d.type == ValueType::kFloat ? TOp::kNotF : TOp::kNotI, dst,
           HomeSlot(&d), 0);
      result = ValueType::kBool;
    } else {
      Emit(d.type == ValueType::kFloat ? TOp::kNegF : TOp::kNegI, dst,
           HomeSlot(&d), 0);
      result = d.type == ValueType::kFloat ? ValueType::kFloat
                                           : ValueType::kInt;
    }
    Desc r;
    r.kind = Desc::Kind::kSlot;
    r.slot = dst;
    r.type = result;
    descs_.push_back(r);
    return true;
  }

  bool TranslateBranch(int32_t target) {
    Desc cond = Pop();
    if (!IsIntLike(cond.type) && cond.type != ValueType::kFloat) {
      return false;
    }
    // Fuse compare+branch when the condition is the value the last
    // emitted instruction computed and no other descriptor needs a flush
    // move (true at every loop head, where the stack below is empty).
    if (cond.kind == Desc::Kind::kSlot &&
        cond.slot == canon(descs_.size()) && last_write_ == Here() - 1 &&
        code_[static_cast<size_t>(last_write_)].a == cond.slot &&
        AllCanonical()) {
      TInstr& producer = code_[static_cast<size_t>(last_write_)];
      TOp fused;
      switch (producer.op) {
        case TOp::kCmpI: fused = TOp::kBrCmpFalseI; break;
        case TOp::kCmpF: fused = TOp::kBrCmpFalseF; break;
        case TOp::kCmpIC: fused = TOp::kBrCmpFalseIC; break;
        case TOp::kCmpFC: fused = TOp::kBrCmpFalseFC; break;
        default: fused = TOp::kRetNone; break;
      }
      if (fused != TOp::kRetNone) {
        producer.op = fused;
        // b/c/cmp/imm stay; a becomes the branch target.
        producer.a = 0;
        patches_.emplace_back(last_write_, target);
        last_write_ = -1;
        return true;
      }
    }
    FlushAll();
    const int slot = HomeSlot(&cond);
    patches_.emplace_back(
        Emit(cond.type == ValueType::kFloat ? TOp::kBrFalseF
                                            : TOp::kBrFalseI,
             0, slot, 0),
        target);
    last_write_ = -1;
    return true;
  }

  bool TranslateCall(int32_t callee_index, int32_t argc) {
    const CompiledFunction& callee =
        module_.functions[static_cast<size_t>(callee_index)];
    const FunctionFacts& callee_facts =
        table_.functions[static_cast<size_t>(callee_index)];
    if (argc != callee.num_params) return false;  // arity error at runtime
    if (static_cast<size_t>(argc) > descs_.size()) return false;

    const size_t first_pos = descs_.size() - static_cast<size_t>(argc);
    for (size_t i = first_pos; i < descs_.size(); ++i) Materialize(i);
    std::vector<ValueType> arg_types;
    arg_types.reserve(static_cast<size_t>(argc));
    for (size_t i = first_pos; i < descs_.size(); ++i) {
      arg_types.push_back(descs_[i].type);
    }
    descs_.resize(first_pos);

    const bool guard_match = arg_types == callee_facts.params &&
                             GlobalGuardCovered(facts_, callee_facts);
    const ValueType result =
        guard_match ? callee_facts.ret : ValueType::kTop;
    if (!IsReturnableType(result)) return false;

    GenericCallInfo info;
    info.fn_index = callee_index;
    info.arg_types = arg_types;
    info.result_type = result;
    const int gc_index = static_cast<int>(generic_calls_.size());
    generic_calls_.push_back(std::move(info));

    const int dst = canon(first_pos);
    if (guard_match) {
      // Direct typed call; flipped to kCallG afterwards if the callee
      // turns out ineligible (imm.i carries the generic-call metadata).
      EmitImm(TOp::kCallT, dst, callee_index, Slot{.i = gc_index});
      code_.back().c = dst;
    } else {
      Emit(TOp::kCallG, dst, gc_index, dst);
    }
    Desc r;
    r.kind = Desc::Kind::kSlot;
    r.slot = dst;
    r.type = result;
    descs_.push_back(r);
    return true;
  }

  const CompiledModule& module_;
  const TypeFactTable& table_;
  const CompiledFunction& fn_;
  const FunctionFacts& facts_;

  std::vector<TInstr> code_;
  std::vector<GenericCallInfo> generic_calls_;
  std::vector<Desc> descs_;
  std::vector<bool> is_label_;
  std::vector<int> tpc_of_;
  std::vector<std::pair<int, int>> patches_;  // (tinstr index, bytecode pc)
  int last_write_ = -1;
};

}  // namespace

TypedModule BuildTypedModule(const CompiledModule& module,
                             const TypeFactTable& table) {
  TypedModule typed;
  typed.functions.resize(module.functions.size());
  for (size_t i = 0; i < module.functions.size(); ++i) {
    Translator tr(module, table, static_cast<int>(i));
    if (!tr.Translate(&typed.functions[i])) {
      typed.functions[i].eligible = false;
      typed.functions[i].code.clear();
    }
  }
  // Direct calls were emitted assuming the callee would translate; where
  // it did not, demote them to guarded generic calls.
  for (TypedFunction& fn : typed.functions) {
    if (!fn.eligible) continue;
    for (TInstr& ins : fn.code) {
      if (ins.op == TOp::kCallT &&
          !typed.functions[static_cast<size_t>(ins.b)].eligible) {
        ins.op = TOp::kCallG;
        ins.b = static_cast<int32_t>(ins.imm.i);
      }
    }
  }
  return typed;
}

bool TypedGuardAccepts(const TypedFunction& fn,
                       const std::vector<PyValue>& args,
                       const std::vector<PyValue>& globals) {
  if (args.size() != fn.param_types.size()) return false;
  for (size_t i = 0; i < args.size(); ++i) {
    if (!TypeLe(TypeOf(args[i]), fn.param_types[i])) return false;
  }
  for (const auto& [slot, t] : fn.global_guard) {
    if (!TypeLe(TypeOf(globals[static_cast<size_t>(slot)]), t)) return false;
  }
  return true;
}

}  // namespace minipy
}  // namespace mrs
