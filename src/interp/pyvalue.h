// MiniPy runtime values and shared operator semantics.
//
// Both engines — the tree-walking interpreter ("CPython" stand-in) and the
// bytecode VM ("PyPy" stand-in) — operate on PyValue and must agree
// exactly; the operator semantics follow Python: / is true division,
// // floors, % takes the sign of the divisor, int+int stays int.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "interp/ast.h"

namespace mrs {
namespace minipy {

class PyValue;
using PyList = std::vector<PyValue>;

class PyValue {
 public:
  enum class Type : uint8_t { kNone, kBool, kInt, kFloat, kString, kList };

  PyValue() : type_(Type::kNone) {}
  static PyValue Bool(bool b) {
    PyValue v;
    v.type_ = Type::kBool;
    v.int_ = b ? 1 : 0;
    return v;
  }
  PyValue(int64_t i) : type_(Type::kInt), int_(i) {}       // NOLINT
  PyValue(double d) : type_(Type::kFloat), float_(d) {}    // NOLINT
  PyValue(std::string s)                                    // NOLINT
      : type_(Type::kString), str_(std::make_shared<std::string>(std::move(s))) {}
  PyValue(PyList list)                                      // NOLINT
      : type_(Type::kList), list_(std::make_shared<PyList>(std::move(list))) {}

  Type type() const { return type_; }
  bool is_none() const { return type_ == Type::kNone; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_float() const { return type_ == Type::kFloat; }
  bool is_numeric() const {
    return type_ == Type::kInt || type_ == Type::kFloat || type_ == Type::kBool;
  }
  bool is_string() const { return type_ == Type::kString; }
  bool is_list() const { return type_ == Type::kList; }

  int64_t AsInt() const { return type_ == Type::kFloat ? static_cast<int64_t>(float_) : int_; }
  double AsFloat() const { return type_ == Type::kFloat ? float_ : static_cast<double>(int_); }
  bool AsBool() const;  // Python truthiness
  const std::string& AsString() const { return *str_; }
  PyList& AsList() { return *list_; }
  const PyList& AsList() const { return *list_; }
  const std::shared_ptr<PyList>& list_ptr() const { return list_; }

  /// Python repr-ish rendering for str()/print and error messages.
  std::string Repr() const;

  std::string_view TypeName() const;

 private:
  Type type_;
  int64_t int_ = 0;
  double float_ = 0.0;
  std::shared_ptr<std::string> str_;
  std::shared_ptr<PyList> list_;
};

/// Apply a binary operator with Python semantics.  kAnd/kOr are handled by
/// the engines (short-circuit) and rejected here.
Result<PyValue> ApplyBinary(BinOp op, const PyValue& a, const PyValue& b);

/// Apply a unary operator.
Result<PyValue> ApplyUnary(UnOp op, const PyValue& v);

/// Structural equality (used by == and tests).
bool PyEquals(const PyValue& a, const PyValue& b);

/// Built-in functions shared by both engines: len, abs, int, float, str,
/// bool, min, max, range, append, print.  Returns NotFound for unknown
/// names so engines can fall through to user functions.
Result<PyValue> CallBuiltin(const std::string& name,
                            std::vector<PyValue>& args);
bool IsBuiltin(const std::string& name);

// Exact integer semantics shared between ApplyBinary and the VM's inline
// fast paths (Python floor division / sign-of-divisor modulo).
inline int64_t PyFloorDivInt(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}
inline int64_t PyModInt(int64_t a, int64_t b) {
  int64_t m = a % b;
  if (m != 0 && ((m < 0) != (b < 0))) m += b;
  return m;
}
/// Python float modulo (sign of the divisor), shared by ApplyBinary and
/// the typed tier so both produce bit-identical doubles.
inline double PyFModFloat(double a, double b) {
  double m = std::fmod(a, b);
  if (m != 0.0 && ((m < 0.0) != (b < 0.0))) m += b;
  return m;
}

}  // namespace minipy
}  // namespace mrs
