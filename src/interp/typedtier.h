// Typed, unboxed execution tier for MiniPy bytecode.
//
// BuildTypedModule translates each function whose checked type facts
// prove it monomorphically numeric into a register-style instruction
// stream over raw 8-byte slots (int64 or double, no PyValue boxing, no
// shared_ptr traffic).  The translation is a one-pass abstract
// "descriptor" walk of the stack machine: loads push descriptors
// instead of emitting code, so LOAD_LOCAL/LOAD_CONST feeding an ADD
// collapse into one three-address instruction (the superinstruction
// fusion the ROADMAP asks for), compare+branch pairs fuse into a single
// conditional branch, and a store retargets its producer's destination
// instead of emitting a move.
//
// Safety model: claims come from a TypeFactTable that passed
// CheckTypeFacts, and are conditional on the function's entry guard
// (parameter types + global types).  The VM checks the guard at every
// boundary into typed code and falls back to the generic loop when it
// fails (counted in mrs.vm.deopts) — so a function like add(a, b)
// inferred (int, int) still computes 1.5 + 2.0 correctly, just slowly.
// Functions the translator cannot prove out (lists, strings, kPow,
// builtins, type joins to ⊤) are simply left ineligible; ineligibility
// is always semantics-preserving.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interp/bytecode.h"
#include "interp/typefacts.h"

namespace mrs {
namespace minipy {

/// One unboxed value: int64 for int/bool (bools are 0/1), double for
/// float.  Which member is live is static, proven per slot per pc by the
/// checked facts — this is exactly the representation UBSan watches.
union Slot {
  int64_t i;
  double d;
};

enum class TOp : uint8_t {
  kLoadI,   // a = dst, imm.i           (also bool/None materialization)
  kLoadF,   // a = dst, imm.d
  kMov,     // a = dst, b = src         (raw 8-byte copy, type-agnostic)
  kCvtIF,   // a.d = double(b.i)        (int operand feeding a float op)
  kLoadGI,  // a.i = AsInt(globals[b])  (guard proved int/bool)
  kLoadGF,  // a.d = AsFloat(globals[b])

  // Three-address arithmetic: a = b OP c.
  kAddI, kSubI, kMulI,
  kFloorDivI, kModI,  // zero-checked: "division by zero"/"modulo by zero"
  kDivIF,             // int / int -> double (true division, zero-checked)
  kAddF, kSubF, kMulF,
  kFloorDivF, kModF,  // float floor-div / fmod semantics, zero-checked
  kDivF,

  // Constant-folded right operand: a = b OP imm.  Emitted only where the
  // constant makes the op total (divisor consts are never 0 here — a
  // constant-zero divisor keeps the register form and its runtime error).
  kAddIC, kSubIC, kMulIC,
  kFloorDivIC, kModIC, kDivIFC,   // imm.i != 0 by construction
  kRSubIC,                        // a = imm.i - b
  kAddFC, kSubFC, kMulFC, kDivFC, // imm.d != 0.0 for kDivFC
  kRSubFC, kRDivFC,               // imm.d OP b (slot divisor zero-checked)

  kNegI, kNegF,  // a = -b
  kNotI,         // a.i = (b.i == 0)
  kNotF,         // a.i = (b.d == 0.0)

  // Compares: a.i = bool(b CMP c) with cmp in TInstr::cmp.  The int form
  // requires both operands proven int (or both bool); every mixed or
  // float comparison goes through doubles, matching the generic VM's
  // fast-path/ApplyBinary split exactly.
  kCmpI, kCmpF,
  kCmpIC, kCmpFC,  // right operand in imm

  // Control flow.  Branch targets are typed-code indices (a).
  kJump,
  kBrFalseI,  // jump when b.i == 0
  kBrFalseF,  // jump when b.d == 0.0
  kBrTrueI,
  kBrTrueF,
  // Fused compare-and-branch: jump when (b CMP c/imm) is FALSE — the
  // negation is applied to the *result*, not the operator, so NaN
  // comparisons branch exactly like kCmp*+kBrFalseI would.
  kBrCmpFalseI, kBrCmpFalseF,
  kBrCmpFalseIC, kBrCmpFalseFC,

  // Calls.  Arguments sit in consecutive slots starting at c; the result
  // lands in a.  kCallT enters another typed function directly (guard
  // statically proven); kCallG boxes the arguments, runs the generic
  // path, and unboxes the result with a defensive type check (b indexes
  // TypedFunction::generic_calls).
  kCallT,
  kCallG,

  kRet,      // return slot b
  kRetImm,   // return imm (typed by the function's ret)
  kRetNone,
};

struct TInstr {
  TOp op;
  BinOp cmp = BinOp::kEq;  // kCmp*/kBrCmp* comparison operator
  int32_t a = 0;
  int32_t b = 0;
  int32_t c = 0;
  Slot imm{0};
};

/// Metadata for a call that leaves the typed tier (kCallG).
struct GenericCallInfo {
  int fn_index = 0;
  std::vector<ValueType> arg_types;  // claimed — how to box each slot
  ValueType result_type = ValueType::kTop;  // claimed — unbox + verify
};

struct TypedFunction {
  bool eligible = false;
  std::string name;
  int num_params = 0;
  int num_locals = 0;
  int num_slots = 0;  // locals + operand-stack area
  ValueType ret = ValueType::kNone;
  /// Entry guard (== FunctionFacts::params / global_reads of the checked
  /// table); the VM re-checks these against live values on every entry
  /// from outside typed code.
  std::vector<ValueType> param_types;
  std::vector<std::pair<int32_t, ValueType>> global_guard;
  std::vector<TInstr> code;
  std::vector<GenericCallInfo> generic_calls;
};

struct TypedModule {
  std::vector<TypedFunction> functions;  // parallel to module.functions
};

/// Translate every provably-numeric function.  `table` must have passed
/// CheckTypeFacts against `module`; functions that fail any eligibility
/// rule come back with eligible == false (and empty code).
TypedModule BuildTypedModule(const CompiledModule& module,
                             const TypeFactTable& table);

/// True when `args`/live globals satisfy the function's entry guard.
bool TypedGuardAccepts(const TypedFunction& fn,
                       const std::vector<PyValue>& args,
                       const std::vector<PyValue>& globals);

}  // namespace minipy
}  // namespace mrs
