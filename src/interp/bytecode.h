// MiniPy bytecode: instruction set and compiled-function model.
//
// The VM is the repo's "PyPy" stand-in: same language, same semantics, but
// compiled name resolution (slot-indexed locals and globals), switch
// dispatch, and inline int/float fast paths — the properties that make a
// tracing JIT fast on numeric loops, minus the actual JIT.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "interp/pyvalue.h"

namespace mrs {
namespace minipy {

enum class Op : uint8_t {
  kLoadConst,    // a: constant index
  kLoadLocal,    // a: slot
  kStoreLocal,   // a: slot
  kLoadGlobal,   // a: global slot
  kStoreGlobal,  // a: global slot
  kBinary,       // a: BinOp (not and/or)
  kUnary,        // a: UnOp
  kJump,         // a: absolute target
  kJumpIfFalse,  // a: target; pops condition
  kJumpIfFalsePeek,  // a: target; 'and': jump keeping value, else pop
  kJumpIfTruePeek,   // a: target; 'or'
  kPop,
  kCallUser,     // a: function index, b: argc
  kCallBuiltin,  // a: name-constant index, b: argc
  kReturn,       // pops return value
  kReturnNone,
  kBuildList,    // a: element count
  kIndex,        // stack: base, index -> value
  kStoreIndex,   // stack: base, index, value ->
  kLen,          // stack: list -> int (for-loop desugaring)
};

struct Instruction {
  Op op;
  int32_t a = 0;
  int32_t b = 0;
  /// Source line (1-based) of the statement/expression that emitted this
  /// instruction; 0 when unknown.  Debug info only — execution never reads
  /// it, diagnostics (analysis/typeinfer.h) do.
  int32_t line = 0;
};

struct CompiledFunction {
  std::string name;
  int num_params = 0;
  int num_locals = 0;
  std::vector<Instruction> code;
  std::vector<PyValue> constants;
  /// Maximum operand-stack depth, computed by the bytecode verifier
  /// (interp/verifier.h).  0 until verified.
  int max_stack = 0;
  /// Slot -> source name (params first, then assigned names, then $hiddenN
  /// loop temporaries).  Debug info for diagnostics; size == num_locals.
  std::vector<std::string> local_names;
};

struct TypeFactTable;  // interp/typefacts.h

struct CompiledModule {
  std::vector<CompiledFunction> functions;   // user functions
  CompiledFunction top_level;                // module init code
  std::vector<std::string> global_names;     // slot -> name
  /// Set by VerifyAndMark after the bytecode verifier proved every frame
  /// well-formed (operands in bounds, jump targets valid, stack depths
  /// consistent).  The VM's dispatch loop carries no per-instruction
  /// bounds checks, so Vm::LoadModule refuses modules that do not pass
  /// verification — the verified bit is what gates the unboxed numeric
  /// fast path on trusted frames only.
  bool verified = false;
  /// Optional per-function type facts (interp/typefacts.h), produced by
  /// analysis/typeinfer.h and *re-checked* by CheckTypeFacts before the VM
  /// builds its typed tier from them.  A module with no table (or a table
  /// that fails the check) still runs — on the generic loop only.
  std::shared_ptr<const TypeFactTable> type_facts;
  int FunctionIndex(const std::string& name) const {
    for (size_t i = 0; i < functions.size(); ++i) {
      if (functions[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace minipy
}  // namespace mrs
