#include "interp/vm.h"

#include "interp/verifier.h"

namespace mrs {
namespace minipy {

void Vm::RegisterHost(std::string name, HostFn fn) {
  host_[std::move(name)] = std::move(fn);
}

Status Vm::LoadSource(std::string_view source) {
  CompileOptions options;
  for (const auto& [name, fn] : host_) options.host_functions.insert(name);
  MRS_ASSIGN_OR_RETURN(std::shared_ptr<CompiledModule> module,
                       CompileSource(source, options));
  return LoadModule(std::move(module));
}

Status Vm::LoadModule(std::shared_ptr<CompiledModule> module) {
  if (!module->verified) {
    std::set<std::string> hosts;
    for (const auto& [name, fn] : host_) hosts.insert(name);
    MRS_RETURN_IF_ERROR(VerifyAndMark(*module, hosts));
  }
  module_ = std::move(module);
  globals_.assign(module_->global_names.size(), PyValue());
  Result<PyValue> init = RunFunction(module_->top_level, {});
  return init.ok() ? Status::Ok() : init.status();
}

Result<PyValue> Vm::GetGlobal(const std::string& name) const {
  for (size_t i = 0; i < module_->global_names.size(); ++i) {
    if (module_->global_names[i] == name) return globals_[i];
  }
  return NotFoundError("no global named " + name);
}

Result<PyValue> Vm::Call(const std::string& function,
                         std::vector<PyValue> args) {
  if (module_ == nullptr) return FailedPreconditionError("no module loaded");
  int index = module_->FunctionIndex(function);
  if (index < 0) return NotFoundError("no function named " + function);
  const CompiledFunction& fn = module_->functions[static_cast<size_t>(index)];
  if (static_cast<int>(args.size()) != fn.num_params) {
    return InvalidArgumentError(function + "() takes " +
                                std::to_string(fn.num_params) +
                                " arguments, got " +
                                std::to_string(args.size()));
  }
  return RunFunction(fn, std::move(args));
}

Result<PyValue> Vm::RunFunction(const CompiledFunction& fn,
                                std::vector<PyValue> args) {
  std::vector<PyValue> locals(static_cast<size_t>(fn.num_locals));
  for (size_t i = 0; i < args.size(); ++i) locals[i] = std::move(args[i]);
  std::vector<PyValue> stack;
  // The verifier computed the exact peak operand depth, so one reservation
  // covers the whole frame (LoadModule guarantees max_stack is filled in).
  stack.reserve(fn.max_stack > 0 ? static_cast<size_t>(fn.max_stack) : 16);

  const Instruction* code = fn.code.data();
  size_t pc = 0;
  const size_t code_size = fn.code.size();

  auto runtime_error = [&](const std::string& message) {
    return InvalidArgumentError("in " + fn.name + ": " + message);
  };

  while (pc < code_size) {
    const Instruction& ins = code[pc++];
    switch (ins.op) {
      case Op::kLoadConst:
        stack.push_back(fn.constants[static_cast<size_t>(ins.a)]);
        break;
      case Op::kLoadLocal:
        stack.push_back(locals[static_cast<size_t>(ins.a)]);
        break;
      case Op::kStoreLocal:
        locals[static_cast<size_t>(ins.a)] = std::move(stack.back());
        stack.pop_back();
        break;
      case Op::kLoadGlobal: {
        PyValue& g = globals_[static_cast<size_t>(ins.a)];
        stack.push_back(g);
        break;
      }
      case Op::kStoreGlobal:
        globals_[static_cast<size_t>(ins.a)] = std::move(stack.back());
        stack.pop_back();
        break;
      case Op::kBinary: {
        PyValue b = std::move(stack.back());
        stack.pop_back();
        PyValue& a = stack.back();
        BinOp op = static_cast<BinOp>(ins.a);
        // Inline fast paths for the numeric loop cases (int op int,
        // float-ish op float-ish); everything else takes the generic
        // ApplyBinary road.  Semantics must match ApplyBinary exactly.
        if (a.is_int() && b.is_int()) {
          int64_t x = a.AsInt();
          int64_t y = b.AsInt();
          switch (op) {
            case BinOp::kAdd: a = PyValue(x + y); continue;
            case BinOp::kSub: a = PyValue(x - y); continue;
            case BinOp::kMul: a = PyValue(x * y); continue;
            case BinOp::kFloorDiv:
              if (y == 0) return runtime_error("division by zero");
              a = PyValue(PyFloorDivInt(x, y));
              continue;
            case BinOp::kMod:
              if (y == 0) return runtime_error("modulo by zero");
              a = PyValue(PyModInt(x, y));
              continue;
            case BinOp::kDiv:
              if (y == 0) return runtime_error("division by zero");
              a = PyValue(static_cast<double>(x) / static_cast<double>(y));
              continue;
            case BinOp::kLt: a = PyValue::Bool(x < y); continue;
            case BinOp::kLe: a = PyValue::Bool(x <= y); continue;
            case BinOp::kGt: a = PyValue::Bool(x > y); continue;
            case BinOp::kGe: a = PyValue::Bool(x >= y); continue;
            case BinOp::kEq: a = PyValue::Bool(x == y); continue;
            case BinOp::kNe: a = PyValue::Bool(x != y); continue;
            default: break;
          }
        } else if (a.is_numeric() && b.is_numeric() &&
                   (a.is_float() || b.is_float())) {
          double x = a.AsFloat();
          double y = b.AsFloat();
          switch (op) {
            case BinOp::kAdd: a = PyValue(x + y); continue;
            case BinOp::kSub: a = PyValue(x - y); continue;
            case BinOp::kMul: a = PyValue(x * y); continue;
            case BinOp::kDiv:
              if (y == 0.0) return runtime_error("division by zero");
              a = PyValue(x / y);
              continue;
            case BinOp::kLt: a = PyValue::Bool(x < y); continue;
            case BinOp::kLe: a = PyValue::Bool(x <= y); continue;
            case BinOp::kGt: a = PyValue::Bool(x > y); continue;
            case BinOp::kGe: a = PyValue::Bool(x >= y); continue;
            case BinOp::kEq: a = PyValue::Bool(x == y); continue;
            case BinOp::kNe: a = PyValue::Bool(x != y); continue;
            default: break;
          }
        }
        Result<PyValue> out = ApplyBinary(op, a, b);
        if (!out.ok()) return runtime_error(out.status().message());
        a = std::move(out).value();
        break;
      }
      case Op::kUnary: {
        Result<PyValue> out =
            ApplyUnary(static_cast<UnOp>(ins.a), stack.back());
        if (!out.ok()) return runtime_error(out.status().message());
        stack.back() = std::move(out).value();
        break;
      }
      case Op::kJump:
        pc = static_cast<size_t>(ins.a);
        break;
      case Op::kJumpIfFalse: {
        bool truthy = stack.back().AsBool();
        stack.pop_back();
        if (!truthy) pc = static_cast<size_t>(ins.a);
        break;
      }
      case Op::kJumpIfFalsePeek:
        if (!stack.back().AsBool()) {
          pc = static_cast<size_t>(ins.a);
        } else {
          stack.pop_back();
        }
        break;
      case Op::kJumpIfTruePeek:
        if (stack.back().AsBool()) {
          pc = static_cast<size_t>(ins.a);
        } else {
          stack.pop_back();
        }
        break;
      case Op::kPop:
        stack.pop_back();
        break;
      case Op::kCallUser: {
        const CompiledFunction& callee =
            module_->functions[static_cast<size_t>(ins.a)];
        int argc = ins.b;
        if (argc != callee.num_params) {
          return runtime_error(callee.name + "() takes " +
                               std::to_string(callee.num_params) +
                               " arguments, got " + std::to_string(argc));
        }
        std::vector<PyValue> call_args(
            std::make_move_iterator(stack.end() - argc),
            std::make_move_iterator(stack.end()));
        stack.resize(stack.size() - static_cast<size_t>(argc));
        Result<PyValue> out = RunFunction(callee, std::move(call_args));
        if (!out.ok()) return out;
        stack.push_back(std::move(out).value());
        break;
      }
      case Op::kCallBuiltin: {
        const std::string& name =
            fn.constants[static_cast<size_t>(ins.a)].AsString();
        int argc = ins.b;
        std::vector<PyValue> call_args(
            std::make_move_iterator(stack.end() - argc),
            std::make_move_iterator(stack.end()));
        stack.resize(stack.size() - static_cast<size_t>(argc));
        // Host functions (kernel `emit`) shadow nothing: real builtin
        // names always resolve first at compile time, and host_ is empty
        // outside kernel VMs, so plain modules pay one branch here.
        if (!host_.empty()) {
          auto it = host_.find(name);
          if (it != host_.end()) {
            Result<PyValue> out = it->second(call_args);
            if (!out.ok()) return runtime_error(out.status().message());
            stack.push_back(std::move(out).value());
            break;
          }
        }
        Result<PyValue> out = CallBuiltin(name, call_args);
        if (!out.ok()) return runtime_error(out.status().message());
        stack.push_back(std::move(out).value());
        break;
      }
      case Op::kReturn:
        return std::move(stack.back());
      case Op::kReturnNone:
        return PyValue();
      case Op::kBuildList: {
        PyList items(std::make_move_iterator(stack.end() - ins.a),
                     std::make_move_iterator(stack.end()));
        stack.resize(stack.size() - static_cast<size_t>(ins.a));
        stack.push_back(PyValue(std::move(items)));
        break;
      }
      case Op::kIndex: {
        PyValue index = std::move(stack.back());
        stack.pop_back();
        PyValue& base = stack.back();
        if (!index.is_numeric()) return runtime_error("index must be integer");
        int64_t i = index.AsInt();
        if (base.is_list()) {
          const PyList& list = base.AsList();
          if (i < 0) i += static_cast<int64_t>(list.size());
          if (i < 0 || i >= static_cast<int64_t>(list.size())) {
            return runtime_error("list index out of range");
          }
          base = list[static_cast<size_t>(i)];
        } else if (base.is_string()) {
          const std::string& s = base.AsString();
          if (i < 0) i += static_cast<int64_t>(s.size());
          if (i < 0 || i >= static_cast<int64_t>(s.size())) {
            return runtime_error("string index out of range");
          }
          base = PyValue(std::string(1, s[static_cast<size_t>(i)]));
        } else {
          return runtime_error("object is not subscriptable");
        }
        break;
      }
      case Op::kStoreIndex: {
        PyValue value = std::move(stack.back());
        stack.pop_back();
        PyValue index = std::move(stack.back());
        stack.pop_back();
        PyValue base = std::move(stack.back());
        stack.pop_back();
        if (!base.is_list() || !index.is_numeric()) {
          return runtime_error("invalid subscript assignment");
        }
        PyList& list = base.AsList();
        int64_t i = index.AsInt();
        if (i < 0) i += static_cast<int64_t>(list.size());
        if (i < 0 || i >= static_cast<int64_t>(list.size())) {
          return runtime_error("list index out of range");
        }
        list[static_cast<size_t>(i)] = std::move(value);
        break;
      }
      case Op::kLen: {
        PyValue& v = stack.back();
        if (v.is_list()) {
          v = PyValue(static_cast<int64_t>(v.AsList().size()));
        } else if (v.is_string()) {
          v = PyValue(static_cast<int64_t>(v.AsString().size()));
        } else {
          return runtime_error("object has no len()");
        }
        break;
      }
    }
  }
  return PyValue();
}

}  // namespace minipy
}  // namespace mrs
