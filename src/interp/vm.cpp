#include "interp/vm.h"

#include <cmath>
#include <cstdlib>

#include "interp/verifier.h"
#include "obs/metrics.h"

namespace mrs {
namespace minipy {

namespace {

// Slot capacity of the typed-frame arena (512 KiB).  Deep enough for
// thousands of typed frames; beyond that, calls degrade to the boxed path.
constexpr size_t kArenaSlots = 1 << 16;

obs::Counter* DeoptCounter() {
  static obs::Counter* c =
      obs::Registry::Instance().GetCounter("mrs.vm.deopts");
  return c;
}
obs::Counter* TypedCallCounter() {
  static obs::Counter* c =
      obs::Registry::Instance().GetCounter("mrs.vm.typed_calls");
  return c;
}
obs::Counter* FactsRejectedCounter() {
  static obs::Counter* c =
      obs::Registry::Instance().GetCounter("mrs.vm.type_facts_rejected");
  return c;
}

bool EvalCmpI(BinOp op, int64_t x, int64_t y) {
  switch (op) {
    case BinOp::kLt: return x < y;
    case BinOp::kLe: return x <= y;
    case BinOp::kGt: return x > y;
    case BinOp::kGe: return x >= y;
    case BinOp::kEq: return x == y;
    case BinOp::kNe: return x != y;
    default: return false;
  }
}

bool EvalCmpF(BinOp op, double x, double y) {
  switch (op) {
    case BinOp::kLt: return x < y;
    case BinOp::kLe: return x <= y;
    case BinOp::kGt: return x > y;
    case BinOp::kGe: return x >= y;
    case BinOp::kEq: return x == y;
    case BinOp::kNe: return x != y;
    default: return false;
  }
}

PyValue BoxSlot(ValueType t, Slot s) {
  switch (t) {
    case ValueType::kInt: return PyValue(s.i);
    case ValueType::kBool: return PyValue::Bool(s.i != 0);
    case ValueType::kFloat: return PyValue(s.d);
    default: return PyValue();  // None (and vacuous bottom claims)
  }
}

}  // namespace

void Vm::RegisterHost(std::string name, HostFn fn) {
  host_[std::move(name)] = std::move(fn);
}

Status Vm::LoadSource(std::string_view source) {
  CompileOptions options;
  for (const auto& [name, fn] : host_) options.host_functions.insert(name);
  MRS_ASSIGN_OR_RETURN(std::shared_ptr<CompiledModule> module,
                       CompileSource(source, options));
  return LoadModule(std::move(module));
}

Status Vm::LoadModule(std::shared_ptr<CompiledModule> module) {
  if (!module->verified) {
    std::set<std::string> hosts;
    for (const auto& [name, fn] : host_) hosts.insert(name);
    MRS_RETURN_IF_ERROR(VerifyAndMark(*module, hosts));
  }
  module_ = std::move(module);
  globals_.assign(module_->global_names.size(), PyValue());
  // Top-level code always runs generic: globals are still being born, so
  // no guard could be stable yet.
  typed_.functions.clear();
  arena_used_ = 0;
  Result<PyValue> init = RunFunction(module_->top_level, {});
  if (!init.ok()) return init.status();

  const char* no_typed = std::getenv("MRS_NO_TYPED_TIER");
  if (!typed_enabled_ || (no_typed != nullptr && *no_typed != '\0') ||
      module_->type_facts == nullptr) {
    return Status::Ok();
  }
  std::set<std::string> hosts;
  for (const auto& [name, fn] : host_) hosts.insert(name);
  Status facts_ok = CheckTypeFacts(*module_, *module_->type_facts, hosts);
  if (!facts_ok.ok()) {
    // Corrupted or forged table: discard entirely, run generic-only.
    FactsRejectedCounter()->Inc();
    return Status::Ok();
  }
  typed_ = BuildTypedModule(*module_, *module_->type_facts);
  bool any = false;
  for (const TypedFunction& fn : typed_.functions) any |= fn.eligible;
  if (any && arena_.empty()) arena_.resize(kArenaSlots);
  return Status::Ok();
}

Result<PyValue> Vm::GetGlobal(const std::string& name) const {
  for (size_t i = 0; i < module_->global_names.size(); ++i) {
    if (module_->global_names[i] == name) return globals_[i];
  }
  return NotFoundError("no global named " + name);
}

bool Vm::HasTypedFunction(const std::string& name) const {
  if (module_ == nullptr) return false;
  int index = module_->FunctionIndex(name);
  if (index < 0 || static_cast<size_t>(index) >= typed_.functions.size()) {
    return false;
  }
  return typed_.functions[static_cast<size_t>(index)].eligible;
}

Result<PyValue> Vm::Call(const std::string& function,
                         std::vector<PyValue> args) {
  if (module_ == nullptr) return FailedPreconditionError("no module loaded");
  int index = module_->FunctionIndex(function);
  if (index < 0) return NotFoundError("no function named " + function);
  const CompiledFunction& fn = module_->functions[static_cast<size_t>(index)];
  if (static_cast<int>(args.size()) != fn.num_params) {
    return InvalidArgumentError(function + "() takes " +
                                std::to_string(fn.num_params) +
                                " arguments, got " +
                                std::to_string(args.size()));
  }
  return DispatchCall(index, std::move(args));
}

Result<PyValue> Vm::DispatchCall(int fn_index, std::vector<PyValue> args) {
  const CompiledFunction& fn =
      module_->functions[static_cast<size_t>(fn_index)];
  if (static_cast<size_t>(fn_index) < typed_.functions.size()) {
    const TypedFunction& tfn =
        typed_.functions[static_cast<size_t>(fn_index)];
    if (tfn.eligible) {
      if (!TypedGuardAccepts(tfn, args, globals_)) {
        // Live values violate the inferred signature: fall back to the
        // generic loop for this call (results stay identical, just slow).
        DeoptCounter()->Inc();
      } else if (arena_used_ + static_cast<size_t>(tfn.num_slots) <=
                 arena_.size()) {
        TypedCallCounter()->Inc();
        Slot* frame = arena_.data() + arena_used_;
        arena_used_ += static_cast<size_t>(tfn.num_slots);
        for (size_t i = 0; i < args.size(); ++i) {
          if (tfn.param_types[i] == ValueType::kFloat) {
            frame[i].d = args[i].AsFloat();
          } else {
            frame[i].i = args[i].AsInt();
          }
        }
        Slot r;
        r.i = 0;
        Status st = RunTypedFunction(tfn, frame, &r);
        arena_used_ -= static_cast<size_t>(tfn.num_slots);
        if (!st.ok()) return st;
        return BoxSlot(tfn.ret, r);
      }
      // Arena exhausted (pathological recursion): boxed fallback below.
    }
  }
  return RunFunction(fn, std::move(args));
}

Status Vm::BoxedCallFromTyped(const TypedFunction& tfn, int gc_index,
                              int32_t first, Slot* frame, Slot* out) {
  const GenericCallInfo& gc =
      tfn.generic_calls[static_cast<size_t>(gc_index)];
  std::vector<PyValue> args;
  args.reserve(gc.arg_types.size());
  for (size_t i = 0; i < gc.arg_types.size(); ++i) {
    args.push_back(BoxSlot(gc.arg_types[i], frame[first + static_cast<int>(i)]));
  }
  Result<PyValue> r = DispatchCall(gc.fn_index, std::move(args));
  if (!r.ok()) return r.status();
  const PyValue& v = r.value();
  // The claimed result type passed CheckTypeFacts, so a mismatch here
  // means a checker bug, not bad input — but slots must never be
  // reinterpreted, so verify before unboxing.
  if (!TypeLe(TypeOf(v), gc.result_type)) {
    return InternalError("typed tier: " + tfn.name +
                         ": call result type drifted from checked facts");
  }
  if (gc.result_type == ValueType::kFloat) {
    out->d = v.AsFloat();
  } else {
    out->i = v.AsInt();
  }
  return Status::Ok();
}

// Computed-goto dispatch where the compiler supports labels-as-values
// (GCC/Clang); portable switch loop otherwise.  Handler bodies are shared
// between both via the OP/NEXT/JUMP_TO macros.
#if defined(__GNUC__) || defined(__clang__)
#define MRS_TYPED_COMPUTED_GOTO 1
#endif

Status Vm::RunTypedFunction(const TypedFunction& tfn, Slot* frame,
                            Slot* ret) {
  for (int i = tfn.num_params; i < tfn.num_slots; ++i) frame[i].i = 0;
  const TInstr* code = tfn.code.data();
  const TInstr* ins = code;
  auto runtime_error = [&](const char* message) {
    return InvalidArgumentError("in " + tfn.name + ": " + message);
  };

#ifdef MRS_TYPED_COMPUTED_GOTO
#define OP(name) lbl_##name:
#define NEXT()                                     \
  do {                                             \
    ++ins;                                         \
    goto* kLabels[static_cast<size_t>(ins->op)];   \
  } while (0)
#define JUMP_TO(target)                            \
  do {                                             \
    ins = code + (target);                         \
    goto* kLabels[static_cast<size_t>(ins->op)];   \
  } while (0)
  // Order must match enum class TOp exactly.
  static const void* kLabels[] = {
      &&lbl_kLoadI, &&lbl_kLoadF, &&lbl_kMov, &&lbl_kCvtIF, &&lbl_kLoadGI,
      &&lbl_kLoadGF, &&lbl_kAddI, &&lbl_kSubI, &&lbl_kMulI,
      &&lbl_kFloorDivI, &&lbl_kModI, &&lbl_kDivIF, &&lbl_kAddF,
      &&lbl_kSubF, &&lbl_kMulF, &&lbl_kFloorDivF, &&lbl_kModF, &&lbl_kDivF,
      &&lbl_kAddIC, &&lbl_kSubIC, &&lbl_kMulIC, &&lbl_kFloorDivIC,
      &&lbl_kModIC, &&lbl_kDivIFC, &&lbl_kRSubIC, &&lbl_kAddFC,
      &&lbl_kSubFC, &&lbl_kMulFC, &&lbl_kDivFC, &&lbl_kRSubFC,
      &&lbl_kRDivFC, &&lbl_kNegI, &&lbl_kNegF, &&lbl_kNotI, &&lbl_kNotF,
      &&lbl_kCmpI, &&lbl_kCmpF, &&lbl_kCmpIC, &&lbl_kCmpFC, &&lbl_kJump,
      &&lbl_kBrFalseI, &&lbl_kBrFalseF, &&lbl_kBrTrueI, &&lbl_kBrTrueF,
      &&lbl_kBrCmpFalseI, &&lbl_kBrCmpFalseF, &&lbl_kBrCmpFalseIC,
      &&lbl_kBrCmpFalseFC, &&lbl_kCallT, &&lbl_kCallG, &&lbl_kRet,
      &&lbl_kRetImm, &&lbl_kRetNone,
  };
  goto* kLabels[static_cast<size_t>(ins->op)];
#else
#define OP(name) case TOp::name:
#define NEXT()   \
  do {           \
    ++ins;       \
    continue;    \
  } while (0)
#define JUMP_TO(target)     \
  do {                      \
    ins = code + (target);  \
    continue;               \
  } while (0)
  for (;;) {
    switch (ins->op) {
#endif

  OP(kLoadI) { frame[ins->a] = ins->imm; } NEXT();
  OP(kLoadF) { frame[ins->a] = ins->imm; } NEXT();
  OP(kMov) { frame[ins->a] = frame[ins->b]; } NEXT();
  OP(kCvtIF) { frame[ins->a].d = static_cast<double>(frame[ins->b].i); }
  NEXT();
  OP(kLoadGI) {
    frame[ins->a].i = globals_[static_cast<size_t>(ins->b)].AsInt();
  }
  NEXT();
  OP(kLoadGF) {
    frame[ins->a].d = globals_[static_cast<size_t>(ins->b)].AsFloat();
  }
  NEXT();

  OP(kAddI) { frame[ins->a].i = frame[ins->b].i + frame[ins->c].i; } NEXT();
  OP(kSubI) { frame[ins->a].i = frame[ins->b].i - frame[ins->c].i; } NEXT();
  OP(kMulI) { frame[ins->a].i = frame[ins->b].i * frame[ins->c].i; } NEXT();
  OP(kFloorDivI) {
    const int64_t y = frame[ins->c].i;
    if (y == 0) return runtime_error("division by zero");
    frame[ins->a].i = PyFloorDivInt(frame[ins->b].i, y);
  }
  NEXT();
  OP(kModI) {
    const int64_t y = frame[ins->c].i;
    if (y == 0) return runtime_error("modulo by zero");
    frame[ins->a].i = PyModInt(frame[ins->b].i, y);
  }
  NEXT();
  OP(kDivIF) {
    const int64_t y = frame[ins->c].i;
    if (y == 0) return runtime_error("division by zero");
    frame[ins->a].d =
        static_cast<double>(frame[ins->b].i) / static_cast<double>(y);
  }
  NEXT();
  OP(kAddF) { frame[ins->a].d = frame[ins->b].d + frame[ins->c].d; } NEXT();
  OP(kSubF) { frame[ins->a].d = frame[ins->b].d - frame[ins->c].d; } NEXT();
  OP(kMulF) { frame[ins->a].d = frame[ins->b].d * frame[ins->c].d; } NEXT();
  OP(kFloorDivF) {
    const double y = frame[ins->c].d;
    if (y == 0.0) return runtime_error("division by zero");
    frame[ins->a].d = std::floor(frame[ins->b].d / y);
  }
  NEXT();
  OP(kModF) {
    const double y = frame[ins->c].d;
    if (y == 0.0) return runtime_error("modulo by zero");
    frame[ins->a].d = PyFModFloat(frame[ins->b].d, y);
  }
  NEXT();
  OP(kDivF) {
    const double y = frame[ins->c].d;
    if (y == 0.0) return runtime_error("division by zero");
    frame[ins->a].d = frame[ins->b].d / y;
  }
  NEXT();

  OP(kAddIC) { frame[ins->a].i = frame[ins->b].i + ins->imm.i; } NEXT();
  OP(kSubIC) { frame[ins->a].i = frame[ins->b].i - ins->imm.i; } NEXT();
  OP(kMulIC) { frame[ins->a].i = frame[ins->b].i * ins->imm.i; } NEXT();
  OP(kFloorDivIC) {
    frame[ins->a].i = PyFloorDivInt(frame[ins->b].i, ins->imm.i);
  }
  NEXT();
  OP(kModIC) { frame[ins->a].i = PyModInt(frame[ins->b].i, ins->imm.i); }
  NEXT();
  OP(kDivIFC) {
    frame[ins->a].d = static_cast<double>(frame[ins->b].i) /
                      static_cast<double>(ins->imm.i);
  }
  NEXT();
  OP(kRSubIC) { frame[ins->a].i = ins->imm.i - frame[ins->b].i; } NEXT();
  OP(kAddFC) { frame[ins->a].d = frame[ins->b].d + ins->imm.d; } NEXT();
  OP(kSubFC) { frame[ins->a].d = frame[ins->b].d - ins->imm.d; } NEXT();
  OP(kMulFC) { frame[ins->a].d = frame[ins->b].d * ins->imm.d; } NEXT();
  OP(kDivFC) { frame[ins->a].d = frame[ins->b].d / ins->imm.d; } NEXT();
  OP(kRSubFC) { frame[ins->a].d = ins->imm.d - frame[ins->b].d; } NEXT();
  OP(kRDivFC) {
    const double y = frame[ins->b].d;
    if (y == 0.0) return runtime_error("division by zero");
    frame[ins->a].d = ins->imm.d / y;
  }
  NEXT();

  OP(kNegI) { frame[ins->a].i = -frame[ins->b].i; } NEXT();
  OP(kNegF) { frame[ins->a].d = -frame[ins->b].d; } NEXT();
  OP(kNotI) { frame[ins->a].i = frame[ins->b].i == 0 ? 1 : 0; } NEXT();
  OP(kNotF) { frame[ins->a].i = frame[ins->b].d == 0.0 ? 1 : 0; } NEXT();

  OP(kCmpI) {
    frame[ins->a].i =
        EvalCmpI(ins->cmp, frame[ins->b].i, frame[ins->c].i) ? 1 : 0;
  }
  NEXT();
  OP(kCmpF) {
    frame[ins->a].i =
        EvalCmpF(ins->cmp, frame[ins->b].d, frame[ins->c].d) ? 1 : 0;
  }
  NEXT();
  OP(kCmpIC) {
    frame[ins->a].i = EvalCmpI(ins->cmp, frame[ins->b].i, ins->imm.i) ? 1 : 0;
  }
  NEXT();
  OP(kCmpFC) {
    frame[ins->a].i = EvalCmpF(ins->cmp, frame[ins->b].d, ins->imm.d) ? 1 : 0;
  }
  NEXT();

  OP(kJump) { JUMP_TO(ins->a); }
  OP(kBrFalseI) {
    if (frame[ins->b].i == 0) JUMP_TO(ins->a);
  }
  NEXT();
  OP(kBrFalseF) {
    if (frame[ins->b].d == 0.0) JUMP_TO(ins->a);
  }
  NEXT();
  OP(kBrTrueI) {
    if (frame[ins->b].i != 0) JUMP_TO(ins->a);
  }
  NEXT();
  OP(kBrTrueF) {
    if (frame[ins->b].d != 0.0) JUMP_TO(ins->a);
  }
  NEXT();
  OP(kBrCmpFalseI) {
    if (!EvalCmpI(ins->cmp, frame[ins->b].i, frame[ins->c].i)) {
      JUMP_TO(ins->a);
    }
  }
  NEXT();
  OP(kBrCmpFalseF) {
    if (!EvalCmpF(ins->cmp, frame[ins->b].d, frame[ins->c].d)) {
      JUMP_TO(ins->a);
    }
  }
  NEXT();
  OP(kBrCmpFalseIC) {
    if (!EvalCmpI(ins->cmp, frame[ins->b].i, ins->imm.i)) JUMP_TO(ins->a);
  }
  NEXT();
  OP(kBrCmpFalseFC) {
    if (!EvalCmpF(ins->cmp, frame[ins->b].d, ins->imm.d)) JUMP_TO(ins->a);
  }
  NEXT();

  OP(kCallT) {
    const TypedFunction& callee =
        typed_.functions[static_cast<size_t>(ins->b)];
    if (arena_used_ + static_cast<size_t>(callee.num_slots) <=
        arena_.size()) {
      Slot* child = arena_.data() + arena_used_;
      arena_used_ += static_cast<size_t>(callee.num_slots);
      for (int i = 0; i < callee.num_params; ++i) {
        child[i] = frame[ins->c + i];
      }
      Slot r;
      r.i = 0;
      Status st = RunTypedFunction(callee, child, &r);
      arena_used_ -= static_cast<size_t>(callee.num_slots);
      if (!st.ok()) return st;
      frame[ins->a] = r;
    } else {
      // Arena exhausted: same call, boxed (imm.i holds the metadata).
      Status st = BoxedCallFromTyped(tfn, static_cast<int>(ins->imm.i),
                                     ins->c, frame, &frame[ins->a]);
      if (!st.ok()) return st;
    }
  }
  NEXT();
  OP(kCallG) {
    Status st = BoxedCallFromTyped(tfn, ins->b, ins->c, frame,
                                   &frame[ins->a]);
    if (!st.ok()) return st;
  }
  NEXT();

  OP(kRet) {
    *ret = frame[ins->b];
    return Status::Ok();
  }
  OP(kRetImm) {
    *ret = ins->imm;
    return Status::Ok();
  }
  OP(kRetNone) { return Status::Ok(); }

#ifndef MRS_TYPED_COMPUTED_GOTO
    }
    return InternalError("typed tier: invalid opcode");
  }
#endif
#undef OP
#undef NEXT
#undef JUMP_TO
}

Result<PyValue> Vm::RunFunction(const CompiledFunction& fn,
                                std::vector<PyValue> args) {
  std::vector<PyValue> locals(static_cast<size_t>(fn.num_locals));
  for (size_t i = 0; i < args.size(); ++i) locals[i] = std::move(args[i]);
  std::vector<PyValue> stack;
  // The verifier computed the exact peak operand depth, so one reservation
  // covers the whole frame (LoadModule guarantees max_stack is filled in).
  stack.reserve(fn.max_stack > 0 ? static_cast<size_t>(fn.max_stack) : 16);

  const Instruction* code = fn.code.data();
  size_t pc = 0;
  const size_t code_size = fn.code.size();

  auto runtime_error = [&](const std::string& message) {
    return InvalidArgumentError("in " + fn.name + ": " + message);
  };

  while (pc < code_size) {
    const Instruction& ins = code[pc++];
    switch (ins.op) {
      case Op::kLoadConst:
        stack.push_back(fn.constants[static_cast<size_t>(ins.a)]);
        break;
      case Op::kLoadLocal:
        stack.push_back(locals[static_cast<size_t>(ins.a)]);
        break;
      case Op::kStoreLocal:
        locals[static_cast<size_t>(ins.a)] = std::move(stack.back());
        stack.pop_back();
        break;
      case Op::kLoadGlobal: {
        PyValue& g = globals_[static_cast<size_t>(ins.a)];
        stack.push_back(g);
        break;
      }
      case Op::kStoreGlobal:
        globals_[static_cast<size_t>(ins.a)] = std::move(stack.back());
        stack.pop_back();
        break;
      case Op::kBinary: {
        PyValue b = std::move(stack.back());
        stack.pop_back();
        PyValue& a = stack.back();
        BinOp op = static_cast<BinOp>(ins.a);
        // Inline fast paths for the numeric loop cases (int op int,
        // float-ish op float-ish); everything else takes the generic
        // ApplyBinary road.  Semantics must match ApplyBinary exactly.
        if (a.is_int() && b.is_int()) {
          int64_t x = a.AsInt();
          int64_t y = b.AsInt();
          switch (op) {
            case BinOp::kAdd: a = PyValue(x + y); continue;
            case BinOp::kSub: a = PyValue(x - y); continue;
            case BinOp::kMul: a = PyValue(x * y); continue;
            case BinOp::kFloorDiv:
              if (y == 0) return runtime_error("division by zero");
              a = PyValue(PyFloorDivInt(x, y));
              continue;
            case BinOp::kMod:
              if (y == 0) return runtime_error("modulo by zero");
              a = PyValue(PyModInt(x, y));
              continue;
            case BinOp::kDiv:
              if (y == 0) return runtime_error("division by zero");
              a = PyValue(static_cast<double>(x) / static_cast<double>(y));
              continue;
            case BinOp::kLt: a = PyValue::Bool(x < y); continue;
            case BinOp::kLe: a = PyValue::Bool(x <= y); continue;
            case BinOp::kGt: a = PyValue::Bool(x > y); continue;
            case BinOp::kGe: a = PyValue::Bool(x >= y); continue;
            case BinOp::kEq: a = PyValue::Bool(x == y); continue;
            case BinOp::kNe: a = PyValue::Bool(x != y); continue;
            default: break;
          }
        } else if (a.is_numeric() && b.is_numeric() &&
                   (a.is_float() || b.is_float())) {
          double x = a.AsFloat();
          double y = b.AsFloat();
          switch (op) {
            case BinOp::kAdd: a = PyValue(x + y); continue;
            case BinOp::kSub: a = PyValue(x - y); continue;
            case BinOp::kMul: a = PyValue(x * y); continue;
            case BinOp::kDiv:
              if (y == 0.0) return runtime_error("division by zero");
              a = PyValue(x / y);
              continue;
            case BinOp::kLt: a = PyValue::Bool(x < y); continue;
            case BinOp::kLe: a = PyValue::Bool(x <= y); continue;
            case BinOp::kGt: a = PyValue::Bool(x > y); continue;
            case BinOp::kGe: a = PyValue::Bool(x >= y); continue;
            case BinOp::kEq: a = PyValue::Bool(x == y); continue;
            case BinOp::kNe: a = PyValue::Bool(x != y); continue;
            default: break;
          }
        }
        Result<PyValue> out = ApplyBinary(op, a, b);
        if (!out.ok()) return runtime_error(out.status().message());
        a = std::move(out).value();
        break;
      }
      case Op::kUnary: {
        Result<PyValue> out =
            ApplyUnary(static_cast<UnOp>(ins.a), stack.back());
        if (!out.ok()) return runtime_error(out.status().message());
        stack.back() = std::move(out).value();
        break;
      }
      case Op::kJump:
        pc = static_cast<size_t>(ins.a);
        break;
      case Op::kJumpIfFalse: {
        bool truthy = stack.back().AsBool();
        stack.pop_back();
        if (!truthy) pc = static_cast<size_t>(ins.a);
        break;
      }
      case Op::kJumpIfFalsePeek:
        if (!stack.back().AsBool()) {
          pc = static_cast<size_t>(ins.a);
        } else {
          stack.pop_back();
        }
        break;
      case Op::kJumpIfTruePeek:
        if (stack.back().AsBool()) {
          pc = static_cast<size_t>(ins.a);
        } else {
          stack.pop_back();
        }
        break;
      case Op::kPop:
        stack.pop_back();
        break;
      case Op::kCallUser: {
        const CompiledFunction& callee =
            module_->functions[static_cast<size_t>(ins.a)];
        int argc = ins.b;
        if (argc != callee.num_params) {
          return runtime_error(callee.name + "() takes " +
                               std::to_string(callee.num_params) +
                               " arguments, got " + std::to_string(argc));
        }
        std::vector<PyValue> call_args(
            std::make_move_iterator(stack.end() - argc),
            std::make_move_iterator(stack.end()));
        stack.resize(stack.size() - static_cast<size_t>(argc));
        // Dispatch through the typed tier: generic frames calling an
        // eligible function still get unboxed execution when the live
        // arguments pass its guard.
        Result<PyValue> out = DispatchCall(ins.a, std::move(call_args));
        if (!out.ok()) return out;
        stack.push_back(std::move(out).value());
        break;
      }
      case Op::kCallBuiltin: {
        const std::string& name =
            fn.constants[static_cast<size_t>(ins.a)].AsString();
        int argc = ins.b;
        std::vector<PyValue> call_args(
            std::make_move_iterator(stack.end() - argc),
            std::make_move_iterator(stack.end()));
        stack.resize(stack.size() - static_cast<size_t>(argc));
        // Host functions (kernel `emit`) shadow nothing: real builtin
        // names always resolve first at compile time, and host_ is empty
        // outside kernel VMs, so plain modules pay one branch here.
        if (!host_.empty()) {
          auto it = host_.find(name);
          if (it != host_.end()) {
            Result<PyValue> out = it->second(call_args);
            if (!out.ok()) return runtime_error(out.status().message());
            stack.push_back(std::move(out).value());
            break;
          }
        }
        Result<PyValue> out = CallBuiltin(name, call_args);
        if (!out.ok()) return runtime_error(out.status().message());
        stack.push_back(std::move(out).value());
        break;
      }
      case Op::kReturn:
        return std::move(stack.back());
      case Op::kReturnNone:
        return PyValue();
      case Op::kBuildList: {
        PyList items(std::make_move_iterator(stack.end() - ins.a),
                     std::make_move_iterator(stack.end()));
        stack.resize(stack.size() - static_cast<size_t>(ins.a));
        stack.push_back(PyValue(std::move(items)));
        break;
      }
      case Op::kIndex: {
        PyValue index = std::move(stack.back());
        stack.pop_back();
        PyValue& base = stack.back();
        if (!index.is_numeric()) return runtime_error("index must be integer");
        int64_t i = index.AsInt();
        if (base.is_list()) {
          const PyList& list = base.AsList();
          if (i < 0) i += static_cast<int64_t>(list.size());
          if (i < 0 || i >= static_cast<int64_t>(list.size())) {
            return runtime_error("list index out of range");
          }
          base = list[static_cast<size_t>(i)];
        } else if (base.is_string()) {
          const std::string& s = base.AsString();
          if (i < 0) i += static_cast<int64_t>(s.size());
          if (i < 0 || i >= static_cast<int64_t>(s.size())) {
            return runtime_error("string index out of range");
          }
          base = PyValue(std::string(1, s[static_cast<size_t>(i)]));
        } else {
          return runtime_error("object is not subscriptable");
        }
        break;
      }
      case Op::kStoreIndex: {
        PyValue value = std::move(stack.back());
        stack.pop_back();
        PyValue index = std::move(stack.back());
        stack.pop_back();
        PyValue base = std::move(stack.back());
        stack.pop_back();
        if (!base.is_list() || !index.is_numeric()) {
          return runtime_error("invalid subscript assignment");
        }
        PyList& list = base.AsList();
        int64_t i = index.AsInt();
        if (i < 0) i += static_cast<int64_t>(list.size());
        if (i < 0 || i >= static_cast<int64_t>(list.size())) {
          return runtime_error("list index out of range");
        }
        list[static_cast<size_t>(i)] = std::move(value);
        break;
      }
      case Op::kLen: {
        PyValue& v = stack.back();
        if (v.is_list()) {
          v = PyValue(static_cast<int64_t>(v.AsList().size()));
        } else if (v.is_string()) {
          v = PyValue(static_cast<int64_t>(v.AsString().size()));
        } else {
          return runtime_error("object has no len()");
        }
        break;
      }
    }
  }
  return PyValue();
}

}  // namespace minipy
}  // namespace mrs
