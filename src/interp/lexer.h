// MiniPy lexer with Python-style significant indentation (INDENT/DEDENT
// tokens via an indent stack, as in CPython's tokenizer).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "interp/token.h"

namespace mrs {
namespace minipy {

/// Tokenize a complete module.  Emits kNewline at logical line ends,
/// kIndent/kDedent at block boundaries, and a final kEof (preceded by any
/// pending dedents).  Comments (#...) and blank lines are skipped.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace minipy
}  // namespace mrs
