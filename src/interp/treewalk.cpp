#include "interp/treewalk.h"

#include "interp/parser.h"

namespace mrs {
namespace minipy {

Status TreeWalker::ErrorAt(int line, const std::string& message) const {
  return InvalidArgumentError("line " + std::to_string(line) + ": " + message);
}

Status TreeWalker::LoadSource(std::string_view source) {
  MRS_ASSIGN_OR_RETURN(std::shared_ptr<Module> module, Parse(source));
  return LoadModule(std::move(module));
}

Status TreeWalker::LoadModule(std::shared_ptr<Module> module) {
  modules_.push_back(module);
  Frame top;  // module top level: locals are the globals
  PyValue ret;
  for (const StmtPtr& stmt : module->body) {
    if (stmt->kind == Stmt::Kind::kDef) {
      functions_[stmt->target] = FunctionDef{stmt.get()};
      continue;
    }
    MRS_ASSIGN_OR_RETURN(Flow flow, Exec(*stmt, &top, &ret));
    if (flow != Flow::kNormal) {
      return ErrorAt(stmt->line, "invalid control flow at module level");
    }
  }
  // Module-level assignments become globals.
  for (auto& [name, value] : top.locals) globals_[name] = value;
  return Status::Ok();
}

Result<PyValue> TreeWalker::GetGlobal(const std::string& name) const {
  auto it = globals_.find(name);
  if (it == globals_.end()) return NotFoundError("no global named " + name);
  return it->second;
}

Result<PyValue> TreeWalker::Call(const std::string& function,
                                 std::vector<PyValue> args) {
  auto it = functions_.find(function);
  if (it == functions_.end()) {
    return NotFoundError("no function named " + function);
  }
  return CallFunction(it->second, std::move(args));
}

Result<PyValue> TreeWalker::CallFunction(const FunctionDef& fn,
                                         std::vector<PyValue> args) {
  const Stmt& def = *fn.def;
  if (args.size() != def.params.size()) {
    return ErrorAt(def.line,
                   def.target + "() takes " +
                       std::to_string(def.params.size()) + " arguments, got " +
                       std::to_string(args.size()));
  }
  Frame frame;
  for (size_t i = 0; i < args.size(); ++i) {
    frame.locals[def.params[i]] = std::move(args[i]);
  }
  PyValue ret;
  MRS_ASSIGN_OR_RETURN(Flow flow, ExecBlock(def.body, &frame, &ret));
  if (flow == Flow::kBreak || flow == Flow::kContinue) {
    return ErrorAt(def.line, "break/continue outside loop");
  }
  return ret;  // None if no return executed
}

Result<TreeWalker::Flow> TreeWalker::ExecBlock(
    const std::vector<StmtPtr>& body, Frame* frame, PyValue* return_value) {
  for (const StmtPtr& stmt : body) {
    MRS_ASSIGN_OR_RETURN(Flow flow, Exec(*stmt, frame, return_value));
    if (flow != Flow::kNormal) return flow;
  }
  return Flow::kNormal;
}

Result<TreeWalker::Flow> TreeWalker::Exec(const Stmt& stmt, Frame* frame,
                                          PyValue* return_value) {
  switch (stmt.kind) {
    case Stmt::Kind::kExpr: {
      MRS_ASSIGN_OR_RETURN(PyValue v, Eval(*stmt.expr, frame));
      (void)v;
      return Flow::kNormal;
    }
    case Stmt::Kind::kAssign: {
      MRS_ASSIGN_OR_RETURN(PyValue value, Eval(*stmt.expr, frame));
      if (stmt.index_base != nullptr) {
        MRS_ASSIGN_OR_RETURN(PyValue base, Eval(*stmt.index_base, frame));
        MRS_ASSIGN_OR_RETURN(PyValue index, Eval(*stmt.index_expr, frame));
        if (!base.is_list() || !index.is_numeric()) {
          return ErrorAt(stmt.line, "invalid subscript assignment");
        }
        int64_t i = index.AsInt();
        PyList& list = base.AsList();
        if (i < 0) i += static_cast<int64_t>(list.size());
        if (i < 0 || i >= static_cast<int64_t>(list.size())) {
          return ErrorAt(stmt.line, "list index out of range");
        }
        list[static_cast<size_t>(i)] = std::move(value);
      } else {
        frame->locals[stmt.target] = std::move(value);
      }
      return Flow::kNormal;
    }
    case Stmt::Kind::kAugAssign: {
      auto it = frame->locals.find(stmt.target);
      PyValue current;
      if (it != frame->locals.end()) {
        current = it->second;
      } else {
        auto git = globals_.find(stmt.target);
        if (git == globals_.end()) {
          return ErrorAt(stmt.line, "name '" + stmt.target + "' is not defined");
        }
        current = git->second;
      }
      MRS_ASSIGN_OR_RETURN(PyValue rhs, Eval(*stmt.expr, frame));
      MRS_ASSIGN_OR_RETURN(PyValue result,
                           ApplyBinary(stmt.aug_op, current, rhs));
      frame->locals[stmt.target] = std::move(result);
      return Flow::kNormal;
    }
    case Stmt::Kind::kReturn: {
      if (stmt.expr != nullptr) {
        MRS_ASSIGN_OR_RETURN(*return_value, Eval(*stmt.expr, frame));
      } else {
        *return_value = PyValue();
      }
      return Flow::kReturn;
    }
    case Stmt::Kind::kIf: {
      for (size_t arm = 0; arm < stmt.arm_conds.size(); ++arm) {
        MRS_ASSIGN_OR_RETURN(PyValue cond, Eval(*stmt.arm_conds[arm], frame));
        if (cond.AsBool()) {
          return ExecBlock(stmt.arm_bodies[arm], frame, return_value);
        }
      }
      if (!stmt.else_body.empty()) {
        return ExecBlock(stmt.else_body, frame, return_value);
      }
      return Flow::kNormal;
    }
    case Stmt::Kind::kWhile: {
      while (true) {
        MRS_ASSIGN_OR_RETURN(PyValue cond, Eval(*stmt.cond, frame));
        if (!cond.AsBool()) break;
        MRS_ASSIGN_OR_RETURN(Flow flow,
                             ExecBlock(stmt.body, frame, return_value));
        if (flow == Flow::kReturn) return Flow::kReturn;
        if (flow == Flow::kBreak) break;
      }
      return Flow::kNormal;
    }
    case Stmt::Kind::kFor: {
      MRS_ASSIGN_OR_RETURN(PyValue iterable, Eval(*stmt.cond, frame));
      if (!iterable.is_list()) {
        return ErrorAt(stmt.line, "for loop requires a list");
      }
      // Iterate over a snapshot reference; mutation during iteration is
      // visible (like Python), so index by position.
      std::shared_ptr<PyList> list = iterable.list_ptr();
      for (size_t i = 0; i < list->size(); ++i) {
        frame->locals[stmt.target] = (*list)[i];
        MRS_ASSIGN_OR_RETURN(Flow flow,
                             ExecBlock(stmt.body, frame, return_value));
        if (flow == Flow::kReturn) return Flow::kReturn;
        if (flow == Flow::kBreak) break;
      }
      return Flow::kNormal;
    }
    case Stmt::Kind::kBreak:
      return Flow::kBreak;
    case Stmt::Kind::kContinue:
      return Flow::kContinue;
    case Stmt::Kind::kPass:
      return Flow::kNormal;
    case Stmt::Kind::kDef:
      functions_[stmt.target] = FunctionDef{&stmt};
      return Flow::kNormal;
  }
  return InternalError("unknown statement kind");
}

Result<PyValue> TreeWalker::Eval(const Expr& expr, Frame* frame) {
  switch (expr.kind) {
    case Expr::Kind::kIntLit:
      return PyValue(expr.int_value);
    case Expr::Kind::kFloatLit:
      return PyValue(expr.float_value);
    case Expr::Kind::kStringLit:
      return PyValue(expr.name);
    case Expr::Kind::kBoolLit:
      return PyValue::Bool(expr.bool_value);
    case Expr::Kind::kNoneLit:
      return PyValue();
    case Expr::Kind::kName: {
      auto it = frame->locals.find(expr.name);
      if (it != frame->locals.end()) return it->second;
      auto git = globals_.find(expr.name);
      if (git != globals_.end()) return git->second;
      return ErrorAt(expr.line, "name '" + expr.name + "' is not defined");
    }
    case Expr::Kind::kBinary: {
      if (expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr) {
        MRS_ASSIGN_OR_RETURN(PyValue lhs, Eval(*expr.lhs, frame));
        bool truthy = lhs.AsBool();
        if (expr.bin_op == BinOp::kAnd && !truthy) return lhs;
        if (expr.bin_op == BinOp::kOr && truthy) return lhs;
        return Eval(*expr.rhs, frame);
      }
      MRS_ASSIGN_OR_RETURN(PyValue lhs, Eval(*expr.lhs, frame));
      MRS_ASSIGN_OR_RETURN(PyValue rhs, Eval(*expr.rhs, frame));
      Result<PyValue> out = ApplyBinary(expr.bin_op, lhs, rhs);
      if (!out.ok()) return ErrorAt(expr.line, out.status().message());
      return out;
    }
    case Expr::Kind::kUnary: {
      MRS_ASSIGN_OR_RETURN(PyValue operand, Eval(*expr.lhs, frame));
      Result<PyValue> out = ApplyUnary(expr.un_op, operand);
      if (!out.ok()) return ErrorAt(expr.line, out.status().message());
      return out;
    }
    case Expr::Kind::kCall: {
      std::vector<PyValue> args;
      args.reserve(expr.args.size());
      for (const ExprPtr& arg : expr.args) {
        MRS_ASSIGN_OR_RETURN(PyValue v, Eval(*arg, frame));
        args.push_back(std::move(v));
      }
      auto it = functions_.find(expr.name);
      if (it != functions_.end()) {
        return CallFunction(it->second, std::move(args));
      }
      if (IsBuiltin(expr.name)) {
        Result<PyValue> out = CallBuiltin(expr.name, args);
        if (!out.ok()) return ErrorAt(expr.line, out.status().message());
        return out;
      }
      return ErrorAt(expr.line, "no function named '" + expr.name + "'");
    }
    case Expr::Kind::kListLit: {
      PyList items;
      items.reserve(expr.args.size());
      for (const ExprPtr& elem : expr.args) {
        MRS_ASSIGN_OR_RETURN(PyValue v, Eval(*elem, frame));
        items.push_back(std::move(v));
      }
      return PyValue(std::move(items));
    }
    case Expr::Kind::kIndex: {
      MRS_ASSIGN_OR_RETURN(PyValue base, Eval(*expr.lhs, frame));
      MRS_ASSIGN_OR_RETURN(PyValue index, Eval(*expr.rhs, frame));
      if (!index.is_numeric()) {
        return ErrorAt(expr.line, "list index must be an integer");
      }
      int64_t i = index.AsInt();
      if (base.is_list()) {
        const PyList& list = base.AsList();
        if (i < 0) i += static_cast<int64_t>(list.size());
        if (i < 0 || i >= static_cast<int64_t>(list.size())) {
          return ErrorAt(expr.line, "list index out of range");
        }
        return list[static_cast<size_t>(i)];
      }
      if (base.is_string()) {
        const std::string& s = base.AsString();
        if (i < 0) i += static_cast<int64_t>(s.size());
        if (i < 0 || i >= static_cast<int64_t>(s.size())) {
          return ErrorAt(expr.line, "string index out of range");
        }
        return PyValue(std::string(1, s[static_cast<size_t>(i)]));
      }
      return ErrorAt(expr.line, "object is not subscriptable");
    }
  }
  return InternalError("unknown expression kind");
}

}  // namespace minipy
}  // namespace mrs
