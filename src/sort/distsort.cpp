#include "sort/distsort.h"

#include <algorithm>

#include "rng/mt19937_64.h"

namespace mrs {
namespace sort {

namespace {

// Stream tag for record generation (distinct from any other program's).
constexpr uint64_t kGenTag = 0x64697374736f7274ull;  // "distsort"

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
constexpr uint64_t kAlphabetSize = sizeof(kAlphabet) - 1;

std::string RandomText(MT19937_64* rng, int bytes) {
  std::string s;
  s.reserve(static_cast<size_t>(bytes));
  for (int i = 0; i < bytes; ++i) {
    s.push_back(kAlphabet[rng->NextBounded(kAlphabetSize)]);
  }
  return s;
}

}  // namespace

void DistSortProgram::AddOptions(OptionParser* parser) {
  parser->Add("sort-tasks", 0, true, "generator (map) tasks", "8");
  parser->Add("sort-records-per-task", 0, true, "records per task", "1000");
  parser->Add("sort-key-bytes", 0, true, "key width in bytes", "10");
  parser->Add("sort-value-bytes", 0, true, "payload width in bytes", "90");
  parser->Add("sort-splits", 0, true, "output partitions", "4");
}

Status DistSortProgram::Init(const Options& opts) {
  MRS_RETURN_IF_ERROR(MapReduce::Init(opts));
  config.tasks = static_cast<int>(opts.GetInt("sort-tasks", config.tasks));
  config.records_per_task =
      opts.GetInt("sort-records-per-task", config.records_per_task);
  config.key_bytes =
      static_cast<int>(opts.GetInt("sort-key-bytes", config.key_bytes));
  config.value_bytes =
      static_cast<int>(opts.GetInt("sort-value-bytes", config.value_bytes));
  config.reduce_splits =
      static_cast<int>(opts.GetInt("sort-splits", config.reduce_splits));
  if (config.tasks <= 0 || config.records_per_task < 0 ||
      config.key_bytes <= 0 || config.value_bytes < 0) {
    return InvalidArgumentError("distsort: invalid generation parameters");
  }
  BuildSplitterSample();
  return Status::Ok();
}

void DistSortProgram::BuildSplitterSample() {
  // The first sample_per_task records of every task's stream: cheap (a
  // prefix of the generator), deterministic, and identical in every
  // program instance — master, in-process slaves, and separate-process
  // slaves all derive the same ladder from the same seed.
  sample_.clear();
  int64_t per_task =
      std::min<int64_t>(config.sample_per_task, config.records_per_task);
  for (int t = 0; t < config.tasks; ++t) {
    MT19937_64 rng = Random({kGenTag, static_cast<uint64_t>(t)});
    for (int64_t i = 0; i < per_task; ++i) {
      sample_.push_back(RandomText(&rng, config.key_bytes));
      RandomText(&rng, config.value_bytes);  // keep the stream in phase
    }
  }
  std::sort(sample_.begin(), sample_.end());
}

Status DistSortProgram::InputData(Job& job, DataSetPtr* out) {
  // One seed record per generator task: (task index, records to produce).
  std::vector<KeyValue> seeds;
  seeds.reserve(static_cast<size_t>(config.tasks));
  for (int t = 0; t < config.tasks; ++t) {
    seeds.push_back({Value(static_cast<int64_t>(t)),
                     Value(config.records_per_task)});
  }
  *out = job.LocalData(std::move(seeds), config.tasks);
  return Status::Ok();
}

void DistSortProgram::Map(const Value& key, const Value& value,
                          const Emitter& emit) {
  int64_t task = key.AsInt();
  int64_t count = value.AsInt();
  MT19937_64 rng = Random({kGenTag, static_cast<uint64_t>(task)});
  for (int64_t i = 0; i < count; ++i) {
    std::string k = RandomText(&rng, config.key_bytes);
    std::string v = RandomText(&rng, config.value_bytes);
    emit(Value(std::move(k)), Value(std::move(v)));
  }
}

void DistSortProgram::Reduce(const Value& key, const ValueList& values,
                             const ValueEmitter& emit) {
  (void)key;
  for (const Value& v : values) emit(v);
}

int DistSortProgram::Partition(const Value& key, int num_splits) const {
  if (num_splits <= 1) return 0;
  if (!key.is_string() || sample_.empty()) {
    return MapReduce::Partition(key, num_splits);
  }
  // Rank of the key in the sorted sample, scaled to the split count: a
  // quantile ladder.  Monotone in the key, so split index order == key
  // range order at every fan-out.
  size_t rank = static_cast<size_t>(
      std::upper_bound(sample_.begin(), sample_.end(), key.AsString()) -
      sample_.begin());
  size_t idx = rank * static_cast<size_t>(num_splits) / (sample_.size() + 1);
  return static_cast<int>(
      std::min(idx, static_cast<size_t>(num_splits) - 1));
}

Status DistSortProgram::Run(Job& job) {
  DataSetPtr input;
  MRS_RETURN_IF_ERROR(InputData(job, &input));
  DataSetPtr mapped = job.MapData(input);
  DataSetOptions reduce_options;
  reduce_options.num_splits = config.reduce_splits;
  DataSetPtr reduced = job.ReduceData(mapped, reduce_options);
  MRS_ASSIGN_OR_RETURN(result, job.Collect(reduced));
  return Status::Ok();
}

Status DistSortProgram::Bypass() {
  result = ExpectedOutput();
  return Status::Ok();
}

std::vector<KeyValue> DistSortProgram::TaskRecords(int task) const {
  std::vector<KeyValue> records;
  records.reserve(static_cast<size_t>(config.records_per_task));
  MT19937_64 rng = Random({kGenTag, static_cast<uint64_t>(task)});
  for (int64_t i = 0; i < config.records_per_task; ++i) {
    std::string k = RandomText(&rng, config.key_bytes);
    std::string v = RandomText(&rng, config.value_bytes);
    records.push_back({Value(std::move(k)), Value(std::move(v))});
  }
  return records;
}

std::vector<KeyValue> DistSortProgram::ExpectedOutput() const {
  std::vector<KeyValue> all;
  all.reserve(static_cast<size_t>(config.tasks) *
              static_cast<size_t>(config.records_per_task));
  for (int t = 0; t < config.tasks; ++t) {
    std::vector<KeyValue> task = TaskRecords(t);
    all.insert(all.end(), std::make_move_iterator(task.begin()),
               std::make_move_iterator(task.end()));
  }
  std::stable_sort(all.begin(), all.end(), KeyValueLess);
  return all;
}

}  // namespace sort
}  // namespace mrs
