// DistSort: a TeraSort-class distributed sort on sample-based range
// partitioning — the canonical out-of-core shuffle workload.
//
// Map tasks *generate* their share of uniform random records (fixed-width
// keys, opaque payloads) from the program's seeded random streams, so the
// dataset can be arbitrarily larger than memory without a materialized
// input.  The identity reduce then sorts: the framework's sort-group step
// orders each partition, and the range Partition function makes partition
// boundaries respect key order, so concatenating partitions in index order
// (exactly what Job::Collect does) yields the globally sorted dataset.
//
// Splitters come from a key sample.  Every program instance — including a
// slave process constructing its own copy — draws the identical sample
// from the same seeded streams at Init, so the partition function agrees
// everywhere without any splitter broadcast.  The quantile-ladder form
// (rank in the sorted sample scaled to the split count) keeps Partition
// monotone in the key for *any* split count, which is what makes both the
// shuffle partitioning and the output partitioning range-ordered.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/job.h"
#include "core/program.h"

namespace mrs {
namespace sort {

struct DistSortConfig {
  /// Generator (map) tasks; each produces `records_per_task` records.
  int tasks = 8;
  int64_t records_per_task = 1000;
  /// Fixed key width; keys are uniform over an alphanumeric alphabet.
  int key_bytes = 10;
  /// Opaque payload width (TeraSort uses 10-byte keys, 90-byte payloads).
  int value_bytes = 90;
  /// Keys sampled per task for the splitter ladder (the first records of
  /// each task's stream — an unbiased sample of the uniform keyspace).
  int sample_per_task = 64;
  /// Output partitions of the sort (reduce dataset splits).
  int reduce_splits = 4;
};

class DistSortProgram : public MapReduce {
 public:
  DistSortConfig config;
  /// After Run: every generated record, globally sorted by (key, value).
  std::vector<KeyValue> result;

  void AddOptions(OptionParser* parser) override;
  Status Init(const Options& opts) override;
  Status InputData(Job& job, DataSetPtr* out) override;
  void Map(const Value& key, const Value& value, const Emitter& emit) override;
  /// Identity reduce: the sort happens in the framework's group step.
  void Reduce(const Value& key, const ValueList& values,
              const ValueEmitter& emit) override;
  /// Range partition over the sampled splitter ladder; monotone in the
  /// key for any num_splits.  Non-string keys (the generator seed records)
  /// fall back to hash partitioning.
  int Partition(const Value& key, int num_splits) const override;
  Status Run(Job& job) override;
  /// Ground truth: generate + std::sort, no framework.
  Status Bypass() override;

  /// The records map task `task` generates, in generation order.
  std::vector<KeyValue> TaskRecords(int task) const;
  /// All records of all tasks, sorted by (key, value) — what `result`
  /// must be byte-identical to.
  std::vector<KeyValue> ExpectedOutput() const;
  /// Approximate payload size of the full dataset (keys + values).
  int64_t ApproxDatasetBytes() const {
    return static_cast<int64_t>(config.tasks) * config.records_per_task *
           (config.key_bytes + config.value_bytes);
  }

 private:
  void BuildSplitterSample();

  std::vector<std::string> sample_;  // sorted sampled keys
};

}  // namespace sort
}  // namespace mrs
