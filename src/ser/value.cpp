#include "ser/value.h"

#include <cassert>
#include <cmath>

#include "common/strings.h"

namespace mrs {

int64_t Value::AsInt() const {
  assert(type_ == Type::kInt);
  return int_;
}

double Value::AsDouble() const {
  assert(type_ == Type::kInt || type_ == Type::kDouble);
  return type_ == Type::kInt ? static_cast<double>(int_) : double_;
}

const std::string& Value::AsString() const {
  assert(type_ == Type::kString || type_ == Type::kBytes);
  return str_;
}

const ValueList& Value::AsList() const {
  assert(type_ == Type::kList);
  return *list_;
}

namespace {
/// Rank for cross-type ordering; Int and Double share a rank so mixed
/// numeric comparisons use numeric order (as Python 2 sorting did).
int TypeRank(Value::Type t) {
  switch (t) {
    case Value::Type::kNone: return 0;
    case Value::Type::kInt:
    case Value::Type::kDouble: return 1;
    case Value::Type::kString: return 2;
    case Value::Type::kBytes: return 3;
    case Value::Type::kList: return 4;
  }
  return 5;
}

int Cmp(int64_t a, int64_t b) { return a < b ? -1 : (a > b ? 1 : 0); }
int Cmp(double a, double b) { return a < b ? -1 : (a > b ? 1 : 0); }
}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type_);
  int rb = TypeRank(other.type_);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type_) {
    case Type::kNone:
      return 0;
    case Type::kInt:
      if (other.type_ == Type::kInt) return Cmp(int_, other.int_);
      return Cmp(static_cast<double>(int_), other.double_);
    case Type::kDouble:
      if (other.type_ == Type::kInt) {
        return Cmp(double_, static_cast<double>(other.int_));
      }
      return Cmp(double_, other.double_);
    case Type::kString:
    case Type::kBytes:
      return str_ < other.str_ ? -1 : (str_ > other.str_ ? 1 : 0);
    case Type::kList: {
      const ValueList& a = *list_;
      const ValueList& b = *other.list_;
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return Cmp(static_cast<int64_t>(a.size()), static_cast<int64_t>(b.size()));
    }
  }
  return 0;
}

uint64_t Value::Hash() const {
  Bytes buf;
  ByteWriter w(&buf);
  // An integral double hashes like the equal int, so hash respects ==.
  if (type_ == Type::kDouble && std::floor(double_) == double_ &&
      double_ >= -9.2e18 && double_ <= 9.2e18) {
    Value as_int(static_cast<int64_t>(double_));
    as_int.Serialize(&w);
  } else {
    Serialize(&w);
  }
  return Fnv1a64(std::string_view(reinterpret_cast<const char*>(buf.data()),
                                  buf.size()));
}

void Value::Serialize(ByteWriter* writer) const {
  writer->PutU8(static_cast<uint8_t>(type_));
  switch (type_) {
    case Type::kNone:
      break;
    case Type::kInt:
      writer->PutVarintSigned(int_);
      break;
    case Type::kDouble:
      writer->PutDouble(double_);
      break;
    case Type::kString:
    case Type::kBytes:
      writer->PutLengthPrefixed(str_);
      break;
    case Type::kList:
      writer->PutVarint(list_->size());
      for (const Value& v : *list_) v.Serialize(writer);
      break;
  }
}

Result<Value> Value::Deserialize(ByteReader* reader) {
  MRS_ASSIGN_OR_RETURN(uint8_t tag, reader->GetU8());
  switch (static_cast<Type>(tag)) {
    case Type::kNone:
      return Value();
    case Type::kInt: {
      MRS_ASSIGN_OR_RETURN(int64_t v, reader->GetVarintSigned());
      return Value(v);
    }
    case Type::kDouble: {
      MRS_ASSIGN_OR_RETURN(double v, reader->GetDouble());
      return Value(v);
    }
    case Type::kString: {
      MRS_ASSIGN_OR_RETURN(std::string s, reader->GetLengthPrefixed());
      return Value(std::move(s));
    }
    case Type::kBytes: {
      MRS_ASSIGN_OR_RETURN(std::string s, reader->GetLengthPrefixed());
      return Value::BytesValue(std::move(s));
    }
    case Type::kList: {
      MRS_ASSIGN_OR_RETURN(uint64_t n, reader->GetVarint());
      if (n > (1ull << 30)) return DataLossError("absurd list length");
      ValueList list;
      list.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        MRS_ASSIGN_OR_RETURN(Value v, Deserialize(reader));
        list.push_back(std::move(v));
      }
      return Value(std::move(list));
    }
  }
  return DataLossError("unknown Value tag: " + std::to_string(tag));
}

std::string Value::Repr() const {
  switch (type_) {
    case Type::kNone:
      return "None";
    case Type::kInt:
      return std::to_string(int_);
    case Type::kDouble: {
      std::string s = StrPrintf("%.17g", double_);
      // Ensure a double never reads back as an int.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case Type::kString:
    case Type::kBytes: {
      std::string out = type_ == Type::kBytes ? "b'" : "'";
      for (char c : str_) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '\'': out += "\\'"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
              out += StrPrintf("\\x%02x", static_cast<unsigned char>(c));
            } else {
              out += c;
            }
        }
      }
      out += '\'';
      return out;
    }
    case Type::kList: {
      std::string out = "[";
      for (size_t i = 0; i < list_->size(); ++i) {
        if (i > 0) out += ", ";
        out += (*list_)[i].Repr();
      }
      return out + "]";
    }
  }
  return "?";
}

size_t Value::ApproxMemoryBytes() const {
  size_t bytes = sizeof(Value) + str_.size();
  if (list_) {
    bytes += sizeof(ValueList);
    for (const Value& v : *list_) bytes += v.ApproxMemoryBytes();
  }
  return bytes;
}

}  // namespace mrs
