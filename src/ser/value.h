// The dynamic key/value type that flows through MapReduce operations.
//
// Mrs passes arbitrary Python objects between map and reduce; in C++ the
// equivalent is a small dynamically-typed Value (none, int, double, string,
// bytes, list).  Values order and compare deterministically — the sort and
// group-by-key step depends on a total order — and serialize to a compact
// tagged binary format (ser/record.h) for intermediate data.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/status.h"

namespace mrs {

class Value;
using ValueList = std::vector<Value>;

class Value {
 public:
  enum class Type : uint8_t {
    kNone = 0,
    kInt = 1,
    kDouble = 2,
    kString = 3,
    kBytes = 4,
    kList = 5,
  };

  Value() : type_(Type::kNone) {}
  Value(int v) : type_(Type::kInt), int_(v) {}                   // NOLINT
  Value(int64_t v) : type_(Type::kInt), int_(v) {}               // NOLINT
  Value(uint64_t v) : type_(Type::kInt), int_(static_cast<int64_t>(v)) {}  // NOLINT
  Value(double v) : type_(Type::kDouble), double_(v) {}          // NOLINT
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Value(std::string_view s) : type_(Type::kString), str_(s) {}   // NOLINT
  Value(const char* s) : type_(Type::kString), str_(s) {}        // NOLINT
  Value(ValueList list)                                          // NOLINT
      : type_(Type::kList), list_(std::make_shared<ValueList>(std::move(list))) {}

  static Value BytesValue(std::string data) {
    Value v;
    v.type_ = Type::kBytes;
    v.str_ = std::move(data);
    return v;
  }

  Type type() const { return type_; }
  bool is_none() const { return type_ == Type::kNone; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bytes() const { return type_ == Type::kBytes; }
  bool is_list() const { return type_ == Type::kList; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Unchecked accessors (assert in debug builds).
  int64_t AsInt() const;
  double AsDouble() const;  // promotes int
  const std::string& AsString() const;  // string or bytes
  const ValueList& AsList() const;

  /// Total order across types: None < Int/Double (numeric order, mixed) <
  /// String < Bytes < List (lexicographic).  Deterministic across runs.
  int Compare(const Value& other) const;
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Deterministic 64-bit hash (FNV over the serialized form); equal values
  /// hash equally, including int/double values that compare equal.
  uint64_t Hash() const;

  /// Tagged binary encoding.
  void Serialize(ByteWriter* writer) const;
  static Result<Value> Deserialize(ByteReader* reader);

  /// Python-repr-like rendering: None, 42, 3.5, 'text', b'...', [1, 'a'].
  std::string Repr() const;

  /// Rough in-memory footprint (for MemoryBudget accounting): the object
  /// itself plus heap payloads.  An estimate, not an exact allocator
  /// measurement — budget checks tolerate slack.
  size_t ApproxMemoryBytes() const;

 private:
  Type type_;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::shared_ptr<ValueList> list_;  // shared: cheap copies, immutable use
};

/// One record of intermediate or final data.
struct KeyValue {
  Value key;
  Value value;

  bool operator==(const KeyValue& other) const {
    return key == other.key && value == other.value;
  }
};

inline size_t ApproxMemoryBytes(const KeyValue& kv) {
  return kv.key.ApproxMemoryBytes() + kv.value.ApproxMemoryBytes();
}

/// Sort comparator for the group-by-key step: by key, ties by value so
/// output order is fully deterministic.
inline bool KeyValueLess(const KeyValue& a, const KeyValue& b) {
  int c = a.key.Compare(b.key);
  if (c != 0) return c < 0;
  return a.value.Compare(b.value) < 0;
}

}  // namespace mrs
