#include "ser/record.h"

#include <cctype>

#include "common/bytes.h"
#include "common/strings.h"

namespace mrs {

std::string EncodeBinaryRecords(const std::vector<KeyValue>& records) {
  Bytes buf;
  buf.reserve(records.size() * 16 + kBinaryRecordMagic.size());
  buf.insert(buf.end(), kBinaryRecordMagic.begin(), kBinaryRecordMagic.end());
  ByteWriter w(&buf);
  w.PutVarint(records.size());
  for (const KeyValue& kv : records) {
    kv.key.Serialize(&w);
    kv.value.Serialize(&w);
  }
  return std::string(reinterpret_cast<const char*>(buf.data()), buf.size());
}

Result<std::vector<KeyValue>> DecodeBinaryRecords(std::string_view data) {
  if (!StartsWith(data, kBinaryRecordMagic)) {
    return DataLossError("missing binary record magic");
  }
  ByteReader r(data.substr(kBinaryRecordMagic.size()));
  MRS_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n > (1ull << 32)) return DataLossError("absurd record count");
  std::vector<KeyValue> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    MRS_ASSIGN_OR_RETURN(Value key, Value::Deserialize(&r));
    MRS_ASSIGN_OR_RETURN(Value value, Value::Deserialize(&r));
    out.push_back(KeyValue{std::move(key), std::move(value)});
  }
  if (!r.empty()) return DataLossError("trailing bytes after records");
  return out;
}

std::string EncodeTextRecords(const std::vector<KeyValue>& records) {
  std::string out;
  for (const KeyValue& kv : records) {
    out += kv.key.Repr();
    out += '\t';
    out += kv.value.Repr();
    out += '\n';
  }
  return out;
}

namespace {

/// Cursor-based repr parser.
class ReprParser {
 public:
  explicit ReprParser(std::string_view s) : s_(s) {}

  Result<Value> Parse() {
    MRS_ASSIGN_OR_RETURN(Value v, ParseOne());
    SkipSpace();
    if (pos_ != s_.size()) return DataLossError("trailing text in repr");
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  Result<Value> ParseOne() {
    SkipSpace();
    if (pos_ >= s_.size()) return DataLossError("empty repr");
    char c = s_[pos_];
    if (s_.substr(pos_, 4) == "None") {
      pos_ += 4;
      return Value();
    }
    if (c == '\'' || (c == 'b' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '\'')) {
      bool is_bytes = (c == 'b');
      if (is_bytes) ++pos_;
      return ParseQuoted(is_bytes);
    }
    if (c == '[') return ParseList();
    return ParseNumber();
  }

  Result<Value> ParseQuoted(bool is_bytes) {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '\'') {
        ++pos_;
        return is_bytes ? Value::BytesValue(std::move(out)) : Value(std::move(out));
      }
      if (c == '\\') {
        if (pos_ + 1 >= s_.size()) return DataLossError("dangling escape");
        char e = s_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '\\': out += '\\'; break;
          case '\'': out += '\''; break;
          case 'x': {
            if (pos_ + 2 > s_.size()) return DataLossError("bad \\x escape");
            auto hex = [](char h) -> int {
              if (h >= '0' && h <= '9') return h - '0';
              if (h >= 'a' && h <= 'f') return h - 'a' + 10;
              if (h >= 'A' && h <= 'F') return h - 'A' + 10;
              return -1;
            };
            int hi = hex(s_[pos_]);
            int lo = hex(s_[pos_ + 1]);
            if (hi < 0 || lo < 0) return DataLossError("bad \\x escape");
            out += static_cast<char>(hi * 16 + lo);
            pos_ += 2;
            break;
          }
          default:
            return DataLossError(std::string("unknown escape \\") + e);
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return DataLossError("unterminated string repr");
  }

  Result<Value> ParseList() {
    ++pos_;  // '['
    ValueList items;
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return Value(std::move(items));
    }
    while (true) {
      MRS_ASSIGN_OR_RETURN(Value v, ParseOne());
      items.push_back(std::move(v));
      SkipSpace();
      if (pos_ >= s_.size()) return DataLossError("unterminated list repr");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return Value(std::move(items));
      }
      return DataLossError("expected ',' or ']' in list repr");
    }
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '+' || s_[pos_] == '-' || s_[pos_] == '.')) {
      ++pos_;
    }
    std::string_view tok = s_.substr(start, pos_ - start);
    if (tok.empty()) return DataLossError("expected number in repr");
    if (tok.find('.') == std::string_view::npos &&
        tok.find('e') == std::string_view::npos &&
        tok.find('E') == std::string_view::npos &&
        tok.find("inf") == std::string_view::npos &&
        tok.find("nan") == std::string_view::npos) {
      auto v = ParseInt64(tok);
      if (!v.has_value()) return DataLossError("bad int repr: " + std::string(tok));
      return Value(*v);
    }
    auto v = ParseDouble(tok);
    if (!v.has_value()) return DataLossError("bad double repr: " + std::string(tok));
    return Value(*v);
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> ParseRepr(std::string_view text) {
  return ReprParser(text).Parse();
}

Result<std::vector<KeyValue>> DecodeTextRecords(std::string_view data) {
  std::vector<KeyValue> out;
  for (std::string_view line : SplitChar(data, '\n')) {
    if (Trim(line).empty()) continue;
    size_t tab = line.find('\t');
    if (tab == std::string_view::npos) {
      return DataLossError("text record missing TAB: " + std::string(line));
    }
    MRS_ASSIGN_OR_RETURN(Value key, ParseRepr(line.substr(0, tab)));
    MRS_ASSIGN_OR_RETURN(Value value, ParseRepr(line.substr(tab + 1)));
    out.push_back(KeyValue{std::move(key), std::move(value)});
  }
  return out;
}

Result<std::vector<KeyValue>> DecodeRecords(std::string_view data) {
  if (StartsWith(data, kBinaryRecordMagic)) return DecodeBinaryRecords(data);
  return DecodeTextRecords(data);
}

std::vector<KeyValue> LinesToRecords(std::string_view text) {
  std::vector<KeyValue> out;
  int64_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    if (nl == std::string_view::npos) {
      if (!line.empty()) {
        out.push_back(KeyValue{Value(line_number), Value(line)});
      }
      break;
    }
    out.push_back(KeyValue{Value(line_number), Value(line)});
    ++line_number;
    start = nl + 1;
  }
  return out;
}

}  // namespace mrs
