// Record stream formats for intermediate and final MapReduce data.
//
// Two formats, as in Mrs:
//  * binary ("mrsb"): length-framed serialized KeyValue records — the
//    default for intermediate data moved between slaves;
//  * text: one "key<TAB>value" line per record using Value::Repr — the
//    human-readable output format and the loader for line-oriented input.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "ser/value.h"

namespace mrs {

/// Magic prefix identifying a binary record stream.
inline constexpr std::string_view kBinaryRecordMagic = "mrsb1\n";

/// Serialize records to the binary format (with magic header).
std::string EncodeBinaryRecords(const std::vector<KeyValue>& records);

/// Parse a complete binary record stream.
Result<std::vector<KeyValue>> DecodeBinaryRecords(std::string_view data);

/// Serialize records to the text format.
std::string EncodeTextRecords(const std::vector<KeyValue>& records);

/// Parse text records ("repr<TAB>repr" lines).  Values are parsed with
/// ParseRepr below; unparseable fields are DataLoss errors.
Result<std::vector<KeyValue>> DecodeTextRecords(std::string_view data);

/// Parse one Value from its Repr form (None, ints, doubles, quoted strings,
/// b'...' bytes, [..] lists).  Inverse of Value::Repr.
Result<Value> ParseRepr(std::string_view text);

/// Auto-detect (binary magic vs text) and decode.
Result<std::vector<KeyValue>> DecodeRecords(std::string_view data);

/// Plain-text lines -> (line_number, line) records, the default input
/// format for text files (WordCount's K1 = line number, V1 = line).
std::vector<KeyValue> LinesToRecords(std::string_view text);

}  // namespace mrs
