#include "halton/pi_kernel.h"

#include "interp/treewalk.h"
#include "interp/vm.h"

namespace mrs {

Result<PiEngine> ParsePiEngine(const std::string& name) {
  if (name == "native" || name == "c") return PiEngine::kNative;
  if (name == "vm" || name == "pypy") return PiEngine::kVm;
  if (name == "treewalk" || name == "python" || name == "pure") {
    return PiEngine::kTreeWalk;
  }
  return InvalidArgumentError("unknown pi engine: " + name);
}

std::string_view PiEngineName(PiEngine engine) {
  switch (engine) {
    case PiEngine::kNative: return "native";
    case PiEngine::kVm: return "vm";
    case PiEngine::kTreeWalk: return "treewalk";
  }
  return "?";
}

namespace {

class NativePiKernel final : public PiKernel {
 public:
  Result<uint64_t> CountInside(uint64_t start, uint64_t count) override {
    return CountInsideNative(start, count);
  }
  PiEngine engine() const override { return PiEngine::kNative; }
};

class VmPiKernel final : public PiKernel {
 public:
  Status Init() { return vm_.LoadSource(HaltonPiMiniPySource()); }

  Result<uint64_t> CountInside(uint64_t start, uint64_t count) override {
    MRS_ASSIGN_OR_RETURN(
        minipy::PyValue out,
        vm_.Call("count_inside",
                 {minipy::PyValue(static_cast<int64_t>(start)),
                  minipy::PyValue(static_cast<int64_t>(count))}));
    return static_cast<uint64_t>(out.AsInt());
  }
  PiEngine engine() const override { return PiEngine::kVm; }

 private:
  minipy::Vm vm_;
};

class TreeWalkPiKernel final : public PiKernel {
 public:
  Status Init() { return walker_.LoadSource(HaltonPiMiniPySource()); }

  Result<uint64_t> CountInside(uint64_t start, uint64_t count) override {
    MRS_ASSIGN_OR_RETURN(
        minipy::PyValue out,
        walker_.Call("count_inside",
                     {minipy::PyValue(static_cast<int64_t>(start)),
                      minipy::PyValue(static_cast<int64_t>(count))}));
    return static_cast<uint64_t>(out.AsInt());
  }
  PiEngine engine() const override { return PiEngine::kTreeWalk; }

 private:
  minipy::TreeWalker walker_;
};

}  // namespace

Result<std::unique_ptr<PiKernel>> PiKernel::Create(PiEngine engine) {
  switch (engine) {
    case PiEngine::kNative:
      return std::unique_ptr<PiKernel>(new NativePiKernel());
    case PiEngine::kVm: {
      auto kernel = std::make_unique<VmPiKernel>();
      MRS_RETURN_IF_ERROR(kernel->Init());
      return std::unique_ptr<PiKernel>(std::move(kernel));
    }
    case PiEngine::kTreeWalk: {
      auto kernel = std::make_unique<TreeWalkPiKernel>();
      MRS_RETURN_IF_ERROR(kernel->Init());
      return std::unique_ptr<PiKernel>(std::move(kernel));
    }
  }
  return InternalError("unknown engine");
}

}  // namespace mrs
