#include "halton/pi_kernel.h"

#include "analysis/analysis.h"
#include "interp/treewalk.h"
#include "interp/vm.h"

namespace mrs {

Result<PiEngine> ParsePiEngine(const std::string& name) {
  if (name == "native" || name == "c") return PiEngine::kNative;
  if (name == "vm" || name == "pypy") return PiEngine::kVm;
  if (name == "vm-typed" || name == "vmtyped" || name == "typed") {
    return PiEngine::kVmTyped;
  }
  if (name == "treewalk" || name == "python" || name == "pure") {
    return PiEngine::kTreeWalk;
  }
  return InvalidArgumentError("unknown pi engine: " + name);
}

std::string_view PiEngineName(PiEngine engine) {
  switch (engine) {
    case PiEngine::kNative: return "native";
    case PiEngine::kVm: return "vm";
    case PiEngine::kVmTyped: return "vm-typed";
    case PiEngine::kTreeWalk: return "treewalk";
  }
  return "?";
}

namespace {

class NativePiKernel final : public PiKernel {
 public:
  Result<uint64_t> CountInside(uint64_t start, uint64_t count) override {
    return CountInsideNative(start, count);
  }
  PiEngine engine() const override { return PiEngine::kNative; }
};

class VmPiKernel final : public PiKernel {
 public:
  explicit VmPiKernel(bool typed) : typed_(typed) {}

  Status Init() {
    if (!typed_) {
      // The plain "vm" engine is the generic-loop baseline the typed tier
      // is measured against; pin it there even when facts are available.
      vm_.set_typed_tier_enabled(false);
      return vm_.LoadSource(HaltonPiMiniPySource());
    }
    // Route through the analysis pipeline so the module carries a type
    // fact table (the π source is a plain module, not a map/reduce
    // kernel, hence no kernel profile).
    analysis::AnalysisOptions options;
    options.kernel_profile = false;
    analysis::AnalysisResult analyzed =
        analysis::AnalyzeKernelSource(HaltonPiMiniPySource(), options);
    if (!analyzed.ok() || analyzed.module == nullptr) {
      return InternalError("pi kernel source failed analysis");
    }
    return vm_.LoadModule(analyzed.module);
  }

  Result<uint64_t> CountInside(uint64_t start, uint64_t count) override {
    MRS_ASSIGN_OR_RETURN(
        minipy::PyValue out,
        vm_.Call("count_inside",
                 {minipy::PyValue(static_cast<int64_t>(start)),
                  minipy::PyValue(static_cast<int64_t>(count))}));
    return static_cast<uint64_t>(out.AsInt());
  }
  PiEngine engine() const override {
    return typed_ ? PiEngine::kVmTyped : PiEngine::kVm;
  }

 private:
  bool typed_;
  minipy::Vm vm_;
};

class TreeWalkPiKernel final : public PiKernel {
 public:
  Status Init() { return walker_.LoadSource(HaltonPiMiniPySource()); }

  Result<uint64_t> CountInside(uint64_t start, uint64_t count) override {
    MRS_ASSIGN_OR_RETURN(
        minipy::PyValue out,
        walker_.Call("count_inside",
                     {minipy::PyValue(static_cast<int64_t>(start)),
                      minipy::PyValue(static_cast<int64_t>(count))}));
    return static_cast<uint64_t>(out.AsInt());
  }
  PiEngine engine() const override { return PiEngine::kTreeWalk; }

 private:
  minipy::TreeWalker walker_;
};

}  // namespace

Result<std::unique_ptr<PiKernel>> PiKernel::Create(PiEngine engine) {
  switch (engine) {
    case PiEngine::kNative:
      return std::unique_ptr<PiKernel>(new NativePiKernel());
    case PiEngine::kVm:
    case PiEngine::kVmTyped: {
      auto kernel =
          std::make_unique<VmPiKernel>(engine == PiEngine::kVmTyped);
      MRS_RETURN_IF_ERROR(kernel->Init());
      return std::unique_ptr<PiKernel>(std::move(kernel));
    }
    case PiEngine::kTreeWalk: {
      auto kernel = std::make_unique<TreeWalkPiKernel>();
      MRS_RETURN_IF_ERROR(kernel->Init());
      return std::unique_ptr<PiKernel>(std::move(kernel));
    }
  }
  return InternalError("unknown engine");
}

}  // namespace mrs
