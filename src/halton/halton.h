// Halton quasi-random sequences and the π-estimation kernel (paper §V-B).
//
// The paper's PiEstimator draws 2-D points from Halton sequences in bases 2
// and 3: "the implementation of the Halton sequence is optimized to
// minimize the number of function calls and the number of comparison
// operations".  The incremental form below updates per-digit remainder
// arrays in O(1) amortized per point instead of recomputing the radical
// inverse from scratch.
#pragma once

#include <cstdint>
#include <vector>

namespace mrs {

/// Incremental radical-inverse generator for one base.
class HaltonSequence {
 public:
  explicit HaltonSequence(uint32_t base, uint64_t start_index = 0);

  /// Current value in [0, 1).
  double value() const { return value_; }
  uint64_t index() const { return index_; }

  /// Advance to the next element and return it.
  double Next();

  /// Direct (non-incremental) radical inverse, used for seeking and as the
  /// test oracle for the incremental update.
  static double RadicalInverse(uint32_t base, uint64_t index);

 private:
  void SeekTo(uint64_t index);

  uint32_t base_;
  uint64_t index_ = 0;
  double value_ = 0.0;
  // Digits of index_ in base_ (least significant first) and the remainder
  // values 1/b^(k+1) alongside.
  std::vector<uint32_t> digits_;
  std::vector<double> inv_weights_;
};

/// A 2-D Halton point stream (bases 2 and 3), the paper's sampling scheme.
class Halton2D {
 public:
  explicit Halton2D(uint64_t start_index = 0)
      : x_(2, start_index), y_(3, start_index) {}

  /// Produce the next point (x, y) in the unit square.
  void Next(double* x, double* y) {
    *x = x_.Next();
    *y = y_.Next();
  }

 private:
  HaltonSequence x_;
  HaltonSequence y_;
};

/// Count how many of the `count` Halton points starting at `start_index`
/// fall inside the quarter unit circle — the native ("C module") inner
/// loop of the paper's Fig 3b.
uint64_t CountInsideNative(uint64_t start_index, uint64_t count);

/// π estimate from totals: 4 * inside / total.
double EstimatePi(uint64_t inside, uint64_t total);

/// The same inner loop written in MiniPy (see src/interp), used for the
/// Fig 3a "pure Python"/"PyPy" series.  The function `count_inside(start,
/// count)` must be called after loading this module.
const char* HaltonPiMiniPySource();

}  // namespace mrs
