// The PiEstimator MapReduce program (paper §V-B), shared by the example
// binary and the Fig 3 bench harness.
//
// Input: (task, [start, count]) sample ranges.  Map: count Halton points
// inside the quarter circle using the configured engine.  Reduce: sum.
#pragma once

#include <cstdint>
#include <memory>

#include "core/job.h"
#include "core/program.h"
#include "halton/pi_kernel.h"

namespace mrs {

class PiEstimatorProgram : public MapReduce {
 public:
  int64_t samples = 1000000;
  int tasks = 8;
  PiEngine engine = PiEngine::kNative;

  /// Results after Run.
  double estimate = 0.0;
  int64_t inside = 0;

  void AddOptions(OptionParser* parser) override;
  Status Init(const Options& opts) override;
  Status InputData(Job& job, DataSetPtr* out) override;
  void Map(const Value& key, const Value& value, const Emitter& emit) override;
  void Reduce(const Value& key, const ValueList& values,
              const ValueEmitter& emit) override;
  Status Run(Job& job) override;
  /// Bypass: the plain serial loop (native kernel semantics respected per
  /// engine), used for the equivalence invariant.
  Status Bypass() override;

 private:
  /// Kernel for `engine` cached per thread: the VM/tree-walk kernels hold
  /// mutable interpreter state, so concurrent map tasks (thread
  /// implementation) must not share one.  Returns null on creation
  /// failure (already logged).
  PiKernel* ThreadLocalKernel();
};

}  // namespace mrs
