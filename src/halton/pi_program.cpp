#include "halton/pi_program.h"

#include "common/log.h"

namespace mrs {

void PiEstimatorProgram::AddOptions(OptionParser* parser) {
  parser->Add("pi-samples", 0, true, "total number of sample points",
              "1000000");
  parser->Add("pi-tasks", 0, true, "number of map tasks", "8");
  parser->Add("pi-engine", 0, true, "inner loop engine: native, vm, treewalk",
              "native");
}

Status PiEstimatorProgram::Init(const Options& opts) {
  MRS_RETURN_IF_ERROR(MapReduce::Init(opts));
  if (opts.Has("pi-samples")) {
    samples = opts.GetInt("pi-samples", samples);
    tasks = static_cast<int>(opts.GetInt("pi-tasks", tasks));
    MRS_ASSIGN_OR_RETURN(engine,
                         ParsePiEngine(opts.GetString("pi-engine", "native")));
  }
  if (tasks < 1) tasks = 1;
  return Status::Ok();
}

Status PiEstimatorProgram::InputData(Job& job, DataSetPtr* out) {
  std::vector<KeyValue> ranges;
  int64_t per_task = samples / tasks;
  int64_t remainder = samples % tasks;
  int64_t start = 0;
  for (int t = 0; t < tasks; ++t) {
    int64_t count = per_task + (t < remainder ? 1 : 0);
    ranges.push_back(KeyValue{
        Value(static_cast<int64_t>(t)),
        Value(ValueList{Value(start), Value(count)})});
    start += count;
  }
  *out = job.LocalData(std::move(ranges), tasks);
  return Status::Ok();
}

PiKernel* PiEstimatorProgram::ThreadLocalKernel() {
  // One kernel per (thread, engine): map tasks may run concurrently on a
  // shared program instance, and the VM/tree-walk kernels are stateful.
  thread_local std::unique_ptr<PiKernel> kernels[3];
  auto slot = static_cast<size_t>(engine);
  if (kernels[slot] == nullptr) {
    Result<std::unique_ptr<PiKernel>> kernel = PiKernel::Create(engine);
    if (!kernel.ok()) {
      MRS_LOG(kError, "pi") << "kernel creation failed: "
                            << kernel.status().ToString();
      return nullptr;
    }
    kernels[slot] = std::move(kernel).value();
  }
  return kernels[slot].get();
}

void PiEstimatorProgram::Map(const Value& key, const Value& value,
                             const Emitter& emit) {
  (void)key;
  const ValueList& range = value.AsList();
  uint64_t start = static_cast<uint64_t>(range[0].AsInt());
  uint64_t count = static_cast<uint64_t>(range[1].AsInt());
  PiKernel* kernel = ThreadLocalKernel();
  if (kernel == nullptr) return;
  Result<uint64_t> counted = kernel->CountInside(start, count);
  if (counted.ok()) {
    emit(Value(int64_t{0}),
         Value(ValueList{Value(static_cast<int64_t>(*counted)),
                         Value(static_cast<int64_t>(count))}));
  }
}

void PiEstimatorProgram::Reduce(const Value& key, const ValueList& values,
                                const ValueEmitter& emit) {
  (void)key;
  int64_t total_inside = 0;
  int64_t total = 0;
  for (const Value& v : values) {
    total_inside += v.AsList()[0].AsInt();
    total += v.AsList()[1].AsInt();
  }
  emit(Value(ValueList{Value(total_inside), Value(total)}));
}

Status PiEstimatorProgram::Run(Job& job) {
  DataSetPtr input;
  MRS_RETURN_IF_ERROR(InputData(job, &input));
  DataSetPtr mapped = job.MapData(input);
  DataSetOptions reduce_options;
  reduce_options.num_splits = 1;
  DataSetPtr reduced = job.ReduceData(mapped, reduce_options);
  MRS_ASSIGN_OR_RETURN(std::vector<KeyValue> out, job.Collect(reduced));
  if (out.size() != 1) {
    return InternalError("expected exactly one reduced record, got " +
                         std::to_string(out.size()));
  }
  inside = out[0].value.AsList()[0].AsInt();
  int64_t total = out[0].value.AsList()[1].AsInt();
  estimate = EstimatePi(static_cast<uint64_t>(inside),
                        static_cast<uint64_t>(total));
  return Status::Ok();
}

Status PiEstimatorProgram::Bypass() {
  MRS_ASSIGN_OR_RETURN(std::unique_ptr<PiKernel> kernel,
                       PiKernel::Create(engine));
  MRS_ASSIGN_OR_RETURN(uint64_t counted,
                       kernel->CountInside(0, static_cast<uint64_t>(samples)));
  inside = static_cast<int64_t>(counted);
  estimate = EstimatePi(counted, static_cast<uint64_t>(samples));
  return Status::Ok();
}

}  // namespace mrs
