#include "halton/halton.h"

#include <cstddef>

namespace mrs {

HaltonSequence::HaltonSequence(uint32_t base, uint64_t start_index)
    : base_(base < 2 ? 2 : base) {
  SeekTo(start_index);
}

void HaltonSequence::SeekTo(uint64_t index) {
  index_ = index;
  digits_.clear();
  inv_weights_.clear();
  uint64_t i = index;
  double w = 1.0 / base_;
  while (i > 0) {
    digits_.push_back(static_cast<uint32_t>(i % base_));
    inv_weights_.push_back(w);
    i /= base_;
    w /= base_;
  }
  value_ = RadicalInverse(base_, index);
}

double HaltonSequence::Next() {
  // Increment the digit vector with carry (amortized O(1) digit writes),
  // then recompute the value by summation so floating-point error never
  // accumulates across millions of points.
  ++index_;
  size_t k = 0;
  while (true) {
    if (k == digits_.size()) {
      digits_.push_back(0);
      inv_weights_.push_back(inv_weights_.empty()
                                 ? 1.0 / base_
                                 : inv_weights_.back() / base_);
    }
    if (digits_[k] + 1 < base_) {
      ++digits_[k];
      break;
    }
    digits_[k] = 0;
    ++k;
  }
  double v = 0.0;
  for (size_t j = digits_.size(); j-- > 0;) {
    if (digits_[j] != 0) v += digits_[j] * inv_weights_[j];
  }
  value_ = v;
  return value_;
}

double HaltonSequence::RadicalInverse(uint32_t base, uint64_t index) {
  double v = 0.0;
  double f = 1.0 / base;
  while (index > 0) {
    v += f * static_cast<double>(index % base);
    index /= base;
    f /= base;
  }
  return v;
}

uint64_t CountInsideNative(uint64_t start_index, uint64_t count) {
  Halton2D points(start_index);
  uint64_t inside = 0;
  for (uint64_t i = 0; i < count; ++i) {
    double x, y;
    points.Next(&x, &y);
    if (x * x + y * y <= 1.0) ++inside;
  }
  return inside;
}

double EstimatePi(uint64_t inside, uint64_t total) {
  if (total == 0) return 0.0;
  return 4.0 * static_cast<double>(inside) / static_cast<double>(total);
}

const char* HaltonPiMiniPySource() {
  return R"(
def radical_inverse(base, i):
    v = 0.0
    f = 1.0 / base
    while i > 0:
        v = v + f * (i % base)
        i = i // base
        f = f / base
    return v

def count_inside(start, count):
    n = 0
    i = start + 1
    end = start + count
    while i <= end:
        x = radical_inverse(2, i)
        y = radical_inverse(3, i)
        if x * x + y * y <= 1.0:
            n = n + 1
        i = i + 1
    return n
)";
}

}  // namespace mrs
