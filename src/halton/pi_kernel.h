// The π-estimation inner loop under each "language" (paper Fig 3).
//
//   kNative   — C++ (the paper's ctypes C module)
//   kVm       — MiniPy bytecode VM, generic loop only (the paper's PyPy)
//   kVmTyped  — MiniPy bytecode VM with the typed, unboxed tier enabled
//               (analysis/typeinfer.h facts gate unboxed execution)
//   kTreeWalk — MiniPy tree-walking interpreter (the paper's pure Python)
//
// All engines count Halton points inside the quarter circle; the MiniPy
// engines execute HaltonPiMiniPySource().  kNative uses the incremental
// Halton generator; the MiniPy engines use the direct radical inverse, so
// counts may differ by floating-point hair on boundary points —
// EstimatePi agreement is asserted to 1e-3 in tests, not bit equality.
// kVm and kVmTyped, by contrast, are asserted *bit-identical*: the typed
// tier is an execution strategy, never a semantics change.
#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "halton/halton.h"

namespace mrs {

enum class PiEngine { kNative, kVm, kVmTyped, kTreeWalk };

/// Parse "native" / "vm" / "vm-typed" / "treewalk" (aliases: "c", "pypy",
/// "typed", "python").
Result<PiEngine> ParsePiEngine(const std::string& name);
std::string_view PiEngineName(PiEngine engine);

/// A per-thread π kernel.  Not thread-safe: create one per worker.
class PiKernel {
 public:
  static Result<std::unique_ptr<PiKernel>> Create(PiEngine engine);
  virtual ~PiKernel() = default;

  /// Count points with indices (start, start+count] inside the circle.
  virtual Result<uint64_t> CountInside(uint64_t start, uint64_t count) = 0;

  virtual PiEngine engine() const = 0;
};

}  // namespace mrs
