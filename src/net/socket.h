// TCP sockets (blocking and non-blocking) over IPv4.
//
// The Mrs master listens on one TCP port (written to a port file when
// ephemeral); slaves connect knowing only host:port.  Intermediate data is
// served by a per-slave HTTP server on another ephemeral port.  These
// wrappers provide exactly that: listen/accept/connect plus whole-buffer
// send/recv helpers with Status-based error reporting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "net/fd.h"

namespace mrs {

/// host:port pair; host is an IPv4 dotted quad or "localhost".
struct SocketAddr {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const;
  /// Parse "host:port".
  static Result<SocketAddr> Parse(std::string_view s);
};

class TcpConn;

/// A listening TCP socket bound to 127.0.0.1 (or a given host).
class TcpListener {
 public:
  /// Bind and listen; port 0 picks an ephemeral port (retrievable via
  /// local_addr), mirroring Mrs's "master writes its port to a file".
  static Result<TcpListener> Listen(const std::string& host, uint16_t port,
                                    int backlog = 128);

  const SocketAddr& local_addr() const { return addr_; }
  int fd() const { return fd_.get(); }

  /// Blocking accept.
  Result<TcpConn> Accept() const;

  /// Make accepts non-blocking (for event-loop use).
  Status SetNonBlocking(bool enabled) const;

  /// Stop listening.  Pending not-yet-accepted connections are reset, and
  /// later connect()s are refused — without this, a peer connecting after
  /// the acceptor stopped would queue in the backlog and block forever
  /// waiting for a response no one will send.
  void Close() { fd_.Reset(); }

 private:
  TcpListener(Fd fd, SocketAddr addr) : fd_(std::move(fd)), addr_(std::move(addr)) {}
  Fd fd_;
  SocketAddr addr_;
};

/// A connected TCP stream.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(Fd fd) : fd_(std::move(fd)) {}

  /// Blocking connect with optional timeout (seconds; <=0 means default OS
  /// behaviour).
  static Result<TcpConn> Connect(const SocketAddr& addr,
                                 double timeout_seconds = 10.0);

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  Status SetNonBlocking(bool enabled) const;
  Status SetNoDelay(bool enabled) const;

  /// Read up to `len` bytes.  Returns 0 on orderly EOF.
  Result<size_t> Read(void* buf, size_t len) const;

  /// Write exactly `len` bytes (loops over partial writes).
  Status WriteAll(const void* buf, size_t len) const;
  Status WriteAll(std::string_view s) const {
    return WriteAll(s.data(), s.size());
  }

  /// Read until EOF into a string (bounded by max_bytes).
  Result<std::string> ReadToEnd(size_t max_bytes = 64 << 20) const;

  void Close() { fd_.Reset(); }

 private:
  Fd fd_;
};

}  // namespace mrs
