#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace mrs {

namespace {

Result<in_addr> ResolveHost(const std::string& host) {
  in_addr addr{};
  std::string h = (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, h.c_str(), &addr) != 1) {
    return InvalidArgumentError("cannot parse IPv4 address: " + host);
  }
  return addr;
}

Status SetFdNonBlocking(int fd, bool enabled) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return IoErrorFromErrno("fcntl(F_GETFL)", errno);
  if (enabled) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return IoErrorFromErrno("fcntl(F_SETFL)", errno);
  }
  return Status::Ok();
}

}  // namespace

std::string SocketAddr::ToString() const {
  return host + ":" + std::to_string(port);
}

Result<SocketAddr> SocketAddr::Parse(std::string_view s) {
  size_t colon = s.rfind(':');
  if (colon == std::string_view::npos) {
    return InvalidArgumentError("address missing ':': " + std::string(s));
  }
  auto port = ParseUint64(s.substr(colon + 1));
  if (!port.has_value() || *port > 65535) {
    return InvalidArgumentError("bad port in address: " + std::string(s));
  }
  SocketAddr addr;
  addr.host = std::string(s.substr(0, colon));
  addr.port = static_cast<uint16_t>(*port);
  return addr;
}

Result<TcpListener> TcpListener::Listen(const std::string& host, uint16_t port,
                                        int backlog) {
  MRS_ASSIGN_OR_RETURN(in_addr ip, ResolveHost(host));
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return IoErrorFromErrno("socket", errno);

  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr = ip;
  sa.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    return IoErrorFromErrno("bind", errno);
  }
  if (::listen(fd.get(), backlog) < 0) {
    return IoErrorFromErrno("listen", errno);
  }

  // Recover the actual port for ephemeral binds.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return IoErrorFromErrno("getsockname", errno);
  }
  SocketAddr addr;
  char buf[INET_ADDRSTRLEN];
  ::inet_ntop(AF_INET, &bound.sin_addr, buf, sizeof(buf));
  addr.host = buf;
  addr.port = ntohs(bound.sin_port);
  return TcpListener(std::move(fd), std::move(addr));
}

Result<TcpConn> TcpListener::Accept() const {
  while (true) {
    int cfd = ::accept(fd_.get(), nullptr, nullptr);
    if (cfd >= 0) {
      return TcpConn(Fd(cfd));
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return UnavailableError("accept would block");
    }
    return IoErrorFromErrno("accept", errno);
  }
}

Status TcpListener::SetNonBlocking(bool enabled) const {
  return SetFdNonBlocking(fd_.get(), enabled);
}

Result<TcpConn> TcpConn::Connect(const SocketAddr& addr,
                                 double timeout_seconds) {
  MRS_ASSIGN_OR_RETURN(in_addr ip, ResolveHost(addr.host));
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return IoErrorFromErrno("socket", errno);

  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr = ip;
  sa.sin_port = htons(addr.port);

  if (timeout_seconds > 0) {
    MRS_RETURN_IF_ERROR(SetFdNonBlocking(fd.get(), true));
    int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    if (rc < 0 && errno != EINPROGRESS) {
      return IoErrorFromErrno("connect " + addr.ToString(), errno);
    }
    if (rc < 0) {
      pollfd pfd{fd.get(), POLLOUT, 0};
      int timeout_ms = static_cast<int>(timeout_seconds * 1000);
      int n = ::poll(&pfd, 1, timeout_ms);
      if (n == 0) {
        return DeadlineExceededError("connect timed out: " + addr.ToString());
      }
      if (n < 0) return IoErrorFromErrno("poll(connect)", errno);
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
          err != 0) {
        return Status(StatusCode::kUnavailable,
                      "connect " + addr.ToString() + " failed: " +
                          std::strerror(err != 0 ? err : errno));
      }
    }
    MRS_RETURN_IF_ERROR(SetFdNonBlocking(fd.get(), false));
  } else {
    while (::connect(fd.get(), reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) <
           0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kUnavailable,
                    "connect " + addr.ToString() + " failed: " +
                        std::strerror(errno));
    }
  }
  return TcpConn(std::move(fd));
}

Status TcpConn::SetNonBlocking(bool enabled) const {
  return SetFdNonBlocking(fd_.get(), enabled);
}

Status TcpConn::SetNoDelay(bool enabled) const {
  int v = enabled ? 1 : 0;
  if (::setsockopt(fd_.get(), IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v)) < 0) {
    return IoErrorFromErrno("setsockopt(TCP_NODELAY)", errno);
  }
  return Status::Ok();
}

Result<size_t> TcpConn::Read(void* buf, size_t len) const {
  while (true) {
    ssize_t n = ::read(fd_.get(), buf, len);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return UnavailableError("read would block");
    }
    return IoErrorFromErrno("read", errno);
  }
}

Status TcpConn::WriteAll(const void* buf, size_t len) const {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t written = 0;
  while (written < len) {
    ssize_t n = ::write(fd_.get(), p + written, len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoErrorFromErrno("write", errno);
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> TcpConn::ReadToEnd(size_t max_bytes) const {
  std::string out;
  char buf[16384];
  while (out.size() < max_bytes) {
    MRS_ASSIGN_OR_RETURN(size_t n, Read(buf, sizeof(buf)));
    if (n == 0) return out;
    out.append(buf, n);
  }
  return DataLossError("ReadToEnd exceeded max_bytes");
}

}  // namespace mrs
