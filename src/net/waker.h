// Pipe-based wakeup, as in the paper:
//
//   "Writing a single byte to a pipe wakes up poll in a remote process or
//    thread and causes it to continue through its event loop."
//
// A Waker owns a pipe pair; any thread may call Notify(), and the event
// loop polls the read end and calls Drain() when it becomes readable.
#pragma once

#include "common/status.h"
#include "net/fd.h"

namespace mrs {

class Waker {
 public:
  /// Create the pipe pair (non-blocking read end).
  static Result<Waker> Create();

  Waker() = default;

  int read_fd() const { return read_end_.get(); }

  /// Write one byte to the pipe.  Safe from any thread and from signal
  /// handlers; a full pipe is fine (the loop is already scheduled to wake).
  void Notify() const;

  /// Consume all pending wakeup bytes.
  void Drain() const;

  bool valid() const { return read_end_.valid() && write_end_.valid(); }

 private:
  Waker(Fd read_end, Fd write_end)
      : read_end_(std::move(read_end)), write_end_(std::move(write_end)) {}

  Fd read_end_;
  Fd write_end_;
};

}  // namespace mrs
