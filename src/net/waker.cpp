#include "net/waker.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>

namespace mrs {

Result<Waker> Waker::Create() {
  int fds[2];
  if (::pipe(fds) < 0) return IoErrorFromErrno("pipe", errno);
  Fd read_end(fds[0]);
  Fd write_end(fds[1]);
  // Non-blocking on both ends: Notify must never block the caller, and
  // Drain must stop at an empty pipe.
  for (int fd : fds) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      return IoErrorFromErrno("fcntl(pipe)", errno);
    }
  }
  return Waker(std::move(read_end), std::move(write_end));
}

void Waker::Notify() const {
  uint8_t byte = 1;
  // EAGAIN (pipe full) is success: the loop will wake anyway.
  [[maybe_unused]] ssize_t n = ::write(write_end_.get(), &byte, 1);
}

void Waker::Drain() const {
  uint8_t buf[256];
  while (::read(read_end_.get(), buf, sizeof(buf)) > 0) {
  }
}

}  // namespace mrs
