#include "net/event_loop.h"

#include <algorithm>

#include "common/log.h"

namespace mrs {

EventLoop::EventLoop() : clock_(RealClock::Instance()) {
  Result<Waker> w = Waker::Create();
  if (!w.ok()) {
    MRS_LOG(kError, "loop") << "waker creation failed: "
                            << w.status().ToString();
  } else {
    waker_ = std::move(w).value();
  }
  loop_thread_ = std::this_thread::get_id();
}

EventLoop::~EventLoop() { Stop(); }

void EventLoop::WatchFd(int fd, FdEvents interest, FdCallback cb) {
  if (IsInLoopThread()) {
    watchers_[fd] = Watcher{interest, std::move(cb)};
  } else {
    Post([this, fd, interest, cb = std::move(cb)]() mutable {
      watchers_[fd] = Watcher{interest, std::move(cb)};
    });
  }
}

void EventLoop::UnwatchFd(int fd) {
  if (IsInLoopThread()) {
    watchers_.erase(fd);
  } else {
    Post([this, fd] { watchers_.erase(fd); });
  }
}

EventLoop::TimerId EventLoop::AddTimer(double delay_seconds,
                                       std::function<void()> cb) {
  TimerId id = next_timer_id_.fetch_add(1);
  double deadline = clock_.Now() + std::max(0.0, delay_seconds);
  {
    std::lock_guard<std::mutex> lock(timers_mutex_);
    timers_[id] = Timer{deadline, std::move(cb)};
  }
  waker_.Notify();
  return id;
}

void EventLoop::CancelTimer(TimerId id) {
  std::lock_guard<std::mutex> lock(timers_mutex_);
  timers_.erase(id);
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(fn));
  }
  waker_.Notify();
}

int EventLoop::ComputePollTimeoutMs(double max_wait_seconds) const {
  double wait = max_wait_seconds;
  {
    std::lock_guard<std::mutex> lock(
        const_cast<std::mutex&>(timers_mutex_));
    for (const auto& [id, timer] : timers_) {
      wait = std::min(wait, timer.deadline - clock_.Now());
    }
  }
  if (wait < 0) wait = 0;
  return static_cast<int>(wait * 1000.0) + (wait > 0 ? 1 : 0);
}

void EventLoop::FireDueTimers() {
  std::vector<std::function<void()>> due;
  {
    std::lock_guard<std::mutex> lock(timers_mutex_);
    double now = clock_.Now();
    for (auto it = timers_.begin(); it != timers_.end();) {
      if (it->second.deadline <= now) {
        due.push_back(std::move(it->second.cb));
        it = timers_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& cb : due) cb();
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

bool EventLoop::RunOnce(double timeout_seconds) {
  loop_thread_ = std::this_thread::get_id();
  if (stop_.load()) return false;

  // Snapshot pollfds: wakeup pipe first, then registered watchers.
  std::vector<pollfd> pfds;
  std::vector<int> fds;
  pfds.push_back(pollfd{waker_.read_fd(), POLLIN, 0});
  fds.push_back(-1);
  for (const auto& [fd, w] : watchers_) {
    short events = 0;
    if (w.interest.readable) events |= POLLIN;
    if (w.interest.writable) events |= POLLOUT;
    pfds.push_back(pollfd{fd, events, 0});
    fds.push_back(fd);
  }

  int timeout_ms = ComputePollTimeoutMs(timeout_seconds);
  int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (n < 0 && errno != EINTR) {
    MRS_LOG(kError, "loop") << "poll failed: " << errno;
    return false;
  }

  if (pfds[0].revents & POLLIN) waker_.Drain();
  DrainPosted();
  FireDueTimers();

  // Dispatch fd events.  A callback may unregister fds (including its
  // own), so re-check membership before each dispatch.
  for (size_t i = 1; i < pfds.size(); ++i) {
    short re = pfds[i].revents;
    if (re == 0) continue;
    auto it = watchers_.find(fds[i]);
    if (it == watchers_.end()) continue;
    FdEvents ev;
    ev.readable = (re & (POLLIN | POLLHUP | POLLERR)) != 0;
    ev.writable = (re & (POLLOUT | POLLERR)) != 0;
    // Copy the callback: it may replace or erase its own registration.
    FdCallback cb = it->second.cb;
    cb(ev);
  }
  return !stop_.load();
}

void EventLoop::Run() {
  loop_thread_ = std::this_thread::get_id();
  stop_.store(false);
  while (RunOnce(/*timeout_seconds=*/3600.0)) {
  }
}

void EventLoop::Stop() {
  stop_.store(true);
  waker_.Notify();
}

}  // namespace mrs
