// RAII file descriptor.
#pragma once

#include <unistd.h>

#include <utility>

namespace mrs {

/// Owns a POSIX file descriptor; closes on destruction.  Move-only.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Release ownership without closing.
  int Release() { return std::exchange(fd_, -1); }

  void Reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace mrs
