// Poll-based event loop with pipe wakeup and timers.
//
// Reproduces the Mrs main-thread discipline (paper §IV-B): the main thread
// of each master/slave runs an event loop based on poll(); it never blocks
// on locks for extended periods; other threads hand it work by pushing a
// closure and writing a wakeup byte to a pipe.
#pragma once

#include <poll.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "net/waker.h"

namespace mrs {

/// Events a watcher may subscribe to.
struct FdEvents {
  bool readable = false;
  bool writable = false;
};

class EventLoop {
 public:
  using FdCallback = std::function<void(FdEvents)>;
  using TimerId = uint64_t;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Watch an fd; the callback fires on the loop thread.  Re-registering an
  /// fd replaces its watcher.
  void WatchFd(int fd, FdEvents interest, FdCallback cb);
  void UnwatchFd(int fd);

  /// One-shot timer; fires on the loop thread after `delay_seconds`.
  TimerId AddTimer(double delay_seconds, std::function<void()> cb);
  void CancelTimer(TimerId id);

  /// Queue a closure to run on the loop thread; wakes the loop via the
  /// pipe.  Safe from any thread.  If called from the loop thread itself
  /// the closure still runs asynchronously (next iteration).
  void Post(std::function<void()> fn);

  /// Run until Stop() is called.  Must be called from exactly one thread.
  void Run();

  /// Run at most one poll iteration (useful for tests); waits up to
  /// `timeout_seconds` for activity.  Returns false if the loop is stopped.
  bool RunOnce(double timeout_seconds);

  /// Request the loop to exit; safe from any thread.
  void Stop();

  bool IsInLoopThread() const {
    return std::this_thread::get_id() == loop_thread_;
  }

 private:
  struct Watcher {
    FdEvents interest;
    FdCallback cb;
  };
  struct Timer {
    double deadline;
    std::function<void()> cb;
  };

  int ComputePollTimeoutMs(double max_wait_seconds) const;
  void FireDueTimers();
  void DrainPosted();

  Waker waker_;
  std::atomic<bool> stop_{false};
  std::thread::id loop_thread_;

  // fd watchers: only touched on the loop thread (WatchFd from other
  // threads goes through Post()).
  std::map<int, Watcher> watchers_;

  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;

  std::mutex timers_mutex_;
  std::map<TimerId, Timer> timers_;
  std::atomic<TimerId> next_timer_id_{1};

  const Clock& clock_;
};

}  // namespace mrs
