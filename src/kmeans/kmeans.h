// K-means clustering as iterative MapReduce — the algorithm class the
// paper's introduction leads with (ref [2], "Parallel k-means clustering
// based on MapReduce").
//
// Two MapReduce drivers share one dataset and must produce bit-identical
// centroid trajectories:
//
//  * replan ("assign"/"recenter"): the original carry-state pattern.  The
//    working records are point *chunks* that also carry the current
//    centroids; every round re-plans a full map+reduce over the complete
//    state, so every round re-ships every point.
//  * iterative ("iassign"/"irecenter", the default): the BSP mode.  The
//    point chunks are pinned resident (Job::Pin) on whichever runner or
//    slave executed them, and each superstep broadcasts only the current
//    centroids — the small delta — via DataSetOptions::broadcast.  The
//    map emits per-chunk partial sums; a single reduce task folds them in
//    chunk order (the canonical FP summation order) into new centroids.
//
// Bypass runs plain serial k-means over the same generated data and is the
// ground truth both MapReduce modes are checked against.
#pragma once

#include <string>
#include <vector>

#include "core/job.h"
#include "core/program.h"

namespace mrs {
namespace kmeans {

struct KMeansConfig {
  int num_points = 20000;
  int clusters = 8;
  int dims = 8;
  /// Point chunks == map tasks per round.
  int chunks = 8;
  int max_rounds = 30;
  /// Stop when the summed squared centroid shift falls below this.
  double tolerance = 1e-6;
  /// iterative (pinned chunks + centroid broadcast) vs replan
  /// (carry-state, full re-ship every round).
  bool iterative = true;
};

class KMeansProgram : public MapReduce {
 public:
  KMeansProgram();

  KMeansConfig config;

  // Results (filled by Run / Bypass).
  std::vector<std::vector<double>> centroids;
  int rounds_run = 0;
  /// One 64-bit FNV-1a hash of the centroid matrix per round,
  /// ';'-separated — the cross-implementation equivalence fingerprint.
  std::string trajectory;

  /// Print a human-readable summary after Run/Bypass (example binary).
  bool print_report = false;

  void AddOptions(OptionParser* parser) override;
  Status Init(const Options& opts) override;
  Status Run(Job& job) override;
  Status Bypass() override;

  // Deterministic data generation (public so tests can cross-check).
  std::vector<std::vector<double>> TrueCenters() const;
  std::vector<std::vector<double>> ChunkPoints(int chunk) const;
  std::vector<std::vector<double>> InitialCentroids() const;

 private:
  // Replan-mode operations.
  void AssignOp(const Value& key, const Value& value, const Emitter& emit);
  void RecenterOp(const Value& key, const ValueList& values,
                  const ValueEmitter& emit);
  // Iterative-mode operations (centroids arrive via MapReduce::Broadcast).
  void IterAssignOp(const Value& key, const Value& value,
                    const Emitter& emit);
  void IterRecenterOp(const Value& key, const ValueList& values,
                      const ValueEmitter& emit);

  Status RunReplan(Job& job);
  Status RunIterative(Job& job);

  /// Per-chunk partial sums/counts for the current centroids; the shared
  /// inner loop that keeps all modes FP-identical.
  void ChunkSums(const ValueList& points,
                 const std::vector<std::vector<double>>& cents,
                 std::vector<std::vector<double>>* sums,
                 std::vector<int64_t>* counts) const;
  /// Emit-side message shape shared by both assign ops.
  Value PackSumsMessage(int64_t chunk_id,
                        const std::vector<std::vector<double>>& sums,
                        const std::vector<int64_t>& counts) const;
  /// Fold sums messages in producing-chunk order; `fallback` supplies the
  /// centroid kept when a cluster received no points this round.
  std::vector<std::vector<double>> FoldSums(
      const std::vector<std::pair<int64_t, const Value*>>& messages,
      const std::vector<std::vector<double>>& fallback) const;

  void RecordRound();
  void Report() const;
};

}  // namespace kmeans
}  // namespace mrs
