#include "kmeans/kmeans.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "common/log.h"

namespace mrs {
namespace kmeans {

namespace {

Value PackVec(const std::vector<double>& v) {
  ValueList list;
  list.reserve(v.size());
  for (double x : v) list.push_back(Value(x));
  return Value(std::move(list));
}

std::vector<double> UnpackVec(const Value& v) {
  std::vector<double> out;
  out.reserve(v.AsList().size());
  for (const Value& x : v.AsList()) out.push_back(x.AsDouble());
  return out;
}

std::vector<std::vector<double>> UnpackVecs(const Value& v) {
  std::vector<std::vector<double>> out;
  out.reserve(v.AsList().size());
  for (const Value& x : v.AsList()) out.push_back(UnpackVec(x));
  return out;
}

Value PackVecs(const std::vector<std::vector<double>>& vs) {
  ValueList list;
  list.reserve(vs.size());
  for (const auto& v : vs) list.push_back(PackVec(v));
  return Value(std::move(list));
}

/// Chunk payload: ["chunk", [centroid...], [point...]].  Iterative mode
/// packs an empty centroid list — centroids travel via broadcast instead.
Value PackChunk(const std::vector<std::vector<double>>& centroids,
                const std::vector<std::vector<double>>& points) {
  ValueList list;
  list.push_back(Value("chunk"));
  list.push_back(PackVecs(centroids));
  list.push_back(PackVecs(points));
  return Value(std::move(list));
}

int Nearest(const std::vector<double>& p,
            const std::vector<std::vector<double>>& cents) {
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < cents.size(); ++c) {
    double d = 0;
    for (size_t i = 0; i < p.size(); ++i) {
      double diff = p[i] - cents[c][i];
      d += diff * diff;
    }
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

}  // namespace

KMeansProgram::KMeansProgram() {
  RegisterMap("assign",
              [this](const Value& k, const Value& v, const Emitter& e) {
                AssignOp(k, v, e);
              });
  RegisterReduce("recenter", [this](const Value& k, const ValueList& vs,
                                    const ValueEmitter& e) {
    RecenterOp(k, vs, e);
  });
  RegisterMap("iassign",
              [this](const Value& k, const Value& v, const Emitter& e) {
                IterAssignOp(k, v, e);
              });
  RegisterReduce("irecenter", [this](const Value& k, const ValueList& vs,
                                     const ValueEmitter& e) {
    IterRecenterOp(k, vs, e);
  });
}

void KMeansProgram::AddOptions(OptionParser* parser) {
  parser->Add("km-points", 0, true, "number of points", "20000");
  parser->Add("km-clusters", 0, true, "number of clusters", "8");
  parser->Add("km-dims", 0, true, "point dimensionality", "8");
  parser->Add("km-chunks", 0, true, "point chunks (map tasks)", "8");
  parser->Add("km-rounds", 0, true, "maximum iterations", "30");
  parser->Add("km-mode", 0, true,
              "execution mode: iterative (pinned chunks + centroid "
              "broadcast) or replan (re-ship state every round)",
              "iterative");
}

Status KMeansProgram::Init(const Options& opts) {
  MRS_RETURN_IF_ERROR(MapReduce::Init(opts));
  if (opts.Has("km-points")) {
    config.num_points =
        static_cast<int>(opts.GetInt("km-points", config.num_points));
    config.clusters =
        static_cast<int>(opts.GetInt("km-clusters", config.clusters));
    config.dims = static_cast<int>(opts.GetInt("km-dims", config.dims));
    config.chunks = static_cast<int>(opts.GetInt("km-chunks", config.chunks));
    config.max_rounds =
        static_cast<int>(opts.GetInt("km-rounds", config.max_rounds));
  }
  if (opts.Has("km-mode")) {
    std::string mode = opts.GetString("km-mode", "iterative");
    if (mode == "iterative") {
      config.iterative = true;
    } else if (mode == "replan") {
      config.iterative = false;
    } else {
      return InvalidArgumentError("unknown --km-mode: " + mode +
                                  " (want iterative or replan)");
    }
  }
  return Status::Ok();
}

// ---- Data generation: Gaussian blobs around hidden true centers ----------

std::vector<std::vector<double>> KMeansProgram::TrueCenters() const {
  std::vector<std::vector<double>> centers;
  for (int c = 0; c < config.clusters; ++c) {
    MT19937_64 rng = Random({0xC0, static_cast<uint64_t>(c)});
    std::vector<double> center(static_cast<size_t>(config.dims));
    for (double& x : center) x = rng.NextUniform(-50, 50);
    centers.push_back(std::move(center));
  }
  return centers;
}

std::vector<std::vector<double>> KMeansProgram::ChunkPoints(int chunk) const {
  auto centers = TrueCenters();
  MT19937_64 rng = Random({0xC1, static_cast<uint64_t>(chunk)});
  int per_chunk = config.num_points / config.chunks +
                  (chunk < config.num_points % config.chunks);
  std::vector<std::vector<double>> points;
  points.reserve(static_cast<size_t>(per_chunk));
  for (int i = 0; i < per_chunk; ++i) {
    const auto& center =
        centers[rng.NextBounded(static_cast<uint64_t>(config.clusters))];
    std::vector<double> p(static_cast<size_t>(config.dims));
    for (int d = 0; d < config.dims; ++d) {
      p[static_cast<size_t>(d)] =
          center[static_cast<size_t>(d)] + rng.NextGaussian() * 2.0;
    }
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<std::vector<double>> KMeansProgram::InitialCentroids() const {
  std::vector<std::vector<double>> cents;
  MT19937_64 rng = Random({0xC2});
  for (int c = 0; c < config.clusters; ++c) {
    std::vector<double> x(static_cast<size_t>(config.dims));
    for (double& v : x) v = rng.NextUniform(-60, 60);
    cents.push_back(std::move(x));
  }
  return cents;
}

// ---- Shared inner loops ---------------------------------------------------

void KMeansProgram::ChunkSums(const ValueList& points,
                              const std::vector<std::vector<double>>& cents,
                              std::vector<std::vector<double>>* sums,
                              std::vector<int64_t>* counts) const {
  sums->assign(cents.size(),
               std::vector<double>(static_cast<size_t>(config.dims), 0.0));
  counts->assign(cents.size(), 0);
  for (const Value& pv : points) {
    std::vector<double> p = UnpackVec(pv);
    int c = Nearest(p, cents);
    for (int d = 0; d < config.dims; ++d) {
      (*sums)[static_cast<size_t>(c)][static_cast<size_t>(d)] +=
          p[static_cast<size_t>(d)];
    }
    ++(*counts)[static_cast<size_t>(c)];
  }
}

Value KMeansProgram::PackSumsMessage(
    int64_t chunk_id, const std::vector<std::vector<double>>& sums,
    const std::vector<int64_t>& counts) const {
  // The message carries the producing chunk's id so the reduce can
  // accumulate in chunk order — floating-point addition is not
  // associative, and bit-identical results across implementations
  // require a canonical order.
  ValueList msg;
  msg.push_back(Value("sums"));
  msg.push_back(Value(chunk_id));
  msg.push_back(PackVecs(sums));
  ValueList count_list;
  for (int64_t n : counts) count_list.push_back(Value(n));
  msg.push_back(Value(std::move(count_list)));
  return Value(std::move(msg));
}

std::vector<std::vector<double>> KMeansProgram::FoldSums(
    const std::vector<std::pair<int64_t, const Value*>>& messages,
    const std::vector<std::vector<double>>& fallback) const {
  std::vector<std::vector<double>> total_sums(
      static_cast<size_t>(config.clusters),
      std::vector<double>(static_cast<size_t>(config.dims), 0.0));
  std::vector<int64_t> total_counts(static_cast<size_t>(config.clusters), 0);
  // Accumulate in producing-chunk order (canonical FP summation order).
  std::vector<std::pair<int64_t, const Value*>> ordered = messages;
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [chunk_id, mv] : ordered) {
    (void)chunk_id;
    const ValueList& list = mv->AsList();
    const ValueList& sum_vectors = list[2].AsList();
    const ValueList& counts = list[3].AsList();
    for (int c = 0; c < config.clusters; ++c) {
      std::vector<double> s = UnpackVec(sum_vectors[static_cast<size_t>(c)]);
      for (int d = 0; d < config.dims; ++d) {
        total_sums[static_cast<size_t>(c)][static_cast<size_t>(d)] +=
            s[static_cast<size_t>(d)];
      }
      total_counts[static_cast<size_t>(c)] +=
          counts[static_cast<size_t>(c)].AsInt();
    }
  }
  std::vector<std::vector<double>> new_cents;
  for (int c = 0; c < config.clusters; ++c) {
    if (total_counts[static_cast<size_t>(c)] > 0) {
      std::vector<double> mean = total_sums[static_cast<size_t>(c)];
      for (double& x : mean) {
        x /= static_cast<double>(total_counts[static_cast<size_t>(c)]);
      }
      new_cents.push_back(std::move(mean));
    } else {
      new_cents.push_back(fallback[static_cast<size_t>(c)]);
    }
  }
  return new_cents;
}

// ---- Replan-mode operations ----------------------------------------------

void KMeansProgram::AssignOp(const Value& key, const Value& value,
                             const Emitter& emit) {
  const ValueList& chunk = value.AsList();
  if (!chunk[0].is_string() || chunk[0].AsString() != "chunk") return;
  std::vector<std::vector<double>> cents = UnpackVecs(chunk[1]);

  std::vector<std::vector<double>> sums;
  std::vector<int64_t> counts;
  ChunkSums(chunk[2].AsList(), cents, &sums, &counts);

  // Broadcast partial sums to every chunk (allreduce over MapReduce).
  Value packed_msg = PackSumsMessage(key.AsInt(), sums, counts);
  for (int other = 0; other < config.chunks; ++other) {
    emit(Value(static_cast<int64_t>(other)), packed_msg);
  }
  // Carry the points forward unchanged (centroids get replaced in reduce).
  emit(key, value);
}

void KMeansProgram::RecenterOp(const Value& key, const ValueList& values,
                               const ValueEmitter& emit) {
  (void)key;
  const Value* chunk = nullptr;
  std::vector<std::pair<int64_t, const Value*>> messages;
  for (const Value& v : values) {
    const ValueList& list = v.AsList();
    if (list[0].AsString() == "chunk") {
      chunk = &v;
      continue;
    }
    messages.emplace_back(list[1].AsInt(), &v);
  }
  if (chunk == nullptr) return;
  const ValueList& old = chunk->AsList();
  // Empty clusters keep this round's centroid (carried in the chunk).
  std::vector<std::vector<double>> new_cents =
      FoldSums(messages, UnpackVecs(old[1]));
  std::vector<std::vector<double>> points = UnpackVecs(old[2]);
  emit(PackChunk(new_cents, points));
}

// ---- Iterative-mode operations -------------------------------------------

void KMeansProgram::IterAssignOp(const Value& key, const Value& value,
                                 const Emitter& emit) {
  const ValueList& chunk = value.AsList();
  if (!chunk[0].is_string() || chunk[0].AsString() != "chunk") return;
  if (!MapReduce::HasBroadcast()) {
    MRS_LOG(kError, "kmeans") << "iassign without a centroid broadcast";
    return;
  }
  std::vector<std::vector<double>> cents =
      UnpackVecs(MapReduce::Broadcast());

  std::vector<std::vector<double>> sums;
  std::vector<int64_t> counts;
  ChunkSums(chunk[2].AsList(), cents, &sums, &counts);
  // One tiny message per chunk; every message lands in reduce split 0.
  emit(Value(int64_t{0}), PackSumsMessage(key.AsInt(), sums, counts));
}

void KMeansProgram::IterRecenterOp(const Value& key, const ValueList& values,
                                   const ValueEmitter& emit) {
  (void)key;
  if (!MapReduce::HasBroadcast()) {
    MRS_LOG(kError, "kmeans") << "irecenter without a centroid broadcast";
    return;
  }
  std::vector<std::pair<int64_t, const Value*>> messages;
  for (const Value& v : values) {
    messages.emplace_back(v.AsList()[1].AsInt(), &v);
  }
  // Empty clusters keep this round's centroid (the broadcast).
  std::vector<std::vector<double>> new_cents =
      FoldSums(messages, UnpackVecs(MapReduce::Broadcast()));
  emit(PackVecs(new_cents));
}

// ---- Drivers --------------------------------------------------------------

Status KMeansProgram::Run(Job& job) {
  centroids.clear();
  trajectory.clear();
  rounds_run = 0;
  Status status = config.iterative ? RunIterative(job) : RunReplan(job);
  if (status.ok() && print_report) Report();
  return status;
}

Status KMeansProgram::RunReplan(Job& job) {
  std::vector<KeyValue> initial;
  auto cents = InitialCentroids();
  for (int chunk = 0; chunk < config.chunks; ++chunk) {
    initial.push_back(KeyValue{Value(static_cast<int64_t>(chunk)),
                               PackChunk(cents, ChunkPoints(chunk))});
  }
  DataSetPtr data = job.LocalData(std::move(initial), config.chunks);
  DataSetOptions assign_options;
  assign_options.op_name = "assign";
  assign_options.num_splits = config.chunks;
  DataSetOptions recenter_options;
  recenter_options.op_name = "recenter";
  recenter_options.num_splits = config.chunks;

  std::vector<std::vector<double>> previous = cents;
  for (int round = 1; round <= config.max_rounds; ++round) {
    DataSetPtr assigned = job.MapData(data, assign_options);
    DataSetPtr next = job.ReduceData(assigned, recenter_options);
    rounds_run = round;

    MRS_ASSIGN_OR_RETURN(std::vector<KeyValue> out, job.Collect(next));
    // Only now is it safe to free the consumed datasets: a lazy runner
    // computes `next` at Collect time from `data` and `assigned`.
    job.Discard(assigned);
    job.Discard(data);
    data = next;
    if (out.empty()) return InternalError("empty kmeans state");
    centroids = UnpackVecs(out[0].value.AsList()[1]);
    RecordRound();
    double shift = 0;
    for (int c = 0; c < config.clusters; ++c) {
      for (int d = 0; d < config.dims; ++d) {
        double diff =
            centroids[static_cast<size_t>(c)][static_cast<size_t>(d)] -
            previous[static_cast<size_t>(c)][static_cast<size_t>(d)];
        shift += diff * diff;
      }
    }
    previous = centroids;
    if (shift < config.tolerance) break;
  }
  job.Discard(data);
  return Status::Ok();
}

Status KMeansProgram::RunIterative(Job& job) {
  std::vector<KeyValue> initial;
  for (int chunk = 0; chunk < config.chunks; ++chunk) {
    initial.push_back(KeyValue{Value(static_cast<int64_t>(chunk)),
                               PackChunk({}, ChunkPoints(chunk))});
  }
  DataSetPtr data = job.LocalData(std::move(initial), config.chunks);
  // The tentpole: the point chunks never change, so pin them resident on
  // their executing runner/slaves; every superstep ships only the
  // centroid broadcast.
  job.Pin(data);

  DataSetOptions assign_options;
  assign_options.op_name = "iassign";
  assign_options.num_splits = 1;
  DataSetOptions recenter_options;
  recenter_options.op_name = "irecenter";
  recenter_options.num_splits = 1;

  auto cents = InitialCentroids();
  std::vector<std::vector<double>> previous = cents;
  Status status = Status::Ok();
  for (int round = 1; round <= config.max_rounds; ++round) {
    auto broadcast = std::make_shared<const Value>(PackVecs(cents));
    assign_options.broadcast = broadcast;
    recenter_options.broadcast = broadcast;
    DataSetPtr assigned = job.MapData(data, assign_options);
    DataSetPtr next = job.ReduceData(assigned, recenter_options);
    rounds_run = round;

    Result<std::vector<KeyValue>> out = job.Collect(next);
    if (!out.ok()) {
      status = out.status();
      break;
    }
    job.Discard(assigned);
    job.Discard(next);
    if (out->empty()) {
      status = InternalError("empty kmeans state");
      break;
    }
    centroids = UnpackVecs((*out)[0].value);
    RecordRound();
    double shift = 0;
    for (int c = 0; c < config.clusters; ++c) {
      for (int d = 0; d < config.dims; ++d) {
        double diff =
            centroids[static_cast<size_t>(c)][static_cast<size_t>(d)] -
            previous[static_cast<size_t>(c)][static_cast<size_t>(d)];
        shift += diff * diff;
      }
    }
    previous = centroids;
    cents = centroids;
    if (shift < config.tolerance) break;
  }
  job.Unpin(data);
  job.Discard(data);
  return status;
}

Status KMeansProgram::Bypass() {
  centroids.clear();
  trajectory.clear();
  rounds_run = 0;
  // Plain serial k-means over the same data; must match Run exactly.
  auto cents = InitialCentroids();
  std::vector<ValueList> all_chunks;
  for (int chunk = 0; chunk < config.chunks; ++chunk) {
    all_chunks.push_back(PackVecs(ChunkPoints(chunk)).AsList());
  }
  std::vector<std::vector<double>> previous = cents;
  for (int round = 1; round <= config.max_rounds; ++round) {
    std::vector<std::vector<double>> sums(
        static_cast<size_t>(config.clusters),
        std::vector<double>(static_cast<size_t>(config.dims), 0.0));
    std::vector<int64_t> counts(static_cast<size_t>(config.clusters), 0);
    // Accumulate per chunk, then combine in chunk order — the same FP
    // summation order as both MapReduce reduces.
    for (const ValueList& chunk_points : all_chunks) {
      std::vector<std::vector<double>> chunk_sums;
      std::vector<int64_t> chunk_counts;
      ChunkSums(chunk_points, cents, &chunk_sums, &chunk_counts);
      for (int c = 0; c < config.clusters; ++c) {
        for (int d = 0; d < config.dims; ++d) {
          sums[static_cast<size_t>(c)][static_cast<size_t>(d)] +=
              chunk_sums[static_cast<size_t>(c)][static_cast<size_t>(d)];
        }
        counts[static_cast<size_t>(c)] += chunk_counts[static_cast<size_t>(c)];
      }
    }
    for (int c = 0; c < config.clusters; ++c) {
      if (counts[static_cast<size_t>(c)] > 0) {
        std::vector<double> mean = sums[static_cast<size_t>(c)];
        for (double& x : mean) {
          x /= static_cast<double>(counts[static_cast<size_t>(c)]);
        }
        cents[static_cast<size_t>(c)] = std::move(mean);
      }
    }
    rounds_run = round;
    centroids = cents;
    RecordRound();
    double shift = 0;
    for (int c = 0; c < config.clusters; ++c) {
      for (int d = 0; d < config.dims; ++d) {
        double diff = cents[static_cast<size_t>(c)][static_cast<size_t>(d)] -
                      previous[static_cast<size_t>(c)][static_cast<size_t>(d)];
        shift += diff * diff;
      }
    }
    previous = cents;
    if (shift < config.tolerance) break;
  }
  if (print_report) Report();
  return Status::Ok();
}

void KMeansProgram::RecordRound() {
  // FNV-1a over the raw bits of the centroid matrix: a compact per-round
  // fingerprint that differs on any single-ULP divergence.
  uint64_t h = 1469598103934665603ull;
  for (const auto& c : centroids) {
    for (double x : c) {
      uint64_t bits;
      std::memcpy(&bits, &x, sizeof(bits));
      for (int i = 0; i < 8; ++i) {
        h ^= (bits >> (i * 8)) & 0xFF;
        h *= 1099511628211ull;
      }
    }
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  trajectory += buf;
  trajectory += ';';
}

void KMeansProgram::Report() const {
  std::printf("# k-means: %d points, %d clusters, %d dims, %d chunks (%s)\n",
              config.num_points, config.clusters, config.dims, config.chunks,
              config.iterative ? "iterative" : "replan");
  std::printf("# converged after %d rounds\n", rounds_run);
  for (size_t c = 0; c < centroids.size(); ++c) {
    std::printf("centroid %zu: [", c);
    for (size_t d = 0; d < centroids[c].size(); ++d) {
      std::printf("%s%.4f", d ? ", " : "", centroids[c][d]);
    }
    std::printf("]\n");
  }
}

}  // namespace kmeans
}  // namespace mrs
