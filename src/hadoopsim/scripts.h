// Models of the job startup scripts (paper Programs 3 and 4).
//
// The paper's subjective evaluation E2 compares what it takes to launch a
// MapReduce job on a shared (PBS) cluster: Mrs needs four script steps;
// Hadoop needs six phases including rewriting configuration files with
// sed, formatting and starting a private HDFS, starting and stopping
// daemons, and copying data in and out.  These models enumerate the steps
// with the class of action each performs, so the comparison bench can
// print counts and estimated costs rather than prose.
#pragma once

#include <string>
#include <vector>

namespace mrs {
namespace hadoopsim {

enum class StepKind {
  kShellCommand,     // plain command (ip addr, cat, mkdir)
  kConfigRewrite,    // editing config files (sed) — fragile
  kDaemonStart,      // long-running service start
  kDaemonStop,
  kFilesystemFormat, // namenode -format
  kDataCopy,         // moving data in/out of a private filesystem
  kWait,             // polling for readiness
  kJobRun,           // the actual MapReduce program
};

struct ScriptStep {
  std::string description;
  StepKind kind;
  /// Estimated wall seconds on the paper-era cluster (bring-up costs; the
  /// job-run step itself is excluded from overhead totals).
  double estimated_seconds;
};

/// Program 3: the Mrs PBS startup script.
std::vector<ScriptStep> MrsStartupScript(int num_slaves);

/// Program 4: the Hadoop PBS startup script (dedicated-infrastructure
/// setup replayed per job on a shared cluster).
std::vector<ScriptStep> HadoopStartupScript(int num_nodes);

struct ScriptSummary {
  int total_steps = 0;
  int config_rewrites = 0;
  int daemon_actions = 0;
  int data_copies = 0;
  double overhead_seconds = 0;  // everything except kJobRun
};

ScriptSummary Summarize(const std::vector<ScriptStep>& steps);

}  // namespace hadoopsim
}  // namespace mrs
