#include "hadoopsim/des.h"

#include <cassert>

namespace mrs {
namespace hadoopsim {

void Simulation::At(double at, EventFn fn) {
  assert(at >= now_ && "cannot schedule in the past");
  queue_.push(Event{at < now_ ? now_ : at, next_seq_++, std::move(fn)});
}

double Simulation::Run(double max_time) {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; move via const_cast is the
    // standard idiom-free workaround — copy the closure instead (cheap:
    // events are small).
    Event ev = queue_.top();
    queue_.pop();
    if (ev.time > max_time) {
      now_ = max_time;
      return now_;
    }
    now_ = ev.time;
    ++events_processed_;
    ev.fn();
  }
  return now_;
}

}  // namespace hadoopsim
}  // namespace mrs
