// HDFS model: namenode namespace + block placement over datanodes.
//
// The paper's point is that HDFS is *required* by Hadoop yet redundant and
// fragile on shared clusters ("the distributed filesystem may lose all of
// its data nodes ... within a few seconds" when the scheduler kills a
// job).  The model implements a namespace with replicated block placement,
// metadata RPC counting (which drives the many-small-files getSplits
// cost), and datanode decommissioning so tests can reproduce the
// everything-lost failure mode.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace mrs {
namespace hadoopsim {

struct BlockInfo {
  int64_t id = 0;
  int64_t size = 0;
  std::vector<int> replicas;  // datanode ids
};

struct HdfsFile {
  std::string path;
  int64_t size = 0;
  std::vector<BlockInfo> blocks;
};

class HdfsModel {
 public:
  HdfsModel(int num_datanodes, int replication = 3,
            int64_t block_size = 64ll << 20);

  /// Create a file of `size` bytes; blocks are placed round-robin with
  /// `replication` copies on distinct datanodes.
  Status CreateFile(const std::string& path, int64_t size);

  Result<const HdfsFile*> Stat(const std::string& path) const;

  /// All paths under a directory prefix (one listStatus RPC).
  std::vector<std::string> ListDir(const std::string& dir) const;

  Status Delete(const std::string& path);

  /// Remove a datanode; blocks whose last replica lived there are lost.
  void KillDatanode(int datanode);

  /// True if every block of every file still has >= 1 live replica.
  bool AllDataAvailable() const;
  /// Files that have lost all replicas of some block.
  std::vector<std::string> LostFiles() const;

  int num_datanodes() const { return num_datanodes_; }
  int num_live_datanodes() const;
  int64_t total_bytes() const;
  int64_t metadata_rpcs() const { return metadata_rpcs_; }

 private:
  int PickDatanode();

  int num_datanodes_;
  int replication_;
  int64_t block_size_;
  int64_t next_block_id_ = 1;
  int placement_cursor_ = 0;
  std::set<int> dead_;
  std::map<std::string, HdfsFile> files_;
  mutable int64_t metadata_rpcs_ = 0;
};

}  // namespace hadoopsim
}  // namespace mrs
