// The Hadoop control-plane simulation: JobTracker, TaskTrackers with
// periodic heartbeats, per-attempt JVM startup, setup/cleanup tasks, a
// barrier shuffle, and client completion polling.
//
// Faithful 0.20-era behaviours reproduced (each one is a named constant in
// ClusterConfig):
//   * tasks are handed out only on heartbeats, one per tracker heartbeat;
//   * completions are *noticed* only on the next heartbeat after a task
//     finishes;
//   * every job runs a setup task and a cleanup task, each paying the full
//     heartbeat + JVM cost — the core of the famous ~30 s floor;
//   * the job client polls for completion on a coarse interval;
//   * getSplits stats every input file (the many-small-files pathology).
// Simplifications (documented in DESIGN.md): reducers start after all maps
// (no slowstart), no speculative execution, one job at a time.
#pragma once

#include "common/status.h"
#include "hadoopsim/config.h"
#include "hadoopsim/des.h"
#include "hadoopsim/hdfs.h"

namespace mrs {
namespace hadoopsim {

class HadoopCluster {
 public:
  explicit HadoopCluster(ClusterConfig config);

  /// Simulate one job start-to-finish; returns per-phase simulated seconds.
  Result<JobResult> RunJob(const JobSpec& spec) const;

  /// Latency of running `iterations` back-to-back jobs (an iterative
  /// algorithm on Hadoop, §V-B's PSO estimate): per-job overhead is paid
  /// every time; daemons and staged data persist across jobs.
  Result<double> RunIterativeJobs(const JobSpec& spec, int iterations) const;

  const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
};

}  // namespace hadoopsim
}  // namespace mrs
