#include "hadoopsim/webhdfs.h"

#include "common/strings.h"
#include "http/client.h"

namespace mrs {
namespace hadoopsim {

namespace {
/// Extract op=... from a query string.
std::string QueryOp(std::string_view query) {
  for (std::string_view kv : SplitChar(query, '&')) {
    auto parts = SplitCharLimit(kv, '=', 2);
    if (parts.size() == 2 && parts[0] == "op") {
      return ToUpperAscii(parts[1]);
    }
  }
  return "";
}
}  // namespace

Result<std::unique_ptr<WebHdfsServer>> WebHdfsServer::Start(
    const std::string& host, uint16_t port, int num_datanodes) {
  std::unique_ptr<WebHdfsServer> server(new WebHdfsServer(num_datanodes));
  WebHdfsServer* raw = server.get();
  MRS_ASSIGN_OR_RETURN(
      server->server_,
      HttpServer::Start(host, port,
                        [raw](const HttpRequest& req) {
                          return raw->Handle(req);
                        },
                        /*num_workers=*/4));
  return server;
}

WebHdfsServer::~WebHdfsServer() {
  if (server_) server_->Shutdown();
}

Status WebHdfsServer::Create(const std::string& path, std::string content) {
  std::lock_guard<std::mutex> lock(mutex_);
  MRS_RETURN_IF_ERROR(
      hdfs_.CreateFile(path, static_cast<int64_t>(content.size())));
  contents_[path] = std::move(content);
  return Status::Ok();
}

Result<std::string> WebHdfsServer::Open(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  MRS_RETURN_IF_ERROR(hdfs_.Stat(path).status());
  auto it = contents_.find(path);
  if (it == contents_.end()) return NotFoundError("no content for " + path);
  if (!hdfs_.AllDataAvailable()) {
    // Over-strict but faithful to the failure mode the paper warns about:
    // if the private filesystem lost blocks, reads fail.
    for (const std::string& lost : hdfs_.LostFiles()) {
      if (lost == path) return DataLossError("blocks lost for " + path);
    }
  }
  return it->second;
}

Status WebHdfsServer::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  MRS_RETURN_IF_ERROR(hdfs_.Delete(path));
  contents_.erase(path);
  return Status::Ok();
}

std::vector<std::string> WebHdfsServer::ListStatus(
    const std::string& dir) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hdfs_.ListDir(dir);
}

HttpResponse WebHdfsServer::Handle(const HttpRequest& req) {
  auto [target, query] = SplitTarget(req.target);
  constexpr std::string_view kPrefix = "/webhdfs/v1";
  if (!StartsWith(target, kPrefix)) {
    return HttpResponse::NotFound("expected /webhdfs/v1/<path>");
  }
  std::string path(target.substr(kPrefix.size()));
  if (path.empty()) path = "/";
  std::string op = QueryOp(query);

  if (req.method == "GET" && op == "OPEN") {
    Result<std::string> content = Open(path);
    if (!content.ok()) {
      return HttpResponse::NotFound(content.status().ToString());
    }
    return HttpResponse::Ok(std::move(content).value(),
                            "application/octet-stream");
  }
  if (req.method == "GET" && op == "LISTSTATUS") {
    std::string body;
    for (const std::string& p : ListStatus(path)) {
      body += p;
      body += '\n';
    }
    return HttpResponse::Ok(std::move(body));
  }
  if (req.method == "GET" && op == "GETFILESTATUS") {
    std::lock_guard<std::mutex> lock(mutex_);
    Result<const HdfsFile*> file = hdfs_.Stat(path);
    if (!file.ok()) return HttpResponse::NotFound(file.status().ToString());
    return HttpResponse::Ok(
        StrPrintf("path=%s length=%lld blocks=%zu\n", path.c_str(),
                  static_cast<long long>((*file)->size),
                  (*file)->blocks.size()));
  }
  if (req.method == "PUT" && op == "CREATE") {
    Status status = Create(path, req.body);
    if (!status.ok()) return HttpResponse::BadRequest(status.ToString());
    return HttpResponse::Make(201, "Created", "");
  }
  if (req.method == "DELETE" || (req.method == "PUT" && op == "DELETE")) {
    Status status = Delete(path);
    if (!status.ok()) return HttpResponse::NotFound(status.ToString());
    return HttpResponse::Ok("deleted");
  }
  return HttpResponse::BadRequest("unsupported op '" + op + "'");
}

Result<std::string> WebHdfsFetch(const std::string& url) {
  constexpr std::string_view kScheme = "webhdfs://";
  if (!StartsWith(url, kScheme)) {
    return InvalidArgumentError("not a webhdfs url: " + url);
  }
  std::string_view rest = std::string_view(url).substr(kScheme.size());
  size_t slash = rest.find('/');
  if (slash == std::string_view::npos) {
    return InvalidArgumentError("webhdfs url missing path: " + url);
  }
  std::string http_url = "http://" + std::string(rest.substr(0, slash)) +
                         "/webhdfs/v1" + std::string(rest.substr(slash)) +
                         "?op=OPEN";
  return HttpFetch(http_url);
}

}  // namespace hadoopsim
}  // namespace mrs
