#include "hadoopsim/javaapi.h"

#include <algorithm>

#include "common/log.h"
#include "fs/file_io.h"
#include "ser/record.h"

namespace mrs {
namespace javaapi {

Value ToValue(const Text& t) { return Value(t.toString()); }
Value ToValue(const IntWritable& w) { return Value(w.get()); }
Value ToValue(const LongWritable& w) { return Value(w.get()); }

void FileInputFormat::addInputPath(Job& job, const Path& path) {
  job.input_paths_.push_back(path.toString());
}

void FileOutputFormat::setOutputPath(Job& job, const Path& path) {
  job.output_path_ = path.toString();
}

Result<std::unique_ptr<Job>> Job::getInstance(const Configuration& conf,
                                              const std::string& name) {
  auto job = std::unique_ptr<Job>(new Job());
  job->conf_ = conf;
  job->name_ = name;
  return job;
}

Status Job::Validate() const {
  if (jar_class_.empty()) {
    return FailedPreconditionError("setJarByClass was not called");
  }
  if (!mapper_factory_) {
    return FailedPreconditionError("setMapperClass was not called");
  }
  if (!reducer_factory_) {
    return FailedPreconditionError("setReducerClass was not called");
  }
  if (output_key_class_.empty() || output_value_class_.empty()) {
    return FailedPreconditionError(
        "setOutputKeyClass / setOutputValueClass were not called");
  }
  if (input_paths_.empty()) {
    return FailedPreconditionError("no input path (FileInputFormat)");
  }
  if (output_path_.empty()) {
    return FailedPreconditionError("no output path (FileOutputFormat)");
  }
  return Status::Ok();
}

Result<bool> Job::waitForCompletion(bool verbose) {
  MRS_RETURN_IF_ERROR(Validate());

  // Hadoop's input loader expects a flat directory: reject nested
  // directories, the paper's WordCount pain point (§V-B).
  std::vector<std::string> files;
  int64_t input_bytes = 0;
  for (const std::string& path : input_paths_) {
    if (IsDirectory(path)) {
      MRS_ASSIGN_OR_RETURN(std::vector<std::string> listing,
                           ListFilesRecursive(path));
      for (const std::string& f : listing) {
        std::string rest = f.substr(path.size());
        if (std::count(rest.begin(), rest.end(), '/') > 1) {
          return InvalidArgumentError(
              "input directory is not flat: " + f +
              " (Hadoop's FileInputFormat does not recurse)");
        }
        files.push_back(f);
      }
    } else {
      files.push_back(path);
    }
  }
  if (files.empty()) return InvalidArgumentError("no input files");

  // ---- LocalJobRunner: really execute map / combine / reduce ----------
  std::vector<KeyValue> map_output;
  int64_t map_output_bytes = 0;
  {
    std::unique_ptr<Mapper> mapper = mapper_factory_();
    Context context(&map_output);
    for (const std::string& file : files) {
      MRS_ASSIGN_OR_RETURN(std::string content, ReadFileToString(file));
      input_bytes += static_cast<int64_t>(content.size());
      for (const KeyValue& kv : LinesToRecords(content)) {
        LongWritable key(kv.key.AsInt());
        Text value(kv.value.AsString());
        mapper->map(key, value, context);
      }
    }
  }

  auto run_reduce = [&](Reducer& reducer, std::vector<KeyValue> records)
      -> std::vector<KeyValue> {
    std::stable_sort(records.begin(), records.end(), KeyValueLess);
    std::vector<KeyValue> out;
    Context context(&out);
    size_t i = 0;
    while (i < records.size()) {
      size_t j = i;
      std::vector<IntWritable> values;
      while (j < records.size() && records[j].key == records[i].key) {
        values.emplace_back(records[j].value.AsInt());
        ++j;
      }
      Text key(records[i].key.AsString());
      reducer.reduce(key, values, context);
      i = j;
    }
    return out;
  };

  if (combiner_factory_) {
    std::unique_ptr<Reducer> combiner = combiner_factory_();
    map_output = run_reduce(*combiner, std::move(map_output));
  }
  for (const KeyValue& kv : map_output) {
    map_output_bytes +=
        static_cast<int64_t>(kv.key.Repr().size() + kv.value.Repr().size());
  }
  {
    std::unique_ptr<Reducer> reducer = reducer_factory_();
    output_ = run_reduce(*reducer, std::move(map_output));
  }
  int64_t output_bytes = 0;
  for (const KeyValue& kv : output_) {
    output_bytes +=
        static_cast<int64_t>(kv.key.Repr().size() + kv.value.Repr().size());
  }
  if (!output_path_.empty() && output_path_ != "/dev/null") {
    MRS_RETURN_IF_ERROR(EnsureDir(output_path_));
    MRS_RETURN_IF_ERROR(WriteFileAtomic(JoinPath(output_path_, "part-r-00000"),
                                        EncodeTextRecords(output_)));
  }

  // ---- Cluster latency from the DES -----------------------------------
  hadoopsim::ClusterConfig cluster_config;
  hadoopsim::JobSpec spec;
  spec.num_map_tasks = static_cast<int>(files.size());
  spec.num_reduce_tasks = num_reduce_tasks_;
  spec.map_input_bytes = input_bytes;
  spec.map_output_bytes = map_output_bytes;
  spec.reduce_output_bytes = output_bytes;
  spec.num_input_files = static_cast<int>(files.size());
  spec.num_input_dirs = static_cast<int>(input_paths_.size());
  spec.stage_in_bytes = input_bytes;   // copy into HDFS first
  spec.stage_out_bytes = output_bytes; // and back out
  hadoopsim::HadoopCluster cluster(cluster_config);
  MRS_ASSIGN_OR_RETURN(timing_, cluster.RunJob(spec));

  if (verbose) {
    MRS_LOG(kInfo, "javaapi")
        << "job " << name_ << " complete: " << output_.size()
        << " output records, simulated " << timing_.total << "s";
  }
  return true;
}

}  // namespace javaapi
}  // namespace mrs
