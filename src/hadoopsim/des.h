// Discrete-event simulation core for the Hadoop baseline.
//
// The paper's Hadoop numbers are dominated by control-plane constants
// (heartbeat intervals, JVM startup, staging, completion polling), not by
// hardware speed, so a DES with those constants — run in *simulated*
// seconds — reproduces the measured shape without hour-long benches
// (DESIGN.md §1).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mrs {
namespace hadoopsim {

class Simulation {
 public:
  using EventFn = std::function<void()>;

  double now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `at` (>= now).  Ties fire in
  /// scheduling order (a stable sequence number breaks them).
  void At(double at, EventFn fn);
  /// Schedule after a delay.
  void After(double delay, EventFn fn) { At(now_ + delay, std::move(fn)); }

  /// Run until the event queue drains (or `max_time` passes, as a runaway
  /// guard).  Returns the final simulated time.
  double Run(double max_time = 1e12);

  /// True if events remain.
  bool HasEvents() const { return !queue_.empty(); }

  int64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    double time;
    int64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  int64_t next_seq_ = 0;
  int64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace hadoopsim
}  // namespace mrs
