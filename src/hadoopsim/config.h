// Cost-model constants for the Hadoop simulation.
//
// Defaults follow Hadoop 0.20-era behaviour (the version contemporary with
// the paper) and are calibrated so a trivial job has ~30 s of end-to-end
// latency, matching §V-B: "Hadoop takes approximately 30 seconds per
// iteration".  Every constant is a config field so ablation benches can
// vary them.
#pragma once

#include <cstdint>

namespace mrs {
namespace hadoopsim {

struct ClusterConfig {
  // Topology (the paper's private cluster: 21 machines, 6 cores each).
  int num_nodes = 21;
  int map_slots_per_node = 6;
  int reduce_slots_per_node = 2;

  // Control-plane latencies (seconds).
  double heartbeat_interval = 3.0;      // mapred.tasktracker heartbeat
  double jvm_startup = 2.0;             // per task attempt (no JVM reuse)
  double client_jvm_startup = 2.5;      // the `hadoop jar` client JVM + conf load
  double job_client_staging = 4.0;      // copy jar/conf/splits into HDFS
  double job_init = 1.5;                // JobTracker job initialization
  double completion_poll_interval = 5.0;  // JobClient completion polling
  double setup_task_run = 0.1;          // per-job setup task body
  double cleanup_task_run = 0.1;        // per-job cleanup task body
  double task_report_latency = 0.2;     // umbilical status propagation

  // HDFS / input handling.
  double namenode_rpc_latency = 0.004;  // per metadata RPC
  double per_file_split_cost = 0.013;   // stat + getBlockLocations per input
                                        // file during getSplits (the
                                        // many-small-files pathology)
  double per_dir_list_cost = 0.008;     // listStatus per directory
  double hdfs_write_bandwidth = 60e6;   // bytes/s effective (replicated)
  double hdfs_read_bandwidth = 90e6;    // bytes/s
  double block_size = 64.0 * 1024 * 1024;

  // Shuffle / sort.
  double shuffle_bandwidth = 40e6;      // bytes/s per reducer
  double per_map_fetch_overhead = 0.03; // connection per map output segment
  double sort_factor = 1.1e-8;          // s per byte merged

  // Whether the cluster daemons are already running (the paper measured
  // with "all Hadoop daemons and task trackers already running"); when
  // false, Submit also pays the bring-up script cost below.
  bool daemons_running = true;
  double daemon_bringup = 45.0;         // format NN + start daemons (E2)
};

/// One MapReduce job's workload description.
struct JobSpec {
  int num_map_tasks = 1;
  int num_reduce_tasks = 1;

  /// Pure-compute seconds per map/reduce task body (Java-speed cost of the
  /// user code; callers calibrate, e.g. samples * java_seconds_per_sample).
  double map_compute_seconds = 0.0;
  double reduce_compute_seconds = 0.0;

  /// IO volumes (bytes).
  int64_t map_input_bytes = 0;       // read from HDFS across all maps
  int64_t map_output_bytes = 0;      // shuffled to reducers
  int64_t reduce_output_bytes = 0;   // written to HDFS (replicated)

  /// Input layout, for the getSplits cost (WordCount: 31k files).
  int num_input_files = 1;
  int num_input_dirs = 1;

  /// Input must be copied into HDFS first (bytes; 0 = already there).
  int64_t stage_in_bytes = 0;
  /// Output copied back out of HDFS afterwards (bytes).
  int64_t stage_out_bytes = 0;
};

/// Per-phase timing of one simulated job (all simulated seconds).
struct JobResult {
  double stage_in = 0;        // hdfs put of the input
  double submit = 0;          // staging jar/conf + getSplits + job init
  double setup = 0;           // setup task (incl. heartbeat waits)
  double map_phase = 0;
  double shuffle_sort = 0;
  double reduce_phase = 0;
  double cleanup = 0;         // cleanup task + completion-poll latency
  double stage_out = 0;
  double total = 0;

  /// "Data load / startup" in the paper's WordCount discussion: everything
  /// before the first map task starts doing useful work.
  double startup() const { return stage_in + submit + setup; }
};

}  // namespace hadoopsim
}  // namespace mrs
