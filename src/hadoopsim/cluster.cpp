#include "hadoopsim/cluster.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

namespace mrs {
namespace hadoopsim {

namespace {

/// Mutable per-run state driven by the event loop.
struct RunState {
  const ClusterConfig* config;
  const JobSpec* spec;
  Simulation sim;

  // Task accounting.
  bool setup_pending = true;
  bool setup_done = false;
  int maps_pending = 0;
  int maps_reported = 0;
  bool cleanup_pending = false;
  bool cleanup_reported = false;
  int reduces_pending = 0;
  int reduces_reported = 0;
  bool maps_all_done = false;

  // Per-tracker busy slots.
  std::vector<int> map_slots_busy;
  std::vector<int> reduce_slots_busy;

  // Milestones (simulated seconds).
  double submit_done = 0;
  double setup_done_at = 0;
  double maps_done_at = 0;
  double reduces_done_at = 0;
  double cleanup_done_at = 0;

  double MapBodySeconds() const {
    double input_per_map =
        static_cast<double>(spec->map_input_bytes) /
        std::max(1, spec->num_map_tasks);
    return spec->map_compute_seconds +
           input_per_map / config->hdfs_read_bandwidth;
  }

  double ShuffleSortSeconds() const {
    if (spec->num_reduce_tasks == 0) return 0;
    double bytes_per_reduce =
        static_cast<double>(spec->map_output_bytes) /
        std::max(1, spec->num_reduce_tasks);
    return spec->num_map_tasks * config->per_map_fetch_overhead +
           bytes_per_reduce / config->shuffle_bandwidth +
           config->sort_factor * bytes_per_reduce;
  }

  double ReduceBodySeconds() const {
    double output_per_reduce =
        static_cast<double>(spec->reduce_output_bytes) /
        std::max(1, spec->num_reduce_tasks);
    return ShuffleSortSeconds() + spec->reduce_compute_seconds +
           output_per_reduce / config->hdfs_write_bandwidth;
  }

  bool JobDone() const { return cleanup_reported; }

  /// One tracker's heartbeat: report finished work (handled where tasks
  /// complete, see below), then take at most one new task.
  void Heartbeat(int tracker) {
    if (JobDone()) return;  // stop the heartbeat chain

    AssignWork(tracker);

    sim.After(config->heartbeat_interval,
              [this, tracker] { Heartbeat(tracker); });
  }

  void AssignWork(int tracker) {
    // Setup task first; maps; then (after all maps) reduces; finally the
    // cleanup task.  One assignment per heartbeat, as in 0.20.
    if (setup_pending) {
      setup_pending = false;
      double body = config->jvm_startup + config->setup_task_run;
      double finish = sim.now() + body;
      // Like every task, the setup task's completion is noticed on the
      // executing tracker's next heartbeat after it ends.
      double report = NextHeartbeatAfter(tracker, finish);
      sim.At(report, [this] {
        setup_done = true;
        setup_done_at = sim.now();
      });
      return;
    }
    if (!setup_done) return;

    if (maps_pending > 0 &&
        map_slots_busy[static_cast<size_t>(tracker)] <
            config->map_slots_per_node) {
      --maps_pending;
      ++map_slots_busy[static_cast<size_t>(tracker)];
      double body = config->jvm_startup + MapBodySeconds();
      // The tracker notices completion at its next heartbeat after the
      // task ends: round the report up to the heartbeat grid.
      double finish = sim.now() + body;
      double report = NextHeartbeatAfter(tracker, finish);
      sim.At(report, [this, tracker] {
        --map_slots_busy[static_cast<size_t>(tracker)];
        ++maps_reported;
        if (maps_reported == spec->num_map_tasks) {
          maps_all_done = true;
          maps_done_at = sim.now();
          if (spec->num_reduce_tasks == 0) cleanup_pending = true;
        }
      });
      return;
    }

    if (maps_all_done && reduces_pending > 0 &&
        reduce_slots_busy[static_cast<size_t>(tracker)] <
            config->reduce_slots_per_node) {
      --reduces_pending;
      ++reduce_slots_busy[static_cast<size_t>(tracker)];
      double body = config->jvm_startup + ReduceBodySeconds();
      double finish = sim.now() + body;
      // 0.20 semantics: a reduce attempt enters COMMIT_PENDING when its
      // body ends and may only commit its output on a heartbeat grant;
      // the completed state is then noticed on the following heartbeat.
      double commit = NextHeartbeatAfter(tracker, finish);
      double report = NextHeartbeatAfter(tracker, commit);
      sim.At(report, [this, tracker] {
        --reduce_slots_busy[static_cast<size_t>(tracker)];
        ++reduces_reported;
        if (reduces_reported == spec->num_reduce_tasks) {
          reduces_done_at = sim.now();
          cleanup_pending = true;
        }
      });
      return;
    }

    if (cleanup_pending) {
      cleanup_pending = false;
      double body = config->jvm_startup + config->cleanup_task_run;
      double finish = sim.now() + body;
      double report = NextHeartbeatAfter(tracker, finish);
      sim.At(report, [this] {
        cleanup_reported = true;
        cleanup_done_at = sim.now();
      });
      return;
    }
  }

  double NextHeartbeatAfter(int tracker, double t) const {
    // Tracker i heartbeats at offset_i + k * interval.
    double interval = config->heartbeat_interval;
    double offset = interval * static_cast<double>(tracker) /
                    std::max(1, config->num_nodes);
    double k = std::ceil((t - offset) / interval);
    if (k < 0) k = 0;
    return offset + k * interval + 1e-9;
  }
};

}  // namespace

HadoopCluster::HadoopCluster(ClusterConfig config)
    : config_(std::move(config)) {}

Result<JobResult> HadoopCluster::RunJob(const JobSpec& spec) const {
  if (spec.num_map_tasks < 1) {
    return InvalidArgumentError("job needs at least one map task");
  }
  JobResult result;

  auto state = std::make_unique<RunState>();
  state->config = &config_;
  state->spec = &spec;
  state->maps_pending = spec.num_map_tasks;
  state->reduces_pending = spec.num_reduce_tasks;
  state->map_slots_busy.assign(static_cast<size_t>(config_.num_nodes), 0);
  state->reduce_slots_busy.assign(static_cast<size_t>(config_.num_nodes), 0);

  double t = 0;
  if (!config_.daemons_running) {
    t += config_.daemon_bringup;
  }

  // Stage input into HDFS (hdfs put): bandwidth plus a create RPC per file.
  if (spec.stage_in_bytes > 0) {
    result.stage_in =
        static_cast<double>(spec.stage_in_bytes) / config_.hdfs_write_bandwidth +
        spec.num_input_files * config_.namenode_rpc_latency;
    t += result.stage_in;
  }

  // Submission: client staging, getSplits over every file and directory,
  // then JobTracker initialization.
  double get_splits = spec.num_input_dirs * config_.per_dir_list_cost +
                      spec.num_input_files * config_.per_file_split_cost;
  double submit_work = config_.client_jvm_startup + config_.job_client_staging +
                       get_splits + config_.job_init;
  result.submit = submit_work +
                  (config_.daemons_running ? 0.0 : config_.daemon_bringup);
  t += submit_work;
  state->submit_done = t;

  // Kick off heartbeats (phase-offset per tracker).
  for (int tracker = 0; tracker < config_.num_nodes; ++tracker) {
    double offset = config_.heartbeat_interval * static_cast<double>(tracker) /
                    std::max(1, config_.num_nodes);
    double first = t + offset;
    int tr = tracker;
    state->sim.At(first, [s = state.get(), tr] { s->Heartbeat(tr); });
  }
  state->sim.Run(/*max_time=*/t + 100 * 3600);

  if (!state->cleanup_reported) {
    return InternalError("hadoopsim job did not complete (scheduler stall)");
  }

  result.setup = state->setup_done_at - state->submit_done;
  result.map_phase = state->maps_done_at - state->setup_done_at;
  result.shuffle_sort = state->ShuffleSortSeconds();
  if (spec.num_reduce_tasks > 0) {
    result.reduce_phase = state->reduces_done_at - state->maps_done_at;
  }
  result.cleanup =
      state->cleanup_done_at -
      (spec.num_reduce_tasks > 0 ? state->reduces_done_at
                                 : state->maps_done_at);

  // The client observes completion on its polling grid.
  double observed = state->submit_done +
                    std::ceil((state->cleanup_done_at - state->submit_done) /
                              config_.completion_poll_interval) *
                        config_.completion_poll_interval;

  if (spec.stage_out_bytes > 0) {
    result.stage_out = static_cast<double>(spec.stage_out_bytes) /
                       config_.hdfs_read_bandwidth;
  }
  result.total = (config_.daemons_running ? 0.0 : config_.daemon_bringup) +
                 result.stage_in + observed + result.stage_out;
  return result;
}

Result<double> HadoopCluster::RunIterativeJobs(const JobSpec& spec,
                                               int iterations) const {
  // Data staging and daemon bring-up happen once; the per-job control
  // plane cost is paid on every iteration.
  JobSpec warm = spec;
  MRS_ASSIGN_OR_RETURN(JobResult first, RunJob(warm));
  warm.stage_in_bytes = 0;
  warm.stage_out_bytes = 0;
  MRS_ASSIGN_OR_RETURN(JobResult repeat, RunJob(warm));
  double warm_cost = repeat.total;
  return first.total + warm_cost * std::max(0, iterations - 1);
}

}  // namespace hadoopsim
}  // namespace mrs
