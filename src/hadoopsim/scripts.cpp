#include "hadoopsim/scripts.h"

namespace mrs {
namespace hadoopsim {

std::vector<ScriptStep> MrsStartupScript(int num_slaves) {
  (void)num_slaves;  // pssh starts all slaves in one step
  return {
      {"find the network address of the master (ip addr | sed)",
       StepKind::kShellCommand, 0.1},
      {"start the master (one copy of the program)", StepKind::kJobRun, 0.0},
      {"wait for the master's port file", StepKind::kWait, 1.0},
      {"start the slaves via pbsdsh/pssh (copies of the same program)",
       StepKind::kShellCommand, 1.0},
  };
}

std::vector<ScriptStep> HadoopStartupScript(int num_nodes) {
  return {
      {"find the network address of the master (ip addr | sed)",
       StepKind::kShellCommand, 0.1},
      {"create HADOOP_LOG_DIR and HADOOP_CONF_DIR", StepKind::kShellCommand,
       0.2},
      {"copy the stock conf directory", StepKind::kShellCommand, 0.3},
      {"rewrite hadoop-site.xml with sed (master IP, tmp dir, task counts)",
       StepKind::kConfigRewrite, 0.2},
      {"format the private HDFS (namenode -format)",
       StepKind::kFilesystemFormat, 4.0},
      {"start the namenode daemon", StepKind::kDaemonStart, 5.0},
      {"start the jobtracker daemon", StepKind::kDaemonStart, 5.0},
      {"start datanode + tasktracker daemons on every node",
       StepKind::kDaemonStart, 3.0 + 0.5 * num_nodes},
      {"copy the input data into HDFS", StepKind::kDataCopy, 30.0},
      {"run the MapReduce job", StepKind::kJobRun, 0.0},
      {"copy the output data out of HDFS", StepKind::kDataCopy, 10.0},
      {"stop the tasktracker/datanode daemons on every node",
       StepKind::kDaemonStop, 2.0 + 0.3 * num_nodes},
      {"stop the jobtracker and namenode daemons", StepKind::kDaemonStop, 4.0},
  };
}

ScriptSummary Summarize(const std::vector<ScriptStep>& steps) {
  ScriptSummary summary;
  for (const ScriptStep& step : steps) {
    ++summary.total_steps;
    switch (step.kind) {
      case StepKind::kConfigRewrite:
        ++summary.config_rewrites;
        break;
      case StepKind::kDaemonStart:
      case StepKind::kDaemonStop:
      case StepKind::kFilesystemFormat:
        ++summary.daemon_actions;
        break;
      case StepKind::kDataCopy:
        ++summary.data_copies;
        break;
      default:
        break;
    }
    if (step.kind != StepKind::kJobRun) {
      summary.overhead_seconds += step.estimated_seconds;
    }
  }
  return summary;
}

}  // namespace hadoopsim
}  // namespace mrs
