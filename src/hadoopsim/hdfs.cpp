#include "hadoopsim/hdfs.h"

#include "common/strings.h"

namespace mrs {
namespace hadoopsim {

HdfsModel::HdfsModel(int num_datanodes, int replication, int64_t block_size)
    : num_datanodes_(num_datanodes < 1 ? 1 : num_datanodes),
      replication_(replication < 1 ? 1 : replication),
      block_size_(block_size < 1 ? 1 : block_size) {}

int HdfsModel::PickDatanode() {
  // Round-robin over live nodes.
  for (int tries = 0; tries < num_datanodes_; ++tries) {
    int node = placement_cursor_;
    placement_cursor_ = (placement_cursor_ + 1) % num_datanodes_;
    if (dead_.find(node) == dead_.end()) return node;
  }
  return -1;
}

Status HdfsModel::CreateFile(const std::string& path, int64_t size) {
  ++metadata_rpcs_;
  if (files_.find(path) != files_.end()) {
    return AlreadyExistsError("hdfs file exists: " + path);
  }
  if (num_live_datanodes() == 0) {
    return UnavailableError("no live datanodes");
  }
  HdfsFile file;
  file.path = path;
  file.size = size;
  int64_t remaining = size;
  int replicas = std::min(replication_, num_live_datanodes());
  do {
    BlockInfo block;
    block.id = next_block_id_++;
    block.size = std::min(remaining, block_size_);
    std::set<int> used;
    for (int r = 0; r < replicas; ++r) {
      int node = PickDatanode();
      while (node >= 0 && used.count(node) > 0) node = PickDatanode();
      if (node < 0) break;
      used.insert(node);
      block.replicas.push_back(node);
    }
    ++metadata_rpcs_;  // addBlock
    file.blocks.push_back(std::move(block));
    remaining -= block_size_;
  } while (remaining > 0);
  files_[path] = std::move(file);
  return Status::Ok();
}

Result<const HdfsFile*> HdfsModel::Stat(const std::string& path) const {
  ++metadata_rpcs_;
  auto it = files_.find(path);
  if (it == files_.end()) return NotFoundError("no hdfs file: " + path);
  return &it->second;
}

std::vector<std::string> HdfsModel::ListDir(const std::string& dir) const {
  ++metadata_rpcs_;
  std::string prefix = dir;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::vector<std::string> out;
  for (const auto& [path, file] : files_) {
    if (StartsWith(path, prefix)) out.push_back(path);
  }
  return out;
}

Status HdfsModel::Delete(const std::string& path) {
  ++metadata_rpcs_;
  if (files_.erase(path) == 0) return NotFoundError("no hdfs file: " + path);
  return Status::Ok();
}

void HdfsModel::KillDatanode(int datanode) {
  dead_.insert(datanode);
}

int HdfsModel::num_live_datanodes() const {
  return num_datanodes_ - static_cast<int>(dead_.size());
}

bool HdfsModel::AllDataAvailable() const { return LostFiles().empty(); }

std::vector<std::string> HdfsModel::LostFiles() const {
  std::vector<std::string> lost;
  for (const auto& [path, file] : files_) {
    for (const BlockInfo& block : file.blocks) {
      bool alive = false;
      for (int node : block.replicas) {
        if (dead_.find(node) == dead_.end()) {
          alive = true;
          break;
        }
      }
      if (!alive) {
        lost.push_back(path);
        break;
      }
    }
  }
  return lost;
}

int64_t HdfsModel::total_bytes() const {
  int64_t total = 0;
  for (const auto& [path, file] : files_) total += file.size;
  return total;
}

}  // namespace hadoopsim
}  // namespace mrs
