// A deliberately Java-flavoured MapReduce client API (paper Program 2).
//
// This is the comparison target for the subjective evaluation (E1): the
// same WordCount written against this API carries the boilerplate the
// paper calls out — wrapper Writable types, explicit generics-style
// configuration of mapper/combiner/reducer/output classes, a Job object
// whose knobs must all be set before waitForCompletion.  It is also a
// working implementation: jobs execute in-process on a LocalJobRunner
// (like Hadoop's) while end-to-end *cluster* latency comes from the
// hadoopsim DES.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "hadoopsim/cluster.h"
#include "ser/value.h"

namespace mrs {
namespace javaapi {

// ---- Writable wrapper types -------------------------------------------

class Text {
 public:
  Text() = default;
  explicit Text(std::string s) : value_(std::move(s)) {}
  void set(std::string s) { value_ = std::move(s); }
  const std::string& toString() const { return value_; }

 private:
  std::string value_;
};

class IntWritable {
 public:
  IntWritable() = default;
  explicit IntWritable(int64_t v) : value_(v) {}
  void set(int64_t v) { value_ = v; }
  int64_t get() const { return value_; }

 private:
  int64_t value_ = 0;
};

class LongWritable {
 public:
  LongWritable() = default;
  explicit LongWritable(int64_t v) : value_(v) {}
  void set(int64_t v) { value_ = v; }
  int64_t get() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Conversions between Writables and the engine's Value type.
Value ToValue(const Text& t);
Value ToValue(const IntWritable& w);
Value ToValue(const LongWritable& w);

// ---- Mapper / Reducer base classes ------------------------------------

/// The write() sink handed to user code.
class Context {
 public:
  explicit Context(std::vector<KeyValue>* out) : out_(out) {}
  void write(const Text& key, const IntWritable& value) {
    out_->push_back(KeyValue{ToValue(key), ToValue(value)});
  }
  void write(const Text& key, const Text& value) {
    out_->push_back(KeyValue{ToValue(key), ToValue(value)});
  }

 private:
  std::vector<KeyValue>* out_;
};

class Mapper {
 public:
  virtual ~Mapper() = default;
  /// map(key, value, context): key is the byte offset / line number.
  virtual void map(const LongWritable& key, const Text& value,
                   Context& context) = 0;
};

class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void reduce(const Text& key, const std::vector<IntWritable>& values,
                      Context& context) = 0;
};

// ---- Configuration / Job ----------------------------------------------

class Configuration {
 public:
  void set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }
  std::string get(const std::string& key, const std::string& dflt = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

class Path {
 public:
  explicit Path(std::string p) : path_(std::move(p)) {}
  const std::string& toString() const { return path_; }

 private:
  std::string path_;
};

class Job;

class FileInputFormat {
 public:
  static void addInputPath(Job& job, const Path& path);
};
class FileOutputFormat {
 public:
  static void setOutputPath(Job& job, const Path& path);
};

class Job {
 public:
  static Result<std::unique_ptr<Job>> getInstance(const Configuration& conf,
                                                  const std::string& name);

  // The ritual (every one of these must be called, as in Program 2).
  void setJarByClass(const std::string& class_name) { jar_class_ = class_name; }
  template <typename M>
  void setMapperClass() {
    mapper_factory_ = [] { return std::unique_ptr<Mapper>(new M()); };
  }
  template <typename R>
  void setCombinerClass() {
    combiner_factory_ = [] { return std::unique_ptr<Reducer>(new R()); };
  }
  template <typename R>
  void setReducerClass() {
    reducer_factory_ = [] { return std::unique_ptr<Reducer>(new R()); };
  }
  void setOutputKeyClass(const std::string& class_name) {
    output_key_class_ = class_name;
  }
  void setOutputValueClass(const std::string& class_name) {
    output_value_class_ = class_name;
  }
  void setNumReduceTasks(int n) { num_reduce_tasks_ = n; }

  /// Run the job: executes map/combine/reduce in-process over the input
  /// files (LocalJobRunner) and simulates the cluster latency with
  /// hadoopsim.  Returns true on success, like the Java API.
  Result<bool> waitForCompletion(bool verbose);

  /// Results (after waitForCompletion).
  const std::vector<KeyValue>& output() const { return output_; }
  const hadoopsim::JobResult& simulated_timing() const { return timing_; }

 private:
  friend class FileInputFormat;
  friend class FileOutputFormat;

  Status Validate() const;

  Configuration conf_;
  std::string name_;
  std::string jar_class_;
  std::string output_key_class_;
  std::string output_value_class_;
  int num_reduce_tasks_ = 1;
  std::vector<std::string> input_paths_;
  std::string output_path_;
  std::function<std::unique_ptr<Mapper>()> mapper_factory_;
  std::function<std::unique_ptr<Reducer>()> combiner_factory_;
  std::function<std::unique_ptr<Reducer>()> reducer_factory_;

  std::vector<KeyValue> output_;
  hadoopsim::JobResult timing_;
};

}  // namespace javaapi
}  // namespace mrs
