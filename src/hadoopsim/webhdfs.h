// WebHDFS-style REST gateway over the HDFS model.
//
// The paper (§IV-B) lists HDFS among the filesystems Mrs can read and
// notes "native support for WebHDFS is in progress" — this module
// finishes that thought: a real HTTP server speaking the WebHDFS verb
// subset (CREATE / OPEN / LISTSTATUS / GETFILESTATUS / DELETE), backed by
// the replicated-block HdfsModel for metadata plus a content store, and a
// client so Mrs tasks can consume `webhdfs://` input URLs like any other.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "hadoopsim/hdfs.h"
#include "http/server.h"

namespace mrs {
namespace hadoopsim {

class WebHdfsServer {
 public:
  /// Start serving on host:port (0 = ephemeral).
  static Result<std::unique_ptr<WebHdfsServer>> Start(
      const std::string& host = "127.0.0.1", uint16_t port = 0,
      int num_datanodes = 3);

  ~WebHdfsServer();

  const SocketAddr& addr() const { return server_->addr(); }
  std::string url_base() const { return "webhdfs://" + addr().ToString(); }

  /// Direct (in-process) API, mirroring the REST verbs.
  Status Create(const std::string& path, std::string content);
  Result<std::string> Open(const std::string& path) const;
  Status Delete(const std::string& path);
  std::vector<std::string> ListStatus(const std::string& dir) const;

  HdfsModel& hdfs() { return hdfs_; }

 private:
  WebHdfsServer(int num_datanodes) : hdfs_(num_datanodes) {}
  HttpResponse Handle(const HttpRequest& req);

  mutable std::mutex mutex_;
  HdfsModel hdfs_;
  std::map<std::string, std::string> contents_;
  std::unique_ptr<HttpServer> server_;
};

/// Fetch a `webhdfs://host:port/path` URL (translates to the REST
/// `?op=OPEN` form).  Composable with the task executor's UrlFetcher.
Result<std::string> WebHdfsFetch(const std::string& url);

}  // namespace hadoopsim
}  // namespace mrs
