// XML-RPC value model: the wire types of the master/slave control channel.
//
// Standard XML-RPC scalars plus the widely-supported <i8> extension (Mrs
// task ids and sample counts exceed 32 bits).  Binary payloads travel as
// <base64>.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xmlrpc/xml.h"

namespace mrs {

class XmlRpcValue;
using XmlRpcArray = std::vector<XmlRpcValue>;
using XmlRpcStruct = std::map<std::string, XmlRpcValue>;

class XmlRpcValue {
 public:
  enum class Type { kNil, kBool, kInt, kDouble, kString, kBinary, kArray, kStruct };

  XmlRpcValue() : type_(Type::kNil) {}
  XmlRpcValue(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  XmlRpcValue(int v) : type_(Type::kInt), int_(v) {}                    // NOLINT
  XmlRpcValue(int64_t v) : type_(Type::kInt), int_(v) {}                // NOLINT
  XmlRpcValue(uint64_t v) : type_(Type::kInt), int_(static_cast<int64_t>(v)) {}  // NOLINT
  XmlRpcValue(double v) : type_(Type::kDouble), double_(v) {}           // NOLINT
  XmlRpcValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  XmlRpcValue(const char* s) : type_(Type::kString), string_(s) {}      // NOLINT
  XmlRpcValue(XmlRpcArray a)                                            // NOLINT
      : type_(Type::kArray), array_(std::make_shared<XmlRpcArray>(std::move(a))) {}
  XmlRpcValue(XmlRpcStruct s)                                           // NOLINT
      : type_(Type::kStruct), struct_(std::make_shared<XmlRpcStruct>(std::move(s))) {}

  static XmlRpcValue Binary(std::string bytes) {
    XmlRpcValue v;
    v.type_ = Type::kBinary;
    v.string_ = std::move(bytes);
    return v;
  }

  Type type() const { return type_; }
  bool is_nil() const { return type_ == Type::kNil; }

  // Checked accessors: wrong-type access is a ProtocolError, because these
  // values arrive from the network.
  Result<bool> AsBool() const;
  Result<int64_t> AsInt() const;
  Result<double> AsDouble() const;       // accepts int too (promotes)
  Result<std::string> AsString() const;  // string or binary
  Result<const XmlRpcArray*> AsArray() const;
  Result<const XmlRpcStruct*> AsStruct() const;

  /// Struct field lookup; missing field is a ProtocolError.
  Result<const XmlRpcValue*> Field(std::string_view name) const;

  /// Serialize as a <value>...</value> element.  With `attachments`
  /// non-null, binary payloads are moved out-of-band: each kBinary value
  /// serializes as <attachment>N</attachment> (an index into the vector)
  /// instead of <base64>, letting the transport carry the raw bytes
  /// without the 4/3 base64 blowup or XML escaping (see protocol.h,
  /// BuildBinaryResponse).
  XmlElement ToXml(std::vector<std::string>* attachments = nullptr) const;
  /// Parse from a <value> element.  <attachment> indices resolve against
  /// `attachments`; without one they are a ProtocolError (a plain-XML
  /// document never legitimately contains them).
  static Result<XmlRpcValue> FromXml(
      const XmlElement& value_elem,
      const std::vector<std::string>* attachments = nullptr);

  /// True if this value (or any nested array/struct member) is kBinary —
  /// the predicate for choosing the binary-attachment response encoding.
  bool HasBinary() const;

  /// Debug rendering ("{a: 1, b: [2, 3]}").
  std::string DebugString() const;

  bool operator==(const XmlRpcValue& other) const;

 private:
  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  // shared_ptr keeps XmlRpcValue cheap to copy and breaks the recursive
  // type; values are treated as immutable after construction.
  std::shared_ptr<XmlRpcArray> array_;
  std::shared_ptr<XmlRpcStruct> struct_;
};

/// RFC 4648 base64 (standard alphabet, padded).
std::string Base64Encode(std::string_view data);
Result<std::string> Base64Decode(std::string_view encoded);

}  // namespace mrs
