#include "xmlrpc/value.h"

#include <cmath>

#include "common/strings.h"

namespace mrs {

namespace {
constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::string_view TypeName(XmlRpcValue::Type t) {
  switch (t) {
    case XmlRpcValue::Type::kNil: return "nil";
    case XmlRpcValue::Type::kBool: return "bool";
    case XmlRpcValue::Type::kInt: return "int";
    case XmlRpcValue::Type::kDouble: return "double";
    case XmlRpcValue::Type::kString: return "string";
    case XmlRpcValue::Type::kBinary: return "binary";
    case XmlRpcValue::Type::kArray: return "array";
    case XmlRpcValue::Type::kStruct: return "struct";
  }
  return "?";
}

Status WrongType(std::string_view want, XmlRpcValue::Type got) {
  return ProtocolError("XML-RPC type mismatch: want " + std::string(want) +
                       ", got " + std::string(TypeName(got)));
}
}  // namespace

Result<bool> XmlRpcValue::AsBool() const {
  if (type_ != Type::kBool) return WrongType("bool", type_);
  return bool_;
}

Result<int64_t> XmlRpcValue::AsInt() const {
  if (type_ != Type::kInt) return WrongType("int", type_);
  return int_;
}

Result<double> XmlRpcValue::AsDouble() const {
  if (type_ == Type::kDouble) return double_;
  if (type_ == Type::kInt) return static_cast<double>(int_);
  return WrongType("double", type_);
}

Result<std::string> XmlRpcValue::AsString() const {
  if (type_ != Type::kString && type_ != Type::kBinary) {
    return WrongType("string", type_);
  }
  return string_;
}

Result<const XmlRpcArray*> XmlRpcValue::AsArray() const {
  if (type_ != Type::kArray) return WrongType("array", type_);
  return array_.get();
}

Result<const XmlRpcStruct*> XmlRpcValue::AsStruct() const {
  if (type_ != Type::kStruct) return WrongType("struct", type_);
  return struct_.get();
}

Result<const XmlRpcValue*> XmlRpcValue::Field(std::string_view name) const {
  MRS_ASSIGN_OR_RETURN(const XmlRpcStruct* s, AsStruct());
  auto it = s->find(std::string(name));
  if (it == s->end()) {
    return ProtocolError("XML-RPC struct missing field: " + std::string(name));
  }
  return &it->second;
}

XmlElement XmlRpcValue::ToXml(std::vector<std::string>* attachments) const {
  XmlElement value;
  value.name = "value";
  XmlElement inner;
  switch (type_) {
    case Type::kNil:
      inner.name = "nil";
      break;
    case Type::kBool:
      inner.name = "boolean";
      inner.text = bool_ ? "1" : "0";
      break;
    case Type::kInt:
      inner.name = "i8";
      inner.text = std::to_string(int_);
      break;
    case Type::kDouble: {
      inner.name = "double";
      inner.text = StrPrintf("%.17g", double_);
      break;
    }
    case Type::kString:
      inner.name = "string";
      inner.text = string_;
      break;
    case Type::kBinary:
      if (attachments != nullptr) {
        inner.name = "attachment";
        inner.text = std::to_string(attachments->size());
        attachments->push_back(string_);
      } else {
        inner.name = "base64";
        inner.text = Base64Encode(string_);
      }
      break;
    case Type::kArray: {
      inner.name = "array";
      XmlElement data;
      data.name = "data";
      for (const XmlRpcValue& v : *array_) {
        data.children.push_back(v.ToXml(attachments));
      }
      inner.children.push_back(std::move(data));
      break;
    }
    case Type::kStruct: {
      inner.name = "struct";
      for (const auto& [k, v] : *struct_) {
        XmlElement member;
        member.name = "member";
        XmlElement name;
        name.name = "name";
        name.text = k;
        member.children.push_back(std::move(name));
        member.children.push_back(v.ToXml(attachments));
        inner.children.push_back(std::move(member));
      }
      break;
    }
  }
  value.children.push_back(std::move(inner));
  return value;
}

bool XmlRpcValue::HasBinary() const {
  switch (type_) {
    case Type::kBinary:
      return true;
    case Type::kArray:
      for (const XmlRpcValue& v : *array_) {
        if (v.HasBinary()) return true;
      }
      return false;
    case Type::kStruct:
      for (const auto& [k, v] : *struct_) {
        if (v.HasBinary()) return true;
      }
      return false;
    default:
      return false;
  }
}

Result<XmlRpcValue> XmlRpcValue::FromXml(
    const XmlElement& value_elem,
    const std::vector<std::string>* attachments) {
  if (value_elem.name != "value") {
    return ProtocolError("expected <value>, got <" + value_elem.name + ">");
  }
  if (value_elem.children.empty()) {
    // Bare text inside <value> is a string per the XML-RPC spec.
    return XmlRpcValue(value_elem.text);
  }
  const XmlElement& t = value_elem.children.front();
  if (t.name == "nil") return XmlRpcValue();
  if (t.name == "boolean") {
    std::string s = t.TrimmedText();
    if (s == "1" || EqualsIgnoreCase(s, "true")) return XmlRpcValue(true);
    if (s == "0" || EqualsIgnoreCase(s, "false")) return XmlRpcValue(false);
    return ProtocolError("bad <boolean> value: " + s);
  }
  if (t.name == "int" || t.name == "i4" || t.name == "i8") {
    auto v = ParseInt64(t.TrimmedText());
    if (!v.has_value()) return ProtocolError("bad <" + t.name + ">: " + t.text);
    return XmlRpcValue(*v);
  }
  if (t.name == "double") {
    auto v = ParseDouble(t.TrimmedText());
    if (!v.has_value()) return ProtocolError("bad <double>: " + t.text);
    return XmlRpcValue(*v);
  }
  if (t.name == "string") return XmlRpcValue(t.text);
  if (t.name == "base64") {
    MRS_ASSIGN_OR_RETURN(std::string bytes, Base64Decode(t.TrimmedText()));
    return XmlRpcValue::Binary(std::move(bytes));
  }
  if (t.name == "attachment") {
    if (attachments == nullptr) {
      return ProtocolError("<attachment> in a document without attachments");
    }
    auto index = ParseUint64(t.TrimmedText());
    if (!index.has_value() || *index >= attachments->size()) {
      return ProtocolError("bad <attachment> index: " + t.text);
    }
    return XmlRpcValue::Binary((*attachments)[*index]);
  }
  if (t.name == "array") {
    const XmlElement* data = t.Child("data");
    if (data == nullptr) return ProtocolError("<array> missing <data>");
    XmlRpcArray arr;
    for (const XmlElement& child : data->children) {
      MRS_ASSIGN_OR_RETURN(XmlRpcValue v, FromXml(child, attachments));
      arr.push_back(std::move(v));
    }
    return XmlRpcValue(std::move(arr));
  }
  if (t.name == "struct") {
    XmlRpcStruct s;
    for (const XmlElement& member : t.children) {
      if (member.name != "member") continue;
      const XmlElement* name = member.Child("name");
      const XmlElement* value = member.Child("value");
      if (name == nullptr || value == nullptr) {
        return ProtocolError("<member> missing <name> or <value>");
      }
      MRS_ASSIGN_OR_RETURN(XmlRpcValue v, FromXml(*value, attachments));
      s[name->text] = std::move(v);
    }
    return XmlRpcValue(std::move(s));
  }
  return ProtocolError("unknown XML-RPC type element: <" + t.name + ">");
}

std::string XmlRpcValue::DebugString() const {
  switch (type_) {
    case Type::kNil: return "nil";
    case Type::kBool: return bool_ ? "true" : "false";
    case Type::kInt: return std::to_string(int_);
    case Type::kDouble: return StrPrintf("%g", double_);
    case Type::kString: return "\"" + string_ + "\"";
    case Type::kBinary: return StrPrintf("<%zu bytes>", string_.size());
    case Type::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array_->size(); ++i) {
        if (i > 0) out += ", ";
        out += (*array_)[i].DebugString();
      }
      return out + "]";
    }
    case Type::kStruct: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : *struct_) {
        if (!first) out += ", ";
        out += k + ": " + v.DebugString();
        first = false;
      }
      return out + "}";
    }
  }
  return "?";
}

bool XmlRpcValue::operator==(const XmlRpcValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNil: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kInt: return int_ == other.int_;
    case Type::kDouble: return double_ == other.double_;
    case Type::kString:
    case Type::kBinary: return string_ == other.string_;
    case Type::kArray: return *array_ == *other.array_;
    case Type::kStruct: return *struct_ == *other.struct_;
  }
  return false;
}

std::string Base64Encode(std::string_view data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= data.size()) {
    uint32_t n = (static_cast<uint8_t>(data[i]) << 16) |
                 (static_cast<uint8_t>(data[i + 1]) << 8) |
                 static_cast<uint8_t>(data[i + 2]);
    out += kB64Alphabet[(n >> 18) & 63];
    out += kB64Alphabet[(n >> 12) & 63];
    out += kB64Alphabet[(n >> 6) & 63];
    out += kB64Alphabet[n & 63];
    i += 3;
  }
  size_t rem = data.size() - i;
  if (rem == 1) {
    uint32_t n = static_cast<uint8_t>(data[i]) << 16;
    out += kB64Alphabet[(n >> 18) & 63];
    out += kB64Alphabet[(n >> 12) & 63];
    out += "==";
  } else if (rem == 2) {
    uint32_t n = (static_cast<uint8_t>(data[i]) << 16) |
                 (static_cast<uint8_t>(data[i + 1]) << 8);
    out += kB64Alphabet[(n >> 18) & 63];
    out += kB64Alphabet[(n >> 12) & 63];
    out += kB64Alphabet[(n >> 6) & 63];
    out += '=';
  }
  return out;
}

Result<std::string> Base64Decode(std::string_view encoded) {
  auto decode_char = [](char c) -> int {
    if (c >= 'A' && c <= 'Z') return c - 'A';
    if (c >= 'a' && c <= 'z') return c - 'a' + 26;
    if (c >= '0' && c <= '9') return c - '0' + 52;
    if (c == '+') return 62;
    if (c == '/') return 63;
    return -1;
  };
  std::string out;
  out.reserve(encoded.size() / 4 * 3);
  uint32_t acc = 0;
  int bits = 0;
  int pad = 0;
  for (char c : encoded) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '=') {
      ++pad;
      continue;
    }
    if (pad > 0) return ProtocolError("base64 data after padding");
    int v = decode_char(c);
    if (v < 0) return ProtocolError("bad base64 character");
    acc = (acc << 6) | static_cast<uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out += static_cast<char>((acc >> bits) & 0xFF);
    }
  }
  if (pad > 2) return ProtocolError("too much base64 padding");
  return out;
}

}  // namespace mrs
