#include "xmlrpc/protocol.h"

#include "common/bytes.h"
#include "common/strings.h"

namespace mrs {
namespace xmlrpc {

namespace {
constexpr std::string_view kDeclaration = "<?xml version=\"1.0\"?>";

XmlElement ParamsElement(const XmlRpcArray& params) {
  XmlElement params_elem;
  params_elem.name = "params";
  for (const XmlRpcValue& p : params) {
    XmlElement param;
    param.name = "param";
    param.children.push_back(p.ToXml());
    params_elem.children.push_back(std::move(param));
  }
  return params_elem;
}
}  // namespace

std::string BuildCall(const MethodCall& call) {
  XmlElement root;
  root.name = "methodCall";
  XmlElement name;
  name.name = "methodName";
  name.text = call.method;
  root.children.push_back(std::move(name));
  root.children.push_back(ParamsElement(call.params));
  return std::string(kDeclaration) + WriteXml(root);
}

Result<MethodCall> ParseCall(std::string_view xml) {
  MRS_ASSIGN_OR_RETURN(XmlElement root, ParseXml(xml));
  if (root.name != "methodCall") {
    return ProtocolError("expected <methodCall>, got <" + root.name + ">");
  }
  const XmlElement* name = root.Child("methodName");
  if (name == nullptr) return ProtocolError("<methodCall> missing <methodName>");
  MethodCall call;
  call.method = name->TrimmedText();
  if (const XmlElement* params = root.Child("params"); params != nullptr) {
    for (const XmlElement& param : params->children) {
      if (param.name != "param") continue;
      const XmlElement* value = param.Child("value");
      if (value == nullptr) return ProtocolError("<param> missing <value>");
      MRS_ASSIGN_OR_RETURN(XmlRpcValue v, XmlRpcValue::FromXml(*value));
      call.params.push_back(std::move(v));
    }
  }
  return call;
}

std::string BuildResponse(const XmlRpcValue& result) {
  XmlElement root;
  root.name = "methodResponse";
  root.children.push_back(ParamsElement(XmlRpcArray{result}));
  return std::string(kDeclaration) + WriteXml(root);
}

std::string BuildFault(int code, std::string_view message) {
  XmlRpcStruct fault;
  fault["faultCode"] = XmlRpcValue(static_cast<int64_t>(code));
  fault["faultString"] = XmlRpcValue(std::string(message));

  XmlElement root;
  root.name = "methodResponse";
  XmlElement fault_elem;
  fault_elem.name = "fault";
  fault_elem.children.push_back(XmlRpcValue(std::move(fault)).ToXml());
  root.children.push_back(std::move(fault_elem));
  return std::string(kDeclaration) + WriteXml(root);
}

std::string BuildBinaryResponse(const XmlRpcValue& result) {
  std::vector<std::string> attachments;
  XmlElement root;
  root.name = "methodResponse";
  XmlElement params_elem;
  params_elem.name = "params";
  XmlElement param;
  param.name = "param";
  param.children.push_back(result.ToXml(&attachments));
  params_elem.children.push_back(std::move(param));
  root.children.push_back(std::move(params_elem));
  std::string xml = std::string(kDeclaration) + WriteXml(root);

  Bytes out;
  ByteWriter w(&out);
  w.PutRaw(kRpcBinaryFormat.data(), kRpcBinaryFormat.size());
  w.PutLengthPrefixed(xml);
  w.PutVarint(attachments.size());
  for (const std::string& a : attachments) w.PutLengthPrefixed(a);
  return std::string(reinterpret_cast<const char*>(out.data()), out.size());
}

Result<XmlRpcValue> ParseBinaryResponse(std::string_view body) {
  if (!StartsWith(body, kRpcBinaryFormat)) {
    return DataLossError("binary XML-RPC response missing mrsx1 magic");
  }
  ByteReader r(body.substr(kRpcBinaryFormat.size()));
  MRS_ASSIGN_OR_RETURN(std::string xml, r.GetLengthPrefixed());
  MRS_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  std::vector<std::string> attachments;
  attachments.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    MRS_ASSIGN_OR_RETURN(std::string a, r.GetLengthPrefixed());
    attachments.push_back(std::move(a));
  }
  if (!r.empty()) {
    return DataLossError("trailing bytes after XML-RPC attachments");
  }

  MRS_ASSIGN_OR_RETURN(XmlElement root, ParseXml(xml));
  if (root.name != "methodResponse") {
    return ProtocolError("expected <methodResponse>, got <" + root.name + ">");
  }
  const XmlElement* params = root.Child("params");
  if (params == nullptr || params->children.empty()) {
    return ProtocolError("<methodResponse> missing <params>");
  }
  const XmlElement* value = params->children.front().Child("value");
  if (value == nullptr) return ProtocolError("response <param> missing <value>");
  return XmlRpcValue::FromXml(*value, &attachments);
}

Result<XmlRpcValue> ParseResponse(std::string_view xml) {
  MRS_ASSIGN_OR_RETURN(XmlElement root, ParseXml(xml));
  if (root.name != "methodResponse") {
    return ProtocolError("expected <methodResponse>, got <" + root.name + ">");
  }
  if (const XmlElement* fault = root.Child("fault"); fault != nullptr) {
    const XmlElement* value = fault->Child("value");
    if (value == nullptr) return ProtocolError("<fault> missing <value>");
    MRS_ASSIGN_OR_RETURN(XmlRpcValue v, XmlRpcValue::FromXml(*value));
    int64_t code = 0;
    std::string message = "unknown fault";
    if (auto f = v.Field("faultCode"); f.ok()) {
      code = (*f)->AsInt().ValueOr(0);
    }
    if (auto f = v.Field("faultString"); f.ok()) {
      message = (*f)->AsString().ValueOr(message);
    }
    return InternalError("fault " + std::to_string(code) + ": " + message);
  }
  const XmlElement* params = root.Child("params");
  if (params == nullptr || params->children.empty()) {
    return ProtocolError("<methodResponse> missing <params>");
  }
  const XmlElement* value = params->children.front().Child("value");
  if (value == nullptr) return ProtocolError("response <param> missing <value>");
  return XmlRpcValue::FromXml(*value);
}

}  // namespace xmlrpc
}  // namespace mrs
