// XML-RPC client: POSTs <methodCall> documents to an HTTP endpoint.
#pragma once

#include <string>

#include "common/status.h"
#include "http/client.h"
#include "xmlrpc/protocol.h"

namespace mrs {

class XmlRpcClient {
 public:
  /// `endpoint` is the request path, "/RPC2" by convention.
  explicit XmlRpcClient(SocketAddr addr, std::string endpoint = "/RPC2")
      : http_(std::move(addr)), endpoint_(std::move(endpoint)) {}

  /// Invoke a remote method.  Transport and protocol failures, and remote
  /// faults, all surface as error Status.
  Result<XmlRpcValue> Call(const std::string& method, XmlRpcArray params);

  const SocketAddr& addr() const { return http_.addr(); }

 private:
  HttpClient http_;
  std::string endpoint_;
};

}  // namespace mrs
