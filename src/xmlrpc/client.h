// XML-RPC client: POSTs <methodCall> documents to an HTTP endpoint.
#pragma once

#include <string>

#include "common/retry.h"
#include "common/status.h"
#include "http/client.h"
#include "xmlrpc/protocol.h"

namespace mrs {

/// Calls run on pooled keep-alive connections (ConnectionPool): each
/// attempt leases a connection to the master, and a transport failure
/// discards the lease so the retry dials fresh.  Responses carrying binary
/// payloads arrive in the negotiated mrsx1 attachment encoding when the
/// server supports it (see xmlrpc/protocol.h).
class XmlRpcClient {
 public:
  /// `endpoint` is the request path, "/RPC2" by convention.
  explicit XmlRpcClient(SocketAddr addr, std::string endpoint = "/RPC2")
      : addr_(std::move(addr)), endpoint_(std::move(endpoint)) {}

  /// Transient transport failures (connection refused/reset, truncated
  /// response) are retried with bounded exponential backoff + jitter;
  /// each retry is counted in the process-wide RpcRetryCount().  Remote
  /// faults are application errors and are never retried here.
  void set_retry_policy(RetryPolicy policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Invoke a remote method.  Transport and protocol failures, and remote
  /// faults, all surface as error Status.
  Result<XmlRpcValue> Call(const std::string& method, XmlRpcArray params);

  const SocketAddr& addr() const { return addr_; }

 private:
  Result<XmlRpcValue> CallOnce(const std::string& body,
                               const std::string& method);

  SocketAddr addr_;
  std::string endpoint_;
  RetryPolicy retry_;  // default: no retries
};

}  // namespace mrs
