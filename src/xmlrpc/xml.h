// Small XML document model and parser — just enough for XML-RPC.
//
// Mrs chose XML-RPC "because it is included in the Python standard library
// even though other protocols are more efficient" (paper §IV-B).  We keep
// that design decision: the master/slave control channel speaks real
// XML-RPC over HTTP, with the XML layer implemented here from scratch.
//
// Supported: elements, attributes, character data with the five predefined
// entities, numeric character references, comments, processing
// instructions, CDATA.  Not supported (rejected): DTDs, namespaces beyond
// verbatim names.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace mrs {

/// An XML element: name, attributes, text (concatenated character data
/// directly inside this element), and child elements in document order.
struct XmlElement {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::string text;
  std::vector<XmlElement> children;

  /// First child with the given name, or nullptr.
  const XmlElement* Child(std::string_view child_name) const;
  /// All children with the given name.
  std::vector<const XmlElement*> Children(std::string_view child_name) const;
  /// Text content with surrounding whitespace trimmed.
  std::string TrimmedText() const;
};

/// Parse a complete document; returns the root element.
Result<XmlElement> ParseXml(std::string_view input);

/// Serialize an element tree (no declaration, no pretty-printing).
std::string WriteXml(const XmlElement& element);

/// Decode the predefined entities and numeric references in character data.
Result<std::string> XmlUnescape(std::string_view s);

}  // namespace mrs
