// XML-RPC method dispatch for an HttpServer.
//
// Register methods on a Dispatcher, then install MakeHttpHandler() as the
// server handler (optionally delegating non-RPC paths to a fallback, which
// Mrs slaves use to serve bucket data from the same port).
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "http/message.h"
#include "xmlrpc/protocol.h"

namespace mrs {

class XmlRpcDispatcher {
 public:
  using Method = std::function<Result<XmlRpcValue>(const XmlRpcArray& params)>;

  /// Register a method; replaces any existing registration of that name.
  void Register(std::string name, Method method);

  /// Dispatch one parsed call.
  Result<XmlRpcValue> Dispatch(const xmlrpc::MethodCall& call) const;

  /// Handle one HTTP request carrying an XML-RPC call; always returns a
  /// well-formed XML-RPC response document (faults for errors).
  HttpResponse HandleHttp(const HttpRequest& req) const;

  /// Build a complete HttpServer handler: requests to `rpc_path` are
  /// dispatched here; anything else goes to `fallback` (or 404).
  std::function<HttpResponse(const HttpRequest&)> MakeHttpHandler(
      std::string rpc_path = "/RPC2",
      std::function<HttpResponse(const HttpRequest&)> fallback = nullptr) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Method> methods_;
};

}  // namespace mrs
