#include "xmlrpc/xml.h"

#include <cctype>

#include "common/strings.h"

namespace mrs {

const XmlElement* XmlElement::Child(std::string_view child_name) const {
  for (const XmlElement& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::Children(
    std::string_view child_name) const {
  std::vector<const XmlElement*> out;
  for (const XmlElement& c : children) {
    if (c.name == child_name) out.push_back(&c);
  }
  return out;
}

std::string XmlElement::TrimmedText() const {
  return std::string(Trim(text));
}

Result<std::string> XmlUnescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    char c = s[i];
    if (c != '&') {
      out += c;
      ++i;
      continue;
    }
    size_t semi = s.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 12) {
      return ProtocolError("unterminated XML entity");
    }
    std::string_view ent = s.substr(i + 1, semi - i - 1);
    if (ent == "amp") {
      out += '&';
    } else if (ent == "lt") {
      out += '<';
    } else if (ent == "gt") {
      out += '>';
    } else if (ent == "quot") {
      out += '"';
    } else if (ent == "apos") {
      out += '\'';
    } else if (!ent.empty() && ent[0] == '#') {
      uint64_t code = 0;
      bool ok = false;
      if (ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')) {
        code = 0;
        ok = true;
        for (char h : ent.substr(2)) {
          int d;
          if (h >= '0' && h <= '9') d = h - '0';
          else if (h >= 'a' && h <= 'f') d = h - 'a' + 10;
          else if (h >= 'A' && h <= 'F') d = h - 'A' + 10;
          else { ok = false; break; }
          code = code * 16 + static_cast<uint64_t>(d);
        }
      } else {
        auto n = ParseUint64(ent.substr(1));
        if (n.has_value()) {
          code = *n;
          ok = true;
        }
      }
      if (!ok || code > 0x10FFFF) {
        return ProtocolError("bad numeric character reference: &" +
                             std::string(ent) + ";");
      }
      // UTF-8 encode.
      if (code < 0x80) {
        out += static_cast<char>(code);
      } else if (code < 0x800) {
        out += static_cast<char>(0xC0 | (code >> 6));
        out += static_cast<char>(0x80 | (code & 0x3F));
      } else if (code < 0x10000) {
        out += static_cast<char>(0xE0 | (code >> 12));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (code & 0x3F));
      } else {
        out += static_cast<char>(0xF0 | (code >> 18));
        out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
        out += static_cast<char>(0x80 | (code & 0x3F));
      }
    } else {
      return ProtocolError("unknown XML entity: &" + std::string(ent) + ";");
    }
    i = semi + 1;
  }
  return out;
}

namespace {

/// Recursive-descent XML parser over a string_view cursor.
class XmlParser {
 public:
  explicit XmlParser(std::string_view input) : in_(input) {}

  Result<XmlElement> ParseDocument() {
    MRS_RETURN_IF_ERROR(SkipMisc());
    MRS_ASSIGN_OR_RETURN(XmlElement root, ParseElement());
    MRS_RETURN_IF_ERROR(SkipMisc());
    if (pos_ != in_.size()) {
      return ProtocolError("trailing content after XML root element");
    }
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool Match(std::string_view s) {
    if (in_.substr(pos_, s.size()) == s) {
      pos_ += s.size();
      return true;
    }
    return false;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  /// Skip whitespace, comments, PIs, and the XML declaration.
  Status SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (Match("<!--")) {
        size_t end = in_.find("-->", pos_);
        if (end == std::string_view::npos) {
          return ProtocolError("unterminated XML comment");
        }
        pos_ = end + 3;
      } else if (in_.substr(pos_, 2) == "<?") {
        size_t end = in_.find("?>", pos_);
        if (end == std::string_view::npos) {
          return ProtocolError("unterminated processing instruction");
        }
        pos_ = end + 2;
      } else if (in_.substr(pos_, 2) == "<!") {
        return ProtocolError("DTD declarations are not supported");
      } else {
        return Status::Ok();
      }
    }
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
          c == '.' || c == ':') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return ProtocolError("expected XML name");
    return std::string(in_.substr(start, pos_ - start));
  }

  Result<XmlElement> ParseElement() {
    if (AtEnd() || Peek() != '<') return ProtocolError("expected '<'");
    ++pos_;
    XmlElement elem;
    MRS_ASSIGN_OR_RETURN(elem.name, ParseName());

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) return ProtocolError("unterminated start tag");
      if (Match("/>")) return elem;
      if (Match(">")) break;
      MRS_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (!Match("=")) return ProtocolError("expected '=' in attribute");
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return ProtocolError("expected quoted attribute value");
      }
      char quote = Peek();
      ++pos_;
      size_t end = in_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return ProtocolError("unterminated attribute value");
      }
      MRS_ASSIGN_OR_RETURN(std::string value,
                           XmlUnescape(in_.substr(pos_, end - pos_)));
      pos_ = end + 1;
      elem.attributes.emplace_back(std::move(attr_name), std::move(value));
    }

    // Content.
    std::string raw_text;
    while (true) {
      if (AtEnd()) return ProtocolError("unterminated element <" + elem.name + ">");
      if (Match("<![CDATA[")) {
        size_t end = in_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          return ProtocolError("unterminated CDATA section");
        }
        elem.text.append(in_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (Match("<!--")) {
        size_t end = in_.find("-->", pos_);
        if (end == std::string_view::npos) {
          return ProtocolError("unterminated XML comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (in_.substr(pos_, 2) == "</") {
        pos_ += 2;
        MRS_ASSIGN_OR_RETURN(std::string closing, ParseName());
        if (closing != elem.name) {
          return ProtocolError("mismatched tags: <" + elem.name + "> vs </" +
                               closing + ">");
        }
        SkipWhitespace();
        if (!Match(">")) return ProtocolError("expected '>' in end tag");
        // Flush accumulated raw character data.
        MRS_ASSIGN_OR_RETURN(std::string decoded, XmlUnescape(raw_text));
        elem.text.append(decoded);
        return elem;
      }
      if (Peek() == '<') {
        MRS_ASSIGN_OR_RETURN(std::string decoded, XmlUnescape(raw_text));
        elem.text.append(decoded);
        raw_text.clear();
        MRS_ASSIGN_OR_RETURN(XmlElement child, ParseElement());
        elem.children.push_back(std::move(child));
        continue;
      }
      raw_text += Peek();
      ++pos_;
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
};

void WriteXmlTo(const XmlElement& e, std::string* out) {
  *out += '<';
  *out += e.name;
  for (const auto& [name, value] : e.attributes) {
    *out += ' ';
    *out += name;
    *out += "=\"";
    *out += XmlEscape(value);
    *out += '"';
  }
  if (e.text.empty() && e.children.empty()) {
    *out += "/>";
    return;
  }
  *out += '>';
  *out += XmlEscape(e.text);
  for (const XmlElement& child : e.children) WriteXmlTo(child, out);
  *out += "</";
  *out += e.name;
  *out += '>';
}

}  // namespace

Result<XmlElement> ParseXml(std::string_view input) {
  return XmlParser(input).ParseDocument();
}

std::string WriteXml(const XmlElement& element) {
  std::string out;
  WriteXmlTo(element, &out);
  return out;
}

}  // namespace mrs
