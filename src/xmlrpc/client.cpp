#include "xmlrpc/client.h"

#include "http/pool.h"

namespace mrs {

Result<XmlRpcValue> XmlRpcClient::CallOnce(const std::string& body,
                                           const std::string& method) {
  ConnectionPool::Lease lease = ConnectionPool::Instance().Acquire(addr_);
  HttpRequest req;
  req.method = "POST";
  req.target = endpoint_;
  req.headers.Set("Content-Type", "text/xml");
  // Accept binary-attachment responses; old masters ignore the header and
  // answer plain XML.
  req.headers.Set(std::string(kMrsFormatHeader),
                  std::string(xmlrpc::kRpcBinaryFormat));
  req.body = body;
  Result<HttpResponse> got = lease->Do(std::move(req));
  if (!got.ok()) {
    lease.Discard();
    return got.status();
  }
  if (got->status_code != 200) {
    return UnavailableError("XML-RPC HTTP status " +
                            std::to_string(got->status_code) + " calling " +
                            method);
  }
  if (auto fmt = got->headers.Get(kMrsFormatHeader);
      fmt.has_value() && *fmt == xmlrpc::kRpcBinaryFormat) {
    return xmlrpc::ParseBinaryResponse(got->body);
  }
  return xmlrpc::ParseResponse(got->body);
}

Result<XmlRpcValue> XmlRpcClient::Call(const std::string& method,
                                       XmlRpcArray params) {
  xmlrpc::MethodCall call;
  call.method = method;
  call.params = std::move(params);
  std::string body = xmlrpc::BuildCall(call);
  return CallWithRetry(retry_, &CountRpcRetry,
                       [&] { return CallOnce(body, method); });
}

}  // namespace mrs
