#include "xmlrpc/client.h"

namespace mrs {

Result<XmlRpcValue> XmlRpcClient::CallOnce(const std::string& body,
                                           const std::string& method) {
  MRS_ASSIGN_OR_RETURN(HttpResponse resp,
                       http_.Post(endpoint_, body, "text/xml"));
  if (resp.status_code != 200) {
    return UnavailableError("XML-RPC HTTP status " +
                            std::to_string(resp.status_code) + " calling " +
                            method);
  }
  return xmlrpc::ParseResponse(resp.body);
}

Result<XmlRpcValue> XmlRpcClient::Call(const std::string& method,
                                       XmlRpcArray params) {
  xmlrpc::MethodCall call;
  call.method = method;
  call.params = std::move(params);
  std::string body = xmlrpc::BuildCall(call);
  return CallWithRetry(retry_, &CountRpcRetry,
                       [&] { return CallOnce(body, method); });
}

}  // namespace mrs
