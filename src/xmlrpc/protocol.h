// XML-RPC request/response framing (methodCall / methodResponse / fault).
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "xmlrpc/value.h"

namespace mrs {
namespace xmlrpc {

struct MethodCall {
  std::string method;
  XmlRpcArray params;
};

/// Serialize a <methodCall> document.
std::string BuildCall(const MethodCall& call);

/// Parse a <methodCall> document.
Result<MethodCall> ParseCall(std::string_view xml);

/// Serialize a successful <methodResponse> with a single return value.
std::string BuildResponse(const XmlRpcValue& result);

/// Serialize a <fault> response.
std::string BuildFault(int code, std::string_view message);

/// Parse a <methodResponse>; a <fault> becomes an error Status carrying
/// "fault <code>: <message>".
Result<XmlRpcValue> ParseResponse(std::string_view xml);

}  // namespace xmlrpc
}  // namespace mrs
