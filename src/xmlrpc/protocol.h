// XML-RPC request/response framing (methodCall / methodResponse / fault).
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "xmlrpc/value.h"

namespace mrs {
namespace xmlrpc {

struct MethodCall {
  std::string method;
  XmlRpcArray params;
};

/// Serialize a <methodCall> document.
std::string BuildCall(const MethodCall& call);

/// Parse a <methodCall> document.
Result<MethodCall> ParseCall(std::string_view xml);

/// Serialize a successful <methodResponse> with a single return value.
std::string BuildResponse(const XmlRpcValue& result);

/// Serialize a <fault> response.
std::string BuildFault(int code, std::string_view message);

/// Parse a <methodResponse>; a <fault> becomes an error Status carrying
/// "fault <code>: <message>".
Result<XmlRpcValue> ParseResponse(std::string_view xml);

// ---- Binary-attachment responses ("mrsx1") ----------------------------
//
// A response whose value carries binary payloads (inline task records) can
// skip base64: the XML document keeps the structure, each <base64> is
// replaced by an <attachment>N</attachment> index, and the raw bytes ride
// after the document as length-prefixed attachments.  Negotiated per
// request via the X-Mrs-Format header (http/message.h): the client lists
// "mrsx1" among accepted formats, the server answers with the header set
// iff it used the encoding.  Calls (client -> server) stay plain XML —
// only responses carry record payloads in mrs.

/// X-Mrs-Format token for binary-attachment XML-RPC responses.
inline constexpr std::string_view kRpcBinaryFormat = "mrsx1";

/// Serialize: magic "mrsx1", length-prefixed XML document, varint
/// attachment count, then each attachment length-prefixed.
std::string BuildBinaryResponse(const XmlRpcValue& result);

/// Parse a BuildBinaryResponse body.  Framing damage is kDataLoss
/// (retryable); a malformed inner document is kProtocol as usual.
Result<XmlRpcValue> ParseBinaryResponse(std::string_view body);

}  // namespace xmlrpc
}  // namespace mrs
