#include "xmlrpc/server.h"

namespace mrs {

void XmlRpcDispatcher::Register(std::string name, Method method) {
  std::lock_guard<std::mutex> lock(mutex_);
  methods_[std::move(name)] = std::move(method);
}

Result<XmlRpcValue> XmlRpcDispatcher::Dispatch(
    const xmlrpc::MethodCall& call) const {
  Method method;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = methods_.find(call.method);
    if (it == methods_.end()) {
      return NotFoundError("unknown XML-RPC method: " + call.method);
    }
    method = it->second;
  }
  return method(call.params);
}

HttpResponse XmlRpcDispatcher::HandleHttp(const HttpRequest& req) const {
  Result<xmlrpc::MethodCall> call = xmlrpc::ParseCall(req.body);
  std::string body;
  if (!call.ok()) {
    body = xmlrpc::BuildFault(400, call.status().ToString());
  } else {
    Result<XmlRpcValue> result = Dispatch(*call);
    if (result.ok()) {
      // Results carrying binary payloads (inline records) skip base64 when
      // the caller negotiated mrsx1; everything else — including faults,
      // which old clients must always be able to parse — stays plain XML.
      if (result->HasBinary() &&
          FormatAccepted(req.headers, xmlrpc::kRpcBinaryFormat)) {
        HttpResponse resp =
            HttpResponse::Ok(xmlrpc::BuildBinaryResponse(*result),
                             "application/x-mrs-xmlrpc");
        resp.headers.Set(std::string(kMrsFormatHeader),
                         std::string(xmlrpc::kRpcBinaryFormat));
        return resp;
      }
      body = xmlrpc::BuildResponse(*result);
    } else {
      int code = result.status().code() == StatusCode::kNotFound ? 404 : 500;
      body = xmlrpc::BuildFault(code, result.status().ToString());
    }
  }
  return HttpResponse::Ok(std::move(body), "text/xml");
}

std::function<HttpResponse(const HttpRequest&)>
XmlRpcDispatcher::MakeHttpHandler(
    std::string rpc_path,
    std::function<HttpResponse(const HttpRequest&)> fallback) const {
  return [this, rpc_path = std::move(rpc_path),
          fallback = std::move(fallback)](const HttpRequest& req) {
    auto [path, query] = SplitTarget(req.target);
    (void)query;
    if (req.method == "POST" && path == rpc_path) return HandleHttp(req);
    if (fallback) return fallback(req);
    return HttpResponse::NotFound();
  };
}

}  // namespace mrs
