// MT19937-64 implemented from scratch (Matsumoto & Nishimura / Nishimura's
// 64-bit variant), including the reference array-seeding routine
// `init_by_array64`.
//
// Mrs exposes a `random(a, b, c, ...)` method that derives an *independent*
// generator from a tuple of integers (paper §IV-A): because the Mersenne
// Twister's internal state is 312×64 bits, around 300 distinct 64-bit
// arguments can be absorbed losslessly by array seeding, which is exactly
// the mechanism reproduced here (see rng/streams.h).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace mrs {

class MT19937_64 {
 public:
  static constexpr int kStateSize = 312;           // NN
  static constexpr uint64_t kDefaultSeed = 5489ull;

  /// Seed with a single 64-bit value (reference init_genrand64).
  explicit MT19937_64(uint64_t seed = kDefaultSeed) { SeedScalar(seed); }

  /// Seed with an array of 64-bit keys (reference init_by_array64).  Tuples
  /// that differ in any element, or in length, produce different states.
  explicit MT19937_64(std::span<const uint64_t> keys) { SeedByArray(keys); }

  void SeedScalar(uint64_t seed);
  void SeedByArray(std::span<const uint64_t> keys);

  /// Next uniform 64-bit integer.
  uint64_t NextU64();

  /// Uniform double in [0, 1) with 53-bit resolution (genrand64_real2).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0); }

  /// Uniform integer in [0, bound) via rejection sampling (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Standard normal via Box-Muller (caches the second variate).
  double NextGaussian();

  // UniformRandomBitGenerator interface, so std::shuffle etc. work.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return NextU64(); }

  /// Expose raw state for equality checks in tests.
  const std::array<uint64_t, kStateSize>& state() const { return mt_; }

 private:
  void Twist();

  std::array<uint64_t, kStateSize> mt_{};
  int mti_ = kStateSize + 1;
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace mrs
