// Independent pseudorandom streams, the Mrs `random(...)` API.
//
// Paper §IV-A: "The mrs.MapReduce class provides a random method that
// returns a random number generator.  The method takes a variable number of
// integer arguments and ensures that the random number generator is unique
// for any particular combination of inputs."  Determinism across the
// serial / mock-parallel / master-slave implementations follows because the
// stream depends only on the argument tuple (typically: program seed,
// operation id, task index), never on scheduling order.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "rng/mt19937_64.h"

namespace mrs {

/// Derives generators from (seed, args...) tuples via MT19937-64 array
/// seeding.  Distinct tuples — including tuples of different lengths —
/// yield independent streams; equal tuples yield identical streams.
class RandomStreams {
 public:
  explicit RandomStreams(uint64_t program_seed = 0) : seed_(program_seed) {}

  uint64_t program_seed() const { return seed_; }
  void set_program_seed(uint64_t seed) { seed_ = seed; }

  /// Mrs's `self.random(a, b, ...)`.  The argument tuple is absorbed
  /// losslessly into the 312-word state (up to ~300 64-bit args; beyond
  /// that, keys wrap and streams remain well-mixed but no longer injective,
  /// matching the paper's "around 300 arguments" bound).
  MT19937_64 Get(std::span<const uint64_t> args) const {
    std::vector<uint64_t> keys;
    keys.reserve(args.size() + 2);
    keys.push_back(seed_);
    // Length tag: makes (1) and (1, 0) distinct even though a zero suffix
    // would otherwise collide for short tuples.
    keys.push_back(0x6d72735f726e6700ull ^ args.size());  // "mrs_rng" tag
    keys.insert(keys.end(), args.begin(), args.end());
    return MT19937_64(std::span<const uint64_t>(keys));
  }

  MT19937_64 Get(std::initializer_list<uint64_t> args) const {
    return Get(std::span<const uint64_t>(args.begin(), args.size()));
  }

  template <typename... Ints>
  MT19937_64 operator()(Ints... args) const {
    if constexpr (sizeof...(Ints) == 0) {
      return Get(std::span<const uint64_t>());
    } else {
      const uint64_t arr[] = {static_cast<uint64_t>(args)...};
      return Get(std::span<const uint64_t>(arr, sizeof...(Ints)));
    }
  }

 private:
  uint64_t seed_;
};

}  // namespace mrs
