#include "rng/mt19937_64.h"

#include <cmath>

namespace mrs {

namespace {
constexpr int kNN = MT19937_64::kStateSize;
constexpr int kMM = 156;
constexpr uint64_t kMatrixA = 0xB5026F5AA96619E9ull;
constexpr uint64_t kUpperMask = 0xFFFFFFFF80000000ull;  // most significant 33 bits
constexpr uint64_t kLowerMask = 0x7FFFFFFFull;          // least significant 31 bits
}  // namespace

void MT19937_64::SeedScalar(uint64_t seed) {
  mt_[0] = seed;
  for (int i = 1; i < kNN; ++i) {
    mt_[i] = 6364136223846793005ull * (mt_[i - 1] ^ (mt_[i - 1] >> 62)) +
             static_cast<uint64_t>(i);
  }
  mti_ = kNN;
  has_gauss_ = false;
}

void MT19937_64::SeedByArray(std::span<const uint64_t> keys) {
  SeedScalar(19650218ull);
  size_t i = 1, j = 0;
  size_t k = (static_cast<size_t>(kNN) > keys.size()) ? static_cast<size_t>(kNN)
                                                      : keys.size();
  for (; k != 0; --k) {
    mt_[i] = (mt_[i] ^ ((mt_[i - 1] ^ (mt_[i - 1] >> 62)) * 3935559000370003845ull)) +
             (keys.empty() ? 0 : keys[j]) + static_cast<uint64_t>(j);
    ++i;
    ++j;
    if (i >= static_cast<size_t>(kNN)) {
      mt_[0] = mt_[kNN - 1];
      i = 1;
    }
    if (j >= keys.size()) j = 0;
    if (keys.empty()) j = 0;
  }
  for (k = kNN - 1; k != 0; --k) {
    mt_[i] = (mt_[i] ^ ((mt_[i - 1] ^ (mt_[i - 1] >> 62)) * 2862933555777941757ull)) -
             static_cast<uint64_t>(i);
    ++i;
    if (i >= static_cast<size_t>(kNN)) {
      mt_[0] = mt_[kNN - 1];
      i = 1;
    }
  }
  mt_[0] = 1ull << 63;  // MSB is 1, assuring a non-zero initial array
  mti_ = kNN;
  has_gauss_ = false;
}

void MT19937_64::Twist() {
  for (int i = 0; i < kNN; ++i) {
    uint64_t x = (mt_[i] & kUpperMask) | (mt_[(i + 1) % kNN] & kLowerMask);
    mt_[i] = mt_[(i + kMM) % kNN] ^ (x >> 1) ^ ((x & 1) ? kMatrixA : 0ull);
  }
  mti_ = 0;
}

uint64_t MT19937_64::NextU64() {
  if (mti_ >= kNN) Twist();
  uint64_t x = mt_[mti_++];
  x ^= (x >> 29) & 0x5555555555555555ull;
  x ^= (x << 17) & 0x71D67FFFEDA60000ull;
  x ^= (x << 37) & 0xFFF7EEE000000000ull;
  x ^= x >> 43;
  return x;
}

uint64_t MT19937_64::NextBounded(uint64_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling over the top `bound`-aligned range.
  uint64_t threshold = (~bound + 1) % bound;  // = 2^64 mod bound
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double MT19937_64::NextGaussian() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_;
  }
  // Box-Muller with rejection of u1 == 0.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  has_gauss_ = true;
  return r * std::cos(theta);
}

}  // namespace mrs
