#include "fs/bucket.h"

#include "common/bytes.h"
#include "common/strings.h"
#include "fs/file_io.h"
#include "http/message.h"

namespace mrs {

Status Bucket::PersistToFile(const std::string& path) {
  MRS_RETURN_IF_ERROR(WriteFileAtomic(path, EncodeBinaryRecords(records_)));
  url_ = "file://" + path;
  return Status::Ok();
}

Status Bucket::EnsureLoaded(
    const std::function<Result<std::string>(const std::string&)>& http_fetch) {
  if (loaded_) return Status::Ok();
  if (url_.empty()) {
    // Never persisted and not marked loaded: treat in-memory contents
    // (possibly empty) as authoritative.
    loaded_ = true;
    return Status::Ok();
  }
  std::string raw;
  if (StartsWith(url_, "file://")) {
    MRS_ASSIGN_OR_RETURN(raw, ReadFileToString(url_.substr(7)));
  } else if (StartsWith(url_, "http://")) {
    if (!http_fetch) {
      return FailedPreconditionError("no http fetcher for bucket url " + url_);
    }
    MRS_ASSIGN_OR_RETURN(raw, http_fetch(url_));
  } else {
    return InvalidArgumentError("unsupported bucket url scheme: " + url_);
  }
  // Truncation guard: a payload that does not decode cleanly is data loss
  // (short read, dead peer mid-transfer), surfaced as retryable kDataLoss
  // — never silently parsed as a shorter record stream.
  Result<std::vector<KeyValue>> decoded = DecodeRecords(raw);
  if (!decoded.ok()) {
    return DataLossError("bucket " + url_ + " payload corrupt after " +
                         std::to_string(raw.size()) +
                         " bytes: " + decoded.status().message());
  }
  records_ = std::move(*decoded);
  loaded_ = true;
  return Status::Ok();
}

std::string BucketFileName(std::string_view dataset_id, int source, int split) {
  return std::string(dataset_id) + "/source_" + std::to_string(source) +
         "_split_" + std::to_string(split) + ".mrsb";
}

std::string EncodeBucketFrames(const std::vector<BucketFrame>& frames) {
  Bytes out;
  ByteWriter w(&out);
  w.PutRaw(kBucketFramesFormat.data(), kBucketFramesFormat.size());
  w.PutVarint(frames.size());
  for (const BucketFrame& f : frames) {
    w.PutLengthPrefixed(f.id);
    w.PutLengthPrefixed(f.checksum);
    w.PutLengthPrefixed(f.data);
  }
  return std::string(reinterpret_cast<const char*>(out.data()), out.size());
}

Result<std::vector<BucketFrame>> DecodeBucketFrames(std::string_view body) {
  if (!StartsWith(body, kBucketFramesFormat)) {
    return DataLossError("bucket frame payload missing mrsk1 magic");
  }
  ByteReader r(body.substr(kBucketFramesFormat.size()));
  MRS_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  std::vector<BucketFrame> frames;
  frames.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    BucketFrame f;
    MRS_ASSIGN_OR_RETURN(f.id, r.GetLengthPrefixed());
    MRS_ASSIGN_OR_RETURN(f.checksum, r.GetLengthPrefixed());
    MRS_ASSIGN_OR_RETURN(f.data, r.GetLengthPrefixed());
    if (ContentChecksum(f.data) != f.checksum) {
      return DataLossError("bucket frame " + f.id +
                           " checksum mismatch in batched transfer");
    }
    frames.push_back(std::move(f));
  }
  if (!r.empty()) {
    return DataLossError("trailing bytes after bucket frames");
  }
  return frames;
}

}  // namespace mrs
