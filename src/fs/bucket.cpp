#include "fs/bucket.h"

#include <algorithm>
#include <iterator>
#include <memory>

#include "common/bytes.h"
#include "common/strings.h"
#include "fs/file_io.h"
#include "fs/merge.h"
#include "http/message.h"

namespace mrs {

void Bucket::Absorb(Bucket&& other) {
  if (records_.empty()) {
    records_ = std::move(other.records_);
  } else {
    records_.insert(records_.end(),
                    std::make_move_iterator(other.records_.begin()),
                    std::make_move_iterator(other.records_.end()));
  }
  other.records_.clear();
}

Status Bucket::PersistToFile(const std::string& path) {
  MRS_RETURN_IF_ERROR(WriteFileAtomic(path, EncodeBinaryRecords(records_)));
  url_ = "file://" + path;
  return Status::Ok();
}

Status Bucket::SpillToRun(const std::string& path, const std::string& id,
                          bool sorted) {
  if (sorted) {
    std::stable_sort(records_.begin(), records_.end(), KeyValueLess);
  }
  MRS_ASSIGN_OR_RETURN(SpillRun run, WriteSpillRun(path, id, records_, sorted));
  spill_runs_.push_back(std::move(run));
  records_.clear();
  records_.shrink_to_fit();
  loaded_ = false;
  return Status::Ok();
}

size_t Bucket::ApproxMemoryBytes() const {
  size_t bytes = 0;
  for (const KeyValue& kv : records_) bytes += mrs::ApproxMemoryBytes(kv);
  return bytes;
}

Status Bucket::LoadFromRuns() {
  // All runs in one bucket share an ordering mode (callers never mix):
  // sorted runs merge by (key, value); FIFO runs concatenate in write
  // order.  A not-yet-flushed in-memory tail joins as the last source.
  std::vector<KeyValue> tail = std::move(records_);
  records_.clear();
  bool all_sorted = true;
  for (const SpillRun& run : spill_runs_) all_sorted &= run.sorted;
  if (all_sorted) {
    std::vector<std::unique_ptr<MergeSource>> sources;
    sources.reserve(spill_runs_.size() + 1);
    for (const SpillRun& run : spill_runs_) {
      sources.push_back(std::make_unique<SpillRunSource>(run));
    }
    if (!tail.empty()) {
      std::stable_sort(tail.begin(), tail.end(), KeyValueLess);
      sources.push_back(std::make_unique<VectorSource>(std::move(tail)));
    }
    MRS_ASSIGN_OR_RETURN(records_, MergeToVector(std::move(sources)));
  } else {
    for (const SpillRun& run : spill_runs_) {
      MRS_ASSIGN_OR_RETURN(std::vector<KeyValue> recs, ReadSpillRun(run));
      records_.insert(records_.end(), std::make_move_iterator(recs.begin()),
                      std::make_move_iterator(recs.end()));
    }
    records_.insert(records_.end(), std::make_move_iterator(tail.begin()),
                    std::make_move_iterator(tail.end()));
  }
  loaded_ = true;
  return Status::Ok();
}

Status Bucket::EnsureLoaded(
    const std::function<Result<std::string>(const std::string&)>& http_fetch) {
  if (loaded_) return Status::Ok();
  if (!spill_runs_.empty()) return LoadFromRuns();
  if (url_.empty()) {
    // Never persisted and not marked loaded: treat in-memory contents
    // (possibly empty) as authoritative.
    loaded_ = true;
    return Status::Ok();
  }
  std::string raw;
  if (StartsWith(url_, "file://")) {
    MRS_ASSIGN_OR_RETURN(raw, ReadFileToString(url_.substr(7)));
  } else if (StartsWith(url_, "http://")) {
    if (!http_fetch) {
      return FailedPreconditionError("no http fetcher for bucket url " + url_);
    }
    MRS_ASSIGN_OR_RETURN(raw, http_fetch(url_));
  } else {
    return InvalidArgumentError("unsupported bucket url scheme: " + url_);
  }
  // Truncation guard: a payload that does not decode cleanly is data loss
  // (short read, dead peer mid-transfer), surfaced as retryable kDataLoss
  // — never silently parsed as a shorter record stream.
  Result<std::vector<KeyValue>> decoded = DecodeBucketBody(raw);
  if (!decoded.ok()) {
    return DataLossError("bucket " + url_ + " payload corrupt after " +
                         std::to_string(raw.size()) +
                         " bytes: " + decoded.status().message());
  }
  records_ = std::move(*decoded);
  loaded_ = true;
  return Status::Ok();
}

std::string BucketFileName(std::string_view dataset_id, int source, int split) {
  return std::string(dataset_id) + "/source_" + std::to_string(source) +
         "_split_" + std::to_string(split) + ".mrsb";
}

std::string EncodeBucketFrames(const std::vector<BucketFrame>& frames) {
  Bytes out;
  ByteWriter w(&out);
  w.PutRaw(kBucketFramesFormat.data(), kBucketFramesFormat.size());
  w.PutVarint(frames.size());
  for (const BucketFrame& f : frames) {
    w.PutLengthPrefixed(f.id);
    w.PutLengthPrefixed(f.checksum);
    w.PutLengthPrefixed(f.data);
  }
  return std::string(reinterpret_cast<const char*>(out.data()), out.size());
}

Result<std::vector<BucketFrame>> DecodeBucketFrames(std::string_view body) {
  if (!StartsWith(body, kBucketFramesFormat)) {
    return DataLossError("bucket frame payload missing mrsk1 magic");
  }
  ByteReader r(body.substr(kBucketFramesFormat.size()));
  MRS_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  std::vector<BucketFrame> frames;
  frames.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    BucketFrame f;
    MRS_ASSIGN_OR_RETURN(f.id, r.GetLengthPrefixed());
    MRS_ASSIGN_OR_RETURN(f.checksum, r.GetLengthPrefixed());
    MRS_ASSIGN_OR_RETURN(f.data, r.GetLengthPrefixed());
    if (ContentChecksum(f.data) != f.checksum) {
      return DataLossError("bucket frame " + f.id +
                           " checksum mismatch in batched transfer");
    }
    frames.push_back(std::move(f));
  }
  if (!r.empty()) {
    return DataLossError("trailing bytes after bucket frames");
  }
  return frames;
}

Result<std::vector<KeyValue>> DecodeBucketBody(std::string_view body) {
  if (StartsWith(body, kBucketFramesFormat)) {
    MRS_ASSIGN_OR_RETURN(std::vector<BucketFrame> frames,
                         DecodeBucketFrames(body));
    std::vector<KeyValue> out;
    for (const BucketFrame& f : frames) {
      MRS_ASSIGN_OR_RETURN(std::vector<KeyValue> recs,
                           DecodeBinaryRecords(f.data));
      out.insert(out.end(), std::make_move_iterator(recs.begin()),
                 std::make_move_iterator(recs.end()));
    }
    return out;
  }
  return DecodeRecords(body);
}

}  // namespace mrs
