// Filesystem helpers.
//
// Mrs deliberately has no distributed filesystem: it "can read and write to
// any filesystem supported by the kernel" (paper §IV-B).  Everything here
// is plain POSIX: whole-file read/write (atomic via rename), directory
// creation, and recursive enumeration — the last one matters because the
// paper's WordCount input (Project Gutenberg) lives in a nested directory
// tree that Hadoop's loader could not handle.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mrs {

Result<std::string> ReadFileToString(const std::string& path);

/// Write via a temp file + rename so readers never see partial content.
/// Durable: the temp fd is fsync'ed before the rename (so a crash after
/// rename can never expose an empty or partial "atomically written" file)
/// and the parent directory is fsync'ed after it (so the rename itself
/// survives a crash) — spill runs and lineage treat these files as
/// durable recoverable state.
Status WriteFileAtomic(const std::string& path, std::string_view content);

/// Test hook simulating crash-window failures inside WriteFileAtomic.
/// Called before each durability step with "fsync", "rename", or
/// "dirsync"; returning false makes that step fail with EIO.  Pass
/// nullptr to restore normal operation.  Tests only; not thread-safe.
void SetWriteFileAtomicFaultHook(bool (*hook)(const char* step));

Status AppendToFile(const std::string& path, std::string_view content);

/// mkdir -p.
Status EnsureDir(const std::string& path);

/// Recursively remove a directory tree (best-effort).
void RemoveTree(const std::string& path);

bool FileExists(const std::string& path);
bool IsDirectory(const std::string& path);
Result<uint64_t> FileSize(const std::string& path);

/// All regular files under `root`, recursively, sorted lexicographically
/// for deterministic task splits.  Symlinks are not followed.
Result<std::vector<std::string>> ListFilesRecursive(const std::string& root);

/// Create a fresh unique directory under the system temp dir (or $TMPDIR),
/// named "<prefix>XXXXXX".
Result<std::string> MakeTempDir(const std::string& prefix);

/// Join path components with '/' (no normalization).
std::string JoinPath(std::string_view a, std::string_view b);

}  // namespace mrs
