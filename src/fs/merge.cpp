#include "fs/merge.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/bytes.h"
#include "common/strings.h"
#include "fs/bucket.h"
#include "obs/metrics.h"
#include "ser/record.h"

namespace mrs {

namespace {

uint64_t Fnv1a64Feed(uint64_t h, const char* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string ChecksumString(uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;

}  // namespace

SpillRunSource::SpillRunSource(SpillRun run, size_t buffer_bytes)
    : run_(std::move(run)), buffer_bytes_(std::max<size_t>(buffer_bytes, 4096)) {}

SpillRunSource::~SpillRunSource() {
  if (file_) std::fclose(file_);
}

Status SpillRunSource::Corrupt(const std::string& what) const {
  return DataLossError("spill run " + run_.path + ": " + what);
}

Status SpillRunSource::Open() {
  file_ = std::fopen(run_.path.c_str(), "rb");
  if (!file_) {
    if (errno == ENOENT) {
      return NotFoundError("spill run " + run_.path + " missing");
    }
    return IoError("open " + run_.path + ": " + std::strerror(errno));
  }

  // Frame header: magic, varint count (always 1), length-prefixed id and
  // checksum, then the payload length prefix.  Ids and checksums are
  // short, so the first buffer covers the whole header.
  std::string head(buffer_bytes_, '\0');
  size_t got = std::fread(head.data(), 1, head.size(), file_);
  head.resize(got);
  if (!StartsWith(head, kBucketFramesFormat)) {
    return Corrupt("missing mrsk1 magic");
  }
  ByteReader r(std::string_view(head).substr(kBucketFramesFormat.size()));
  Result<uint64_t> count = r.GetVarint();
  if (!count.ok() || *count != 1) return Corrupt("malformed frame count");
  Result<std::string> id = r.GetLengthPrefixed();
  if (!id.ok()) return Corrupt("truncated frame id");
  Result<std::string> checksum = r.GetLengthPrefixed();
  if (!checksum.ok()) return Corrupt("truncated frame checksum");
  Result<uint64_t> payload_len = r.GetVarint();
  if (!payload_len.ok()) return Corrupt("truncated payload length");
  if (!run_.checksum.empty() && *checksum != run_.checksum) {
    return Corrupt("frame checksum does not match run metadata");
  }
  const uint64_t header_size = kBucketFramesFormat.size() + r.position();

  // Streaming verification pass: hash the whole payload before emitting a
  // single record, so corruption anywhere in the run is kDataLoss at the
  // first Next(), never partially-emitted garbage.  The second pass below
  // re-reads from the page cache; memory stays O(buffer).
  uint64_t hash = kFnvOffsetBasis;
  uint64_t left = *payload_len;
  {
    // The head buffer already holds the payload's first bytes.
    size_t in_head = std::min<uint64_t>(head.size() - header_size, left);
    hash = Fnv1a64Feed(hash, head.data() + header_size, in_head);
    left -= in_head;
  }
  std::string chunk(buffer_bytes_, '\0');
  while (left > 0) {
    size_t want = static_cast<size_t>(
        std::min<uint64_t>(left, chunk.size()));
    size_t n = std::fread(chunk.data(), 1, want, file_);
    if (n == 0) return Corrupt("truncated payload");
    hash = Fnv1a64Feed(hash, chunk.data(), n);
    left -= n;
  }
  if (std::fread(chunk.data(), 1, 1, file_) != 0) {
    return Corrupt("trailing bytes after frame payload");
  }
  if (ChecksumString(hash) != *checksum) {
    return Corrupt("payload checksum mismatch");
  }

  // Rewind to the payload and parse its record-stream prelude.
  if (std::fseek(file_, static_cast<long>(header_size), SEEK_SET) != 0) {
    return IoError("seek " + run_.path + ": " + std::strerror(errno));
  }
  payload_left_ = *payload_len;
  window_.clear();
  MRS_RETURN_IF_ERROR(Refill());
  if (!StartsWith(window_, kBinaryRecordMagic)) {
    return Corrupt("payload missing binary record magic");
  }
  ByteReader pre(std::string_view(window_).substr(kBinaryRecordMagic.size()));
  Result<uint64_t> n = pre.GetVarint();
  if (!n.ok()) return Corrupt("truncated record count");
  records_left_ = *n;
  window_.erase(0, kBinaryRecordMagic.size() + pre.position());
  return Status::Ok();
}

Status SpillRunSource::Refill() {
  if (payload_left_ == 0) return Status::Ok();
  size_t want = static_cast<size_t>(
      std::min<uint64_t>(payload_left_, buffer_bytes_));
  size_t old = window_.size();
  window_.resize(old + want);
  size_t got = std::fread(window_.data() + old, 1, want, file_);
  window_.resize(old + got);
  payload_left_ -= got;
  if (got < want) return Corrupt("unexpected EOF in payload");
  return Status::Ok();
}

Result<bool> SpillRunSource::Next(KeyValue* out) {
  if (!opened_) {
    opened_ = true;
    open_status_ = Open();
  }
  if (!open_status_.ok()) return open_status_;
  if (records_left_ == 0) {
    if (!window_.empty() || payload_left_ != 0) {
      open_status_ = Corrupt("trailing bytes after records");
      return open_status_;
    }
    return false;
  }
  while (true) {
    ByteReader r(window_);
    Result<Value> key = Value::Deserialize(&r);
    Result<Value> value =
        key.ok() ? Value::Deserialize(&r) : Result<Value>(key.status());
    if (key.ok() && value.ok()) {
      out->key = std::move(*key);
      out->value = std::move(*value);
      window_.erase(0, r.position());
      --records_left_;
      return true;
    }
    // A record may straddle the buffer boundary: pull more payload and
    // retry.  Only when the payload is exhausted is the failure real.
    if (payload_left_ == 0) {
      open_status_ = Corrupt("malformed record: " +
                             (key.ok() ? value.status() : key.status())
                                 .message());
      return open_status_;
    }
    MRS_RETURN_IF_ERROR(Refill());
  }
}

LoserTreeMerger::LoserTreeMerger(
    std::vector<std::unique_ptr<MergeSource>> sources)
    : k_(static_cast<int>(sources.size())), sources_(std::move(sources)) {
  static obs::Counter* merges =
      obs::Registry::Instance().GetCounter("mrs.spill.merges");
  static obs::Histogram* fan_in = obs::Registry::Instance().GetHistogram(
      "mrs.spill.merge_fan_in", /*base=*/1.0);
  merges->Inc();
  fan_in->Observe(static_cast<double>(k_));
}

bool LoserTreeMerger::Beats(int a, int b) const {
  if (!alive_[static_cast<size_t>(a)] || !alive_[static_cast<size_t>(b)]) {
    // Exhausted sources lose to live ones; between two exhausted sources
    // the order is irrelevant but must be deterministic.
    if (alive_[static_cast<size_t>(a)]) return true;
    if (alive_[static_cast<size_t>(b)]) return false;
    return a < b;
  }
  const KeyValue& ka = cur_[static_cast<size_t>(a)];
  const KeyValue& kb = cur_[static_cast<size_t>(b)];
  if (KeyValueLess(ka, kb)) return true;
  if (KeyValueLess(kb, ka)) return false;
  return a < b;  // stability: lower source index first
}

Status LoserTreeMerger::Advance(int s) {
  KeyValue kv;
  MRS_ASSIGN_OR_RETURN(bool more, sources_[static_cast<size_t>(s)]->Next(&kv));
  alive_[static_cast<size_t>(s)] = more;
  if (more) cur_[static_cast<size_t>(s)] = std::move(kv);
  return Status::Ok();
}

Status LoserTreeMerger::Init() {
  cur_.resize(static_cast<size_t>(k_));
  alive_.assign(static_cast<size_t>(k_), false);
  for (int s = 0; s < k_; ++s) MRS_RETURN_IF_ERROR(Advance(s));
  if (k_ <= 1) {
    tree_.assign(1, 0);
    return Status::Ok();
  }
  // Bottom-up build over the implicit tournament tree: leaves at
  // [k_, 2k_), internal nodes at [1, k_).  win[] carries match winners
  // upward; the loser stays at the node.
  std::vector<int> win(static_cast<size_t>(2 * k_));
  for (int i = 0; i < k_; ++i) win[static_cast<size_t>(k_ + i)] = i;
  tree_.assign(static_cast<size_t>(k_), 0);
  for (int t = k_ - 1; t >= 1; --t) {
    int a = win[static_cast<size_t>(2 * t)];
    int b = win[static_cast<size_t>(2 * t + 1)];
    bool a_wins = Beats(a, b);
    win[static_cast<size_t>(t)] = a_wins ? a : b;
    tree_[static_cast<size_t>(t)] = a_wins ? b : a;
  }
  tree_[0] = win[1];
  return Status::Ok();
}

Result<bool> LoserTreeMerger::Next(KeyValue* out) {
  if (!initialized_) {
    initialized_ = true;
    MRS_RETURN_IF_ERROR(Init());
  }
  if (k_ == 0) return false;
  int w = tree_[0];
  if (!alive_[static_cast<size_t>(w)]) return false;
  *out = std::move(cur_[static_cast<size_t>(w)]);
  MRS_RETURN_IF_ERROR(Advance(w));
  // Replay the winner's leaf-to-root path: at each node the stored loser
  // plays the incoming candidate; the loser stays, the winner moves up.
  int s = w;
  for (int t = (k_ + w) / 2; t >= 1; t /= 2) {
    if (Beats(tree_[static_cast<size_t>(t)], s)) {
      std::swap(s, tree_[static_cast<size_t>(t)]);
    }
  }
  tree_[0] = s;
  return true;
}

Result<std::vector<KeyValue>> MergeToVector(
    std::vector<std::unique_ptr<MergeSource>> sources) {
  LoserTreeMerger merger(std::move(sources));
  std::vector<KeyValue> out;
  KeyValue kv;
  while (true) {
    MRS_ASSIGN_OR_RETURN(bool more, merger.Next(&kv));
    if (!more) break;
    out.push_back(std::move(kv));
  }
  return out;
}

}  // namespace mrs
