// K-way external merge over sorted record sources (loser tree).
//
// The read side of the out-of-core tier (fs/spill.h): a reduce task whose
// input spilled as sorted runs never materializes the full input — it
// pulls one record at a time from a LoserTreeMerger over one source per
// run (streamed from disk) plus one per still-in-memory bucket.  Ties are
// broken by source index, so merging per-source sorted streams reproduces
// byte-for-byte the sequence std::stable_sort would produce over their
// concatenation in source order — the property the equivalence matrix
// pins down.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fs/spill.h"
#include "ser/value.h"

namespace mrs {

/// A stream of records, pulled one at a time.
class MergeSource {
 public:
  virtual ~MergeSource() = default;
  /// Fill *out with the next record and return true; false when the
  /// source is exhausted.  Errors (kDataLoss, kNotFound) abort the merge.
  virtual Result<bool> Next(KeyValue* out) = 0;
};

/// In-memory records.  The caller is responsible for ordering (a merger
/// requires every source sorted by (key, value)).
class VectorSource : public MergeSource {
 public:
  explicit VectorSource(std::vector<KeyValue> records)
      : records_(std::move(records)) {}
  Result<bool> Next(KeyValue* out) override {
    if (pos_ >= records_.size()) return false;
    *out = std::move(records_[pos_++]);
    return true;
  }

 private:
  std::vector<KeyValue> records_;
  size_t pos_ = 0;
};

/// Streams a spill run from disk in fixed-size chunks — memory stays
/// O(buffer + one record) regardless of run size.  The first Next() opens
/// the file, parses the frame header, and verifies the payload checksum
/// with one streaming pass *before* any record is emitted, so a bit-flip
/// anywhere in the run surfaces as kDataLoss up front — never as silently
/// corrupted records.  A missing file is kNotFound; truncation or a
/// malformed record is kDataLoss.
class SpillRunSource : public MergeSource {
 public:
  explicit SpillRunSource(SpillRun run, size_t buffer_bytes = 64 * 1024);
  ~SpillRunSource() override;

  SpillRunSource(const SpillRunSource&) = delete;
  SpillRunSource& operator=(const SpillRunSource&) = delete;

  Result<bool> Next(KeyValue* out) override;

 private:
  Status Open();
  Status Corrupt(const std::string& what) const;
  /// Append up to buffer_bytes_ more payload bytes to window_.
  Status Refill();

  SpillRun run_;
  size_t buffer_bytes_;
  std::FILE* file_ = nullptr;
  bool opened_ = false;
  Status open_status_;
  uint64_t records_left_ = 0;
  uint64_t payload_left_ = 0;  // payload bytes not yet read into window_
  std::string window_;         // undecoded payload bytes
};

/// Stable k-way merge: repeatedly yields the smallest head record by
/// (key, value), ties broken by source index.  Sources must each be
/// sorted by (key, value).  Updates mrs.spill.merges and the
/// mrs.spill.merge_fan_in histogram.
class LoserTreeMerger {
 public:
  explicit LoserTreeMerger(std::vector<std::unique_ptr<MergeSource>> sources);

  /// False when every source is exhausted.  Any source error aborts the
  /// merge with that status; the merger is then unusable.
  Result<bool> Next(KeyValue* out);

  int fan_in() const { return k_; }

 private:
  /// a beats b: earlier (key, value), ties to the lower source index.
  bool Beats(int a, int b) const;
  Status Advance(int s);
  Status Init();

  int k_;
  std::vector<std::unique_ptr<MergeSource>> sources_;
  std::vector<KeyValue> cur_;   // head record per source
  std::vector<bool> alive_;
  std::vector<int> tree_;       // [0] winner; [1..k-1] internal-node losers
  bool initialized_ = false;
};

/// Convenience: merge everything into one vector (tests, small fan-ins).
Result<std::vector<KeyValue>> MergeToVector(
    std::vector<std::unique_ptr<MergeSource>> sources);

}  // namespace mrs
