// Out-of-core bucket storage: spill runs + the process memory budget.
//
// When a job's intermediate data exceeds RAM, bucket contents are written
// to local disk as *spill runs* — checksummed files in the same mrsk1
// frame format the data plane streams between slaves — and reads become
// merged streams (fs/merge.h) instead of materialized vectors.  The
// MemoryBudget decides when: every producer (map partition accumulation,
// reduce output buffering, dataset row storage) charges it as records
// accumulate and spills once usage crosses the configured limit.
//
// Two run orderings exist, chosen by what the consumer is allowed to
// observe:
//   - sorted runs (map/shuffle output): records within the run are ordered
//     by (key, value).  Shuffle data has multiset semantics — the reduce
//     consumer sort-groups it anyway, and records that compare equal are
//     byte-identical — so a k-way merge of sorted runs reproduces exactly
//     what a stable_sort of the in-memory concatenation would have fed the
//     reduce.  This is what makes spilling invisible to the
//     all-implementations-identical invariant.
//   - FIFO runs (reduce/final output): record order is preserved exactly
//     (runs concatenate in write order), because Job::Collect reads final
//     buckets in raw emit order and per-key reduce emit order is
//     program-defined, not sorted.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "ser/value.h"

namespace mrs {

/// Byte-accounting for in-memory bucket data.  Charge/Release are lock-free
/// and safe from any thread (pool workers, slave executor, dataset
/// mutators).  A limit <= 0 means unlimited: ShouldSpill never fires and
/// the runtime behaves exactly as before this tier existed.
///
/// The limit is a soft target with bounded overshoot: producers check
/// ShouldSpill() every few records (not on every append), so usage may
/// exceed the limit by one check interval's worth of records before the
/// spill happens.
class MemoryBudget {
 public:
  MemoryBudget() = default;

  /// The process-wide budget every runner and dataset consults.  Its
  /// initial limit comes from $MRS_MEMORY_BUDGET (parsed once, first use);
  /// --mrs-memory-budget overrides it via set_limit.  Mirrors usage and
  /// high-water into the mrs.spill.budget_* gauges.
  static MemoryBudget& Process();

  /// <= 0: unlimited (the default).
  void set_limit(int64_t bytes) {
    limit_.store(bytes, std::memory_order_relaxed);
  }
  int64_t limit() const { return limit_.load(std::memory_order_relaxed); }
  bool active() const { return limit() > 0; }

  void Charge(int64_t bytes);
  void Release(int64_t bytes);

  int64_t usage() const { return usage_.load(std::memory_order_relaxed); }
  int64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  /// True when a producer holding in-memory records should spill them:
  /// the budget is active and current usage (plus `extra` hypothetical
  /// bytes) exceeds the limit.
  bool ShouldSpill(int64_t extra = 0) const {
    int64_t lim = limit();
    return lim > 0 && usage() + extra > lim;
  }

  /// Test hook: zero usage and high-water (limits are the caller's to
  /// restore).  Charges are matched by releases in normal operation, but a
  /// test that aborts a run mid-flight may leak accounting.
  void ResetForTest();

 private:
  friend class ProcessBudgetAccess;
  std::atomic<int64_t> limit_{0};
  std::atomic<int64_t> usage_{0};
  std::atomic<int64_t> high_water_{0};
  bool is_process_ = false;  // set once, before threads exist
};

/// Parse a byte-size string: a plain integer, optionally suffixed with
/// K/M/G (binary: 1024-based, case-insensitive, optional trailing B/iB).
/// "0" and "" mean unlimited.
Result<int64_t> ParseByteSize(const std::string& text);

/// One spill run on local disk.  The file is a single-frame mrsk1 frame
/// set: frame id names the producer ("<dataset>/<source>/<split>[/...]"),
/// frame checksum guards the payload, frame data is EncodeBinaryRecords of
/// the run's records.  Reusing the wire format means a slave can serve a
/// run straight into the batched data plane without re-framing.
struct SpillRun {
  std::string path;
  std::string id;
  std::string checksum;  // ContentChecksum of the encoded record payload
  uint64_t records = 0;
  uint64_t bytes = 0;  // encoded payload size
  bool sorted = false;  // ordered by (key, value); false = FIFO
};

/// Write `records` to `path` as a spill run (atomically: temp + rename).
/// If `sorted`, the caller guarantees the records are already ordered by
/// (key, value).  Updates mrs.spill.runs_written / bytes_spilled.
Result<SpillRun> WriteSpillRun(const std::string& path, const std::string& id,
                               const std::vector<KeyValue>& records,
                               bool sorted);

/// Wrap an already-encoded record payload (e.g. a frame fetched over the
/// data plane) as a spill run file without decoding it.  `checksum` must
/// be ContentChecksum(payload) — verified on read, not here.
Result<SpillRun> WriteEncodedSpillRun(const std::string& path,
                                      const std::string& id,
                                      std::string_view payload,
                                      const std::string& checksum,
                                      bool sorted);

/// Read a whole run back.  A missing file is kNotFound; truncation, a bad
/// frame, or a checksum mismatch is kDataLoss.  (For memory-bounded reads
/// use fs/merge.h's SpillRunSource, which streams.)
Result<std::vector<KeyValue>> ReadSpillRun(const SpillRun& run);

/// Best-effort deletion of a run file (lineage invalidation, discards).
void RemoveSpillRun(const SpillRun& run);

/// Lazily-created process-local directory for spill files that have no
/// natural owner directory (serial/thread runner tasks, dataset row
/// spills).  Removed at process exit.
Result<std::string> SpillRoot();

/// Create a fresh subdirectory of SpillRoot() for one task execution's run
/// files.  Each call returns a distinct directory (monotonic suffix), so a
/// re-executed task never overwrites run files a stale bucket still
/// references.
Result<std::string> NewSpillDir(const std::string& label);

}  // namespace mrs
