#include "fs/spill.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/bytes.h"
#include "fs/bucket.h"
#include "fs/file_io.h"
#include "http/message.h"
#include "obs/metrics.h"
#include "ser/record.h"

namespace mrs {

namespace {

obs::Counter* RunsWritten() {
  static obs::Counter* c =
      obs::Registry::Instance().GetCounter("mrs.spill.runs_written");
  return c;
}

obs::Counter* BytesSpilled() {
  static obs::Counter* c =
      obs::Registry::Instance().GetCounter("mrs.spill.bytes_spilled");
  return c;
}

obs::Counter* RunsRead() {
  static obs::Counter* c =
      obs::Registry::Instance().GetCounter("mrs.spill.runs_read");
  return c;
}

}  // namespace

void MemoryBudget::Charge(int64_t bytes) {
  if (bytes <= 0) return;
  int64_t now = usage_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t hw = high_water_.load(std::memory_order_relaxed);
  while (now > hw && !high_water_.compare_exchange_weak(
                         hw, now, std::memory_order_relaxed)) {
  }
  if (is_process_) {
    static obs::Gauge* usage =
        obs::Registry::Instance().GetGauge("mrs.spill.budget_usage");
    static obs::Gauge* high =
        obs::Registry::Instance().GetGauge("mrs.spill.budget_high_water");
    usage->Set(static_cast<double>(now));
    high->Set(static_cast<double>(high_water_.load(std::memory_order_relaxed)));
  }
}

void MemoryBudget::Release(int64_t bytes) {
  if (bytes <= 0) return;
  int64_t now = usage_.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
  if (is_process_) {
    static obs::Gauge* usage =
        obs::Registry::Instance().GetGauge("mrs.spill.budget_usage");
    usage->Set(static_cast<double>(now));
  }
}

void MemoryBudget::ResetForTest() {
  usage_.store(0, std::memory_order_relaxed);
  high_water_.store(0, std::memory_order_relaxed);
}

MemoryBudget& MemoryBudget::Process() {
  static MemoryBudget* budget = [] {
    auto* b = new MemoryBudget();
    b->is_process_ = true;
    if (const char* env = std::getenv("MRS_MEMORY_BUDGET")) {
      Result<int64_t> parsed = ParseByteSize(env);
      if (parsed.ok()) b->set_limit(*parsed);
    }
    return b;
  }();
  return *budget;
}

Result<int64_t> ParseByteSize(const std::string& text) {
  if (text.empty()) return int64_t{0};
  size_t i = 0;
  bool neg = false;
  if (text[0] == '-') {
    neg = true;
    i = 1;
  }
  int64_t v = 0;
  size_t digits = 0;
  for (; i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]));
       ++i, ++digits) {
    v = v * 10 + (text[i] - '0');
  }
  if (digits == 0) {
    return InvalidArgumentError("invalid byte size: '" + text + "'");
  }
  int64_t mult = 1;
  if (i < text.size()) {
    switch (std::tolower(static_cast<unsigned char>(text[i]))) {
      case 'k': mult = int64_t{1} << 10; ++i; break;
      case 'm': mult = int64_t{1} << 20; ++i; break;
      case 'g': mult = int64_t{1} << 30; ++i; break;
      default:
        return InvalidArgumentError("invalid byte-size suffix in '" + text +
                                    "'");
    }
    // Optional trailing B / iB ("64MB", "64MiB").
    if (i < text.size() &&
        std::tolower(static_cast<unsigned char>(text[i])) == 'i') {
      ++i;
    }
    if (i < text.size() &&
        std::tolower(static_cast<unsigned char>(text[i])) == 'b') {
      ++i;
    }
  }
  if (i != text.size()) {
    return InvalidArgumentError("invalid byte-size suffix in '" + text + "'");
  }
  return neg ? -v * mult : v * mult;
}

Result<SpillRun> WriteEncodedSpillRun(const std::string& path,
                                      const std::string& id,
                                      std::string_view payload,
                                      const std::string& checksum,
                                      bool sorted) {
  BucketFrame frame;
  frame.id = id;
  frame.checksum = checksum;
  frame.data = std::string(payload);
  MRS_RETURN_IF_ERROR(WriteFileAtomic(path, EncodeBucketFrames({frame})));
  SpillRun run;
  run.path = path;
  run.id = id;
  run.checksum = checksum;
  run.bytes = payload.size();
  run.sorted = sorted;
  // Record count from the payload header ("mrsb1\n" magic + varint), so
  // callers staging already-encoded frames keep meaningful metrics.
  if (payload.size() > kBinaryRecordMagic.size()) {
    ByteReader r(payload.substr(kBinaryRecordMagic.size()));
    Result<uint64_t> n = r.GetVarint();
    if (n.ok()) run.records = *n;
  }
  RunsWritten()->Inc();
  BytesSpilled()->Inc(static_cast<int64_t>(payload.size()));
  return run;
}

Result<SpillRun> WriteSpillRun(const std::string& path, const std::string& id,
                               const std::vector<KeyValue>& records,
                               bool sorted) {
  std::string payload = EncodeBinaryRecords(records);
  MRS_ASSIGN_OR_RETURN(
      SpillRun run,
      WriteEncodedSpillRun(path, id, payload, ContentChecksum(payload),
                           sorted));
  run.records = records.size();
  return run;
}

Result<std::vector<KeyValue>> ReadSpillRun(const SpillRun& run) {
  MRS_ASSIGN_OR_RETURN(std::string raw, ReadFileToString(run.path));
  Result<std::vector<BucketFrame>> frames = DecodeBucketFrames(raw);
  if (!frames.ok()) {
    return DataLossError("spill run " + run.path + ": " +
                         frames.status().message());
  }
  if (frames->size() != 1) {
    return DataLossError("spill run " + run.path + ": expected 1 frame, got " +
                         std::to_string(frames->size()));
  }
  BucketFrame& frame = (*frames)[0];
  if (!run.checksum.empty() && frame.checksum != run.checksum) {
    return DataLossError("spill run " + run.path +
                         ": frame checksum does not match run metadata "
                         "(wrong or swapped file)");
  }
  Result<std::vector<KeyValue>> records = DecodeBinaryRecords(frame.data);
  if (!records.ok()) {
    return DataLossError("spill run " + run.path + ": " +
                         records.status().message());
  }
  RunsRead()->Inc();
  return records;
}

void RemoveSpillRun(const SpillRun& run) {
  if (!run.path.empty()) std::remove(run.path.c_str());
}

Result<std::string> SpillRoot() {
  static std::mutex mu;
  static std::string root;      // guarded by mu
  static Status root_status;    // guarded by mu
  std::lock_guard<std::mutex> lock(mu);
  if (root.empty() && root_status.ok()) {
    Result<std::string> made = MakeTempDir("mrs_spill_");
    if (made.ok()) {
      root = *made;
      std::atexit([] { RemoveTree(root); });
    } else {
      root_status = made.status();
    }
  }
  if (!root_status.ok()) return root_status;
  return root;
}

Result<std::string> NewSpillDir(const std::string& label) {
  MRS_ASSIGN_OR_RETURN(std::string root, SpillRoot());
  static std::atomic<uint64_t> seq{0};
  std::string dir = JoinPath(
      root, label + "_" + std::to_string(seq.fetch_add(1)));
  MRS_RETURN_IF_ERROR(EnsureDir(dir));
  return dir;
}

}  // namespace mrs
