// Buckets: the unit of intermediate data in Mrs.
//
// Each task writes its output partitioned into buckets, one per destination
// split.  A bucket either stays in memory (serial runs, or the
// direct-communication path where "small short-lived files ... stay in the
// kernel's filesystem buffer"), is persisted to a local file
// (mock-parallel and fault-tolerant modes), or is fetched by URL from the
// slave that produced it (the writer "sends the master the corresponding
// URL, which is used for any future reads").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "fs/spill.h"
#include "ser/record.h"
#include "ser/value.h"

namespace mrs {

/// A named container of KeyValue records addressed by (source, split).
class Bucket {
 public:
  Bucket() = default;
  Bucket(int source, int split) : source_(source), split_(split) {}

  int source() const { return source_; }
  int split() const { return split_; }

  /// URL of the persisted form, empty while memory-only.  Schemes:
  /// "file:///abs/path" and "http://host:port/path".
  const std::string& url() const { return url_; }
  void set_url(std::string url) { url_ = std::move(url); }

  bool loaded() const { return loaded_; }
  const std::vector<KeyValue>& records() const { return records_; }
  std::vector<KeyValue>* mutable_records() { return &records_; }

  void Append(KeyValue kv) { records_.push_back(std::move(kv)); }
  void Append(Value key, Value value) {
    records_.push_back(KeyValue{std::move(key), std::move(value)});
  }

  /// Mark in-memory contents as authoritative (constructors of source data).
  void MarkLoaded() { loaded_ = true; }

  /// Append another bucket's in-memory records, leaving the donor empty.
  /// Used to assemble one task's output from morsel partials in morsel
  /// order; the donor must not be spilled (assembly is in-memory only).
  void Absorb(Bucket&& other);

  /// Drop in-memory records (keeps url and spill runs) to bound memory on
  /// large runs.
  void Evict() {
    records_.clear();
    records_.shrink_to_fit();
    loaded_ = false;
  }

  /// Persist records to `path` in binary format and set a file:// url.
  Status PersistToFile(const std::string& path);

  // ---- Out-of-core state (fs/spill.h) ---------------------------------
  //
  // Under memory pressure a bucket's records move to disk as spill runs.
  // Invariant after a task completes: a spilled bucket holds runs only
  // (records_ empty, loaded_ false) — the tail is always flushed.  While a
  // task is still producing, records_ may hold a not-yet-spilled tail;
  // EnsureLoaded handles both.

  bool spilled() const { return !spill_runs_.empty(); }
  const std::vector<SpillRun>& spill_runs() const { return spill_runs_; }
  void AddSpillRun(SpillRun run) { spill_runs_.push_back(std::move(run)); }

  /// Move current in-memory records to disk as one spill run.  `sorted`
  /// orders the run by (key, value) before writing (shuffle data: multiset
  /// semantics, merge-readable); otherwise the run preserves emit order
  /// (final output: FIFO).  Records are cleared on success.
  Status SpillToRun(const std::string& path, const std::string& id,
                    bool sorted);

  /// Estimated in-memory footprint of records_ (budget accounting).
  size_t ApproxMemoryBytes() const;

  /// Ensure records are in memory, fetching by url if needed.
  /// `http_fetch` resolves http:// urls (injected to avoid a dependency
  /// cycle and to allow fault injection in tests); file:// urls are read
  /// directly.  A payload that fails to decode is reported as kDataLoss
  /// (truncated transfer) so callers can retry the fetch.
  Status EnsureLoaded(
      const std::function<Result<std::string>(const std::string&)>& http_fetch);

 private:
  Status LoadFromRuns();

  int source_ = 0;
  int split_ = 0;
  std::string url_;
  bool loaded_ = false;
  std::vector<KeyValue> records_;
  std::vector<SpillRun> spill_runs_;
};

/// Deterministic relative path for a bucket within a dataset directory.
std::string BucketFileName(std::string_view dataset_id, int source, int split);

// ---- Batched binary bucket transfer ("mrsk1") -------------------------
//
// A reduce task pulling many splits from one peer fetches them in a single
// round trip: GET /bucket?ids=<id>,<id>,... returns every requested bucket
// body in one length-prefixed binary payload.  Negotiated via the
// X-Mrs-Format header (see http/message.h); a peer that predates the
// format 404s the bare "/bucket" path and the client falls back to one GET
// per bucket.

/// One bucket body in a batched transfer.  `checksum` is
/// ContentChecksum(data), computed once when the bucket was published, so
/// the integrity guard travels inside the frame (no whole-body re-hash).
struct BucketFrame {
  std::string id;        // "<dataset>/<source>/<split>"
  std::string checksum;  // ContentChecksum(data)
  std::string data;      // encoded binary records
};

/// X-Mrs-Format token for batched bucket frames.
inline constexpr std::string_view kBucketFramesFormat = "mrsk1";

/// Serialize frames: magic "mrsk1", varint count, then per frame the
/// length-prefixed id, checksum, and data.
std::string EncodeBucketFrames(const std::vector<BucketFrame>& frames);

/// Parse and verify an encoded frame set.  Any truncation, bad magic, or
/// per-frame checksum mismatch is kDataLoss (retryable — the caller
/// refetches instead of decoding a corrupt body).
Result<std::vector<BucketFrame>> DecodeBucketFrames(std::string_view body);

/// Decode a bucket body that is either a plain record stream or — when the
/// producer served a spilled bucket — an mrsk1 frame set whose frames
/// concatenate in order (auto-detected by magic).  Decode failures are
/// kDataLoss.
Result<std::vector<KeyValue>> DecodeBucketBody(std::string_view body);

}  // namespace mrs
