#include "fs/file_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mrs {

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return NotFoundError("no such file: " + path);
    return IoErrorFromErrno("open " + path, errno);
  }
  std::string out;
  char buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return IoErrorFromErrno("read " + path, err);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

namespace {
bool (*g_write_atomic_fault_hook)(const char* step) = nullptr;

/// True when the durability step should proceed; an injected fault makes
/// the step fail exactly where a crash/IO error would.
bool AtomicStepOk(const char* step) {
  return g_write_atomic_fault_hook == nullptr || g_write_atomic_fault_hook(step);
}
}  // namespace

void SetWriteFileAtomicFaultHook(bool (*hook)(const char* step)) {
  g_write_atomic_fault_hook = hook;
}

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  std::string tmp = path + ".tmp.XXXXXX";
  int fd = ::mkstemp(tmp.data());
  if (fd < 0) return IoErrorFromErrno("mkstemp for " + path, errno);
  size_t written = 0;
  while (written < content.size()) {
    ssize_t n = ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return IoErrorFromErrno("write " + tmp, err);
    }
    written += static_cast<size_t>(n);
  }
  // Flush the temp file's bytes to stable storage *before* rename makes
  // them reachable under `path`: without this, a crash shortly after the
  // rename can leave a zero-length or partial file at the final name —
  // the one outcome "atomic" write exists to prevent.
  int err = 0;
  if (!AtomicStepOk("fsync")) {
    err = EIO;
  } else if (::fsync(fd) < 0) {
    err = errno;
  }
  if (err != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return IoErrorFromErrno("fsync " + tmp, err);
  }
  if (::close(fd) < 0) {
    ::unlink(tmp.c_str());
    return IoErrorFromErrno("close " + tmp, errno);
  }
  if (!AtomicStepOk("rename")) {
    ::unlink(tmp.c_str());
    return IoErrorFromErrno("rename to " + path, EIO);
  }
  if (::rename(tmp.c_str(), path.c_str()) < 0) {
    int err2 = errno;
    ::unlink(tmp.c_str());
    return IoErrorFromErrno("rename to " + path, err2);
  }
  // Persist the rename itself: the directory entry lives in the parent
  // directory's data, which has its own cache to flush.
  std::string dir;
  if (size_t slash = path.find_last_of('/'); slash == std::string::npos) {
    dir = ".";
  } else if (slash == 0) {
    dir = "/";
  } else {
    dir = path.substr(0, slash);
  }
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return IoErrorFromErrno("open dir " + dir, errno);
  err = 0;
  if (!AtomicStepOk("dirsync")) {
    err = EIO;
  } else if (::fsync(dfd) < 0) {
    err = errno;
  }
  ::close(dfd);
  if (err != 0) return IoErrorFromErrno("fsync dir " + dir, err);
  return Status::Ok();
}

Status AppendToFile(const std::string& path, std::string_view content) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return IoErrorFromErrno("open(append) " + path, errno);
  size_t written = 0;
  while (written < content.size()) {
    ssize_t n = ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      int err = errno;
      ::close(fd);
      return IoErrorFromErrno("append " + path, err);
    }
    written += static_cast<size_t>(n);
  }
  ::close(fd);
  return Status::Ok();
}

Status EnsureDir(const std::string& path) {
  if (path.empty()) return InvalidArgumentError("empty directory path");
  std::string partial;
  size_t i = 0;
  if (path[0] == '/') partial = "/";
  while (i < path.size()) {
    size_t next = path.find('/', i);
    std::string component = (next == std::string::npos)
                                ? path.substr(i)
                                : path.substr(i, next - i);
    if (!component.empty()) {
      if (!partial.empty() && partial.back() != '/') partial += '/';
      partial += component;
      if (::mkdir(partial.c_str(), 0755) < 0 && errno != EEXIST) {
        return IoErrorFromErrno("mkdir " + partial, errno);
      }
    }
    if (next == std::string::npos) break;
    i = next + 1;
  }
  return Status::Ok();
}

void RemoveTree(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    ::unlink(path.c_str());
    return;
  }
  while (dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::string child = JoinPath(path, name);
    struct stat st{};
    if (::lstat(child.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      RemoveTree(child);
    } else {
      ::unlink(child.c_str());
    }
  }
  ::closedir(dir);
  ::rmdir(path.c_str());
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

bool IsDirectory(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) < 0) {
    return IoErrorFromErrno("stat " + path, errno);
  }
  return static_cast<uint64_t>(st.st_size);
}

namespace {
Status ListFilesInto(const std::string& root, std::vector<std::string>* out) {
  DIR* dir = ::opendir(root.c_str());
  if (dir == nullptr) return IoErrorFromErrno("opendir " + root, errno);
  std::vector<std::string> subdirs;
  while (dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::string child = JoinPath(root, name);
    struct stat st{};
    if (::lstat(child.c_str(), &st) < 0) continue;
    if (S_ISDIR(st.st_mode)) {
      subdirs.push_back(child);
    } else if (S_ISREG(st.st_mode)) {
      out->push_back(child);
    }
  }
  ::closedir(dir);
  for (const std::string& sub : subdirs) {
    MRS_RETURN_IF_ERROR(ListFilesInto(sub, out));
  }
  return Status::Ok();
}
}  // namespace

Result<std::vector<std::string>> ListFilesRecursive(const std::string& root) {
  std::vector<std::string> out;
  MRS_RETURN_IF_ERROR(ListFilesInto(root, &out));
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::string> MakeTempDir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = JoinPath(base != nullptr ? base : "/tmp", prefix + "XXXXXX");
  if (::mkdtemp(tmpl.data()) == nullptr) {
    return IoErrorFromErrno("mkdtemp " + tmpl, errno);
  }
  return tmpl;
}

std::string JoinPath(std::string_view a, std::string_view b) {
  if (a.empty()) return std::string(b);
  if (b.empty()) return std::string(a);
  std::string out(a);
  if (out.back() != '/') out += '/';
  out += b;
  return out;
}

}  // namespace mrs
