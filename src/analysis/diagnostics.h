// mrs::analysis diagnostics: spanned, stable-coded findings.
//
// Every checker in this library (semantic, determinism, bytecode verifier
// bridge) reports through one Diagnostic shape so the mrs_lint CLI, the
// Job::Submit rejection path, and the golden-file tests all consume the
// same thing.  Codes are stable API: tests and downstream tooling match on
// them, so a code is never renumbered or reused (see DESIGN.md for the
// full table).
//
//   MPY0xx  parse / compile failures
//   MPY1xx  name & call errors (undefined vars, arity, duplicates)
//   MPY2xx  warnings (unreachable code, possibly-unassigned)
//   MPY3xx  kernel-profile signature / emit-shape errors
//   MPY4xx  determinism lint
//   MBC5xx  bytecode verifier (interp/verifier.h)
#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace mrs {
namespace analysis {

enum class Severity { kWarning, kError };

struct SourceSpan {
  int line = 0;  // 1-based; 0 = unknown
  int col = 0;   // 1-based; 0 = unknown
};

struct Diagnostic {
  std::string code;  // e.g. "MPY102"
  Severity severity = Severity::kError;
  SourceSpan span;
  std::string message;
};

bool HasErrors(const std::vector<Diagnostic>& diags);
int CountErrors(const std::vector<Diagnostic>& diags);

/// "file:line:col: error[MPY101]: message" (omits :col when unknown).
std::string FormatDiagnostic(const Diagnostic& d, const std::string& file);

/// One JSON object per diagnostic:
/// {"file":..,"line":..,"col":..,"severity":..,"code":..,"message":..}
std::string DiagnosticJson(const Diagnostic& d, const std::string& file);

/// The submit-time rejection Status: InvalidArgument whose message lists
/// every error (and the error count), formatted as above.  Ok if no
/// errors (warnings alone never reject).
Status DiagnosticsToStatus(const std::vector<Diagnostic>& diags,
                           const std::string& file);

}  // namespace analysis
}  // namespace mrs
