// MiniPy semantic checker and determinism lint.
//
// CheckSemantics runs a def-use dataflow over the AST *before* compilation
// so a broken kernel is rejected at job-submission time with a spanned
// diagnostic instead of surfacing mid-job as a failed task attempt on some
// slave.  It distinguishes definitely-assigned from possibly-assigned
// names (intersection vs union over branches), so
//
//   if cond:
//       x = 1
//   use(x)
//
// is a warning (MPY202, possibly unassigned) while using a name no path
// assigns is an error (MPY102) — mirroring how Python's UnboundLocalError
// only fires on the bad path.
//
// CheckDeterminism flags constructs that would silently break the
// cross-runner equivalence guarantee (identical output on serial /
// mockparallel / thread / masterslave): wall-clock reads and ambient RNG
// are errors (the framework provides seeded per-task streams instead);
// print inside a kernel function is a warning (output interleaving is
// scheduler-dependent).  MiniPy has no dict/set types, so iteration over
// unordered containers — the third classic nondeterminism source — is
// impossible by construction.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "interp/ast.h"

namespace mrs {
namespace analysis {

struct SemanticOptions {
  /// Host functions callable like builtins (e.g. "emit" for kernels).
  std::set<std::string> extra_functions;
  /// Validate the MapReduce kernel contract against core/program.h
  /// expectations: `map(key, value)` and `reduce(key, values)` must exist
  /// with those arities (optional `combine(key, values)`), map emits
  /// pairs (emit(k, v)), reduce/combine emit single values (emit(v)).
  bool kernel_profile = false;
};

std::vector<Diagnostic> CheckSemantics(const minipy::Module& module,
                                       const SemanticOptions& options = {});

std::vector<Diagnostic> CheckDeterminism(const minipy::Module& module);

}  // namespace analysis
}  // namespace mrs
