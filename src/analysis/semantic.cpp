#include "analysis/semantic.h"

#include <algorithm>
#include <climits>
#include <map>
#include <utility>

#include "interp/pyvalue.h"

namespace mrs {
namespace analysis {
namespace {

using minipy::Expr;
using minipy::ExprPtr;
using minipy::Module;
using minipy::Stmt;
using minipy::StmtPtr;

struct BuiltinArity {
  int min;
  int max;
};

// Must stay in sync with CallBuiltin in interp/pyvalue.cpp.
const std::map<std::string, BuiltinArity>& BuiltinArities() {
  static const std::map<std::string, BuiltinArity> table = {
      {"len", {1, 1}},       {"abs", {1, 1}},      {"int", {1, 1}},
      {"float", {1, 1}},     {"str", {1, 1}},      {"bool", {1, 1}},
      {"min", {1, INT_MAX}}, {"max", {1, INT_MAX}}, {"range", {1, 3}},
      {"append", {2, 2}},    {"print", {0, INT_MAX}},
  };
  return table;
}

std::string DescribeArity(const BuiltinArity& ar) {
  if (ar.min == ar.max) return std::to_string(ar.min);
  if (ar.max == INT_MAX) return "at least " + std::to_string(ar.min);
  return std::to_string(ar.min) + " to " + std::to_string(ar.max);
}

/// Names assigned anywhere in `body`, not descending into nested defs.
/// Matches the compiler's notion of a scope's local set: simple-name
/// assignment, augmented assignment, and for-loop targets bind; subscript
/// stores mutate an existing binding and do not.
void CollectAssigned(const std::vector<StmtPtr>& body,
                     std::set<std::string>* out) {
  for (const StmtPtr& s : body) {
    switch (s->kind) {
      case Stmt::Kind::kAssign:
        if (s->index_base == nullptr) out->insert(s->target);
        break;
      case Stmt::Kind::kAugAssign:
        out->insert(s->target);
        break;
      case Stmt::Kind::kFor:
        out->insert(s->target);
        CollectAssigned(s->body, out);
        break;
      case Stmt::Kind::kWhile:
        CollectAssigned(s->body, out);
        break;
      case Stmt::Kind::kIf:
        for (const auto& arm : s->arm_bodies) CollectAssigned(arm, out);
        CollectAssigned(s->else_body, out);
        break;
      default:
        break;
    }
  }
}

class Checker {
 public:
  Checker(const Module& module, const SemanticOptions& opts)
      : module_(module), opts_(opts) {}

  std::vector<Diagnostic> Run() {
    CollectFunctions();
    CollectAssigned(module_.body, &module_globals_);
    if (opts_.kernel_profile) CheckKernelProfile();
    AnalyzeTopLevel();
    for (const StmtPtr& s : module_.body) {
      if (s->kind == Stmt::Kind::kDef) AnalyzeFunction(*s);
    }
    return std::move(diags_);
  }

 private:
  /// Dataflow state at a program point.  `definite` holds names assigned
  /// on every path reaching here, `possible` names assigned on at least
  /// one path; `terminated` is set once return/break/continue makes the
  /// rest of the block unreachable (`term_why` names the terminator for
  /// the MPY201 message).
  struct Flow {
    std::set<std::string> definite;
    std::set<std::string> possible;
    bool terminated = false;
    const char* term_why = "return";
  };

  enum class FnKind { kTopLevel, kMap, kReduceLike, kOther };

  struct FnInfo {
    int arity;
    int line;
    int col;
  };

  void Error(const char* code, int line, int col, std::string msg) {
    diags_.push_back(
        {code, Severity::kError, {line, col}, std::move(msg)});
  }
  void Warn(const char* code, int line, int col, std::string msg) {
    diags_.push_back(
        {code, Severity::kWarning, {line, col}, std::move(msg)});
  }

  static void Assign(const std::string& name, Flow& flow) {
    flow.definite.insert(name);
    flow.possible.insert(name);
  }

  void CollectFunctions() {
    for (const StmtPtr& s : module_.body) {
      if (s->kind != Stmt::Kind::kDef) continue;
      auto [it, inserted] = functions_.emplace(
          s->target,
          FnInfo{static_cast<int>(s->params.size()), s->line, s->col});
      if (!inserted) {
        Error("MPY106", s->line, s->col,
              "duplicate definition of " + s->target +
                  "() (first defined at line " +
                  std::to_string(it->second.line) + ")");
      }
    }
  }

  void CheckKernelProfile() {
    auto check = [&](const std::string& name, bool required,
                     const char* signature) {
      auto it = functions_.find(name);
      if (it == functions_.end()) {
        if (required) {
          Error("MPY301", 1, 0,
                std::string("kernel must define ") + signature);
        }
        return;
      }
      if (it->second.arity != 2) {
        Error("MPY302", it->second.line, it->second.col,
              name + "() must take exactly 2 parameters as in " + signature +
                  ", got " + std::to_string(it->second.arity));
      }
    };
    check("map", true, "map(key, value)");
    check("reduce", true, "reduce(key, values)");
    check("combine", false, "combine(key, values)");
  }

  void AnalyzeTopLevel() {
    top_level_ = true;
    fn_kind_ = FnKind::kTopLevel;
    current_fn_ = "<module>";
    Flow flow;
    // Defs don't execute code at module load; skip them in the flow walk
    // (their bodies are analyzed separately with their own scope).
    for (const StmtPtr& s : module_.body) {
      if (s->kind == Stmt::Kind::kDef) continue;
      AnalyzeStmt(*s, flow);
    }
  }

  void AnalyzeFunction(const Stmt& def) {
    top_level_ = false;
    current_fn_ = def.target;
    if (opts_.kernel_profile && def.target == "map") {
      fn_kind_ = FnKind::kMap;
    } else if (opts_.kernel_profile &&
               (def.target == "reduce" || def.target == "combine")) {
      fn_kind_ = FnKind::kReduceLike;
    } else {
      fn_kind_ = FnKind::kOther;
    }

    locals_.clear();
    for (const std::string& p : def.params) {
      if (!locals_.insert(p).second) {
        Error("MPY105", def.line, def.col,
              "duplicate parameter '" + p + "' in def " + def.target + "()");
      }
    }
    CollectAssigned(def.body, &locals_);

    Flow flow;
    for (const std::string& p : def.params) Assign(p, flow);
    AnalyzeBlock(def.body, flow);
  }

  void AnalyzeBlock(const std::vector<StmtPtr>& body, Flow& flow) {
    bool reported = false;
    for (const StmtPtr& s : body) {
      if (flow.terminated && !reported) {
        Warn("MPY201", s->line, s->col,
             std::string("unreachable code after ") + flow.term_why);
        reported = true;
        // Clear so nested blocks of the dead code don't each re-report;
        // restored below because the block's reachable part did terminate.
        flow.terminated = false;
      }
      AnalyzeStmt(*s, flow);
    }
    if (reported) flow.terminated = true;
  }

  void AnalyzeStmt(const Stmt& s, Flow& flow) {
    switch (s.kind) {
      case Stmt::Kind::kExpr:
        CheckExpr(*s.expr, flow);
        break;
      case Stmt::Kind::kAssign:
        if (s.index_base != nullptr) {
          CheckExpr(*s.index_base, flow);
          CheckExpr(*s.index_expr, flow);
          CheckExpr(*s.expr, flow);
        } else {
          CheckExpr(*s.expr, flow);
          Assign(s.target, flow);
        }
        break;
      case Stmt::Kind::kAugAssign:
        // `x += e` reads x first.
        CheckNameUse(s.target, s.line, s.col, flow);
        CheckExpr(*s.expr, flow);
        Assign(s.target, flow);
        break;
      case Stmt::Kind::kReturn:
        if (top_level_) {
          Error("MPY002", s.line, s.col, "return outside a function");
        }
        if (s.expr) CheckExpr(*s.expr, flow);
        flow.terminated = true;
        flow.term_why = "return";
        break;
      case Stmt::Kind::kIf:
        AnalyzeIf(s, flow);
        break;
      case Stmt::Kind::kWhile: {
        CheckExpr(*s.cond, flow);
        // The body is analyzed against the pre-loop state: the first
        // iteration is exactly what it sees, and names a later iteration
        // would inherit are already in `possible` via the union below.
        Flow body = flow;
        body.terminated = false;
        AnalyzeBlock(s.body, body);
        // Zero iterations are possible, so nothing new becomes definite.
        flow.possible.insert(body.possible.begin(), body.possible.end());
        break;
      }
      case Stmt::Kind::kFor: {
        if (top_level_) {
          Error("MPY002", s.line, s.col,
                "for loops at module level are not supported");
        }
        CheckExpr(*s.cond, flow);
        Flow body = flow;
        body.terminated = false;
        Assign(s.target, body);
        AnalyzeBlock(s.body, body);
        flow.possible.insert(body.possible.begin(), body.possible.end());
        flow.possible.insert(s.target);
        break;
      }
      case Stmt::Kind::kBreak:
        flow.terminated = true;
        flow.term_why = "break";
        break;
      case Stmt::Kind::kContinue:
        flow.terminated = true;
        flow.term_why = "continue";
        break;
      case Stmt::Kind::kPass:
        break;
      case Stmt::Kind::kDef:
        if (!top_level_) {
          Error("MPY002", s.line, s.col, "nested def is not supported");
        }
        break;
    }
  }

  void AnalyzeIf(const Stmt& s, Flow& flow) {
    std::vector<Flow> outs;
    for (size_t i = 0; i < s.arm_conds.size(); ++i) {
      // All arm conditions evaluate against the pre-state: conditions are
      // side-effect-free expressions in MiniPy (no assignment expressions).
      CheckExpr(*s.arm_conds[i], flow);
      Flow arm = flow;
      arm.terminated = false;
      AnalyzeBlock(s.arm_bodies[i], arm);
      outs.push_back(std::move(arm));
    }
    if (!s.else_body.empty()) {
      Flow els = flow;
      els.terminated = false;
      AnalyzeBlock(s.else_body, els);
      outs.push_back(std::move(els));
    } else {
      Flow fall = flow;
      fall.terminated = false;
      outs.push_back(std::move(fall));  // condition-false fallthrough path
    }

    Flow joined;
    joined.terminated = true;
    joined.term_why = outs.back().term_why;
    bool first_live = true;
    for (const Flow& o : outs) {
      joined.possible.insert(o.possible.begin(), o.possible.end());
      if (o.terminated) {
        joined.term_why = o.term_why;
        continue;
      }
      joined.terminated = false;
      if (first_live) {
        joined.definite = o.definite;
        first_live = false;
      } else {
        std::set<std::string> inter;
        std::set_intersection(joined.definite.begin(), joined.definite.end(),
                              o.definite.begin(), o.definite.end(),
                              std::inserter(inter, inter.begin()));
        joined.definite = std::move(inter);
      }
    }
    if (joined.terminated) {
      // Every path leaves the block; anything after is unreachable, so
      // use the union as `definite` to avoid cascading MPY102s there.
      joined.definite = joined.possible;
    }
    // Preserve the context of an already-dead enclosing block.
    joined.terminated = joined.terminated || flow.terminated;
    flow = std::move(joined);
  }

  void CheckExpr(const Expr& e, Flow& flow) {
    switch (e.kind) {
      case Expr::Kind::kName:
        CheckNameUse(e.name, e.line, e.col, flow);
        break;
      case Expr::Kind::kCall:
        CheckCall(e, flow);
        break;
      case Expr::Kind::kBinary:
      case Expr::Kind::kIndex:
        CheckExpr(*e.lhs, flow);
        CheckExpr(*e.rhs, flow);
        break;
      case Expr::Kind::kUnary:
        CheckExpr(*e.lhs, flow);
        break;
      case Expr::Kind::kListLit:
        for (const ExprPtr& item : e.args) CheckExpr(*item, flow);
        break;
      default:
        break;  // literals
    }
  }

  void CheckNameUse(const std::string& name, int line, int col,
                    const Flow& flow) {
    const bool in_scope = top_level_ ? module_globals_.count(name) > 0
                                     : locals_.count(name) > 0;
    if (in_scope) {
      if (flow.possible.count(name) > 0) {
        if (flow.definite.count(name) == 0) {
          Warn("MPY202", line, col,
               "'" + name +
                   "' may be unassigned here (assigned on some paths only)");
        }
        return;
      }
      Error("MPY102", line, col,
            "'" + name + "' is used before assignment in " + current_fn_);
      return;
    }
    if (!top_level_ && module_globals_.count(name) > 0) {
      // A module global: initialized when the module loaded, before any
      // kernel function runs.  Order within module init is not modeled.
      return;
    }
    if (functions_.count(name) > 0 || minipy::IsBuiltin(name) ||
        opts_.extra_functions.count(name) > 0) {
      Error("MPY108", line, col,
            "'" + name +
                "' is a function; functions are not first-class values "
                "in MiniPy");
      return;
    }
    Error("MPY101", line, col, "undefined name '" + name + "'");
  }

  void CheckCall(const Expr& call, Flow& flow) {
    for (const ExprPtr& a : call.args) CheckExpr(*a, flow);
    const std::string& name = call.name;
    const int argc = static_cast<int>(call.args.size());

    // Resolution order mirrors the compiler: user functions first, then
    // host functions / builtins.
    auto fit = functions_.find(name);
    if (fit != functions_.end()) {
      if (argc != fit->second.arity) {
        Error("MPY104", call.line, call.col,
              name + "() takes " + std::to_string(fit->second.arity) +
                  " argument(s), got " + std::to_string(argc));
      }
      return;
    }
    if (opts_.extra_functions.count(name) > 0) {
      if (name == "emit" && opts_.kernel_profile) CheckEmit(call);
      return;
    }
    auto bit = BuiltinArities().find(name);
    if (bit != BuiltinArities().end()) {
      const BuiltinArity& ar = bit->second;
      if (argc < ar.min || argc > ar.max) {
        Error("MPY107", call.line, call.col,
              name + "() expects " + DescribeArity(ar) +
                  " argument(s), got " + std::to_string(argc));
      }
      return;
    }
    Error("MPY103", call.line, call.col, "no function named '" + name + "'");
  }

  void CheckEmit(const Expr& call) {
    const int argc = static_cast<int>(call.args.size());
    switch (fn_kind_) {
      case FnKind::kTopLevel:
        Error("MPY304", call.line, call.col,
              "emit() at module level: emit is only valid inside kernel "
              "functions");
        return;
      case FnKind::kMap:
        if (argc != 2) {
          Error("MPY303", call.line, call.col,
                "map() emits key-value pairs: emit(key, value), got " +
                    std::to_string(argc) + " argument(s)");
        }
        return;
      case FnKind::kReduceLike:
        if (argc != 1) {
          Error("MPY303", call.line, call.col,
                current_fn_ + "() emits single values: emit(value), got " +
                    std::to_string(argc) + " argument(s)");
        }
        return;
      case FnKind::kOther:
        // Helpers may emit on behalf of map (pairs) or reduce (values).
        if (argc != 1 && argc != 2) {
          Error("MPY303", call.line, call.col,
                "emit() takes 1 argument in reduce/combine or 2 in map, "
                "got " + std::to_string(argc));
        }
        return;
    }
  }

  const Module& module_;
  const SemanticOptions& opts_;
  std::vector<Diagnostic> diags_;
  std::map<std::string, FnInfo> functions_;
  std::set<std::string> module_globals_;
  bool top_level_ = true;
  FnKind fn_kind_ = FnKind::kTopLevel;
  std::string current_fn_;
  std::set<std::string> locals_;
};

// --- Determinism lint -----------------------------------------------------

const std::set<std::string>& WallClockNames() {
  static const std::set<std::string> names = {
      "time", "clock", "now", "gettime", "time_ns", "perf_counter",
      "monotonic",
  };
  return names;
}

const std::set<std::string>& RngNames() {
  static const std::set<std::string> names = {
      "random",      "rand",    "randint", "randrange", "uniform",
      "shuffle",     "seed",    "getrandbits", "urandom",
  };
  return names;
}

class DeterminismChecker {
 public:
  explicit DeterminismChecker(const Module& module) : module_(module) {}

  std::vector<Diagnostic> Run() {
    // A user-defined function shadows the denylist: `def random():` is the
    // kernel author's own (checkable) code, not ambient nondeterminism.
    for (const StmtPtr& s : module_.body) {
      if (s->kind == Stmt::Kind::kDef) user_functions_.insert(s->target);
    }
    for (const StmtPtr& s : module_.body) {
      WalkStmt(*s, /*in_def=*/false);
    }
    return std::move(diags_);
  }

 private:
  void WalkStmt(const Stmt& s, bool in_def) {
    if (s.kind == Stmt::Kind::kDef) {
      for (const StmtPtr& b : s.body) WalkStmt(*b, /*in_def=*/true);
      return;
    }
    if (s.expr) WalkExpr(*s.expr, in_def);
    if (s.index_base) WalkExpr(*s.index_base, in_def);
    if (s.index_expr) WalkExpr(*s.index_expr, in_def);
    if (s.cond) WalkExpr(*s.cond, in_def);
    for (const ExprPtr& c : s.arm_conds) WalkExpr(*c, in_def);
    for (const auto& arm : s.arm_bodies) {
      for (const StmtPtr& b : arm) WalkStmt(*b, in_def);
    }
    for (const StmtPtr& b : s.body) WalkStmt(*b, in_def);
    for (const StmtPtr& b : s.else_body) WalkStmt(*b, in_def);
  }

  void WalkExpr(const Expr& e, bool in_def) {
    if (e.kind == Expr::Kind::kCall) {
      CheckCallName(e, in_def);
      for (const ExprPtr& a : e.args) WalkExpr(*a, in_def);
      return;
    }
    if (e.lhs) WalkExpr(*e.lhs, in_def);
    if (e.rhs) WalkExpr(*e.rhs, in_def);
    for (const ExprPtr& a : e.args) WalkExpr(*a, in_def);
  }

  void CheckCallName(const Expr& call, bool in_def) {
    const std::string& name = call.name;
    if (user_functions_.count(name) > 0) return;
    if (WallClockNames().count(name) > 0) {
      diags_.push_back(
          {"MPY401",
           Severity::kError,
           {call.line, call.col},
           name + "() reads the wall clock; kernels must be deterministic "
                  "— derive values from the task input instead"});
      return;
    }
    if (RngNames().count(name) > 0) {
      diags_.push_back(
          {"MPY402",
           Severity::kError,
           {call.line, call.col},
           name + "() draws ambient randomness; use a stream seeded from "
                  "the task key so every re-execution sees the same values"});
      return;
    }
    if (name == "print" && in_def) {
      diags_.push_back(
          {"MPY403",
           Severity::kWarning,
           {call.line, call.col},
           "print() in a kernel function: output interleaving depends on "
           "task scheduling"});
    }
  }

  const Module& module_;
  std::set<std::string> user_functions_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

std::vector<Diagnostic> CheckSemantics(const Module& module,
                                       const SemanticOptions& options) {
  return Checker(module, options).Run();
}

std::vector<Diagnostic> CheckDeterminism(const Module& module) {
  return DeterminismChecker(module).Run();
}

}  // namespace analysis
}  // namespace mrs
