// mrs::analysis — submit-time static analysis for MiniPy kernels.
//
// AnalyzeKernelSource is the one entry point everything shares: the
// mrs_lint CLI, Job::Submit (via MiniPyProgram::ValidateOperation), and
// the golden-file tests.  It runs the full pipeline
//
//   parse  →  semantic checks + determinism lint  →  compile  →
//   bytecode verification (interp/verifier.h)  →  type inference
//   (analysis/typeinfer.h)
//
// and returns every finding as a spanned, stable-coded Diagnostic plus —
// when nothing is an error — the compiled module with its `verified` bit
// set and its type-fact table attached, ready for Vm::LoadModule without
// re-verification (the VM still re-checks the facts before building its
// typed tier; see interp/typefacts.h).
//
// Counted in the process registry:
//   mrs.analysis.runs      analyses performed
//   mrs.analysis.rejects   analyses that found at least one error
//   mrs.analysis.errors    total error diagnostics
//   mrs.analysis.warnings  total warning diagnostics
//   mrs.analysis.seconds   (histogram) wall time per analysis
#pragma once

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/typeinfer.h"
#include "interp/bytecode.h"

namespace mrs {
namespace analysis {

struct AnalysisOptions {
  /// Enforce the MapReduce kernel contract (map/reduce signatures, emit
  /// shapes).  When set, "emit" is implicitly a host function.
  bool kernel_profile = true;
  /// Additional host-provided functions callable from the kernel.
  std::set<std::string> extra_functions;
  /// Run the determinism lint (MPY4xx).
  bool determinism_lint = true;
  /// Run type inference: attach a TypeFactTable to the module (enabling
  /// the VM's typed tier), report MPY5xx findings, and fill
  /// AnalysisResult::signatures.
  bool type_facts = true;
};

struct AnalysisResult {
  /// All findings, ordered by source position.
  std::vector<Diagnostic> diagnostics;
  /// Compiled + verified module; null whenever diagnostics contain an
  /// error (a rejected kernel never produces executable code).  Carries
  /// module->type_facts when inference produced a checkable table.
  std::shared_ptr<minipy::CompiledModule> module;
  /// Inferred per-function signatures (entry-guard parameter types and
  /// return type), in function order; empty when inference was disabled
  /// or produced no table.  Surfaced by `mrs_lint --json`.
  std::vector<InferredSignature> signatures;

  bool ok() const { return !HasErrors(diagnostics); }
};

AnalysisResult AnalyzeKernelSource(std::string_view source,
                                   const AnalysisOptions& options = {});

}  // namespace analysis
}  // namespace mrs
