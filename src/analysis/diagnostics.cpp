#include "analysis/diagnostics.h"

#include "obs/metrics.h"

namespace mrs {
namespace analysis {

bool HasErrors(const std::vector<Diagnostic>& diags) {
  return CountErrors(diags) > 0;
}

int CountErrors(const std::vector<Diagnostic>& diags) {
  int n = 0;
  for (const Diagnostic& d : diags) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::string FormatDiagnostic(const Diagnostic& d, const std::string& file) {
  std::string out = file.empty() ? "<source>" : file;
  out += ':';
  out += std::to_string(d.span.line);
  if (d.span.col > 0) {
    out += ':';
    out += std::to_string(d.span.col);
  }
  out += d.severity == Severity::kError ? ": error[" : ": warning[";
  out += d.code;
  out += "]: ";
  out += d.message;
  return out;
}

std::string DiagnosticJson(const Diagnostic& d, const std::string& file) {
  std::string out = "{\"file\":\"" + obs::JsonEscape(file) + "\"";
  out += ",\"line\":" + std::to_string(d.span.line);
  out += ",\"col\":" + std::to_string(d.span.col);
  out += std::string(",\"severity\":\"") +
         (d.severity == Severity::kError ? "error" : "warning") + "\"";
  out += ",\"code\":\"" + obs::JsonEscape(d.code) + "\"";
  out += ",\"message\":\"" + obs::JsonEscape(d.message) + "\"}";
  return out;
}

Status DiagnosticsToStatus(const std::vector<Diagnostic>& diags,
                           const std::string& file) {
  int errors = CountErrors(diags);
  if (errors == 0) return Status::Ok();
  std::string message =
      "kernel rejected by static analysis (" + std::to_string(errors) +
      (errors == 1 ? " error): " : " errors): ");
  bool first = true;
  for (const Diagnostic& d : diags) {
    if (d.severity != Severity::kError) continue;
    if (!first) message += "; ";
    first = false;
    message += FormatDiagnostic(d, file);
  }
  return InvalidArgumentError(message);
}

}  // namespace analysis
}  // namespace mrs
