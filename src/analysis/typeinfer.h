// Flow-sensitive type/shape inference for verified MiniPy bytecode.
//
// Abstract interpretation over the flat lattice of interp/typefacts.h,
// run to a fixpoint over each function's CFG (worklist, join at merges),
// with whole-module summary iteration for calls.  Three consumers:
//
//   1. The VM's typed tier: InferTypeFacts produces the TypeFactTable the
//      VM re-checks (CheckTypeFacts) and compiles unboxed code from.
//   2. mrs_lint / AnalyzeKernelSource: MPY5xx diagnostics (guaranteed
//      TypeErrors, int/float accumulator mixing) and inferred per-function
//      signatures for --json.
//   3. Tests: the table round-trips through Serialize/ParseTypeFacts.
//
// Guard strategy: a parameter's entry-guard type is the join of the
// argument types at every static MiniPy call site.  When that join is
// uninformative (no call sites — host-called functions — or conflicting
// sites), the guard *speculates* int: MiniPy kernels overwhelmingly take
// index/count parameters, and a wrong speculation is harmless — the
// runtime guard just fails and the call runs on the generic loop.
// Diagnostics, by contrast, are computed from a caller-agnostic pass
// (parameters typed ⊤) so speculation can never produce a false positive.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "interp/typefacts.h"

namespace mrs {
namespace analysis {

struct InferredSignature {
  std::string name;
  std::vector<minipy::ValueType> params;  // entry-guard types
  minipy::ValueType ret = minipy::ValueType::kTop;
  /// True when at least one parameter guard was speculated rather than
  /// derived from static call sites.
  bool speculative = false;
};

struct TypeInference {
  /// Null when the module is unverified or inference found the bytecode
  /// internally inconsistent (which a verified module never is).
  std::shared_ptr<const minipy::TypeFactTable> table;
  /// MPY501 (guaranteed-TypeError operation), MPY502 (builtin call that
  /// always fails), MPY503 (int/float accumulator mixing) — all warnings.
  std::vector<Diagnostic> diagnostics;
  /// One per module function, in function order.
  std::vector<InferredSignature> signatures;
};

TypeInference InferTypeFacts(const minipy::CompiledModule& module,
                             const std::set<std::string>& host_names);

}  // namespace analysis
}  // namespace mrs
