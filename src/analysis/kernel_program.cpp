#include "analysis/kernel_program.h"

#include <utility>
#include <vector>

#include "common/log.h"
#include "core/dataset.h"
#include "fs/file_io.h"
#include "interp/vm.h"
#include "obs/metrics.h"

namespace mrs {
namespace analysis {
namespace {

using minipy::PyList;
using minipy::PyValue;

PyValue ToPy(const Value& v) {
  switch (v.type()) {
    case Value::Type::kNone:
      return PyValue();
    case Value::Type::kInt:
      return PyValue(v.AsInt());
    case Value::Type::kDouble:
      return PyValue(v.AsDouble());
    case Value::Type::kString:
    case Value::Type::kBytes:
      return PyValue(v.AsString());
    case Value::Type::kList: {
      PyList items;
      items.reserve(v.AsList().size());
      for (const Value& item : v.AsList()) items.push_back(ToPy(item));
      return PyValue(std::move(items));
    }
  }
  return PyValue();
}

Value FromPy(const PyValue& v) {
  switch (v.type()) {
    case PyValue::Type::kNone:
      return Value();
    case PyValue::Type::kBool:
    case PyValue::Type::kInt:
      return Value(v.AsInt());
    case PyValue::Type::kFloat:
      return Value(v.AsFloat());
    case PyValue::Type::kString:
      return Value(v.AsString());
    case PyValue::Type::kList: {
      ValueList items;
      items.reserve(v.AsList().size());
      for (const PyValue& item : v.AsList()) items.push_back(FromPy(item));
      return Value(std::move(items));
    }
  }
  return Value();
}

obs::Counter* RuntimeErrors() {
  static obs::Counter* c =
      obs::Registry::Instance().GetCounter("mrs.analysis.kernel_runtime_errors");
  return c;
}

}  // namespace

/// Per-(thread, program) execution state.  The active emitter pointers are
/// only set for the duration of one Map/Reduce/Combine call on the owning
/// thread, so `emit` dispatches without any synchronization.
struct MiniPyProgram::KernelVm {
  const MiniPyProgram* owner = nullptr;
  std::shared_ptr<minipy::CompiledModule> module;
  minipy::Vm vm;
  bool load_failed = false;
  const Emitter* pair_emit = nullptr;
  const ValueEmitter* value_emit = nullptr;
};

MiniPyProgram::MiniPyProgram(std::string source, std::string name)
    : source_(std::move(source)), name_(std::move(name)) {
  AnalysisOptions options;
  options.kernel_profile = true;
  analysis_ = AnalyzeKernelSource(source_, options);
}

Result<std::unique_ptr<MiniPyProgram>> MiniPyProgram::FromFile(
    const std::string& path) {
  MRS_ASSIGN_OR_RETURN(std::string source, ReadFileToString(path));
  return std::make_unique<MiniPyProgram>(std::move(source), path);
}

bool MiniPyProgram::HasKernelCombine() const {
  return analysis_.module != nullptr &&
         analysis_.module->FunctionIndex("combine") >= 0;
}

Status MiniPyProgram::ValidateOperation(DataSetKind kind,
                                        const DataSetOptions& options) {
  if (!analysis_.ok()) {
    return DiagnosticsToStatus(analysis_.diagnostics, name_);
  }
  return MapReduce::ValidateOperation(kind, options);
}

MiniPyProgram::KernelVm* MiniPyProgram::VmForThisThread() const {
  if (analysis_.module == nullptr) return nullptr;
  // Entries hold their module alive, so an entry whose module pointer
  // matches ours is genuinely ours (a dead program's address could be
  // reused, but its still-referenced module's cannot).
  thread_local std::vector<std::unique_ptr<KernelVm>> cache;
  for (const auto& entry : cache) {
    if (entry->owner == this && entry->module == analysis_.module) {
      return entry->load_failed ? nullptr : entry.get();
    }
  }
  auto entry = std::make_unique<KernelVm>();
  KernelVm* kvm = entry.get();
  kvm->owner = this;
  kvm->module = analysis_.module;
  kvm->vm.RegisterHost("emit", [kvm](std::vector<PyValue>& args)
                                   -> Result<PyValue> {
    if (kvm->pair_emit != nullptr) {
      if (args.size() != 2) {
        return InvalidArgumentError("map emit() takes emit(key, value)");
      }
      (*kvm->pair_emit)(FromPy(args[0]), FromPy(args[1]));
      return PyValue();
    }
    if (kvm->value_emit != nullptr) {
      if (args.size() != 1) {
        return InvalidArgumentError("reduce emit() takes emit(value)");
      }
      (*kvm->value_emit)(FromPy(args[0]));
      return PyValue();
    }
    return FailedPreconditionError("emit() called outside an operation");
  });
  Status loaded = kvm->vm.LoadModule(analysis_.module);
  if (!loaded.ok()) {
    kvm->load_failed = true;
    RuntimeErrors()->Inc();
    MRS_LOG(kError, "kernel") << name_ << ": module init failed: "
                              << loaded.message();
  }
  cache.push_back(std::move(entry));
  return kvm->load_failed ? nullptr : kvm;
}

void MiniPyProgram::Map(const Value& key, const Value& value,
                        const Emitter& emit) {
  KernelVm* kvm = VmForThisThread();
  if (kvm == nullptr) return;
  kvm->pair_emit = &emit;
  kvm->value_emit = nullptr;
  Result<PyValue> out = kvm->vm.Call("map", {ToPy(key), ToPy(value)});
  kvm->pair_emit = nullptr;
  if (!out.ok()) {
    RuntimeErrors()->Inc();
    MRS_LOG(kError, "kernel")
        << name_ << ": map(" << key.Repr() << ", ...): "
        << out.status().message();
  }
}

void MiniPyProgram::Reduce(const Value& key, const ValueList& values,
                           const ValueEmitter& emit) {
  KernelVm* kvm = VmForThisThread();
  if (kvm == nullptr) return;
  PyList pyvalues;
  pyvalues.reserve(values.size());
  for (const Value& v : values) pyvalues.push_back(ToPy(v));
  kvm->value_emit = &emit;
  kvm->pair_emit = nullptr;
  Result<PyValue> out =
      kvm->vm.Call("reduce", {ToPy(key), PyValue(std::move(pyvalues))});
  kvm->value_emit = nullptr;
  if (!out.ok()) {
    RuntimeErrors()->Inc();
    MRS_LOG(kError, "kernel")
        << name_ << ": reduce(" << key.Repr() << ", ...): "
        << out.status().message();
  }
}

void MiniPyProgram::Combine(const Value& key, const ValueList& values,
                            const ValueEmitter& emit) {
  if (!HasKernelCombine()) {
    // Same default as the base class: an associative single-value reduce
    // doubles as the combiner.
    MiniPyProgram::Reduce(key, values, emit);
    return;
  }
  KernelVm* kvm = VmForThisThread();
  if (kvm == nullptr) return;
  PyList pyvalues;
  pyvalues.reserve(values.size());
  for (const Value& v : values) pyvalues.push_back(ToPy(v));
  kvm->value_emit = &emit;
  kvm->pair_emit = nullptr;
  Result<PyValue> out =
      kvm->vm.Call("combine", {ToPy(key), PyValue(std::move(pyvalues))});
  kvm->value_emit = nullptr;
  if (!out.ok()) {
    RuntimeErrors()->Inc();
    MRS_LOG(kError, "kernel")
        << name_ << ": combine(" << key.Repr() << ", ...): "
        << out.status().message();
  }
}

}  // namespace analysis
}  // namespace mrs
