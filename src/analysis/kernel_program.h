// MiniPyProgram: run a MiniPy kernel as a MapReduce program.
//
// The kernel is ordinary MiniPy source defining map(key, value) and
// reduce(key, values) (plus an optional combine(key, values)), each
// producing output through the host function `emit`:
//
//   def map(key, value):
//       emit(value, 1)
//   def reduce(key, values):
//       total = 0
//       for v in values:
//           total = total + v
//       emit(total)
//
// Construction runs the full static-analysis pipeline (analysis.h) once,
// eagerly; ValidateOperation reports the result, so a broken kernel is
// rejected at Job::MapData/ReduceData on every runner with zero tasks
// dispatched.  Execution uses one bytecode VM per (thread, program) —
// workers share nothing — loaded from the analysis's verified module, so
// the VM's unboxed fast path runs without re-verification.
//
// MapFn/ReduceFn are void, so a kernel *runtime* error (static analysis
// can't rule out e.g. index-out-of-range) cannot propagate as a Status;
// it is logged and counted in mrs.analysis.kernel_runtime_errors, and the
// failing call emits nothing.
#pragma once

#include <memory>
#include <string>

#include "analysis/analysis.h"
#include "core/program.h"

namespace mrs {
namespace analysis {

class MiniPyProgram : public MapReduce {
 public:
  /// `name` labels diagnostics (usually the source path).
  explicit MiniPyProgram(std::string source,
                         std::string name = "<kernel>");

  /// Loads and analyzes `path`; fails only on I/O errors — an
  /// *invalid* kernel still constructs (and rejects at submit), so every
  /// runner sees the identical diagnostic path.
  static Result<std::unique_ptr<MiniPyProgram>> FromFile(
      const std::string& path);

  const AnalysisResult& analysis() const { return analysis_; }
  const std::string& source_name() const { return name_; }
  /// True when the kernel defines its own combine().
  bool HasKernelCombine() const;

  Status ValidateOperation(DataSetKind kind,
                           const DataSetOptions& options) override;

  void Map(const Value& key, const Value& value, const Emitter& emit) override;
  void Reduce(const Value& key, const ValueList& values,
              const ValueEmitter& emit) override;
  void Combine(const Value& key, const ValueList& values,
               const ValueEmitter& emit) override;

 private:
  struct KernelVm;
  /// The calling thread's VM for this program (created on first use);
  /// null when analysis failed (no module to run).
  KernelVm* VmForThisThread() const;

  std::string source_;
  std::string name_;
  AnalysisResult analysis_;
};

}  // namespace analysis
}  // namespace mrs
