#include "analysis/typeinfer.h"

#include <algorithm>
#include <deque>
#include <utility>

namespace mrs {
namespace analysis {

using minipy::AbstractState;
using minipy::BinOp;
using minipy::CompiledFunction;
using minipy::CompiledModule;
using minipy::FunctionFacts;
using minipy::Instruction;
using minipy::JoinType;
using minipy::Op;
using minipy::TransferHooks;
using minipy::TransferInstruction;
using minipy::TransferStep;
using minipy::TypeDisplayName;
using minipy::TypeFactTable;
using minipy::TypeLe;
using minipy::TypeRow;
using minipy::UnOp;
using minipy::ValueType;

namespace {

const char* BinOpSymbol(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kFloorDiv: return "//";
    case BinOp::kMod: return "%";
    case BinOp::kPow: return "**";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kAnd: return "and";
    case BinOp::kOr: return "or";
  }
  return "?";
}

std::string Disp(ValueType t) { return std::string(TypeDisplayName(t)); }

/// Result of one function's CFG fixpoint.
struct FixpointResult {
  bool ok = false;  // false: inconsistent bytecode (never for verified)
  std::vector<TypeRow> rows;
  /// Join over every return (kReturn / kReturnNone / fall-off-end);
  /// kBottom when the function provably never returns normally.
  ValueType ret = ValueType::kBottom;
};

/// An MPY503 event: local `slot` of `fn_index` joined Int with Float at a
/// loop back edge, collapsing to ⊤ — a summation-order hazard.
struct MixEvent {
  int fn_index;
  int slot;
  int line;
};

class Inference {
 public:
  Inference(const CompiledModule& module, std::set<std::string> host_names)
      : module_(module), hosts_(std::move(host_names)) {}

  TypeInference Run();

 private:
  FixpointResult Fixpoint(const CompiledFunction& fn, int fn_index,
                          const std::vector<ValueType>& params,
                          const TransferHooks& hooks,
                          std::vector<MixEvent>* mixes);
  void InferGlobalTypes();
  void PreliminaryPass();
  void CollectDiagnostics(const CompiledFunction& fn,
                          const std::vector<TypeRow>& rows,
                          const TransferHooks& hooks);
  void ChooseGuards();
  bool GuardedPass();  // false on internal inconsistency

  TransferHooks PrelimHooks();
  TransferHooks GuardedHooks(int caller_index);

  const CompiledModule& module_;
  std::set<std::string> hosts_;

  /// Guard type per global slot: kTop for slots any function stores to
  /// (see the stability rule in CheckTypeFacts), otherwise the join of
  /// everything the top-level code stores there (kNone if never stored —
  /// the slot keeps its initial None forever).
  std::vector<ValueType> global_types_;

  /// Caller-agnostic summaries (params ⊤): rows feed diagnostics and
  /// call-site argument collection; rets feed the prelim call hook.
  std::vector<std::vector<TypeRow>> prelim_rows_;
  std::vector<ValueType> prelim_ret_;
  /// Join of static argument types per callee param, over every kCallUser
  /// site in the module (prelim rows).  kBottom = no site constrains it.
  std::vector<std::vector<ValueType>> callsite_args_;

  TypeFactTable table_;
  std::vector<bool> speculative_;

  std::vector<Diagnostic> diagnostics_;
  std::set<std::pair<int, int>> mix_reported_;  // (fn_index, local slot)
  bool failed_ = false;
};

TransferHooks Inference::PrelimHooks() {
  TransferHooks hooks;
  // Prelim summaries are computed under ⊤ parameters, which over-
  // approximate any actual arguments — so the prelim return type is a
  // sound call result regardless of what the call site passes.
  hooks.call_result = [this](int fn_index,
                             const std::vector<ValueType>&) -> ValueType {
    return prelim_ret_[fn_index];
  };
  hooks.global_type = [this](int32_t slot) -> ValueType {
    return global_types_[slot];
  };
  hooks.is_host = [this](const std::string& name) -> bool {
    return hosts_.count(name) > 0;
  };
  return hooks;
}

TransferHooks Inference::GuardedHooks(int caller_index) {
  TransferHooks hooks;
  // The exact rule CheckTypeFacts re-applies: a call result is the
  // callee's summarized return only when the static argument types equal
  // the callee's guard and the caller's global guard covers the callee's.
  hooks.call_result = [this, caller_index](
                          int fn_index,
                          const std::vector<ValueType>& args) -> ValueType {
    const FunctionFacts& caller = table_.functions[caller_index];
    const FunctionFacts& callee = table_.functions[fn_index];
    if (args != callee.params) return ValueType::kTop;
    if (!minipy::GlobalGuardCovered(caller, callee)) return ValueType::kTop;
    return callee.ret;
  };
  hooks.global_type = [this](int32_t slot) -> ValueType {
    return global_types_[slot];
  };
  hooks.is_host = [this](const std::string& name) -> bool {
    return hosts_.count(name) > 0;
  };
  return hooks;
}

FixpointResult Inference::Fixpoint(const CompiledFunction& fn, int fn_index,
                                   const std::vector<ValueType>& params,
                                   const TransferHooks& hooks,
                                   std::vector<MixEvent>* mixes) {
  FixpointResult out;
  const int n = static_cast<int>(fn.code.size());
  out.rows.assign(n, TypeRow{});
  if (n == 0) {
    out.ok = true;
    out.ret = ValueType::kNone;  // empty body falls off the end
    return out;
  }

  std::deque<int> worklist;
  std::vector<bool> queued(n, false);

  // Merge `st` into the row at `pc`; true if the row grew.  `from_pc` is
  // the predecessor (-1 for entry) — a predecessor at a larger pc is a
  // back edge, where an Int⊔Float collapse on a local is the static
  // signature of a mixed-type accumulator (MPY503).
  auto join_into = [&](int pc, const AbstractState& st, int from_pc) -> bool {
    TypeRow& row = out.rows[pc];
    if (!row.reachable) {
      row.reachable = true;
      row.locals = st.locals;
      row.stack = st.stack;
      return true;
    }
    if (row.locals.size() != st.locals.size() ||
        row.stack.size() != st.stack.size()) {
      // Verified bytecode has one stack depth per pc; this is a bug trap.
      failed_ = true;
      return false;
    }
    bool changed = false;
    for (size_t i = 0; i < row.locals.size(); ++i) {
      ValueType j = JoinType(row.locals[i], st.locals[i]);
      if (mixes != nullptr && from_pc > pc &&
          ((row.locals[i] == ValueType::kInt &&
            st.locals[i] == ValueType::kFloat) ||
           (row.locals[i] == ValueType::kFloat &&
            st.locals[i] == ValueType::kInt))) {
        mixes->push_back(
            {fn_index, static_cast<int>(i), fn.code[from_pc].line});
      }
      if (j != row.locals[i]) {
        row.locals[i] = j;
        changed = true;
      }
    }
    for (size_t i = 0; i < row.stack.size(); ++i) {
      ValueType j = JoinType(row.stack[i], st.stack[i]);
      if (j != row.stack[i]) {
        row.stack[i] = j;
        changed = true;
      }
    }
    return changed;
  };

  // Shared entry rule with the checker (locals provably never read
  // unassigned start at ⊥, so loop-carried assignments keep a concrete
  // type instead of joining with the initial None).
  AbstractState entry = minipy::EntryState(fn, params);
  join_into(0, entry, /*from_pc=*/-1);
  worklist.push_back(0);
  queued[0] = true;

  bool falls_off_end = false;
  while (!worklist.empty()) {
    int pc = worklist.front();
    worklist.pop_front();
    queued[pc] = false;

    AbstractState in;
    in.locals = out.rows[pc].locals;
    in.stack = out.rows[pc].stack;
    Result<TransferStep> step =
        TransferInstruction(module_, fn, pc, in, hooks);
    if (!step.ok()) {
      failed_ = true;  // impossible on verified bytecode
      return out;
    }
    if (step->returns) {
      out.ret = JoinType(out.ret, step->return_type);
    }
    for (const auto& [succ, st] : step->successors) {
      if (succ == n) {
        falls_off_end = true;
        continue;
      }
      if (join_into(succ, st, pc) && !queued[succ]) {
        worklist.push_back(succ);
        queued[succ] = true;
      }
    }
    if (failed_) return out;
  }
  if (falls_off_end) out.ret = JoinType(out.ret, ValueType::kNone);
  out.ok = !failed_;
  return out;
}

void Inference::InferGlobalTypes() {
  const size_t nglobals = module_.global_names.size();
  global_types_.assign(nglobals, ValueType::kBottom);

  // Any global a *function* stores to is unstable under deopt (a deopted
  // frame's generic stores carry no claims), so its guard type is ⊤ —
  // matching the stability rule CheckTypeFacts enforces.
  std::vector<bool> fn_stored(nglobals, false);
  for (const CompiledFunction& fn : module_.functions) {
    for (const Instruction& ins : fn.code) {
      if (ins.op == Op::kStoreGlobal) fn_stored[ins.a] = true;
    }
  }

  // Top-level stores are the source of truth for everything else: the
  // top level runs exactly once, generically, before any guard is ever
  // evaluated.  Iterate because a store may read an earlier global.
  TransferHooks hooks;
  hooks.call_result = [](int, const std::vector<ValueType>&) {
    return ValueType::kTop;
  };
  hooks.global_type = [this](int32_t slot) -> ValueType {
    ValueType t = global_types_[slot];
    // Before its first top-level store a slot holds None.
    return t == ValueType::kBottom ? ValueType::kNone : t;
  };
  hooks.is_host = [this](const std::string& name) -> bool {
    return hosts_.count(name) > 0;
  };
  for (int round = 0; round < 8 && !failed_; ++round) {
    FixpointResult top =
        Fixpoint(module_.top_level, /*fn_index=*/-1,
                 /*params=*/{}, hooks, /*mixes=*/nullptr);
    if (!top.ok) return;
    std::vector<ValueType> next = global_types_;
    for (size_t pc = 0; pc < module_.top_level.code.size(); ++pc) {
      const Instruction& ins = module_.top_level.code[pc];
      if (ins.op != Op::kStoreGlobal || !top.rows[pc].reachable) continue;
      if (top.rows[pc].stack.empty()) {
        failed_ = true;
        return;
      }
      next[ins.a] =
          JoinType(next[ins.a], top.rows[pc].stack.back());
    }
    if (next == global_types_) break;
    global_types_ = std::move(next);
  }

  for (size_t i = 0; i < nglobals; ++i) {
    if (fn_stored[i]) {
      global_types_[i] = ValueType::kTop;
    } else if (global_types_[i] == ValueType::kBottom) {
      global_types_[i] = ValueType::kNone;  // never stored: stays None
    }
    // Note the remaining optimism: a top-level store inside a branch may
    // not execute, leaving the slot None at runtime.  That only makes an
    // entry *guard* fail (deopt), never typed code run on a wrong type.
  }
}

void Inference::PreliminaryPass() {
  const size_t nfn = module_.functions.size();
  prelim_rows_.assign(nfn, {});
  prelim_ret_.assign(nfn, ValueType::kBottom);
  callsite_args_.assign(nfn, {});
  for (size_t i = 0; i < nfn; ++i) {
    callsite_args_[i].assign(module_.functions[i].num_params,
                             ValueType::kBottom);
  }

  TransferHooks hooks = PrelimHooks();
  std::vector<MixEvent> mixes;
  // Module-level summary iteration: rets start ⊥ and only grow (flat
  // lattice: ⊥ → concrete → ⊤), so this converges in a handful of
  // rounds; the cap is a safety net, and landing on it just means some
  // summaries stay under-joined — prelim feeds diagnostics and guard
  // selection, both of which degrade gracefully.
  for (int round = 0; round < 16 && !failed_; ++round) {
    bool changed = false;
    for (size_t i = 0; i < nfn; ++i) {
      const CompiledFunction& fn = module_.functions[i];
      std::vector<ValueType> top_params(fn.num_params, ValueType::kTop);
      FixpointResult r = Fixpoint(fn, static_cast<int>(i), top_params, hooks,
                                  round == 0 ? &mixes : nullptr);
      if (!r.ok) return;
      if (r.ret != prelim_ret_[i]) changed = true;
      prelim_ret_[i] = r.ret;
      prelim_rows_[i] = std::move(r.rows);
    }
    if (!changed) break;
  }
  if (failed_) return;

  // Call-site argument collection from the converged prelim rows.
  for (size_t i = 0; i < nfn; ++i) {
    const CompiledFunction& fn = module_.functions[i];
    for (size_t pc = 0; pc < fn.code.size(); ++pc) {
      const Instruction& ins = fn.code[pc];
      if (ins.op != Op::kCallUser || !prelim_rows_[i][pc].reachable) continue;
      int callee = ins.a;
      int argc = ins.b;
      const std::vector<ValueType>& stack = prelim_rows_[i][pc].stack;
      if (callee < 0 || callee >= static_cast<int>(nfn) ||
          argc != module_.functions[callee].num_params ||
          static_cast<int>(stack.size()) < argc) {
        continue;  // arity errors surface as MPY1xx, not here
      }
      for (int k = 0; k < argc; ++k) {
        ValueType at = stack[stack.size() - argc + k];
        callsite_args_[callee][k] = JoinType(callsite_args_[callee][k], at);
      }
    }
  }

  // MPY501/502 from the converged rows (a transient state can look like a
  // guaranteed error that a later join dissolves, so never report
  // mid-fixpoint); MPY503 from first-round join events, deduped per
  // (function, local).
  for (size_t i = 0; i < nfn; ++i) {
    CollectDiagnostics(module_.functions[i], prelim_rows_[i], hooks);
  }
  for (const MixEvent& m : mixes) {
    if (!mix_reported_.insert({m.fn_index, m.slot}).second) continue;
    const CompiledFunction& fn = module_.functions[m.fn_index];
    std::string local = m.slot < static_cast<int>(fn.local_names.size())
                            ? fn.local_names[m.slot]
                            : "#" + std::to_string(m.slot);
    Diagnostic d;
    d.code = "MPY503";
    d.severity = Severity::kWarning;
    d.span.line = m.line;
    d.message = "in " + fn.name + "(): local '" + local +
                "' alternates between int and float across loop "
                "iterations; floating-point summation order now depends "
                "on iteration count — initialize it with a float literal";
    diagnostics_.push_back(std::move(d));
  }
}

void Inference::CollectDiagnostics(const CompiledFunction& fn,
                                   const std::vector<TypeRow>& rows,
                                   const TransferHooks& hooks) {
  for (size_t pc = 0; pc < fn.code.size(); ++pc) {
    if (!rows[pc].reachable) continue;
    AbstractState in;
    in.locals = rows[pc].locals;
    in.stack = rows[pc].stack;
    Result<TransferStep> step =
        TransferInstruction(module_, fn, static_cast<int>(pc), in, hooks);
    if (!step.ok() || !step->guaranteed_error) continue;

    const Instruction& ins = fn.code[pc];
    const std::vector<ValueType>& stack = in.stack;
    Diagnostic d;
    d.severity = Severity::kWarning;
    d.span.line = ins.line;
    std::string where = "in " + fn.name + "(): ";
    switch (ins.op) {
      case Op::kBinary: {
        if (stack.size() < 2) continue;
        ValueType b = stack[stack.size() - 1];
        ValueType a = stack[stack.size() - 2];
        d.code = "MPY501";
        d.message = where + "'" +
                    BinOpSymbol(static_cast<BinOp>(ins.a)) +
                    "' always raises TypeError here: operands are " +
                    Disp(a) + " and " + Disp(b);
        break;
      }
      case Op::kUnary: {
        if (stack.empty()) continue;
        d.code = "MPY501";
        d.message = where +
                    "unary '-' always raises TypeError here: operand is " +
                    Disp(stack.back());
        break;
      }
      case Op::kIndex: {
        if (stack.size() < 2) continue;
        ValueType base = stack[stack.size() - 2];
        ValueType index = stack[stack.size() - 1];
        d.code = "MPY501";
        d.message = where + "subscript always fails here: " + Disp(base) +
                    "[" + Disp(index) + "]";
        break;
      }
      case Op::kStoreIndex: {
        if (stack.size() < 3) continue;
        ValueType base = stack[stack.size() - 3];
        ValueType index = stack[stack.size() - 2];
        d.code = "MPY501";
        d.message = where + "subscript assignment always fails here: " +
                    Disp(base) + "[" + Disp(index) + "] = ...";
        break;
      }
      case Op::kLen: {
        if (stack.empty()) continue;
        d.code = "MPY501";
        d.message = where + "len() always fails here: operand is " +
                    Disp(stack.back());
        break;
      }
      case Op::kCallBuiltin: {
        const std::string& name = fn.constants[ins.a].AsString();
        int argc = ins.b;
        if (static_cast<int>(stack.size()) < argc) continue;
        std::string args;
        for (int k = 0; k < argc; ++k) {
          if (k > 0) args += ", ";
          args += Disp(stack[stack.size() - argc + k]);
        }
        d.code = "MPY502";
        d.message = where + name + "(" + args +
                    ") always raises: no argument types admit it";
        break;
      }
      default:
        continue;  // other guaranteed errors have dedicated passes
    }
    diagnostics_.push_back(std::move(d));
  }
}

void Inference::ChooseGuards() {
  const size_t nfn = module_.functions.size();
  table_.functions.assign(nfn, FunctionFacts{});
  speculative_.assign(nfn, false);
  for (size_t i = 0; i < nfn; ++i) {
    const CompiledFunction& fn = module_.functions[i];
    FunctionFacts& facts = table_.functions[i];
    facts.params.resize(fn.num_params);
    for (int k = 0; k < fn.num_params; ++k) {
      ValueType site = callsite_args_[i][k];
      if (minipy::IsConcreteType(site)) {
        facts.params[k] = site;
      } else {
        // No static call site constrains this parameter (host-called
        // function) or the sites conflict.  Speculate int — the dominant
        // MiniPy parameter kind (indices, counts, split bounds).  Wrong
        // speculation costs one guard failure per call, nothing more.
        facts.params[k] = ValueType::kInt;
        speculative_[i] = true;
      }
    }
    // The global guard covers every slot this function reads whose type
    // is stable and known; ⊤-typed slots are omitted (GlobalType defaults
    // to ⊤ for unlisted slots, and an ⊤ entry adds no information).
    std::set<int32_t> reads;
    for (const Instruction& ins : fn.code) {
      if (ins.op == Op::kLoadGlobal) reads.insert(ins.a);
    }
    for (int32_t slot : reads) {
      if (global_types_[slot] != ValueType::kTop) {
        facts.global_reads.emplace_back(slot, global_types_[slot]);
      }
    }
    facts.ret = ValueType::kBottom;
  }
}

bool Inference::GuardedPass() {
  const size_t nfn = module_.functions.size();
  // Same summary iteration as the prelim pass, now under the chosen
  // guards and the checker's exact call-result rule.  Monotone: rets only
  // grow, and an args==params match can only be lost (args grow toward ⊤)
  // — after which the result is already ⊤.
  for (int round = 0; round < 16 && !failed_; ++round) {
    bool changed = false;
    for (size_t i = 0; i < nfn; ++i) {
      const CompiledFunction& fn = module_.functions[i];
      FunctionFacts& facts = table_.functions[i];
      FixpointResult r = Fixpoint(fn, static_cast<int>(i), facts.params,
                                  GuardedHooks(static_cast<int>(i)),
                                  /*mixes=*/nullptr);
      if (!r.ok) return false;
      if (r.ret != facts.ret) changed = true;
      facts.ret = r.ret;
      facts.rows = std::move(r.rows);
    }
    if (!changed) break;
  }
  return !failed_;
}

TypeInference Inference::Run() {
  TypeInference out;
  if (!module_.verified) return out;

  InferGlobalTypes();
  if (!failed_) PreliminaryPass();
  if (!failed_) ChooseGuards();
  bool table_ok = !failed_ && GuardedPass();

  // A speculated guard that leaves the body guaranteed-to-raise (ret ⊥ =
  // no normal return) speculated wrong — e.g. int-speculation for a
  // list-taking map().  Demote those parameters to ⊤ and re-derive: the
  // function stays untyped either way, but its published signature tells
  // the truth instead of "never returns".  Demotion can cascade (wider
  // params widen call results), hence the loop.
  while (table_ok) {
    bool demoted = false;
    for (size_t i = 0; i < table_.functions.size(); ++i) {
      FunctionFacts& facts = table_.functions[i];
      if (!speculative_[i] || facts.ret != ValueType::kBottom) continue;
      for (size_t k = 0; k < facts.params.size(); ++k) {
        if (!minipy::IsConcreteType(callsite_args_[i][k])) {
          facts.params[k] = ValueType::kTop;
        }
      }
      speculative_[i] = false;
      demoted = true;
    }
    if (!demoted) break;
    for (FunctionFacts& facts : table_.functions) {
      facts.ret = ValueType::kBottom;  // restart the monotone iteration
    }
    table_ok = GuardedPass();
  }

  out.diagnostics = std::move(diagnostics_);
  if (!table_ok) return out;

  // Defense in depth: the table is about to be trusted by the VM's
  // checker, and a divergence between the two would silently disable the
  // typed tier.  Running the real checker here turns any inference bug
  // into "ship no table" (generic-only execution), never a rejected one.
  auto table = std::make_shared<TypeFactTable>(std::move(table_));
  if (!minipy::CheckTypeFacts(module_, *table, hosts_).ok()) return out;
  out.table = std::move(table);

  for (size_t i = 0; i < module_.functions.size(); ++i) {
    InferredSignature sig;
    sig.name = module_.functions[i].name;
    sig.params = out.table->functions[i].params;
    sig.ret = out.table->functions[i].ret;
    sig.speculative = speculative_[i];
    out.signatures.push_back(std::move(sig));
  }
  return out;
}

}  // namespace

TypeInference InferTypeFacts(const CompiledModule& module,
                             const std::set<std::string>& host_names) {
  return Inference(module, host_names).Run();
}

}  // namespace analysis
}  // namespace mrs
