#include "analysis/analysis.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "analysis/semantic.h"
#include "interp/compiler.h"
#include "interp/parser.h"
#include "interp/verifier.h"
#include "obs/metrics.h"

namespace mrs {
namespace analysis {
namespace {

/// The parser/compiler report "line N: message"; recover the span so
/// those failures surface with the same shape as native diagnostics.
Diagnostic FromPrefixedMessage(const char* code, const std::string& message) {
  Diagnostic d;
  d.code = code;
  d.severity = Severity::kError;
  d.message = message;
  if (message.rfind("line ", 0) == 0) {
    char* end = nullptr;
    long line = std::strtol(message.c_str() + 5, &end, 10);
    if (end != nullptr && *end == ':' && line > 0) {
      d.span.line = static_cast<int>(line);
      const char* rest = end + 1;
      while (*rest == ' ') ++rest;
      d.message = rest;
    }
  }
  return d;
}

void SortBySpan(std::vector<Diagnostic>* diags) {
  std::stable_sort(diags->begin(), diags->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.span.line != b.span.line) {
                       return a.span.line < b.span.line;
                     }
                     return a.span.col < b.span.col;
                   });
}

}  // namespace

AnalysisResult AnalyzeKernelSource(std::string_view source,
                                   const AnalysisOptions& options) {
  auto& registry = obs::Registry::Instance();
  static obs::Counter* runs = registry.GetCounter("mrs.analysis.runs");
  static obs::Counter* rejects = registry.GetCounter("mrs.analysis.rejects");
  static obs::Counter* errors = registry.GetCounter("mrs.analysis.errors");
  static obs::Counter* warnings = registry.GetCounter("mrs.analysis.warnings");
  static obs::Histogram* seconds =
      registry.GetHistogram("mrs.analysis.seconds");

  const auto start = std::chrono::steady_clock::now();
  runs->Inc();

  AnalysisResult result;
  auto finish = [&]() -> AnalysisResult& {
    SortBySpan(&result.diagnostics);
    int error_count = 0;
    int warning_count = 0;
    for (const Diagnostic& d : result.diagnostics) {
      (d.severity == Severity::kError ? error_count : warning_count)++;
    }
    errors->Inc(error_count);
    warnings->Inc(warning_count);
    if (error_count > 0) {
      rejects->Inc();
      result.module = nullptr;
    }
    seconds->Observe(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count());
    return result;
  };

  Result<std::shared_ptr<minipy::Module>> parsed = minipy::Parse(source);
  if (!parsed.ok()) {
    result.diagnostics.push_back(
        FromPrefixedMessage("MPY001", parsed.status().message()));
    return finish();
  }
  const minipy::Module& module = *parsed.value();

  std::set<std::string> hosts = options.extra_functions;
  if (options.kernel_profile) hosts.insert("emit");

  SemanticOptions sem_options;
  sem_options.extra_functions = hosts;
  sem_options.kernel_profile = options.kernel_profile;
  result.diagnostics = CheckSemantics(module, sem_options);

  if (options.determinism_lint) {
    std::vector<Diagnostic> det = CheckDeterminism(module);
    // `time()` is both an unknown function (MPY103) and a wall-clock read
    // (MPY401); keep only the determinism finding — it names the actual
    // problem and its fix.
    for (Diagnostic& d : det) {
      result.diagnostics.erase(
          std::remove_if(result.diagnostics.begin(), result.diagnostics.end(),
                         [&](const Diagnostic& s) {
                           return s.code == "MPY103" &&
                                  s.span.line == d.span.line &&
                                  s.span.col == d.span.col;
                         }),
          result.diagnostics.end());
      result.diagnostics.push_back(std::move(d));
    }
  }
  if (HasErrors(result.diagnostics)) return finish();

  minipy::CompileOptions compile_options;
  compile_options.host_functions = hosts;
  Result<std::shared_ptr<minipy::CompiledModule>> compiled =
      minipy::CompileModule(module, compile_options);
  if (!compiled.ok()) {
    // Semantic analysis should catch everything the compiler rejects;
    // MPY002 is the safety net for constructs it does not model.
    result.diagnostics.push_back(
        FromPrefixedMessage("MPY002", compiled.status().message()));
    return finish();
  }
  result.module = std::move(compiled).value();

  std::vector<minipy::VerifyIssue> issues =
      minipy::VerifyCompiledModule(*result.module, hosts);
  if (!issues.empty()) {
    for (const minipy::VerifyIssue& issue : issues) {
      result.diagnostics.push_back(
          {issue.code, Severity::kError, {0, 0}, issue.ToString()});
    }
    return finish();
  }
  // Clean: mark verified and fill per-function max_stack so the VM takes
  // the unboxed fast path without re-verifying at load.
  Status marked = minipy::VerifyAndMark(*result.module, hosts);
  if (!marked.ok()) {
    result.diagnostics.push_back(
        {"MBC507", Severity::kError, {0, 0}, marked.message()});
    return finish();
  }

  if (options.type_facts) {
    TypeInference inference = InferTypeFacts(*result.module, hosts);
    result.module->type_facts = inference.table;
    result.signatures = std::move(inference.signatures);
    for (Diagnostic& d : inference.diagnostics) {
      result.diagnostics.push_back(std::move(d));
    }
  }
  return finish();
}

}  // namespace analysis
}  // namespace mrs
