#include "common/clock.h"

namespace mrs {

RealClock& RealClock::Instance() {
  static RealClock instance;
  return instance;
}

}  // namespace mrs
