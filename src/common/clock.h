// Clock abstraction.
//
// The Mrs runtime measures wall time (RealClock); the Hadoop baseline is a
// discrete-event simulation whose time is advanced explicitly
// (VirtualClock).  Benches mix the two deliberately: Mrs columns are real
// seconds, hadoopsim columns are simulated seconds — see DESIGN.md §1.
#pragma once

#include <chrono>
#include <cstdint>

namespace mrs {

/// Monotonic seconds source.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Seconds since an arbitrary epoch (monotonic).
  virtual double Now() const = 0;
};

/// Wall-clock backed by steady_clock.
class RealClock final : public Clock {
 public:
  double Now() const override {
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
  }

  /// Process-wide instance.
  static RealClock& Instance();
};

/// Manually advanced clock for simulations and tests.
class VirtualClock final : public Clock {
 public:
  double Now() const override { return now_; }
  void AdvanceTo(double t) {
    if (t > now_) now_ = t;
  }
  void AdvanceBy(double dt) {
    if (dt > 0) now_ += dt;
  }

 private:
  double now_ = 0.0;
};

/// Scoped stopwatch against a Clock (defaults to real time).
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock = RealClock::Instance())
      : clock_(&clock), start_(clock.Now()) {}
  double ElapsedSeconds() const { return clock_->Now() - start_; }
  void Restart() { start_ = clock_->Now(); }

 private:
  const Clock* clock_;
  double start_;
};

}  // namespace mrs
