// Bounded exponential backoff with jitter for transient failures.
//
// The distributed runtime assumes processes and connections die at any
// time (paper §I: "a job scheduler may kill processes at any time").  Both
// network clients — the XML-RPC control channel and the bucket data
// fetcher — funnel their retry loops through this policy so behaviour is
// uniform and observable: every retry is counted in the process metrics
// registry (mrs.retry.rpc / mrs.retry.fetch, see obs/metrics.h), which
// Master::Stats, /metrics, and the bench snapshots all read.
#pragma once

#include <cstdint>

#include "common/status.h"

namespace mrs {

struct RetryPolicy {
  /// Total tries including the first.  1 disables retries.
  int max_attempts = 1;
  double initial_backoff_seconds = 0.02;
  double max_backoff_seconds = 0.5;
  double backoff_multiplier = 2.0;
  /// Each delay is scaled by a uniform factor in [1-jitter, 1+jitter].
  double jitter_fraction = 0.25;
};

/// Errors worth retrying at the transport layer: connection refused/reset
/// (kUnavailable, kIoError), timeouts (kDeadlineExceeded), and truncated
/// or checksum-failed payloads (kDataLoss).  Application errors (bad
/// argument, not found, internal) are not retried.
bool IsTransportRetryable(const Status& status);

/// Jittered delay before the retry following failure number `failures`
/// (1-based): min(initial * multiplier^(failures-1), max) * U[1±jitter].
double BackoffDelaySeconds(const RetryPolicy& policy, int failures);

void SleepForSeconds(double seconds);

// ---- Process-wide retry counters ---------------------------------------
// Thin accessors over the metrics-registry counters mrs.retry.rpc and
// mrs.retry.fetch; Master::stats() reports deltas so in-process cluster
// tests can assert that retries actually happened.  Note the registry
// kill switch (obs::SetMetricsEnabled(false)) freezes these too.

int64_t RpcRetryCount();
int64_t FetchRetryCount();
void CountRpcRetry();
void CountFetchRetry();

inline const Status& RetryStatusOf(const Status& s) { return s; }
template <typename T>
const Status& RetryStatusOf(const Result<T>& r) {
  return r.status();
}

/// Run `fn` until it succeeds, returns a non-retryable error, or the
/// attempt budget is exhausted.  `count_retry` (may be null) is invoked
/// once per retry performed.
template <typename F>
auto CallWithRetry(const RetryPolicy& policy, void (*count_retry)(), F&& fn)
    -> decltype(fn()) {
  auto result = fn();
  for (int failures = 1; failures < policy.max_attempts; ++failures) {
    if (RetryStatusOf(result).ok() ||
        !IsTransportRetryable(RetryStatusOf(result))) {
      break;
    }
    if (count_retry != nullptr) count_retry();
    SleepForSeconds(BackoffDelaySeconds(policy, failures));
    result = fn();
  }
  return result;
}

}  // namespace mrs
