// Byte-buffer reader/writer with varint framing.
//
// The binary record format used for intermediate MapReduce data (mrs::ser)
// is built on LEB128-style varints, little-endian fixed-width integers, and
// length-prefixed byte strings, all defined here.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mrs {

using Bytes = std::vector<uint8_t>;

/// Appends primitives to a growable byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(Bytes* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }

  void PutFixed32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  void PutFixed64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  /// Unsigned LEB128.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      out_->push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_->push_back(static_cast<uint8_t>(v));
  }

  /// Signed value via zigzag encoding.
  void PutVarintSigned(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63));
  }

  /// IEEE-754 bit pattern as fixed64.
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed64(bits);
  }

  /// Varint length prefix then raw bytes.
  void PutLengthPrefixed(std::string_view s) {
    PutVarint(s.size());
    out_->insert(out_->end(), s.begin(), s.end());
  }
  void PutLengthPrefixed(const Bytes& b) {
    PutVarint(b.size());
    out_->insert(out_->end(), b.begin(), b.end());
  }

  void PutRaw(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + n);
  }

 private:
  Bytes* out_;
};

/// Consumes primitives from a byte span; every getter reports truncation or
/// malformed varints as a Status instead of reading out of bounds.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const Bytes& b) : ByteReader(b.data(), b.size()) {}
  explicit ByteReader(std::string_view s)
      : ByteReader(reinterpret_cast<const uint8_t*>(s.data()), s.size()) {}

  size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }
  size_t position() const { return pos_; }

  Result<uint8_t> GetU8() {
    if (remaining() < 1) return Truncated("u8");
    return data_[pos_++];
  }

  Result<uint32_t> GetFixed32() {
    if (remaining() < 4) return Truncated("fixed32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  Result<uint64_t> GetFixed64() {
    if (remaining() < 8) return Truncated("fixed64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_) return Truncated("varint");
      if (shift >= 64) return DataLossError("varint too long");
      uint8_t byte = data_[pos_++];
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }

  Result<int64_t> GetVarintSigned() {
    MRS_ASSIGN_OR_RETURN(uint64_t raw, GetVarint());
    return static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  }

  Result<double> GetDouble() {
    MRS_ASSIGN_OR_RETURN(uint64_t bits, GetFixed64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::string> GetLengthPrefixed() {
    MRS_ASSIGN_OR_RETURN(uint64_t len, GetVarint());
    if (remaining() < len) return Truncated("length-prefixed bytes");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return s;
  }

  Status Skip(size_t n) {
    if (remaining() < n) return DataLossError("skip past end of buffer");
    pos_ += n;
    return Status::Ok();
  }

 private:
  Status Truncated(std::string_view what) {
    return DataLossError("truncated buffer reading " + std::string(what));
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace mrs
