// Fixed-size worker pool.
//
// Stands in for the worker *processes* a Mrs slave forks (Python needs
// processes because of the GIL; C++ threads have no such constraint, and
// the paper's architecture maps cleanly onto a pool + queues).
#pragma once

#include <functional>
#include <thread>
#include <vector>

#include "common/queue.h"

namespace mrs {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns false after Shutdown().
  bool Submit(std::function<void()> task);

  /// Stop accepting work, run what is queued, join all workers.  Idempotent.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

}  // namespace mrs
