#include "common/options.h"

#include "common/log.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace mrs {
namespace {

/// A malformed numeric option value ("--mrs-workers=4x") must not silently
/// run with the default: warn with the offending text and count it so the
/// regression is visible in metrics even when logs are discarded.
void ReportOptionParseError(std::string_view name, const std::string& value,
                            const char* expected) {
  static obs::Counter* parse_errors =
      obs::Registry::Instance().GetCounter("mrs.options.parse_errors");
  parse_errors->Inc();
  MRS_LOG(kWarning, "options")
      << "option --" << name << " has malformed " << expected << " value '"
      << value << "'; using the default";
}

}  // namespace

bool Options::Has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::string Options::GetString(std::string_view name,
                               std::string_view dflt) const {
  auto it = values_.find(name);
  return it == values_.end() ? std::string(dflt) : it->second;
}

int64_t Options::GetInt(std::string_view name, int64_t dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  std::optional<int64_t> parsed = ParseInt64(it->second);
  if (!parsed.has_value()) {
    ReportOptionParseError(name, it->second, "integer");
    return dflt;
  }
  return *parsed;
}

double Options::GetDouble(std::string_view name, double dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  std::optional<double> parsed = ParseDouble(it->second);
  if (!parsed.has_value()) {
    ReportOptionParseError(name, it->second, "number");
    return dflt;
  }
  return *parsed;
}

bool Options::GetBool(std::string_view name, bool dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  const std::string& v = it->second;
  return v == "1" || EqualsIgnoreCase(v, "true") || EqualsIgnoreCase(v, "yes") ||
         v.empty();  // bare switch
}

void Options::Set(std::string name, std::string value) {
  values_[std::move(name)] = std::move(value);
}

void OptionParser::Add(std::string name, char short_name, bool takes_value,
                       std::string help, std::string dflt) {
  decls_.push_back(Decl{std::move(name), short_name, takes_value,
                        std::move(help), std::move(dflt)});
}

const OptionParser::Decl* OptionParser::Find(std::string_view name) const {
  for (const Decl& d : decls_) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

const OptionParser::Decl* OptionParser::FindShort(char c) const {
  for (const Decl& d : decls_) {
    if (d.short_name == c) return &d;
  }
  return nullptr;
}

Result<Options> OptionParser::Parse(const std::vector<std::string>& argv) const {
  Options opts;
  // Seed defaults first so GetString sees declared defaults.
  for (const Decl& d : decls_) {
    if (d.takes_value && !d.dflt.empty()) opts.Set(d.name, d.dflt);
  }
  size_t i = 0;
  for (; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    if (arg == "--") {
      ++i;
      break;
    }
    if (StartsWith(arg, "--")) {
      std::string_view body = std::string_view(arg).substr(2);
      std::string_view name = body;
      std::optional<std::string_view> inline_value;
      if (size_t eq = body.find('='); eq != std::string_view::npos) {
        name = body.substr(0, eq);
        inline_value = body.substr(eq + 1);
      }
      const Decl* d = Find(name);
      if (d == nullptr) {
        return InvalidArgumentError("unknown option --" + std::string(name));
      }
      if (!d->takes_value) {
        if (inline_value.has_value()) {
          return InvalidArgumentError("option --" + d->name +
                                      " does not take a value");
        }
        opts.Set(d->name, "1");
      } else if (inline_value.has_value()) {
        opts.Set(d->name, std::string(*inline_value));
      } else {
        if (i + 1 >= argv.size()) {
          return InvalidArgumentError("option --" + d->name +
                                      " requires a value");
        }
        opts.Set(d->name, argv[++i]);
      }
    } else if (arg.size() >= 2 && arg[0] == '-' && arg != "-") {
      // Short options; a value-taking short option consumes the rest of the
      // token or the next token ("-I serial" or "-Iserial").
      std::string_view body = std::string_view(arg).substr(1);
      for (size_t j = 0; j < body.size(); ++j) {
        const Decl* d = FindShort(body[j]);
        if (d == nullptr) {
          return InvalidArgumentError(std::string("unknown option -") + body[j]);
        }
        if (!d->takes_value) {
          opts.Set(d->name, "1");
          continue;
        }
        if (j + 1 < body.size()) {
          opts.Set(d->name, std::string(body.substr(j + 1)));
        } else {
          if (i + 1 >= argv.size()) {
            return InvalidArgumentError(std::string("option -") + body[j] +
                                        " requires a value");
          }
          opts.Set(d->name, argv[++i]);
        }
        break;
      }
    } else {
      break;  // first positional argument
    }
  }
  for (; i < argv.size(); ++i) opts.mutable_args()->push_back(argv[i]);
  return opts;
}

Result<Options> OptionParser::Parse(int argc, const char* const* argv) const {
  std::vector<std::string> v;
  v.reserve(static_cast<size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) v.emplace_back(argv[i]);
  return Parse(v);
}

std::string OptionParser::Usage(std::string_view program) const {
  std::string out = "usage: " + std::string(program) + " [options] [args...]\n";
  for (const Decl& d : decls_) {
    out += "  ";
    if (d.short_name != 0) {
      out += '-';
      out += d.short_name;
      out += ", ";
    } else {
      out += "    ";
    }
    out += "--" + d.name;
    if (d.takes_value) out += " <value>";
    out += "\n        " + d.help;
    if (!d.dflt.empty()) out += " (default: " + d.dflt + ")";
    out += '\n';
  }
  return out;
}

void AddStandardMrsOptions(OptionParser* parser) {
  parser->Add("mrs-impl", 'I', true,
              "execution implementation: serial, mockparallel, thread, "
              "masterslave, master, slave, bypass",
              "serial");
  parser->Add("mrs-master", 'M', true,
              "master address host:port (slave implementation only)");
  parser->Add("mrs-port", 'P', true,
              "fixed master port; 0 picks an ephemeral port", "0");
  parser->Add("mrs-num-slaves", 'N', true,
              "number of in-process slaves for the masterslave "
              "implementation",
              "2");
  parser->Add("mrs-tasks-per-slave", 0, true,
              "map task multiplier per slave", "2");
  parser->Add("mrs-workers", 'W', true,
              "worker threads for the thread implementation; 0 uses "
              "hardware concurrency",
              "0");
  parser->Add("mrs-morsel-records", 0, true,
              "thread: split a map task whose input exceeds this many "
              "records into stealable morsels so the pool has work to "
              "balance; 0 disables morsel splitting",
              "0");
  parser->Add("mrs-tmpdir", 'T', true,
              "directory for intermediate data (mockparallel/masterslave)");
  parser->Add("mrs-seed", 'S', true,
              "program random seed for the random(...) stream API", "42");
  parser->Add("mrs-output", 'o', true,
              "write final text records to this file instead of stdout");
  parser->Add("mrs-port-file", 0, true,
              "master: write host:port here once listening (the run-script "
              "handshake)");
  parser->Add("mrs-shared-dir", 0, true,
              "slaves publish buckets as files in this shared directory "
              "instead of serving them over HTTP (fault-tolerant mode)");
  parser->Add("mrs-memory-budget", 0, true,
              "per-process cap on in-memory bucket bytes (e.g. 64M, 1G); "
              "buckets over budget spill to disk as sorted runs. 0 = "
              "unlimited",
              "0");
  parser->Add("mrs-ping-interval", 0, true,
              "slave heartbeat interval in seconds (reported to the master "
              "at signin, which scales its death threshold accordingly)",
              "2");
  parser->Add("mrs-missed-ping-limit", 0, true,
              "master: declare a slave lost after this many missed "
              "heartbeats (scaled by the slave's reported ping interval)",
              "5");
  parser->Add("mrs-slave-timeout", 0, true,
              "master: floor in seconds of silence before a slave is "
              "declared lost",
              "15");
  parser->Add("mrs-drain-timeout", 0, true,
              "master: seconds a draining slave may await release before "
              "it is declared gone",
              "10");
  parser->Add("mrs-speculation-quantile", 0, true,
              "master: runtime quantile past which a running task gets a "
              "speculative backup attempt; 0 disables speculation",
              "0.9");
  parser->Add("mrs-quarantine-failures", 0, true,
              "master: quarantine a slave after this many consecutive task "
              "failures; 0 disables quarantine",
              "3");
  parser->Add("mrs-probation-seconds", 0, true,
              "master: how long a quarantined slave waits before being "
              "re-admitted to the healthy pool",
              "5");
  parser->Add("mrs-timing", 0, false,
              "print wall-time for the Run method to stderr");
  parser->Add("trace-out", 0, true,
              "write per-task trace spans as Chrome trace_event JSON to "
              "this file on exit (load via chrome://tracing)");
  parser->Add("mrs-no-metrics", 0, false,
              "disable the metrics registry hot path (observability kill "
              "switch)");
  parser->Add("mrs-verbose", 'v', false, "enable info logging");
  parser->Add("mrs-debug", 0, false, "enable debug logging");
  parser->Add("help", 'h', false, "show this help");
}

}  // namespace mrs
