#include "common/thread_pool.h"

#include "obs/metrics.h"

namespace mrs {

namespace {

// Identifies the pool (and worker slot) owning the current thread, so
// Submit from inside a task can use the fast own-deque path.
thread_local WorkStealingPool* tls_pool = nullptr;
thread_local size_t tls_index = 0;

obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* g =
      obs::Registry::Instance().GetGauge("mrs.pool.queue_depth");
  return g;
}

obs::Counter* StealCounter() {
  static obs::Counter* c =
      obs::Registry::Instance().GetCounter("mrs.pool.steals");
  return c;
}

}  // namespace

WorkStealingPool::WorkStealingPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Deques must all exist before any worker can steal.
  for (size_t i = 0; i < num_threads; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() { Shutdown(); }

bool WorkStealingPool::Submit(Task task) {
  if (closed_.load(std::memory_order_acquire)) return false;
  size_t index = tls_pool == this
                     ? tls_index
                     : next_.fetch_add(1, std::memory_order_relaxed) %
                           workers_.size();
  Worker& w = *workers_[index];
  {
    MutexLock lock(w.mu);
    // Re-check under the deque lock: Shutdown drains every deque's
    // remaining tasks, but only those pushed before workers observe
    // closed_ with an empty queue.  Rejecting here keeps "returns false
    // after Shutdown" exact rather than racy.
    if (closed_.load(std::memory_order_acquire)) return false;
    w.deque.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_acq_rel);
  // The gauge tracks true outstanding work (queued + executing), not raw
  // deque occupancy: a claimed-but-running task — including one stolen
  // and in flight — must still register as load.
  size_t depth = outstanding_.fetch_add(1, std::memory_order_acq_rel) + 1;
  QueueDepthGauge()->Set(static_cast<double>(depth));
  {
    // Empty critical section: pairs with the waiter's predicate check so
    // a worker deciding to sleep cannot miss this submission.
    MutexLock lock(mu_);
  }
  cv_.NotifyOne();
  return true;
}

void WorkStealingPool::Shutdown() {
  {
    MutexLock lock(mu_);
    closed_.store(true, std::memory_order_release);
  }
  cv_.NotifyAll();
  for (const std::unique_ptr<Worker>& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

bool WorkStealingPool::TryPopOwn(size_t index, Task* out) {
  Worker& w = *workers_[index];
  MutexLock lock(w.mu);
  if (w.deque.empty()) return false;
  *out = std::move(w.deque.back());
  w.deque.pop_back();
  return true;
}

bool WorkStealingPool::TrySteal(size_t index, Task* out) {
  size_t n = workers_.size();
  for (size_t step = 1; step < n; ++step) {
    Worker& victim = *workers_[(index + step) % n];
    MutexLock lock(victim.mu);
    if (victim.deque.empty()) continue;
    *out = std::move(victim.deque.front());
    victim.deque.pop_front();
    steals_.fetch_add(1, std::memory_order_relaxed);
    StealCounter()->Inc();
    return true;
  }
  return false;
}

int WorkStealingPool::CurrentWorkerIndex() const {
  return tls_pool == this ? static_cast<int>(tls_index) : -1;
}

void WorkStealingPool::NoteClaimed() {
  size_t left = queued_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  if (left == 0 && closed_.load(std::memory_order_acquire)) {
    // Let sleeping siblings re-evaluate their exit condition.
    { MutexLock lock(mu_); }
    cv_.NotifyAll();
  }
}

void WorkStealingPool::WorkerLoop(size_t index) {
  tls_pool = this;
  tls_index = index;
  for (;;) {
    Task task;
    if (TryPopOwn(index, &task) || TrySteal(index, &task)) {
      NoteClaimed();
      task();
      size_t left = outstanding_.fetch_sub(1, std::memory_order_acq_rel) - 1;
      QueueDepthGauge()->Set(static_cast<double>(left));
      continue;
    }
    MutexLock lock(mu_);
    while (queued_.load(std::memory_order_acquire) == 0 &&
           !closed_.load(std::memory_order_acquire)) {
      cv_.Wait(mu_);
    }
    if (closed_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

}  // namespace mrs
