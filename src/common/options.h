// Command-line option parsing.
//
// Mrs programs are configured entirely by "a short list of command-line
// options" (paper §IV): -I/--mrs-impl selects the implementation, plus
// master/slave connection options.  This parser supports long and short
// flags, typed defaults, and leaves positional arguments for the program.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mrs {

/// A parsed option set plus positional arguments, in the spirit of the
/// (opts, args) pair Mrs hands to a program's __init__.
class Options {
 public:
  bool Has(std::string_view name) const;

  std::string GetString(std::string_view name, std::string_view dflt = "") const;
  int64_t GetInt(std::string_view name, int64_t dflt = 0) const;
  double GetDouble(std::string_view name, double dflt = 0.0) const;
  bool GetBool(std::string_view name, bool dflt = false) const;

  void Set(std::string name, std::string value);

  const std::vector<std::string>& args() const { return args_; }
  std::vector<std::string>* mutable_args() { return &args_; }

 private:
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> args_;
};

/// Declarative option parser.
class OptionParser {
 public:
  /// Declare an option.  `name` is the long form without dashes
  /// ("mrs-impl"); `short_name` is a single char or 0; `takes_value` false
  /// makes it a boolean switch.
  void Add(std::string name, char short_name, bool takes_value,
           std::string help, std::string dflt = "");

  /// Parse argv (excluding argv[0]).  Recognized options are recorded; the
  /// first non-option and everything after "--" become positional args.
  /// Unknown options yield an error.
  Result<Options> Parse(const std::vector<std::string>& argv) const;
  Result<Options> Parse(int argc, const char* const* argv) const;

  /// Usage text listing every declared option.
  std::string Usage(std::string_view program) const;

 private:
  struct Decl {
    std::string name;
    char short_name;
    bool takes_value;
    std::string help;
    std::string dflt;
  };
  const Decl* Find(std::string_view name) const;
  const Decl* FindShort(char c) const;

  std::vector<Decl> decls_;
};

/// Registers the standard Mrs options (--mrs-impl, --mrs-master,
/// --mrs-port, --mrs-num-slaves, --mrs-verbose, --mrs-tmpdir, --mrs-seed)
/// on a parser, matching the paper's "short list of command-line options".
void AddStandardMrsOptions(OptionParser* parser);

}  // namespace mrs
