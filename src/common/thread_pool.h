// Work-stealing worker pool: the shared-memory data plane under
// mrs::ThreadRunner.
//
// Unlike the fixed BlockingQueue pool in common/threadpool.h (one global
// queue, used where FIFO fairness matters, e.g. the HTTP server), this
// pool keeps one deque per worker: a worker pops its own deque from the
// back (LIFO, cache-warm) and, when empty, steals from the front of a
// sibling's deque (FIFO, oldest-first — the classic Blumofe/Leiserson
// discipline).  External submitters distribute round-robin; submissions
// from inside a worker go to that worker's own deque.  Stealing keeps
// all workers busy under skewed task costs (one giant map split next to
// many tiny ones) without any central dispatcher lock on the hot path.
//
// Observability: the pool maintains the "mrs.pool.queue_depth" gauge
// (true outstanding tasks: submitted but not yet finished, so a task a
// worker is executing — or one stolen and in flight — still counts) and
// the "mrs.pool.steals" counter in the process registry, plus
// per-instance accessors for tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mrs {

class WorkStealingPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `num_threads` workers (0 is clamped to 1).
  explicit WorkStealingPool(size_t num_threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Enqueue a task; returns false after Shutdown().  Called from a worker
  /// of this pool, the task lands on that worker's own deque; otherwise it
  /// is distributed round-robin.  Tasks must not throw (wrap and convert
  /// to Status at a higher layer — see ThreadRunner).
  bool Submit(Task task);

  /// Stop accepting work, run everything already queued, join all
  /// workers.  Idempotent; safe to call from any non-worker thread.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Tasks queued but not yet claimed by a worker (approximate).
  size_t QueueDepth() const {
    return queued_.load(std::memory_order_relaxed);
  }

  /// Tasks submitted but not yet finished (queued + executing).  This is
  /// what the "mrs.pool.queue_depth" gauge reports: claiming a task (own
  /// pop or steal) must not make it disappear from the depth signal.
  size_t OutstandingTasks() const {
    return outstanding_.load(std::memory_order_relaxed);
  }

  /// Worker slot of the calling thread in this pool, or -1 when the
  /// caller is not one of this pool's workers.
  int CurrentWorkerIndex() const;

  /// Number of times a worker claimed a task from a sibling's deque.
  int64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    Mutex mu;
    std::deque<Task> deque MRS_GUARDED_BY(mu);
    std::thread thread;
  };

  void WorkerLoop(size_t index);
  bool TryPopOwn(size_t index, Task* out);
  bool TrySteal(size_t index, Task* out);
  /// Bookkeeping after a task leaves a deque; wakes exiting sleepers.
  void NoteClaimed();

  std::vector<std::unique_ptr<Worker>> workers_;

  Mutex mu_;  // sleep/wake only; never held while running tasks
  CondVar cv_;

  std::atomic<size_t> queued_{0};
  std::atomic<size_t> outstanding_{0};  // submitted, not yet finished
  std::atomic<size_t> next_{0};  // round-robin cursor for external submits
  std::atomic<int64_t> steals_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace mrs
