#include "common/retry.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/hash.h"
#include "obs/metrics.h"

namespace mrs {

namespace {
// Retry counters live in the process metrics registry so they show up in
// /metrics and bench snapshots; the accessors below keep the historical
// RpcRetryCount()/FetchRetryCount() API on top of it.
obs::Counter& RpcRetries() {
  static obs::Counter* c =
      obs::Registry::Instance().GetCounter("mrs.retry.rpc");
  return *c;
}
obs::Counter& FetchRetries() {
  static obs::Counter* c =
      obs::Registry::Instance().GetCounter("mrs.retry.fetch");
  return *c;
}

uint64_t NextJitterState() {
  thread_local uint64_t state = [] {
    auto now = std::chrono::steady_clock::now().time_since_epoch().count();
    auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
    return SplitMix64(static_cast<uint64_t>(now) ^ static_cast<uint64_t>(tid));
  }();
  state = SplitMix64(state);
  return state;
}
}  // namespace

bool IsTransportRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kIoError:
    case StatusCode::kDataLoss:
      return true;
    default:
      return false;
  }
}

double BackoffDelaySeconds(const RetryPolicy& policy, int failures) {
  if (failures < 1) failures = 1;
  double delay = policy.initial_backoff_seconds;
  for (int i = 1; i < failures && delay < policy.max_backoff_seconds; ++i) {
    delay *= policy.backoff_multiplier;
  }
  if (delay > policy.max_backoff_seconds) delay = policy.max_backoff_seconds;
  if (policy.jitter_fraction > 0) {
    // Uniform in [1-jitter, 1+jitter] from 53 random bits.
    double u = static_cast<double>(NextJitterState() >> 11) /
               static_cast<double>(1ull << 53);
    delay *= 1.0 + policy.jitter_fraction * (2.0 * u - 1.0);
  }
  return delay < 0 ? 0 : delay;
}

void SleepForSeconds(double seconds) {
  if (seconds <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

int64_t RpcRetryCount() { return RpcRetries().value(); }
int64_t FetchRetryCount() { return FetchRetries().value(); }
void CountRpcRetry() { RpcRetries().Inc(); }
void CountFetchRetry() { FetchRetries().Inc(); }

}  // namespace mrs
