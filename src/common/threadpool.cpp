#include "common/threadpool.h"

namespace mrs {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  return tasks_.Push(std::move(task));
}

void ThreadPool::Shutdown() {
  tasks_.Close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::optional<std::function<void()>> task = tasks_.Pop();
    if (!task.has_value()) return;
    (*task)();
  }
}

}  // namespace mrs
