// Minimal leveled logger.
//
// Mrs logs sparingly (masters and slaves are long-lived event loops); the
// logger is thread-safe, cheap when the level is filtered out, and writes a
// single formatted line per call so interleaved output from worker threads
// stays readable.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace mrs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Default kWarning so test
/// and bench output stays clean; examples raise it to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Thread-safe formatted emission to stderr: "[I 12.345 tag] message".
void LogLine(LogLevel level, std::string_view tag, std::string_view message);

namespace internal {

/// Stream-style accumulator used by the MRS_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
  ~LogMessage() { LogLine(level_, tag_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Usage: MRS_LOG(kInfo, "master") << "slave " << id << " joined";
#define MRS_LOG(level, tag)                                  \
  if (::mrs::LogLevel::level < ::mrs::GetLogLevel()) {       \
  } else                                                     \
    ::mrs::internal::LogMessage(::mrs::LogLevel::level, (tag))

}  // namespace mrs
