// Annotated mutex / condition-variable wrappers.
//
// std::mutex carries no capability attributes, so Clang's thread-safety
// analysis cannot see through it.  mrs::Mutex is a zero-overhead wrapper
// that is a declared capability; MRS_GUARDED_BY(mutex_) fields and
// MRS_REQUIRES(mutex_) helpers then get compiler-checked under
// -Wthread-safety (see common/thread_annotations.h).
//
// CondVar deliberately takes the Mutex itself (annotated REQUIRES) rather
// than a lock object: predicate waits are written as explicit loops,
//
//   MutexLock lock(mutex_);
//   while (!condition_over_guarded_state()) cv_.Wait(mutex_);
//
// which the analysis can follow — every read of guarded state happens
// with the capability held.  (Lambda-predicate cv waits hide those reads
// inside an un-annotatable closure.)
//
// Like thread_annotations.h, this header depends only on the standard
// library so src/obs can use it without layering violations.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace mrs {

class MRS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MRS_ACQUIRE() { mu_.lock(); }
  void Unlock() MRS_RELEASE() { mu_.unlock(); }
  bool TryLock() MRS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for interop (CondVar).  Uses bypass the analysis.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock for the scope of a block (lock_guard replacement).
class MRS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MRS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() MRS_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to mrs::Mutex.  All waits require the caller
/// to hold the mutex (enforced by the analysis); the mutex is atomically
/// released for the duration of the block and re-acquired before return.
class CondVar {
 public:
  void Wait(Mutex& mu) MRS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// False if the relative timeout expired without a notification.
  bool WaitFor(Mutex& mu, double seconds) MRS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    std::cv_status st = cv_.wait_for(lock, std::chrono::duration<double>(seconds));
    lock.release();
    return st == std::cv_status::no_timeout;
  }

  /// False if `deadline` passed without a notification.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      MRS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    std::cv_status st = cv_.wait_until(lock, deadline);
    lock.release();
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mrs
