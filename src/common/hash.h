// Hashing used by the default MapReduce partitioner and the independent
// random-stream derivation.  FNV-1a for short keys; SplitMix64 as a cheap
// integer mixer; a 64-bit Murmur-style finalizer for combining streams.
#pragma once

#include <cstdint>
#include <string_view>

namespace mrs {

/// FNV-1a 64-bit over arbitrary bytes.  This is the default partitioner
/// hash: deterministic across runs (unlike std::hash), so task partitioning
/// is reproducible — a requirement for the serial/mock/parallel equivalence
/// invariant.
constexpr uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// SplitMix64: bijective 64-bit mixer; good avalanche, one multiply chain.
constexpr uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Murmur3 fmix64 finalizer.
constexpr uint64_t Fmix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdull;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ull;
  k ^= k >> 33;
  return k;
}

/// Order-dependent combiner (boost-style but 64-bit).
constexpr uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (Fmix64(v) + 0x9e3779b97f4a7c15ull + (seed << 12) + (seed >> 4));
}

}  // namespace mrs
