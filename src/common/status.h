// Status / Result error model for mrs-cpp.
//
// Mirrors the Mrs design rule that IO and protocol failures are ordinary,
// recoverable events (a slave dying mid-task must not take down the master),
// so they travel as values rather than exceptions.  Exceptions remain legal
// inside parsers and other pure code but are caught at module boundaries.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace mrs {

/// Coarse error taxonomy; fine detail goes in the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,   // transient: retryable (socket reset, worker lost)
  kDeadlineExceeded,
  kCancelled,
  kDataLoss,      // corrupt record, truncated file
  kIoError,       // errno-backed filesystem/socket failure
  kProtocolError, // malformed HTTP/XML-RPC traffic
};

/// Human-readable name for a code ("OK", "IO_ERROR", ...).
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value.  Cheap to copy on the success path (no
/// allocation); errors carry a code and a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use Status::Ok() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True for errors that a retry loop may reasonably retry.
  bool retryable() const {
    return code_ == StatusCode::kUnavailable ||
           code_ == StatusCode::kDeadlineExceeded;
  }

  /// "IO_ERROR: connect refused" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Factory helpers, in the style of absl::*Error.
Status InvalidArgumentError(std::string msg);
Status NotFoundError(std::string msg);
Status AlreadyExistsError(std::string msg);
Status FailedPreconditionError(std::string msg);
Status OutOfRangeError(std::string msg);
Status UnimplementedError(std::string msg);
Status InternalError(std::string msg);
Status UnavailableError(std::string msg);
Status DeadlineExceededError(std::string msg);
Status CancelledError(std::string msg);
Status DataLossError(std::string msg);
Status IoError(std::string msg);
/// IoError with strerror(err) appended.
Status IoErrorFromErrno(std::string_view what, int err);
Status ProtocolError(std::string msg);

/// Result<T>: either a T or an error Status.  `value()` asserts success;
/// check `ok()` (or use ValueOr) first on fallible paths.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(implicit)
  Result(Status status) : v_(std::move(status)) {    // NOLINT(implicit)
    assert(!std::get<Status>(v_).ok() && "Result from OK status has no value");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> v_;
};

/// Propagate an error Status from an expression that yields Status.
#define MRS_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::mrs::Status mrs_status_ = (expr);          \
    if (!mrs_status_.ok()) return mrs_status_;   \
  } while (0)

/// Bind `lhs` to the value of a Result-yielding expression or propagate.
#define MRS_ASSIGN_OR_RETURN(lhs, expr)                   \
  MRS_ASSIGN_OR_RETURN_IMPL_(                             \
      MRS_STATUS_CONCAT_(mrs_result_, __LINE__), lhs, expr)
#define MRS_STATUS_CONCAT_INNER_(a, b) a##b
#define MRS_STATUS_CONCAT_(a, b) MRS_STATUS_CONCAT_INNER_(a, b)
#define MRS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace mrs
