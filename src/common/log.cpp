#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace mrs {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_mutex;

char LevelChar(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return 'D';
    case LogLevel::kInfo: return 'I';
    case LogLevel::kWarning: return 'W';
    case LogLevel::kError: return 'E';
    case LogLevel::kOff: return '?';
  }
  return '?';
}

double SecondsSinceStart() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogLine(LogLevel level, std::string_view tag, std::string_view message) {
  if (level < GetLogLevel()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%c %9.3f %.*s] %.*s\n", LevelChar(level),
               SecondsSinceStart(), static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace mrs
