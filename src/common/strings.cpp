#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace mrs {

std::vector<std::string_view> SplitChar(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string_view> SplitCharLimit(std::string_view s, char sep,
                                             size_t max_fields) {
  std::vector<std::string_view> out;
  if (max_fields == 0) return out;
  size_t start = 0;
  while (out.size() + 1 < max_fields) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) break;
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  out.push_back(s.substr(start));
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

template <typename Parts>
static std::string JoinImpl(const Parts& parts, std::string_view sep) {
  std::string out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  return JoinImpl(parts, sep);
}
std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || s.empty()) return std::nullopt;
  return value;
}

std::optional<uint64_t> ParseUint64(std::string_view s) {
  uint64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end || s.empty()) return std::nullopt;
  return value;
}

std::optional<double> ParseDouble(std::string_view s) {
  // std::from_chars for double is not universally available; use strtod on a
  // NUL-terminated copy with strict full-consumption checking.
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* endp = nullptr;
  double value = std::strtod(buf.c_str(), &endp);
  if (errno == ERANGE || endp != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace mrs
