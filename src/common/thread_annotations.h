// Clang thread-safety-analysis attribute shim.
//
// The runtime's lock discipline (which mutex guards which field, which
// helpers require the lock already held) is documented in code via these
// macros and *checked by the compiler* under Clang's -Wthread-safety
// (enabled by the MRS_THREAD_SAFETY CMake option; a dedicated CI leg
// builds with -Werror=thread-safety).  Under GCC, or any compiler without
// the capability attributes, every macro expands to nothing, so the
// annotations are zero-cost documentation.
//
// This header is pure macros with no includes so it can sit below every
// layer, including src/obs (which otherwise depends on nothing).
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MRS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MRS_THREAD_ANNOTATION
#define MRS_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Class attribute: instances are lockable capabilities (e.g. a mutex).
#define MRS_CAPABILITY(x) MRS_THREAD_ANNOTATION(capability(x))

/// Class attribute: RAII object that acquires on construction and
/// releases on destruction (e.g. MutexLock).
#define MRS_SCOPED_CAPABILITY MRS_THREAD_ANNOTATION(scoped_lockable)

/// Field attribute: reads/writes require holding `x`.
#define MRS_GUARDED_BY(x) MRS_THREAD_ANNOTATION(guarded_by(x))

/// Field attribute: the pointed-to data is guarded by `x`.
#define MRS_PT_GUARDED_BY(x) MRS_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function attribute: callers must already hold the listed capabilities.
#define MRS_REQUIRES(...) \
  MRS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function attribute: callers must NOT hold the listed capabilities
/// (guards against self-deadlock on non-recursive mutexes).
#define MRS_EXCLUDES(...) MRS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function attribute: acquires/releases the listed capabilities.
#define MRS_ACQUIRE(...) \
  MRS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MRS_RELEASE(...) \
  MRS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MRS_TRY_ACQUIRE(...) \
  MRS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Lock-ordering declarations.
#define MRS_ACQUIRED_BEFORE(...) \
  MRS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define MRS_ACQUIRED_AFTER(...) \
  MRS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function attribute: returns a reference to the named capability.
#define MRS_RETURN_CAPABILITY(x) MRS_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking cannot be expressed to the
/// analysis.  Every use must carry a comment justifying why.
#define MRS_NO_THREAD_SAFETY_ANALYSIS \
  MRS_THREAD_ANNOTATION(no_thread_safety_analysis)
