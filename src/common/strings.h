// String utilities shared across the framework: splitting (used by the
// WordCount tokenizer and HTTP header parsing), trimming, case folding,
// numeric parsing with explicit failure, and printf-style formatting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mrs {

/// Split on a single character; empty fields are kept ("a,,b" -> 3 fields).
std::vector<std::string_view> SplitChar(std::string_view s, char sep);

/// Split on runs of ASCII whitespace; no empty fields. Matches the behavior
/// of Python's str.split() with no argument, which WordCount relies on.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

/// Split into at most `max_fields` pieces; the last piece keeps the rest.
std::vector<std::string_view> SplitCharLimit(std::string_view s, char sep,
                                             size_t max_fields);

/// Strip ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

std::string ToLowerAscii(std::string_view s);
std::string ToUpperAscii(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality (HTTP header names).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Join with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
std::string Join(const std::vector<std::string_view>& parts,
                 std::string_view sep);

/// Strict integer parse: the whole string must be a valid number.
std::optional<int64_t> ParseInt64(std::string_view s);
std::optional<uint64_t> ParseUint64(std::string_view s);
std::optional<double> ParseDouble(std::string_view s);

/// printf-style formatting into std::string.
std::string StrPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Replace every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// XML/HTML escaping of '&', '<', '>', '"' (used by the XML writer).
std::string XmlEscape(std::string_view s);

}  // namespace mrs
