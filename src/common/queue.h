// Thread-safe queues.
//
// Mrs's concurrency rule (paper §IV-B) is "processes and pipes, sparing use
// of threads and locks".  In C++ the equivalent discipline is: worker
// threads communicate only through these queues; the owning event loop
// drains them after a wakeup byte arrives on its pipe.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace mrs {

/// Unbounded MPMC blocking queue with shutdown support.  After Close(),
/// producers are rejected and consumers drain remaining items then see
/// nullopt.
template <typename T>
class BlockingQueue {
 public:
  /// Returns false if the queue is closed.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Drain everything currently queued (non-blocking).
  std::deque<T> DrainAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::deque<T> out;
    out.swap(items_);
    return out;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mrs
