#include "pso/swarm.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mrs {
namespace pso {

double SubSwarm::BestValue() const {
  double best = std::numeric_limits<double>::infinity();
  for (const Particle& p : particles) best = std::min(best, p.pbest_val);
  return best;
}

std::span<const double> SubSwarm::BestPosition() const {
  const Particle* best = nullptr;
  for (const Particle& p : particles) {
    if (best == nullptr || p.pbest_val < best->pbest_val) best = &p;
  }
  if (best == nullptr) return {};
  return best->pbest_pos;
}

SubSwarm InitSubSwarm(int64_t id, int num_particles, int dims,
                      const ObjectiveFunction& function, MT19937_64& rng) {
  SubSwarm swarm;
  swarm.id = id;
  swarm.particles.resize(static_cast<size_t>(num_particles));
  double lo = function.lower_bound();
  double hi = function.upper_bound();
  double vrange = (hi - lo) / 2.0;
  for (Particle& p : swarm.particles) {
    p.position.resize(static_cast<size_t>(dims));
    p.velocity.resize(static_cast<size_t>(dims));
    for (int d = 0; d < dims; ++d) {
      p.position[static_cast<size_t>(d)] = rng.NextUniform(lo, hi);
      p.velocity[static_cast<size_t>(d)] = rng.NextUniform(-vrange, vrange);
    }
    p.pbest_pos = p.position;
    p.pbest_val = function.Evaluate(p.position);
    p.nbest_pos = p.pbest_pos;
    p.nbest_val = p.pbest_val;
  }
  // Share the initial best within the subswarm (star neighbourhood).
  double best_val = swarm.BestValue();
  std::vector<double> best_pos(swarm.BestPosition().begin(),
                               swarm.BestPosition().end());
  InjectBest(swarm, best_pos, best_val);
  return swarm;
}

int64_t StepSubSwarm(SubSwarm& swarm, const ObjectiveFunction& function,
                     int iterations, MT19937_64& rng) {
  int64_t evals = 0;
  for (int it = 0; it < iterations; ++it) {
    for (Particle& p : swarm.particles) {
      size_t dims = p.position.size();
      for (size_t d = 0; d < dims; ++d) {
        double u1 = rng.NextDouble() * kPhi;
        double u2 = rng.NextDouble() * kPhi;
        p.velocity[d] = kChi * (p.velocity[d] +
                                u1 * (p.pbest_pos[d] - p.position[d]) +
                                u2 * (p.nbest_pos[d] - p.position[d]));
        p.position[d] += p.velocity[d];
      }
      double value = function.Evaluate(p.position);
      ++evals;
      if (value < p.pbest_val) {
        p.pbest_val = value;
        p.pbest_pos = p.position;
      }
    }
    // Star topology within the subswarm: broadcast the iteration's best.
    const Particle* best = nullptr;
    for (const Particle& p : swarm.particles) {
      if (best == nullptr || p.pbest_val < best->pbest_val) best = &p;
    }
    if (best != nullptr) {
      for (Particle& p : swarm.particles) {
        if (best->pbest_val < p.nbest_val) {
          p.nbest_val = best->pbest_val;
          p.nbest_pos = best->pbest_pos;
        }
      }
    }
    ++swarm.iterations_done;
  }
  return evals;
}

void InjectBest(SubSwarm& swarm, std::span<const double> pos, double val) {
  for (Particle& p : swarm.particles) {
    if (val < p.nbest_val) {
      p.nbest_val = val;
      p.nbest_pos.assign(pos.begin(), pos.end());
    }
  }
}

namespace {
Value PackVector(std::span<const double> v) {
  ValueList list;
  list.reserve(v.size());
  for (double x : v) list.push_back(Value(x));
  return Value(std::move(list));
}

Result<std::vector<double>> UnpackVector(const Value& v) {
  if (!v.is_list()) return DataLossError("expected list of doubles");
  std::vector<double> out;
  out.reserve(v.AsList().size());
  for (const Value& x : v.AsList()) {
    if (!x.is_numeric()) return DataLossError("expected numeric element");
    out.push_back(x.AsDouble());
  }
  return out;
}
}  // namespace

Value PackSubSwarm(const SubSwarm& swarm) {
  ValueList list;
  list.push_back(Value("swarm"));
  list.push_back(Value(swarm.id));
  list.push_back(Value(swarm.iterations_done));
  for (const Particle& p : swarm.particles) {
    ValueList pl;
    pl.push_back(PackVector(p.position));
    pl.push_back(PackVector(p.velocity));
    pl.push_back(PackVector(p.pbest_pos));
    pl.push_back(Value(p.pbest_val));
    pl.push_back(PackVector(p.nbest_pos));
    pl.push_back(Value(p.nbest_val));
    list.push_back(Value(std::move(pl)));
  }
  return Value(std::move(list));
}

Result<SubSwarm> UnpackSubSwarm(const Value& value) {
  if (!value.is_list() || value.AsList().size() < 3) {
    return DataLossError("malformed packed subswarm");
  }
  const ValueList& list = value.AsList();
  if (!list[0].is_string() || list[0].AsString() != "swarm") {
    return DataLossError("packed value is not a subswarm");
  }
  SubSwarm swarm;
  if (!list[1].is_int() || !list[2].is_int()) {
    return DataLossError("malformed subswarm header");
  }
  swarm.id = list[1].AsInt();
  swarm.iterations_done = list[2].AsInt();
  for (size_t i = 3; i < list.size(); ++i) {
    if (!list[i].is_list() || list[i].AsList().size() != 6) {
      return DataLossError("malformed packed particle");
    }
    const ValueList& pl = list[i].AsList();
    Particle p;
    MRS_ASSIGN_OR_RETURN(p.position, UnpackVector(pl[0]));
    MRS_ASSIGN_OR_RETURN(p.velocity, UnpackVector(pl[1]));
    MRS_ASSIGN_OR_RETURN(p.pbest_pos, UnpackVector(pl[2]));
    if (!pl[3].is_numeric()) return DataLossError("bad pbest value");
    p.pbest_val = pl[3].AsDouble();
    MRS_ASSIGN_OR_RETURN(p.nbest_pos, UnpackVector(pl[4]));
    if (!pl[5].is_numeric()) return DataLossError("bad nbest value");
    p.nbest_val = pl[5].AsDouble();
    swarm.particles.push_back(std::move(p));
  }
  return swarm;
}

Value PackBestMessage(std::span<const double> pos, double val) {
  ValueList list;
  list.push_back(Value("msg"));
  list.push_back(Value(val));
  list.push_back(PackVector(pos));
  return Value(std::move(list));
}

bool IsBestMessage(const Value& value) {
  return value.is_list() && !value.AsList().empty() &&
         value.AsList()[0].is_string() &&
         value.AsList()[0].AsString() == "msg";
}

Result<std::pair<std::vector<double>, double>> UnpackBestMessage(
    const Value& value) {
  if (!IsBestMessage(value) || value.AsList().size() != 3) {
    return DataLossError("malformed best message");
  }
  const ValueList& list = value.AsList();
  if (!list[1].is_numeric()) return DataLossError("bad message value");
  MRS_ASSIGN_OR_RETURN(std::vector<double> pos, UnpackVector(list[2]));
  return std::make_pair(std::move(pos), list[1].AsDouble());
}

}  // namespace pso
}  // namespace mrs
