// Particles, subswarms, and standard constriction-coefficient PSO motion.
//
// Motion follows "Defining a standard for particle swarm optimization"
// (Bratton & Kennedy 2007, the paper's ref [9]): constriction chi=0.72984,
// phi1=phi2=2.05, velocity update
//   v <- chi * (v + U(0,phi1)*(pbest - x) + U(0,phi2)*(nbest - x))
// with no explicit velocity clamp.  Randomness comes from an injected
// MT19937-64 so the same stream reproduces the same trajectory in every
// execution implementation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "pso/functions.h"
#include "rng/mt19937_64.h"
#include "ser/value.h"

namespace mrs {
namespace pso {

inline constexpr double kChi = 0.7298437881283576;
inline constexpr double kPhi = 2.05;

struct Particle {
  std::vector<double> position;
  std::vector<double> velocity;
  std::vector<double> pbest_pos;
  double pbest_val = 0.0;
  /// Neighbourhood best seen by this particle.
  std::vector<double> nbest_pos;
  double nbest_val = 0.0;
};

/// A subswarm ("island"/"hive"): the unit of work of one Apiary map task
/// (paper §V-B: "each map task operates on several iterations of a
/// subswarm of particles").
struct SubSwarm {
  int64_t id = 0;
  /// Total inner iterations executed so far (for random-stream derivation
  /// and the evals-vs-quality curve).
  int64_t iterations_done = 0;
  std::vector<Particle> particles;

  /// Best (value, position) over all particles' pbest.
  double BestValue() const;
  std::span<const double> BestPosition() const;
};

/// Initialize a subswarm with positions/velocities uniform in the
/// function's bounds (velocity in [-range, range] halved, per standard
/// PSO), evaluating each particle once.
SubSwarm InitSubSwarm(int64_t id, int num_particles, int dims,
                      const ObjectiveFunction& function, MT19937_64& rng);

/// Run `iterations` of fully-informed-star PSO *within* the subswarm:
/// every particle's neighbourhood is the whole subswarm.  Returns the
/// number of function evaluations performed.
int64_t StepSubSwarm(SubSwarm& swarm, const ObjectiveFunction& function,
                     int iterations, MT19937_64& rng);

/// Inject an external best (from a neighbouring subswarm) into this
/// subswarm's particles' neighbourhood bests.
void InjectBest(SubSwarm& swarm, std::span<const double> pos, double val);

// ---- Serialization to mrs::Value (MapReduce transport) ----------------

Value PackSubSwarm(const SubSwarm& swarm);
Result<SubSwarm> UnpackSubSwarm(const Value& value);

/// A best-position message exchanged between subswarms.
Value PackBestMessage(std::span<const double> pos, double val);
/// Distinguish packed swarms from packed messages.
bool IsBestMessage(const Value& value);
Result<std::pair<std::vector<double>, double>> UnpackBestMessage(
    const Value& value);

}  // namespace pso
}  // namespace mrs
