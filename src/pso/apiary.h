// Apiary PSO: subswarm ("hive") particle swarm optimization as an
// iterative MapReduce program (paper §V-B, refs [10]-[12]).
//
// Each map task advances one or more subswarms by `inner_iterations` of
// standard constriction PSO and emits best-position messages to the
// neighbouring hives on a ring; the reduce task merges each hive with the
// messages addressed to it.  Task granularity is deliberately coarse —
// "a swarm can be divided into several subswarms or islands, and each map
// task operates on several iterations of a subswarm of particles" — which
// is what makes PSO viable on MapReduce at all.
//
// The Bypass implementation runs the same hive operations in a plain loop
// and must produce bit-identical results to every MapReduce
// implementation; tests enforce this.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/job.h"
#include "core/program.h"
#include "pso/functions.h"
#include "pso/swarm.h"

namespace mrs {
namespace pso {

struct ApiaryConfig {
  std::string function = "rosenbrock";
  int dims = 250;
  int num_subswarms = 8;
  int particles_per_subswarm = 5;
  /// Inner PSO iterations per MapReduce round.
  int inner_iterations = 100;
  double target = 1e-5;
  int max_rounds = 100;
  /// Collect and record the global best every this many rounds; the check
  /// overlaps the next round's computation (paper §IV-A).
  int check_interval = 1;
  /// Inter-hive communication topology: "ring" (the Apiary default — each
  /// hive messages its two ring neighbours), "star" (every hive messages
  /// every other hive, maximal coupling), or "isolated" (no messages —
  /// independent islands, the island-model baseline of refs [10][11]).
  std::string topology = "ring";
  /// Iterative/BSP mode: the hive dataset is pinned resident on its
  /// executing runner/slaves each round and only the per-hive best
  /// positions are broadcast between supersteps; the best-exchange
  /// reduce phase disappears entirely.  Bit-identical to replan mode.
  bool iterative = false;
};

/// Ring / star / isolated neighbour sets (excluding sid itself).
Result<std::vector<int64_t>> TopologyNeighbors(const std::string& topology,
                                               int64_t sid, int64_t n);

/// One point of the convergence history (Fig 4 axes: evaluations and
/// seconds).
struct ConvergencePoint {
  int64_t round = 0;
  int64_t evaluations = 0;
  double best = std::numeric_limits<double>::infinity();
  double seconds = 0.0;
};

struct ApiaryResult {
  std::vector<ConvergencePoint> history;
  double best = std::numeric_limits<double>::infinity();
  int64_t rounds = 0;
  int64_t evaluations = 0;
  double seconds = 0.0;
  /// Rounds needed to reach `target`, or -1 if never reached.
  int64_t rounds_to_target = -1;
};

class ApiaryPso : public MapReduce {
 public:
  ApiaryPso();

  ApiaryConfig config;
  /// Filled by Run / Bypass.
  ApiaryResult result;

  void AddOptions(OptionParser* parser) override;
  Status Init(const Options& opts) override;
  Status Run(Job& job) override;
  Status Bypass() override;

 private:
  // Operations (registered as "move" / "best").
  void MoveOp(const Value& key, const Value& value, const Emitter& emit);
  void BestOp(const Value& key, const ValueList& values,
              const ValueEmitter& emit);
  // Iterative-mode operations (registered as "imove" / "ibest"): imove
  // injects the broadcast bests (round r carries round r-1's post-step
  // bests) before stepping, so the hive states entering every step match
  // replan mode exactly; ibest extracts each hive's best for the next
  // round's broadcast.
  void IterMoveOp(const Value& key, const Value& value, const Emitter& emit);
  void IterBestOp(const Value& key, const Value& value, const Emitter& emit);

  Status RunReplan(Job& job);
  Status RunIterative(Job& job);

  std::vector<KeyValue> InitialHives();
  int64_t EvalsPerRound() const {
    return static_cast<int64_t>(config.num_subswarms) *
           config.particles_per_subswarm * config.inner_iterations;
  }

  std::unique_ptr<ObjectiveFunction> function_;
};

/// The plain serial equivalent (used by Bypass and as the Fig 4 "serial"
/// series).  Identical trajectories to the MapReduce path by construction.
Result<ApiaryResult> RunApiarySerial(const ApiaryConfig& config,
                                     uint64_t seed);

}  // namespace pso
}  // namespace mrs
