#include "pso/apiary.h"

#include <algorithm>
#include <deque>

#include "common/clock.h"
#include "common/log.h"

namespace mrs {
namespace pso {

namespace {
// Random-stream tags: the first argument of every Random(...) tuple, so
// streams used for different purposes can never collide.
constexpr uint64_t kInitStream = 0xA91;
constexpr uint64_t kMoveStream = 0xA92;

double BestOfPackedHives(const std::vector<KeyValue>& records) {
  double best = std::numeric_limits<double>::infinity();
  for (const KeyValue& kv : records) {
    Result<SubSwarm> hive = UnpackSubSwarm(kv.value);
    if (hive.ok()) best = std::min(best, hive->BestValue());
  }
  return best;
}
}  // namespace

Result<std::vector<int64_t>> TopologyNeighbors(const std::string& topology,
                                               int64_t sid, int64_t n) {
  std::vector<int64_t> out;
  if (n <= 1 || topology == "isolated") return out;
  if (topology == "ring") {
    int64_t left = (sid + n - 1) % n;
    int64_t right = (sid + 1) % n;
    out.push_back(left);
    if (right != left) out.push_back(right);
    return out;
  }
  if (topology == "star") {
    for (int64_t other = 0; other < n; ++other) {
      if (other != sid) out.push_back(other);
    }
    return out;
  }
  return InvalidArgumentError("unknown topology: " + topology);
}

ApiaryPso::ApiaryPso() {
  RegisterMap("move", [this](const Value& k, const Value& v,
                             const Emitter& e) { MoveOp(k, v, e); });
  RegisterReduce("best", [this](const Value& k, const ValueList& vs,
                                const ValueEmitter& e) { BestOp(k, vs, e); });
  RegisterMap("imove", [this](const Value& k, const Value& v,
                              const Emitter& e) { IterMoveOp(k, v, e); });
  RegisterMap("ibest", [this](const Value& k, const Value& v,
                              const Emitter& e) { IterBestOp(k, v, e); });
}

void ApiaryPso::AddOptions(OptionParser* parser) {
  parser->Add("pso-function", 0, true, "objective function name",
              "rosenbrock");
  parser->Add("pso-dims", 0, true, "problem dimensionality", "250");
  parser->Add("pso-subswarms", 0, true, "number of hives", "8");
  parser->Add("pso-particles", 0, true, "particles per hive", "5");
  parser->Add("pso-inner", 0, true, "inner iterations per round", "100");
  parser->Add("pso-target", 0, true, "convergence target value", "1e-5");
  parser->Add("pso-rounds", 0, true, "maximum MapReduce rounds", "100");
  parser->Add("pso-check", 0, true, "convergence check interval (rounds)",
              "1");
  parser->Add("pso-topology", 0, true,
              "inter-hive topology: ring, star, isolated", "ring");
  parser->Add("pso-iterative", 0, true,
              "1 = iterative/BSP mode (pinned hives + best broadcast)", "0");
}

Status ApiaryPso::Init(const Options& opts) {
  MRS_RETURN_IF_ERROR(MapReduce::Init(opts));
  if (opts.Has("pso-function")) {
    config.function = opts.GetString("pso-function", config.function);
    config.dims = static_cast<int>(opts.GetInt("pso-dims", config.dims));
    config.num_subswarms =
        static_cast<int>(opts.GetInt("pso-subswarms", config.num_subswarms));
    config.particles_per_subswarm =
        static_cast<int>(opts.GetInt("pso-particles",
                                     config.particles_per_subswarm));
    config.inner_iterations =
        static_cast<int>(opts.GetInt("pso-inner", config.inner_iterations));
    config.target = opts.GetDouble("pso-target", config.target);
    config.max_rounds =
        static_cast<int>(opts.GetInt("pso-rounds", config.max_rounds));
    config.check_interval =
        static_cast<int>(opts.GetInt("pso-check", config.check_interval));
    config.topology = opts.GetString("pso-topology", config.topology);
    config.iterative =
        opts.GetInt("pso-iterative", config.iterative ? 1 : 0) != 0;
  }
  // Validate the topology eagerly so a typo fails at startup, not inside
  // a map task.
  MRS_RETURN_IF_ERROR(
      TopologyNeighbors(config.topology, 0, config.num_subswarms).status());
  MRS_ASSIGN_OR_RETURN(function_, MakeFunction(config.function));
  return Status::Ok();
}

void ApiaryPso::MoveOp(const Value& key, const Value& value,
                       const Emitter& emit) {
  Result<SubSwarm> hive_or = UnpackSubSwarm(value);
  if (!hive_or.ok()) {
    MRS_LOG(kError, "apiary") << "bad hive for key " << key.Repr() << ": "
                              << hive_or.status().ToString();
    return;
  }
  SubSwarm hive = std::move(hive_or).value();
  // The stream depends only on (what this hive is, how far it has run) —
  // never on scheduling — so every implementation moves it identically.
  MT19937_64 rng = Random({kMoveStream,
                           static_cast<uint64_t>(hive.iterations_done),
                           static_cast<uint64_t>(hive.id)});
  StepSubSwarm(hive, *function_, config.inner_iterations, rng);

  // Best-position messages to the topology neighbours.
  Result<std::vector<int64_t>> neighbors =
      TopologyNeighbors(config.topology, hive.id, config.num_subswarms);
  if (neighbors.ok()) {
    double best_val = hive.BestValue();
    std::span<const double> best_pos = hive.BestPosition();
    for (int64_t neighbor : *neighbors) {
      emit(Value(neighbor), PackBestMessage(best_pos, best_val));
    }
  } else {
    MRS_LOG(kError, "apiary") << neighbors.status().ToString();
  }
  emit(Value(hive.id), PackSubSwarm(hive));
}

void ApiaryPso::BestOp(const Value& key, const ValueList& values,
                       const ValueEmitter& emit) {
  SubSwarm hive;
  bool have_hive = false;
  std::vector<std::pair<std::vector<double>, double>> messages;
  for (const Value& v : values) {
    if (IsBestMessage(v)) {
      Result<std::pair<std::vector<double>, double>> msg = UnpackBestMessage(v);
      if (msg.ok()) messages.push_back(std::move(msg).value());
      continue;
    }
    Result<SubSwarm> h = UnpackSubSwarm(v);
    if (h.ok()) {
      hive = std::move(h).value();
      have_hive = true;
    }
  }
  if (!have_hive) {
    MRS_LOG(kError, "apiary") << "no hive among values for key "
                              << key.Repr();
    return;
  }
  for (const auto& [pos, val] : messages) InjectBest(hive, pos, val);
  emit(PackSubSwarm(hive));
}

void ApiaryPso::IterMoveOp(const Value& key, const Value& value,
                           const Emitter& emit) {
  Result<SubSwarm> hive_or = UnpackSubSwarm(value);
  if (!hive_or.ok()) {
    MRS_LOG(kError, "apiary") << "bad hive for key " << key.Repr() << ": "
                              << hive_or.status().ToString();
    return;
  }
  SubSwarm hive = std::move(hive_or).value();
  // Inject the previous round's post-step bests before stepping (the
  // first round has no broadcast).  Replan mode injects these same values
  // in the "best" reduce at the end of the previous round, in ascending
  // producing-source order, so iterate senders in ascending hive id:
  // hive g's best reaches us iff our id is in g's neighbour set.
  if (MapReduce::HasBroadcast()) {
    const ValueList& bests = MapReduce::Broadcast().AsList();
    for (int64_t g = 0; g < static_cast<int64_t>(bests.size()); ++g) {
      if (g == hive.id) continue;
      Result<std::vector<int64_t>> neighbors =
          TopologyNeighbors(config.topology, g, config.num_subswarms);
      if (!neighbors.ok()) {
        MRS_LOG(kError, "apiary") << neighbors.status().ToString();
        break;
      }
      bool sends_to_us = false;
      for (int64_t n : *neighbors) sends_to_us = sends_to_us || n == hive.id;
      if (!sends_to_us) continue;
      Result<std::pair<std::vector<double>, double>> msg =
          UnpackBestMessage(bests[static_cast<size_t>(g)]);
      if (msg.ok()) InjectBest(hive, msg->first, msg->second);
    }
  }
  MT19937_64 rng = Random({kMoveStream,
                           static_cast<uint64_t>(hive.iterations_done),
                           static_cast<uint64_t>(hive.id)});
  StepSubSwarm(hive, *function_, config.inner_iterations, rng);
  emit(Value(hive.id), PackSubSwarm(hive));
}

void ApiaryPso::IterBestOp(const Value& key, const Value& value,
                           const Emitter& emit) {
  (void)key;
  Result<SubSwarm> hive = UnpackSubSwarm(value);
  if (!hive.ok()) {
    MRS_LOG(kError, "apiary") << hive.status().ToString();
    return;
  }
  emit(Value(hive->id), PackBestMessage(hive->BestPosition(),
                                        hive->BestValue()));
}

std::vector<KeyValue> ApiaryPso::InitialHives() {
  std::vector<KeyValue> records;
  records.reserve(static_cast<size_t>(config.num_subswarms));
  for (int sid = 0; sid < config.num_subswarms; ++sid) {
    MT19937_64 rng = Random({kInitStream, static_cast<uint64_t>(sid)});
    SubSwarm hive = InitSubSwarm(sid, config.particles_per_subswarm,
                                 config.dims, *function_, rng);
    records.push_back(
        KeyValue{Value(static_cast<int64_t>(sid)), PackSubSwarm(hive)});
  }
  return records;
}

Status ApiaryPso::Run(Job& job) {
  return config.iterative ? RunIterative(job) : RunReplan(job);
}

Status ApiaryPso::RunIterative(Job& job) {
  result = ApiaryResult();
  Stopwatch watch;

  std::vector<KeyValue> initial = InitialHives();
  int64_t evals = static_cast<int64_t>(config.num_subswarms) *
                  config.particles_per_subswarm;  // initialization evals
  result.history.push_back(
      ConvergencePoint{0, evals, BestOfPackedHives(initial),
                       watch.ElapsedSeconds()});

  DataSetPtr data = job.LocalData(std::move(initial), config.num_subswarms);

  DataSetOptions move_options;
  move_options.op_name = "imove";
  move_options.num_splits = config.num_subswarms;
  DataSetOptions best_options;
  best_options.op_name = "ibest";
  best_options.num_splits = 1;

  for (int round = 1; round <= config.max_rounds; ++round) {
    DataSetPtr moved = job.MapData(data, move_options);
    // Pin this round's hives: the "ibest" extraction below and the next
    // round's "imove" both consume them, so resident caching saves the
    // second decode/fetch on every runner slave that hosts a split.
    job.Pin(moved);
    DataSetPtr besty = job.MapData(moved, best_options);
    MRS_ASSIGN_OR_RETURN(std::vector<KeyValue> msgs, job.Collect(besty));
    job.Discard(besty);
    job.Unpin(data);
    job.Discard(data);
    data = moved;
    evals += EvalsPerRound();

    // Dense per-hive best list, indexed by hive id — the next round's
    // broadcast (the only payload a resident round ships).
    std::sort(msgs.begin(), msgs.end(), [](const KeyValue& a,
                                           const KeyValue& b) {
      return a.key.AsInt() < b.key.AsInt();
    });
    if (static_cast<int>(msgs.size()) != config.num_subswarms) {
      return InternalError("ibest returned " + std::to_string(msgs.size()) +
                           " bests for " +
                           std::to_string(config.num_subswarms) + " hives");
    }
    ValueList best_list;
    double best = std::numeric_limits<double>::infinity();
    for (const KeyValue& kv : msgs) {
      MRS_ASSIGN_OR_RETURN(auto msg, UnpackBestMessage(kv.value));
      best = std::min(best, msg.second);
      best_list.push_back(kv.value);
    }
    move_options.broadcast =
        std::make_shared<const Value>(Value(std::move(best_list)));

    // Convergence bookkeeping only on check rounds, exactly like replan
    // mode — the fingerprints must match round for round.
    if (round % config.check_interval == 0 || round == config.max_rounds) {
      result.history.push_back(
          ConvergencePoint{round, evals, best, watch.ElapsedSeconds()});
      result.best = std::min(result.best, best);
      result.rounds = round;
      result.evaluations = evals;
      if (best <= config.target) {
        result.rounds_to_target = round;
        break;
      }
    }
  }
  job.Unpin(data);
  job.Discard(data);
  result.seconds = watch.ElapsedSeconds();
  return Status::Ok();
}

Status ApiaryPso::RunReplan(Job& job) {
  result = ApiaryResult();
  Stopwatch watch;

  std::vector<KeyValue> initial = InitialHives();
  int64_t evals = static_cast<int64_t>(config.num_subswarms) *
                  config.particles_per_subswarm;  // initialization evals
  result.history.push_back(
      ConvergencePoint{0, evals, BestOfPackedHives(initial),
                       watch.ElapsedSeconds()});

  DataSetPtr data = job.LocalData(std::move(initial), config.num_subswarms);

  struct PendingCheck {
    int64_t round;
    int64_t evaluations;
    DataSetPtr dataset;
  };
  std::deque<PendingCheck> checks;
  // Datasets per round, discarded once a later check has been collected.
  std::deque<std::pair<int64_t, std::vector<DataSetPtr>>> live;

  DataSetOptions move_options;
  move_options.op_name = "move";
  move_options.num_splits = config.num_subswarms;
  DataSetOptions best_options;
  best_options.op_name = "best";
  best_options.num_splits = config.num_subswarms;

  auto collect_check = [&](const PendingCheck& check) -> Result<bool> {
    MRS_ASSIGN_OR_RETURN(std::vector<KeyValue> hives,
                         job.Collect(check.dataset));
    double best = BestOfPackedHives(hives);
    result.history.push_back(ConvergencePoint{
        check.round, check.evaluations, best, watch.ElapsedSeconds()});
    result.best = std::min(result.best, best);
    result.rounds = check.round;
    result.evaluations = check.evaluations;
    if (best <= config.target && result.rounds_to_target < 0) {
      result.rounds_to_target = check.round;
    }
    // Free everything strictly older than this check.
    while (!live.empty() && live.front().first < check.round) {
      for (const DataSetPtr& ds : live.front().second) job.Discard(ds);
      live.pop_front();
    }
    return result.rounds_to_target >= 0;
  };

  bool converged = false;
  for (int round = 1; round <= config.max_rounds && !converged; ++round) {
    DataSetPtr moved = job.MapData(data, move_options);
    DataSetPtr next = job.ReduceData(moved, best_options);
    live.push_back({round, {data, moved}});
    data = next;
    evals += EvalsPerRound();

    if (round % config.check_interval == 0 || round == config.max_rounds) {
      checks.push_back(PendingCheck{round, evals, next});
    }
    // Keep up to two checks in flight so the convergence check overlaps
    // the following rounds' computation (paper §IV-A).
    while (checks.size() > 2) {
      MRS_ASSIGN_OR_RETURN(converged, collect_check(checks.front()));
      checks.pop_front();
      if (converged) break;
    }
  }
  while (!checks.empty() && !converged) {
    MRS_ASSIGN_OR_RETURN(converged, collect_check(checks.front()));
    checks.pop_front();
  }
  result.seconds = watch.ElapsedSeconds();
  return Status::Ok();
}

Status ApiaryPso::Bypass() {
  MRS_ASSIGN_OR_RETURN(result, RunApiarySerial(config, seed()));
  return Status::Ok();
}

Result<ApiaryResult> RunApiarySerial(const ApiaryConfig& config,
                                     uint64_t seed) {
  MRS_ASSIGN_OR_RETURN(std::unique_ptr<ObjectiveFunction> function,
                       MakeFunction(config.function));
  RandomStreams streams(seed);
  Stopwatch watch;
  ApiaryResult result;

  std::vector<SubSwarm> hives;
  for (int sid = 0; sid < config.num_subswarms; ++sid) {
    MT19937_64 rng = streams.Get({kInitStream, static_cast<uint64_t>(sid)});
    hives.push_back(InitSubSwarm(sid, config.particles_per_subswarm,
                                 config.dims, *function, rng));
  }
  int64_t evals = static_cast<int64_t>(config.num_subswarms) *
                  config.particles_per_subswarm;
  auto global_best = [&] {
    double best = std::numeric_limits<double>::infinity();
    for (const SubSwarm& h : hives) best = std::min(best, h.BestValue());
    return best;
  };
  result.history.push_back(
      ConvergencePoint{0, evals, global_best(), watch.ElapsedSeconds()});

  int64_t n = config.num_subswarms;
  for (int round = 1; round <= config.max_rounds; ++round) {
    // Phase 1 (the map): advance every hive independently.
    for (SubSwarm& hive : hives) {
      MT19937_64 rng = streams.Get({kMoveStream,
                                static_cast<uint64_t>(hive.iterations_done),
                                static_cast<uint64_t>(hive.id)});
      StepSubSwarm(hive, *function, config.inner_iterations, rng);
    }
    // Phase 2 (the reduce): exchange bests along the topology.  Messages
    // flow *from* each hive *to* its neighbours, so hive h receives from
    // every hive that lists h as a neighbour — symmetric for ring and
    // star, so receiving from one's own neighbour set is equivalent.
    if (n > 1) {
      std::vector<std::pair<std::vector<double>, double>> bests;
      bests.reserve(hives.size());
      for (const SubSwarm& hive : hives) {
        bests.emplace_back(std::vector<double>(hive.BestPosition().begin(),
                                               hive.BestPosition().end()),
                           hive.BestValue());
      }
      for (SubSwarm& hive : hives) {
        MRS_ASSIGN_OR_RETURN(
            std::vector<int64_t> neighbors,
            TopologyNeighbors(config.topology, hive.id, n));
        for (int64_t neighbor : neighbors) {
          InjectBest(hive, bests[static_cast<size_t>(neighbor)].first,
                     bests[static_cast<size_t>(neighbor)].second);
        }
      }
    }
    evals += static_cast<int64_t>(config.num_subswarms) *
             config.particles_per_subswarm * config.inner_iterations;

    if (round % config.check_interval == 0 || round == config.max_rounds) {
      double best = global_best();
      result.history.push_back(
          ConvergencePoint{round, evals, best, watch.ElapsedSeconds()});
      result.best = std::min(result.best, best);
      result.rounds = round;
      result.evaluations = evals;
      if (best <= config.target) {
        result.rounds_to_target = round;
        break;
      }
    }
  }
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace pso
}  // namespace mrs
