// Benchmark objective functions for empirical function optimization.
//
// Rosenbrock in 250 dimensions is the paper's Fig 4 workload
// ("Rosenbrock-250"); the others are the standard PSO benchmark suite
// (Bratton & Kennedy 2007) and exercise the same code paths in tests and
// ablation benches.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace mrs {
namespace pso {

class ObjectiveFunction {
 public:
  virtual ~ObjectiveFunction() = default;

  virtual std::string name() const = 0;
  /// f(x); lower is better, global minimum 0 at `Optimum()` for all
  /// functions in this suite.
  virtual double Evaluate(std::span<const double> x) const = 0;
  /// Symmetric initialization/search bounds per dimension.
  virtual double lower_bound() const = 0;
  virtual double upper_bound() const = 0;
  /// Location of the global minimum (for tests).
  virtual std::vector<double> Optimum(int dims) const;
};

class Sphere final : public ObjectiveFunction {
 public:
  std::string name() const override { return "sphere"; }
  double Evaluate(std::span<const double> x) const override;
  double lower_bound() const override { return -50.0; }
  double upper_bound() const override { return 50.0; }
};

class Rosenbrock final : public ObjectiveFunction {
 public:
  std::string name() const override { return "rosenbrock"; }
  double Evaluate(std::span<const double> x) const override;
  // Standard PSO benchmark domain for Rosenbrock (Bratton & Kennedy 2007).
  double lower_bound() const override { return -30.0; }
  double upper_bound() const override { return 30.0; }
  std::vector<double> Optimum(int dims) const override;
};

class Rastrigin final : public ObjectiveFunction {
 public:
  std::string name() const override { return "rastrigin"; }
  double Evaluate(std::span<const double> x) const override;
  double lower_bound() const override { return -5.12; }
  double upper_bound() const override { return 5.12; }
};

class Griewank final : public ObjectiveFunction {
 public:
  std::string name() const override { return "griewank"; }
  double Evaluate(std::span<const double> x) const override;
  double lower_bound() const override { return -600.0; }
  double upper_bound() const override { return 600.0; }
};

class Ackley final : public ObjectiveFunction {
 public:
  std::string name() const override { return "ackley"; }
  double Evaluate(std::span<const double> x) const override;
  double lower_bound() const override { return -32.0; }
  double upper_bound() const override { return 32.0; }
};

class Schwefel12 final : public ObjectiveFunction {
 public:
  std::string name() const override { return "schwefel12"; }
  double Evaluate(std::span<const double> x) const override;
  double lower_bound() const override { return -65.0; }
  double upper_bound() const override { return 65.0; }
};

/// Construct a function by name ("sphere", "rosenbrock", ...).
Result<std::unique_ptr<ObjectiveFunction>> MakeFunction(
    const std::string& name);

/// All function names known to MakeFunction.
std::vector<std::string> FunctionNames();

}  // namespace pso
}  // namespace mrs
