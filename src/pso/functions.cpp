#include "pso/functions.h"

#include <cmath>

namespace mrs {
namespace pso {

std::vector<double> ObjectiveFunction::Optimum(int dims) const {
  return std::vector<double>(static_cast<size_t>(dims), 0.0);
}

double Sphere::Evaluate(std::span<const double> x) const {
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return sum;
}

double Rosenbrock::Evaluate(std::span<const double> x) const {
  double sum = 0.0;
  for (size_t i = 0; i + 1 < x.size(); ++i) {
    double a = x[i + 1] - x[i] * x[i];
    double b = 1.0 - x[i];
    sum += 100.0 * a * a + b * b;
  }
  return sum;
}

std::vector<double> Rosenbrock::Optimum(int dims) const {
  return std::vector<double>(static_cast<size_t>(dims), 1.0);
}

double Rastrigin::Evaluate(std::span<const double> x) const {
  double sum = 10.0 * static_cast<double>(x.size());
  for (double v : x) sum += v * v - 10.0 * std::cos(2.0 * M_PI * v);
  return sum;
}

double Griewank::Evaluate(std::span<const double> x) const {
  double sum = 0.0;
  double prod = 1.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sum += x[i] * x[i] / 4000.0;
    prod *= std::cos(x[i] / std::sqrt(static_cast<double>(i + 1)));
  }
  return 1.0 + sum - prod;
}

double Ackley::Evaluate(std::span<const double> x) const {
  double sum_sq = 0.0;
  double sum_cos = 0.0;
  for (double v : x) {
    sum_sq += v * v;
    sum_cos += std::cos(2.0 * M_PI * v);
  }
  double n = static_cast<double>(x.size());
  return 20.0 + M_E - 20.0 * std::exp(-0.2 * std::sqrt(sum_sq / n)) -
         std::exp(sum_cos / n);
}

double Schwefel12::Evaluate(std::span<const double> x) const {
  double total = 0.0;
  double prefix = 0.0;
  for (double v : x) {
    prefix += v;
    total += prefix * prefix;
  }
  return total;
}

Result<std::unique_ptr<ObjectiveFunction>> MakeFunction(
    const std::string& name) {
  if (name == "sphere") return std::unique_ptr<ObjectiveFunction>(new Sphere());
  if (name == "rosenbrock") {
    return std::unique_ptr<ObjectiveFunction>(new Rosenbrock());
  }
  if (name == "rastrigin") {
    return std::unique_ptr<ObjectiveFunction>(new Rastrigin());
  }
  if (name == "griewank") {
    return std::unique_ptr<ObjectiveFunction>(new Griewank());
  }
  if (name == "ackley") return std::unique_ptr<ObjectiveFunction>(new Ackley());
  if (name == "schwefel12") {
    return std::unique_ptr<ObjectiveFunction>(new Schwefel12());
  }
  return NotFoundError("unknown objective function: " + name);
}

std::vector<std::string> FunctionNames() {
  return {"sphere", "rosenbrock", "rastrigin", "griewank", "ackley",
          "schwefel12"};
}

}  // namespace pso
}  // namespace mrs
