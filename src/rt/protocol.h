// Master/slave wire protocol (XML-RPC method schemas).
//
// The control channel mirrors Mrs: slaves know only the master's host:port;
// they sign in, long-poll for task assignments, and report completion with
// the URLs of the buckets they produced.  Intermediate data never touches
// the master — peers fetch it directly from the producing slave's built-in
// HTTP server (paper §IV-B).
//
// Methods served by the master at /RPC2:
//   signin(host, data_port[, ping_interval]) -> {slave_id, manifest}
//   get_task(slave_id)                       -> assignment | {kind:"wait"} | {kind:"quit"}
//   task_done(slave_id, dataset_id, source, urls[, attempt])   -> {}
//   task_failed(slave_id, dataset_id, source, message, bad_url[, attempt]) -> {}
//   ping(slave_id)                           -> {}
//   drain(slave_id)                          -> {}
//
// signin admits a slave at any time, including mid-job (elastic
// membership): the master health-checks the advertised data server with a
// GET /status probe before admission, and the reply's `manifest` array
// describes every registered dataset ({dataset_id, op, kind, sources,
// splits, complete}) so a late joiner knows the job it entered.  The
// optional ping_interval (seconds) lets the master scale that slave's
// death threshold to max(slave_timeout, missed_ping_limit * interval).
//
// drain asks the master to retire the calling slave gracefully: no new
// work is assigned, its hosted buckets are re-executed elsewhere through
// lineage, and its next get_task poll answers "quit" (the release).  A
// draining slave that never polls again is reaped at the drain deadline.
//
// task_failed's optional trailing attempt number (the assignment's 1-based
// attempt) makes failure charging idempotent: the transport may deliver a
// report more than once (client-side retry after a lost response), and the
// master charges each attempt at most once by taking the max rather than
// incrementing per delivery.  Old slaves omit it and keep the old
// increment-per-report behaviour.  task_done carries the same attempt
// number; completion dedup needs no arithmetic (the first row to land wins
// and the completed-state guard drops the rest — whether a transport
// retry or the losing twin of a speculative race), so the value is
// informational.
//
// Fault-recovery semantics: the URLs reported via task_done double as the
// job's lineage record — the master notes which slave's data server hosts
// each completed row.  task_failed's bad_url names an input bucket the
// slave could not fetch after retries; the master reacts by invalidating
// the producing tasks (usually the whole dead host's output set) and
// requeueing them, and such environmental failures are not charged
// against the reporting task's attempt budget.  ping doubles as the
// liveness signal the master's monitor thread watches; get_task and
// task_done also refresh it, and a presumed-lost slave that polls again
// is revived.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/task.h"
#include "xmlrpc/value.h"

namespace mrs {

/// A task assignment sent master -> slave.
struct TaskAssignment {
  int dataset_id = 0;
  DataSetKind kind = DataSetKind::kMap;  // kMap or kReduce
  int source = 0;
  /// 1-based execution attempt for this task (prior failures + 1); carried
  /// so slave-side trace spans are labelled per attempt.
  int attempt = 1;
  int num_splits = 1;
  DataSetOptions options;
  std::vector<TaskInputPart> inputs;
  /// Iterative/BSP residency (optional, empty = classic assignment).  When
  /// the task's input dataset is pinned resident, the master stamps its
  /// stable cache key ("r/<input_dataset_id>/<split>") here.  The slave
  /// caches the decoded input under that key after loading it, and on
  /// later supersteps the master sends the key with *no* input parts
  /// (`resident_cached` true) so only the per-round broadcast delta —
  /// carried in `options.broadcast` — crosses the wire.
  std::string resident_key;
  /// True when the master believes the slave already caches resident_key
  /// and has therefore omitted the input parts.
  bool resident_cached = false;

  XmlRpcValue ToRpc() const;
  static Result<TaskAssignment> FromRpc(const XmlRpcValue& v);
};

/// The bad_url scheme a slave uses to report a resident-cache miss (the
/// master promised a cached input the slave no longer has, e.g. after a
/// restart).  The master treats it as environmental — clears the slave's
/// cache bit, re-sends full inputs on the next attempt, and charges no
/// attempt budget.
inline constexpr char kResidentMissScheme[] = "resident://";

/// Encode/decode inline record sets for RPC transport (base64 of the
/// binary record format).
XmlRpcValue RecordsToRpc(const std::vector<KeyValue>& records);
Result<std::vector<KeyValue>> RecordsFromRpc(const XmlRpcValue& v);

}  // namespace mrs
