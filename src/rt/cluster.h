// Cluster assembly: the master/slave Runner and the in-process launcher.
//
// MasterRunner adapts a Master to the Runner interface.  ClusterLauncher
// plays the role of the paper's startup scripts (Program 3): it starts the
// master, "waits for the master to start" (the port handshake), and starts
// N slaves — here as threads speaking real XML-RPC over loopback TCP, each
// with its own program instance exactly as separate processes would have.
#pragma once

#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/job.h"
#include "core/program.h"
#include "core/runner.h"
#include "rt/master.h"
#include "rt/slave.h"

namespace mrs {

/// Runner facade over a Master (used by both the in-process masterslave
/// implementation and the multi-process master implementation).
class MasterRunner final : public Runner {
 public:
  explicit MasterRunner(Master* master) : master_(master) {}

  void Submit(const DataSetPtr& dataset) override { master_->Submit(dataset); }
  Status Wait(const DataSetPtr& dataset) override {
    return master_->Wait(dataset);
  }
  UrlFetcher fetcher() override { return master_->fetcher(); }
  std::string name() const override { return "masterslave"; }
  void Discard(const DataSetPtr& dataset) override {
    master_->Discard(dataset);
  }

 private:
  Master* master_;
};

/// An in-process cluster: one master plus N slave threads.
class ClusterLauncher {
 public:
  struct Config {
    int num_slaves = 2;
    Master::Config master;
    Slave::Config slave;  // master addr is filled in automatically
    /// Inject this many failures into the first slave (tests).
    int first_slave_faults = 0;
    /// Per-slave chaos plans; entry i overrides `slave.faults` for slave
    /// i.  Shorter than num_slaves is fine — the rest keep the default.
    std::vector<Slave::FaultPlan> fault_plans;
  };

  /// Start everything; each slave runs `factory()` initialized with
  /// `opts`, mirroring a fresh process running the same binary.
  static Result<std::unique_ptr<ClusterLauncher>> Start(
      const ProgramFactory& factory, const Options& opts, Config config);

  ~ClusterLauncher();

  Master& master() { return *master_; }

  int num_slaves() const { return static_cast<int>(slaves_.size()); }
  /// Direct handle to slave `i` (chaos tests: Crash(), crashed(), ...).
  Slave& slave(int i) { return *slaves_[static_cast<size_t>(i)]; }

  /// Elastic join: start one more slave (same program factory/options as
  /// Start), optionally with its own chaos plan — may be called while a
  /// job is running.  Returns the new slave's index.  Like the other
  /// mutating methods, callable only from the single controlling thread
  /// (the test body), never concurrently with Shutdown().
  Result<int> AddSlave(const Slave::FaultPlan* faults = nullptr);

  /// Elastic retirement: ask slave `i` to drain.  The master re-homes its
  /// work and releases it; its thread exits once it receives "quit".
  void DrainSlave(int i) { slaves_[static_cast<size_t>(i)]->RequestDrain(); }

  /// Stop slaves and master; join threads.  Idempotent.
  void Shutdown();

  int64_t TotalTasksExecuted() const;

 private:
  ClusterLauncher() = default;

  /// Start slave `i` from the stored factory/options/template.
  Status StartSlave(int i, const Slave::FaultPlan* faults);

  // Kept for AddSlave: a late joiner is built exactly like the originals.
  ProgramFactory factory_;
  Options opts_;
  Config config_;

  std::unique_ptr<Master> master_;
  std::vector<std::unique_ptr<MapReduce>> slave_programs_;
  std::vector<std::unique_ptr<Slave>> slaves_;
  std::vector<std::thread> slave_threads_;
  bool shutdown_ = false;
};

}  // namespace mrs
