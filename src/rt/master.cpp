#include "rt/master.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "common/log.h"
#include "common/retry.h"
#include "common/strings.h"
#include "core/fetch_registry.h"
#include "http/client.h"
#include "obs/endpoints.h"
#include "obs/metrics.h"

namespace mrs {

namespace {
double NowSeconds() { return RealClock::Instance().Now(); }

/// Process-wide mirrors of the scheduler counters, so a live master's
/// activity is visible at /metrics without calling stats().
struct MasterCounters {
  obs::Counter* tasks_assigned;
  obs::Counter* tasks_completed;
  obs::Counter* tasks_failed;
  obs::Counter* affinity_hits;
  obs::Counter* slaves_lost;
  obs::Counter* tasks_invalidated;
  obs::Counter* lineage_recoveries;

  static MasterCounters& Get() {
    static MasterCounters c = [] {
      obs::Registry& reg = obs::Registry::Instance();
      return MasterCounters{reg.GetCounter("mrs.master.tasks_assigned"),
                            reg.GetCounter("mrs.master.tasks_completed"),
                            reg.GetCounter("mrs.master.tasks_failed"),
                            reg.GetCounter("mrs.master.affinity_hits"),
                            reg.GetCounter("mrs.master.slaves_lost"),
                            reg.GetCounter("mrs.master.tasks_invalidated"),
                            reg.GetCounter("mrs.master.lineage_recoveries")};
    }();
    return c;
  }
};

/// Parse "<base>/bucket/<dataset>/<source>/<split>" into its coordinates.
bool ParseBucketUrl(const std::string& url, int* dataset_id, int* source,
                    int* split) {
  size_t pos = url.find("/bucket/");
  if (pos == std::string::npos) return false;
  std::vector<std::string_view> parts =
      SplitChar(std::string_view(url).substr(pos + 8), '/');
  if (parts.size() < 3) return false;
  auto ds = ParseInt64(parts[0]);
  auto src = ParseInt64(parts[1]);
  auto sp = ParseInt64(parts[2]);
  if (!ds.has_value() || !src.has_value() || !sp.has_value()) return false;
  *dataset_id = static_cast<int>(*ds);
  *source = static_cast<int>(*src);
  *split = static_cast<int>(*sp);
  return true;
}
}  // namespace

Master::Master(Config config) : config_(std::move(config)) {}

Result<std::unique_ptr<Master>> Master::Start(Config config) {
  std::unique_ptr<Master> master(new Master(std::move(config)));
  MRS_RETURN_IF_ERROR(master->Init());
  return master;
}

Status Master::Init() {
  dispatcher_.Register("signin", [this](const XmlRpcArray& p) {
    return RpcSignin(p);
  });
  dispatcher_.Register("get_task", [this](const XmlRpcArray& p) {
    return RpcGetTask(p);
  });
  dispatcher_.Register("task_done", [this](const XmlRpcArray& p) {
    return RpcTaskDone(p);
  });
  dispatcher_.Register("task_failed", [this](const XmlRpcArray& p) {
    return RpcTaskFailed(p);
  });
  dispatcher_.Register("ping", [this](const XmlRpcArray& p) {
    return RpcPing(p);
  });

  // Non-RPC paths fall through to the observability endpoints: /metrics,
  // /status (the JSON below), and /trace.
  MRS_ASSIGN_OR_RETURN(
      server_,
      HttpServer::Start(
          config_.host, config_.port,
          dispatcher_.MakeHttpHandler(
              "/RPC2", obs::MakeObsHandler([this] { return StatusJson(); },
                                           nullptr)),
          config_.rpc_workers));
  rpc_retries_base_ = RpcRetryCount();
  fetch_retries_base_ = FetchRetryCount();
  monitor_ = std::thread([this] { MonitorLoop(); });
  MRS_LOG(kInfo, "master") << "listening on " << server_->addr().ToString();
  return Status::Ok();
}

Master::~Master() { Shutdown(); }

void Master::Shutdown() {
  {
    MutexLock lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  sched_cv_.NotifyAll();
  done_cv_.NotifyAll();
  monitor_cv_.NotifyAll();
  if (monitor_.joinable()) monitor_.join();
  // Give slaves a moment to pick up the quit response before the server
  // goes away; they also handle connection failures gracefully.
  server_->Shutdown();
}

Status Master::WaitForSlaves(int n, double timeout_seconds) {
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  MutexLock lock(mutex_);
  while (true) {
    int alive = 0;
    for (const auto& [id, s] : slaves_) {
      if (s.alive) ++alive;
    }
    if (alive >= n || shutdown_) return Status::Ok();
    if (!sched_cv_.WaitUntil(mutex_, deadline)) {
      return DeadlineExceededError("timed out waiting for " +
                                   std::to_string(n) + " slaves");
    }
  }
}

int Master::num_slaves() const {
  MutexLock lock(mutex_);
  int alive = 0;
  for (const auto& [id, s] : slaves_) {
    if (s.alive) ++alive;
  }
  return alive;
}

Master::Stats Master::stats() const {
  MutexLock lock(mutex_);
  Stats out = stats_;
  out.rpc_retries = RpcRetryCount() - rpc_retries_base_;
  out.fetch_retries = FetchRetryCount() - fetch_retries_base_;
  return out;
}

bool Master::WaitUntilStats(const std::function<bool(const Stats&)>& pred,
                            double timeout_seconds) {
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  MutexLock lock(mutex_);
  while (true) {
    Stats snapshot = stats_;
    snapshot.rpc_retries = RpcRetryCount() - rpc_retries_base_;
    snapshot.fetch_retries = FetchRetryCount() - fetch_retries_base_;
    if (pred(snapshot)) return true;
    if (shutdown_) return false;
    // Bounded slices rather than a bare wait: the retry counters are
    // process-wide atomics with no associated cv, so poll them too.
    auto slice = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(25);
    auto until = slice < deadline ? slice : deadline;
    if (!done_cv_.WaitUntil(mutex_, until) &&
        std::chrono::steady_clock::now() >= deadline) {
      Stats last = stats_;
      last.rpc_retries = RpcRetryCount() - rpc_retries_base_;
      last.fetch_retries = FetchRetryCount() - fetch_retries_base_;
      return pred(last);
    }
  }
}

std::string Master::StatusJson() const {
  MutexLock lock(mutex_);
  double now = NowSeconds();
  std::string out;
  out.reserve(1024);
  out += "{\"role\":\"master\",";
  out += "\"job\":{\"ok\":";
  out += job_status_.ok() ? "true" : "false";
  if (!job_status_.ok()) {
    out += ",\"error\":\"" + obs::JsonEscape(job_status_.message()) + "\"";
  }
  out += ",\"shutdown\":";
  out += shutdown_ ? "true" : "false";
  out += "},";

  out += "\"datasets\":[";
  bool first = true;
  for (const auto& [id, ds] : datasets_) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + std::to_string(id);
    out += ",\"kind\":\"";
    out += ds->kind() == DataSetKind::kMap ? "map" : "reduce";
    out += "\",\"sources\":" + std::to_string(ds->num_sources());
    out += ",\"splits\":" + std::to_string(ds->num_splits());
    out += ",\"complete_tasks\":" + std::to_string(ds->NumCompleteTasks());
    out += ",\"complete\":";
    out += ds->Complete() ? "true" : "false";
    out += "}";
  }
  out += "],";
  out += "\"queue\":{\"runnable\":" + std::to_string(runnable_.size());
  out += ",\"waiting\":" + std::to_string(waiting_.size()) + "},";

  out += "\"slaves\":[";
  first = true;
  for (const auto& [id, slave] : slaves_) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + std::to_string(id);
    out += ",\"alive\":";
    out += slave.alive ? "true" : "false";
    out += ",\"data_url\":\"" + obs::JsonEscape(slave.data_url_base) + "\"";
    out += ",\"last_ping_age_seconds\":" +
           std::to_string(now - slave.last_ping);
    out += ",\"running_tasks\":" + std::to_string(slave.running.size());
    out += ",\"hosted_rows\":" + std::to_string(slave.hosted.size());
    out += "}";
  }
  out += "],";

  out += "\"stats\":{";
  out += "\"tasks_assigned\":" + std::to_string(stats_.tasks_assigned);
  out += ",\"tasks_completed\":" + std::to_string(stats_.tasks_completed);
  out += ",\"tasks_failed\":" + std::to_string(stats_.tasks_failed);
  out += ",\"affinity_hits\":" + std::to_string(stats_.affinity_hits);
  out += ",\"slaves_lost\":" + std::to_string(stats_.slaves_lost);
  out += ",\"tasks_invalidated\":" + std::to_string(stats_.tasks_invalidated);
  out += ",\"lineage_recoveries\":" +
         std::to_string(stats_.lineage_recoveries);
  out += ",\"rpc_retries\":" +
         std::to_string(RpcRetryCount() - rpc_retries_base_);
  out += ",\"fetch_retries\":" +
         std::to_string(FetchRetryCount() - fetch_retries_base_);
  out += "}}";
  return out;
}

// ---- Runner-facing ----------------------------------------------------

void Master::Submit(const DataSetPtr& dataset) {
  {
    MutexLock lock(mutex_);
    RegisterDataSetLocked(dataset);
    waiting_.push_back(dataset);
    PromoteRunnableLocked();
  }
  sched_cv_.NotifyAll();
}

Status Master::Wait(const DataSetPtr& dataset) {
  MutexLock lock(mutex_);
  while (!(dataset->Complete() || !job_status_.ok() || shutdown_)) {
    done_cv_.Wait(mutex_);
  }
  if (!job_status_.ok()) return job_status_;
  if (!dataset->Complete()) {
    return CancelledError("master shut down before dataset completed");
  }
  return Status::Ok();
}

void Master::Discard(const DataSetPtr& dataset) {
  MutexLock lock(mutex_);
  datasets_.erase(dataset->id());
  for (auto& [id, slave] : slaves_) {
    slave.pending_discards.push_back(dataset->id());
  }
  dataset->EvictAll();
}

UrlFetcher Master::fetcher() const {
  // Collect()-side fetches get the same transient-failure tolerance as
  // slave-side input fetches.
  return [](const std::string& url) {
    return ResolveUrlWithRetry(url, DefaultFetchRetryPolicy());
  };
}

// ---- Scheduling -------------------------------------------------------

void Master::RegisterDataSetLocked(const DataSetPtr& dataset) {
  for (DataSetPtr ds = dataset; ds != nullptr; ds = ds->input()) {
    datasets_[ds->id()] = ds;
  }
}

bool Master::DataSetReadyLocked(const DataSet& dataset) const {
  return dataset.input() != nullptr && dataset.input()->Complete();
}

void Master::PromoteRunnableLocked() {
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    if (DataSetReadyLocked(**it)) {
      for (int s = 0; s < (*it)->num_sources(); ++s) {
        runnable_.push_back(TaskRef{(*it)->id(), s});
      }
      it = waiting_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<TaskAssignment> Master::BuildAssignmentLocked(const TaskRef& ref) {
  auto it = datasets_.find(ref.dataset_id);
  if (it == datasets_.end()) {
    return NotFoundError("dataset " + std::to_string(ref.dataset_id) +
                         " no longer registered");
  }
  DataSet& ds = *it->second;
  TaskAssignment assignment;
  assignment.dataset_id = ds.id();
  assignment.kind = ds.kind();
  assignment.source = ref.source;
  assignment.num_splits = ds.num_splits();
  // 1-based attempt number: prior failures + 1 (for slave-side spans).
  auto ait = attempts_.find(TaskKey(ref.dataset_id, ref.source));
  assignment.attempt = (ait == attempts_.end() ? 0 : ait->second) + 1;
  assignment.options = ds.options();
  MRS_ASSIGN_OR_RETURN(assignment.inputs,
                       BuildTaskInputParts(*ds.input(), ref.source));
  return assignment;
}

bool Master::PickRunnableLocked(int slave_id, TaskRef* out,
                                bool* affinity_hit) {
  // One pass: prune refs that are stale (dataset discarded, or the task
  // already claimed/recomputed elsewhere), skip refs whose inputs are not
  // complete (they become assignable again once lineage repair finishes),
  // and among the eligible prefer this slave's affinity match.
  bool found = false;
  size_t pick = 0;
  bool affinity_pick = false;
  for (size_t i = 0; i < runnable_.size();) {
    const TaskRef& ref = runnable_[i];
    auto dsit = datasets_.find(ref.dataset_id);
    if (dsit == datasets_.end()) {  // discarded meanwhile
      runnable_.erase(runnable_.begin() + static_cast<long>(i));
      continue;
    }
    DataSet& ds = *dsit->second;
    if (ds.task_state(ref.source) != TaskState::kPending) {
      // Duplicate ref (requeued by several recovery paths) — drop it.
      runnable_.erase(runnable_.begin() + static_cast<long>(i));
      continue;
    }
    if (!DataSetReadyLocked(ds)) {
      ++i;  // inputs lost to a dead slave; wait for the upstream re-run
      continue;
    }
    if (!found) {
      found = true;
      pick = i;
    }
    if (config_.enable_affinity) {
      std::string key =
          ds.options().op_name + ":" + std::to_string(ref.source);
      auto ait = affinity_.find(key);
      if (ait != affinity_.end() && ait->second == slave_id) {
        pick = i;
        affinity_pick = true;
        break;
      }
    }
    ++i;
  }
  if (!found) return false;
  *out = runnable_[pick];
  *affinity_hit = affinity_pick;
  runnable_.erase(runnable_.begin() + static_cast<long>(pick));
  return true;
}

void Master::RequeueTasksOfSlaveLocked(SlaveInfo& slave) {
  for (int64_t key : slave.running) {
    int dataset_id = static_cast<int>(key / 1000000);
    int source = static_cast<int>(key % 1000000);
    auto it = datasets_.find(dataset_id);
    if (it == datasets_.end()) continue;
    if (it->second->task_state(source) == TaskState::kRunning) {
      it->second->ResetTask(source);
      runnable_.push_back(TaskRef{dataset_id, source});
    }
  }
  slave.running.clear();
}

int Master::InvalidateSlaveOutputsLocked(SlaveInfo& slave) {
  int invalidated = 0;
  for (int64_t key : slave.hosted) {
    int dataset_id = static_cast<int>(key / 1000000);
    int source = static_cast<int>(key % 1000000);
    auto it = datasets_.find(dataset_id);
    if (it == datasets_.end()) continue;  // discarded; nothing to recover
    DataSet& ds = *it->second;
    if (ds.task_state(source) != TaskState::kComplete) continue;
    ds.InvalidateTask(source);
    runnable_.push_back(TaskRef{dataset_id, source});
    ++invalidated;
  }
  slave.hosted.clear();
  if (invalidated > 0) {
    stats_.tasks_invalidated += invalidated;
    ++stats_.lineage_recoveries;
    MasterCounters::Get().tasks_invalidated->Inc(invalidated);
    MasterCounters::Get().lineage_recoveries->Inc();
    MRS_LOG(kWarning, "master")
        << "lineage recovery: invalidated " << invalidated
        << " completed tasks hosted on slave " << slave.id
        << "; their sub-DAG will re-run";
  }
  return invalidated;
}

void Master::HandleSlaveLossLocked(SlaveInfo& slave) {
  RequeueTasksOfSlaveLocked(slave);
  InvalidateSlaveOutputsLocked(slave);
  // Corresponding tasks must stop chasing the dead slave, or every future
  // iteration wastes its long poll preferring an unreachable host.
  for (auto it = affinity_.begin(); it != affinity_.end();) {
    if (it->second == slave.id) {
      it = affinity_.erase(it);
    } else {
      ++it;
    }
  }
}

bool Master::RecoverLostUrlLocked(const std::string& bad_url) {
  int dataset_id = 0, source = 0, split = 0;
  if (!ParseBucketUrl(bad_url, &dataset_id, &source, &split)) return false;
  auto dsit = datasets_.find(dataset_id);
  if (dsit == datasets_.end()) return false;
  DataSet& ds = *dsit->second;
  if (source < 0 || source >= ds.num_sources() || split < 0 ||
      split >= ds.num_splits()) {
    return false;
  }
  if (ds.bucket(source, split).url() != bad_url) {
    // The row was already invalidated and recomputed (its URL moved); the
    // reporting task simply ran with a stale assignment.  Environmental —
    // requeue without charging an attempt.
    return true;
  }
  // The unreachable URL is current: its hosting slave's data server is
  // gone.  Treat the host as lost and invalidate everything it serves —
  // every other bucket behind that data server is equally unreachable.
  for (auto& [id, slave] : slaves_) {
    if (!StartsWith(bad_url, slave.data_url_base + "/")) continue;
    if (slave.alive) {
      MRS_LOG(kWarning, "master")
          << "slave " << id << " presumed lost (unreachable bucket "
          << bad_url << ")";
      slave.alive = false;
      ++stats_.slaves_lost;
      MasterCounters::Get().slaves_lost->Inc();
    }
    HandleSlaveLossLocked(slave);
    return true;
  }
  // Host already signed off / unknown: recover just this producing task.
  if (ds.task_state(source) == TaskState::kComplete) {
    ds.InvalidateTask(source);
    runnable_.push_back(TaskRef{dataset_id, source});
    ++stats_.tasks_invalidated;
    ++stats_.lineage_recoveries;
    MasterCounters::Get().tasks_invalidated->Inc();
    MasterCounters::Get().lineage_recoveries->Inc();
    MRS_LOG(kWarning, "master")
        << "re-running lineage task (" << dataset_id << "," << source
        << ") for lost bucket " << bad_url;
  }
  return true;
}

void Master::FailJobLocked(Status status) {
  if (job_status_.ok()) job_status_ = std::move(status);
}

void Master::MonitorLoop() {
  MutexLock lock(mutex_);
  while (!shutdown_) {
    monitor_cv_.WaitFor(mutex_, config_.monitor_interval);
    if (shutdown_) return;
    double now = NowSeconds();
    bool lost = false;
    for (auto& [id, slave] : slaves_) {
      if (slave.alive && now - slave.last_ping > config_.slave_timeout) {
        MRS_LOG(kWarning, "master")
            << "slave " << id << " lost (no contact for "
            << config_.slave_timeout << "s)";
        slave.alive = false;
        ++stats_.slaves_lost;
        MasterCounters::Get().slaves_lost->Inc();
        HandleSlaveLossLocked(slave);
        lost = true;
      }
    }
    // done_cv_ doubles as the stats-changed signal for WaitUntilStats.
    if (lost) {
      sched_cv_.NotifyAll();
      done_cv_.NotifyAll();
    }
  }
}

// ---- RPC handlers -------------------------------------------------------

Result<XmlRpcValue> Master::RpcSignin(const XmlRpcArray& params) {
  if (params.size() != 2) return InvalidArgumentError("signin(host, port)");
  MRS_ASSIGN_OR_RETURN(std::string host, params[0].AsString());
  MRS_ASSIGN_OR_RETURN(int64_t port, params[1].AsInt());
  MutexLock lock(mutex_);
  int id = next_slave_id_++;
  SlaveInfo info;
  info.id = id;
  info.data_url_base = "http://" + host + ":" + std::to_string(port);
  info.last_ping = NowSeconds();
  slaves_[id] = std::move(info);
  MRS_LOG(kInfo, "master") << "slave " << id << " signed in from "
                           << slaves_[id].data_url_base;
  sched_cv_.NotifyAll();
  XmlRpcStruct out;
  out["slave_id"] = XmlRpcValue(static_cast<int64_t>(id));
  return XmlRpcValue(std::move(out));
}

Result<XmlRpcValue> Master::RpcGetTask(const XmlRpcArray& params) {
  if (params.size() != 1) return InvalidArgumentError("get_task(slave_id)");
  MRS_ASSIGN_OR_RETURN(int64_t slave_id, params[0].AsInt());

  MutexLock lock(mutex_);
  auto sit = slaves_.find(static_cast<int>(slave_id));
  if (sit == slaves_.end()) return NotFoundError("unknown slave");
  sit->second.last_ping = NowSeconds();
  sit->second.alive = true;  // a presumed-lost slave may revive

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(config_.long_poll_seconds));
  while (true) {
    if (shutdown_) {
      XmlRpcStruct out;
      out["kind"] = XmlRpcValue("quit");
      return XmlRpcValue(std::move(out));
    }
    TaskRef ref;
    bool affinity_hit = false;
    if (PickRunnableLocked(static_cast<int>(slave_id), &ref, &affinity_hit)) {
      auto dsit = datasets_.find(ref.dataset_id);
      if (dsit == datasets_.end()) continue;           // discarded (raced)
      if (!dsit->second->TryClaimTask(ref.source)) continue;  // raced

      Result<TaskAssignment> assignment = BuildAssignmentLocked(ref);
      if (!assignment.ok()) {
        dsit->second->ResetTask(ref.source);
        FailJobLocked(assignment.status());
        done_cv_.NotifyAll();
        return assignment.status();
      }
      if (affinity_hit) {
        ++stats_.affinity_hits;
        MasterCounters::Get().affinity_hits->Inc();
      }
      sit->second.running.insert(TaskKey(ref.dataset_id, ref.source));
      ++stats_.tasks_assigned;
      MasterCounters::Get().tasks_assigned->Inc();

      XmlRpcValue rpc = assignment->ToRpc();
      // Piggyback discard notices.
      XmlRpcStruct out = *rpc.AsStruct().value();
      XmlRpcArray discards;
      for (int d : sit->second.pending_discards) {
        discards.push_back(XmlRpcValue(static_cast<int64_t>(d)));
      }
      sit->second.pending_discards.clear();
      out["discard"] = XmlRpcValue(std::move(discards));
      return XmlRpcValue(std::move(out));
    }
    if (!sched_cv_.WaitUntil(mutex_, deadline)) {
      XmlRpcStruct out;
      out["kind"] = XmlRpcValue("wait");
      XmlRpcArray discards;
      for (int d : sit->second.pending_discards) {
        discards.push_back(XmlRpcValue(static_cast<int64_t>(d)));
      }
      sit->second.pending_discards.clear();
      out["discard"] = XmlRpcValue(std::move(discards));
      return XmlRpcValue(std::move(out));
    }
  }
}

Result<XmlRpcValue> Master::RpcTaskDone(const XmlRpcArray& params) {
  if (params.size() != 4) {
    return InvalidArgumentError("task_done(slave_id, dataset_id, source, urls)");
  }
  MRS_ASSIGN_OR_RETURN(int64_t slave_id, params[0].AsInt());
  MRS_ASSIGN_OR_RETURN(int64_t dataset_id, params[1].AsInt());
  MRS_ASSIGN_OR_RETURN(int64_t source, params[2].AsInt());
  MRS_ASSIGN_OR_RETURN(const XmlRpcArray* urls, params[3].AsArray());

  MutexLock lock(mutex_);
  auto sit = slaves_.find(static_cast<int>(slave_id));
  if (sit != slaves_.end()) {
    sit->second.last_ping = NowSeconds();
    sit->second.running.erase(TaskKey(static_cast<int>(dataset_id),
                                      static_cast<int>(source)));
  }
  auto dsit = datasets_.find(static_cast<int>(dataset_id));
  if (dsit == datasets_.end()) {
    return XmlRpcValue(XmlRpcStruct{});  // dataset discarded; drop result
  }
  DataSet& ds = *dsit->second;
  if (static_cast<int>(urls->size()) != ds.num_splits()) {
    return ProtocolError("task_done url count mismatch");
  }
  if (ds.task_state(static_cast<int>(source)) == TaskState::kComplete) {
    return XmlRpcValue(XmlRpcStruct{});  // duplicate completion
  }
  std::vector<Bucket> row;
  row.reserve(urls->size());
  bool hosted_here = false;
  for (int p = 0; p < ds.num_splits(); ++p) {
    MRS_ASSIGN_OR_RETURN(std::string url, (*urls)[static_cast<size_t>(p)].AsString());
    if (sit != slaves_.end() &&
        StartsWith(url, sit->second.data_url_base + "/")) {
      hosted_here = true;
    }
    Bucket b(static_cast<int>(source), p);
    b.set_url(std::move(url));
    row.push_back(std::move(b));
  }
  ds.SetRow(static_cast<int>(source), std::move(row));
  ++stats_.tasks_completed;
  MasterCounters::Get().tasks_completed->Inc();

  // Lineage record: this slave's data server now hosts the row.  Shared-
  // filesystem (file://) outputs survive slave death and need no entry.
  if (hosted_here) {
    sit->second.hosted.insert(
        TaskKey(static_cast<int>(dataset_id), static_cast<int>(source)));
  }

  // Record affinity for the corresponding task of the next iteration.
  affinity_[ds.options().op_name + ":" + std::to_string(source)] =
      static_cast<int>(slave_id);

  PromoteRunnableLocked();
  sched_cv_.NotifyAll();
  done_cv_.NotifyAll();
  return XmlRpcValue(XmlRpcStruct{});
}

Result<XmlRpcValue> Master::RpcTaskFailed(const XmlRpcArray& params) {
  if (params.size() != 5 && params.size() != 6) {
    return InvalidArgumentError(
        "task_failed(slave_id, dataset_id, source, message, bad_url"
        "[, attempt])");
  }
  MRS_ASSIGN_OR_RETURN(int64_t slave_id, params[0].AsInt());
  MRS_ASSIGN_OR_RETURN(int64_t dataset_id, params[1].AsInt());
  MRS_ASSIGN_OR_RETURN(int64_t source, params[2].AsInt());
  MRS_ASSIGN_OR_RETURN(std::string message, params[3].AsString());
  MRS_ASSIGN_OR_RETURN(std::string bad_url, params[4].AsString());
  int64_t reported_attempt = 0;  // 0: old slave without attempt numbering
  if (params.size() == 6) {
    MRS_ASSIGN_OR_RETURN(reported_attempt, params[5].AsInt());
  }

  MutexLock lock(mutex_);
  MRS_LOG(kWarning, "master") << "task (" << dataset_id << "," << source
                              << ") failed on slave " << slave_id << ": "
                              << message;
  ++stats_.tasks_failed;
  MasterCounters::Get().tasks_failed->Inc();
  auto sit = slaves_.find(static_cast<int>(slave_id));
  if (sit != slaves_.end()) {
    sit->second.last_ping = NowSeconds();
    sit->second.running.erase(TaskKey(static_cast<int>(dataset_id),
                                      static_cast<int>(source)));
  }

  // Lineage recovery: if the slave could not fetch an input bucket, the
  // producing slave's data is gone — re-run the producers.  Such failures
  // are environmental and do not consume the reporting task's attempts.
  bool environmental = !bad_url.empty() && RecoverLostUrlLocked(bad_url);

  if (!environmental) {
    int64_t key =
        TaskKey(static_cast<int>(dataset_id), static_cast<int>(source));
    // Idempotent charging: the transport may deliver the same report twice
    // (client retry after a lost response), so an attempt-numbered report
    // moves the counter to that attempt rather than incrementing per
    // delivery — a duplicate is a no-op instead of a double charge.
    int attempts;
    if (reported_attempt > 0) {
      int& charged = attempts_[key];
      charged = std::max(charged, static_cast<int>(reported_attempt));
      attempts = charged;
    } else {
      attempts = ++attempts_[key];
    }
    if (attempts >= config_.max_task_attempts) {
      FailJobLocked(InternalError(
          "task (" + std::to_string(dataset_id) + "," +
          std::to_string(source) + ") failed " + std::to_string(attempts) +
          " times (max_task_attempts=" +
          std::to_string(config_.max_task_attempts) +
          "); last error: " + message));
      done_cv_.NotifyAll();
      return XmlRpcValue(XmlRpcStruct{});
    }
  }

  auto dsit = datasets_.find(static_cast<int>(dataset_id));
  if (dsit != datasets_.end()) {
    if (dsit->second->task_state(static_cast<int>(source)) ==
        TaskState::kRunning) {
      dsit->second->ResetTask(static_cast<int>(source));
    }
    runnable_.push_back(
        TaskRef{static_cast<int>(dataset_id), static_cast<int>(source)});
  }

  sched_cv_.NotifyAll();
  done_cv_.NotifyAll();  // stats changed — wake WaitUntilStats
  return XmlRpcValue(XmlRpcStruct{});
}

Result<XmlRpcValue> Master::RpcPing(const XmlRpcArray& params) {
  if (params.size() != 1) return InvalidArgumentError("ping(slave_id)");
  MRS_ASSIGN_OR_RETURN(int64_t slave_id, params[0].AsInt());
  MutexLock lock(mutex_);
  auto sit = slaves_.find(static_cast<int>(slave_id));
  if (sit == slaves_.end()) return NotFoundError("unknown slave");
  sit->second.last_ping = NowSeconds();
  return XmlRpcValue(XmlRpcStruct{});
}

}  // namespace mrs
