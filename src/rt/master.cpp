#include "rt/master.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "common/log.h"
#include "common/retry.h"
#include "common/strings.h"
#include "core/fetch_registry.h"
#include "http/client.h"
#include "obs/endpoints.h"
#include "obs/metrics.h"

namespace mrs {

namespace {
double NowSeconds() { return RealClock::Instance().Now(); }

/// Process-wide mirrors of the scheduler counters, so a live master's
/// activity is visible at /metrics without calling stats().
struct MasterCounters {
  obs::Counter* tasks_assigned;
  obs::Counter* tasks_completed;
  obs::Counter* tasks_failed;
  obs::Counter* affinity_hits;
  obs::Counter* slaves_lost;
  obs::Counter* tasks_invalidated;
  obs::Counter* lineage_recoveries;
  obs::Counter* slaves_joined;
  obs::Counter* mid_job_joins;
  obs::Counter* slaves_drained;
  obs::Counter* slaves_quarantined;
  obs::Counter* probation_returns;
  obs::Counter* tasks_speculated;
  obs::Counter* speculative_wins;
  obs::Counter* resident_hits;
  obs::Counter* resident_misses;

  static MasterCounters& Get() {
    static MasterCounters c = [] {
      obs::Registry& reg = obs::Registry::Instance();
      return MasterCounters{reg.GetCounter("mrs.master.tasks_assigned"),
                            reg.GetCounter("mrs.master.tasks_completed"),
                            reg.GetCounter("mrs.master.tasks_failed"),
                            reg.GetCounter("mrs.master.affinity_hits"),
                            reg.GetCounter("mrs.master.slaves_lost"),
                            reg.GetCounter("mrs.master.tasks_invalidated"),
                            reg.GetCounter("mrs.master.lineage_recoveries"),
                            reg.GetCounter("mrs.master.slaves_joined"),
                            reg.GetCounter("mrs.master.mid_job_joins"),
                            reg.GetCounter("mrs.master.slaves_drained"),
                            reg.GetCounter("mrs.master.slaves_quarantined"),
                            reg.GetCounter("mrs.master.probation_returns"),
                            reg.GetCounter("mrs.master.tasks_speculated"),
                            reg.GetCounter("mrs.master.speculative_wins"),
                            reg.GetCounter("mrs.master.resident_hits"),
                            reg.GetCounter("mrs.master.resident_misses")};
    }();
    return c;
  }
};

/// Parse "<base>/bucket/<dataset>/<source>/<split>" into its coordinates.
bool ParseBucketUrl(const std::string& url, int* dataset_id, int* source,
                    int* split) {
  size_t pos = url.find("/bucket/");
  if (pos == std::string::npos) return false;
  std::vector<std::string_view> parts =
      SplitChar(std::string_view(url).substr(pos + 8), '/');
  if (parts.size() < 3) return false;
  auto ds = ParseInt64(parts[0]);
  auto src = ParseInt64(parts[1]);
  auto sp = ParseInt64(parts[2]);
  if (!ds.has_value() || !src.has_value() || !sp.has_value()) return false;
  *dataset_id = static_cast<int>(*ds);
  *source = static_cast<int>(*src);
  *split = static_cast<int>(*sp);
  return true;
}
}  // namespace

const char* SlaveStateName(SlaveState state) {
  switch (state) {
    case SlaveState::kRegistering:
      return "registering";
    case SlaveState::kHealthy:
      return "healthy";
    case SlaveState::kDraining:
      return "draining";
    case SlaveState::kQuarantined:
      return "quarantined";
    case SlaveState::kGone:
      return "gone";
  }
  return "unknown";
}

Master::Master(Config config) : config_(std::move(config)) {}

Result<std::unique_ptr<Master>> Master::Start(Config config) {
  std::unique_ptr<Master> master(new Master(std::move(config)));
  MRS_RETURN_IF_ERROR(master->Init());
  return master;
}

Status Master::Init() {
  dispatcher_.Register("signin", [this](const XmlRpcArray& p) {
    return RpcSignin(p);
  });
  dispatcher_.Register("get_task", [this](const XmlRpcArray& p) {
    return RpcGetTask(p);
  });
  dispatcher_.Register("task_done", [this](const XmlRpcArray& p) {
    return RpcTaskDone(p);
  });
  dispatcher_.Register("task_failed", [this](const XmlRpcArray& p) {
    return RpcTaskFailed(p);
  });
  dispatcher_.Register("ping", [this](const XmlRpcArray& p) {
    return RpcPing(p);
  });
  dispatcher_.Register("drain", [this](const XmlRpcArray& p) {
    return RpcDrain(p);
  });

  // Non-RPC paths fall through to the observability endpoints: /metrics,
  // /status (the JSON below), and /trace.
  MRS_ASSIGN_OR_RETURN(
      server_,
      HttpServer::Start(
          config_.host, config_.port,
          dispatcher_.MakeHttpHandler(
              "/RPC2", obs::MakeObsHandler([this] { return StatusJson(); },
                                           nullptr)),
          config_.rpc_workers));
  rpc_retries_base_ = RpcRetryCount();
  fetch_retries_base_ = FetchRetryCount();
  monitor_ = std::thread([this] { MonitorLoop(); });
  MRS_LOG(kInfo, "master") << "listening on " << server_->addr().ToString();
  return Status::Ok();
}

Master::~Master() { Shutdown(); }

void Master::Shutdown() {
  {
    MutexLock lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  sched_cv_.NotifyAll();
  done_cv_.NotifyAll();
  monitor_cv_.NotifyAll();
  if (monitor_.joinable()) monitor_.join();
  // Give slaves a moment to pick up the quit response before the server
  // goes away; they also handle connection failures gracefully.
  server_->Shutdown();
}

Status Master::WaitForSlaves(int n, double timeout_seconds) {
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  MutexLock lock(mutex_);
  while (true) {
    int present = 0;
    for (const auto& [id, s] : slaves_) {
      if (s.state != SlaveState::kGone) ++present;
    }
    if (present >= n || shutdown_) return Status::Ok();
    if (!sched_cv_.WaitUntil(mutex_, deadline)) {
      return DeadlineExceededError("timed out waiting for " +
                                   std::to_string(n) + " slaves");
    }
  }
}

int Master::num_slaves() const {
  MutexLock lock(mutex_);
  int present = 0;
  for (const auto& [id, s] : slaves_) {
    if (s.state != SlaveState::kGone) ++present;
  }
  return present;
}

Master::Stats Master::stats() const {
  MutexLock lock(mutex_);
  Stats out = stats_;
  out.rpc_retries = RpcRetryCount() - rpc_retries_base_;
  out.fetch_retries = FetchRetryCount() - fetch_retries_base_;
  return out;
}

bool Master::WaitUntilStats(const std::function<bool(const Stats&)>& pred,
                            double timeout_seconds) {
  auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  MutexLock lock(mutex_);
  while (true) {
    Stats snapshot = stats_;
    snapshot.rpc_retries = RpcRetryCount() - rpc_retries_base_;
    snapshot.fetch_retries = FetchRetryCount() - fetch_retries_base_;
    if (pred(snapshot)) return true;
    if (shutdown_) return false;
    // Bounded slices rather than a bare wait: the retry counters are
    // process-wide atomics with no associated cv, so poll them too.
    auto slice = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(25);
    auto until = slice < deadline ? slice : deadline;
    if (!done_cv_.WaitUntil(mutex_, until) &&
        std::chrono::steady_clock::now() >= deadline) {
      Stats last = stats_;
      last.rpc_retries = RpcRetryCount() - rpc_retries_base_;
      last.fetch_retries = FetchRetryCount() - fetch_retries_base_;
      return pred(last);
    }
  }
}

std::string Master::StatusJson() const {
  MutexLock lock(mutex_);
  double now = NowSeconds();
  std::string out;
  out.reserve(2048);
  out += "{\"role\":\"master\",";
  out += "\"job\":{\"ok\":";
  out += job_status_.ok() ? "true" : "false";
  if (!job_status_.ok()) {
    out += ",\"error\":\"" + obs::JsonEscape(job_status_.message()) + "\"";
  }
  out += ",\"shutdown\":";
  out += shutdown_ ? "true" : "false";
  out += "},";

  out += "\"datasets\":[";
  bool first = true;
  for (const auto& [id, ds] : datasets_) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + std::to_string(id);
    out += ",\"kind\":\"";
    out += ds->kind() == DataSetKind::kMap ? "map" : "reduce";
    out += "\",\"sources\":" + std::to_string(ds->num_sources());
    out += ",\"splits\":" + std::to_string(ds->num_splits());
    out += ",\"complete_tasks\":" + std::to_string(ds->NumCompleteTasks());
    out += ",\"complete\":";
    out += ds->Complete() ? "true" : "false";
    out += "}";
  }
  out += "],";
  out += "\"queue\":{\"runnable\":" + std::to_string(runnable_.size());
  out += ",\"waiting\":" + std::to_string(waiting_.size()) + "},";

  int healthy = 0, draining = 0, quarantined = 0, gone = 0;
  out += "\"slaves\":[";
  first = true;
  for (const auto& [id, slave] : slaves_) {
    switch (slave.state) {
      case SlaveState::kHealthy:
        ++healthy;
        break;
      case SlaveState::kDraining:
        ++draining;
        break;
      case SlaveState::kQuarantined:
        ++quarantined;
        break;
      case SlaveState::kGone:
        ++gone;
        break;
      case SlaveState::kRegistering:
        break;
    }
    if (!first) out += ",";
    first = false;
    out += "{\"id\":" + std::to_string(id);
    out += ",\"state\":\"";
    out += SlaveStateName(slave.state);
    out += "\",\"alive\":";
    out += slave.state != SlaveState::kGone ? "true" : "false";
    out += ",\"data_url\":\"" + obs::JsonEscape(slave.data_url_base) + "\"";
    out += ",\"last_ping_age_seconds\":" +
           std::to_string(now - slave.last_ping);
    out += ",\"ping_interval\":" + std::to_string(slave.ping_interval);
    out += ",\"running_tasks\":" + std::to_string(slave.running.size());
    out += ",\"hosted_rows\":" + std::to_string(slave.hosted.size());
    // Health ledger: the inputs to quarantine and speculation decisions.
    out += ",\"health\":{\"consecutive_failures\":" +
           std::to_string(slave.consecutive_failures);
    out += ",\"task_failures\":" + std::to_string(slave.task_failures);
    out += ",\"task_successes\":" + std::to_string(slave.task_successes);
    out += ",\"latency_ewma_seconds\":" + std::to_string(slave.latency_ewma);
    out += "}}";
  }
  out += "],";

  out += "\"membership\":{\"healthy\":" + std::to_string(healthy);
  out += ",\"draining\":" + std::to_string(draining);
  out += ",\"quarantined\":" + std::to_string(quarantined);
  out += ",\"gone\":" + std::to_string(gone) + "},";

  // Live values of the elasticity knobs, so an operator reading /status
  // sees the thresholds actually in force (not the defaults in a README).
  out += "\"health_config\":{";
  out += "\"slave_timeout\":" + std::to_string(config_.slave_timeout);
  out += ",\"missed_ping_limit\":" + std::to_string(config_.missed_ping_limit);
  out += ",\"drain_timeout\":" + std::to_string(config_.drain_timeout);
  out += ",\"speculation_quantile\":" +
         std::to_string(config_.enable_speculation ? config_.speculation_quantile
                                                   : 0.0);
  out += ",\"speculation_multiplier\":" +
         std::to_string(config_.speculation_multiplier);
  out += ",\"speculation_min_samples\":" +
         std::to_string(config_.speculation_min_samples);
  out += ",\"speculation_min_seconds\":" +
         std::to_string(config_.speculation_min_seconds);
  out += ",\"quarantine_failure_threshold\":" +
         std::to_string(config_.quarantine_failure_threshold);
  out += ",\"probation_seconds\":" + std::to_string(config_.probation_seconds);
  out += "},";

  // Observed per-operation runtime quantiles driving the straggler
  // threshold (bucketed upper bounds, not exact).
  out += "\"op_runtimes\":[";
  first = true;
  for (const auto& [op, hist] : op_hist_) {
    if (!first) out += ",";
    first = false;
    out += "{\"op\":\"" + obs::JsonEscape(op) + "\"";
    out += ",\"count\":" + std::to_string(hist->count());
    out += ",\"p50_seconds\":" + std::to_string(hist->Quantile(0.5));
    out += ",\"p90_seconds\":" + std::to_string(hist->Quantile(0.9));
    out += "}";
  }
  out += "],";

  out += "\"stats\":{";
  out += "\"tasks_assigned\":" + std::to_string(stats_.tasks_assigned);
  out += ",\"tasks_completed\":" + std::to_string(stats_.tasks_completed);
  out += ",\"tasks_failed\":" + std::to_string(stats_.tasks_failed);
  out += ",\"affinity_hits\":" + std::to_string(stats_.affinity_hits);
  out += ",\"slaves_lost\":" + std::to_string(stats_.slaves_lost);
  out += ",\"tasks_invalidated\":" + std::to_string(stats_.tasks_invalidated);
  out += ",\"lineage_recoveries\":" +
         std::to_string(stats_.lineage_recoveries);
  out += ",\"slaves_joined\":" + std::to_string(stats_.slaves_joined);
  out += ",\"mid_job_joins\":" + std::to_string(stats_.mid_job_joins);
  out += ",\"slaves_drained\":" + std::to_string(stats_.slaves_drained);
  out += ",\"slaves_quarantined\":" +
         std::to_string(stats_.slaves_quarantined);
  out += ",\"probation_returns\":" + std::to_string(stats_.probation_returns);
  out += ",\"tasks_speculated\":" + std::to_string(stats_.tasks_speculated);
  out += ",\"speculative_wins\":" + std::to_string(stats_.speculative_wins);
  out += ",\"rpc_retries\":" +
         std::to_string(RpcRetryCount() - rpc_retries_base_);
  out += ",\"fetch_retries\":" +
         std::to_string(FetchRetryCount() - fetch_retries_base_);
  out += "}}";
  return out;
}

// ---- Runner-facing ----------------------------------------------------

void Master::Submit(const DataSetPtr& dataset) {
  {
    MutexLock lock(mutex_);
    RegisterDataSetLocked(dataset);
    waiting_.push_back(dataset);
    PromoteRunnableLocked();
  }
  sched_cv_.NotifyAll();
}

Status Master::Wait(const DataSetPtr& dataset) {
  MutexLock lock(mutex_);
  while (!(dataset->Complete() || !job_status_.ok() || shutdown_)) {
    done_cv_.Wait(mutex_);
  }
  if (!job_status_.ok()) return job_status_;
  if (!dataset->Complete()) {
    return CancelledError("master shut down before dataset completed");
  }
  return Status::Ok();
}

void Master::Discard(const DataSetPtr& dataset) {
  MutexLock lock(mutex_);
  datasets_.erase(dataset->id());
  const std::string resident_prefix =
      "r/" + std::to_string(dataset->id()) + "/";
  for (auto& [id, slave] : slaves_) {
    slave.pending_discards.push_back(dataset->id());
    // An unpinned-then-discarded resident dataset also loses its slave-side
    // caches (the piggybacked discard purges them on the slave).
    for (auto it = slave.resident_keys.begin();
         it != slave.resident_keys.end();) {
      if (StartsWith(*it, resident_prefix)) {
        it = slave.resident_keys.erase(it);
      } else {
        ++it;
      }
    }
  }
  dataset->EvictAll();
}

UrlFetcher Master::fetcher() const {
  // Collect()-side fetches get the same transient-failure tolerance as
  // slave-side input fetches.
  return [](const std::string& url) {
    return ResolveUrlWithRetry(url, DefaultFetchRetryPolicy());
  };
}

// ---- Scheduling -------------------------------------------------------

void Master::RegisterDataSetLocked(const DataSetPtr& dataset) {
  for (DataSetPtr ds = dataset; ds != nullptr; ds = ds->input()) {
    datasets_[ds->id()] = ds;
  }
}

bool Master::DataSetReadyLocked(const DataSet& dataset) const {
  return dataset.input() != nullptr && dataset.input()->Complete();
}

void Master::PromoteRunnableLocked() {
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    if (DataSetReadyLocked(**it)) {
      for (int s = 0; s < (*it)->num_sources(); ++s) {
        runnable_.push_back(TaskRef{(*it)->id(), s});
      }
      it = waiting_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<TaskAssignment> Master::BuildAssignmentLocked(const TaskRef& ref,
                                                     SlaveInfo& slave) {
  auto it = datasets_.find(ref.dataset_id);
  if (it == datasets_.end()) {
    return NotFoundError("dataset " + std::to_string(ref.dataset_id) +
                         " no longer registered");
  }
  DataSet& ds = *it->second;
  TaskAssignment assignment;
  assignment.dataset_id = ds.id();
  assignment.kind = ds.kind();
  assignment.source = ref.source;
  assignment.num_splits = ds.num_splits();
  // 1-based attempt number: prior failures + 1 (for slave-side spans).  A
  // speculative backup shares the original's attempt number — they race
  // toward the same completion, and failure charging dedups on max().
  auto ait = attempts_.find(TaskKey(ref.dataset_id, ref.source));
  assignment.attempt = (ait == attempts_.end() ? 0 : ait->second) + 1;
  assignment.options = ds.options();
  DataSet& in = *ds.input();
  if (in.resident()) {
    assignment.resident_key =
        "r/" + std::to_string(in.id()) + "/" + std::to_string(ref.source);
    if (slave.resident_keys.count(assignment.resident_key) > 0) {
      // The superstep fast path: the slave holds the decoded split from a
      // previous round, so this round ships the cache key and the
      // broadcast delta — nothing else.
      assignment.resident_cached = true;
      ++stats_.resident_hits;
      MasterCounters::Get().resident_hits->Inc();
      return assignment;
    }
  }
  MRS_ASSIGN_OR_RETURN(assignment.inputs,
                       BuildTaskInputParts(*ds.input(), ref.source));
  return assignment;
}

bool Master::PickRunnableLocked(int slave_id, TaskRef* out,
                                bool* affinity_hit) {
  // One pass: prune refs that are stale (dataset discarded, or the task
  // already claimed/recomputed elsewhere), skip refs whose inputs are not
  // complete (they become assignable again once lineage repair finishes),
  // and among the eligible prefer this slave's affinity match.  Normal
  // refs are preferred over speculative backups; a backup is valid only
  // while the original attempt is still running, and never goes to the
  // slave already running the original.
  auto requester = slaves_.find(slave_id);
  bool found = false;
  size_t pick = 0;
  bool affinity_pick = false;
  bool pick_is_speculative = false;
  for (size_t i = 0; i < runnable_.size();) {
    const TaskRef& ref = runnable_[i];
    auto dsit = datasets_.find(ref.dataset_id);
    if (dsit == datasets_.end()) {  // discarded meanwhile
      runnable_.erase(runnable_.begin() + static_cast<long>(i));
      continue;
    }
    DataSet& ds = *dsit->second;
    int64_t key = TaskKey(ref.dataset_id, ref.source);
    if (ref.speculative) {
      if (ds.task_state(ref.source) != TaskState::kRunning) {
        // Original finished or was requeued: the backup is moot.
        speculated_.erase(key);
        runnable_.erase(runnable_.begin() + static_cast<long>(i));
        continue;
      }
      if (requester != slaves_.end() &&
          requester->second.running.count(key) > 0) {
        ++i;  // this slave already runs the original attempt
        continue;
      }
      if (!found) {
        found = true;
        pick = i;
        pick_is_speculative = true;
      }
      ++i;
      continue;
    }
    if (ds.task_state(ref.source) != TaskState::kPending) {
      // Duplicate ref (requeued by several recovery paths) — drop it.
      runnable_.erase(runnable_.begin() + static_cast<long>(i));
      continue;
    }
    if (!DataSetReadyLocked(ds)) {
      ++i;  // inputs lost to a dead slave; wait for the upstream re-run
      continue;
    }
    if (!found || pick_is_speculative) {
      found = true;
      pick = i;
      pick_is_speculative = false;
    }
    if (config_.enable_affinity) {
      std::string akey =
          ds.options().op_name + ":" + std::to_string(ref.source);
      auto ait = affinity_.find(akey);
      if (ait != affinity_.end() && ait->second == slave_id) {
        pick = i;
        affinity_pick = true;
        break;
      }
    }
    ++i;
  }
  if (!found) return false;
  *out = runnable_[pick];
  *affinity_hit = affinity_pick;
  runnable_.erase(runnable_.begin() + static_cast<long>(pick));
  return true;
}

bool Master::AnotherHealthySlaveLocked(int except_id) const {
  for (const auto& [id, s] : slaves_) {
    if (id != except_id && s.state == SlaveState::kHealthy) return true;
  }
  return false;
}

bool Master::AnotherSlaveRunsLocked(int64_t key, int except_id) const {
  for (const auto& [id, s] : slaves_) {
    if (id == except_id || s.state == SlaveState::kGone) continue;
    if (s.running.count(key) > 0) return true;
  }
  return false;
}

double Master::DeathTimeoutLocked(const SlaveInfo& slave) const {
  double timeout = config_.slave_timeout;
  if (slave.ping_interval > 0 && config_.missed_ping_limit > 0) {
    timeout = std::max(timeout, config_.missed_ping_limit *
                                    slave.ping_interval);
  }
  return timeout;
}

void Master::RequeueTasksOfSlaveLocked(SlaveInfo& slave) {
  for (const auto& [key, run] : slave.running) {
    int dataset_id = static_cast<int>(key / 1000000);
    int source = static_cast<int>(key % 1000000);
    auto it = datasets_.find(dataset_id);
    if (it == datasets_.end()) continue;
    if (AnotherSlaveRunsLocked(key, slave.id)) {
      // A twin attempt (speculation) survives on another slave: the task
      // stays running there and that attempt's completion will land.  If
      // the dying attempt was the backup, allow re-speculation.
      if (run.speculative) speculated_.erase(key);
      continue;
    }
    speculated_.erase(key);
    if (it->second->task_state(source) == TaskState::kRunning) {
      it->second->ResetTask(source);
      runnable_.push_back(TaskRef{dataset_id, source});
    }
  }
  slave.running.clear();
}

int Master::InvalidateSlaveOutputsLocked(SlaveInfo& slave) {
  int invalidated = 0;
  for (int64_t key : slave.hosted) {
    int dataset_id = static_cast<int>(key / 1000000);
    int source = static_cast<int>(key % 1000000);
    auto it = datasets_.find(dataset_id);
    if (it == datasets_.end()) continue;  // discarded; nothing to recover
    DataSet& ds = *it->second;
    if (ds.task_state(source) != TaskState::kComplete) continue;
    ds.InvalidateTask(source);
    runnable_.push_back(TaskRef{dataset_id, source});
    ++invalidated;
  }
  slave.hosted.clear();
  if (invalidated > 0) {
    stats_.tasks_invalidated += invalidated;
    ++stats_.lineage_recoveries;
    MasterCounters::Get().tasks_invalidated->Inc(invalidated);
    MasterCounters::Get().lineage_recoveries->Inc();
    MRS_LOG(kWarning, "master")
        << "lineage recovery: invalidated " << invalidated
        << " completed tasks hosted on slave " << slave.id
        << "; their sub-DAG will re-run";
  }
  return invalidated;
}

void Master::HandleSlaveLossLocked(SlaveInfo& slave) {
  RequeueTasksOfSlaveLocked(slave);
  InvalidateSlaveOutputsLocked(slave);
  // Resident caches died with the slave's process state; a revived slave
  // must be re-sent full inputs before its cache bits return.
  slave.resident_keys.clear();
  // Corresponding tasks must stop chasing the departed slave, or every
  // future iteration wastes its long poll preferring an unreachable host.
  for (auto it = affinity_.begin(); it != affinity_.end();) {
    if (it->second == slave.id) {
      it = affinity_.erase(it);
    } else {
      ++it;
    }
  }
}

void Master::QuarantineSlaveLocked(SlaveInfo& slave, double now) {
  slave.state = SlaveState::kQuarantined;
  slave.quarantine_until = now + config_.probation_seconds;
  ++stats_.slaves_quarantined;
  MasterCounters::Get().slaves_quarantined->Inc();
  MRS_LOG(kWarning, "master")
      << "slave " << slave.id << " quarantined after "
      << slave.consecutive_failures
      << " consecutive failures; probation ends in "
      << config_.probation_seconds << "s";
  HandleSlaveLossLocked(slave);
  UpdateMembershipGaugesLocked();
}

bool Master::RecoverLostUrlLocked(const std::string& bad_url) {
  int dataset_id = 0, source = 0, split = 0;
  if (!ParseBucketUrl(bad_url, &dataset_id, &source, &split)) return false;
  auto dsit = datasets_.find(dataset_id);
  if (dsit == datasets_.end()) return false;
  DataSet& ds = *dsit->second;
  if (source < 0 || source >= ds.num_sources() || split < 0 ||
      split >= ds.num_splits()) {
    return false;
  }
  if (ds.bucket(source, split).url() != bad_url) {
    // The row was already invalidated and recomputed (its URL moved); the
    // reporting task simply ran with a stale assignment.  Environmental —
    // requeue without charging an attempt.
    return true;
  }
  // The unreachable URL is current: its hosting slave's data server is
  // gone.  Treat the host as lost and invalidate everything it serves —
  // every other bucket behind that data server is equally unreachable.
  for (auto& [id, slave] : slaves_) {
    if (!StartsWith(bad_url, slave.data_url_base + "/")) continue;
    if (slave.state != SlaveState::kGone) {
      MRS_LOG(kWarning, "master")
          << "slave " << id << " presumed lost (unreachable bucket "
          << bad_url << ")";
      slave.state = SlaveState::kGone;
      ++stats_.slaves_lost;
      MasterCounters::Get().slaves_lost->Inc();
      UpdateMembershipGaugesLocked();
    }
    HandleSlaveLossLocked(slave);
    return true;
  }
  // Host already signed off / unknown: recover just this producing task.
  if (ds.task_state(source) == TaskState::kComplete) {
    ds.InvalidateTask(source);
    runnable_.push_back(TaskRef{dataset_id, source});
    ++stats_.tasks_invalidated;
    ++stats_.lineage_recoveries;
    MasterCounters::Get().tasks_invalidated->Inc();
    MasterCounters::Get().lineage_recoveries->Inc();
    MRS_LOG(kWarning, "master")
        << "re-running lineage task (" << dataset_id << "," << source
        << ") for lost bucket " << bad_url;
  }
  return true;
}

void Master::FailJobLocked(Status status) {
  if (job_status_.ok()) job_status_ = std::move(status);
}

obs::Histogram* Master::OpHistogramLocked(const std::string& op_name) {
  auto& slot = op_hist_[op_name];
  if (slot == nullptr) slot = std::make_unique<obs::Histogram>();
  return slot.get();
}

void Master::UpdateMembershipGaugesLocked() {
  static obs::Gauge* healthy =
      obs::Registry::Instance().GetGauge("mrs.master.slaves_healthy");
  static obs::Gauge* draining =
      obs::Registry::Instance().GetGauge("mrs.master.slaves_draining");
  static obs::Gauge* quarantined =
      obs::Registry::Instance().GetGauge("mrs.master.slaves_quarantined");
  int h = 0, d = 0, q = 0;
  for (const auto& [id, s] : slaves_) {
    if (s.state == SlaveState::kHealthy) ++h;
    if (s.state == SlaveState::kDraining) ++d;
    if (s.state == SlaveState::kQuarantined) ++q;
  }
  healthy->Set(h);
  draining->Set(d);
  quarantined->Set(q);
}

bool Master::ScanForStragglersLocked(double now) {
  bool queued = false;
  for (auto& [id, slave] : slaves_) {
    if (slave.state == SlaveState::kGone) continue;
    for (const auto& [key, run] : slave.running) {
      if (run.speculative) continue;        // never back up a backup
      if (speculated_.count(key) > 0) continue;  // one backup per task
      int dataset_id = static_cast<int>(key / 1000000);
      int source = static_cast<int>(key % 1000000);
      auto dsit = datasets_.find(dataset_id);
      if (dsit == datasets_.end()) continue;
      DataSet& ds = *dsit->second;
      if (ds.task_state(source) != TaskState::kRunning) continue;
      obs::Histogram* hist = OpHistogramLocked(ds.options().op_name);
      if (hist->count() < config_.speculation_min_samples) continue;
      double threshold =
          std::max(config_.speculation_min_seconds,
                   config_.speculation_multiplier *
                       hist->Quantile(config_.speculation_quantile));
      if (now - run.started <= threshold) continue;
      if (!AnotherHealthySlaveLocked(id)) continue;  // nowhere to back up
      runnable_.push_back(TaskRef{dataset_id, source, /*speculative=*/true});
      speculated_.insert(key);
      ++stats_.tasks_speculated;
      MasterCounters::Get().tasks_speculated->Inc();
      MRS_LOG(kWarning, "master")
          << "straggler: task (" << dataset_id << "," << source
          << ") has run " << now - run.started << "s on slave " << id
          << " (threshold " << threshold
          << "s); launching speculative backup";
      queued = true;
    }
  }
  return queued;
}

void Master::MonitorLoop() {
  MutexLock lock(mutex_);
  while (!shutdown_) {
    monitor_cv_.WaitFor(mutex_, config_.monitor_interval);
    if (shutdown_) return;
    double now = NowSeconds();
    bool changed = false;
    for (auto& [id, slave] : slaves_) {
      if (slave.state == SlaveState::kGone) continue;
      if (now - slave.last_ping > DeathTimeoutLocked(slave)) {
        MRS_LOG(kWarning, "master")
            << "slave " << id << " lost (no contact for "
            << DeathTimeoutLocked(slave) << "s)";
        slave.state = SlaveState::kGone;
        ++stats_.slaves_lost;
        MasterCounters::Get().slaves_lost->Inc();
        HandleSlaveLossLocked(slave);
        changed = true;
        continue;
      }
      if (slave.state == SlaveState::kDraining &&
          now >= slave.drain_deadline) {
        // The drained slave never came back for its release — it crashed
        // mid-drain, or its loop wedged.  Force the transition.
        MRS_LOG(kWarning, "master")
            << "slave " << id << " missed its drain deadline; declaring gone";
        slave.state = SlaveState::kGone;
        HandleSlaveLossLocked(slave);  // idempotent: drain already cleaned up
        changed = true;
        continue;
      }
      if (slave.state == SlaveState::kQuarantined &&
          now >= slave.quarantine_until) {
        slave.state = SlaveState::kHealthy;
        slave.consecutive_failures = 0;
        ++stats_.probation_returns;
        MasterCounters::Get().probation_returns->Inc();
        MRS_LOG(kInfo, "master")
            << "slave " << id << " completed probation; re-admitted";
        changed = true;
      }
    }
    if (config_.enable_speculation && config_.speculation_quantile > 0) {
      changed = ScanForStragglersLocked(now) || changed;
    }
    // done_cv_ doubles as the stats-changed signal for WaitUntilStats.
    if (changed) {
      UpdateMembershipGaugesLocked();
      sched_cv_.NotifyAll();
      done_cv_.NotifyAll();
    }
  }
}

// ---- RPC handlers -------------------------------------------------------

Result<XmlRpcValue> Master::RpcSignin(const XmlRpcArray& params) {
  if (params.size() != 2 && params.size() != 3) {
    return InvalidArgumentError("signin(host, data_port[, ping_interval])");
  }
  MRS_ASSIGN_OR_RETURN(std::string host, params[0].AsString());
  MRS_ASSIGN_OR_RETURN(int64_t port, params[1].AsInt());
  double ping_interval = 0;  // old slave without a reported cadence
  if (params.size() == 3) {
    MRS_ASSIGN_OR_RETURN(ping_interval, params[2].AsDouble());
  }
  std::string data_url_base =
      "http://" + host + ":" + std::to_string(port);

  // Health-check the joiner's data plane before admitting it: one GET
  // /status round trip against the address it advertised.  A slave whose
  // data server is unreachable would poison lineage with dead URLs the
  // moment it completed a task — reject it at the door instead.  This is
  // a network call, so it runs without the scheduler lock.
  if (config_.health_check_on_signin) {
    HttpClient probe(SocketAddr{host, static_cast<uint16_t>(port)});
    Result<HttpResponse> resp = probe.Get("/status");
    if (!resp.ok()) {
      MRS_LOG(kWarning, "master")
          << "signin rejected: data server probe of " << data_url_base
          << " failed: " << resp.status().ToString();
      return UnavailableError("signin rejected: data server " +
                              data_url_base + " failed its health probe: " +
                              resp.status().ToString());
    }
    if (resp->status_code != 200) {
      return UnavailableError("signin rejected: data server " +
                              data_url_base + " health probe returned " +
                              std::to_string(resp->status_code));
    }
  }

  MutexLock lock(mutex_);
  int id = next_slave_id_++;
  SlaveInfo info;
  info.id = id;
  info.data_url_base = std::move(data_url_base);
  info.last_ping = NowSeconds();
  info.state = SlaveState::kHealthy;
  info.ping_interval = ping_interval;
  bool mid_job = false;
  for (const auto& [did, ds] : datasets_) {
    if (!ds->Complete()) {
      mid_job = true;
      break;
    }
  }
  ++stats_.slaves_joined;
  MasterCounters::Get().slaves_joined->Inc();
  if (mid_job) {
    ++stats_.mid_job_joins;
    MasterCounters::Get().mid_job_joins->Inc();
  }
  // The dataset/operation manifest: a late joiner learns the shape of the
  // job it is entering.  Its bucket store is empty, which lineage makes
  // safe — it simply hosts nothing until it completes its first task.
  XmlRpcArray manifest;
  for (const auto& [did, ds] : datasets_) {
    XmlRpcStruct entry;
    entry["dataset_id"] = XmlRpcValue(static_cast<int64_t>(did));
    entry["op"] = XmlRpcValue(ds->options().op_name);
    entry["kind"] =
        XmlRpcValue(ds->kind() == DataSetKind::kMap ? "map" : "reduce");
    entry["sources"] = XmlRpcValue(static_cast<int64_t>(ds->num_sources()));
    entry["splits"] = XmlRpcValue(static_cast<int64_t>(ds->num_splits()));
    entry["complete"] = XmlRpcValue(ds->Complete());
    manifest.push_back(XmlRpcValue(std::move(entry)));
  }
  slaves_[id] = std::move(info);
  UpdateMembershipGaugesLocked();
  MRS_LOG(kInfo, "master") << "slave " << id << " signed in from "
                           << slaves_[id].data_url_base
                           << (mid_job ? " (mid-job join)" : "");
  done_cv_.NotifyAll();  // stats changed — wake WaitUntilStats
  sched_cv_.NotifyAll();
  XmlRpcStruct out;
  out["slave_id"] = XmlRpcValue(static_cast<int64_t>(id));
  out["manifest"] = XmlRpcValue(std::move(manifest));
  return XmlRpcValue(std::move(out));
}

Result<XmlRpcValue> Master::RpcGetTask(const XmlRpcArray& params) {
  if (params.size() != 1) return InvalidArgumentError("get_task(slave_id)");
  MRS_ASSIGN_OR_RETURN(int64_t slave_id, params[0].AsInt());

  MutexLock lock(mutex_);
  auto sit = slaves_.find(static_cast<int>(slave_id));
  if (sit == slaves_.end()) return NotFoundError("unknown slave");
  sit->second.last_ping = NowSeconds();
  if (sit->second.state == SlaveState::kGone) {
    // A presumed-lost slave that polls again revives.
    sit->second.state = SlaveState::kHealthy;
    sit->second.consecutive_failures = 0;
    UpdateMembershipGaugesLocked();
    MRS_LOG(kInfo, "master") << "slave " << slave_id
                             << " revived (polled after being declared gone)";
  }

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(config_.long_poll_seconds));
  while (true) {
    if (shutdown_) {
      XmlRpcStruct out;
      out["kind"] = XmlRpcValue("quit");
      return XmlRpcValue(std::move(out));
    }
    if (sit->second.state == SlaveState::kDraining) {
      // Release: its buckets were re-homed when the drain started, so the
      // slave may exit the moment it reads this.
      sit->second.state = SlaveState::kGone;
      UpdateMembershipGaugesLocked();
      MRS_LOG(kInfo, "master") << "slave " << slave_id
                               << " drained; released with quit";
      done_cv_.NotifyAll();
      XmlRpcStruct out;
      out["kind"] = XmlRpcValue("quit");
      return XmlRpcValue(std::move(out));
    }
    TaskRef ref;
    bool affinity_hit = false;
    // Quarantined slaves keep long-polling (it doubles as their liveness
    // signal) but are never assigned work until probation ends.
    if (sit->second.state == SlaveState::kHealthy &&
        PickRunnableLocked(static_cast<int>(slave_id), &ref, &affinity_hit)) {
      auto dsit = datasets_.find(ref.dataset_id);
      if (dsit == datasets_.end()) continue;           // discarded (raced)
      if (!ref.speculative) {
        if (!dsit->second->TryClaimTask(ref.source)) continue;  // raced
      }

      Result<TaskAssignment> assignment =
          BuildAssignmentLocked(ref, sit->second);
      if (!assignment.ok()) {
        if (!ref.speculative) dsit->second->ResetTask(ref.source);
        FailJobLocked(assignment.status());
        done_cv_.NotifyAll();
        return assignment.status();
      }
      if (affinity_hit) {
        ++stats_.affinity_hits;
        MasterCounters::Get().affinity_hits->Inc();
      }
      sit->second.running[TaskKey(ref.dataset_id, ref.source)] =
          RunningTask{NowSeconds(), ref.speculative};
      ++stats_.tasks_assigned;
      MasterCounters::Get().tasks_assigned->Inc();

      XmlRpcValue rpc = assignment->ToRpc();
      // Piggyback discard notices.
      XmlRpcStruct out = *rpc.AsStruct().value();
      XmlRpcArray discards;
      for (int d : sit->second.pending_discards) {
        discards.push_back(XmlRpcValue(static_cast<int64_t>(d)));
      }
      sit->second.pending_discards.clear();
      out["discard"] = XmlRpcValue(std::move(discards));
      return XmlRpcValue(std::move(out));
    }
    if (!sched_cv_.WaitUntil(mutex_, deadline)) {
      XmlRpcStruct out;
      out["kind"] = XmlRpcValue("wait");
      XmlRpcArray discards;
      for (int d : sit->second.pending_discards) {
        discards.push_back(XmlRpcValue(static_cast<int64_t>(d)));
      }
      sit->second.pending_discards.clear();
      out["discard"] = XmlRpcValue(std::move(discards));
      return XmlRpcValue(std::move(out));
    }
  }
}

Result<XmlRpcValue> Master::RpcTaskDone(const XmlRpcArray& params) {
  if (params.size() != 4 && params.size() != 5) {
    return InvalidArgumentError(
        "task_done(slave_id, dataset_id, source, urls[, attempt])");
  }
  MRS_ASSIGN_OR_RETURN(int64_t slave_id, params[0].AsInt());
  MRS_ASSIGN_OR_RETURN(int64_t dataset_id, params[1].AsInt());
  MRS_ASSIGN_OR_RETURN(int64_t source, params[2].AsInt());
  MRS_ASSIGN_OR_RETURN(const XmlRpcArray* urls, params[3].AsArray());
  if (params.size() == 5) {
    // Attempt number: carried for the same idempotency contract as
    // task_failed — duplicate deliveries and losing speculative attempts
    // are both dropped by the completed-state guard below, so the value
    // only matters for logs.
    MRS_RETURN_IF_ERROR(params[4].AsInt().status());
  }

  MutexLock lock(mutex_);
  double now = NowSeconds();
  int64_t key =
      TaskKey(static_cast<int>(dataset_id), static_cast<int>(source));
  auto sit = slaves_.find(static_cast<int>(slave_id));
  bool was_speculative = false;
  double started = 0;
  if (sit != slaves_.end()) {
    sit->second.last_ping = now;
    auto rit = sit->second.running.find(key);
    if (rit != sit->second.running.end()) {
      was_speculative = rit->second.speculative;
      started = rit->second.started;
      sit->second.running.erase(rit);
    }
  }
  auto dsit = datasets_.find(static_cast<int>(dataset_id));
  if (dsit == datasets_.end()) {
    return XmlRpcValue(XmlRpcStruct{});  // dataset discarded; drop result
  }
  DataSet& ds = *dsit->second;
  if (static_cast<int>(urls->size()) != ds.num_splits()) {
    return ProtocolError("task_done url count mismatch");
  }
  if (ds.task_state(static_cast<int>(source)) == TaskState::kComplete) {
    // Duplicate completion: a transport retry, or the losing attempt of a
    // speculative race.  Both attempts are lineage-deterministic, so the
    // first row to land is authoritative and this one is dropped.
    return XmlRpcValue(XmlRpcStruct{});
  }
  std::vector<Bucket> row;
  row.reserve(urls->size());
  bool hosted_here = false;
  for (int p = 0; p < ds.num_splits(); ++p) {
    MRS_ASSIGN_OR_RETURN(std::string url, (*urls)[static_cast<size_t>(p)].AsString());
    if (sit != slaves_.end() &&
        StartsWith(url, sit->second.data_url_base + "/")) {
      hosted_here = true;
    }
    Bucket b(static_cast<int>(source), p);
    b.set_url(std::move(url));
    row.push_back(std::move(b));
  }
  if (hosted_here && sit != slaves_.end() &&
      sit->second.state != SlaveState::kHealthy) {
    // The reporting slave is draining, quarantined, or already declared
    // gone, and the row points at its own (retiring) data server.
    // Accepting it would re-poison lineage with URLs about to vanish —
    // drop it; the task was already requeued when the slave left the
    // healthy pool.  (file:// rows survive the slave and are accepted.)
    MRS_LOG(kInfo, "master")
        << "dropping completion of task (" << dataset_id << "," << source
        << ") from " << SlaveStateName(sit->second.state) << " slave "
        << slave_id << " (self-hosted buckets)";
    return XmlRpcValue(XmlRpcStruct{});
  }
  ds.SetRow(static_cast<int>(source), std::move(row));
  ++stats_.tasks_completed;
  MasterCounters::Get().tasks_completed->Inc();
  speculated_.erase(key);
  if (was_speculative) {
    ++stats_.speculative_wins;
    MasterCounters::Get().speculative_wins->Inc();
    MRS_LOG(kInfo, "master")
        << "speculative backup of task (" << dataset_id << "," << source
        << ") finished first on slave " << slave_id;
  }

  if (sit != slaves_.end()) {
    // Health ledger + runtime sample for the straggler threshold.
    sit->second.consecutive_failures = 0;
    ++sit->second.task_successes;
    if (started > 0) {
      double duration = now - started;
      sit->second.latency_ewma =
          sit->second.task_successes <= 1
              ? duration
              : 0.8 * sit->second.latency_ewma + 0.2 * duration;
      OpHistogramLocked(ds.options().op_name)->Observe(duration);
    }
    // Lineage record: this slave's data server now hosts the row.  Shared-
    // filesystem (file://) outputs survive slave death and need no entry.
    if (hosted_here) {
      sit->second.hosted.insert(key);
    }
    // Residency bookkeeping: a slave that just ran a task over a pinned
    // input now caches that split's decoded records, so the next
    // superstep's assignment can omit the inputs.
    if (ds.input() != nullptr && ds.input()->resident()) {
      sit->second.resident_keys.insert("r/" +
                                       std::to_string(ds.input()->id()) + "/" +
                                       std::to_string(source));
    }
    // Record affinity for the corresponding task of the next iteration —
    // only toward a slave still in the healthy pool.
    if (sit->second.state == SlaveState::kHealthy) {
      affinity_[ds.options().op_name + ":" + std::to_string(source)] =
          static_cast<int>(slave_id);
    }
  }

  PromoteRunnableLocked();
  sched_cv_.NotifyAll();
  done_cv_.NotifyAll();
  return XmlRpcValue(XmlRpcStruct{});
}

Result<XmlRpcValue> Master::RpcTaskFailed(const XmlRpcArray& params) {
  if (params.size() != 5 && params.size() != 6) {
    return InvalidArgumentError(
        "task_failed(slave_id, dataset_id, source, message, bad_url"
        "[, attempt])");
  }
  MRS_ASSIGN_OR_RETURN(int64_t slave_id, params[0].AsInt());
  MRS_ASSIGN_OR_RETURN(int64_t dataset_id, params[1].AsInt());
  MRS_ASSIGN_OR_RETURN(int64_t source, params[2].AsInt());
  MRS_ASSIGN_OR_RETURN(std::string message, params[3].AsString());
  MRS_ASSIGN_OR_RETURN(std::string bad_url, params[4].AsString());
  int64_t reported_attempt = 0;  // 0: old slave without attempt numbering
  if (params.size() == 6) {
    MRS_ASSIGN_OR_RETURN(reported_attempt, params[5].AsInt());
  }

  MutexLock lock(mutex_);
  double now = NowSeconds();
  MRS_LOG(kWarning, "master") << "task (" << dataset_id << "," << source
                              << ") failed on slave " << slave_id << ": "
                              << message;
  ++stats_.tasks_failed;
  MasterCounters::Get().tasks_failed->Inc();
  int64_t key =
      TaskKey(static_cast<int>(dataset_id), static_cast<int>(source));
  auto sit = slaves_.find(static_cast<int>(slave_id));
  if (sit != slaves_.end()) {
    sit->second.last_ping = now;
    sit->second.running.erase(key);
  }

  // Lineage recovery: if the slave could not fetch an input bucket, the
  // producing slave's data is gone — re-run the producers.  Such failures
  // are environmental and do not consume the reporting task's attempts.
  // A resident:// report is the cache-miss analogue: the master promised a
  // cached pinned input the slave no longer holds (restart, eviction) —
  // clear the cache bit so the retry ships full inputs, and charge nothing.
  bool environmental;
  if (StartsWith(bad_url, kResidentMissScheme)) {
    std::string rkey = bad_url.substr(sizeof(kResidentMissScheme) - 1);
    if (sit != slaves_.end()) sit->second.resident_keys.erase(rkey);
    ++stats_.resident_misses;
    MasterCounters::Get().resident_misses->Inc();
    MRS_LOG(kInfo, "master")
        << "slave " << slave_id << " missed resident cache " << rkey
        << "; re-sending full inputs on the next attempt";
    environmental = true;
  } else {
    environmental = !bad_url.empty() && RecoverLostUrlLocked(bad_url);
  }

  if (!environmental) {
    // Health ledger: only failures of the task itself count against the
    // slave; environmental failures indict the departed peer, not the
    // reporter.
    if (sit != slaves_.end()) {
      ++sit->second.task_failures;
      ++sit->second.consecutive_failures;
      if (config_.quarantine_failure_threshold > 0 &&
          sit->second.state == SlaveState::kHealthy &&
          sit->second.consecutive_failures >=
              config_.quarantine_failure_threshold &&
          AnotherHealthySlaveLocked(sit->first)) {
        // Never quarantine the last healthy slave: a degraded worker still
        // beats an empty pool (and the attempt budget bounds the damage).
        QuarantineSlaveLocked(sit->second, now);
      }
    }
    // Idempotent charging: the transport may deliver the same report twice
    // (client retry after a lost response), so an attempt-numbered report
    // moves the counter to that attempt rather than incrementing per
    // delivery — a duplicate is a no-op instead of a double charge.
    int attempts;
    if (reported_attempt > 0) {
      int& charged = attempts_[key];
      charged = std::max(charged, static_cast<int>(reported_attempt));
      attempts = charged;
    } else {
      attempts = ++attempts_[key];
    }
    if (attempts >= config_.max_task_attempts) {
      FailJobLocked(InternalError(
          "task (" + std::to_string(dataset_id) + "," +
          std::to_string(source) + ") failed " + std::to_string(attempts) +
          " times (max_task_attempts=" +
          std::to_string(config_.max_task_attempts) +
          "); last error: " + message));
      done_cv_.NotifyAll();
      return XmlRpcValue(XmlRpcStruct{});
    }
  }

  auto dsit = datasets_.find(static_cast<int>(dataset_id));
  if (dsit != datasets_.end()) {
    if (AnotherSlaveRunsLocked(key, static_cast<int>(slave_id))) {
      // A twin attempt (speculative backup or original) is still running
      // elsewhere; let it finish instead of queueing a third copy.
    } else {
      speculated_.erase(key);
      if (dsit->second->task_state(static_cast<int>(source)) ==
          TaskState::kRunning) {
        dsit->second->ResetTask(static_cast<int>(source));
      }
      runnable_.push_back(
          TaskRef{static_cast<int>(dataset_id), static_cast<int>(source)});
    }
  }

  sched_cv_.NotifyAll();
  done_cv_.NotifyAll();  // stats changed — wake WaitUntilStats
  return XmlRpcValue(XmlRpcStruct{});
}

Result<XmlRpcValue> Master::RpcPing(const XmlRpcArray& params) {
  if (params.size() != 1) return InvalidArgumentError("ping(slave_id)");
  MRS_ASSIGN_OR_RETURN(int64_t slave_id, params[0].AsInt());
  MutexLock lock(mutex_);
  auto sit = slaves_.find(static_cast<int>(slave_id));
  if (sit == slaves_.end()) return NotFoundError("unknown slave");
  sit->second.last_ping = NowSeconds();
  return XmlRpcValue(XmlRpcStruct{});
}

Result<XmlRpcValue> Master::RpcDrain(const XmlRpcArray& params) {
  if (params.size() != 1) return InvalidArgumentError("drain(slave_id)");
  MRS_ASSIGN_OR_RETURN(int64_t slave_id, params[0].AsInt());
  MutexLock lock(mutex_);
  auto sit = slaves_.find(static_cast<int>(slave_id));
  if (sit == slaves_.end()) return NotFoundError("unknown slave");
  SlaveInfo& slave = sit->second;
  slave.last_ping = NowSeconds();
  if (slave.state == SlaveState::kHealthy ||
      slave.state == SlaveState::kQuarantined) {
    slave.state = SlaveState::kDraining;
    slave.drain_deadline = NowSeconds() + config_.drain_timeout;
    ++stats_.slaves_drained;
    MasterCounters::Get().slaves_drained->Inc();
    MRS_LOG(kInfo, "master")
        << "slave " << slave_id << " draining: re-homing "
        << slave.hosted.size() << " hosted rows, requeueing "
        << slave.running.size() << " running tasks";
    // Re-home through lineage: its hosted rows re-execute on the
    // survivors, its running tasks requeue, its affinity entries drop.
    // The slave stays registered (and its data server up) until it polls
    // get_task and receives its release.
    HandleSlaveLossLocked(slave);
    UpdateMembershipGaugesLocked();
    sched_cv_.NotifyAll();
    done_cv_.NotifyAll();
  }
  return XmlRpcValue(XmlRpcStruct{});
}

}  // namespace mrs
