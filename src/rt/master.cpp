#include "rt/master.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"
#include "common/log.h"
#include "common/strings.h"
#include "core/fetch_registry.h"
#include "http/client.h"

namespace mrs {

namespace {
double NowSeconds() { return RealClock::Instance().Now(); }
}  // namespace

Master::Master(Config config) : config_(std::move(config)) {}

Result<std::unique_ptr<Master>> Master::Start(Config config) {
  std::unique_ptr<Master> master(new Master(std::move(config)));
  MRS_RETURN_IF_ERROR(master->Init());
  return master;
}

Status Master::Init() {
  dispatcher_.Register("signin", [this](const XmlRpcArray& p) {
    return RpcSignin(p);
  });
  dispatcher_.Register("get_task", [this](const XmlRpcArray& p) {
    return RpcGetTask(p);
  });
  dispatcher_.Register("task_done", [this](const XmlRpcArray& p) {
    return RpcTaskDone(p);
  });
  dispatcher_.Register("task_failed", [this](const XmlRpcArray& p) {
    return RpcTaskFailed(p);
  });
  dispatcher_.Register("ping", [this](const XmlRpcArray& p) {
    return RpcPing(p);
  });

  MRS_ASSIGN_OR_RETURN(
      server_, HttpServer::Start(config_.host, config_.port,
                                 dispatcher_.MakeHttpHandler("/RPC2"),
                                 config_.rpc_workers));
  monitor_ = std::thread([this] { MonitorLoop(); });
  MRS_LOG(kInfo, "master") << "listening on " << server_->addr().ToString();
  return Status::Ok();
}

Master::~Master() { Shutdown(); }

void Master::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  sched_cv_.notify_all();
  done_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  // Give slaves a moment to pick up the quit response before the server
  // goes away; they also handle connection failures gracefully.
  server_->Shutdown();
}

Status Master::WaitForSlaves(int n, double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  bool ok = sched_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds), [&] {
        int alive = 0;
        for (const auto& [id, s] : slaves_) {
          if (s.alive) ++alive;
        }
        return alive >= n || shutdown_;
      });
  if (!ok) {
    return DeadlineExceededError("timed out waiting for " + std::to_string(n) +
                                 " slaves");
  }
  return Status::Ok();
}

int Master::num_slaves() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int alive = 0;
  for (const auto& [id, s] : slaves_) {
    if (s.alive) ++alive;
  }
  return alive;
}

Master::Stats Master::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// ---- Runner-facing ----------------------------------------------------

void Master::Submit(const DataSetPtr& dataset) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RegisterDataSetLocked(dataset);
    waiting_.push_back(dataset);
    PromoteRunnableLocked();
  }
  sched_cv_.notify_all();
}

Status Master::Wait(const DataSetPtr& dataset) {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] {
    return dataset->Complete() || !job_status_.ok() || shutdown_;
  });
  if (!job_status_.ok()) return job_status_;
  if (!dataset->Complete()) {
    return CancelledError("master shut down before dataset completed");
  }
  return Status::Ok();
}

void Master::Discard(const DataSetPtr& dataset) {
  std::lock_guard<std::mutex> lock(mutex_);
  datasets_.erase(dataset->id());
  for (auto& [id, slave] : slaves_) {
    slave.pending_discards.push_back(dataset->id());
  }
  dataset->EvictAll();
}

UrlFetcher Master::fetcher() const {
  return [](const std::string& url) { return ResolveUrl(url); };
}

// ---- Scheduling -------------------------------------------------------

void Master::RegisterDataSetLocked(const DataSetPtr& dataset) {
  for (DataSetPtr ds = dataset; ds != nullptr; ds = ds->input()) {
    datasets_[ds->id()] = ds;
  }
}

bool Master::DataSetReadyLocked(const DataSet& dataset) const {
  return dataset.input() != nullptr && dataset.input()->Complete();
}

void Master::PromoteRunnableLocked() {
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    if (DataSetReadyLocked(**it)) {
      for (int s = 0; s < (*it)->num_sources(); ++s) {
        runnable_.push_back(TaskRef{(*it)->id(), s});
      }
      it = waiting_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<TaskAssignment> Master::BuildAssignmentLocked(const TaskRef& ref) {
  auto it = datasets_.find(ref.dataset_id);
  if (it == datasets_.end()) {
    return NotFoundError("dataset " + std::to_string(ref.dataset_id) +
                         " no longer registered");
  }
  DataSet& ds = *it->second;
  TaskAssignment assignment;
  assignment.dataset_id = ds.id();
  assignment.kind = ds.kind();
  assignment.source = ref.source;
  assignment.num_splits = ds.num_splits();
  assignment.options = ds.options();
  MRS_ASSIGN_OR_RETURN(assignment.inputs,
                       BuildTaskInputParts(*ds.input(), ref.source));
  return assignment;
}

void Master::RequeueTasksOfSlaveLocked(SlaveInfo& slave) {
  for (int64_t key : slave.running) {
    int dataset_id = static_cast<int>(key / 1000000);
    int source = static_cast<int>(key % 1000000);
    auto it = datasets_.find(dataset_id);
    if (it == datasets_.end()) continue;
    if (it->second->task_state(source) == TaskState::kRunning) {
      it->second->ResetTask(source);
      runnable_.push_back(TaskRef{dataset_id, source});
    }
  }
  slave.running.clear();
}

void Master::FailJobLocked(Status status) {
  if (job_status_.ok()) job_status_ = std::move(status);
}

void Master::MonitorLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (shutdown_) return;
      double now = NowSeconds();
      bool requeued = false;
      for (auto& [id, slave] : slaves_) {
        if (slave.alive && now - slave.last_ping > config_.slave_timeout) {
          MRS_LOG(kWarning, "master")
              << "slave " << id << " lost (no contact for "
              << config_.slave_timeout << "s)";
          slave.alive = false;
          ++stats_.slaves_lost;
          RequeueTasksOfSlaveLocked(slave);
          requeued = true;
        }
      }
      if (requeued) sched_cv_.notify_all();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

// ---- RPC handlers -------------------------------------------------------

Result<XmlRpcValue> Master::RpcSignin(const XmlRpcArray& params) {
  if (params.size() != 2) return InvalidArgumentError("signin(host, port)");
  MRS_ASSIGN_OR_RETURN(std::string host, params[0].AsString());
  MRS_ASSIGN_OR_RETURN(int64_t port, params[1].AsInt());
  std::lock_guard<std::mutex> lock(mutex_);
  int id = next_slave_id_++;
  SlaveInfo info;
  info.id = id;
  info.data_url_base = "http://" + host + ":" + std::to_string(port);
  info.last_ping = NowSeconds();
  slaves_[id] = std::move(info);
  MRS_LOG(kInfo, "master") << "slave " << id << " signed in from "
                           << slaves_[id].data_url_base;
  sched_cv_.notify_all();
  XmlRpcStruct out;
  out["slave_id"] = XmlRpcValue(static_cast<int64_t>(id));
  return XmlRpcValue(std::move(out));
}

Result<XmlRpcValue> Master::RpcGetTask(const XmlRpcArray& params) {
  if (params.size() != 1) return InvalidArgumentError("get_task(slave_id)");
  MRS_ASSIGN_OR_RETURN(int64_t slave_id, params[0].AsInt());

  std::unique_lock<std::mutex> lock(mutex_);
  auto sit = slaves_.find(static_cast<int>(slave_id));
  if (sit == slaves_.end()) return NotFoundError("unknown slave");
  sit->second.last_ping = NowSeconds();
  sit->second.alive = true;

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(config_.long_poll_seconds));
  while (true) {
    if (shutdown_) {
      XmlRpcStruct out;
      out["kind"] = XmlRpcValue("quit");
      return XmlRpcValue(std::move(out));
    }
    if (!runnable_.empty()) {
      // Pick a task: prefer one whose affinity key points at this slave.
      size_t pick = 0;
      if (config_.enable_affinity) {
        for (size_t i = 0; i < runnable_.size(); ++i) {
          const TaskRef& ref = runnable_[i];
          auto dsit = datasets_.find(ref.dataset_id);
          if (dsit == datasets_.end()) continue;
          std::string key = dsit->second->options().op_name + ":" +
                            std::to_string(ref.source);
          auto ait = affinity_.find(key);
          if (ait != affinity_.end() && ait->second == slave_id) {
            pick = i;
            ++stats_.affinity_hits;
            break;
          }
        }
      }
      TaskRef ref = runnable_[pick];
      runnable_.erase(runnable_.begin() + static_cast<long>(pick));

      auto dsit = datasets_.find(ref.dataset_id);
      if (dsit == datasets_.end()) continue;  // discarded meanwhile
      if (!dsit->second->TryClaimTask(ref.source)) continue;  // raced

      Result<TaskAssignment> assignment = BuildAssignmentLocked(ref);
      if (!assignment.ok()) {
        dsit->second->ResetTask(ref.source);
        FailJobLocked(assignment.status());
        done_cv_.notify_all();
        return assignment.status();
      }
      sit->second.running.insert(TaskKey(ref.dataset_id, ref.source));
      ++stats_.tasks_assigned;

      XmlRpcValue rpc = assignment->ToRpc();
      // Piggyback discard notices.
      XmlRpcStruct out = *rpc.AsStruct().value();
      XmlRpcArray discards;
      for (int d : sit->second.pending_discards) {
        discards.push_back(XmlRpcValue(static_cast<int64_t>(d)));
      }
      sit->second.pending_discards.clear();
      out["discard"] = XmlRpcValue(std::move(discards));
      return XmlRpcValue(std::move(out));
    }
    if (sched_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        runnable_.empty()) {
      XmlRpcStruct out;
      out["kind"] = XmlRpcValue("wait");
      XmlRpcArray discards;
      for (int d : sit->second.pending_discards) {
        discards.push_back(XmlRpcValue(static_cast<int64_t>(d)));
      }
      sit->second.pending_discards.clear();
      out["discard"] = XmlRpcValue(std::move(discards));
      return XmlRpcValue(std::move(out));
    }
  }
}

Result<XmlRpcValue> Master::RpcTaskDone(const XmlRpcArray& params) {
  if (params.size() != 4) {
    return InvalidArgumentError("task_done(slave_id, dataset_id, source, urls)");
  }
  MRS_ASSIGN_OR_RETURN(int64_t slave_id, params[0].AsInt());
  MRS_ASSIGN_OR_RETURN(int64_t dataset_id, params[1].AsInt());
  MRS_ASSIGN_OR_RETURN(int64_t source, params[2].AsInt());
  MRS_ASSIGN_OR_RETURN(const XmlRpcArray* urls, params[3].AsArray());

  std::lock_guard<std::mutex> lock(mutex_);
  auto sit = slaves_.find(static_cast<int>(slave_id));
  if (sit != slaves_.end()) {
    sit->second.last_ping = NowSeconds();
    sit->second.running.erase(TaskKey(static_cast<int>(dataset_id),
                                      static_cast<int>(source)));
  }
  auto dsit = datasets_.find(static_cast<int>(dataset_id));
  if (dsit == datasets_.end()) {
    return XmlRpcValue(XmlRpcStruct{});  // dataset discarded; drop result
  }
  DataSet& ds = *dsit->second;
  if (static_cast<int>(urls->size()) != ds.num_splits()) {
    return ProtocolError("task_done url count mismatch");
  }
  if (ds.task_state(static_cast<int>(source)) == TaskState::kComplete) {
    return XmlRpcValue(XmlRpcStruct{});  // duplicate completion
  }
  std::vector<Bucket> row;
  row.reserve(urls->size());
  for (int p = 0; p < ds.num_splits(); ++p) {
    MRS_ASSIGN_OR_RETURN(std::string url, (*urls)[static_cast<size_t>(p)].AsString());
    Bucket b(static_cast<int>(source), p);
    b.set_url(std::move(url));
    row.push_back(std::move(b));
  }
  ds.SetRow(static_cast<int>(source), std::move(row));
  ++stats_.tasks_completed;

  // Record affinity for the corresponding task of the next iteration.
  affinity_[ds.options().op_name + ":" + std::to_string(source)] =
      static_cast<int>(slave_id);

  PromoteRunnableLocked();
  sched_cv_.notify_all();
  done_cv_.notify_all();
  return XmlRpcValue(XmlRpcStruct{});
}

Result<XmlRpcValue> Master::RpcTaskFailed(const XmlRpcArray& params) {
  if (params.size() != 5) {
    return InvalidArgumentError(
        "task_failed(slave_id, dataset_id, source, message, bad_url)");
  }
  MRS_ASSIGN_OR_RETURN(int64_t slave_id, params[0].AsInt());
  MRS_ASSIGN_OR_RETURN(int64_t dataset_id, params[1].AsInt());
  MRS_ASSIGN_OR_RETURN(int64_t source, params[2].AsInt());
  MRS_ASSIGN_OR_RETURN(std::string message, params[3].AsString());
  MRS_ASSIGN_OR_RETURN(std::string bad_url, params[4].AsString());

  std::lock_guard<std::mutex> lock(mutex_);
  MRS_LOG(kWarning, "master") << "task (" << dataset_id << "," << source
                              << ") failed on slave " << slave_id << ": "
                              << message;
  ++stats_.tasks_failed;
  auto sit = slaves_.find(static_cast<int>(slave_id));
  if (sit != slaves_.end()) {
    sit->second.last_ping = NowSeconds();
    sit->second.running.erase(TaskKey(static_cast<int>(dataset_id),
                                      static_cast<int>(source)));
  }

  int64_t key = TaskKey(static_cast<int>(dataset_id), static_cast<int>(source));
  int attempts = ++attempts_[key];
  if (attempts >= config_.max_task_attempts) {
    FailJobLocked(InternalError("task (" + std::to_string(dataset_id) + "," +
                                std::to_string(source) + ") failed " +
                                std::to_string(attempts) + " times: " + message));
    done_cv_.notify_all();
    return XmlRpcValue(XmlRpcStruct{});
  }

  auto dsit = datasets_.find(static_cast<int>(dataset_id));
  if (dsit != datasets_.end()) {
    dsit->second->ResetTask(static_cast<int>(source));
    runnable_.push_back(
        TaskRef{static_cast<int>(dataset_id), static_cast<int>(source)});
  }

  // Lineage recovery: if the slave could not fetch an input bucket
  // ("http://host:port/bucket/<ds>/<source>/<split>"), re-run the task
  // that produced it.
  if (!bad_url.empty()) {
    size_t pos = bad_url.find("/bucket/");
    if (pos != std::string::npos) {
      std::vector<std::string_view> parts =
          SplitChar(std::string_view(bad_url).substr(pos + 8), '/');
      if (parts.size() >= 2) {
        auto ds_id = ParseInt64(parts[0]);
        auto src = ParseInt64(parts[1]);
        if (ds_id.has_value() && src.has_value()) {
          auto pit = datasets_.find(static_cast<int>(*ds_id));
          if (pit != datasets_.end() &&
              pit->second->task_state(static_cast<int>(*src)) ==
                  TaskState::kComplete) {
            pit->second->ResetTask(static_cast<int>(*src));
            runnable_.push_back(
                TaskRef{static_cast<int>(*ds_id), static_cast<int>(*src)});
            MRS_LOG(kWarning, "master")
                << "re-running lineage task (" << *ds_id << "," << *src
                << ") for lost bucket " << bad_url;
          }
        }
      }
    }
  }

  sched_cv_.notify_all();
  return XmlRpcValue(XmlRpcStruct{});
}

Result<XmlRpcValue> Master::RpcPing(const XmlRpcArray& params) {
  if (params.size() != 1) return InvalidArgumentError("ping(slave_id)");
  MRS_ASSIGN_OR_RETURN(int64_t slave_id, params[0].AsInt());
  std::lock_guard<std::mutex> lock(mutex_);
  auto sit = slaves_.find(static_cast<int>(slave_id));
  if (sit == slaves_.end()) return NotFoundError("unknown slave");
  sit->second.last_ping = NowSeconds();
  return XmlRpcValue(XmlRpcStruct{});
}

}  // namespace mrs
