// The Mrs master: slave registry, task scheduler, and result tracking.
//
// Starting a job "requires merely starting one copy of the program as a
// master and any number of other copies of the program as slaves" (paper
// §IV).  The master serves XML-RPC on one TCP port; slaves sign in knowing
// only host:port.  The scheduler implements the paper's iterative
// optimizations: operations queue up and start the moment their inputs are
// complete, independent datasets run concurrently, and "corresponding
// tasks" are assigned "to the same processor from one iteration to the
// next" (affinity) to keep data local.
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/dataset.h"
#include "core/program.h"
#include "core/runner.h"
#include "http/server.h"
#include "rt/protocol.h"
#include "xmlrpc/server.h"

namespace mrs {

class Master {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    uint16_t port = 0;           // 0 = ephemeral
    double slave_timeout = 15.0;  // seconds without ping before a slave is lost
    int max_task_attempts = 4;
    double long_poll_seconds = 0.25;
    size_t rpc_workers = 16;
    bool enable_affinity = true;
  };

  /// Bind the RPC server and start the scheduler.
  static Result<std::unique_ptr<Master>> Start(Config config);
  ~Master();

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  const SocketAddr& addr() const { return server_->addr(); }

  /// Block until at least `n` slaves have signed in.
  Status WaitForSlaves(int n, double timeout_seconds);
  int num_slaves() const;

  // ---- Runner-facing interface ---------------------------------------
  void Submit(const DataSetPtr& dataset);
  Status Wait(const DataSetPtr& dataset);
  void Discard(const DataSetPtr& dataset);
  UrlFetcher fetcher() const;

  /// Tell all slaves to quit and stop the server.  Idempotent.
  void Shutdown();

  /// Scheduler statistics (for benches and tests).
  struct Stats {
    int64_t tasks_assigned = 0;
    int64_t tasks_completed = 0;
    int64_t tasks_failed = 0;
    int64_t affinity_hits = 0;
    int64_t slaves_lost = 0;
  };
  Stats stats() const;

 private:
  explicit Master(Config config);
  Status Init();

  struct SlaveInfo {
    int id = 0;
    std::string data_url_base;  // "http://host:port"
    double last_ping = 0;
    bool alive = true;
    std::set<int64_t> running;  // task keys
    std::vector<int> pending_discards;
  };

  struct TaskRef {
    int dataset_id = 0;
    int source = 0;
  };

  static int64_t TaskKey(int dataset_id, int source) {
    return static_cast<int64_t>(dataset_id) * 1000000 + source;
  }

  // RPC handlers.
  Result<XmlRpcValue> RpcSignin(const XmlRpcArray& params);
  Result<XmlRpcValue> RpcGetTask(const XmlRpcArray& params);
  Result<XmlRpcValue> RpcTaskDone(const XmlRpcArray& params);
  Result<XmlRpcValue> RpcTaskFailed(const XmlRpcArray& params);
  Result<XmlRpcValue> RpcPing(const XmlRpcArray& params);

  // Scheduling internals (callers hold mutex_ unless noted).
  void RegisterDataSetLocked(const DataSetPtr& dataset);
  void PromoteRunnableLocked();
  bool DataSetReadyLocked(const DataSet& dataset) const;
  Result<TaskAssignment> BuildAssignmentLocked(const TaskRef& ref);
  void RequeueTasksOfSlaveLocked(SlaveInfo& slave);
  void FailJobLocked(Status status);
  void MonitorLoop();

  Config config_;
  std::unique_ptr<HttpServer> server_;
  XmlRpcDispatcher dispatcher_;

  mutable std::mutex mutex_;
  std::condition_variable sched_cv_;  // wakes long-polling get_task
  std::condition_variable done_cv_;   // wakes Wait
  bool shutdown_ = false;
  Status job_status_;  // first unrecoverable failure

  std::map<int, DataSetPtr> datasets_;
  std::vector<DataSetPtr> waiting_;   // submitted, inputs not ready yet
  std::deque<TaskRef> runnable_;
  std::map<int64_t, int> attempts_;
  std::map<int, SlaveInfo> slaves_;
  int next_slave_id_ = 1;
  std::map<std::string, int> affinity_;  // "op:source" -> slave id
  Stats stats_;

  std::thread monitor_;
};

}  // namespace mrs
