// The Mrs master: slave registry, task scheduler, and result tracking.
//
// Starting a job "requires merely starting one copy of the program as a
// master and any number of other copies of the program as slaves" (paper
// §IV).  The master serves XML-RPC on one TCP port; slaves sign in knowing
// only host:port.  The same port also serves the observability endpoints:
// GET /metrics (Prometheus text), GET /status (job progress + slave
// liveness JSON), GET /trace (Chrome trace_event spans) — see obs/.  The scheduler implements the paper's iterative
// optimizations: operations queue up and start the moment their inputs are
// complete, independent datasets run concurrently, and "corresponding
// tasks" are assigned "to the same processor from one iteration to the
// next" (affinity) to keep data local.
//
// Fault tolerance is lineage-based (paper §I: "a job scheduler may kill
// processes at any time").  The master records which slave hosts each
// completed task's output URLs; when a slave is lost — ping timeout, or a
// peer reports an unreachable bucket — every completed task whose output
// lived there is invalidated and requeued, the affected sub-DAG re-runs
// on the survivors, and the job completes with results identical to the
// serial runner.  Tasks are only handed out while their inputs are
// complete, so a recovering sub-DAG re-executes in dependency order.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/dataset.h"
#include "core/program.h"
#include "core/runner.h"
#include "http/server.h"
#include "rt/protocol.h"
#include "xmlrpc/server.h"

namespace mrs {

class Master {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    uint16_t port = 0;           // 0 = ephemeral
    double slave_timeout = 15.0;  // seconds without ping before a slave is lost
    /// How often the monitor thread checks for lost slaves.  The monitor
    /// sleeps on a condition variable, so Shutdown() is prompt regardless.
    double monitor_interval = 0.2;
    int max_task_attempts = 4;
    double long_poll_seconds = 0.25;
    size_t rpc_workers = 16;
    bool enable_affinity = true;
  };

  /// Bind the RPC server and start the scheduler.
  static Result<std::unique_ptr<Master>> Start(Config config);
  ~Master();

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  const SocketAddr& addr() const { return server_->addr(); }

  /// Block until at least `n` slaves have signed in.
  Status WaitForSlaves(int n, double timeout_seconds);
  int num_slaves() const;

  // ---- Runner-facing interface ---------------------------------------
  void Submit(const DataSetPtr& dataset);
  Status Wait(const DataSetPtr& dataset);
  void Discard(const DataSetPtr& dataset);
  UrlFetcher fetcher() const;

  /// Tell all slaves to quit and stop the server.  Idempotent.
  void Shutdown();

  /// Scheduler statistics (for benches and tests).
  struct Stats {
    int64_t tasks_assigned = 0;
    int64_t tasks_completed = 0;
    int64_t tasks_failed = 0;
    int64_t affinity_hits = 0;
    int64_t slaves_lost = 0;
    /// Completed tasks whose outputs were re-queued because their hosting
    /// slave died (lineage recovery).
    int64_t tasks_invalidated = 0;
    /// Recovery events: one per slave loss or bad-bucket report that
    /// invalidated at least one completed task.
    int64_t lineage_recoveries = 0;
    /// Process-wide transport retries since this master started (control
    /// channel / bucket fetches) — meaningful for in-process clusters.
    int64_t rpc_retries = 0;
    int64_t fetch_retries = 0;
  };
  Stats stats() const;

  /// Condition-variable wait until `pred(stats())` holds or the timeout
  /// expires.  Used by tests to wait on observable scheduler state (e.g.
  /// "a slave was declared lost") instead of sleeping wall-clock time.
  bool WaitUntilStats(const std::function<bool(const Stats&)>& pred,
                      double timeout_seconds);

  /// The /status document: job progress, per-slave liveness, and lineage
  /// counters as JSON.  Served by the master's HTTP server and callable
  /// directly (thread-safe).
  std::string StatusJson() const;

 private:
  explicit Master(Config config);
  Status Init();

  struct SlaveInfo {
    int id = 0;
    std::string data_url_base;  // "http://host:port"
    double last_ping = 0;
    bool alive = true;
    std::set<int64_t> running;  // task keys
    /// Completed task keys whose output URLs point at this slave's data
    /// server — the lineage record consulted when the slave dies.
    std::set<int64_t> hosted;
    std::vector<int> pending_discards;
  };

  struct TaskRef {
    int dataset_id = 0;
    int source = 0;
  };

  static int64_t TaskKey(int dataset_id, int source) {
    return static_cast<int64_t>(dataset_id) * 1000000 + source;
  }

  // RPC handlers.
  Result<XmlRpcValue> RpcSignin(const XmlRpcArray& params);
  Result<XmlRpcValue> RpcGetTask(const XmlRpcArray& params);
  Result<XmlRpcValue> RpcTaskDone(const XmlRpcArray& params);
  Result<XmlRpcValue> RpcTaskFailed(const XmlRpcArray& params);
  Result<XmlRpcValue> RpcPing(const XmlRpcArray& params);

  // Scheduling internals.  The *Locked suffix is enforced by the
  // compiler: each declares MRS_REQUIRES(mutex_), so a call site that
  // does not hold the scheduler lock fails the -Wthread-safety build.
  void RegisterDataSetLocked(const DataSetPtr& dataset) MRS_REQUIRES(mutex_);
  void PromoteRunnableLocked() MRS_REQUIRES(mutex_);
  bool DataSetReadyLocked(const DataSet& dataset) const MRS_REQUIRES(mutex_);
  Result<TaskAssignment> BuildAssignmentLocked(const TaskRef& ref)
      MRS_REQUIRES(mutex_);
  /// Pick the next runnable task this slave may execute (inputs complete,
  /// still pending), preferring its affinity matches.  Prunes stale refs.
  /// Returns false if nothing is currently assignable.
  bool PickRunnableLocked(int slave_id, TaskRef* out, bool* affinity_hit)
      MRS_REQUIRES(mutex_);
  void RequeueTasksOfSlaveLocked(SlaveInfo& slave) MRS_REQUIRES(mutex_);
  /// Full reaction to a dead slave: requeue its running tasks, invalidate
  /// every completed task it hosted, and drop its affinity entries.
  void HandleSlaveLossLocked(SlaveInfo& slave) MRS_REQUIRES(mutex_);
  /// Lineage core: reset + requeue each completed task whose output lived
  /// on `slave`.  Returns the number of tasks invalidated.
  int InvalidateSlaveOutputsLocked(SlaveInfo& slave) MRS_REQUIRES(mutex_);
  /// React to an unreachable bucket URL reported by a fetching slave.
  /// Returns true if the failure was environmental (lineage repaired or
  /// already repaired) — such failures are not charged against the
  /// reporting task's attempt budget.
  bool RecoverLostUrlLocked(const std::string& bad_url) MRS_REQUIRES(mutex_);
  void FailJobLocked(Status status) MRS_REQUIRES(mutex_);
  void MonitorLoop();

  Config config_;
  std::unique_ptr<HttpServer> server_;
  XmlRpcDispatcher dispatcher_;

  mutable Mutex mutex_;
  CondVar sched_cv_;    // wakes long-polling get_task
  CondVar done_cv_;     // wakes Wait
  CondVar monitor_cv_;  // wakes MonitorLoop (shutdown)
  bool shutdown_ MRS_GUARDED_BY(mutex_) = false;
  Status job_status_ MRS_GUARDED_BY(mutex_);  // first unrecoverable failure

  std::map<int, DataSetPtr> datasets_ MRS_GUARDED_BY(mutex_);
  // Submitted, inputs not ready yet.
  std::vector<DataSetPtr> waiting_ MRS_GUARDED_BY(mutex_);
  std::deque<TaskRef> runnable_ MRS_GUARDED_BY(mutex_);
  std::map<int64_t, int> attempts_ MRS_GUARDED_BY(mutex_);
  std::map<int, SlaveInfo> slaves_ MRS_GUARDED_BY(mutex_);
  int next_slave_id_ MRS_GUARDED_BY(mutex_) = 1;
  // "op:source" -> slave id.
  std::map<std::string, int> affinity_ MRS_GUARDED_BY(mutex_);
  Stats stats_ MRS_GUARDED_BY(mutex_);
  int64_t rpc_retries_base_ = 0;    // process counters at Init
  int64_t fetch_retries_base_ = 0;

  std::thread monitor_;
};

}  // namespace mrs
