// The Mrs master: slave registry, task scheduler, and result tracking.
//
// Starting a job "requires merely starting one copy of the program as a
// master and any number of other copies of the program as slaves" (paper
// §IV).  The master serves XML-RPC on one TCP port; slaves sign in knowing
// only host:port.  The same port also serves the observability endpoints:
// GET /metrics (Prometheus text), GET /status (job progress + slave
// liveness JSON), GET /trace (Chrome trace_event spans) — see obs/.  The scheduler implements the paper's iterative
// optimizations: operations queue up and start the moment their inputs are
// complete, independent datasets run concurrently, and "corresponding
// tasks" are assigned "to the same processor from one iteration to the
// next" (affinity) to keep data local.
//
// Fault tolerance is lineage-based (paper §I: "a job scheduler may kill
// processes at any time").  The master records which slave hosts each
// completed task's output URLs; when a slave is lost — ping timeout, or a
// peer reports an unreachable bucket — every completed task whose output
// lived there is invalidated and requeued, the affected sub-DAG re-runs
// on the survivors, and the job completes with results identical to the
// serial runner.  Tasks are only handed out while their inputs are
// complete, so a recovering sub-DAG re-executes in dependency order.
//
// Membership is elastic, not a fixed roster.  Each slave moves through a
// small state machine (see DESIGN.md "Slave lifecycle"):
//
//   registering -> healthy -> draining  -> gone
//                     |     \-> quarantined -> healthy (probation)
//                     \--------------------> gone (ping timeout / crash)
//
// A slave may sign in mid-job (it is health-checked, handed the current
// dataset manifest, and immediately schedulable — lineage makes its empty
// bucket store safe); a slave may drain gracefully (the `drain` RPC: the
// master stops assigning it work, re-executes its hosted buckets through
// the lineage machinery, then releases it with "quit"); a slave whose
// failure ledger crosses a threshold is quarantined — no new work, its
// buckets invalidated — and re-admitted after a probation period.  The
// master also runs speculative execution: per-operation runtime histograms
// (mrs::obs) identify stragglers past a configurable quantile and a backup
// attempt is launched on another healthy slave; the first finisher wins
// and the duplicate completion is dropped idempotently.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/dataset.h"
#include "core/program.h"
#include "core/runner.h"
#include "http/server.h"
#include "obs/metrics.h"
#include "rt/protocol.h"
#include "xmlrpc/server.h"

namespace mrs {

/// Membership state of a registered slave (DESIGN.md "Slave lifecycle").
enum class SlaveState {
  kRegistering,  // signin received, health probe in flight
  kHealthy,      // schedulable
  kDraining,     // drain requested: no new work, awaiting release
  kQuarantined,  // failure threshold crossed: no new work until probation
  kGone,         // released, timed out, or crashed; may revive by polling
};

/// Lower-case state name ("healthy", ...) for /status and logs.
const char* SlaveStateName(SlaveState state);

class Master {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    uint16_t port = 0;           // 0 = ephemeral
    double slave_timeout = 15.0;  // seconds without ping before a slave is lost
    /// A slave reporting its ping interval at signin is declared gone
    /// after max(slave_timeout, missed_ping_limit * ping_interval) of
    /// silence — the roster adapts to per-slave heartbeat cadence instead
    /// of one global constant.
    int missed_ping_limit = 5;
    /// How often the monitor thread checks for lost slaves.  The monitor
    /// sleeps on a condition variable, so Shutdown() is prompt regardless.
    double monitor_interval = 0.2;
    int max_task_attempts = 4;
    double long_poll_seconds = 0.25;
    size_t rpc_workers = 16;
    bool enable_affinity = true;
    /// Probe a signing-in slave's data server (GET /status) before
    /// admitting it to the roster; a slave whose data plane is unreachable
    /// is rejected at the door instead of poisoning lineage later.
    bool health_check_on_signin = true;
    /// Seconds a draining slave may linger awaiting release before the
    /// monitor declares it gone (covers a slave that crashes mid-drain).
    double drain_timeout = 10.0;
    /// Speculative execution: launch a backup attempt for a running task
    /// once its elapsed time exceeds
    ///   max(speculation_min_seconds,
    ///       speculation_multiplier * Quantile(speculation_quantile))
    /// of the per-operation runtime histogram, provided the histogram has
    /// at least speculation_min_samples completions and another healthy
    /// slave exists to run the backup.  quantile <= 0 disables.
    bool enable_speculation = true;
    double speculation_quantile = 0.9;
    double speculation_multiplier = 2.0;
    int speculation_min_samples = 3;
    double speculation_min_seconds = 0.25;
    /// Quarantine: a slave reaching this many consecutive non-environmental
    /// task failures is quarantined (no new work, hosted buckets
    /// invalidated) unless it is the last healthy slave.  0 disables.
    int quarantine_failure_threshold = 3;
    /// Quarantined slaves re-enter the healthy pool after this long.
    double probation_seconds = 5.0;
  };

  /// Bind the RPC server and start the scheduler.
  static Result<std::unique_ptr<Master>> Start(Config config);
  ~Master();

  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  const SocketAddr& addr() const { return server_->addr(); }

  /// Block until at least `n` slaves have signed in.
  Status WaitForSlaves(int n, double timeout_seconds);
  int num_slaves() const;

  // ---- Runner-facing interface ---------------------------------------
  void Submit(const DataSetPtr& dataset);
  Status Wait(const DataSetPtr& dataset);
  void Discard(const DataSetPtr& dataset);
  UrlFetcher fetcher() const;

  /// Tell all slaves to quit and stop the server.  Idempotent.
  void Shutdown();

  /// Scheduler statistics (for benches and tests).
  struct Stats {
    int64_t tasks_assigned = 0;
    int64_t tasks_completed = 0;
    int64_t tasks_failed = 0;
    int64_t affinity_hits = 0;
    int64_t slaves_lost = 0;
    /// Completed tasks whose outputs were re-queued because their hosting
    /// slave died (lineage recovery).
    int64_t tasks_invalidated = 0;
    /// Recovery events: one per slave loss or bad-bucket report that
    /// invalidated at least one completed task.
    int64_t lineage_recoveries = 0;
    /// Process-wide transport retries since this master started (control
    /// channel / bucket fetches) — meaningful for in-process clusters.
    int64_t rpc_retries = 0;
    int64_t fetch_retries = 0;
    // ---- Elastic membership ------------------------------------------
    int64_t slaves_joined = 0;     // total successful signins
    int64_t mid_job_joins = 0;     // signins while a dataset was incomplete
    int64_t slaves_drained = 0;    // drain RPCs honoured
    int64_t slaves_quarantined = 0;
    int64_t probation_returns = 0;  // quarantine -> healthy transitions
    int64_t tasks_speculated = 0;   // backup attempts launched
    int64_t speculative_wins = 0;   // backups that finished first
    // ---- Iterative/BSP residency -------------------------------------
    /// Assignments whose pinned input was already cached on the assigned
    /// slave (inputs omitted; only the broadcast delta shipped).
    int64_t resident_hits = 0;
    /// resident:// cache misses reported by slaves (full inputs re-sent).
    int64_t resident_misses = 0;
  };
  Stats stats() const;

  /// Condition-variable wait until `pred(stats())` holds or the timeout
  /// expires.  Used by tests to wait on observable scheduler state (e.g.
  /// "a slave was declared lost") instead of sleeping wall-clock time.
  bool WaitUntilStats(const std::function<bool(const Stats&)>& pred,
                      double timeout_seconds);

  /// The /status document: job progress, per-slave liveness + health
  /// ledger, membership counts, live health-config values, and lineage
  /// counters as JSON.  Served by the master's HTTP server and callable
  /// directly (thread-safe).
  std::string StatusJson() const;

 private:
  explicit Master(Config config);
  Status Init();

  /// One running attempt of a task on a particular slave.
  struct RunningTask {
    double started = 0;        // NowSeconds() at assignment
    bool speculative = false;  // backup attempt of a straggler
  };

  struct SlaveInfo {
    int id = 0;
    std::string data_url_base;  // "http://host:port"
    double last_ping = 0;
    SlaveState state = SlaveState::kRegistering;
    /// Heartbeat cadence the slave reported at signin (0 = unknown); feeds
    /// the adaptive death threshold.
    double ping_interval = 0;
    double drain_deadline = 0;     // kDraining: forced release time
    double quarantine_until = 0;   // kQuarantined: probation end
    // Health ledger.
    int consecutive_failures = 0;
    int64_t task_failures = 0;
    int64_t task_successes = 0;
    double latency_ewma = 0;  // seconds; exponentially weighted task latency
    /// Task keys currently assigned to this slave.
    std::map<int64_t, RunningTask> running;
    /// Completed task keys whose output URLs point at this slave's data
    /// server — the lineage record consulted when the slave dies.
    std::set<int64_t> hosted;
    std::vector<int> pending_discards;
    /// Resident-input cache keys ("r/<dataset>/<split>") this slave is
    /// believed to hold (iterative/BSP mode).  While a key is present the
    /// master omits the input parts from assignments over that pinned
    /// split — only the broadcast delta ships.  Cleared on slave loss /
    /// drain / quarantine, pruned on dataset discard, and individually
    /// dropped when the slave reports a resident:// cache miss.
    std::set<std::string> resident_keys;
  };

  struct TaskRef {
    int dataset_id = 0;
    int source = 0;
    /// Backup attempt for a straggler: does not claim the task (the
    /// original attempt keeps running); valid only while the task state
    /// is still kRunning.
    bool speculative = false;
  };

  static int64_t TaskKey(int dataset_id, int source) {
    return static_cast<int64_t>(dataset_id) * 1000000 + source;
  }

  // RPC handlers.
  Result<XmlRpcValue> RpcSignin(const XmlRpcArray& params);
  Result<XmlRpcValue> RpcGetTask(const XmlRpcArray& params);
  Result<XmlRpcValue> RpcTaskDone(const XmlRpcArray& params);
  Result<XmlRpcValue> RpcTaskFailed(const XmlRpcArray& params);
  Result<XmlRpcValue> RpcPing(const XmlRpcArray& params);
  Result<XmlRpcValue> RpcDrain(const XmlRpcArray& params);

  // Scheduling internals.  The *Locked suffix is enforced by the
  // compiler: each declares MRS_REQUIRES(mutex_), so a call site that
  // does not hold the scheduler lock fails the -Wthread-safety build.
  void RegisterDataSetLocked(const DataSetPtr& dataset) MRS_REQUIRES(mutex_);
  void PromoteRunnableLocked() MRS_REQUIRES(mutex_);
  bool DataSetReadyLocked(const DataSet& dataset) const MRS_REQUIRES(mutex_);
  /// Build the wire assignment for `ref` going to `slave`.  When the
  /// task's input dataset is pinned resident and the slave already caches
  /// its split, the inputs are omitted (resident_cached) and only the
  /// per-round broadcast delta ships.
  Result<TaskAssignment> BuildAssignmentLocked(const TaskRef& ref,
                                               SlaveInfo& slave)
      MRS_REQUIRES(mutex_);
  /// Pick the next runnable task this slave may execute (inputs complete,
  /// still pending — or a speculative backup of a task still running
  /// elsewhere), preferring its affinity matches.  Prunes stale refs.
  /// Returns false if nothing is currently assignable.
  bool PickRunnableLocked(int slave_id, TaskRef* out, bool* affinity_hit)
      MRS_REQUIRES(mutex_);
  void RequeueTasksOfSlaveLocked(SlaveInfo& slave) MRS_REQUIRES(mutex_);
  /// Full reaction to a departed slave: requeue its running tasks (unless
  /// a twin attempt survives elsewhere), invalidate every completed task
  /// it hosted, and drop its affinity entries.
  void HandleSlaveLossLocked(SlaveInfo& slave) MRS_REQUIRES(mutex_);
  /// Lineage core: reset + requeue each completed task whose output lived
  /// on `slave`.  Returns the number of tasks invalidated.
  int InvalidateSlaveOutputsLocked(SlaveInfo& slave) MRS_REQUIRES(mutex_);
  /// React to an unreachable bucket URL reported by a fetching slave.
  /// Returns true if the failure was environmental (lineage repaired or
  /// already repaired) — such failures are not charged against the
  /// reporting task's attempt budget.
  bool RecoverLostUrlLocked(const std::string& bad_url) MRS_REQUIRES(mutex_);
  void FailJobLocked(Status status) MRS_REQUIRES(mutex_);
  /// True if a healthy slave other than `except_id` exists (quarantine
  /// and speculation both need somewhere else to run work).
  bool AnotherHealthySlaveLocked(int except_id) const MRS_REQUIRES(mutex_);
  /// True if a non-gone slave other than `except_id` currently runs `key`
  /// (its attempt survives, so the task need not be requeued).
  bool AnotherSlaveRunsLocked(int64_t key, int except_id) const
      MRS_REQUIRES(mutex_);
  /// Silence threshold for this slave: max(slave_timeout,
  /// missed_ping_limit * reported ping interval).
  double DeathTimeoutLocked(const SlaveInfo& slave) const
      MRS_REQUIRES(mutex_);
  /// Move a slave into quarantine: no new work, hosted buckets
  /// invalidated, probation timer armed.
  void QuarantineSlaveLocked(SlaveInfo& slave, double now)
      MRS_REQUIRES(mutex_);
  /// Launch backup attempts for running tasks past the straggler
  /// threshold.  Returns true if any backup was queued.
  bool ScanForStragglersLocked(double now) MRS_REQUIRES(mutex_);
  /// Refresh the mrs.master.slaves_{healthy,draining,quarantined} gauges.
  void UpdateMembershipGaugesLocked() MRS_REQUIRES(mutex_);
  /// Per-operation runtime histogram (created on first use).
  obs::Histogram* OpHistogramLocked(const std::string& op_name)
      MRS_REQUIRES(mutex_);
  void MonitorLoop();

  Config config_;
  std::unique_ptr<HttpServer> server_;
  XmlRpcDispatcher dispatcher_;

  mutable Mutex mutex_;
  CondVar sched_cv_;    // wakes long-polling get_task
  CondVar done_cv_;     // wakes Wait
  CondVar monitor_cv_;  // wakes MonitorLoop (shutdown)
  bool shutdown_ MRS_GUARDED_BY(mutex_) = false;
  Status job_status_ MRS_GUARDED_BY(mutex_);  // first unrecoverable failure

  std::map<int, DataSetPtr> datasets_ MRS_GUARDED_BY(mutex_);
  // Submitted, inputs not ready yet.
  std::vector<DataSetPtr> waiting_ MRS_GUARDED_BY(mutex_);
  std::deque<TaskRef> runnable_ MRS_GUARDED_BY(mutex_);
  std::map<int64_t, int> attempts_ MRS_GUARDED_BY(mutex_);
  std::map<int, SlaveInfo> slaves_ MRS_GUARDED_BY(mutex_);
  int next_slave_id_ MRS_GUARDED_BY(mutex_) = 1;
  // "op:source" -> slave id.
  std::map<std::string, int> affinity_ MRS_GUARDED_BY(mutex_);
  /// Task keys with a backup attempt outstanding (queued or running) —
  /// caps speculation at one backup per task.
  std::set<int64_t> speculated_ MRS_GUARDED_BY(mutex_);
  /// Per-operation task runtime distributions feeding the straggler
  /// threshold.  Owned by this master (not the process-wide registry) so
  /// concurrent masters in one process — the test norm — never mix
  /// samples; /status surfaces the derived quantiles.
  std::map<std::string, std::unique_ptr<obs::Histogram>> op_hist_
      MRS_GUARDED_BY(mutex_);
  Stats stats_ MRS_GUARDED_BY(mutex_);
  int64_t rpc_retries_base_ = 0;    // process counters at Init
  int64_t fetch_retries_base_ = 0;

  std::thread monitor_;
};

}  // namespace mrs
