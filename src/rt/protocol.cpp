#include "rt/protocol.h"

#include "ser/record.h"

namespace mrs {

XmlRpcValue RecordsToRpc(const std::vector<KeyValue>& records) {
  return XmlRpcValue::Binary(EncodeBinaryRecords(records));
}

Result<std::vector<KeyValue>> RecordsFromRpc(const XmlRpcValue& v) {
  MRS_ASSIGN_OR_RETURN(std::string raw, v.AsString());
  return DecodeBinaryRecords(raw);
}

XmlRpcValue TaskAssignment::ToRpc() const {
  XmlRpcStruct s;
  s["kind"] = XmlRpcValue("task");
  s["dataset_id"] = XmlRpcValue(static_cast<int64_t>(dataset_id));
  s["ds_kind"] =
      XmlRpcValue(kind == DataSetKind::kMap ? "map_op" : "reduce_op");
  s["source"] = XmlRpcValue(static_cast<int64_t>(source));
  s["attempt"] = XmlRpcValue(static_cast<int64_t>(attempt));
  s["num_splits"] = XmlRpcValue(static_cast<int64_t>(num_splits));
  s["op_name"] = XmlRpcValue(options.op_name);
  s["use_combiner"] = XmlRpcValue(options.use_combiner);
  s["combine_name"] = XmlRpcValue(options.combine_name);
  if (options.broadcast != nullptr) {
    // One-record binary frame on the existing data plane encoding; the
    // whole point of iterative mode is that this delta is the only payload
    // a resident-cached round ships.
    s["broadcast"] = RecordsToRpc({KeyValue{Value(), *options.broadcast}});
  }
  if (!resident_key.empty()) {
    s["resident_key"] = XmlRpcValue(resident_key);
    s["resident_cached"] = XmlRpcValue(resident_cached);
  }

  XmlRpcArray parts;
  for (const TaskInputPart& part : inputs) {
    XmlRpcStruct p;
    if (part.inline_records) {
      p["records"] = RecordsToRpc(part.records);
    } else {
      p["url"] = XmlRpcValue(part.url);
    }
    parts.push_back(XmlRpcValue(std::move(p)));
  }
  s["inputs"] = XmlRpcValue(std::move(parts));
  return XmlRpcValue(std::move(s));
}

Result<TaskAssignment> TaskAssignment::FromRpc(const XmlRpcValue& v) {
  TaskAssignment out;
  MRS_ASSIGN_OR_RETURN(const XmlRpcValue* dataset_id, v.Field("dataset_id"));
  MRS_ASSIGN_OR_RETURN(int64_t id, dataset_id->AsInt());
  out.dataset_id = static_cast<int>(id);

  MRS_ASSIGN_OR_RETURN(const XmlRpcValue* ds_kind, v.Field("ds_kind"));
  MRS_ASSIGN_OR_RETURN(std::string kind_name, ds_kind->AsString());
  if (kind_name == "map_op") {
    out.kind = DataSetKind::kMap;
  } else if (kind_name == "reduce_op") {
    out.kind = DataSetKind::kReduce;
  } else {
    return ProtocolError("bad ds_kind: " + kind_name);
  }

  MRS_ASSIGN_OR_RETURN(const XmlRpcValue* source, v.Field("source"));
  MRS_ASSIGN_OR_RETURN(int64_t src, source->AsInt());
  out.source = static_cast<int>(src);

  // Optional for wire compatibility with pre-observability masters.
  if (auto att = v.Field("attempt"); att.ok()) {
    MRS_ASSIGN_OR_RETURN(int64_t a, (*att)->AsInt());
    out.attempt = static_cast<int>(a);
  }

  MRS_ASSIGN_OR_RETURN(const XmlRpcValue* splits, v.Field("num_splits"));
  MRS_ASSIGN_OR_RETURN(int64_t ns, splits->AsInt());
  out.num_splits = static_cast<int>(ns);

  MRS_ASSIGN_OR_RETURN(const XmlRpcValue* op, v.Field("op_name"));
  MRS_ASSIGN_OR_RETURN(out.options.op_name, op->AsString());
  out.options.num_splits = out.num_splits;

  MRS_ASSIGN_OR_RETURN(const XmlRpcValue* comb, v.Field("use_combiner"));
  MRS_ASSIGN_OR_RETURN(out.options.use_combiner, comb->AsBool());
  MRS_ASSIGN_OR_RETURN(const XmlRpcValue* comb_name, v.Field("combine_name"));
  MRS_ASSIGN_OR_RETURN(out.options.combine_name, comb_name->AsString());

  // Optional iterative-mode fields (wire-compatible with older masters).
  if (auto bc = v.Field("broadcast"); bc.ok()) {
    MRS_ASSIGN_OR_RETURN(std::vector<KeyValue> recs, RecordsFromRpc(**bc));
    if (recs.size() != 1) {
      return ProtocolError("broadcast payload must hold exactly one record");
    }
    out.options.broadcast =
        std::make_shared<const Value>(std::move(recs[0].value));
  }
  if (auto rk = v.Field("resident_key"); rk.ok()) {
    MRS_ASSIGN_OR_RETURN(out.resident_key, (*rk)->AsString());
    MRS_ASSIGN_OR_RETURN(const XmlRpcValue* rc, v.Field("resident_cached"));
    MRS_ASSIGN_OR_RETURN(out.resident_cached, rc->AsBool());
  }

  MRS_ASSIGN_OR_RETURN(const XmlRpcValue* inputs, v.Field("inputs"));
  MRS_ASSIGN_OR_RETURN(const XmlRpcArray* parts, inputs->AsArray());
  for (const XmlRpcValue& pv : *parts) {
    MRS_ASSIGN_OR_RETURN(const XmlRpcStruct* p, pv.AsStruct());
    TaskInputPart part;
    if (auto it = p->find("url"); it != p->end()) {
      MRS_ASSIGN_OR_RETURN(part.url, it->second.AsString());
    } else if (auto rec = p->find("records"); rec != p->end()) {
      MRS_ASSIGN_OR_RETURN(part.records, RecordsFromRpc(rec->second));
      part.inline_records = true;
    } else {
      return ProtocolError("task input part missing url/records");
    }
    out.inputs.push_back(std::move(part));
  }
  return out;
}

}  // namespace mrs
