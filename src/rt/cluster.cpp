#include "rt/cluster.h"

#include "common/log.h"

namespace mrs {

Result<std::unique_ptr<ClusterLauncher>> ClusterLauncher::Start(
    const ProgramFactory& factory, const Options& opts, Config config) {
  std::unique_ptr<ClusterLauncher> cluster(new ClusterLauncher());
  cluster->factory_ = factory;
  cluster->opts_ = opts;
  cluster->config_ = std::move(config);
  MRS_ASSIGN_OR_RETURN(cluster->master_,
                       Master::Start(cluster->config_.master));

  for (int i = 0; i < cluster->config_.num_slaves; ++i) {
    const Slave::FaultPlan* faults = nullptr;
    if (static_cast<size_t>(i) < cluster->config_.fault_plans.size()) {
      faults = &cluster->config_.fault_plans[static_cast<size_t>(i)];
    }
    MRS_RETURN_IF_ERROR(cluster->StartSlave(i, faults));
  }

  MRS_RETURN_IF_ERROR(cluster->master_->WaitForSlaves(
      cluster->config_.num_slaves, /*timeout=*/30.0));
  return cluster;
}

Status ClusterLauncher::StartSlave(int i, const Slave::FaultPlan* faults) {
  std::unique_ptr<MapReduce> program = factory_();
  MRS_RETURN_IF_ERROR(program->Init(opts_));

  Slave::Config slave_config = config_.slave;
  slave_config.master = master_->addr();
  if (i == 0) {
    slave_config.faults.fail_first_n_tasks = config_.first_slave_faults;
  }
  if (faults != nullptr) slave_config.faults = *faults;
  // Distinct chaos RNG streams per slave.
  slave_config.faults.seed +=
      static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ull;

  MRS_ASSIGN_OR_RETURN(std::unique_ptr<Slave> slave,
                       Slave::Start(program.get(), slave_config));
  Slave* slave_ptr = slave.get();
  slave_programs_.push_back(std::move(program));
  slaves_.push_back(std::move(slave));
  slave_threads_.emplace_back([slave_ptr] {
    Status status = slave_ptr->Run();
    if (!status.ok()) {
      MRS_LOG(kWarning, "cluster") << "slave loop exited: "
                                   << status.ToString();
    }
  });
  return Status::Ok();
}

Result<int> ClusterLauncher::AddSlave(const Slave::FaultPlan* faults) {
  int i = static_cast<int>(slaves_.size());
  MRS_RETURN_IF_ERROR(StartSlave(i, faults));
  return i;
}

ClusterLauncher::~ClusterLauncher() { Shutdown(); }

void ClusterLauncher::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  for (auto& slave : slaves_) slave->Stop();
  master_->Shutdown();  // pending get_task calls return "quit"
  for (auto& t : slave_threads_) {
    if (t.joinable()) t.join();
  }
  slaves_.clear();
  slave_programs_.clear();
}

int64_t ClusterLauncher::TotalTasksExecuted() const {
  int64_t total = 0;
  for (const auto& slave : slaves_) total += slave->tasks_executed();
  return total;
}

}  // namespace mrs
