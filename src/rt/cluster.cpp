#include "rt/cluster.h"

#include "common/log.h"

namespace mrs {

Result<std::unique_ptr<ClusterLauncher>> ClusterLauncher::Start(
    const ProgramFactory& factory, const Options& opts, Config config) {
  std::unique_ptr<ClusterLauncher> cluster(new ClusterLauncher());
  MRS_ASSIGN_OR_RETURN(cluster->master_, Master::Start(config.master));

  for (int i = 0; i < config.num_slaves; ++i) {
    std::unique_ptr<MapReduce> program = factory();
    MRS_RETURN_IF_ERROR(program->Init(opts));

    Slave::Config slave_config = config.slave;
    slave_config.master = cluster->master_->addr();
    if (i == 0) slave_config.faults.fail_first_n_tasks = config.first_slave_faults;
    if (static_cast<size_t>(i) < config.fault_plans.size()) {
      slave_config.faults = config.fault_plans[static_cast<size_t>(i)];
    }
    // Distinct chaos RNG streams per slave.
    slave_config.faults.seed += static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ull;

    MRS_ASSIGN_OR_RETURN(std::unique_ptr<Slave> slave,
                         Slave::Start(program.get(), slave_config));
    Slave* slave_ptr = slave.get();
    cluster->slave_programs_.push_back(std::move(program));
    cluster->slaves_.push_back(std::move(slave));
    cluster->slave_threads_.emplace_back([slave_ptr] {
      Status status = slave_ptr->Run();
      if (!status.ok()) {
        MRS_LOG(kWarning, "cluster") << "slave loop exited: "
                                     << status.ToString();
      }
    });
  }

  MRS_RETURN_IF_ERROR(
      cluster->master_->WaitForSlaves(config.num_slaves, /*timeout=*/30.0));
  return cluster;
}

ClusterLauncher::~ClusterLauncher() { Shutdown(); }

void ClusterLauncher::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  for (auto& slave : slaves_) slave->Stop();
  master_->Shutdown();  // pending get_task calls return "quit"
  for (auto& t : slave_threads_) {
    if (t.joinable()) t.join();
  }
  slaves_.clear();
  slave_programs_.clear();
}

int64_t ClusterLauncher::TotalTasksExecuted() const {
  int64_t total = 0;
  for (const auto& slave : slaves_) total += slave->tasks_executed();
  return total;
}

}  // namespace mrs
