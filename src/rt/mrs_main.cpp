#include "rt/mrs_main.h"

#include <csignal>
#include <cstdio>

#include "common/clock.h"
#include "common/log.h"
#include "core/job.h"
#include "core/mock_runner.h"
#include "core/serial_runner.h"
#include "core/thread_runner.h"
#include "fs/file_io.h"
#include "fs/spill.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rt/cluster.h"

namespace mrs {

namespace {

Status RunSerial(MapReduce* program) {
  Job job(program, std::make_unique<SerialRunner>(program));
  int parallel = static_cast<int>(program->opts().GetInt("mrs-num-slaves", 2) *
                                  program->opts().GetInt("mrs-tasks-per-slave", 2));
  job.set_default_parallelism(parallel);
  return program->Run(job);
}

Status RunThread(MapReduce* program, int num_workers) {
  Job job(program,
          std::make_unique<ThreadRunner>(program, num_workers,
                                         /*morsel_records=*/-1));
  // Task decomposition must match the serial runner (same default split
  // count) so output layout is identical regardless of worker count.
  int parallel = static_cast<int>(program->opts().GetInt("mrs-num-slaves", 2) *
                                  program->opts().GetInt("mrs-tasks-per-slave", 2));
  job.set_default_parallelism(parallel);
  return program->Run(job);
}

Status RunMockParallel(MapReduce* program) {
  std::string tmpdir = program->opts().GetString("mrs-tmpdir");
  bool fresh = tmpdir.empty();
  if (fresh) {
    MRS_ASSIGN_OR_RETURN(tmpdir, MakeTempDir("mrs_mock_"));
  } else {
    MRS_RETURN_IF_ERROR(EnsureDir(tmpdir));
  }
  Status status;
  {
    Job job(program, std::make_unique<MockParallelRunner>(program, tmpdir));
    int parallel = static_cast<int>(
        program->opts().GetInt("mrs-num-slaves", 2) *
        program->opts().GetInt("mrs-tasks-per-slave", 2));
    job.set_default_parallelism(parallel);
    status = program->Run(job);
  }
  if (fresh) RemoveTree(tmpdir);
  return status;
}

/// Elasticity/health flags -> Master::Config.
void ApplyMasterOptions(const Options& opts, Master::Config* config) {
  config->slave_timeout = opts.GetDouble("mrs-slave-timeout", 15.0);
  config->missed_ping_limit =
      static_cast<int>(opts.GetInt("mrs-missed-ping-limit", 5));
  config->drain_timeout = opts.GetDouble("mrs-drain-timeout", 10.0);
  double quantile = opts.GetDouble("mrs-speculation-quantile", 0.9);
  config->enable_speculation = quantile > 0;
  if (quantile > 0) config->speculation_quantile = quantile;
  config->quarantine_failure_threshold =
      static_cast<int>(opts.GetInt("mrs-quarantine-failures", 3));
  config->probation_seconds = opts.GetDouble("mrs-probation-seconds", 5.0);
}

void ApplySlaveOptions(const Options& opts, Slave::Config* config) {
  config->ping_interval = opts.GetDouble("mrs-ping-interval", 2.0);
  config->shared_dir = opts.GetString("mrs-shared-dir");
}

Status RunMasterSlave(const ProgramFactory& factory, MapReduce* program) {
  ClusterLauncher::Config config;
  config.num_slaves =
      static_cast<int>(program->opts().GetInt("mrs-num-slaves", 2));
  ApplyMasterOptions(program->opts(), &config.master);
  ApplySlaveOptions(program->opts(), &config.slave);
  MRS_ASSIGN_OR_RETURN(
      std::unique_ptr<ClusterLauncher> cluster,
      ClusterLauncher::Start(factory, program->opts(), config));

  Job job(program, std::make_unique<MasterRunner>(&cluster->master()));
  job.set_default_parallelism(static_cast<int>(
      config.num_slaves * program->opts().GetInt("mrs-tasks-per-slave", 2)));
  Status status = program->Run(job);
  cluster->Shutdown();
  return status;
}

Status RunMasterProcess(MapReduce* program) {
  Master::Config config;
  config.port = static_cast<uint16_t>(program->opts().GetInt("mrs-port", 0));
  ApplyMasterOptions(program->opts(), &config);
  MRS_ASSIGN_OR_RETURN(std::unique_ptr<Master> master, Master::Start(config));

  // The run-script handshake (paper Program 3): write host:port to the
  // port file so slave launchers can find us.
  std::string port_file = program->opts().GetString("mrs-port-file");
  if (!port_file.empty()) {
    MRS_RETURN_IF_ERROR(
        WriteFileAtomic(port_file, master->addr().ToString() + "\n"));
  }

  int num_slaves =
      static_cast<int>(program->opts().GetInt("mrs-num-slaves", 1));
  MRS_RETURN_IF_ERROR(master->WaitForSlaves(num_slaves, /*timeout=*/120.0));

  Job job(program, std::make_unique<MasterRunner>(master.get()));
  job.set_default_parallelism(static_cast<int>(
      num_slaves * program->opts().GetInt("mrs-tasks-per-slave", 2)));
  Status status = program->Run(job);
  master->Shutdown();
  return status;
}

Status RunSlaveProcess(MapReduce* program) {
  std::string master_addr = program->opts().GetString("mrs-master");
  if (master_addr.empty()) {
    return InvalidArgumentError("slave implementation requires --mrs-master");
  }
  Slave::Config config;
  MRS_ASSIGN_OR_RETURN(config.master, SocketAddr::Parse(master_addr));
  ApplySlaveOptions(program->opts(), &config);
  // SIGTERM means "retire gracefully" (a preempting scheduler's warning
  // shot): drain instead of dying, so hosted buckets are re-homed and the
  // exit is clean.  The handler is one atomic store — signal-safe.
  struct sigaction action = {};
  action.sa_handler = [](int) { RequestProcessDrain(); };
  sigaction(SIGTERM, &action, nullptr);
  MRS_ASSIGN_OR_RETURN(std::unique_ptr<Slave> slave,
                       Slave::Start(program, config));
  return slave->Run();
}

}  // namespace

Status RunProgram(const ProgramFactory& factory, MapReduce* program,
                  const RunConfig& config) {
  if (config.impl == "serial") return RunSerial(program);
  if (config.impl == "thread") {
    Job job(program,
            std::make_unique<ThreadRunner>(program, config.num_workers,
                                           config.morsel_records));
    job.set_default_parallelism(config.num_slaves * config.tasks_per_slave);
    return program->Run(job);
  }
  if (config.impl == "mockparallel") {
    std::string tmpdir = config.tmpdir;
    bool fresh = tmpdir.empty();
    if (fresh) {
      MRS_ASSIGN_OR_RETURN(tmpdir, MakeTempDir("mrs_mock_"));
    }
    Status status;
    {
      Job job(program, std::make_unique<MockParallelRunner>(program, tmpdir));
      job.set_default_parallelism(config.num_slaves * config.tasks_per_slave);
      status = program->Run(job);
    }
    if (fresh) RemoveTree(tmpdir);
    return status;
  }
  if (config.impl == "masterslave") {
    ClusterLauncher::Config cluster_config;
    cluster_config.num_slaves = config.num_slaves;
    cluster_config.first_slave_faults = config.first_slave_faults;
    if (config.shared_files) {
      MRS_ASSIGN_OR_RETURN(cluster_config.slave.shared_dir,
                           MakeTempDir("mrs_shared_"));
    }
    MRS_ASSIGN_OR_RETURN(
        std::unique_ptr<ClusterLauncher> cluster,
        ClusterLauncher::Start(factory, program->opts(), cluster_config));
    Job job(program, std::make_unique<MasterRunner>(&cluster->master()));
    job.set_default_parallelism(config.num_slaves * config.tasks_per_slave);
    Status status = program->Run(job);
    cluster->Shutdown();
    if (config.shared_files) {
      RemoveTree(cluster_config.slave.shared_dir);
    }
    return status;
  }
  return InvalidArgumentError("unknown implementation: " + config.impl);
}

int RunMain(const ProgramFactory& factory, int argc,
            const char* const* argv) {
  OptionParser parser;
  AddStandardMrsOptions(&parser);

  std::unique_ptr<MapReduce> program = factory();
  program->AddOptions(&parser);

  Result<Options> opts = parser.Parse(argc, argv);
  if (!opts.ok()) {
    std::fprintf(stderr, "error: %s\n%s", opts.status().ToString().c_str(),
                 parser.Usage(argc > 0 ? argv[0] : "mrs-program").c_str());
    return 2;
  }
  if (opts->GetBool("help")) {
    std::fprintf(stdout, "%s",
                 parser.Usage(argc > 0 ? argv[0] : "mrs-program").c_str());
    return 0;
  }
  if (opts->GetBool("mrs-debug")) {
    SetLogLevel(LogLevel::kDebug);
  } else if (opts->GetBool("mrs-verbose")) {
    SetLogLevel(LogLevel::kInfo);
  }
  if (opts->GetBool("mrs-no-metrics")) {
    obs::SetMetricsEnabled(false);
  }
  std::string trace_out = opts->GetString("trace-out");
  if (!trace_out.empty()) {
    obs::SetTracingEnabled(true);
  }
  // The process budget defaults from $MRS_MEMORY_BUDGET; an explicit flag
  // wins.
  std::string budget_text = opts->GetString("mrs-memory-budget");
  if (!budget_text.empty() && budget_text != "0") {
    Result<int64_t> budget = ParseByteSize(budget_text);
    if (!budget.ok()) {
      std::fprintf(stderr, "error: --mrs-memory-budget: %s\n",
                   budget.status().ToString().c_str());
      return 2;
    }
    MemoryBudget::Process().set_limit(*budget);
  }

  Status init = program->Init(*opts);
  if (!init.ok()) {
    std::fprintf(stderr, "error: %s\n", init.ToString().c_str());
    return 2;
  }

  std::string impl = opts->GetString("mrs-impl", "serial");
  Stopwatch watch;
  Status status;
  if (impl == "serial") {
    status = RunSerial(program.get());
  } else if (impl == "thread") {
    status = RunThread(program.get(),
                       static_cast<int>(opts->GetInt("mrs-workers", 0)));
  } else if (impl == "mockparallel") {
    status = RunMockParallel(program.get());
  } else if (impl == "masterslave") {
    status = RunMasterSlave(factory, program.get());
  } else if (impl == "master") {
    status = RunMasterProcess(program.get());
  } else if (impl == "slave") {
    status = RunSlaveProcess(program.get());
  } else if (impl == "bypass") {
    status = program->Bypass();
  } else {
    std::fprintf(stderr, "error: unknown --mrs-impl '%s'\n", impl.c_str());
    return 2;
  }
  if (opts->GetBool("mrs-timing")) {
    std::fprintf(stderr, "[mrs] %s run took %.3f s\n", impl.c_str(),
                 watch.ElapsedSeconds());
  }
  if (!trace_out.empty()) {
    if (obs::WriteChromeTraceFile(trace_out)) {
      std::fprintf(stderr, "[mrs] wrote %zu trace spans to %s\n",
                   obs::TraceBuffer::Instance().size(), trace_out.c_str());
    } else {
      std::fprintf(stderr, "[mrs] failed to write trace file %s\n",
                   trace_out.c_str());
    }
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace mrs
