// mrs.main: the program entry point.
//
// A Mrs program's main() is one line:
//
//   int main(int argc, char** argv) { return mrs::Main<WordCount>(argc, argv); }
//
// --mrs-impl selects the execution implementation (paper §IV-A):
//   serial        run everything sequentially in memory (default)
//   mockparallel  same task decomposition, one task at a time (seeded
//                 shuffled order), data via files
//   thread        true shared-memory parallelism: tasks run concurrently
//                 on a work-stealing pool of --mrs-workers threads
//   masterslave   in-process cluster: master + N slave threads over loopback
//                 TCP + XML-RPC
//   master        be a master: listen, write --mrs-port-file, wait for
//                 --mrs-num-slaves slaves, run the program
//   slave         be a slave: connect to --mrs-master host:port and work
//                 until told to quit
//   bypass        call the program's Bypass() method
//
// All implementations must produce identical output for the same program,
// arguments and seed; differences indicate a bug (paper §IV-A).
#pragma once

#include <memory>

#include "core/job.h"
#include "core/program.h"

namespace mrs {

/// Run a program built by `factory`.  Returns a process exit code.
int RunMain(const ProgramFactory& factory, int argc, const char* const* argv);

/// Typed convenience wrapper.
template <typename Program>
int Main(int argc, const char* const* argv) {
  return RunMain([] { return std::unique_ptr<MapReduce>(new Program()); },
                 argc, argv);
}

/// Library-friendly variants that run a single already-parsed program
/// in-process and surface Status (used heavily by tests and benches).
struct RunConfig {
  std::string impl = "serial";   // serial | mockparallel | thread | masterslave
  int num_slaves = 2;
  int tasks_per_slave = 2;
  int num_workers = 0;           // thread; 0 = hardware concurrency
  int morsel_records = -1;       // thread; <0 reads --mrs-morsel-records
  std::string tmpdir;            // mockparallel; empty = fresh temp dir
  bool shared_files = false;     // masterslave: file:// buckets
  int first_slave_faults = 0;    // masterslave fault injection
};

/// Run `program` (already Init()ed) under the given implementation.
Status RunProgram(const ProgramFactory& factory, MapReduce* program,
                  const RunConfig& config);

}  // namespace mrs
